package wrs

import (
	"fmt"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Item is a weighted stream update: an application identifier and a
// positive, finite weight. The same ID may occur many times; each
// occurrence is sampled as a distinct element, exactly as in the paper.
type Item struct {
	ID     uint64
	Weight float64
}

func (it Item) internal() stream.Item { return stream.Item{ID: it.ID, Weight: it.Weight} }

func fromInternal(it stream.Item) Item { return Item{ID: it.ID, Weight: it.Weight} }

// Sampled is a sampled item together with its precision-sampling key
// (v = w/t, t ~ Exp(1)); larger keys rank higher.
type Sampled struct {
	Item Item
	Key  float64
}

// Stats reports network traffic. Broadcasts count k messages, matching
// the paper's accounting.
type Stats struct {
	Upstream   int64 // site -> coordinator messages
	Downstream int64 // coordinator -> site messages
	UpWords    int64 // machine words, site -> coordinator
	DownWords  int64 // machine words, coordinator -> site
}

// Total returns the total number of messages.
func (s Stats) Total() int64 { return s.Upstream + s.Downstream }

func fromNetsim(s netsim.Stats) Stats {
	return Stats{Upstream: s.Upstream, Downstream: s.Downstream, UpWords: s.UpWords, DownWords: s.DownWords}
}

// Option configures a sampler or tracker.
type Option func(*options)

type options struct {
	seed uint64
}

// WithSeed fixes the random seed, making every run replayable. Without
// it, a fixed default seed is used (the library never reads entropy from
// the environment; vary the seed for independent runs).
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

func buildOptions(opts []Option) options {
	o := options{seed: 0x9E3779B97F4A7C15}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// DistributedSampler maintains a weighted sample without replacement of
// size s over k sites, using the paper's message-optimal protocol. This
// driver delivers messages synchronously and deterministically (the model
// analyzed in the paper); use ConcurrentSampler for a live goroutine
// runtime, or the netsim building blocks for a custom transport.
type DistributedSampler struct {
	cluster *netsim.Cluster[core.Message]
	coord   *core.Coordinator
	k       int
}

// NewDistributedSampler creates a sampler over k sites with sample size s.
func NewDistributedSampler(k, s int, opts ...Option) (*DistributedSampler, error) {
	cfg := core.Config{K: k, S: s}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	master := xrand.New(o.seed)
	coord := core.NewCoordinator(cfg, master.Split())
	sites := make([]netsim.Site[core.Message], k)
	for i := 0; i < k; i++ {
		sites[i] = core.NewSite(i, cfg, master.Split())
	}
	return &DistributedSampler{
		cluster: netsim.NewCluster[core.Message](coord, sites),
		coord:   coord,
		k:       k,
	}, nil
}

// Observe delivers one arrival to a site (0 <= site < k).
func (d *DistributedSampler) Observe(site int, it Item) error {
	return d.cluster.Feed(site, it.internal())
}

// Sample returns the current weighted sample without replacement —
// min(items observed, s) items, largest key first. It is valid at any
// instant (Definition 3: the sampler never fails to maintain the sample).
func (d *DistributedSampler) Sample() []Sampled {
	q := d.coord.Query()
	out := make([]Sampled, len(q))
	for i, e := range q {
		out[i] = Sampled{Item: fromInternal(e.Item), Key: e.Key}
	}
	return out
}

// Stats returns cumulative network traffic.
func (d *DistributedSampler) Stats() Stats { return fromNetsim(d.cluster.Stats) }

// K returns the number of sites.
func (d *DistributedSampler) K() int { return d.k }

// ConcurrentSampler is the same protocol on a goroutine-per-site runtime
// with FIFO links. Feed may be called from any goroutine; Drain must be
// called exactly once, after which Sample is available.
type ConcurrentSampler struct {
	cc      *netsim.ConcurrentCluster[core.Message]
	coord   *core.Coordinator
	k       int
	drained bool
	stats   Stats
	err     error
}

// NewConcurrentSampler creates and starts a concurrent sampler.
func NewConcurrentSampler(k, s int, opts ...Option) (*ConcurrentSampler, error) {
	cfg := core.Config{K: k, S: s}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	master := xrand.New(o.seed)
	coord := core.NewCoordinator(cfg, master.Split())
	sites := make([]netsim.Site[core.Message], k)
	for i := 0; i < k; i++ {
		sites[i] = core.NewSite(i, cfg, master.Split())
	}
	cc := netsim.NewConcurrentCluster[core.Message](coord, sites)
	cc.Start()
	return &ConcurrentSampler{cc: cc, coord: coord, k: k}, nil
}

// Feed enqueues one arrival for a site. Invalid weights surface as an
// error from Drain.
func (c *ConcurrentSampler) Feed(site int, it Item) {
	c.cc.Feed(site, it.internal())
}

// Drain waits for all in-flight work and returns traffic statistics.
func (c *ConcurrentSampler) Drain() (Stats, error) {
	if !c.drained {
		s, err := c.cc.Drain()
		c.stats, c.err = fromNetsim(s), err
		c.drained = true
	}
	return c.stats, c.err
}

// Sample returns the final sample; it must be called after Drain.
func (c *ConcurrentSampler) Sample() ([]Sampled, error) {
	if !c.drained {
		return nil, fmt.Errorf("wrs: Sample before Drain on ConcurrentSampler")
	}
	q := c.coord.Query()
	out := make([]Sampled, len(q))
	for i, e := range q {
		out[i] = Sampled{Item: fromInternal(e.Item), Key: e.Key}
	}
	return out, nil
}
