package wrs

import (
	"fmt"
	"sync"

	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	rt "wrs/internal/runtime"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Item is a weighted stream update: an application identifier and a
// positive, finite weight. The same ID may occur many times; each
// occurrence is sampled as a distinct element, exactly as in the paper.
type Item struct {
	ID     uint64
	Weight float64
}

func (it Item) internal() stream.Item { return stream.Item{ID: it.ID, Weight: it.Weight} }

func fromInternal(it stream.Item) Item { return Item{ID: it.ID, Weight: it.Weight} }

func toInternal(items []Item) []stream.Item {
	out := make([]stream.Item, len(items))
	for i, it := range items {
		out[i] = it.internal()
	}
	return out
}

// Sampled is a sampled item together with its precision-sampling key
// (v = w/t, t ~ Exp(1)); larger keys rank higher.
type Sampled struct {
	Item Item
	Key  float64
}

// Stats reports network traffic. Broadcasts count k messages, matching
// the paper's accounting.
type Stats struct {
	Upstream   int64 // site -> coordinator messages
	Downstream int64 // coordinator -> site messages
	UpWords    int64 // machine words, site -> coordinator
	DownWords  int64 // machine words, coordinator -> site
}

// Total returns the total number of messages.
func (s Stats) Total() int64 { return s.Upstream + s.Downstream }

func fromNetsim(s netsim.Stats) Stats {
	return Stats{Upstream: s.Upstream, Downstream: s.Downstream, UpWords: s.UpWords, DownWords: s.DownWords}
}

// RuntimeSpec selects the runtime that drives a sampler or tracker: the
// protocol state machines are transport-agnostic, so the same
// application runs on the deterministic simulator, the goroutine
// cluster, or real TCP connections. The zero value means Sequential.
type RuntimeSpec struct {
	name    string
	factory rt.Factory
	sharded rt.ShardedFactory // optional shard-native builder (TCP)
}

// String returns the runtime's name ("sequential" for the zero value).
func (r RuntimeSpec) String() string {
	if r.name == "" {
		return "sequential"
	}
	return r.name
}

func (r RuntimeSpec) factoryOrDefault() rt.Factory {
	if r.factory == nil {
		return rt.Sequential()
	}
	return r.factory
}

func (r RuntimeSpec) build(inst rt.Instance) (rt.Runtime, error) {
	return r.factoryOrDefault()(inst)
}

// buildSharded assembles the runtime for P shard instances. With one
// instance it is exactly the pre-fabric single-runtime path (so
// WithShards(1) stays bit-identical); with more it uses the runtime's
// shard-native builder when there is one (TCP: one server, k
// multiplexed connections) and the generic per-instance fabric
// composition otherwise.
func (r RuntimeSpec) buildSharded(insts []rt.Instance) (rt.ShardedRuntime, error) {
	if len(insts) == 1 {
		run, err := r.build(insts[0])
		if err != nil {
			return nil, err
		}
		return rt.Single(run), nil
	}
	if r.sharded != nil {
		return r.sharded(insts)
	}
	return rt.NewFabric(insts, r.factoryOrDefault())
}

// Sequential is the default runtime: the deterministic synchronous
// simulator analyzed in the paper — a broadcast reaches every site
// before the next arrival, replayable under a fixed seed. Observe
// delivers messages inline; use it from one goroutine.
func Sequential() RuntimeSpec {
	return RuntimeSpec{name: "sequential", factory: rt.Sequential()}
}

// Goroutines is the in-process asynchronous runtime: one goroutine per
// site plus one for the coordinator, FIFO links both ways. Observe
// enqueues and returns; invalid weights surface at Flush or Close.
func Goroutines() RuntimeSpec {
	return RuntimeSpec{name: "goroutines", factory: rt.Goroutines()}
}

// TCP is the deployment-shaped runtime: a coordinator server listening
// on addr ("" or "127.0.0.1:0" for any free loopback port) and one
// flow-controlled site client connection per site. Call Close when
// done; call Flush before querying for a fully-delivered view.
func TCP(addr string) RuntimeSpec {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return RuntimeSpec{name: "tcp(" + addr + ")", factory: rt.TCP(addr), sharded: rt.TCPSharded(addr)}
}

// Option configures a sampler or tracker.
type Option func(*options)

type options struct {
	seed   uint64
	rt     RuntimeSpec
	shards int
}

// WithSeed fixes the random seed, making every run replayable. Without
// it, a fixed default seed is used (the library never reads entropy from
// the environment; vary the seed for independent runs).
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithRuntime selects the runtime driving the protocol instance;
// Sequential() is the default. Every application accepts every
// runtime: a HeavyHitterTracker or L1Tracker over TCP(addr) runs the
// full protocol over real connections.
func WithRuntime(r RuntimeSpec) Option {
	return func(o *options) { o.rt = r }
}

// WithShards partitions the protocol across p independent shards — a
// fabric of p full (Coordinator, k Sites) instances, each item routed
// to one shard by a deterministic, seed-stable hash of its ID. Each
// shard runs its own coordinator state machine behind its own ingest
// lock, so coordinator throughput scales with cores while the query
// stays exact: precision-sampling keys make per-shard samples exactly
// mergeable (the global top-s is the top-s of the union of per-shard
// top-s sets). Over TCP the shards share one server and one connection
// per site (shard-tagged frames — no p×k connection blow-up).
//
// The default (and p = 1) is the single-instance protocol, bit-identical
// to the pre-sharding library. Sharding trades messages for
// parallelism: p shards each filter against their own top-s, so
// upstream traffic grows roughly p-fold in the log n term — see
// DESIGN.md §9 for measurements.
func WithShards(p int) Option {
	return func(o *options) { o.shards = p }
}

func buildOptions(opts []Option) options {
	o := options{seed: 0x9E3779B97F4A7C15, shards: 1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// appRuntime is the runtime plumbing shared by the sampler and the
// trackers: feeding, flushing, stats, and idempotent close.
type appRuntime struct {
	rt rt.ShardedRuntime

	mu         sync.Mutex
	closed     bool
	finalStats Stats
}

func (a *appRuntime) observe(site int, it Item) error {
	return a.rt.Feed(site, it.internal())
}

func (a *appRuntime) observeBatch(site int, items []Item) error {
	return a.rt.FeedBatch(site, toInternal(items))
}

func (a *appRuntime) flush() error { return a.rt.Flush() }

func (a *appRuntime) stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return a.finalStats
	}
	return fromNetsim(a.rt.Stats())
}

func (a *appRuntime) close() error {
	_, err := a.closeAndStats()
	return err
}

// closeAndStats closes the runtime and returns the final statistics
// from the same critical section — one locked path, so a caller
// draining the runtime can never observe stats from a different moment
// than the close it performed (ConcurrentSampler.Drain relies on this).
func (a *appRuntime) closeAndStats() (Stats, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return a.finalStats, nil
	}
	err := a.rt.Close()
	a.finalStats = fromNetsim(a.rt.Stats())
	a.closed = true
	return a.finalStats, err
}

// DistributedSampler maintains a weighted sample without replacement of
// size s over k sites, using the paper's message-optimal protocol. The
// default Sequential runtime delivers messages synchronously and
// deterministically (the model analyzed in the paper); WithRuntime
// swaps in the goroutine cluster or a real TCP deployment, and
// WithShards partitions the protocol across parallel coordinator
// shards, without changing the protocol. ConcurrentSampler is the
// Goroutines configuration under its historical drain-then-sample API.
type DistributedSampler struct {
	shards []*core.Coordinator
	k, s   int
	appRuntime
}

// NewDistributedSampler creates a sampler over k sites with sample size s.
func NewDistributedSampler(k, s int, opts ...Option) (*DistributedSampler, error) {
	cfg := core.Config{K: k, S: s}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	if err := fabric.Validate(o.shards); err != nil {
		return nil, err
	}
	// One master RNG chain across all shards: for shards=1 the split
	// order (coordinator, then the k sites) is exactly the pre-fabric
	// construction, keeping every seeded run bit-identical.
	master := xrand.New(o.seed)
	insts := make([]rt.Instance, o.shards)
	coords := make([]*core.Coordinator, o.shards)
	for p := range insts {
		coord := core.NewCoordinator(cfg, master.Split())
		sites := make([]netsim.Site[core.Message], k)
		for i := 0; i < k; i++ {
			sites[i] = core.NewSite(i, cfg, master.Split())
		}
		insts[p] = rt.Instance{Cfg: cfg, Coord: coord, Sites: sites}
		coords[p] = coord
	}
	run, err := o.rt.buildSharded(insts)
	if err != nil {
		return nil, err
	}
	return &DistributedSampler{shards: coords, k: k, s: s, appRuntime: appRuntime{rt: run}}, nil
}

// Observe delivers one arrival to a site (0 <= site < k). On
// asynchronous runtimes delivery may be deferred; weight validation
// errors then surface at Flush or Close instead.
func (d *DistributedSampler) Observe(site int, it Item) error { return d.observe(site, it) }

// ObserveBatch delivers a slice of arrivals to a site in order through
// the runtime's batched path — one enqueue on the goroutine runtime,
// coalesced multi-message frames over TCP.
func (d *DistributedSampler) ObserveBatch(site int, items []Item) error {
	return d.observeBatch(site, items)
}

// Sample returns the current weighted sample without replacement —
// min(items observed, s) items, largest key first. It is valid at any
// instant (Definition 3: the sampler never fails to maintain the
// sample); on asynchronous runtimes call Flush first for a
// fully-delivered view.
//
// The read path is deliberately cheap on the ingest locks: each shard
// coordinator is snapshotted (an O(s) copy) under its own lock, and the
// sort plus cross-shard merge run outside every lock — a concurrent
// querier never stalls ingest for the sort (the merge is exact; see
// WithShards).
func (d *DistributedSampler) Sample() []Sampled {
	entries := make([]core.SampleEntry, 0, 2*d.s*len(d.shards))
	for p, coord := range d.shards {
		coord := coord
		d.rt.DoShard(p, func() { entries = coord.Snapshot(entries) })
	}
	entries = core.TopSample(entries, d.s)
	out := make([]Sampled, len(entries))
	for i, e := range entries {
		out[i] = Sampled{Item: fromInternal(e.Item), Key: e.Key}
	}
	return out
}

// Shards returns the number of protocol shards (1 unless WithShards).
func (d *DistributedSampler) Shards() int { return len(d.shards) }

// Flush is a barrier: when it returns, everything observed before the
// call has reached the coordinator. A no-op on the sequential runtime.
func (d *DistributedSampler) Flush() error { return d.flush() }

// Stats returns cumulative network traffic.
func (d *DistributedSampler) Stats() Stats { return d.stats() }

// Close shuts the runtime down (goroutines joined, connections closed).
// The sample remains queryable; further Observe calls error. Close is
// idempotent and returns the first runtime error, if any.
func (d *DistributedSampler) Close() error { return d.close() }

// K returns the number of sites.
func (d *DistributedSampler) K() int { return d.k }

// ConcurrentSampler is the same protocol on the Goroutines runtime
// under its historical API: Feed from any goroutine, then Drain exactly
// once, after which Sample is available. New code can use
// NewDistributedSampler with WithRuntime(Goroutines()) directly — this
// type is a thin configuration of DistributedSampler, kept for the
// drain-then-sample workflow.
type ConcurrentSampler struct {
	ds      *DistributedSampler
	drained bool
	stats   Stats
	err     error
}

// NewConcurrentSampler creates and starts a concurrent sampler.
func NewConcurrentSampler(k, s int, opts ...Option) (*ConcurrentSampler, error) {
	ds, err := NewDistributedSampler(k, s, append(append([]Option(nil), opts...), WithRuntime(Goroutines()))...)
	if err != nil {
		return nil, err
	}
	return &ConcurrentSampler{ds: ds}, nil
}

// Feed enqueues one arrival for a site. Invalid weights surface as an
// error from Drain; feeding after Drain returns an error immediately
// (it used to panic).
func (c *ConcurrentSampler) Feed(site int, it Item) error {
	return c.ds.Observe(site, it)
}

// Drain waits for all in-flight work and returns traffic statistics.
// The close and the statistics read happen in one locked critical
// section, so the returned stats are exactly the post-Close finals —
// Stats() after Drain always agrees with Drain's return value.
func (c *ConcurrentSampler) Drain() (Stats, error) {
	if !c.drained {
		c.stats, c.err = c.ds.closeAndStats()
		c.drained = true
	}
	return c.stats, c.err
}

// Sample returns the final sample; it must be called after Drain.
func (c *ConcurrentSampler) Sample() ([]Sampled, error) {
	if !c.drained {
		return nil, fmt.Errorf("wrs: Sample before Drain on ConcurrentSampler")
	}
	return c.ds.Sample(), nil
}
