package wrs

import (
	"fmt"

	"wrs/internal/netsim"
	rt "wrs/internal/runtime"
	"wrs/internal/stream"
)

// Item is a weighted stream update: an application identifier and a
// positive, finite weight. The same ID may occur many times; each
// occurrence is sampled as a distinct element, exactly as in the paper.
type Item struct {
	ID     uint64
	Weight float64
}

func (it Item) internal() stream.Item { return stream.Item{ID: it.ID, Weight: it.Weight} }

func fromInternal(it stream.Item) Item { return Item{ID: it.ID, Weight: it.Weight} }

func toInternal(items []Item) []stream.Item {
	out := make([]stream.Item, len(items))
	for i, it := range items {
		out[i] = it.internal()
	}
	return out
}

// Sampled is a sampled item together with its precision-sampling key
// (v = w/t, t ~ Exp(1)); larger keys rank higher.
type Sampled struct {
	Item Item
	Key  float64
}

// Stats reports network traffic. Broadcasts count k messages, matching
// the paper's accounting.
type Stats struct {
	Upstream   int64 // site -> coordinator messages
	Downstream int64 // coordinator -> site messages
	UpWords    int64 // machine words, site -> coordinator
	DownWords  int64 // machine words, coordinator -> site
}

// Total returns the total number of messages.
func (s Stats) Total() int64 { return s.Upstream + s.Downstream }

func fromNetsim(s netsim.Stats) Stats {
	return Stats{Upstream: s.Upstream, Downstream: s.Downstream, UpWords: s.UpWords, DownWords: s.DownWords}
}

// RuntimeSpec selects the runtime that drives an application: the
// protocol state machines are transport-agnostic, so the same
// application runs on the deterministic simulator, the goroutine
// cluster, or real TCP connections. The zero value means Sequential.
type RuntimeSpec struct {
	name    string
	factory rt.Factory
	sharded rt.ShardedFactory // optional shard-native builder (TCP)
}

// String returns the runtime's name ("sequential" for the zero value).
func (r RuntimeSpec) String() string {
	if r.name == "" {
		return "sequential"
	}
	return r.name
}

func (r RuntimeSpec) factoryOrDefault() rt.Factory {
	if r.factory == nil {
		return rt.Sequential()
	}
	return r.factory
}

func (r RuntimeSpec) build(inst rt.Instance) (rt.Runtime, error) {
	return r.factoryOrDefault()(inst)
}

// buildSharded assembles the runtime for P shard instances. With one
// instance it is exactly the pre-fabric single-runtime path (so
// WithShards(1) stays bit-identical); with more it uses the runtime's
// shard-native builder when there is one (TCP: one server, k
// multiplexed connections) and the generic per-instance fabric
// composition otherwise.
func (r RuntimeSpec) buildSharded(insts []rt.Instance) (rt.ShardedRuntime, error) {
	if len(insts) == 1 {
		run, err := r.build(insts[0])
		if err != nil {
			return nil, err
		}
		return rt.Single(run), nil
	}
	if r.sharded != nil {
		return r.sharded(insts)
	}
	return rt.NewFabric(insts, r.factoryOrDefault())
}

// Sequential is the default runtime: the deterministic synchronous
// simulator analyzed in the paper — a broadcast reaches every site
// before the next arrival, replayable under a fixed seed. Observe
// delivers messages inline; use it from one goroutine.
func Sequential() RuntimeSpec {
	return RuntimeSpec{name: "sequential", factory: rt.Sequential()}
}

// Goroutines is the in-process asynchronous runtime: one goroutine per
// site plus one for the coordinator, FIFO links both ways. Observe
// enqueues and returns; invalid weights surface at Flush or Close.
func Goroutines() RuntimeSpec {
	return RuntimeSpec{name: "goroutines", factory: rt.Goroutines()}
}

// TCP is the deployment-shaped runtime: a coordinator server listening
// on addr ("" or "127.0.0.1:0" for any free loopback port) and one
// flow-controlled site client connection per site. Call Close when
// done; call Flush before querying for a fully-delivered view.
func TCP(addr string) RuntimeSpec {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return RuntimeSpec{name: "tcp(" + addr + ")", factory: rt.TCP(addr), sharded: rt.TCPSharded(addr)}
}

// SequentialTree is the deterministic synchronous runtime over a
// hierarchical relay tree: depth tiers of aggregation relays of the
// given fanout between the sites and the coordinator, each pre-filtering
// upstream candidates and fanning broadcasts down. Relays only ever drop
// messages the coordinator would drop on arrival, so results — and
// site-edge Stats — are bit-identical to Sequential under the same
// seed; depth 0 IS Sequential. Use it to pin tree semantics and message
// counts without network timing.
func SequentialTree(fanout, depth int) RuntimeSpec {
	return RuntimeSpec{
		name:    fmt.Sprintf("seqtree(fanout=%d,depth=%d)", fanout, depth),
		factory: rt.SequentialTree(fanout, depth),
	}
}

// TCPTree is the deployment-shaped runtime over a hierarchical relay
// tree: a coordinator server on addr ("" for any free loopback port),
// depth tiers of relay processes of the given fanout beneath it, and
// one site client connection per site attached to a leaf relay. The
// root terminates min(fanout, k) connections instead of k, so k scales
// to the thousands without exhausting the coordinator's accept queue or
// file descriptors; each relay locally filters its subtree's candidate
// stream, so root ingest traffic shrinks too. Depth 0 is the flat TCP
// topology. With WithShards, one relay tree carries every shard's
// traffic in shard-tagged frames.
func TCPTree(addr string, fanout, depth int) RuntimeSpec {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	return RuntimeSpec{
		name:    fmt.Sprintf("tcptree(%s,fanout=%d,depth=%d)", addr, fanout, depth),
		factory: rt.TCPTree(addr, fanout, depth),
		sharded: rt.TCPTreeSharded(addr, fanout, depth),
	}
}

// Option configures an application handle or a centralized sampler.
type Option func(*options)

type options struct {
	seed      uint64
	rt        RuntimeSpec
	rtSet     bool
	shards    int
	shardsSet bool
}

// WithSeed fixes the random seed, making every run replayable. Without
// it, a fixed default seed is used (the library never reads entropy from
// the environment; vary the seed for independent runs).
func WithSeed(seed uint64) Option {
	return func(o *options) { o.seed = seed }
}

// WithRuntime selects the runtime driving the protocol instance;
// Sequential() is the default. Every application accepts every
// runtime: a HeavyHitterTracker or L1Tracker over TCP(addr) runs the
// full protocol over real connections. The centralized samplers
// (Reservoir, WithReplacement, SlidingReservoir) have no runtime and
// reject this option.
func WithRuntime(r RuntimeSpec) Option {
	return func(o *options) { o.rt = r; o.rtSet = true }
}

// WithShards partitions the protocol across p independent shards — a
// fabric of p full (Coordinator, k Sites) instances, each item routed
// to one shard by a deterministic, seed-stable hash of its ID. Each
// shard runs its own coordinator state machine behind its own ingest
// lock, so coordinator throughput scales with cores while the query
// stays exact: precision-sampling keys make per-shard samples exactly
// mergeable (the global top-s is the top-s of the union of per-shard
// top-s sets). Over TCP the shards share one server and one connection
// per site (shard-tagged frames — no p×k connection blow-up).
//
// The default (and p = 1) is the single-instance protocol, bit-identical
// to the pre-sharding library. Sharding trades messages for
// parallelism: p shards each filter against their own top-s, so
// upstream traffic grows roughly p-fold in the log n term — see
// DESIGN.md §9 for measurements. The centralized samplers reject this
// option.
func WithShards(p int) Option {
	return func(o *options) { o.shards = p; o.shardsSet = true }
}

func buildOptions(opts []Option) options {
	o := options{seed: 0x9E3779B97F4A7C15, shards: 1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// centralizedOnly rejects the distributed-protocol options on the
// centralized single-stream samplers, which have neither a runtime nor
// shards — silently dropping them would mask a misconfiguration.
func (o options) centralizedOnly(ctor string) error {
	if o.rtSet {
		return fmt.Errorf("wrs: %s is a centralized sampler: WithRuntime does not apply", ctor)
	}
	if o.shardsSet {
		return fmt.Errorf("wrs: %s is a centralized sampler: WithShards does not apply", ctor)
	}
	return nil
}

// DistributedSampler maintains a weighted sample without replacement of
// size s over k sites, using the paper's message-optimal protocol. It
// is a thin wrapper over Open(Sampler(k, s)): the Sampler application
// on the shared Handle plumbing. The default Sequential runtime
// delivers messages synchronously and deterministically (the model
// analyzed in the paper); WithRuntime swaps in the goroutine cluster or
// a real TCP deployment, and WithShards partitions the protocol across
// parallel coordinator shards, without changing the protocol.
// ConcurrentSampler is the Goroutines configuration under its
// historical drain-then-sample API.
type DistributedSampler struct {
	h *Handle[[]Sampled]
}

// NewDistributedSampler creates a sampler over k sites with sample size s.
func NewDistributedSampler(k, s int, opts ...Option) (*DistributedSampler, error) {
	h, err := Open(Sampler(k, s), opts...)
	if err != nil {
		return nil, err
	}
	return &DistributedSampler{h: h}, nil
}

// Observe delivers one arrival to a site (0 <= site < k). On
// asynchronous runtimes delivery may be deferred; weight validation
// errors then surface at Flush or Close instead.
func (d *DistributedSampler) Observe(site int, it Item) error { return d.h.Observe(site, it) }

// ObserveBatch delivers a slice of arrivals to a site in order through
// the runtime's batched path — one enqueue on the goroutine runtime,
// coalesced multi-message frames over TCP.
func (d *DistributedSampler) ObserveBatch(site int, items []Item) error {
	return d.h.ObserveBatch(site, items)
}

// Sample returns the current weighted sample without replacement —
// min(items observed, s) items, largest key first. It is valid at any
// instant (Definition 3: the sampler never fails to maintain the
// sample); on asynchronous runtimes call Flush first for a
// fully-delivered view. The read path never stalls ingest: see
// Handle.Query.
func (d *DistributedSampler) Sample() []Sampled { return d.h.Query() }

// Shards returns the number of protocol shards (1 unless WithShards).
func (d *DistributedSampler) Shards() int { return d.h.Shards() }

// Flush is a barrier: when it returns, everything observed before the
// call has reached the coordinator. A no-op on the sequential runtime.
func (d *DistributedSampler) Flush() error { return d.h.Flush() }

// Stats returns cumulative network traffic.
func (d *DistributedSampler) Stats() Stats { return d.h.Stats() }

// Close shuts the runtime down (goroutines joined, connections closed).
// The sample remains queryable; further Observe calls error. Close is
// idempotent and returns the first runtime error, if any.
func (d *DistributedSampler) Close() error { return d.h.Close() }

// K returns the number of sites.
func (d *DistributedSampler) K() int { return d.h.K() }

// ConcurrentSampler is the same protocol on the Goroutines runtime
// under its historical API: Feed from any goroutine, then Drain exactly
// once, after which Sample is available. New code can use
// NewDistributedSampler with WithRuntime(Goroutines()) directly — this
// type is a thin configuration of DistributedSampler, kept for the
// drain-then-sample workflow.
type ConcurrentSampler struct {
	ds      *DistributedSampler
	drained bool
	stats   Stats
	err     error
}

// NewConcurrentSampler creates and starts a concurrent sampler.
func NewConcurrentSampler(k, s int, opts ...Option) (*ConcurrentSampler, error) {
	ds, err := NewDistributedSampler(k, s, append(append([]Option(nil), opts...), WithRuntime(Goroutines()))...)
	if err != nil {
		return nil, err
	}
	return &ConcurrentSampler{ds: ds}, nil
}

// Feed enqueues one arrival for a site. Invalid weights surface as an
// error from Drain; feeding after Drain returns an error immediately
// (it used to panic).
func (c *ConcurrentSampler) Feed(site int, it Item) error {
	return c.ds.Observe(site, it)
}

// Drain waits for all in-flight work and returns traffic statistics.
// The close and the statistics read happen in one locked critical
// section, so the returned stats are exactly the post-Close finals —
// Stats() after Drain always agrees with Drain's return value.
func (c *ConcurrentSampler) Drain() (Stats, error) {
	if !c.drained {
		c.stats, c.err = c.ds.h.closeAndStats()
		c.drained = true
	}
	return c.stats, c.err
}

// Sample returns the final sample; it must be called after Drain.
func (c *ConcurrentSampler) Sample() ([]Sampled, error) {
	if !c.drained {
		return nil, fmt.Errorf("wrs: Sample before Drain on ConcurrentSampler")
	}
	return c.ds.Sample(), nil
}
