module wrs

go 1.24
