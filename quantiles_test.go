package wrs_test

import (
	"fmt"
	"math"
	"testing"

	"wrs"
	"wrs/internal/quantile"
)

// TestQuantilesMatrix is the acceptance suite for the fourth
// application: Quantiles runs over every runtime and shards {1, 2, 7}
// through the generic Open/Handle API alone, and its answers stay
// within the provisioned (eps, delta) of the exact weight-CDF computed
// by an oracle that records every fed weight.
func TestQuantilesMatrix(t *testing.T) {
	const k, eps, delta, n = 4, 0.15, 0.1, 8000
	specs := []struct {
		name string
		spec wrs.RuntimeSpec
	}{
		{"sequential", wrs.Sequential()},
		{"goroutines", wrs.Goroutines()},
		{"tcp", wrs.TCP("")},
	}
	for _, rtc := range specs {
		for _, shards := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", rtc.name, shards), func(t *testing.T) {
				q, err := wrs.Open(wrs.Quantiles(k, eps, delta),
					wrs.WithSeed(17), wrs.WithRuntime(rtc.spec), wrs.WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				defer q.Close()
				if got := q.Shards(); got != shards {
					t.Fatalf("Shards() = %d, want %d", got, shards)
				}
				if got := q.K(); got != k {
					t.Fatalf("K() = %d, want %d", got, k)
				}

				var oracle quantile.Oracle
				var batch []wrs.Item
				for i := 0; i < n; i++ {
					w := 1 + float64((i*i)%97) // deterministic, spread-out weights
					oracle.Observe(w)
					batch = append(batch, wrs.Item{ID: uint64(i), Weight: w})
					if len(batch) == 200 {
						if err := q.ObserveBatch(i%k, batch); err != nil {
							t.Fatal(err)
						}
						batch = batch[:0]
					}
				}
				if err := q.Flush(); err != nil {
					t.Fatal(err)
				}

				est := q.Query()
				if !est.Saturated() {
					t.Fatalf("estimate not saturated after %d items (support %d)", n, est.Support())
				}
				var maxErr float64
				for x := 1.0; x <= 98; x++ {
					if e := math.Abs(est.CDF(x) - oracle.CDF(x)); e > maxErr {
						maxErr = e
					}
				}
				if maxErr > eps {
					t.Errorf("max CDF error %.4f > eps %.2f", maxErr, eps)
				}
				if rel := math.Abs(est.Total()-oracle.Total()) / oracle.Total(); rel > eps {
					t.Errorf("Total %v vs true %v: relative error %.4f > eps", est.Total(), oracle.Total(), rel)
				}
				for _, phi := range []float64{0.25, 0.5, 0.9} {
					x, ok := est.Quantile(phi)
					if !ok {
						t.Fatalf("Quantile(%v) not ok", phi)
					}
					// The estimated phi-quantile must sit within eps of phi in
					// rank space under the exact CDF.
					if f := oracle.CDF(x); math.Abs(f-phi) > eps {
						t.Errorf("Quantile(%v) = %v has exact CDF %v (off by > eps)", phi, x, f)
					}
				}
				if q.Stats().Upstream == 0 {
					t.Error("no upstream traffic recorded")
				}
			})
		}
	}
}

// TestQuantilesExactPrefix pins the exact mode: while the stream is
// shorter than the sample size, the estimate is not an estimate at all.
func TestQuantilesExactPrefix(t *testing.T) {
	q, err := wrs.Open(wrs.Quantiles(2, 0.2, 0.2), wrs.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	var oracle quantile.Oracle
	for i := 0; i < 40; i++ {
		w := float64(1 + i%9)
		oracle.Observe(w)
		if err := q.Observe(i%2, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
			t.Fatal(err)
		}
	}
	est := q.Query()
	if est.Saturated() {
		t.Fatal("saturated on a 40-item stream")
	}
	if math.Abs(est.Total()-oracle.Total()) > 1e-9 {
		t.Errorf("exact Total = %v, want %v", est.Total(), oracle.Total())
	}
	for x := 1.0; x <= 9; x++ {
		if math.Abs(est.CDF(x)-oracle.CDF(x)) > 1e-12 {
			t.Errorf("exact CDF(%v) = %v, want %v", x, est.CDF(x), oracle.CDF(x))
		}
	}
}

// TestQuantilesValidation pins constructor validation through Open.
func TestQuantilesValidation(t *testing.T) {
	if _, err := wrs.Open(wrs.Quantiles(2, 0, 0.1)); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := wrs.Open(wrs.Quantiles(2, 0.1, 1)); err == nil {
		t.Error("delta=1 accepted")
	}
	if _, err := wrs.Open(wrs.Quantiles(0, 0.1, 0.1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := wrs.Open(wrs.Quantiles(2, 0.1, 0.1), wrs.WithShards(0)); err == nil {
		t.Error("0 shards accepted")
	}
}
