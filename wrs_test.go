package wrs

import (
	"math"
	"testing"
)

func TestDistributedSamplerBasics(t *testing.T) {
	s, err := NewDistributedSampler(4, 8, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 {
		t.Errorf("K = %d", s.K())
	}
	for i := 0; i < 100; i++ {
		if err := s.Observe(i%4, Item{ID: uint64(i), Weight: float64(1 + i%10)}); err != nil {
			t.Fatal(err)
		}
	}
	smp := s.Sample()
	if len(smp) != 8 {
		t.Fatalf("sample size = %d, want 8", len(smp))
	}
	seen := map[uint64]bool{}
	for i, e := range smp {
		if seen[e.Item.ID] {
			t.Errorf("duplicate id %d in SWOR sample", e.Item.ID)
		}
		seen[e.Item.ID] = true
		if e.Key <= 0 {
			t.Errorf("non-positive key %v", e.Key)
		}
		if i > 0 && smp[i].Key > smp[i-1].Key {
			t.Error("sample not sorted by descending key")
		}
	}
	if s.Stats().Total() == 0 {
		t.Error("no messages recorded")
	}
}

func TestDistributedSamplerSampleSizeRampUp(t *testing.T) {
	s, _ := NewDistributedSampler(2, 10, WithSeed(2))
	for i := 0; i < 5; i++ {
		if err := s.Observe(i%2, Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
		if got := len(s.Sample()); got != i+1 {
			t.Fatalf("after %d items sample size = %d", i+1, got)
		}
	}
}

func TestDistributedSamplerValidation(t *testing.T) {
	if _, err := NewDistributedSampler(0, 5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewDistributedSampler(5, 0); err == nil {
		t.Error("s=0 accepted")
	}
	s, _ := NewDistributedSampler(2, 2)
	if err := s.Observe(0, Item{Weight: -3}); err == nil {
		t.Error("negative weight accepted")
	}
	if err := s.Observe(7, Item{Weight: 1}); err == nil {
		t.Error("out-of-range site accepted")
	}
}

func TestDistributedSamplerDeterministic(t *testing.T) {
	run := func() []Sampled {
		s, _ := NewDistributedSampler(3, 5, WithSeed(99))
		for i := 0; i < 200; i++ {
			s.Observe(i%3, Item{ID: uint64(i), Weight: float64(1 + i%7)})
		}
		return s.Sample()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestConcurrentSamplerEndToEnd(t *testing.T) {
	c, err := NewConcurrentSampler(4, 6, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sample(); err == nil {
		t.Error("Sample before Drain should error")
	}
	for i := 0; i < 5000; i++ {
		c.Feed(i%4, Item{ID: uint64(i), Weight: 1 + float64(i%13)})
	}
	stats, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Upstream == 0 {
		t.Error("no upstream messages")
	}
	smp, err := c.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(smp) != 6 {
		t.Fatalf("sample size %d", len(smp))
	}
	// Drain is idempotent.
	stats2, _ := c.Drain()
	if stats2 != stats {
		t.Error("second Drain changed stats")
	}
}

func TestReservoirFacade(t *testing.T) {
	r, err := NewReservoir(3, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReservoir(0); err == nil {
		t.Error("s=0 accepted")
	}
	if err := r.Observe(Item{Weight: 0}); err == nil {
		t.Error("zero weight accepted")
	}
	for i := 0; i < 50; i++ {
		if err := r.Observe(Item{ID: uint64(i), Weight: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if r.N() != 50 {
		t.Errorf("N = %d", r.N())
	}
	smp := r.Sample()
	if len(smp) != 3 {
		t.Fatalf("sample size %d", len(smp))
	}
	for i := 1; i < len(smp); i++ {
		if smp[i].Key > smp[i-1].Key {
			t.Error("not sorted desc")
		}
	}
}

func TestWithReplacementFacade(t *testing.T) {
	w, err := NewWithReplacement(5, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithReplacement(-1); err == nil {
		t.Error("negative s accepted")
	}
	if got := w.Sample(); len(got) != 0 {
		t.Errorf("empty sampler returned %v", got)
	}
	if err := w.Observe(Item{Weight: math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	for i := 0; i < 20; i++ {
		if err := w.Observe(Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(w.Sample()); got != 5 {
		t.Errorf("sample size %d, want 5", got)
	}
}

func TestHeavyHitterTrackerFacade(t *testing.T) {
	h, err := NewHeavyHitterTracker(4, 0.1, 0.1, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHeavyHitterTracker(4, 0, 0.1); err == nil {
		t.Error("eps=0 accepted")
	}
	// 5 giants + lights: giants must be among candidates.
	for i := 0; i < 5; i++ {
		if err := h.Observe(i%4, Item{ID: uint64(i), Weight: 1e7}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 5; i < 3000; i++ {
		if err := h.Observe(i%4, Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	cand := h.Candidates()
	if len(cand) == 0 || len(cand) > 20 {
		t.Fatalf("candidate count %d", len(cand))
	}
	found := map[uint64]bool{}
	for _, it := range cand {
		found[it.ID] = true
	}
	for i := uint64(0); i < 5; i++ {
		if !found[i] {
			t.Errorf("giant %d missing from candidates", i)
		}
	}
	if h.Stats().Total() == 0 {
		t.Error("no traffic recorded")
	}
}

func TestL1TrackerFacade(t *testing.T) {
	l, err := NewL1Tracker(4, 0.2, 0.2, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewL1Tracker(4, 0.9, 0.1); err == nil {
		t.Error("eps=0.9 accepted")
	}
	var W float64
	for i := 0; i < 2000; i++ {
		w := float64(1 + i%5)
		W += w
		if err := l.Observe(i%4, Item{ID: uint64(i), Weight: w}); err != nil {
			t.Fatal(err)
		}
	}
	est := l.Estimate()
	if math.Abs(est-W)/W > 0.2 {
		t.Errorf("estimate %v vs true %v: relative error %v", est, W, math.Abs(est-W)/W)
	}
	if l.Stats().Total() == 0 {
		t.Error("no traffic recorded")
	}
}

// TestSequentialMessageCountsPinned pins the sequential runtime's exact
// traffic on a fixed stream and seed. The message-complexity
// experiments (E1–E5) are only meaningful if the default runtime stays
// byte-for-byte the synchronous model of the paper — a runtime-layer
// change that alters delivery order or RNG splitting shows up here as a
// count change.
func TestSequentialMessageCountsPinned(t *testing.T) {
	s, err := NewDistributedSampler(8, 16, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		if err := s.Observe(i%8, Item{ID: uint64(i), Weight: float64(1 + i%1000)}); err != nil {
			t.Fatal(err)
		}
	}
	want := Stats{Upstream: 1291, Downstream: 136, UpWords: 3990, DownWords: 272}
	if got := s.Stats(); got != want {
		t.Errorf("sequential traffic changed: got %+v, want %+v", got, want)
	}
}

func TestConcurrentSamplerFeedAfterDrain(t *testing.T) {
	c, err := NewConcurrentSampler(2, 2, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Feed(0, Item{ID: 1, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	// Used to panic on the closed input channel.
	if err := c.Feed(0, Item{ID: 2, Weight: 1}); err == nil {
		t.Error("Feed after Drain succeeded")
	}
}

func TestDistributedSamplerGoroutinesRuntime(t *testing.T) {
	s, err := NewDistributedSampler(4, 6, WithSeed(9), WithRuntime(Goroutines()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := s.Observe(i%4, Item{ID: uint64(i), Weight: 1 + float64(i%13)}); err != nil {
			t.Fatal(err)
		}
	}
	// Flush is a mid-run barrier: the sample is fully delivered without
	// shutting the runtime down.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Sample()); got != 6 {
		t.Fatalf("sample size %d, want 6", got)
	}
	if s.Stats().Upstream == 0 {
		t.Error("no upstream messages")
	}
	for i := 0; i < 100; i++ { // still feedable after Flush
		if err := s.Observe(i%4, Item{ID: uint64(5000 + i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Observe(0, Item{ID: 1, Weight: 1}); err == nil {
		t.Error("Observe after Close succeeded")
	}
	if got := len(s.Sample()); got != 6 { // sample survives Close
		t.Fatalf("sample size after Close %d, want 6", got)
	}
}

func TestDistributedSamplerOverTCP(t *testing.T) {
	s, err := NewDistributedSampler(2, 4, WithSeed(10), WithRuntime(TCP("")))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// 3 giants plus a long unit tail: the giants' keys dominate almost
	// surely, so they must be in the sample on any interleaving.
	for i := 0; i < 3; i++ {
		if err := s.Observe(i%2, Item{ID: uint64(1e6 + i), Weight: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		if err := s.Observe(i%2, Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	smp := s.Sample()
	if len(smp) != 4 {
		t.Fatalf("sample size %d, want 4", len(smp))
	}
	found := map[uint64]bool{}
	for _, e := range smp {
		found[e.Item.ID] = true
	}
	for i := 0; i < 3; i++ {
		if !found[uint64(1e6+i)] {
			t.Errorf("giant %d missing from TCP sample", i)
		}
	}
	st := s.Stats()
	if st.Upstream == 0 || st.Upstream > 2003/2 {
		t.Errorf("upstream messages %d: want sublinear and nonzero", st.Upstream)
	}
}

// TestHeavyHitterTrackerOverTCP is the acceptance end-to-end: the
// Section 4 application running over real connections via
// WithRuntime(TCP(...)), with the residual-heavy-hitter recall intact.
func TestHeavyHitterTrackerOverTCP(t *testing.T) {
	h, err := NewHeavyHitterTracker(4, 0.1, 0.1, WithSeed(11), WithRuntime(TCP("127.0.0.1:0")))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// 5 giants + a long unit tail; every giant is a residual heavy
	// hitter and must be among the candidates.
	for i := 0; i < 5; i++ {
		if err := h.Observe(i%4, Item{ID: uint64(1e6 + i), Weight: 1e7}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4000; i++ {
		if err := h.Observe(i%4, Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	cand := h.Candidates()
	if len(cand) == 0 || len(cand) > 20 {
		t.Fatalf("candidate count %d", len(cand))
	}
	found := map[uint64]bool{}
	for _, it := range cand {
		found[it.ID] = true
	}
	for i := 0; i < 5; i++ {
		if !found[uint64(1e6+i)] {
			t.Errorf("giant %d missing from TCP candidates", i)
		}
	}
	if h.Stats().Total() == 0 {
		t.Error("no traffic recorded")
	}
}

// TestL1TrackerOverTCP is the acceptance end-to-end: the Section 5
// duplication tracker over real connections, estimate within the
// Theorem 6 accuracy.
func TestL1TrackerOverTCP(t *testing.T) {
	const eps = 0.3
	l, err := NewL1Tracker(4, eps, 0.3, WithSeed(12), WithRuntime(TCP("")))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var W float64
	for i := 0; i < 1500; i++ {
		w := float64(1 + i%5)
		W += w
		if err := l.Observe(i%4, Item{ID: uint64(i), Weight: w}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	est := l.Estimate()
	if rel := math.Abs(est-W) / W; rel > 1.5*eps {
		t.Errorf("TCP estimate %v vs true %v: relative error %v > %v", est, W, rel, 1.5*eps)
	}
	if l.Stats().Total() == 0 {
		t.Error("no traffic recorded")
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{Upstream: 3, Downstream: 4}
	if s.Total() != 7 {
		t.Errorf("Total = %d", s.Total())
	}
}
