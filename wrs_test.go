package wrs

import (
	"math"
	"testing"
)

func TestDistributedSamplerBasics(t *testing.T) {
	s, err := NewDistributedSampler(4, 8, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 4 {
		t.Errorf("K = %d", s.K())
	}
	for i := 0; i < 100; i++ {
		if err := s.Observe(i%4, Item{ID: uint64(i), Weight: float64(1 + i%10)}); err != nil {
			t.Fatal(err)
		}
	}
	smp := s.Sample()
	if len(smp) != 8 {
		t.Fatalf("sample size = %d, want 8", len(smp))
	}
	seen := map[uint64]bool{}
	for i, e := range smp {
		if seen[e.Item.ID] {
			t.Errorf("duplicate id %d in SWOR sample", e.Item.ID)
		}
		seen[e.Item.ID] = true
		if e.Key <= 0 {
			t.Errorf("non-positive key %v", e.Key)
		}
		if i > 0 && smp[i].Key > smp[i-1].Key {
			t.Error("sample not sorted by descending key")
		}
	}
	if s.Stats().Total() == 0 {
		t.Error("no messages recorded")
	}
}

func TestDistributedSamplerSampleSizeRampUp(t *testing.T) {
	s, _ := NewDistributedSampler(2, 10, WithSeed(2))
	for i := 0; i < 5; i++ {
		if err := s.Observe(i%2, Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
		if got := len(s.Sample()); got != i+1 {
			t.Fatalf("after %d items sample size = %d", i+1, got)
		}
	}
}

func TestDistributedSamplerValidation(t *testing.T) {
	if _, err := NewDistributedSampler(0, 5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewDistributedSampler(5, 0); err == nil {
		t.Error("s=0 accepted")
	}
	s, _ := NewDistributedSampler(2, 2)
	if err := s.Observe(0, Item{Weight: -3}); err == nil {
		t.Error("negative weight accepted")
	}
	if err := s.Observe(7, Item{Weight: 1}); err == nil {
		t.Error("out-of-range site accepted")
	}
}

func TestDistributedSamplerDeterministic(t *testing.T) {
	run := func() []Sampled {
		s, _ := NewDistributedSampler(3, 5, WithSeed(99))
		for i := 0; i < 200; i++ {
			s.Observe(i%3, Item{ID: uint64(i), Weight: float64(1 + i%7)})
		}
		return s.Sample()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestConcurrentSamplerEndToEnd(t *testing.T) {
	c, err := NewConcurrentSampler(4, 6, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sample(); err == nil {
		t.Error("Sample before Drain should error")
	}
	for i := 0; i < 5000; i++ {
		c.Feed(i%4, Item{ID: uint64(i), Weight: 1 + float64(i%13)})
	}
	stats, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Upstream == 0 {
		t.Error("no upstream messages")
	}
	smp, err := c.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(smp) != 6 {
		t.Fatalf("sample size %d", len(smp))
	}
	// Drain is idempotent.
	stats2, _ := c.Drain()
	if stats2 != stats {
		t.Error("second Drain changed stats")
	}
}

func TestReservoirFacade(t *testing.T) {
	r, err := NewReservoir(3, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReservoir(0); err == nil {
		t.Error("s=0 accepted")
	}
	if err := r.Observe(Item{Weight: 0}); err == nil {
		t.Error("zero weight accepted")
	}
	for i := 0; i < 50; i++ {
		if err := r.Observe(Item{ID: uint64(i), Weight: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if r.N() != 50 {
		t.Errorf("N = %d", r.N())
	}
	smp := r.Sample()
	if len(smp) != 3 {
		t.Fatalf("sample size %d", len(smp))
	}
	for i := 1; i < len(smp); i++ {
		if smp[i].Key > smp[i-1].Key {
			t.Error("not sorted desc")
		}
	}
}

func TestWithReplacementFacade(t *testing.T) {
	w, err := NewWithReplacement(5, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithReplacement(-1); err == nil {
		t.Error("negative s accepted")
	}
	if got := w.Sample(); len(got) != 0 {
		t.Errorf("empty sampler returned %v", got)
	}
	if err := w.Observe(Item{Weight: math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
	for i := 0; i < 20; i++ {
		if err := w.Observe(Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(w.Sample()); got != 5 {
		t.Errorf("sample size %d, want 5", got)
	}
}

func TestHeavyHitterTrackerFacade(t *testing.T) {
	h, err := NewHeavyHitterTracker(4, 0.1, 0.1, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHeavyHitterTracker(4, 0, 0.1); err == nil {
		t.Error("eps=0 accepted")
	}
	// 5 giants + lights: giants must be among candidates.
	for i := 0; i < 5; i++ {
		if err := h.Observe(i%4, Item{ID: uint64(i), Weight: 1e7}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 5; i < 3000; i++ {
		if err := h.Observe(i%4, Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	cand := h.Candidates()
	if len(cand) == 0 || len(cand) > 20 {
		t.Fatalf("candidate count %d", len(cand))
	}
	found := map[uint64]bool{}
	for _, it := range cand {
		found[it.ID] = true
	}
	for i := uint64(0); i < 5; i++ {
		if !found[i] {
			t.Errorf("giant %d missing from candidates", i)
		}
	}
	if h.Stats().Total() == 0 {
		t.Error("no traffic recorded")
	}
}

func TestL1TrackerFacade(t *testing.T) {
	l, err := NewL1Tracker(4, 0.2, 0.2, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewL1Tracker(4, 0.9, 0.1); err == nil {
		t.Error("eps=0.9 accepted")
	}
	var W float64
	for i := 0; i < 2000; i++ {
		w := float64(1 + i%5)
		W += w
		if err := l.Observe(i%4, Item{ID: uint64(i), Weight: w}); err != nil {
			t.Fatal(err)
		}
	}
	est := l.Estimate()
	if math.Abs(est-W)/W > 0.2 {
		t.Errorf("estimate %v vs true %v: relative error %v", est, W, math.Abs(est-W)/W)
	}
	if l.Stats().Total() == 0 {
		t.Error("no traffic recorded")
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{Upstream: 3, Downstream: 4}
	if s.Total() != 7 {
		t.Errorf("Total = %d", s.Total())
	}
}
