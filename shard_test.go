package wrs

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"wrs/internal/heavyhitter"
)

func shardMatrix() []RuntimeSpec {
	return []RuntimeSpec{Sequential(), Goroutines(), TCP("")}
}

// TestShardMatrixSampler is the cross-matrix exactness suite for the
// sampler: every runtime × shards ∈ {1, 2, 7}, checked against the
// centralized oracle on a heavy-head stream — the giant items dominate
// the key order almost surely (weight 1e12 vs unit tail), so any valid
// weighted SWOR must contain all of them, shards or not, and the
// merged sample must be duplicate-free, full-size, and key-sorted.
func TestShardMatrixSampler(t *testing.T) {
	const giants, s = 5, 10
	for _, spec := range shardMatrix() {
		for _, shards := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", spec.String(), shards), func(t *testing.T) {
				ds, err := NewDistributedSampler(4, s, WithSeed(3), WithRuntime(spec), WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				defer ds.Close()
				if got := ds.Shards(); got != shards {
					t.Fatalf("Shards() = %d, want %d", got, shards)
				}
				for i := 0; i < giants; i++ {
					if err := ds.Observe(i%4, Item{ID: uint64(1e6 + i), Weight: 1e12}); err != nil {
						t.Fatal(err)
					}
				}
				var batch []Item
				for i := 0; i < 6000; i++ {
					batch = append(batch, Item{ID: uint64(i), Weight: 1})
					if len(batch) == 250 {
						if err := ds.ObserveBatch(i%4, batch); err != nil {
							t.Fatal(err)
						}
						batch = batch[:0]
					}
				}
				if err := ds.Flush(); err != nil {
					t.Fatal(err)
				}
				smp := ds.Sample()
				if len(smp) != s {
					t.Fatalf("sample size %d, want %d", len(smp), s)
				}
				seen := map[uint64]bool{}
				for i, e := range smp {
					if seen[e.Item.ID] {
						t.Errorf("duplicate id %d in merged SWOR sample", e.Item.ID)
					}
					seen[e.Item.ID] = true
					if i > 0 && smp[i].Key > smp[i-1].Key {
						t.Error("merged sample not sorted by descending key")
					}
				}
				for i := 0; i < giants; i++ {
					if !seen[uint64(1e6+i)] {
						t.Errorf("giant %d missing from merged sample", i)
					}
				}
				if ds.Stats().Upstream == 0 {
					t.Error("no upstream traffic recorded")
				}
			})
		}
	}
}

// TestShardMatrixHeavyHitter runs the HH application over the full
// matrix against the exact residual-heavy-hitter oracle of
// Definition 6: recall of the ground-truth set must be 1 (the giants'
// sampling failure probability at these weights is astronomically
// small, far below the tracker's delta).
func TestShardMatrixHeavyHitter(t *testing.T) {
	const eps = 0.1
	for _, spec := range shardMatrix() {
		for _, shards := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", spec.String(), shards), func(t *testing.T) {
				h, err := NewHeavyHitterTracker(4, eps, 0.1, WithSeed(5), WithRuntime(spec), WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				defer h.Close()
				weights := make([]float64, 4005)
				for i := 0; i < 5; i++ {
					weights[i] = 1e7
				}
				for i := 5; i < len(weights); i++ {
					weights[i] = 1
				}
				for i, w := range weights {
					if err := h.Observe(i%4, Item{ID: uint64(i), Weight: w}); err != nil {
						t.Fatal(err)
					}
				}
				if err := h.Flush(); err != nil {
					t.Fatal(err)
				}
				cand := h.Candidates()
				if len(cand) == 0 || len(cand) > 20 {
					t.Fatalf("candidate count %d", len(cand))
				}
				want := heavyhitter.ExactResidualHH(weights, eps)
				got := map[uint64]bool{}
				for _, it := range cand {
					got[it.ID] = true
				}
				for _, idx := range want {
					if !got[uint64(idx)] {
						t.Errorf("residual heavy hitter %d missing from candidates", idx)
					}
				}
			})
		}
	}
}

// TestShardMatrixL1 runs the L1 application over the full matrix
// against the exact total: the sum of per-shard estimates must stay
// within the Theorem 6 accuracy (1.5·eps slack for asynchrony, as in
// the unsharded TCP test).
func TestShardMatrixL1(t *testing.T) {
	const eps = 0.3
	for _, spec := range shardMatrix() {
		for _, shards := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", spec.String(), shards), func(t *testing.T) {
				l, err := NewL1Tracker(4, eps, 0.3, WithSeed(7), WithRuntime(spec), WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				defer l.Close()
				var W float64
				for i := 0; i < 1500; i++ {
					w := float64(1 + i%5)
					W += w
					if err := l.Observe(i%4, Item{ID: uint64(i), Weight: w}); err != nil {
						t.Fatal(err)
					}
				}
				if err := l.Flush(); err != nil {
					t.Fatal(err)
				}
				est := l.Estimate()
				if rel := math.Abs(est-W) / W; rel > 1.5*eps {
					t.Errorf("estimate %v vs true %v: relative error %v > %v", est, W, rel, 1.5*eps)
				}
			})
		}
	}
}

// TestShardedL1ExactPrefix pins the "shard sums add exactly" property:
// while every shard's epoch threshold is still zero, each shard's
// estimate is its partition's exact total, so the summed estimate
// equals the global total exactly (up to float summation error) — not
// just within eps. Weights are small enough that no shard's s-th
// largest key reaches 1, so no shard leaves its exact prefix.
func TestShardedL1ExactPrefix(t *testing.T) {
	l, err := NewL1Tracker(2, 0.2, 0.2, WithSeed(11), WithShards(7))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var W float64
	for i := 0; i < 14; i++ {
		w := 0.02 * float64(1+i%3)
		W += w
		if err := l.Observe(i%2, Item{ID: uint64(i), Weight: w}); err != nil {
			t.Fatal(err)
		}
	}
	if est := l.Estimate(); math.Abs(est-W) > 1e-9*W {
		t.Errorf("exact-prefix estimate %v != true total %v", est, W)
	}
}

// TestWithShardsValidation pins option validation on every app.
func TestWithShardsValidation(t *testing.T) {
	if _, err := NewDistributedSampler(2, 2, WithShards(0)); err == nil {
		t.Error("sampler accepted 0 shards")
	}
	if _, err := NewHeavyHitterTracker(2, 0.1, 0.1, WithShards(-1)); err == nil {
		t.Error("HH tracker accepted negative shards")
	}
	if _, err := NewL1Tracker(2, 0.2, 0.2, WithShards(0)); err == nil {
		t.Error("L1 tracker accepted 0 shards")
	}
}

// TestShardedSamplerDeterministic pins replayability through the
// fabric: the sequential runtime with shards is still a deterministic
// function of the seed.
func TestShardedSamplerDeterministic(t *testing.T) {
	run := func() []Sampled {
		s, _ := NewDistributedSampler(3, 5, WithSeed(99), WithShards(4))
		for i := 0; i < 2000; i++ {
			s.Observe(i%3, Item{ID: uint64(i), Weight: float64(1 + i%7)})
		}
		return s.Sample()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay sizes diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestConcurrentSamplerDrainStatsConsistent pins the satellite fix:
// Drain's close and statistics read happen in one locked path, so the
// returned stats equal every post-Close Stats() — verified with
// concurrent feeders racing the drain under the race detector.
func TestConcurrentSamplerDrainStatsConsistent(t *testing.T) {
	c, err := NewConcurrentSampler(4, 6, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for site := 0; site < 4; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				// Feed errors after Drain are expected; the point is the
				// race between feeding and draining.
				if err := c.Feed(site, Item{ID: uint64(site*2000 + i), Weight: 1 + float64(i%13)}); err != nil {
					return
				}
			}
		}(site)
	}
	stats, err := c.Drain()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if post := c.ds.Stats(); post != stats {
		t.Errorf("Drain stats %+v != post-Close Stats() %+v", stats, post)
	}
	again, _ := c.Drain()
	if again != stats {
		t.Errorf("second Drain changed stats: %+v vs %+v", again, stats)
	}
	if _, err := c.Sample(); err != nil {
		t.Fatal(err)
	}
}
