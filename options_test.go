package wrs_test

import (
	"strings"
	"testing"

	"wrs"
)

// TestCentralizedConstructorsRejectDistributedOptions is the satellite
// table: the centralized single-stream samplers used to accept
// WithRuntime and WithShards and drop them on the floor; they must now
// return a clear error naming the inapplicable option.
func TestCentralizedConstructorsRejectDistributedOptions(t *testing.T) {
	ctors := []struct {
		name  string
		build func(opts ...wrs.Option) error
	}{
		{"NewReservoir", func(opts ...wrs.Option) error {
			_, err := wrs.NewReservoir(4, opts...)
			return err
		}},
		{"NewWithReplacement", func(opts ...wrs.Option) error {
			_, err := wrs.NewWithReplacement(4, opts...)
			return err
		}},
		{"NewSlidingReservoir", func(opts ...wrs.Option) error {
			_, err := wrs.NewSlidingReservoir(4, 100, opts...)
			return err
		}},
	}
	cases := []struct {
		name    string
		opts    []wrs.Option
		wantErr string // substring; empty means must succeed
	}{
		{"no options", nil, ""},
		{"seed only", []wrs.Option{wrs.WithSeed(7)}, ""},
		{"runtime sequential", []wrs.Option{wrs.WithRuntime(wrs.Sequential())}, "WithRuntime"},
		{"runtime goroutines", []wrs.Option{wrs.WithRuntime(wrs.Goroutines())}, "WithRuntime"},
		{"runtime tcp", []wrs.Option{wrs.WithRuntime(wrs.TCP(""))}, "WithRuntime"},
		{"shards", []wrs.Option{wrs.WithShards(4)}, "WithShards"},
		{"shards of one", []wrs.Option{wrs.WithShards(1)}, "WithShards"},
		{"seed and shards", []wrs.Option{wrs.WithSeed(3), wrs.WithShards(2)}, "WithShards"},
	}
	for _, ctor := range ctors {
		for _, c := range cases {
			t.Run(ctor.name+"/"+c.name, func(t *testing.T) {
				err := ctor.build(c.opts...)
				if c.wantErr == "" {
					if err != nil {
						t.Fatalf("unexpected error: %v", err)
					}
					return
				}
				if err == nil {
					t.Fatalf("inapplicable option silently accepted")
				}
				if !strings.Contains(err.Error(), c.wantErr) || !strings.Contains(err.Error(), ctor.name) {
					t.Fatalf("error %q does not name %s and %s", err, ctor.name, c.wantErr)
				}
			})
		}
	}
}

// TestSlidingReservoirObserveBatch pins batch/loop equivalence on the
// sliding-window sampler: one reservoir fed item by item and one fed in
// batches consume identical randomness and hold identical samples.
func TestSlidingReservoirObserveBatch(t *testing.T) {
	const s, width, n = 4, 50, 300
	loop, err := wrs.NewSlidingReservoir(s, width, wrs.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := wrs.NewSlidingReservoir(s, width, wrs.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	items := make([]wrs.Item, n)
	for i := range items {
		items[i] = wrs.Item{ID: uint64(i), Weight: float64(1 + i%13)}
	}
	for _, it := range items {
		if err := loop.Observe(it); err != nil {
			t.Fatal(err)
		}
	}
	for start := 0; start < n; start += 37 {
		end := start + 37
		if end > n {
			end = n
		}
		if err := batched.ObserveBatch(items[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	if loop.N() != batched.N() || loop.Retained() != batched.Retained() {
		t.Fatalf("state diverged: N %d/%d, Retained %d/%d",
			loop.N(), batched.N(), loop.Retained(), batched.Retained())
	}
	a, b := loop.Sample(), batched.Sample()
	if len(a) != len(b) {
		t.Fatalf("sample sizes diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample[%d] diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSlidingReservoirObserveBatchInvalidWeight pins the error contract:
// the batch stops at the first invalid weight.
func TestSlidingReservoirObserveBatchInvalidWeight(t *testing.T) {
	r, err := wrs.NewSlidingReservoir(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	err = r.ObserveBatch([]wrs.Item{{ID: 1, Weight: 1}, {ID: 2, Weight: -1}, {ID: 3, Weight: 1}})
	if err == nil {
		t.Fatal("invalid weight accepted in batch")
	}
	if r.N() != 1 {
		t.Fatalf("N = %d after failed batch, want 1 (stop at first invalid)", r.N())
	}
}
