package wrs

import (
	"fmt"
	"sync"

	"wrs/internal/fabric"
	rt "wrs/internal/runtime"
	"wrs/internal/xrand"
)

// App is an application descriptor: a recipe for the per-shard protocol
// instances an application runs on, plus the query that turns their
// coordinator state into the application's answer Q. The five shipped
// applications — Sampler, HeavyHitters, L1, Quantiles, Windowed — are
// all values of this interface, and Open runs any of them over any
// runtime and any shard count with one implementation of the ingest
// surface.
//
// The interface is sealed: its methods mention internal packages, so
// only this module can implement it (see DESIGN.md §10 for the contract
// an implementation must meet — in particular the RNG split order that
// keeps seeded runs replayable, and the union-mergeability that keeps
// sharded queries exact). External code consumes App values opaquely:
// build one with a shipped constructor and hand it to Open.
type App[Q any] interface {
	// Sites returns k, the number of sites the application is
	// configured over.
	Sites() int

	// Instances builds one full protocol instance — a coordinator-side
	// state machine plus k site state machines — per shard, splitting
	// every RNG off master in a fixed order (per shard ascending:
	// coordinator first, then sites 0..k-1), and retains whatever
	// per-shard state Query needs. It is called exactly once, by Open;
	// a descriptor is bound to a single Handle.
	Instances(k, shards int, master *xrand.RNG) ([]rt.Instance, error)

	// Query answers the application's query from the live per-shard
	// coordinator state. Per-shard reads must happen inside
	// snaps.View(p, ...) — serialized with that shard's message
	// processing only — and stay O(s) cheap (snapshot, don't sort);
	// everything else (sorting, merging, estimating) runs outside
	// every lock, so a concurrent querier never stalls ingest.
	Query(snaps Snapshots) Q
}

// Snapshots gives an App's Query locked access to per-shard coordinator
// state at query time.
type Snapshots interface {
	// Shards returns the number of protocol shards.
	Shards() int
	// View runs fn serialized with shard p's coordinator message
	// processing; fn can read that shard's coordinator state
	// consistently. Other shards keep ingesting.
	View(p int, fn func())
}

// Handle is an open application: the single implementation of the
// ingest/lifecycle surface (Observe, ObserveBatch, Flush, Stats, Close,
// Shards, K) every application shares, plus the typed, non-blocking
// Query. DistributedSampler, HeavyHitterTracker, and L1Tracker are thin
// wrappers over a Handle; new applications use it directly.
type Handle[Q any] struct {
	app App[Q]
	k   int
	rt  rt.ShardedRuntime

	mu         sync.Mutex
	closed     bool
	finalStats Stats
}

// Open builds the application's protocol instances, starts the selected
// runtime over them, and returns the handle. The zero options are
// Sequential runtime, one shard, and a fixed default seed — exactly the
// model the paper analyzes, deterministic under WithSeed.
func Open[Q any](app App[Q], opts ...Option) (*Handle[Q], error) {
	o := buildOptions(opts)
	if err := fabric.Validate(o.shards); err != nil {
		return nil, err
	}
	k := app.Sites()
	insts, err := app.Instances(k, o.shards, xrand.New(o.seed))
	if err != nil {
		return nil, err
	}
	if len(insts) != o.shards {
		return nil, fmt.Errorf("wrs: app built %d instances for %d shards", len(insts), o.shards)
	}
	run, err := o.rt.buildSharded(insts)
	if err != nil {
		// No handle was created: release the descriptor so a retry with
		// corrected options (e.g. a reachable TCP address) can rebuild
		// instead of hitting the one-shot-binding error.
		if r, ok := any(app).(interface{ reset() }); ok {
			r.reset()
		}
		return nil, err
	}
	return &Handle[Q]{app: app, k: k, rt: run}, nil
}

// Observe delivers one arrival to a site (0 <= site < K()). On
// asynchronous runtimes delivery may be deferred; weight validation
// errors then surface at Flush or Close instead.
func (h *Handle[Q]) Observe(site int, it Item) error {
	return h.rt.Feed(site, it.internal())
}

// ObserveBatch delivers a slice of arrivals to a site in order through
// the runtime's batched path — one enqueue on the goroutine runtime,
// coalesced multi-message frames over TCP, split per shard in one pass
// on a sharded fabric.
func (h *Handle[Q]) ObserveBatch(site int, items []Item) error {
	return h.rt.FeedBatch(site, toInternal(items))
}

// Query answers the application's query. It is valid at any instant and
// deliberately cheap on the ingest locks: the App snapshots each shard
// under that shard's own lock (an O(s) copy) and computes everything
// else outside every lock, so a concurrent querier never stalls ingest.
// On asynchronous runtimes call Flush first for a fully-delivered view.
// Query remains usable after Close.
func (h *Handle[Q]) Query() Q {
	return h.app.Query(handleSnaps{h.rt})
}

// Flush is a barrier: when it returns, everything observed before the
// call has reached the coordinator. A no-op on the sequential runtime.
func (h *Handle[Q]) Flush() error { return h.rt.Flush() }

// Stats returns cumulative network traffic.
func (h *Handle[Q]) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return h.finalStats
	}
	return fromNetsim(h.rt.Stats())
}

// Close shuts the runtime down (goroutines joined, connections closed).
// Query remains usable; further Observe calls error. Close is
// idempotent and returns the first runtime error, if any.
func (h *Handle[Q]) Close() error {
	_, err := h.closeAndStats()
	return err
}

// closeAndStats closes the runtime and returns the final statistics
// from the same critical section — one locked path, so a caller
// draining the runtime can never observe stats from a different moment
// than the close it performed (ConcurrentSampler.Drain relies on this).
func (h *Handle[Q]) closeAndStats() (Stats, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return h.finalStats, nil
	}
	err := h.rt.Close()
	h.finalStats = fromNetsim(h.rt.Stats())
	h.closed = true
	return h.finalStats, err
}

// Shards returns the number of protocol shards (1 unless WithShards).
func (h *Handle[Q]) Shards() int { return h.rt.Shards() }

// K returns the number of sites.
func (h *Handle[Q]) K() int { return h.k }

// handleSnaps adapts the sharded runtime to the Snapshots contract.
type handleSnaps struct{ rt rt.ShardedRuntime }

func (s handleSnaps) Shards() int           { return s.rt.Shards() }
func (s handleSnaps) View(p int, fn func()) { s.rt.DoShard(p, fn) }
