package wrs_test

import (
	"fmt"
	"testing"

	"wrs"
)

// equivalence_test.go pins the wrapper contract of the App/Handle
// redesign: the legacy constructors (NewDistributedSampler,
// NewHeavyHitterTracker, NewL1Tracker) must produce bit-identical
// samples, candidates, and estimates to a direct wrs.Open of the
// corresponding App descriptor, for fixed seeds, across every runtime
// and shard count.
//
// On the asynchronous runtimes two separately-built stacks only replay
// identically when their message interleavings match, so the feeder
// flushes after every arrival — twice, because one barrier proves
// upstream delivery everywhere but only proves broadcast application at
// the site whose message triggered it; the second round-trip puts every
// pong behind those broadcasts on each connection's FIFO, after which
// both stacks have applied the identical control plane and their site
// RNGs consume identical bit streams.

func equivalenceMatrix() []struct {
	name string
	spec func() wrs.RuntimeSpec
	sync bool // flush-per-arrival needed for deterministic replay
} {
	return []struct {
		name string
		spec func() wrs.RuntimeSpec
		sync bool
	}{
		{"sequential", wrs.Sequential, false},
		{"goroutines", wrs.Goroutines, true},
		{"tcp", func() wrs.RuntimeSpec { return wrs.TCP("") }, true},
	}
}

// feedPair drives two ingest surfaces in lockstep over the same stream.
func feedPair(t *testing.T, k, n int, seed uint64, sync bool,
	observe func(site int, it wrs.Item) error, flush func() error) {
	t.Helper()
	for i := 0; i < n; i++ {
		it := wrs.Item{ID: uint64(i)*2654435761 + seed, Weight: float64(1 + (i*i+int(seed))%37)}
		if err := observe(i%k, it); err != nil {
			t.Fatal(err)
		}
		if sync {
			if err := flush(); err != nil {
				t.Fatal(err)
			}
			if err := flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
}

func TestWrapperOpenEquivalenceSampler(t *testing.T) {
	const k, s, n = 3, 8, 220
	for _, rtc := range equivalenceMatrix() {
		for _, shards := range []int{1, 2, 7} {
			for _, seed := range []uint64{1, 7, 42} {
				t.Run(fmt.Sprintf("%s/shards=%d/seed=%d", rtc.name, shards, seed), func(t *testing.T) {
					opts := []wrs.Option{wrs.WithSeed(seed), wrs.WithRuntime(rtc.spec()), wrs.WithShards(shards)}
					legacy, err := wrs.NewDistributedSampler(k, s, opts...)
					if err != nil {
						t.Fatal(err)
					}
					defer legacy.Close()
					direct, err := wrs.Open(wrs.Sampler(k, s), opts...)
					if err != nil {
						t.Fatal(err)
					}
					defer direct.Close()

					feedPair(t, k, n, seed, rtc.sync, func(site int, it wrs.Item) error {
						if err := legacy.Observe(site, it); err != nil {
							return err
						}
						return direct.Observe(site, it)
					}, func() error {
						if err := legacy.Flush(); err != nil {
							return err
						}
						return direct.Flush()
					})

					a, b := legacy.Sample(), direct.Query()
					if len(a) != len(b) {
						t.Fatalf("sample sizes diverged: legacy %d, open %d", len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("sample[%d] diverged: legacy %+v, open %+v", i, a[i], b[i])
						}
					}
				})
			}
		}
	}
}

func TestWrapperOpenEquivalenceHeavyHitters(t *testing.T) {
	const k, eps, delta, n = 3, 0.2, 0.2, 200
	for _, rtc := range equivalenceMatrix() {
		for _, shards := range []int{1, 2, 7} {
			for _, seed := range []uint64{1, 7, 42} {
				t.Run(fmt.Sprintf("%s/shards=%d/seed=%d", rtc.name, shards, seed), func(t *testing.T) {
					opts := []wrs.Option{wrs.WithSeed(seed), wrs.WithRuntime(rtc.spec()), wrs.WithShards(shards)}
					legacy, err := wrs.NewHeavyHitterTracker(k, eps, delta, opts...)
					if err != nil {
						t.Fatal(err)
					}
					defer legacy.Close()
					direct, err := wrs.Open(wrs.HeavyHitters(k, eps, delta), opts...)
					if err != nil {
						t.Fatal(err)
					}
					defer direct.Close()

					feedPair(t, k, n, seed, rtc.sync, func(site int, it wrs.Item) error {
						if err := legacy.Observe(site, it); err != nil {
							return err
						}
						return direct.Observe(site, it)
					}, func() error {
						if err := legacy.Flush(); err != nil {
							return err
						}
						return direct.Flush()
					})

					a, b := legacy.Candidates(), direct.Query()
					if len(a) != len(b) {
						t.Fatalf("candidate counts diverged: legacy %d, open %d", len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("candidate[%d] diverged: legacy %+v, open %+v", i, a[i], b[i])
						}
					}
				})
			}
		}
	}
}

func TestWrapperOpenEquivalenceL1(t *testing.T) {
	const k, eps, delta, n = 3, 0.45, 0.45, 150
	for _, rtc := range equivalenceMatrix() {
		for _, shards := range []int{1, 2, 7} {
			for _, seed := range []uint64{1, 7, 42} {
				t.Run(fmt.Sprintf("%s/shards=%d/seed=%d", rtc.name, shards, seed), func(t *testing.T) {
					opts := []wrs.Option{wrs.WithSeed(seed), wrs.WithRuntime(rtc.spec()), wrs.WithShards(shards)}
					legacy, err := wrs.NewL1Tracker(k, eps, delta, opts...)
					if err != nil {
						t.Fatal(err)
					}
					defer legacy.Close()
					direct, err := wrs.Open(wrs.L1(k, eps, delta), opts...)
					if err != nil {
						t.Fatal(err)
					}
					defer direct.Close()

					feedPair(t, k, n, seed, rtc.sync, func(site int, it wrs.Item) error {
						if err := legacy.Observe(site, it); err != nil {
							return err
						}
						return direct.Observe(site, it)
					}, func() error {
						if err := legacy.Flush(); err != nil {
							return err
						}
						return direct.Flush()
					})

					if a, b := legacy.Estimate(), direct.Query(); a != b {
						t.Fatalf("estimates diverged: legacy %v, open %v", a, b)
					}
				})
			}
		}
	}
}

// TestAppDescriptorSingleUse pins the one-shot binding: per-shard query
// state lives on the descriptor, so a second Open of the same value
// must fail instead of silently crossing two handles' queries.
func TestAppDescriptorSingleUse(t *testing.T) {
	app := wrs.Sampler(2, 4)
	h, err := wrs.Open(app)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := wrs.Open(app); err == nil {
		t.Fatal("second Open of the same descriptor succeeded")
	}
}

// TestAppDescriptorRetryAfterFailedOpen pins the rollback half of the
// one-shot binding: an Open that fails after building instances (here:
// a TCP listen on a non-local address) releases the descriptor, so a
// retry with corrected options works instead of erroring as "already
// opened".
func TestAppDescriptorRetryAfterFailedOpen(t *testing.T) {
	app := wrs.Sampler(2, 4)
	if _, err := wrs.Open(app, wrs.WithRuntime(wrs.TCP("203.0.113.1:1"))); err == nil {
		t.Fatal("Open on an unbindable address succeeded")
	}
	h, err := wrs.Open(app, wrs.WithSeed(3))
	if err != nil {
		t.Fatalf("retry after failed Open: %v", err)
	}
	defer h.Close()
	if err := h.Observe(0, wrs.Item{ID: 1, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if got := len(h.Query()); got != 1 {
		t.Fatalf("sample size %d after retry, want 1", got)
	}
}
