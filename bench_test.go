// Benchmarks: one per experiment in DESIGN.md's index (E1-E13, A1-A3).
// Each reports the figure of merit the paper argues about — almost always
// messages per stream update — via b.ReportMetric, alongside wall time.
// cmd/wrs-bench runs the full-size sweeps; these are the compact,
// continuously-runnable versions.
package wrs_test

import (
	"math"
	"testing"

	"wrs"
	"wrs/internal/baseline"
	"wrs/internal/core"
	"wrs/internal/heavyhitter"
	"wrs/internal/l1track"
	"wrs/internal/netsim"
	"wrs/internal/sample"
	"wrs/internal/stream"
	"wrs/internal/swr"
	"wrs/internal/window"
	"wrs/internal/xrand"
)

const benchN = 20000

func runCoreBench(b *testing.B, cfg core.Config, n int, wf stream.WeightFn, af stream.AssignFn) {
	b.Helper()
	var msgs, updates int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		master := xrand.New(uint64(i) + 1)
		coord := core.NewCoordinator(cfg, master.Split())
		sites := make([]netsim.Site[core.Message], cfg.K)
		for j := 0; j < cfg.K; j++ {
			sites[j] = core.NewSite(j, cfg, master.Split())
		}
		cl := netsim.NewCluster[core.Message](coord, sites)
		g := stream.NewGenerator(n, cfg.K, wf, af)
		if err := cl.Run(g, xrand.New(uint64(i)+77)); err != nil {
			b.Fatal(err)
		}
		msgs += cl.Stats.Total()
		updates += int64(n)
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
	b.ReportMetric(float64(msgs)/float64(updates), "msgs/update")
}

// E1: messages vs W (Theorem 3).
func BenchmarkE1MessagesVsW(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run("W="+itoa(n), func(b *testing.B) {
			runCoreBench(b, core.Config{K: 32, S: 16}, n, stream.UnitWeights(), stream.RoundRobin(32))
		})
	}
}

// E2: messages vs k (Theorem 3).
func BenchmarkE2MessagesVsK(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			runCoreBench(b, core.Config{K: k, S: 16}, benchN, stream.UnitWeights(), stream.RoundRobin(k))
		})
	}
}

// E3: messages vs s (Theorem 3).
func BenchmarkE3MessagesVsS(b *testing.B) {
	for _, s := range []int{4, 32, 256} {
		b.Run("s="+itoa(s), func(b *testing.B) {
			runCoreBench(b, core.Config{K: 64, S: s}, benchN, stream.UnitWeights(), stream.RoundRobin(64))
		})
	}
}

// E4: ratio against the Corollary 2 lower-bound formula.
func BenchmarkE4OptimalityRatio(b *testing.B) {
	cfg := core.Config{K: 16, S: 8}
	var msgs int64
	for i := 0; i < b.N; i++ {
		master := xrand.New(uint64(i) + 5)
		coord := core.NewCoordinator(cfg, master.Split())
		sites := make([]netsim.Site[core.Message], cfg.K)
		for j := 0; j < cfg.K; j++ {
			sites[j] = core.NewSite(j, cfg, master.Split())
		}
		cl := netsim.NewCluster[core.Message](coord, sites)
		g := stream.NewGenerator(benchN, cfg.K, stream.UnitWeights(), stream.RoundRobin(cfg.K))
		if err := cl.Run(g, xrand.New(uint64(i)+6)); err != nil {
			b.Fatal(err)
		}
		msgs += cl.Stats.Total()
	}
	bound := float64(cfg.K) * math.Log(float64(benchN)/float64(cfg.S)) /
		math.Log(1+float64(cfg.K)/float64(cfg.S))
	b.ReportMetric(float64(msgs)/float64(b.N)/bound, "x-lower-bound")
}

// E5: ours vs the naive baselines of Section 1.2.
func BenchmarkE5VsBaselines(b *testing.B) {
	const k, s = 16, 32
	b.Run("ours", func(b *testing.B) {
		runCoreBench(b, core.Config{K: k, S: s}, benchN, stream.UnitWeights(), stream.RoundRobin(k))
	})
	b.Run("independent", func(b *testing.B) {
		var msgs int64
		for i := 0; i < b.N; i++ {
			master := xrand.New(uint64(i) + 9)
			coord := baseline.NewCoordinator(s)
			sites := make([]netsim.Site[baseline.Msg], k)
			for j := 0; j < k; j++ {
				sites[j] = baseline.NewIndependentSite(s, master.Split())
			}
			cl := netsim.NewCluster[baseline.Msg](coord, sites)
			g := stream.NewGenerator(benchN, k, stream.UnitWeights(), stream.RoundRobin(k))
			if err := cl.Run(g, xrand.New(uint64(i)+10)); err != nil {
				b.Fatal(err)
			}
			msgs += cl.Stats.Total()
		}
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
		b.ReportMetric(float64(msgs)/float64(b.N)/float64(benchN), "msgs/update")
	})
	b.Run("sendall", func(b *testing.B) {
		var msgs int64
		for i := 0; i < b.N; i++ {
			master := xrand.New(uint64(i) + 11)
			coord := baseline.NewCoordinator(s)
			sites := make([]netsim.Site[baseline.Msg], k)
			for j := 0; j < k; j++ {
				sites[j] = baseline.NewSendAllSite(master.Split())
			}
			cl := netsim.NewCluster[baseline.Msg](coord, sites)
			g := stream.NewGenerator(benchN, k, stream.UnitWeights(), stream.RoundRobin(k))
			if err := cl.Run(g, xrand.New(uint64(i)+12)); err != nil {
				b.Fatal(err)
			}
			msgs += cl.Stats.Total()
		}
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
	})
}

// E6: full-protocol sampling distribution (throughput of the validation
// workload; the statistical assertion itself lives in the test suite).
func BenchmarkE6Distribution(b *testing.B) {
	weights := []float64{1, 2, 4, 8, 16}
	cfg := core.Config{K: 3, S: 2}
	for i := 0; i < b.N; i++ {
		master := xrand.New(uint64(i)*2654435761 + 17)
		coord := core.NewCoordinator(cfg, master.Split())
		sites := make([]netsim.Site[core.Message], cfg.K)
		for j := 0; j < cfg.K; j++ {
			sites[j] = core.NewSite(j, cfg, master.Split())
		}
		cl := netsim.NewCluster[core.Message](coord, sites)
		for j, w := range weights {
			if err := cl.Feed(j%cfg.K, stream.Item{ID: uint64(j), Weight: w}); err != nil {
				b.Fatal(err)
			}
		}
		if len(coord.Query()) != cfg.S {
			b.Fatal("bad sample size")
		}
	}
}

// E7: residual heavy hitters, ours vs SWR baseline.
func BenchmarkE7ResidualHH(b *testing.B) {
	const k = 8
	p := heavyhitter.Params{Eps: 0.1, Delta: 0.1}
	mkStream := func() *stream.Stream {
		s := &stream.Stream{K: k}
		id := 0
		add := func(w float64) {
			s.Updates = append(s.Updates, stream.Update{Pos: id, Site: id % k,
				Item: stream.Item{ID: uint64(id), Weight: w}})
			id++
		}
		for i := 0; i < 5; i++ {
			add(1e8)
		}
		for i := 0; i < 6; i++ {
			add(1300)
		}
		for i := 0; i < 10000; i++ {
			add(1)
		}
		return s
	}
	b.Run("swor", func(b *testing.B) {
		var msgs int64
		var recall float64
		for i := 0; i < b.N; i++ {
			tr, err := heavyhitter.NewTracker(k, p, xrand.New(uint64(i)+100))
			if err != nil {
				b.Fatal(err)
			}
			sites := make([]netsim.Site[core.Message], k)
			for j, s := range tr.Sites {
				sites[j] = s
			}
			cl := netsim.NewCluster[core.Message](tr.Coord, sites)
			if err := cl.RunStream(mkStream()); err != nil {
				b.Fatal(err)
			}
			msgs += cl.Stats.Total()
			want := make([]int, 11)
			for j := range want {
				want[j] = j
			}
			recall += heavyhitter.Recall(tr.Query(), want)
		}
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
		b.ReportMetric(recall/float64(b.N), "residual-recall")
	})
	b.Run("swr", func(b *testing.B) {
		var msgs int64
		var recall float64
		for i := 0; i < b.N; i++ {
			tr, err := heavyhitter.NewSWRTracker(k, p, xrand.New(uint64(i)+200))
			if err != nil {
				b.Fatal(err)
			}
			sites := make([]netsim.Site[swr.Message], k)
			for j, s := range tr.Sites {
				sites[j] = s
			}
			cl := netsim.NewCluster[swr.Message](tr.Coord, sites)
			if err := cl.RunStream(mkStream()); err != nil {
				b.Fatal(err)
			}
			msgs += cl.Stats.Total()
			want := make([]int, 11)
			for j := range want {
				want[j] = j
			}
			recall += heavyhitter.Recall(tr.Query(), want)
		}
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
		b.ReportMetric(recall/float64(b.N), "residual-recall")
	})
}

// E8: the Theorem 5 geometric lower-bound instance.
func BenchmarkE8HHLowerBound(b *testing.B) {
	const k, eps, n = 4, 0.2, 250
	p := heavyhitter.Params{Eps: eps, Delta: 0.1}
	var msgs int64
	for i := 0; i < b.N; i++ {
		tr, err := heavyhitter.NewTracker(k, p, xrand.New(uint64(i)+42))
		if err != nil {
			b.Fatal(err)
		}
		sites := make([]netsim.Site[core.Message], k)
		for j, s := range tr.Sites {
			sites[j] = s
		}
		cl := netsim.NewCluster[core.Message](tr.Coord, sites)
		g := stream.NewGenerator(n, k, stream.GeometricWeights(eps), stream.RoundRobin(k))
		if err := cl.Run(g, xrand.New(uint64(i)+43)); err != nil {
			b.Fatal(err)
		}
		msgs += cl.Stats.Total()
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
}

// E9: the Section 5 comparison table rows.
func BenchmarkE9L1Table(b *testing.B) {
	const k, eps, n = 16, 0.1, 50000
	b.Run("counter14", func(b *testing.B) {
		var msgs int64
		for i := 0; i < b.N; i++ {
			coord := l1track.NewCounterCoordinator(k)
			sites := make([]netsim.Site[l1track.CounterMsg], k)
			for j := 0; j < k; j++ {
				sites[j] = l1track.NewCounterSite(j, eps)
			}
			cl := netsim.NewCluster[l1track.CounterMsg](coord, sites)
			g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
			if err := cl.Run(g, xrand.New(uint64(i)+1)); err != nil {
				b.Fatal(err)
			}
			msgs += cl.Stats.Total()
		}
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
	})
	b.Run("hyz23", func(b *testing.B) {
		var msgs int64
		for i := 0; i < b.N; i++ {
			master := xrand.New(uint64(i) + 2)
			coord := l1track.NewHYZCoordinator(k, eps)
			sites := make([]netsim.Site[l1track.HYZMsg], k)
			for j := 0; j < k; j++ {
				sites[j] = l1track.NewHYZSite(j, master.Split())
			}
			cl := netsim.NewCluster[l1track.HYZMsg](coord, sites)
			g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
			if err := cl.Run(g, xrand.New(uint64(i)+3)); err != nil {
				b.Fatal(err)
			}
			msgs += cl.Stats.Total()
		}
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
	})
	b.Run("ours", func(b *testing.B) {
		var msgs int64
		for i := 0; i < b.N; i++ {
			coord, sites, err := l1track.NewDupTracker(k,
				l1track.DupParams{Eps: eps, Delta: 0.2, SFactor: 4}, xrand.New(uint64(i)+4))
			if err != nil {
				b.Fatal(err)
			}
			ns := make([]netsim.Site[core.Message], k)
			for j, s := range sites {
				ns[j] = s
			}
			cl := netsim.NewCluster[core.Message](coord, ns)
			g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
			if err := cl.Run(g, xrand.New(uint64(i)+5)); err != nil {
				b.Fatal(err)
			}
			msgs += cl.Stats.Total()
		}
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
	})
}

// E10: L1 accuracy of the paper's tracker.
func BenchmarkE10L1Accuracy(b *testing.B) {
	const k, n = 4, 3000
	var relErr float64
	for i := 0; i < b.N; i++ {
		coord, sites, err := l1track.NewDupTracker(k,
			l1track.DupParams{Eps: 0.15, Delta: 0.2, SFactor: 4}, xrand.New(uint64(i)+30))
		if err != nil {
			b.Fatal(err)
		}
		ns := make([]netsim.Site[core.Message], k)
		for j, s := range sites {
			ns[j] = s
		}
		cl := netsim.NewCluster[core.Message](coord, ns)
		rng := xrand.New(uint64(i) + 31)
		var W float64
		for j := 0; j < n; j++ {
			w := 1 + math.Floor(9*rng.Float64())
			W += w
			if err := cl.Feed(j%k, stream.Item{ID: uint64(j), Weight: w}); err != nil {
				b.Fatal(err)
			}
		}
		relErr += math.Abs(coord.Estimate()-W) / W
	}
	b.ReportMetric(relErr/float64(b.N), "rel-err")
}

// E11: the Theorem 7 k^i-epoch lower-bound instance.
func BenchmarkE11L1LowerBound(b *testing.B) {
	const k = 8
	n := 1
	for n < 40000 {
		n *= k
	}
	var msgs int64
	for i := 0; i < b.N; i++ {
		coord := l1track.NewCounterCoordinator(k)
		sites := make([]netsim.Site[l1track.CounterMsg], k)
		for j := 0; j < k; j++ {
			sites[j] = l1track.NewCounterSite(j, 0.5)
		}
		cl := netsim.NewCluster[l1track.CounterMsg](coord, sites)
		g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.EpochBlocks(k))
		if err := cl.Run(g, xrand.New(uint64(i)+7)); err != nil {
			b.Fatal(err)
		}
		msgs += cl.Stats.Total()
	}
	bound := float64(k) * math.Log(float64(n)) / math.Log(float64(k))
	b.ReportMetric(float64(msgs)/float64(b.N)/bound, "x-lower-bound")
}

// E12: SWOR vs SWR diversity through the public API.
func BenchmarkE12SworVsSwr(b *testing.B) {
	feed := func(obs func(wrs.Item) error) {
		for i := 0; i < 5; i++ {
			if err := obs(wrs.Item{ID: uint64(i), Weight: 1e9}); err != nil {
				b.Fatal(err)
			}
		}
		for i := 5; i < 5000; i++ {
			if err := obs(wrs.Item{ID: uint64(i), Weight: 1}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("swor", func(b *testing.B) {
		var distinct float64
		for i := 0; i < b.N; i++ {
			s, err := wrs.NewDistributedSampler(4, 20, wrs.WithSeed(uint64(i)+1))
			if err != nil {
				b.Fatal(err)
			}
			j := 0
			feed(func(it wrs.Item) error { j++; return s.Observe(j%4, it) })
			ids := map[uint64]bool{}
			for _, e := range s.Sample() {
				ids[e.Item.ID] = true
			}
			distinct += float64(len(ids))
		}
		b.ReportMetric(distinct/float64(b.N), "distinct-ids")
	})
	b.Run("swr", func(b *testing.B) {
		var distinct float64
		for i := 0; i < b.N; i++ {
			s, err := wrs.NewWithReplacement(20, wrs.WithSeed(uint64(i)+1))
			if err != nil {
				b.Fatal(err)
			}
			feed(s.Observe)
			ids := map[uint64]bool{}
			for _, it := range s.Sample() {
				ids[it.ID] = true
			}
			distinct += float64(len(ids))
		}
		b.ReportMetric(distinct/float64(b.N), "distinct-ids")
	})
}

// E13: distributed weighted SWR message complexity (Corollary 1).
func BenchmarkE13SwrMessages(b *testing.B) {
	cfg := swr.Config{K: 16, S: 8}
	var msgs int64
	for i := 0; i < b.N; i++ {
		master := xrand.New(uint64(i) + 50)
		coord := swr.NewCoordinator(cfg)
		sites := make([]netsim.Site[swr.Message], cfg.K)
		for j := 0; j < cfg.K; j++ {
			sites[j] = swr.NewSite(cfg, master.Split())
		}
		cl := netsim.NewCluster[swr.Message](coord, sites)
		g := stream.NewGenerator(benchN, cfg.K, stream.UnitWeights(), stream.RoundRobin(cfg.K))
		if err := cl.Run(g, xrand.New(uint64(i)+51)); err != nil {
			b.Fatal(err)
		}
		msgs += cl.Stats.Total()
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
	b.ReportMetric(float64(msgs)/float64(b.N)/float64(benchN), "msgs/update")
}

// A1: level-set ablation.
func BenchmarkA1LevelSetAblation(b *testing.B) {
	wf := stream.HeavyHeadWeights(5, 1e12)
	b.Run("on", func(b *testing.B) {
		runCoreBench(b, core.Config{K: 8, S: 8}, benchN, wf, stream.RoundRobin(8))
	})
	b.Run("off", func(b *testing.B) {
		runCoreBench(b, core.Config{K: 8, S: 8, DisableLevelSets: true}, benchN, wf, stream.RoundRobin(8))
	})
}

// A2: epoch-filter ablation.
func BenchmarkA2EpochAblation(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		runCoreBench(b, core.Config{K: 8, S: 8}, benchN, stream.UnitWeights(), stream.RoundRobin(8))
	})
	b.Run("off", func(b *testing.B) {
		runCoreBench(b, core.Config{K: 8, S: 8, DisableEpochs: true}, benchN, stream.UnitWeights(), stream.RoundRobin(8))
	})
}

// A3: Proposition 7 bit complexity of the site filter.
func BenchmarkA3LazyBits(b *testing.B) {
	cfg := core.Config{K: 8, S: 8}
	var decBits, obs int64
	for i := 0; i < b.N; i++ {
		master := xrand.New(uint64(i) + 60)
		coord := core.NewCoordinator(cfg, master.Split())
		raw := make([]*core.Site, cfg.K)
		sites := make([]netsim.Site[core.Message], cfg.K)
		for j := 0; j < cfg.K; j++ {
			raw[j] = core.NewSite(j, cfg, master.Split())
			sites[j] = raw[j]
		}
		cl := netsim.NewCluster[core.Message](coord, sites)
		g := stream.NewGenerator(benchN, cfg.K, stream.UnitWeights(), stream.RoundRobin(cfg.K))
		if err := cl.Run(g, xrand.New(uint64(i)+61)); err != nil {
			b.Fatal(err)
		}
		for _, s := range raw {
			decBits += s.DecisionBits
			obs += s.Observed
		}
	}
	b.ReportMetric(float64(decBits)/float64(obs), "bits/decision")
}

// Micro-benchmark: single-site observe throughput in steady state.
func BenchmarkSiteObserveThroughput(b *testing.B) {
	cfg := core.Config{K: 8, S: 8}
	master := xrand.New(1)
	coord := core.NewCoordinator(cfg, master.Split())
	sites := make([]netsim.Site[core.Message], cfg.K)
	for j := 0; j < cfg.K; j++ {
		sites[j] = core.NewSite(j, cfg, master.Split())
	}
	cl := netsim.NewCluster[core.Message](coord, sites)
	// Warm up so epochs are active and the filter path dominates.
	g := stream.NewGenerator(50000, cfg.K, stream.UnitWeights(), stream.RoundRobin(cfg.K))
	if err := cl.Run(g, xrand.New(2)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmark: sequential ES sampler (the centralized oracle).
func BenchmarkSequentialES(b *testing.B) {
	es := sample.NewES(64, xrand.New(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es.Observe(stream.Item{ID: uint64(i), Weight: 1 + float64(i%100)})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for n > 0 {
		pos--
		buf[pos] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[pos:])
}

// E14: the sliding-window extension (Section 6 open problem).
func BenchmarkE14SlidingWindow(b *testing.B) {
	const k, s, width, n = 4, 8, 2000, 20000
	var msgs int64
	for i := 0; i < b.N; i++ {
		cl, err := window.NewSlideCluster(k, s, width, xrand.New(uint64(i)+70))
		if err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(uint64(i) + 71)
		for j := 0; j < n; j++ {
			it := stream.Item{ID: uint64(j), Weight: 1 + 9*rng.Float64()}
			if err := cl.Feed(j%k, it); err != nil {
				b.Fatal(err)
			}
		}
		msgs += cl.Upstream + cl.Downstream
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs")
	b.ReportMetric(float64(msgs)/float64(b.N)/float64(n), "msgs/update")
}
