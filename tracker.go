package wrs

import (
	"fmt"
	"math"
)

func errSampleSize(s int) error {
	return fmt.Errorf("wrs: sample size must be >= 1, got %d", s)
}

func validateWeight(w float64) error {
	if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("wrs: weight must be positive and finite, got %v", w)
	}
	return nil
}

// HeavyHitterTracker continuously monitors heavy hitters with the
// *residual* guarantee of Section 4: with probability 1-delta, a query
// contains every item whose weight is at least eps times the residual L1
// (total weight after the top ceil(1/eps) items are removed). This is
// strictly stronger than the usual eps-L1 guarantee and is exactly what
// with-replacement sampling cannot provide on skewed streams.
//
// It is a thin wrapper over Open(HeavyHitters(k, eps, delta)). Like
// every application in this package it runs over any runtime and any
// shard count: WithRuntime(TCP(addr)) monitors heavy hitters over real
// connections, WithShards(p) partitions the sample across p parallel
// coordinator shards (per-shard samples merge exactly by key, so the
// residual guarantee is unchanged).
type HeavyHitterTracker struct {
	h *Handle[[]Item]
}

// NewHeavyHitterTracker creates a tracker over k sites with parameters
// eps, delta in (0,1). The underlying sample size is
// ceil(6·ln(1/(eps·delta))/eps) (Theorem 4).
func NewHeavyHitterTracker(k int, eps, delta float64, opts ...Option) (*HeavyHitterTracker, error) {
	h, err := Open(HeavyHitters(k, eps, delta), opts...)
	if err != nil {
		return nil, err
	}
	return &HeavyHitterTracker{h: h}, nil
}

// Observe delivers one arrival to a site.
func (h *HeavyHitterTracker) Observe(site int, it Item) error { return h.h.Observe(site, it) }

// ObserveBatch delivers a slice of arrivals to a site through the
// runtime's batched path.
func (h *HeavyHitterTracker) ObserveBatch(site int, items []Item) error {
	return h.h.ObserveBatch(site, items)
}

// Candidates returns at most ceil(2/eps) items, heaviest first; with
// probability 1-delta every residual eps-heavy hitter is among them. On
// asynchronous runtimes call Flush first for a fully-delivered view.
// Each shard is snapshotted under its own ingest lock; the exact top-s
// key merge and the weight ranking run outside every lock.
func (h *HeavyHitterTracker) Candidates() []Item { return h.h.Query() }

// Shards returns the number of protocol shards (1 unless WithShards).
func (h *HeavyHitterTracker) Shards() int { return h.h.Shards() }

// Flush is a barrier: when it returns, everything observed before the
// call has reached the coordinator.
func (h *HeavyHitterTracker) Flush() error { return h.h.Flush() }

// Stats returns cumulative network traffic.
func (h *HeavyHitterTracker) Stats() Stats { return h.h.Stats() }

// Close shuts the runtime down; Candidates remains usable. Idempotent.
func (h *HeavyHitterTracker) Close() error { return h.h.Close() }

// L1Tracker continuously maintains a (1±eps)-approximation of the total
// weight across all sites (Section 5, Theorem 6): each update is
// duplicated l = s/(2·eps) times into a weighted SWOR of size
// s = Θ(log(1/delta)/eps²) and the s-th largest key calibrates the total.
//
// It is a thin wrapper over Open(L1(k, eps, delta)). Like every
// application in this package it runs over any runtime and any shard
// count: WithRuntime(TCP(addr)) tracks the distributed total over real
// connections, WithShards(p) splits the stream across p parallel shards
// whose per-partition estimates add exactly to the global total.
type L1Tracker struct {
	h *Handle[float64]
}

// NewL1Tracker creates a tracker over k sites; eps in (0, 0.5), delta in
// (0,1). delta is the failure probability at any one fixed time step
// (union-bound over eps^-1·log(W) steps for an always-correct guarantee,
// per Corollary 3). With WithShards(p) each shard is provisioned at
// delta/p, so the union bound over the p summed per-partition
// estimators preserves the overall 1-delta guarantee (per-shard sample
// size grows only logarithmically in p).
func NewL1Tracker(k int, eps, delta float64, opts ...Option) (*L1Tracker, error) {
	h, err := Open(L1(k, eps, delta), opts...)
	if err != nil {
		return nil, err
	}
	return &L1Tracker{h: h}, nil
}

// Observe delivers one arrival to a site.
func (l *L1Tracker) Observe(site int, it Item) error { return l.h.Observe(site, it) }

// ObserveBatch delivers a slice of arrivals to a site through the
// runtime's batched path.
func (l *L1Tracker) ObserveBatch(site int, items []Item) error { return l.h.ObserveBatch(site, items) }

// Estimate returns the current (1±eps) estimate of the total weight. On
// asynchronous runtimes call Flush first for a fully-delivered view.
// Shard estimates cover disjoint partitions of the stream, so their
// sum estimates the global L1 (exactly, while every shard is still in
// its exact prefix).
func (l *L1Tracker) Estimate() float64 { return l.h.Query() }

// Shards returns the number of protocol shards (1 unless WithShards).
func (l *L1Tracker) Shards() int { return l.h.Shards() }

// Flush is a barrier: when it returns, everything observed before the
// call has reached the coordinator.
func (l *L1Tracker) Flush() error { return l.h.Flush() }

// Stats returns cumulative network traffic.
func (l *L1Tracker) Stats() Stats { return l.h.Stats() }

// Close shuts the runtime down; Estimate remains usable. Idempotent.
func (l *L1Tracker) Close() error { return l.h.Close() }
