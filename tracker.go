package wrs

import (
	"fmt"
	"math"

	"wrs/internal/core"
	"wrs/internal/heavyhitter"
	"wrs/internal/l1track"
	"wrs/internal/netsim"
	"wrs/internal/xrand"
)

func errSampleSize(s int) error {
	return fmt.Errorf("wrs: sample size must be >= 1, got %d", s)
}

func validateWeight(w float64) error {
	if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("wrs: weight must be positive and finite, got %v", w)
	}
	return nil
}

// HeavyHitterTracker continuously monitors heavy hitters with the
// *residual* guarantee of Section 4: with probability 1-delta, a query
// contains every item whose weight is at least eps times the residual L1
// (total weight after the top ceil(1/eps) items are removed). This is
// strictly stronger than the usual eps-L1 guarantee and is exactly what
// with-replacement sampling cannot provide on skewed streams.
type HeavyHitterTracker struct {
	tracker *heavyhitter.Tracker
	cluster *netsim.Cluster[core.Message]
}

// NewHeavyHitterTracker creates a tracker over k sites with parameters
// eps, delta in (0,1). The underlying sample size is
// ceil(6·ln(1/(eps·delta))/eps) (Theorem 4).
func NewHeavyHitterTracker(k int, eps, delta float64, opts ...Option) (*HeavyHitterTracker, error) {
	o := buildOptions(opts)
	tr, err := heavyhitter.NewTracker(k, heavyhitter.Params{Eps: eps, Delta: delta}, xrand.New(o.seed))
	if err != nil {
		return nil, err
	}
	sites := make([]netsim.Site[core.Message], k)
	for i, s := range tr.Sites {
		sites[i] = s
	}
	return &HeavyHitterTracker{
		tracker: tr,
		cluster: netsim.NewCluster[core.Message](tr.Coord, sites),
	}, nil
}

// Observe delivers one arrival to a site.
func (h *HeavyHitterTracker) Observe(site int, it Item) error {
	return h.cluster.Feed(site, it.internal())
}

// Candidates returns at most ceil(2/eps) items, heaviest first; with
// probability 1-delta every residual eps-heavy hitter is among them.
func (h *HeavyHitterTracker) Candidates() []Item {
	items := h.tracker.Query()
	out := make([]Item, len(items))
	for i, it := range items {
		out[i] = fromInternal(it)
	}
	return out
}

// Stats returns cumulative network traffic.
func (h *HeavyHitterTracker) Stats() Stats { return fromNetsim(h.cluster.Stats) }

// L1Tracker continuously maintains a (1±eps)-approximation of the total
// weight across all sites (Section 5, Theorem 6): each update is
// duplicated l = s/(2·eps) times into a weighted SWOR of size
// s = Θ(log(1/delta)/eps²) and the s-th largest key calibrates the total.
type L1Tracker struct {
	coord   *l1track.DupCoordinator
	cluster *netsim.Cluster[core.Message]
}

// NewL1Tracker creates a tracker over k sites; eps in (0, 0.5), delta in
// (0,1). delta is the failure probability at any one fixed time step
// (union-bound over eps^-1·log(W) steps for an always-correct guarantee,
// per Corollary 3).
func NewL1Tracker(k int, eps, delta float64, opts ...Option) (*L1Tracker, error) {
	o := buildOptions(opts)
	coord, sites, err := l1track.NewDupTracker(k, l1track.DupParams{Eps: eps, Delta: delta}, xrand.New(o.seed))
	if err != nil {
		return nil, err
	}
	ns := make([]netsim.Site[core.Message], k)
	for i, s := range sites {
		ns[i] = s
	}
	return &L1Tracker{coord: coord, cluster: netsim.NewCluster[core.Message](coord, ns)}, nil
}

// Observe delivers one arrival to a site.
func (l *L1Tracker) Observe(site int, it Item) error {
	return l.cluster.Feed(site, it.internal())
}

// Estimate returns the current (1±eps) estimate of the total weight.
func (l *L1Tracker) Estimate() float64 { return l.coord.Estimate() }

// Stats returns cumulative network traffic.
func (l *L1Tracker) Stats() Stats { return fromNetsim(l.cluster.Stats) }
