// Example: latency-budget percentiles over a distributed fleet, through
// the generic application API.
//
// Eight collectors each observe request sizes (weights) and talk to one
// coordinator. The Quantiles application — opened directly through
// wrs.Open, no dedicated tracker type — estimates where the bytes
// actually live: the weight-CDF and its quantiles, e.g. "items of
// weight <= x carry half the total traffic". The protocol underneath is
// the same message-optimal weighted SWOR as every other application,
// here on the goroutine-per-site runtime with a 2-way sharded
// coordinator.
package main

import (
	"fmt"
	"math"

	"wrs"
	"wrs/internal/xrand"
)

func main() {
	const k, n = 8, 200000

	q, err := wrs.Open(wrs.Quantiles(k, 0.1, 0.05),
		wrs.WithSeed(42), wrs.WithRuntime(wrs.Goroutines()), wrs.WithShards(2))
	if err != nil {
		panic(err)
	}
	defer q.Close()

	// Pareto-distributed request sizes: a heavy tail carries much of the
	// traffic — exactly where a mean hides what a quantile shows.
	rng := xrand.New(7)
	var trueTotal float64
	for i := 0; i < n; i++ {
		w := math.Pow(1-rng.Float64()*0.999999, -1/1.3)
		trueTotal += w
		if err := q.Observe(i%k, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
			panic(err)
		}
	}
	if err := q.Flush(); err != nil {
		panic(err)
	}

	est := q.Query()
	fmt.Printf("observed %d requests over %d sites (%d shards)\n", n, q.K(), q.Shards())
	fmt.Printf("total traffic: estimated %.0f, true %.0f (%.1f%% off)\n",
		est.Total(), trueTotal, 100*math.Abs(est.Total()-trueTotal)/trueTotal)
	for _, phi := range []float64{0.5, 0.9, 0.99} {
		x, _ := est.Quantile(phi)
		fmt.Printf("%2.0f%% of bytes are on requests of size <= %.2f\n", 100*phi, x)
	}
	st := q.Stats()
	fmt.Printf("messages: %d (%.4f per update)\n", st.Total(), float64(st.Total())/n)
}
