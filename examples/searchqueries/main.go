// Distributed search-query sampling — the paper's second motivating
// application (Section 1): a search engine runs many frontends, each
// logging queries weighted by served results (or cost). The coordinator
// maintains a "typical queries" panel. This example contrasts sampling
// without replacement against with replacement on a realistic Zipfian
// query distribution with a viral outlier, and exercises the concurrent
// (goroutine-per-site) runtime — ConcurrentSampler is the
// wrs.Goroutines() runtime behind the drain-then-sample API; swap in
// wrs.NewDistributedSampler(..., wrs.WithRuntime(wrs.TCP(addr))) to run
// the identical protocol over real connections.
//
// Run with: go run ./examples/searchqueries
package main

import (
	"fmt"
	"log"
	"math"

	"wrs"
)

func main() {
	const (
		frontends = 12
		queries   = 200000
		panelSize = 15
	)

	// Concurrent runtime: each frontend is a goroutine; Feed is the
	// ingestion point (here driven from one producer for brevity).
	concurrent, err := wrs.NewConcurrentSampler(frontends, panelSize, wrs.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	swr, err := wrs.NewWithReplacement(panelSize, wrs.WithSeed(12))
	if err != nil {
		log.Fatal(err)
	}

	// Zipfian query popularity over a 50k-query vocabulary, plus one
	// viral query that alone accounts for ~half the total weight.
	state := uint64(99)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var total float64
	for i := 0; i < queries; i++ {
		var it wrs.Item
		if i == 1000 {
			it = wrs.Item{ID: 0, Weight: 3e6} // the viral query: >half of all weight
		} else {
			rank := 1 + next()%50000
			w := math.Ceil(1000 / math.Sqrt(float64(rank))) // Zipf-ish, alpha = 0.5
			it = wrs.Item{ID: 1 + uint64(i), Weight: w}
		}
		total += it.Weight
		if err := concurrent.Feed(int(next()%frontends), it); err != nil {
			log.Fatal(err)
		}
		if err := swr.Observe(it); err != nil {
			log.Fatal(err)
		}
	}

	stats, err := concurrent.Drain()
	if err != nil {
		log.Fatal(err)
	}
	panel, err := concurrent.Sample()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d queries on %d frontends (total weight %.0f)\n", queries, frontends, total)
	fmt.Println("\nquery panel — weighted WITHOUT replacement (distinct by construction):")
	viral := 0
	for _, e := range panel {
		if e.Item.ID == 0 {
			viral++
		}
	}
	fmt.Printf("  %d panel slots, %d held by the viral query\n", len(panel), viral)

	distinct := map[uint64]bool{}
	viralSWR := 0
	for _, it := range swr.Sample() {
		distinct[it.ID] = true
		if it.ID == 0 {
			viralSWR++
		}
	}
	fmt.Println("\nsame panel size WITH replacement (centralized, for contrast):")
	fmt.Printf("  %d distinct queries, %d of %d slots are the viral query\n",
		len(distinct), viralSWR, panelSize)

	fmt.Printf("\nconcurrent runtime traffic: %d messages for %d updates (%.4f/update)\n",
		stats.Total(), queries, float64(stats.Total())/float64(queries))
	fmt.Println("the without-replacement panel stays diverse even under a viral query;")
	fmt.Println("with replacement, the heavy query crowds out the panel (Section 1 of the paper).")
}
