// Command sessionwindow demonstrates the Windowed application:
// "what is trending in the last N events" over distributed sources.
//
// Four frontend servers report page engagements (weight = seconds of
// attention). Interest shifts mid-stream: early traffic is dominated by
// a product launch, late traffic by an incident postmortem. An
// infinite-horizon sampler keeps reporting the launch forever — its
// giant early engagements never expire. The windowed sampler answers
// from the most recent 2000 events of each source's stream, so its
// sample tracks the shift.
//
// The window is per sub-stream: every (site, shard) machine keeps its
// own last-width events, so a quiet frontend's recent history is never
// flushed out by a noisy one.
package main

import (
	"fmt"

	"wrs"
	"wrs/internal/xrand"
)

const (
	sites = 4
	s     = 8
	width = 2000
	n     = 20000
)

// pages in each era; weights are engagement seconds.
var (
	launchPages   = []uint64{100, 101, 102}
	incidentPages = []uint64{900, 901}
)

func main() {
	windowed, err := wrs.Open(wrs.Windowed(sites, s, width), wrs.WithSeed(7))
	if err != nil {
		panic(err)
	}
	defer windowed.Close()
	forever, err := wrs.Open(wrs.Sampler(sites, s), wrs.WithSeed(7))
	if err != nil {
		panic(err)
	}
	defer forever.Close()

	rng := xrand.New(42)
	feed := func(site int, it wrs.Item) {
		if err := windowed.Observe(site, it); err != nil {
			panic(err)
		}
		if err := forever.Observe(site, it); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n; i++ {
		it := wrs.Item{ID: uint64(1e6 + i), Weight: 1 + 2*rng.Float64()} // background browsing
		switch {
		case i < n/2 && rng.Float64() < 0.08:
			it = wrs.Item{ID: launchPages[rng.Intn(len(launchPages))], Weight: 200 + 100*rng.Float64()}
		case i >= n/2 && rng.Float64() < 0.08:
			it = wrs.Item{ID: incidentPages[rng.Intn(len(incidentPages))], Weight: 60 + 30*rng.Float64()}
		}
		feed(i%sites, it)
	}

	classify := func(items []wrs.Sampled) (launch, incident, other int) {
		for _, e := range items {
			switch {
			case e.Item.ID >= 100 && e.Item.ID <= 102:
				launch++
			case e.Item.ID >= 900 && e.Item.ID <= 901:
				incident++
			default:
				other++
			}
		}
		return
	}

	ws := windowed.Query()
	wl, wi, wo := classify(ws.Items)
	fl, fi, fo := classify(forever.Query())
	fmt.Printf("after %d events (interest shifted at %d):\n\n", n, n/2)
	fmt.Printf("  infinite horizon sample: launch=%d incident=%d other=%d  <- stuck on the launch\n", fl, fi, fo)
	fmt.Printf("  last-%d-events sample:  launch=%d incident=%d other=%d  <- tracks the incident\n", width, wl, wi, wo)
	fmt.Printf("\nwindow coverage: %d live events across %d sub-streams, %d candidates retained\n",
		ws.Window, sites, ws.Retained)
	st := windowed.Stats()
	fmt.Printf("windowed traffic: %d upstream, %d downstream (%.4f msgs/event; push-only, no broadcasts)\n",
		st.Upstream, st.Downstream, float64(st.Total())/float64(n))
	if wi == 0 || fi != 0 {
		panic("unexpected sample composition; the demo's premise broke")
	}
}
