// Network monitoring — the paper's motivating application (Section 1):
// k monitoring devices each see a high-rate stream of flow records
// (flow id, bytes). The coordinator needs, at all times,
//
//  1. a byte-weighted sample of flows ("what does typical traffic look
//     like, weighted by volume?"), and
//  2. the elephant flows *after* the well-known top talkers are excluded
//     — residual heavy hitters, which plain heavy-hitter monitoring
//     cannot surface because a handful of backbone flows dominate the
//     total volume.
//
// Run with: go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"

	"wrs"
)

const (
	devices = 16
	flows   = 200000
	eps     = 0.1 // elephant threshold: 10% of residual volume
	delta   = 0.05

	backboneFlows = 4 // ~40 GB each: the top talkers everyone knows
	mediumFlows   = 8 // ~150 MB each: the hidden elephants
	backboneBytes = 4e10
	mediumBytes   = 1.5e8
)

// nextRand is a tiny splitmix64 so the example is dependency-free and
// deterministic.
func nextRand(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func record(i int, state *uint64) wrs.Item {
	switch {
	case i < backboneFlows:
		return wrs.Item{ID: uint64(i), Weight: backboneBytes + float64(i)}
	case i < backboneFlows+mediumFlows:
		return wrs.Item{ID: uint64(i), Weight: mediumBytes + float64(i)}
	default: // mice: 1-8 KB
		kb := 1 + float64(nextRand(state)%8)
		return wrs.Item{ID: uint64(i), Weight: kb * 1024}
	}
}

func main() {
	hh, err := wrs.NewHeavyHitterTracker(devices, eps, delta, wrs.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	sampler, err := wrs.NewDistributedSampler(devices, 25, wrs.WithSeed(8))
	if err != nil {
		log.Fatal(err)
	}

	state := uint64(1)
	var totalBytes, miceBytes float64
	for i := 0; i < flows; i++ {
		rec := record(i, &state)
		totalBytes += rec.Weight
		if i >= backboneFlows+mediumFlows {
			miceBytes += rec.Weight
		}
		device := int(nextRand(&state) % devices)
		if err := hh.Observe(device, rec); err != nil {
			log.Fatal(err)
		}
		if err := sampler.Observe(device, rec); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("monitored %d flows across %d devices, %.2f TB total (%.2f GB excluding top talkers)\n",
		flows, devices, totalBytes/1e12, (totalBytes-backboneFlows*backboneBytes)/1e9)
	fmt.Printf("each hidden elephant is %.4f%% of total volume — far below any plain\n",
		100*mediumBytes/totalBytes)
	fmt.Printf("10%% heavy-hitter bar, but %.0f%% of the residual volume.\n",
		100*mediumBytes/(miceBytes+2*mediumBytes))

	backbone, other := 0, 0
	for _, e := range sampler.Sample() {
		if e.Item.ID < backboneFlows {
			backbone++
		} else {
			other++
		}
	}
	fmt.Printf("\nbyte-weighted flow sample: %d backbone + %d tail flows\n", backbone, other)
	fmt.Println("  (without replacement: each top talker appears at most once)")

	fmt.Println("\nelephant-flow candidates with the residual guarantee (top 12 shown):")
	foundMedium := 0
	for rank, it := range hh.Candidates() {
		kind := "mouse"
		switch {
		case it.ID < backboneFlows:
			kind = "backbone"
		case it.ID < backboneFlows+mediumFlows:
			kind = "HIDDEN ELEPHANT"
			foundMedium++
		}
		if rank < 12 {
			fmt.Printf("  #%2d  flow %6d  %10.1f MB  %s\n", rank+1, it.ID, it.Weight/1e6, kind)
		}
	}
	fmt.Printf("\nhidden elephants surfaced: %d of %d\n", foundMedium, mediumFlows)

	s1, s2 := hh.Stats(), sampler.Stats()
	fmt.Printf("network cost: tracker %d + sampler %d messages for %d records (%.2f%%)\n",
		s1.Total(), s2.Total(), flows,
		100*float64(s1.Total()+s2.Total())/float64(flows))
}
