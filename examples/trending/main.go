// Trending topics over a sliding window — the paper's future-work
// extension (Section 6), shipped here as a centralized building block: a
// social feed emits (topic, engagement) events; the dashboard wants an
// engagement-weighted sample of the *last hour only*, so stale virality
// ages out. The sampler retains O(s·log(width)) items instead of the
// whole window.
//
// Run with: go run ./examples/trending
package main

import (
	"fmt"
	"log"

	"wrs"
)

func main() {
	const (
		windowSize = 50000 // "one hour" of events
		panel      = 8
		events     = 250000
	)

	trending, err := wrs.NewSlidingReservoir(panel, windowSize, wrs.WithSeed(33))
	if err != nil {
		log.Fatal(err)
	}

	state := uint64(3)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}

	// Phase 1: topic 777 goes viral early, then dies completely.
	// Phase 2: organic traffic only.
	for i := 0; i < events; i++ {
		var it wrs.Item
		if i < 40000 && next()%4 == 0 {
			it = wrs.Item{ID: 777, Weight: 500} // the early viral topic
		} else {
			it = wrs.Item{ID: 1000 + next()%2000, Weight: 1 + float64(next()%20)}
		}
		if err := trending.Observe(it); err != nil {
			log.Fatal(err)
		}
		if i == 45000 || i == events-1 {
			viral := 0
			for _, e := range trending.Sample() {
				if e.Item.ID == 777 {
					viral++
				}
			}
			fmt.Printf("after %6d events: viral topic holds %d of %d panel slots "+
				"(buffered %d of %d window items)\n",
				i+1, viral, panel, trending.Retained(), windowSize)
		}
	}

	fmt.Println("\nfinal trending panel (last window only):")
	for _, e := range trending.Sample() {
		fmt.Printf("  topic %4d  engagement %4.0f  key %.3g\n", e.Item.ID, e.Item.Weight, e.Key)
	}
	fmt.Println("\nthe viral topic dominated while inside the window and aged out")
	fmt.Println("completely once it slid past — no manual reset required.")
}
