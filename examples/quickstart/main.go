// Quickstart: maintain a weighted sample without replacement over a
// stream partitioned across 8 sites, and inspect the message cost.
//
// The default runtime is the deterministic sequential simulator; add
// wrs.WithRuntime(wrs.Goroutines()) or wrs.WithRuntime(wrs.TCP(addr))
// to NewDistributedSampler to run the identical protocol on the
// goroutine cluster or over real TCP connections.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wrs"
)

func main() {
	const (
		sites      = 8
		sampleSize = 10
		n          = 100000
	)

	sampler, err := wrs.NewDistributedSampler(sites, sampleSize, wrs.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// A skewed workload: item i has weight 1 + (i mod 1000), dealt
	// round-robin across sites — in a real deployment each site would
	// call Observe on its own local arrivals.
	var totalWeight float64
	for i := 0; i < n; i++ {
		w := float64(1 + i%1000)
		totalWeight += w
		if err := sampler.Observe(i%sites, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("observed %d items, total weight %.0f\n", n, totalWeight)
	fmt.Println("\nweighted sample without replacement (largest key first):")
	for _, e := range sampler.Sample() {
		fmt.Printf("  item %6d  weight %6.0f  key %.3g\n", e.Item.ID, e.Item.Weight, e.Key)
	}

	stats := sampler.Stats()
	fmt.Printf("\nnetwork cost: %d messages (%d up, %d down) for %d updates — %.4f msgs/update\n",
		stats.Total(), stats.Upstream, stats.Downstream, n,
		float64(stats.Total())/float64(n))
	fmt.Println("a naive protocol would have sent one message per update.")
}
