// Distributed L1 (count) tracking — Section 5 of the paper: a fleet of
// collectors ingests billing events; a dashboard needs the total billed
// volume within ±eps at all times, without shipping every event. This
// example runs the paper's duplication-based tracker and reports the
// achieved accuracy over time and the message cost against the trivial
// send-everything protocol.
//
// Run with: go run ./examples/l1tracking
package main

import (
	"fmt"
	"log"
	"math"

	"wrs"
)

func main() {
	const (
		collectors = 8
		events     = 1000000
		eps        = 0.15
		delta      = 0.1
	)

	tracker, err := wrs.NewL1Tracker(collectors, eps, delta, wrs.WithSeed(21))
	if err != nil {
		log.Fatal(err)
	}

	state := uint64(5)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}

	fmt.Printf("%10s %14s %14s %10s\n", "events", "true total", "estimate", "rel.err")
	var trueTotal float64
	worst := 0.0
	for i := 0; i < events; i++ {
		// Billing events: 1-4 units each.
		units := 1 + float64(next()%4)
		trueTotal += units
		if err := tracker.Observe(int(next()%collectors), wrs.Item{ID: uint64(i), Weight: units}); err != nil {
			log.Fatal(err)
		}
		if (i+1)%200000 == 0 {
			est := tracker.Estimate()
			rel := math.Abs(est-trueTotal) / trueTotal
			if rel > worst {
				worst = rel
			}
			fmt.Printf("%10d %14.0f %14.0f %9.2f%%\n", i+1, trueTotal, est, 100*rel)
		}
	}

	stats := tracker.Stats()
	fmt.Printf("\nworst checkpoint error: %.2f%% (target eps = %.0f%%)\n", 100*worst, 100*eps)
	fmt.Printf("message cost: %d messages vs %d events sent naively (%.2f%%)\n",
		stats.Total(), events, 100*float64(stats.Total())/float64(events))
}
