package wrs_test

import (
	"fmt"

	"wrs"
)

// The distributed sampler maintains a weighted SWOR across sites; with a
// fixed seed the run is fully reproducible.
func ExampleDistributedSampler() {
	s, err := wrs.NewDistributedSampler(2, 3, wrs.WithSeed(7))
	if err != nil {
		panic(err)
	}
	weights := []float64{1, 10, 100, 1000, 10000}
	for i, w := range weights {
		if err := s.Observe(i%2, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
			panic(err)
		}
	}
	sample := s.Sample()
	fmt.Println("sample size:", len(sample))
	// The heaviest item is in the sample with probability ~0.9999 under
	// this seed's draw; assert only the structural properties.
	distinct := map[uint64]bool{}
	for _, e := range sample {
		distinct[e.Item.ID] = true
	}
	fmt.Println("distinct items:", len(distinct))
	// Output:
	// sample size: 3
	// distinct items: 3
}

// The L1 tracker maintains a (1±eps) estimate of the total weight.
func ExampleL1Tracker() {
	l, err := wrs.NewL1Tracker(4, 0.2, 0.2, wrs.WithSeed(1))
	if err != nil {
		panic(err)
	}
	var total float64
	for i := 0; i < 5000; i++ {
		w := float64(1 + i%3)
		total += w
		if err := l.Observe(i%4, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
			panic(err)
		}
	}
	est := l.Estimate()
	fmt.Println("within 20%:", est > 0.8*total && est < 1.2*total)
	// Output:
	// within 20%: true
}

// The heavy-hitter tracker surfaces items that are large relative to the
// residual stream (after the top 1/eps are removed).
func ExampleHeavyHitterTracker() {
	h, err := wrs.NewHeavyHitterTracker(2, 0.2, 0.1, wrs.WithSeed(3))
	if err != nil {
		panic(err)
	}
	// One giant plus a long unit tail.
	h.Observe(0, wrs.Item{ID: 999, Weight: 1e7})
	for i := 0; i < 2000; i++ {
		h.Observe(i%2, wrs.Item{ID: uint64(i), Weight: 1})
	}
	found := false
	for _, it := range h.Candidates() {
		if it.ID == 999 {
			found = true
		}
	}
	fmt.Println("giant found:", found)
	// Output:
	// giant found: true
}

// WithRuntime swaps the delivery substrate without changing the
// protocol: here the same sampler runs on the goroutine-per-site
// runtime, with Flush as the delivery barrier.
func ExampleWithRuntime() {
	s, err := wrs.NewDistributedSampler(4, 8, wrs.WithSeed(2), wrs.WithRuntime(wrs.Goroutines()))
	if err != nil {
		panic(err)
	}
	defer s.Close()
	for i := 0; i < 10000; i++ {
		if err := s.Observe(i%4, wrs.Item{ID: uint64(i), Weight: 1 + float64(i%50)}); err != nil {
			panic(err)
		}
	}
	// Flush guarantees everything fed has reached the coordinator.
	if err := s.Flush(); err != nil {
		panic(err)
	}
	fmt.Println("sample size:", len(s.Sample()))
	fmt.Println("sublinear traffic:", s.Stats().Upstream < 5000)
	// Output:
	// sample size: 8
	// sublinear traffic: true
}

// TCP is the deployment-shaped runtime: a coordinator server on a real
// listener and one flow-controlled connection per site, assembled
// behind the same API.
func ExampleTCP() {
	s, err := wrs.NewDistributedSampler(2, 5, wrs.WithSeed(3), wrs.WithRuntime(wrs.TCP("127.0.0.1:0")))
	if err != nil {
		panic(err)
	}
	defer s.Close()
	for i := 0; i < 2000; i++ {
		if err := s.Observe(i%2, wrs.Item{ID: uint64(i), Weight: 1 + float64(i%9)}); err != nil {
			panic(err)
		}
	}
	if err := s.Flush(); err != nil {
		panic(err)
	}
	fmt.Println("sample size over TCP:", len(s.Sample()))
	// Output:
	// sample size over TCP: 5
}

// WithShards partitions the protocol across P parallel coordinator
// shards — here over real TCP connections: one server hosts all four
// shard coordinators behind per-shard ingest locks, each of the two
// site connections multiplexes every shard with shard-tagged frames,
// and Sample merges the per-shard samples exactly (the top-s of the
// union is the top-s of the per-shard top-s sets).
func ExampleWithShards() {
	s, err := wrs.NewDistributedSampler(2, 5,
		wrs.WithSeed(6), wrs.WithRuntime(wrs.TCP("127.0.0.1:0")), wrs.WithShards(4))
	if err != nil {
		panic(err)
	}
	defer s.Close()
	for i := 0; i < 2000; i++ {
		if err := s.Observe(i%2, wrs.Item{ID: uint64(i), Weight: 1 + float64(i%9)}); err != nil {
			panic(err)
		}
	}
	if err := s.Flush(); err != nil {
		panic(err)
	}
	fmt.Println("shards:", s.Shards())
	fmt.Println("merged sample size:", len(s.Sample()))
	// Output:
	// shards: 4
	// merged sample size: 5
}

// Every application runs over every runtime: heavy-hitter monitoring
// over real TCP connections is one option away.
func ExampleHeavyHitterTracker_tcp() {
	h, err := wrs.NewHeavyHitterTracker(4, 0.2, 0.1, wrs.WithSeed(4), wrs.WithRuntime(wrs.TCP("")))
	if err != nil {
		panic(err)
	}
	defer h.Close()
	// One giant plus a long unit tail, spread over the sites.
	if err := h.Observe(0, wrs.Item{ID: 999999, Weight: 1e7}); err != nil {
		panic(err)
	}
	for i := 0; i < 3000; i++ {
		if err := h.Observe(i%4, wrs.Item{ID: uint64(i), Weight: 1}); err != nil {
			panic(err)
		}
	}
	if err := h.Flush(); err != nil {
		panic(err)
	}
	found := false
	for _, it := range h.Candidates() {
		if it.ID == 999999 {
			found = true
		}
	}
	fmt.Println("giant found over TCP:", found)
	// Output:
	// giant found over TCP: true
}

// Open is the generic application layer: every protocol application is
// a descriptor passed to Open, which returns a typed Handle owning the
// whole ingest surface (Observe, ObserveBatch, Flush, Stats, Close) and
// a non-blocking Query. The legacy constructors are thin wrappers over
// exactly this path.
func ExampleOpen() {
	h, err := wrs.Open(wrs.Sampler(2, 3), wrs.WithSeed(7))
	if err != nil {
		panic(err)
	}
	defer h.Close()
	weights := []float64{1, 10, 100, 1000, 10000}
	for i, w := range weights {
		if err := h.Observe(i%2, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
			panic(err)
		}
	}
	fmt.Println("sites:", h.K())
	fmt.Println("sample size:", len(h.Query()))
	// Output:
	// sites: 2
	// sample size: 3
}

// Quantiles is the fourth application, shipped entirely through the
// generic API: it estimates the stream's weight-CDF — the fraction of
// total weight on items of weight <= x — from the maintained sample,
// over any runtime and shard count.
func ExampleQuantiles() {
	q, err := wrs.Open(wrs.Quantiles(4, 0.1, 0.05), wrs.WithSeed(11), wrs.WithShards(2))
	if err != nil {
		panic(err)
	}
	defer q.Close()
	// 5000 light items (weight 1) and 500 heavy ones (weight 90): the
	// heavy tail carries ~90% of the weight.
	for i := 0; i < 5500; i++ {
		w := 1.0
		if i%11 == 10 {
			w = 90
		}
		if err := q.Observe(i%4, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
			panic(err)
		}
	}
	est := q.Query()
	light := est.CDF(1) // fraction of weight on the light items (truth: 0.1)
	fmt.Println("light-item share below 0.2:", light < 0.2)
	median, _ := est.Quantile(0.5)
	fmt.Println("median weight is heavy:", median == 90)
	// Output:
	// light-item share below 0.2: true
	// median weight is heavy: true
}

// Windowed is the distributed sliding window: each site keeps a window
// over its own sub-stream, the query samples the union — and a heavy
// item is forgotten once `width` newer items arrive on its sub-stream,
// on any runtime and shard count.
func ExampleWindowed() {
	h, err := wrs.Open(wrs.Windowed(2, 3, 10), wrs.WithSeed(7))
	if err != nil {
		panic(err)
	}
	defer h.Close()
	// A giant at site 0, then ten newer items on the same sub-stream:
	// the giant's position leaves site 0's window exactly at the tenth.
	if err := h.Observe(0, wrs.Item{ID: 1, Weight: 1e9}); err != nil {
		panic(err)
	}
	for i := 2; i <= 10; i++ {
		h.Observe(0, wrs.Item{ID: uint64(i), Weight: 1})
	}
	inSample := func() bool {
		for _, e := range h.Query().Items {
			if e.Item.ID == 1 {
				return true
			}
		}
		return false
	}
	fmt.Println("giant sampled while in window:", inSample())
	h.Observe(0, wrs.Item{ID: 11, Weight: 1})
	fmt.Println("giant sampled after expiry:", inSample())
	fmt.Println("window population:", h.Query().Window)
	// Output:
	// giant sampled while in window: true
	// giant sampled after expiry: false
	// window population: 10
}

// The sliding reservoir forgets items that leave the window.
func ExampleSlidingReservoir() {
	r, err := wrs.NewSlidingReservoir(2, 10, wrs.WithSeed(5))
	if err != nil {
		panic(err)
	}
	// A giant that will expire, then quiet traffic.
	r.Observe(wrs.Item{ID: 1, Weight: 1e9})
	for i := 2; i <= 20; i++ {
		r.Observe(wrs.Item{ID: uint64(i), Weight: 1})
	}
	stale := false
	for _, e := range r.Sample() {
		if e.Item.ID == 1 {
			stale = true
		}
	}
	fmt.Println("expired giant still sampled:", stale)
	// Output:
	// expired giant still sampled: false
}
