package wrs_test

import (
	"fmt"

	"wrs"
)

// The distributed sampler maintains a weighted SWOR across sites; with a
// fixed seed the run is fully reproducible.
func ExampleDistributedSampler() {
	s, err := wrs.NewDistributedSampler(2, 3, wrs.WithSeed(7))
	if err != nil {
		panic(err)
	}
	weights := []float64{1, 10, 100, 1000, 10000}
	for i, w := range weights {
		if err := s.Observe(i%2, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
			panic(err)
		}
	}
	sample := s.Sample()
	fmt.Println("sample size:", len(sample))
	// The heaviest item is in the sample with probability ~0.9999 under
	// this seed's draw; assert only the structural properties.
	distinct := map[uint64]bool{}
	for _, e := range sample {
		distinct[e.Item.ID] = true
	}
	fmt.Println("distinct items:", len(distinct))
	// Output:
	// sample size: 3
	// distinct items: 3
}

// The L1 tracker maintains a (1±eps) estimate of the total weight.
func ExampleL1Tracker() {
	l, err := wrs.NewL1Tracker(4, 0.2, 0.2, wrs.WithSeed(1))
	if err != nil {
		panic(err)
	}
	var total float64
	for i := 0; i < 5000; i++ {
		w := float64(1 + i%3)
		total += w
		if err := l.Observe(i%4, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
			panic(err)
		}
	}
	est := l.Estimate()
	fmt.Println("within 20%:", est > 0.8*total && est < 1.2*total)
	// Output:
	// within 20%: true
}

// The heavy-hitter tracker surfaces items that are large relative to the
// residual stream (after the top 1/eps are removed).
func ExampleHeavyHitterTracker() {
	h, err := wrs.NewHeavyHitterTracker(2, 0.2, 0.1, wrs.WithSeed(3))
	if err != nil {
		panic(err)
	}
	// One giant plus a long unit tail.
	h.Observe(0, wrs.Item{ID: 999, Weight: 1e7})
	for i := 0; i < 2000; i++ {
		h.Observe(i%2, wrs.Item{ID: uint64(i), Weight: 1})
	}
	found := false
	for _, it := range h.Candidates() {
		if it.ID == 999 {
			found = true
		}
	}
	fmt.Println("giant found:", found)
	// Output:
	// giant found: true
}

// The sliding reservoir forgets items that leave the window.
func ExampleSlidingReservoir() {
	r, err := wrs.NewSlidingReservoir(2, 10, wrs.WithSeed(5))
	if err != nil {
		panic(err)
	}
	// A giant that will expire, then quiet traffic.
	r.Observe(wrs.Item{ID: 1, Weight: 1e9})
	for i := 2; i <= 20; i++ {
		r.Observe(wrs.Item{ID: uint64(i), Weight: 1})
	}
	stale := false
	for _, e := range r.Sample() {
		if e.Item.ID == 1 {
			stale = true
		}
	}
	fmt.Println("expired giant still sampled:", stale)
	// Output:
	// expired giant still sampled: false
}
