package wrs

import (
	"fmt"
	"testing"

	"wrs/internal/fabric"
	"wrs/internal/window"
	"wrs/internal/xrand"
)

// windowedOracle is the brute-force oracle for the Windowed app: it
// mirrors the descriptor's RNG split order exactly (per shard
// ascending: coordinator first, then sites 0..k-1), routes items with
// the same shard hash, remembers every (pos, key, item) per
// (shard, site) sub-stream, and answers the top-s over the union of
// the last `width` items of every sub-stream — sorted with the app's
// comparator, so a correct implementation matches bit for bit.
type windowedOracle struct {
	k, s, width, shards int
	rngs                [][]*xrand.RNG // [shard][site]
	subs                [][][]window.Entry
}

func newWindowedOracle(k, s, width, shards int, seed uint64) *windowedOracle {
	o := &windowedOracle{k: k, s: s, width: width, shards: shards}
	master := xrand.New(seed)
	for p := 0; p < shards; p++ {
		master.Split() // the coordinator's split (inert in the windowed app)
		var rngs []*xrand.RNG
		for i := 0; i < k; i++ {
			rngs = append(rngs, master.Split())
		}
		o.rngs = append(o.rngs, rngs)
		o.subs = append(o.subs, make([][]window.Entry, k))
	}
	return o
}

func (o *windowedOracle) observe(site int, it Item) {
	p := fabric.ShardOf(it.ID, o.shards)
	key := o.rngs[p][site].ExpKey(it.Weight)
	sub := o.subs[p][site]
	o.subs[p][site] = append(sub, window.Entry{Pos: len(sub), Key: key, Item: it.internal()})
}

func (o *windowedOracle) sample() []Sampled {
	var live []window.Entry
	var n int
	for p := range o.subs {
		for site := range o.subs[p] {
			sub := o.subs[p][site]
			lo := len(sub) - o.width
			if lo < 0 {
				lo = 0
			}
			live = append(live, sub[lo:]...)
			n += len(sub) - lo
		}
	}
	// The app's comparator: key descending, ties by item ID.
	for i := 1; i < len(live); i++ {
		for j := i; j > 0; j-- {
			a, b := live[j-1], live[j]
			if a.Key > b.Key || (a.Key == b.Key && a.Item.ID < b.Item.ID) {
				break
			}
			live[j-1], live[j] = live[j], live[j-1]
		}
	}
	if len(live) > o.s {
		live = live[:o.s]
	}
	out := make([]Sampled, len(live))
	for i, e := range live {
		out[i] = Sampled{Item: fromInternal(e.Item), Key: e.Key}
	}
	return out
}

// windowFill returns the oracle's union window size.
func (o *windowedOracle) windowFill() int {
	n := 0
	for p := range o.subs {
		for site := range o.subs[p] {
			if l := len(o.subs[p][site]); l < o.width {
				n += l
			} else {
				n += o.width
			}
		}
	}
	return n
}

// equivMatrixSpecs names the three runtimes for matrix subtests.
func equivMatrixSpecs() []struct {
	name string
	spec func() RuntimeSpec
} {
	return []struct {
		name string
		spec func() RuntimeSpec
	}{
		{"sequential", Sequential},
		{"goroutines", Goroutines},
		{"tcp", func() RuntimeSpec { return TCP("") }},
	}
}

func sameSamples(a, b []Sampled) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWindowedOracleBitExact is the acceptance pin: at shards=1 on the
// sequential runtime, the Windowed app matches the brute-force windowed
// SWOR oracle bit for bit — same items, same keys, same order — at
// every instant of the stream.
func TestWindowedOracleBitExact(t *testing.T) {
	const k, s, width, n, seed = 3, 5, 40, 700, 23
	h, err := Open(Windowed(k, s, width), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	oracle := newWindowedOracle(k, s, width, 1, seed)
	wrng := xrand.New(1)
	for i := 0; i < n; i++ {
		it := Item{ID: uint64(i), Weight: 0.1 + 50*wrng.Float64()}
		site := i % k
		oracle.observe(site, it)
		if err := h.Observe(site, it); err != nil {
			t.Fatal(err)
		}
		got := h.Query()
		if want := oracle.sample(); !sameSamples(got.Items, want) {
			t.Fatalf("step %d: sample diverged from oracle\n got %+v\nwant %+v", i, got.Items, want)
		}
		if got.Window != oracle.windowFill() {
			// The coordinator's window view may trail only when recent
			// arrivals were buffered unsent; with these parameters verify
			// it never overcounts.
			if got.Window > oracle.windowFill() {
				t.Fatalf("step %d: coverage overcounts: %d > %d", i, got.Window, oracle.windowFill())
			}
		}
	}
}

// TestWindowedMatrix pins set-exactness across every runtime × shards
// {1, 2, 7}: after a flush, the merged sample equals the shard-aware
// oracle exactly (the deterministic comparator makes ordered equality
// the right check).
func TestWindowedMatrix(t *testing.T) {
	const k, s, width, n = 3, 6, 30, 800
	for _, rtc := range equivMatrixSpecs() {
		for _, shards := range []int{1, 2, 7} {
			for _, seed := range []uint64{1, 9} {
				t.Run(fmt.Sprintf("%s/shards=%d/seed=%d", rtc.name, shards, seed), func(t *testing.T) {
					h, err := Open(Windowed(k, s, width),
						WithSeed(seed), WithRuntime(rtc.spec()), WithShards(shards))
					if err != nil {
						t.Fatal(err)
					}
					defer h.Close()
					if h.Shards() != shards || h.K() != k {
						t.Fatalf("Shards/K = %d/%d, want %d/%d", h.Shards(), h.K(), shards, k)
					}
					oracle := newWindowedOracle(k, s, width, shards, seed)
					wrng := xrand.New(seed ^ 0xABCD)
					for i := 0; i < n; i++ {
						it := Item{ID: uint64(i)*2654435761 + seed, Weight: 0.2 + 20*wrng.Float64()}
						site := i % k
						oracle.observe(site, it)
						if err := h.Observe(site, it); err != nil {
							t.Fatal(err)
						}
					}
					if err := h.Flush(); err != nil {
						t.Fatal(err)
					}
					got := h.Query()
					if want := oracle.sample(); !sameSamples(got.Items, want) {
						t.Fatalf("sample diverged from oracle\n got %+v\nwant %+v", got.Items, want)
					}
					if got.Retained < len(got.Items) {
						t.Errorf("retained %d < sample size %d", got.Retained, len(got.Items))
					}
					if st := h.Stats(); st.Downstream != 0 {
						t.Errorf("windowed protocol broadcast %d messages; it is push-only", st.Downstream)
					}
				})
			}
		}
	}
}

// TestWindowedBatchCrossesBoundary pins bit-equivalence of batched and
// item-at-a-time ingest on batches that straddle window boundaries:
// identical samples, coverage, and traffic.
func TestWindowedBatchCrossesBoundary(t *testing.T) {
	const k, s, width, n, seed = 2, 4, 10, 95, 31
	single, err := Open(Windowed(k, s, width), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	batched, err := Open(Windowed(k, s, width), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()

	perSite := make([][]Item, k)
	wrng := xrand.New(seed)
	for i := 0; i < n; i++ {
		it := Item{ID: uint64(i), Weight: 1 + 5*wrng.Float64()}
		perSite[i%k] = append(perSite[i%k], it)
	}
	for site, items := range perSite {
		for _, it := range items {
			if err := single.Observe(site, it); err != nil {
				t.Fatal(err)
			}
		}
		// Batch sizes 2·width+3: every call crosses at least two window
		// boundaries of the sub-stream.
		for off := 0; off < len(items); off += 2*width + 3 {
			end := off + 2*width + 3
			if end > len(items) {
				end = len(items)
			}
			if err := batched.ObserveBatch(site, items[off:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := single.Query(), batched.Query()
	if !sameSamples(a.Items, b.Items) || a.Observed != b.Observed || a.Window != b.Window || a.Retained != b.Retained {
		t.Fatalf("batch ingest diverged from item-at-a-time:\n single %+v\nbatched %+v", a, b)
	}
	if sa, sb := single.Stats(), batched.Stats(); sa != sb {
		t.Fatalf("traffic diverged: single %+v, batched %+v", sa, sb)
	}
}

// TestWindowedCoverageExact pins the coverage fields in the regime
// where the coordinator's view provably cannot trail (width < s sends
// every arrival, so the clocks are always current).
func TestWindowedCoverageExact(t *testing.T) {
	const k, s, width, n = 2, 8, 3, 40
	h, err := Open(Windowed(k, s, width), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < n; i++ {
		if err := h.Observe(i%k, Item{ID: uint64(i), Weight: 1 + float64(i%7)}); err != nil {
			t.Fatal(err)
		}
	}
	got := h.Query()
	if got.Observed != n {
		t.Errorf("Observed = %d, want %d", got.Observed, n)
	}
	if want := k * width; got.Window != want {
		t.Errorf("Window = %d, want %d", got.Window, want)
	}
	if len(got.Items) != k*width {
		t.Errorf("sample size %d, want the full union window %d (width < s)", len(got.Items), k*width)
	}
	if got.Retained != got.Window {
		t.Errorf("Retained = %d, want %d: nothing is prunable at width < s", got.Retained, got.Window)
	}
}

// TestWindowedEmptyAndValidation pins construction errors, the empty
// query, and the one-shot descriptor binding.
func TestWindowedEmptyAndValidation(t *testing.T) {
	if _, err := Open(Windowed(2, 4, 0)); err == nil {
		t.Error("width=0 accepted")
	}
	if _, err := Open(Windowed(0, 4, 10)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Open(Windowed(2, 0, 10)); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := Open(Windowed(2, 4, 10), WithShards(0)); err == nil {
		t.Error("0 shards accepted")
	}

	app := Windowed(2, 4, 10)
	h, err := Open(app)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := Open(app); err == nil {
		t.Error("second Open of the same Windowed descriptor succeeded")
	}
	q := h.Query()
	if len(q.Items) != 0 || q.Observed != 0 || q.Window != 0 || q.Retained != 0 {
		t.Errorf("empty-stream query not empty: %+v", q)
	}
}

// TestWindowedForgets pins the behavioral point of the application: a
// giant that dominated every sample disappears once `width` newer items
// arrive on its sub-stream, with no broadcast machinery involved.
func TestWindowedForgets(t *testing.T) {
	const width = 25
	h, err := Open(Windowed(1, 3, width), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Observe(0, Item{ID: 999, Weight: 1e12}); err != nil {
		t.Fatal(err)
	}
	holds := func() bool {
		for _, e := range h.Query().Items {
			if e.Item.ID == 999 {
				return true
			}
		}
		return false
	}
	for i := 0; i < width-1; i++ {
		if err := h.Observe(0, Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
		if !holds() {
			t.Fatalf("giant evicted early, after only %d successors", i+1)
		}
	}
	if err := h.Observe(0, Item{ID: 500, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if holds() {
		t.Fatal("giant still sampled after width newer items")
	}
}

// TestWindowedMessageCountsPinned pins the windowed protocol's exact
// traffic on a fixed stream — the windowed analogue of
// TestSequentialMessageCountsPinned, guarding the push-only protocol
// (zero downstream) and the send-filtering against drift.
func TestWindowedMessageCountsPinned(t *testing.T) {
	const k, s, width, n = 4, 8, 200, 20000
	h, err := Open(Windowed(k, s, width), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	wrng := xrand.New(17)
	for i := 0; i < n; i++ {
		if err := h.Observe(i%k, Item{ID: uint64(i), Weight: 0.5 + 10*wrng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	if st.Downstream != 0 || st.DownWords != 0 {
		t.Errorf("downstream traffic %d msgs / %d words, want 0 (push-only)", st.Downstream, st.DownWords)
	}
	const wantUp, wantUpWords = 2283, 8127 // 0.11 msgs/update at n=20000
	if st.Upstream != wantUp || st.UpWords != wantUpWords {
		t.Errorf("upstream traffic drifted: %d msgs / %d words, pinned %d / %d",
			st.Upstream, st.UpWords, wantUp, wantUpWords)
	}
	if st.Upstream >= n/2 {
		t.Errorf("upstream %d for n=%d: windowed filtering is not engaging", st.Upstream, n)
	}
}
