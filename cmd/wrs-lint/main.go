// Command wrs-lint runs the wrs static-analysis suite (internal/lint):
// five analyzers that mechanically enforce the protocol's concurrency
// and determinism invariants (DESIGN.md §12, docs/LINTS.md).
//
// Standalone (the usual way — it drives `go vet` under the hood so
// packages load exactly as the toolchain sees them):
//
//	go run ./cmd/wrs-lint ./...
//	go run ./cmd/wrs-lint -json ./...
//	go run ./cmd/wrs-lint -only nolockio,wirekinds ./internal/transport
//
// As a vet tool (the same binary speaks the cmd/go vet protocol):
//
//	go build -o /tmp/wrs-lint ./cmd/wrs-lint
//	go vet -vettool=/tmp/wrs-lint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error. Suppress an
// intentional finding with `//wrslint:allow <analyzer> <reason>` on
// the flagged line or the line above it.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"wrs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Protocol handshakes from cmd/go come first and take no flags.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			// cmd/go keys its vet-result cache on this ID; hashing the
			// binary's own contents makes the cache exactly as stale as
			// the analyzers themselves.
			fmt.Printf("wrs-lint version %s buildID=%s\n", runtime.Version(), selfHash())
			return 0
		case "-flags":
			printFlagDefs()
			return 0
		}
	}

	fs := flag.NewFlagSet("wrs-lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	only := fs.String("only", "", "comma-separated analyzer subset to run (standalone mode)")
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	selected := map[string]bool{}
	for name, on := range enabled {
		if *on {
			selected[name] = true
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnitMode(rest[0], selected, *jsonOut)
	}
	return runStandalone(rest, selected, *only, *jsonOut)
}

// runUnitMode is one cmd/go vet-protocol invocation: analyze a single
// package unit described by cfgPath.
func runUnitMode(cfgPath string, selected map[string]bool, jsonOut bool) int {
	diags, pkgPath, err := lint.RunUnit(cfgPath, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrs-lint:", err)
		return 1
	}
	if jsonOut {
		// The unitchecker JSON shape: pkg -> analyzer -> diagnostics.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := map[string][]jsonDiag{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
				Posn:    fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
				Message: d.Message,
			})
		}
		out, _ := json.MarshalIndent(map[string]map[string][]jsonDiag{pkgPath: byAnalyzer}, "", "\t")
		fmt.Println(string(out))
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, lint.FindingLine(d))
	}
	if len(diags) > 0 {
		// Nonzero keeps cmd/go from caching the unit, so findings
		// resurface on every run until fixed or annotated.
		return 2
	}
	return 0
}

// runStandalone loads and analyzes packages by re-invoking the
// toolchain with this binary as the vet tool: `go vet` computes the
// exact per-unit file and export-data sets, so wrs-lint sees packages
// precisely as the compiler does (test files, build tags, module
// graph) without reimplementing a loader.
func runStandalone(patterns []string, selected map[string]bool, only string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, name := range strings.Split(only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !lint.KnownAnalyzers()[name] {
				fmt.Fprintf(os.Stderr, "wrs-lint: unknown analyzer %q (have", name)
				for _, a := range lint.Analyzers {
					fmt.Fprintf(os.Stderr, " %s", a.Name)
				}
				fmt.Fprintln(os.Stderr, ")")
				return 2
			}
			selected[name] = true
		}
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrs-lint:", err)
		return 2
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	for name := range selected {
		vetArgs = append(vetArgs, "-"+name)
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	runErr := cmd.Run()

	findings, other := parseVetOutput(out.Bytes())
	switch {
	case jsonOut:
		enc, _ := json.MarshalIndent(struct {
			Findings []lint.Finding `json:"findings"`
			Count    int            `json:"count"`
		}{Findings: findings, Count: len(findings)}, "", "\t")
		fmt.Println(string(enc))
	default:
		for _, f := range findings {
			fmt.Printf("%s: %s [wrslint:%s]\n", f.Pos, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "wrs-lint: %d finding(s)\n", len(findings))
		return 1
	}
	if runErr != nil {
		// The toolchain failed without producing findings: a build
		// error or protocol problem. Surface its output verbatim.
		os.Stderr.Write(other)
		fmt.Fprintln(os.Stderr, "wrs-lint:", runErr)
		return 2
	}
	if !jsonOut {
		fmt.Fprintf(os.Stderr, "wrs-lint: ok (%s)\n", analyzerList(selected))
	}
	return 0
}

// parseVetOutput splits the child `go vet` output into parsed findings
// and everything else (cmd/go package headers, build errors). Package
// headers (`# path`) attribute the findings that follow; absolute file
// paths are relativized to the working directory.
func parseVetOutput(out []byte) (findings []lint.Finding, other []byte) {
	cwd, _ := os.Getwd()
	var rest bytes.Buffer
	pkg := ""
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if p, ok := strings.CutPrefix(line, "# "); ok {
			// "# wrs/internal/wire [wrs/internal/wire.test]" — the base
			// import path is the useful attribution.
			pkg, _, _ = strings.Cut(p, " ")
			continue
		}
		if f, ok := lint.ParseFindingLine(line); ok {
			f.Pkg = pkg
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, posFile(f.Pos)); err == nil && !strings.HasPrefix(rel, "..") {
					f.Pos = rel + f.Pos[len(posFile(f.Pos)):]
				}
			}
			findings = append(findings, f)
			continue
		}
		if strings.HasPrefix(line, "exit status ") {
			continue
		}
		rest.WriteString(line)
		rest.WriteByte('\n')
	}
	return findings, rest.Bytes()
}

// posFile returns the file part of a file:line:col position.
func posFile(pos string) string {
	// The line:col suffix never contains a path separator; scan from
	// the end past two colons.
	rest := pos
	for range 2 {
		i := strings.LastIndexByte(rest, ':')
		if i < 0 {
			return pos
		}
		rest = rest[:i]
	}
	return rest
}

func analyzerList(selected map[string]bool) string {
	var names []string
	for _, a := range lint.Analyzers {
		if len(selected) == 0 || selected[a.Name] {
			names = append(names, a.Name)
		}
	}
	return strings.Join(names, ", ")
}

// printFlagDefs answers the cmd/go `-flags` handshake: the JSON list
// of flags the tool accepts, so `go vet -vettool=wrs-lint -nolockio`
// passes validation.
func printFlagDefs() {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []flagDef{{Name: "json", Bool: true, Usage: "emit JSON"}}
	for _, a := range lint.Analyzers {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out, _ := json.Marshal(defs)
	fmt.Println(string(out))
}

// selfHash is the content hash of this executable, reported as the
// vet buildID so cmd/go's result cache invalidates exactly when the
// analyzers change.
func selfHash() string {
	self, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(self); err == nil {
			sum := sha256.Sum256(data)
			return fmt.Sprintf("%x", sum[:12])
		}
	}
	return "unknown"
}
