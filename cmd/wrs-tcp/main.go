// Command wrs-tcp demonstrates the protocol over real TCP: it assembles
// a transport cluster (coordinator server on loopback plus k site
// client connections), streams weighted items through it concurrently,
// and prints the application's answer plus traffic counts.
//
// Every application runs over the same transport:
//
//	wrs-tcp -k 8 -s 10 -n 200000              # plain weighted SWOR
//	wrs-tcp -app hh -eps 0.1 -delta 0.1       # residual heavy hitters
//	wrs-tcp -app l1 -eps 0.25 -delta 0.3      # (1±eps) L1 tracking
//	wrs-tcp -app quantile -eps 0.15           # weight-CDF / rank quantiles
//	wrs-tcp -app window -width 2000           # sliding-window SWOR
//	wrs-tcp -shards 4                         # 4-way sharded fabric
//	wrs-tcp -k 64 -tree fanout=4,depth=2      # hierarchical relay tree
//
// With -shards > 1 the one server hosts P protocol shards behind
// per-shard ingest locks and each of the k connections multiplexes all
// shards with shard-tagged frames; queries merge per-shard state
// exactly. With -batch > 1 the sites feed through FeedBatch, coalescing
// protocol messages into multi-message frames (the high-throughput
// path); -batch 1 sends one frame per message.
//
// With -tree fanout=F,depth=D the sites connect through D tiers of
// aggregation relays instead of directly to the coordinator: the root
// terminates min(F, k) connections instead of k and each relay locally
// pre-filters its subtree's candidates, so k scales to the thousands.
// The answer is unchanged — relays only drop messages the coordinator
// would drop on arrival.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/heavyhitter"
	"wrs/internal/l1track"
	"wrs/internal/netsim"
	"wrs/internal/quantile"
	"wrs/internal/relay"
	"wrs/internal/stream"
	"wrs/internal/transport"
	"wrs/internal/window"
	"wrs/internal/xrand"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"wrs-tcp:"}, v...)...)
	os.Exit(1)
}

func main() {
	k := flag.Int("k", 8, "number of sites")
	s := flag.Int("s", 10, "sample size (swor app)")
	n := flag.Int("n", 200000, "total updates")
	batch := flag.Int("batch", 256, "updates per FeedBatch call (1 = unbatched)")
	seed := flag.Uint64("seed", 1, "random seed")
	app := flag.String("app", "swor", "application: swor, hh, l1, quantile, window")
	eps := flag.Float64("eps", 0.1, "accuracy parameter (hh, l1 apps)")
	delta := flag.Float64("delta", 0.1, "failure probability (hh, l1 apps)")
	width := flag.Int("width", 2000, "sub-stream window width in items (window app)")
	shards := flag.Int("shards", 1, "protocol shards (parallel coordinator locks, exact merged query)")
	tree := flag.String("tree", "", "relay tree shape, e.g. fanout=4,depth=2 (empty = flat)")
	flag.Parse()
	if *batch < 1 {
		*batch = 1
	}
	if err := fabric.Validate(*shards); err != nil {
		fatal(err)
	}
	fanout, depth, err := parseTree(*tree)
	if err != nil {
		fatal(err)
	}

	master := xrand.New(*seed)

	// Assemble the application fabric: per shard, a coordinator-side
	// protocol and k site state machines. The transport drives them all
	// identically; queries merge per-shard state outside the ingest
	// locks.
	var (
		protos   []transport.Coordinator
		machines [][]netsim.Site[core.Message]
		report   func(cluster cluster, totalW float64)
		coreCfg  core.Config
	)
	switch *app {
	case "swor":
		coreCfg = core.Config{K: *k, S: *s}
		if err := coreCfg.Validate(); err != nil {
			fatal(err)
		}
		for p := 0; p < *shards; p++ {
			protos = append(protos, core.NewCoordinator(coreCfg, master.Split()))
			sites := make([]netsim.Site[core.Message], *k)
			for i := 0; i < *k; i++ {
				sites[i] = core.NewSite(i, coreCfg, master.Split())
			}
			machines = append(machines, sites)
		}
		report = func(cluster cluster, _ float64) {
			fmt.Println("\nsample (id, weight, key):")
			for _, e := range cluster.Server().Query() {
				fmt.Printf("  %8d  w=%-12.3f key=%.4g\n", e.Item.ID, e.Item.Weight, e.Key)
			}
		}
	case "hh":
		var trackers []*heavyhitter.Tracker
		for p := 0; p < *shards; p++ {
			tr, err := heavyhitter.NewTracker(*k, heavyhitter.Params{Eps: *eps, Delta: *delta}, master)
			if err != nil {
				fatal(err)
			}
			coreCfg = tr.Coord.Config()
			protos = append(protos, tr.Coord)
			sites := make([]netsim.Site[core.Message], *k)
			for i, st := range tr.Sites {
				sites[i] = st
			}
			machines = append(machines, sites)
			trackers = append(trackers, tr)
		}
		report = func(cluster cluster, _ float64) {
			var entries []core.SampleEntry
			for p, tr := range trackers {
				coord := tr.Coord
				cluster.DoShard(p, func() { entries = coord.Snapshot(entries) })
			}
			items := heavyhitter.CandidatesFrom(entries, trackers[0].Params())
			fmt.Printf("\nresidual heavy-hitter candidates (top %d by weight, s=%d):\n",
				len(items), coreCfg.S)
			for i, it := range items {
				if i >= 10 {
					fmt.Printf("  ... and %d more\n", len(items)-10)
					break
				}
				fmt.Printf("  %8d  w=%.3f\n", it.ID, it.Weight)
			}
		}
	case "l1":
		var coords []*l1track.DupCoordinator
		// Each shard is provisioned at delta/P so the union bound over
		// the summed per-partition estimators preserves 1-delta overall
		// (matching wrs.NewL1Tracker).
		for p := 0; p < *shards; p++ {
			dc, dsites, err := l1track.NewDupTracker(*k, l1track.DupParams{Eps: *eps, Delta: *delta / float64(*shards)}, master)
			if err != nil {
				fatal(err)
			}
			coreCfg = dc.Core().Config()
			protos = append(protos, dc)
			sites := make([]netsim.Site[core.Message], *k)
			for i, st := range dsites {
				sites[i] = st
			}
			machines = append(machines, sites)
			coords = append(coords, dc)
		}
		report = func(cluster cluster, totalW float64) {
			var est float64
			for p, dc := range coords {
				dc := dc
				cluster.DoShard(p, func() { est += dc.Estimate() })
			}
			fmt.Printf("\nL1 estimate: %.1f  true: %.1f  relative error: %.2f%% (eps=%v, s=%d)\n",
				est, totalW, 100*math.Abs(est-totalW)/totalW, *eps, coreCfg.S)
		}
	case "quantile":
		// The quantile application is the plain sampler's instances at
		// s = SampleSize(eps, delta); only the query differs — the
		// bottom-k CDF estimator over the merged per-shard snapshots.
		qp := quantile.Params{Eps: *eps, Delta: *delta}
		if err := qp.Validate(); err != nil {
			fatal(err)
		}
		coreCfg = core.Config{K: *k, S: qp.SampleSize()}
		if err := coreCfg.Validate(); err != nil {
			fatal(err)
		}
		var coords []*core.Coordinator
		for p := 0; p < *shards; p++ {
			coord := core.NewCoordinator(coreCfg, master.Split())
			protos = append(protos, coord)
			sites := make([]netsim.Site[core.Message], *k)
			for i := 0; i < *k; i++ {
				sites[i] = core.NewSite(i, coreCfg, master.Split())
			}
			machines = append(machines, sites)
			coords = append(coords, coord)
		}
		report = func(cluster cluster, totalW float64) {
			var entries []core.SampleEntry
			for p, coord := range coords {
				coord := coord
				cluster.DoShard(p, func() { entries = coord.Snapshot(entries) })
			}
			sm := quantile.Summarize(entries, coreCfg.S)
			fmt.Printf("\nweight-CDF estimate (s=%d, %d support points):\n", coreCfg.S, sm.Support())
			fmt.Printf("  total weight: est %.1f  true %.1f  relative error %.2f%%\n",
				sm.Total(), totalW, 100*math.Abs(sm.Total()-totalW)/totalW)
			for _, phi := range []float64{0.25, 0.5, 0.9, 0.99} {
				x, _ := sm.Quantile(phi)
				fmt.Printf("  q%-4g  weight <= %.3f\n", 100*phi, x)
			}
		}
	case "window":
		// The windowed application: per shard, a WindowCoordinator and k
		// sequence-stamping WindowSites; the transport carries the
		// stamped candidates and clock advances like any other traffic.
		coreCfg = core.Config{K: *k, S: *s}
		if err := coreCfg.Validate(); err != nil {
			fatal(err)
		}
		var coords []*core.WindowCoordinator
		for p := 0; p < *shards; p++ {
			coord := core.NewWindowCoordinator(coreCfg, *width, master.Split())
			protos = append(protos, coord)
			sites := make([]netsim.Site[core.Message], *k)
			for i := 0; i < *k; i++ {
				sites[i] = core.NewWindowSite(i, coreCfg, *width, master.Split())
			}
			machines = append(machines, sites)
			coords = append(coords, coord)
		}
		report = func(cluster cluster, _ float64) {
			var entries []window.Entry
			var cov core.WindowCoverage
			for p, coord := range coords {
				coord := coord
				cluster.DoShard(p, func() {
					var c core.WindowCoverage
					entries, c = coord.SnapshotWindow(entries)
					cov.Add(c)
				})
			}
			entries = window.TopEntries(entries, coreCfg.S)
			fmt.Printf("\nsliding-window sample (width %d per sub-stream; %d live, %d retained):\n",
				*width, cov.Live, cov.Retained)
			for _, e := range entries {
				fmt.Printf("  %8d  w=%-12.3f key=%.4g\n", e.Item.ID, e.Item.Weight, e.Key)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "wrs-tcp: unknown app %q\n", *app)
		os.Exit(2)
	}

	var cluster cluster
	if depth > 0 {
		merge := true
		for _, proto := range protos {
			merge = merge && relay.UnionMergeable(proto)
		}
		tc, err := relay.NewTreeCluster(coreCfg, protos, machines, "127.0.0.1:0", fanout, depth, relay.Options{Merge: merge})
		if err != nil {
			fatal(err)
		}
		cluster = tc
		fmt.Printf("coordinator listening on %s, %d sites via relay tree fanout=%d depth=%d (root conns %d, union merge %v), app=%s, shards=%d\n",
			tc.Addr(), *k, fanout, depth, tc.RootConns(), merge, *app, *shards)
	} else {
		fc, err := transport.NewShardedCluster(coreCfg, protos, machines, "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		cluster = fc
		fmt.Printf("coordinator listening on %s, %d sites connected, app=%s, shards=%d\n",
			fc.Addr(), *k, *app, *shards)
	}

	start := time.Now()
	perSite := *n / *k
	weights := make([]float64, *k) // per-site true totals (l1 report)
	var wg sync.WaitGroup
	errCh := make(chan error, *k)
	for i := 0; i < *k; i++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			rng := xrand.New(*seed + uint64(site)*7919)
			items := make([]stream.Item, 0, *batch)
			for j := 0; j < perSite; j++ {
				w := rng.Pareto(1.2)
				weights[site] += w
				items = append(items, stream.Item{ID: uint64(site*perSite + j), Weight: w})
				if len(items) == *batch || j == perSite-1 {
					if err := cluster.FeedBatch(site, items); err != nil {
						errCh <- fmt.Errorf("site %d: %w", site, err)
						return
					}
					items = items[:0]
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		fatal(err)
	default:
	}
	if err := cluster.Flush(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	var pings int64
	var totalW float64
	for i := 0; i < *k; i++ {
		pings += cluster.Client(i).FlowPings()
		totalW += weights[i]
	}
	stats := cluster.Stats()
	total := *k * perSite
	fmt.Printf("\nstreamed %d updates in %v (%.0f updates/sec)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("traffic: %d upstream messages (%.4f/update), %d broadcast deliveries, %d flow pings\n",
		stats.Upstream, float64(stats.Upstream)/float64(total), stats.Downstream, pings)
	if tc, ok := cluster.(*relay.TreeCluster); ok {
		fmt.Printf("tree: root edge %d messages (%.4f/update) over %d root conns\n",
			tc.RootUpstream(), float64(tc.RootUpstream())/float64(total), tc.RootConns())
		for t, ts := range tc.TierStats() {
			fmt.Printf("  tier %d: %d relays, %d forwarded, %d filtered, %d fanned down\n",
				t, ts.Nodes, ts.Forwarded, ts.Filtered, ts.DownMessages)
		}
	}
	srv := cluster.Server()
	st := srv.Stats()
	fmt.Printf("coordinator: %d early, %d regular, %d saturations, %d epoch advances, %d pre-filtered\n",
		st.EarlyMsgs, st.RegularMsgs, st.Saturations, st.EpochAdvances, srv.PreFiltered())

	report(cluster, totalW)

	if err := cluster.Close(); err != nil {
		fatal(err)
	}
}

// cluster is the driving surface shared by the flat transport cluster
// and the relay tree cluster, so one demo body serves both topologies.
type cluster interface {
	Addr() string
	Server() *transport.CoordinatorServer
	Client(siteID int) *transport.SiteClient
	FeedBatch(siteID int, items []stream.Item) error
	Flush() error
	DoShard(p int, fn func())
	Stats() netsim.Stats
	Close() error
}

// parseTree parses the -tree flag: empty means flat, otherwise
// "fanout=F,depth=D" in either order.
func parseTree(s string) (fanout, depth int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return 0, 0, fmt.Errorf("bad -tree component %q (want fanout=F,depth=D)", part)
		}
		v, convErr := strconv.Atoi(val)
		if convErr != nil {
			return 0, 0, fmt.Errorf("bad -tree value %q: %v", part, convErr)
		}
		switch key {
		case "fanout":
			fanout = v
		case "depth":
			depth = v
		default:
			return 0, 0, fmt.Errorf("unknown -tree key %q (want fanout=F,depth=D)", key)
		}
	}
	if depth == 0 {
		return 0, 0, fmt.Errorf("-tree %q: depth must be >= 1 (omit -tree for the flat topology)", s)
	}
	if err := netsim.ValidateTree(fanout, depth); err != nil {
		return 0, 0, err
	}
	return fanout, depth, nil
}
