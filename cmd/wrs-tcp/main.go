// Command wrs-tcp demonstrates the protocol over real TCP: it starts a
// coordinator server on loopback, connects k site clients, streams
// weighted items through them concurrently, and prints the maintained
// sample plus traffic counts.
//
// Usage:
//
//	wrs-tcp -k 8 -s 10 -n 200000
//
// With -batch > 1 the sites feed through ObserveBatch, coalescing
// protocol messages into multi-message frames (the high-throughput
// path); -batch 1 sends one frame per message.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/transport"
	"wrs/internal/xrand"
)

func main() {
	k := flag.Int("k", 8, "number of sites")
	s := flag.Int("s", 10, "sample size")
	n := flag.Int("n", 200000, "total updates")
	batch := flag.Int("batch", 256, "updates per ObserveBatch call (1 = unbatched)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()
	if *batch < 1 {
		*batch = 1
	}

	cfg := core.Config{K: *k, S: *s}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "wrs-tcp:", err)
		os.Exit(2)
	}
	master := xrand.New(*seed)

	srv, err := transport.NewCoordinatorServer(cfg, master.Split())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrs-tcp:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrs-tcp:", err)
		os.Exit(1)
	}
	go srv.Serve(ln)
	fmt.Printf("coordinator listening on %s\n", ln.Addr())

	clients := make([]*transport.SiteClient, *k)
	for i := 0; i < *k; i++ {
		c, err := transport.DialSite(ln.Addr().String(), i, cfg, master.Split())
		if err != nil {
			fmt.Fprintln(os.Stderr, "wrs-tcp: dial:", err)
			os.Exit(1)
		}
		clients[i] = c
	}
	fmt.Printf("%d sites connected\n", *k)

	start := time.Now()
	perSite := *n / *k
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(site int, c *transport.SiteClient) {
			defer wg.Done()
			rng := xrand.New(*seed + uint64(site)*7919)
			items := make([]stream.Item, 0, *batch)
			for j := 0; j < perSite; j++ {
				items = append(items, stream.Item{ID: uint64(site*perSite + j), Weight: rng.Pareto(1.2)})
				if len(items) == *batch || j == perSite-1 {
					if err := c.ObserveBatch(items); err != nil {
						fmt.Fprintf(os.Stderr, "wrs-tcp: site %d: %v\n", site, err)
						return
					}
					items = items[:0]
				}
			}
		}(i, c)
	}
	wg.Wait()
	for _, c := range clients {
		if err := c.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "wrs-tcp: flush:", err)
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	var sent, pings int64
	for _, c := range clients {
		sent += c.Sent()
		pings += c.FlowPings()
	}
	total := *k * perSite
	fmt.Printf("\nstreamed %d updates in %v (%.0f updates/sec)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("traffic: %d upstream messages (%.4f/update), %d broadcast frames, %d flow pings\n",
		sent, float64(sent)/float64(total), srv.BroadcastsSent(), pings)
	st := srv.Stats()
	fmt.Printf("coordinator: %d early, %d regular, %d saturations, %d epoch advances\n",
		st.EarlyMsgs, st.RegularMsgs, st.Saturations, st.EpochAdvances)

	fmt.Println("\nsample (id, weight, key):")
	for _, e := range srv.Query() {
		fmt.Printf("  %8d  w=%-12.3f key=%.4g\n", e.Item.ID, e.Item.Weight, e.Key)
	}

	for _, c := range clients {
		c.Close()
	}
	srv.Close()
}
