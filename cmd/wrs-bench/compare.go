package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// compareIngest runs a fresh ingest matrix and gates it against the
// committed baseline at path: every row whose fresh ns/msg exceeds the
// baseline's by more than the tolerance fails the run. Improvements
// always pass — the baseline is a ceiling, not a pin.
//
// When the current host matches the baseline's (same cpus and
// gomaxprocs), rows are compared on absolute ns/msg. On a different
// host absolute times are meaningless, so each row is normalized by
// the drop/prefilter row of its own run — the cheapest fixed-work row,
// serving as the host-speed yardstick — and the *relative* costs are
// gated instead. Either way a genuine algorithmic regression (one row
// slowing down while the yardstick does not) is caught.
func compareIngest(path string, quick bool, rounds int, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base []ingestRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(base) == 0 {
		return fmt.Errorf("baseline %s: no rows", path)
	}
	fresh, err := collectIngestMatrixBest(quick, rounds)
	if err != nil {
		return err
	}

	baseByName := make(map[string]ingestRecord, len(base))
	for _, r := range base {
		baseByName[r.Name] = r
	}

	const anchorName = "drop/prefilter"
	hostMatch := base[0].CPUs == runtime.NumCPU() && base[0].GOMAXPROCS == runtime.GOMAXPROCS(0)
	baseAnchor, freshAnchor := baseByName[anchorName].NsPerMsg, 0.0
	for _, r := range fresh {
		if r.Name == anchorName {
			freshAnchor = r.NsPerMsg
		}
	}
	normalized := !hostMatch && baseAnchor > 0 && freshAnchor > 0
	mode := "absolute ns/msg (host matches baseline)"
	if normalized {
		mode = fmt.Sprintf("normalized by %s (baseline host: %d cpus, procs=%d; this host: %d cpus, procs=%d)",
			anchorName, base[0].CPUs, base[0].GOMAXPROCS, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	}
	fmt.Printf("\ncomparing against %s — %s, tolerance %.0f%%\n", path, mode, 100*tol)

	failed := 0
	for _, r := range fresh {
		b, ok := baseByName[r.Name]
		if !ok {
			fmt.Printf("%-36s %10s  (no baseline row — skipped)\n", r.Name, "-")
			continue
		}
		bv, fv := b.NsPerMsg, r.NsPerMsg
		if normalized {
			if r.Name == anchorName {
				fmt.Printf("%-36s %10s  (yardstick row)\n", r.Name, "-")
				continue
			}
			bv /= baseAnchor
			fv /= freshAnchor
		}
		ratio := fv / bv
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%-36s base %10.2f  fresh %10.2f  ratio %5.2f  %s\n", r.Name, bv, fv, ratio, verdict)
	}
	if failed > 0 {
		return fmt.Errorf("%d row(s) regressed beyond %.0f%% tolerance", failed, 100*tol)
	}
	fmt.Println("bench gate: all rows within tolerance")
	return nil
}
