// Command wrs-bench runs the experiment suite that reproduces every
// quantitative claim of the paper and prints the resulting tables, and
// records the coordinator-ingest performance trajectory.
//
// Usage:
//
//	wrs-bench                  # run everything, aligned-text output
//	wrs-bench -run E1,E9       # selected experiments
//	wrs-bench -format md       # markdown (EXPERIMENTS.md is built this way)
//	wrs-bench -quick           # reduced stream sizes / trial counts
//	wrs-bench -list            # list experiment IDs and titles
//
//	wrs-bench -ingest -out BENCH_ingest.json
//	    # run the coordinator-ingest benchmark matrix (the same harness
//	    # as BenchmarkTCPParallelIngest and BenchmarkTCPIngestWithQuerier:
//	    # prefilter vs serial, the live-workload shards axis, the
//	    # 100 Hz-querier pair, and the windowed-retention widths) and
//	    # write the results as JSON — ns/op, msgs, shards, GOMAXPROCS,
//	    # cpus, goarch, commit. The file is committed, so the perf
//	    # trajectory across PRs lives in its git history.
//
//	wrs-bench -ingest -quick -compare BENCH_ingest.json -tolerance 0.25
//	    # CI bench gate: run a fresh quick matrix and fail if any row
//	    # regresses past the tolerance vs the committed baseline
//	    # (normalized by the drop/prefilter yardstick when the host
//	    # differs from the one that produced the baseline).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"wrs/internal/bench"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	format := flag.String("format", "text", "output format: text, md, csv")
	quick := flag.Bool("quick", false, "reduced sizes for fast runs")
	list := flag.Bool("list", false, "list available experiments")
	ingest := flag.Bool("ingest", false, "run the coordinator-ingest benchmark matrix instead of the paper experiments")
	out := flag.String("out", "BENCH_ingest.json", "output path for -ingest results")
	compare := flag.String("compare", "", "with -ingest: gate a fresh run against this baseline JSON instead of writing")
	tolerance := flag.Float64("tolerance", 0.25, "with -compare: per-row slowdown tolerance (0.25 = 25%)")
	rounds := flag.Int("rounds", 1, "with -ingest: run the matrix N times, keep each row's fastest (rides out host contention bursts)")
	flag.Parse()

	if *ingest {
		var err error
		if *compare != "" {
			err = compareIngest(*compare, *quick, *rounds, *tolerance)
		} else {
			err = runIngestMatrix(*out, *quick, *rounds)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wrs-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *runFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			e := bench.Find(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "wrs-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		table := e.Run(*quick)
		table.Notes = append(table.Notes,
			fmt.Sprintf("wall time: %.1fs%s", time.Since(start).Seconds(), quickSuffix(*quick)))
		table.Render(os.Stdout, *format)
	}
}

func quickSuffix(q bool) string {
	if q {
		return " (quick mode)"
	}
	return ""
}
