package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"wrs/internal/core"
	"wrs/internal/relay"
	"wrs/internal/transport"
)

// ingestRecord is one row of BENCH_ingest.json: the fields the ingest
// perf trajectory is tracked by, stable across PRs. CPUs, GOARCH, and
// Commit identify the host and tree the row was measured on, so a
// later -compare run can tell a real regression from a host change.
type ingestRecord struct {
	Name       string  `json:"name"`
	Workload   string  `json:"workload"` // "drop", "live", or "window"
	Mode       string  `json:"mode"`     // "prefilter", "serial", "snapshot", "lockedsort"
	Shards     int     `json:"shards"`
	Conns      int     `json:"conns"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	CPUs       int     `json:"cpus"`
	GOARCH     string  `json:"goarch,omitempty"`
	Commit     string  `json:"commit,omitempty"`
	Msgs       int64   `json:"msgs"`
	NsPerMsg   float64 `json:"ns_per_msg"`
	MmsgPerSec float64 `json:"mmsg_per_s"`
	DroppedPct float64 `json:"dropped_pct"`
	Queries    int64   `json:"queries,omitempty"`
	Window     int     `json:"window,omitempty"`
	Tree       string  `json:"tree,omitempty"` // "fanout=F,depth=D" for relayed rows
	Date       string  `json:"date"`
}

// buildCommit returns the short VCS revision stamped into the binary,
// or "" when built outside a checkout (go run from a tarball, -buildvcs
// off).
func buildCommit() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "+dirty"
	}
	return rev
}

// collectIngestMatrix runs the coordinator-ingest benchmark matrix —
// the same harness the Go benchmarks wrap — and returns the rows. The
// matrix:
//
//   - drop workload, shards=1: prefilter vs serial (the PR 2 axes);
//   - live workload (never-filterable early messages), shards ∈
//     {1, 2, 4, 8}: the shard-scaling axis — at GOMAXPROCS >= 8 with 8
//     connections, shards=4 should be >= 2x shards=1 (on fewer cores
//     the shards serialize and the column is flat);
//   - live workload with a concurrent 100 Hz querier over s = 4096:
//     snapshot (sort outside the locks) vs lockedsort (the
//     pre-snapshot read path);
//   - window workload, width ∈ {1024, 65536}: sequence-stamped
//     MsgWindow candidates into windowed coordinators — the
//     non-monotone retention update (ordered insert, lazy dominance,
//     in-place expiry) per message, the PR 5 axis reworked in §13;
//   - live workload through a relay tree (fanout=4,depth=1 and
//     fanout=2,depth=2): every message crosses 1 or 2 relay hops on its
//     way to the server, so the delta against live/shards=1 is the
//     per-hop relay overhead the hierarchical fabric (§14) adds.
func collectIngestMatrix(quick bool) ([]ingestRecord, error) {
	msgs := int64(4 << 20)
	if quick {
		msgs = 1 << 19
	}
	date := time.Now().UTC().Format("2006-01-02")
	cpus := runtime.NumCPU()
	commit := buildCommit()
	var records []ingestRecord
	var tree string
	add := func(name, workload, mode string, res transport.IngestBenchResult) {
		records = append(records, ingestRecord{
			Name:       name,
			Workload:   workload,
			Mode:       mode,
			Shards:     res.Opts.Shards,
			Conns:      res.Opts.Conns,
			GOMAXPROCS: res.GOMAXPROCS,
			CPUs:       cpus,
			GOARCH:     runtime.GOARCH,
			Commit:     commit,
			Msgs:       res.Msgs,
			NsPerMsg:   res.NsPerMsg(),
			MmsgPerSec: res.MmsgPerSec(),
			DroppedPct: 100 * float64(res.Dropped) / float64(res.Msgs),
			Queries:    res.Queries,
			Window:     res.Opts.Window,
			Tree:       tree,
			Date:       date,
		})
		fmt.Printf("%-36s %8.1f ns/msg  %7.2f Mmsg/s  (shards=%d procs=%d cpus=%d)\n",
			name, res.NsPerMsg(), res.MmsgPerSec(), res.Opts.Shards, res.GOMAXPROCS, cpus)
	}

	for _, mode := range []struct {
		name   string
		serial bool
	}{{"prefilter", false}, {"serial", true}} {
		res, err := transport.RunIngestBench(transport.IngestBenchOpts{Msgs: msgs, Serial: mode.serial})
		if err != nil {
			return nil, err
		}
		add("drop/"+mode.name, "drop", mode.name, res)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		if shards > cpus {
			fmt.Printf("warning: live/shards=%d oversubscribes %d CPUs — shards serialize, the row measures contention, not scaling\n",
				shards, cpus)
		}
		res, err := transport.RunIngestBench(transport.IngestBenchOpts{Msgs: msgs, Live: true, Shards: shards})
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("live/shards=%d", shards), "live", "prefilter", res)
	}
	for _, q := range []struct {
		name   string
		locked bool
	}{{"snapshot", false}, {"lockedsort", true}} {
		res, err := transport.RunIngestBench(transport.IngestBenchOpts{
			Msgs: msgs, Live: true, SampleSize: 4096, QuerierHz: 100, LockedSort: q.locked,
		})
		if err != nil {
			return nil, err
		}
		add("querier/"+q.name+"/100Hz", "live", q.name, res)
	}

	for _, width := range []int{1024, 65536} {
		res, err := transport.RunIngestBench(transport.IngestBenchOpts{Msgs: msgs, Window: width})
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("window/width=%d", width), "window", "prefilter", res)
	}

	// Relay-tree axis: the live workload re-run behind relay tiers. The
	// tier cfg mirrors what RunIngestBench builds for the live workload
	// (K = conns, default s, epochs off), so the relays speak the same
	// protocol the server hosts.
	for _, shape := range []struct{ fanout, depth int }{{4, 1}, {2, 2}} {
		treeCfg := core.Config{K: 8, S: 8, DisableEpochs: true}
		tree = fmt.Sprintf("fanout=%d,depth=%d", shape.fanout, shape.depth)
		res, err := transport.RunIngestBench(transport.IngestBenchOpts{
			Msgs: msgs, Live: true,
			TreeDial: relay.IngestTier(treeCfg, 1, shape.fanout, shape.depth, relay.Options{}),
		})
		if err != nil {
			return nil, err
		}
		add("tree/live/"+tree, "live", "prefilter", res)
		tree = ""
	}

	if cpus < 8 {
		fmt.Printf("note: %d CPUs — the live shards axis needs >= 8 cores to show scaling\n", cpus)
	}
	return records, nil
}

// collectIngestMatrixBest runs the matrix `rounds` times and keeps each
// row's fastest round. Timings on shared or single-CPU hosts suffer
// bursty contention that inflates arbitrary rows by 1.5-2x; the
// per-row minimum converges on the machine's true throughput, which is
// what both the committed baseline and the CI gate should record.
func collectIngestMatrixBest(quick bool, rounds int) ([]ingestRecord, error) {
	if rounds < 1 {
		rounds = 1
	}
	best, err := collectIngestMatrix(quick)
	if err != nil {
		return nil, err
	}
	for round := 1; round < rounds; round++ {
		fmt.Printf("--- round %d/%d\n", round+1, rounds)
		next, err := collectIngestMatrix(quick)
		if err != nil {
			return nil, err
		}
		for i := range best {
			if i < len(next) && next[i].Name == best[i].Name && next[i].NsPerMsg < best[i].NsPerMsg {
				best[i] = next[i]
			}
		}
	}
	return best, nil
}

// runIngestMatrix runs the matrix and writes the rows as a JSON array
// to path (the committed BENCH_ingest.json, whose git history is the
// perf trajectory across PRs).
func runIngestMatrix(path string, quick bool, rounds int) error {
	records, err := collectIngestMatrixBest(quick, rounds)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", len(records), path)
	return nil
}
