package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"wrs/internal/transport"
)

// ingestRecord is one row of BENCH_ingest.json: the fields the ingest
// perf trajectory is tracked by, stable across PRs.
type ingestRecord struct {
	Name       string  `json:"name"`
	Workload   string  `json:"workload"` // "drop" or "live"
	Mode       string  `json:"mode"`     // "prefilter", "serial", "snapshot", "lockedsort"
	Shards     int     `json:"shards"`
	Conns      int     `json:"conns"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Msgs       int64   `json:"msgs"`
	NsPerMsg   float64 `json:"ns_per_msg"`
	MmsgPerSec float64 `json:"mmsg_per_s"`
	DroppedPct float64 `json:"dropped_pct"`
	Queries    int64   `json:"queries,omitempty"`
	Window     int     `json:"window,omitempty"`
	Date       string  `json:"date"`
}

// runIngestMatrix runs the coordinator-ingest benchmark matrix — the
// same harness the Go benchmarks wrap — and writes the rows as a JSON
// array to path. The matrix:
//
//   - drop workload, shards=1: prefilter vs serial (the PR 2 axes);
//   - live workload (never-filterable early messages), shards ∈
//     {1, 2, 4, 8}: the shard-scaling axis — at GOMAXPROCS >= 8 with 8
//     connections, shards=4 should be >= 2x shards=1 (on fewer cores
//     the shards serialize and the column is flat);
//   - live workload with a concurrent 100 Hz querier over s = 4096:
//     snapshot (sort outside the locks) vs lockedsort (the
//     pre-snapshot read path);
//   - window workload, width ∈ {1024, 65536}: sequence-stamped
//     MsgWindow candidates into windowed coordinators — the
//     non-monotone retention update (ordered insert, dominance,
//     expiry) per message, the PR 5 axis.
func runIngestMatrix(path string, quick bool) error {
	msgs := int64(4 << 20)
	if quick {
		msgs = 1 << 19
	}
	date := time.Now().UTC().Format("2006-01-02")
	var records []ingestRecord
	add := func(name, workload, mode string, res transport.IngestBenchResult) {
		records = append(records, ingestRecord{
			Name:       name,
			Workload:   workload,
			Mode:       mode,
			Shards:     res.Opts.Shards,
			Conns:      res.Opts.Conns,
			GOMAXPROCS: res.GOMAXPROCS,
			Msgs:       res.Msgs,
			NsPerMsg:   res.NsPerMsg(),
			MmsgPerSec: res.MmsgPerSec(),
			DroppedPct: 100 * float64(res.Dropped) / float64(res.Msgs),
			Queries:    res.Queries,
			Window:     res.Opts.Window,
			Date:       date,
		})
		fmt.Printf("%-36s %8.1f ns/msg  %7.2f Mmsg/s  (shards=%d procs=%d)\n",
			name, res.NsPerMsg(), res.MmsgPerSec(), res.Opts.Shards, res.GOMAXPROCS)
	}

	for _, mode := range []struct {
		name   string
		serial bool
	}{{"prefilter", false}, {"serial", true}} {
		res, err := transport.RunIngestBench(transport.IngestBenchOpts{Msgs: msgs, Serial: mode.serial})
		if err != nil {
			return err
		}
		add("drop/"+mode.name, "drop", mode.name, res)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		res, err := transport.RunIngestBench(transport.IngestBenchOpts{Msgs: msgs, Live: true, Shards: shards})
		if err != nil {
			return err
		}
		add(fmt.Sprintf("live/shards=%d", shards), "live", "prefilter", res)
	}
	for _, q := range []struct {
		name   string
		locked bool
	}{{"snapshot", false}, {"lockedsort", true}} {
		res, err := transport.RunIngestBench(transport.IngestBenchOpts{
			Msgs: msgs, Live: true, SampleSize: 4096, QuerierHz: 100, LockedSort: q.locked,
		})
		if err != nil {
			return err
		}
		add("querier/"+q.name+"/100Hz", "live", q.name, res)
	}

	for _, width := range []int{1024, 65536} {
		res, err := transport.RunIngestBench(transport.IngestBenchOpts{Msgs: msgs, Window: width})
		if err != nil {
			return err
		}
		add(fmt.Sprintf("window/width=%d", width), "window", "prefilter", res)
	}

	if runtime.NumCPU() < 8 {
		fmt.Printf("note: %d CPUs — the live shards axis needs >= 8 cores to show scaling\n", runtime.NumCPU())
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", len(records), path)
	return nil
}
