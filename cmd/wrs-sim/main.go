// Command wrs-sim runs one application of the protocol over a generated
// stream and prints its answer plus traffic statistics. It is the
// walkthrough for the plugin API: every application is opened through
// wrs.Open(app, ...) onto the same Handle surface, so one switch over
// -app is all the per-application code there is.
//
// Usage:
//
//	wrs-sim -k 16 -s 10 -n 100000 -workload zipf -seed 7
//	wrs-sim -runtime goroutines         # goroutine-per-site cluster
//	wrs-sim -runtime tcp                # real loopback TCP cluster
//	wrs-sim -shards 4                   # 4-way sharded protocol fabric
//	wrs-sim -app hh -eps 0.1 -delta 0.1 # residual heavy hitters
//	wrs-sim -app l1 -eps 0.2            # (1±eps) L1 tracking
//	wrs-sim -app quantile -eps 0.1      # weight-CDF / rank quantiles
//	wrs-sim -app window -width 5000     # sliding-window weighted SWOR
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"wrs"
	"wrs/internal/quantile"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"wrs-sim:"}, v...)...)
	os.Exit(1)
}

// handle is the app-independent slice of wrs.Handle[Q] — everything the
// feeding loop needs; only the report at the end is typed per app.
type handle interface {
	Observe(site int, it wrs.Item) error
	Flush() error
	Stats() wrs.Stats
	Shards() int
	Close() error
}

func main() {
	k := flag.Int("k", 8, "number of sites")
	s := flag.Int("s", 10, "sample size (swor app)")
	n := flag.Int("n", 100000, "stream length")
	app := flag.String("app", "swor", "application: swor, hh, l1, quantile, window")
	eps := flag.Float64("eps", 0.1, "accuracy parameter (hh, l1, quantile apps)")
	delta := flag.Float64("delta", 0.1, "failure probability (hh, l1, quantile apps)")
	width := flag.Int("width", 5000, "sub-stream window width in items (window app)")
	workload := flag.String("workload", "uniform", "weights: unit, uniform, zipf, pareto, heavyhead")
	partition := flag.String("partition", "roundrobin", "site assignment: roundrobin, random, contiguous, single")
	seed := flag.Uint64("seed", 1, "random seed")
	runtimeName := flag.String("runtime", "sequential", "runtime: sequential, goroutines, tcp")
	shards := flag.Int("shards", 1, "protocol shards (parallel coordinator instances, exact merged query)")
	flag.Parse()

	var wf stream.WeightFn
	switch *workload {
	case "unit":
		wf = stream.UnitWeights()
	case "uniform":
		wf = stream.UniformWeights(1000)
	case "zipf":
		wf = stream.ZipfWeights(1.5, 100000)
	case "pareto":
		wf = stream.ParetoWeights(1.1)
	case "heavyhead":
		wf = stream.HeavyHeadWeights(5, 1e9)
	default:
		fmt.Fprintf(os.Stderr, "wrs-sim: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	var af stream.AssignFn
	switch *partition {
	case "roundrobin":
		af = stream.RoundRobin(*k)
	case "random":
		af = stream.RandomSites(*k)
	case "contiguous":
		af = stream.Contiguous(*k, *n)
	case "single":
		af = stream.SingleSite()
	default:
		fmt.Fprintf(os.Stderr, "wrs-sim: unknown partition %q\n", *partition)
		os.Exit(2)
	}
	var spec wrs.RuntimeSpec
	switch *runtimeName {
	case "sequential":
		spec = wrs.Sequential()
	case "goroutines":
		spec = wrs.Goroutines()
	case "tcp":
		spec = wrs.TCP("")
	default:
		fmt.Fprintf(os.Stderr, "wrs-sim: unknown runtime %q\n", *runtimeName)
		os.Exit(2)
	}
	opts := []wrs.Option{wrs.WithSeed(*seed), wrs.WithRuntime(spec), wrs.WithShards(*shards)}

	// The oracle records every weight fed, so the l1 and quantile
	// reports can show estimate vs exact truth.
	var oracle quantile.Oracle

	// Open the selected application. Each case yields the shared ingest
	// handle plus a typed report closure — the entire per-application
	// cost of a new workload under the plugin API.
	var (
		h      handle
		report func()
		err    error
	)
	switch *app {
	case "swor":
		var sh *wrs.Handle[[]wrs.Sampled]
		sh, err = wrs.Open(wrs.Sampler(*k, *s), opts...)
		h = sh
		report = func() {
			fmt.Println("sample (id, weight, key):")
			for _, e := range sh.Query() {
				fmt.Printf("  %8d  w=%-12.2f key=%.4g\n", e.Item.ID, e.Item.Weight, e.Key)
			}
		}
	case "hh":
		var hh *wrs.Handle[[]wrs.Item]
		hh, err = wrs.Open(wrs.HeavyHitters(*k, *eps, *delta), opts...)
		h = hh
		report = func() {
			cand := hh.Query()
			fmt.Printf("residual heavy-hitter candidates (top %d by weight):\n", len(cand))
			for i, it := range cand {
				if i >= 10 {
					fmt.Printf("  ... and %d more\n", len(cand)-10)
					break
				}
				fmt.Printf("  %8d  w=%.3f\n", it.ID, it.Weight)
			}
		}
	case "l1":
		var l1 *wrs.Handle[float64]
		l1, err = wrs.Open(wrs.L1(*k, *eps, *delta), opts...)
		h = l1
		report = func() {
			est, W := l1.Query(), oracle.Total()
			fmt.Printf("L1 estimate: %.1f  true: %.1f  relative error: %.2f%% (eps=%v)\n",
				est, W, 100*math.Abs(est-W)/W, *eps)
		}
	case "quantile":
		var q *wrs.Handle[wrs.QuantileEstimate]
		q, err = wrs.Open(wrs.Quantiles(*k, *eps, *delta), opts...)
		h = q
		report = func() {
			est := q.Query()
			fmt.Printf("weight-CDF estimate from %d support points (saturated=%v):\n",
				est.Support(), est.Saturated())
			fmt.Printf("  total weight: est %.1f  true %.1f\n", est.Total(), oracle.Total())
			for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
				got, _ := est.Quantile(phi)
				want, _ := oracle.Quantile(phi)
				fmt.Printf("  q%-4g  est %-12.3f exact %-12.3f (rank error %+.3f)\n",
					100*phi, got, want, oracle.CDF(got)-phi)
			}
		}
	case "window":
		var wh *wrs.Handle[wrs.WindowSample]
		wh, err = wrs.Open(wrs.Windowed(*k, *s, *width), opts...)
		h = wh
		report = func() {
			ws := wh.Query()
			fmt.Printf("sliding-window sample (width %d per sub-stream; %d live, %d retained, %d accounted):\n",
				*width, ws.Window, ws.Retained, ws.Observed)
			for _, e := range ws.Items {
				fmt.Printf("  %8d  w=%-12.2f key=%.4g\n", e.Item.ID, e.Item.Weight, e.Key)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "wrs-sim: unknown app %q\n", *app)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	g := stream.NewGenerator(*n, *k, wf, af)
	genRNG := xrand.New(*seed ^ 0x9E3779B97F4A7C15)
	for {
		u, ok := g.Next(genRNG)
		if !ok {
			break
		}
		oracle.Observe(u.Item.Weight)
		if err := h.Observe(u.Site, wrs.Item{ID: u.Item.ID, Weight: u.Item.Weight}); err != nil {
			fatal(err)
		}
	}
	if err := h.Flush(); err != nil {
		fatal(err)
	}
	stats := h.Stats()

	fmt.Printf("stream: n=%d  W=%.1f  k=%d  app=%s  shards=%d  workload=%s/%s  runtime=%s\n",
		*n, oracle.Total(), *k, *app, h.Shards(), *workload, *partition, *runtimeName)
	fmt.Printf("traffic: %d up + %d down = %d messages (%.4f per update)\n",
		stats.Upstream, stats.Downstream, stats.Total(),
		float64(stats.Total())/float64(*n))
	report()
	if err := h.Close(); err != nil {
		fatal(err)
	}
}
