// Command wrs-sim runs a single distributed weighted-SWOR simulation and
// prints the maintained sample plus traffic statistics — a quick way to
// watch the protocol behave under different workloads and runtimes.
//
// Usage:
//
//	wrs-sim -k 16 -s 10 -n 100000 -workload zipf -seed 7
//	wrs-sim -runtime goroutines    # goroutine-per-site cluster
//	wrs-sim -runtime tcp           # real loopback TCP cluster
//	wrs-sim -shards 4              # 4-way sharded protocol fabric
package main

import (
	"flag"
	"fmt"
	"os"

	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	rt "wrs/internal/runtime"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func main() {
	k := flag.Int("k", 8, "number of sites")
	s := flag.Int("s", 10, "sample size")
	n := flag.Int("n", 100000, "stream length")
	workload := flag.String("workload", "uniform", "weights: unit, uniform, zipf, pareto, heavyhead")
	partition := flag.String("partition", "roundrobin", "site assignment: roundrobin, random, contiguous, single")
	seed := flag.Uint64("seed", 1, "random seed")
	runtimeName := flag.String("runtime", "sequential", "runtime: sequential, goroutines, tcp")
	shards := flag.Int("shards", 1, "protocol shards (parallel coordinator instances, exact merged query)")
	flag.Parse()

	var wf stream.WeightFn
	switch *workload {
	case "unit":
		wf = stream.UnitWeights()
	case "uniform":
		wf = stream.UniformWeights(1000)
	case "zipf":
		wf = stream.ZipfWeights(1.5, 100000)
	case "pareto":
		wf = stream.ParetoWeights(1.1)
	case "heavyhead":
		wf = stream.HeavyHeadWeights(5, 1e9)
	default:
		fmt.Fprintf(os.Stderr, "wrs-sim: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	var af stream.AssignFn
	switch *partition {
	case "roundrobin":
		af = stream.RoundRobin(*k)
	case "random":
		af = stream.RandomSites(*k)
	case "contiguous":
		af = stream.Contiguous(*k, *n)
	case "single":
		af = stream.SingleSite()
	default:
		fmt.Fprintf(os.Stderr, "wrs-sim: unknown partition %q\n", *partition)
		os.Exit(2)
	}
	var factory rt.Factory
	switch *runtimeName {
	case "sequential":
		factory = rt.Sequential()
	case "goroutines":
		factory = rt.Goroutines()
	case "tcp":
		factory = rt.TCP("")
	default:
		fmt.Fprintf(os.Stderr, "wrs-sim: unknown runtime %q\n", *runtimeName)
		os.Exit(2)
	}

	cfg := core.Config{K: *k, S: *s}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "wrs-sim:", err)
		os.Exit(2)
	}
	if err := fabric.Validate(*shards); err != nil {
		fmt.Fprintln(os.Stderr, "wrs-sim:", err)
		os.Exit(2)
	}
	master := xrand.New(*seed)
	insts := make([]rt.Instance, *shards)
	coords := make([]*core.Coordinator, *shards)
	for p := range insts {
		coord := core.NewCoordinator(cfg, master.Split())
		sites := make([]netsim.Site[core.Message], *k)
		for i := 0; i < *k; i++ {
			sites[i] = core.NewSite(i, cfg, master.Split())
		}
		insts[p] = rt.Instance{Cfg: cfg, Coord: coord, Sites: sites}
		coords[p] = coord
	}
	var run rt.ShardedRuntime
	var err error
	switch {
	case *shards == 1:
		var single rt.Runtime
		single, err = factory(insts[0])
		if err == nil {
			run = rt.Single(single)
		}
	case *runtimeName == "tcp":
		// One server hosting every shard, one connection per site.
		run, err = rt.TCPSharded("")(insts)
	default:
		run, err = rt.NewFabric(insts, factory)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrs-sim:", err)
		os.Exit(1)
	}

	g := stream.NewGenerator(*n, *k, wf, af)
	genRNG := xrand.New(*seed ^ 0x9E3779B97F4A7C15)
	var totalW float64
	for {
		u, ok := g.Next(genRNG)
		if !ok {
			break
		}
		totalW += u.Item.Weight
		if err := run.Feed(u.Site, u.Item); err != nil {
			fmt.Fprintln(os.Stderr, "wrs-sim:", err)
			os.Exit(1)
		}
	}
	if err := run.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "wrs-sim:", err)
		os.Exit(1)
	}
	stats := run.Stats()

	fmt.Printf("stream: n=%d  W=%.1f  k=%d  s=%d  shards=%d  workload=%s/%s  runtime=%s\n",
		*n, totalW, *k, *s, *shards, *workload, *partition, *runtimeName)
	fmt.Printf("traffic: %d up + %d down = %d messages (%.4f per update)\n",
		stats.Upstream, stats.Downstream, stats.Total(),
		float64(stats.Total())/float64(*n))
	// Per-shard state is snapshotted under each shard's own lock; the
	// exact top-s merge and sort run outside every lock.
	var entries []core.SampleEntry
	for p, coord := range coords {
		coord := coord
		run.DoShard(p, func() {
			fmt.Printf("shard %d: u=%.3g  threshold=%.3g  saturated levels=%v\n",
				p, coord.U(), coord.CurrentThreshold(), coord.SaturatedLevels())
			entries = coord.Snapshot(entries)
		})
	}
	fmt.Println("sample (id, weight, key):")
	for _, e := range fabric.Merge(entries, *s) {
		fmt.Printf("  %8d  w=%-12.2f key=%.4g\n", e.Item.ID, e.Item.Weight, e.Key)
	}
	if err := run.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "wrs-sim:", err)
		os.Exit(1)
	}
}
