// Command wrs-chaos drives the deterministic chaos harness (package
// workload): declarative fault scenarios — site crashes and late joins,
// coordinator snapshot/restart, degrading links — run against a chosen
// application under a virtual clock, with every run checked exactly
// against the acknowledgment oracle. It also runs the wall-clock ingest
// saturation sweep (package workload/saturate) and writes
// BENCH_saturation.json.
//
// Usage:
//
//	wrs-chaos -list                         # catalog of built-in scenarios
//	wrs-chaos -scenario churn               # one scenario, swor, 1 shard
//	wrs-chaos -scenario restart -app hh -shards 2
//	wrs-chaos -scenario tree-sever -app l1  # relay-tree partition, L1 oracle
//	wrs-chaos -all                          # full catalog x apps x shards {1,2}
//	wrs-chaos -scenario churn -seed 99      # reseed: new workload, same faults
//	wrs-chaos -fuzz 500 -seed 1             # 500 random schedules vs the oracle
//	wrs-chaos -run repro.json               # replay a serialized scenario
//	wrs-chaos -minimize repro.json          # shrink a failing scenario
//	wrs-chaos -saturation                   # sweep, write BENCH_saturation.json
//
// Every scenario run is deterministic: the same seed reproduces the
// same final sample, answer, and engine statistics bit for bit. A run
// whose final query diverges from the oracle exits nonzero — wrs-chaos
// doubles as an acceptance check — and writes the minimized failing
// schedule next to the working directory with a ready-made -run
// invocation, so a red CI line is a one-command local reproduction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"wrs/internal/transport"
	"wrs/internal/workload"
	"wrs/internal/workload/saturate"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"wrs-chaos:"}, v...)...)
	os.Exit(1)
}

func main() {
	list := flag.Bool("list", false, "list built-in scenarios")
	scenario := flag.String("scenario", "", "run one built-in scenario by name")
	app := flag.String("app", "swor", fmt.Sprintf("application: %v", workload.AppNames()))
	shards := flag.Int("shards", 1, "protocol shards")
	seed := flag.Uint64("seed", 0, "override the scenario's seed (0 keeps the built-in seed); with -fuzz: the first seed")
	n := flag.Int("n", 0, "override the scenario's stream length (0 keeps the built-in length)")
	all := flag.Bool("all", false, "run every scenario x every app x shards {1,2}")
	fuzz := flag.Int("fuzz", 0, "generate and check this many random schedules (seeds counting up from -seed)")
	runFile := flag.String("run", "", "run a scenario serialized as JSON (a -fuzz/-minimize reproducer)")
	minimize := flag.String("minimize", "", "shrink the failing scenario in this JSON file and print the minimized reproducer")
	saturation := flag.Bool("saturation", false, "run the ingest saturation sweep instead of scenarios")
	out := flag.String("out", "BENCH_saturation.json", "output path for -saturation results")
	conns := flag.Int("conns", 4, "with -saturation: concurrent site connections")
	flag.Parse()

	switch {
	case *list:
		for _, sc := range workload.Builtin() {
			topo := "flat"
			if sc.Depth > 0 {
				topo = fmt.Sprintf("tree f=%d d=%d", sc.Fanout, sc.Depth)
			}
			fmt.Printf("%-10s k=%d s=%d n=%d seed=%d faults=%d %s\n           %s\n",
				sc.Name, sc.K, sc.S, sc.N, sc.Seed, len(sc.Faults), topo, sc.About)
		}
	case *saturation:
		runSaturation(*out, *conns)
	case *fuzz > 0:
		runFuzz(*fuzz, *seed, *n)
	case *runFile != "":
		sc := loadScenario(*runFile)
		if !runOne(sc, *app, *shards, *seed, *n) {
			os.Exit(1)
		}
	case *minimize != "":
		runMinimize(*minimize)
	case *all:
		failed := 0
		for _, sc := range workload.Builtin() {
			for _, appName := range workload.AppNames() {
				for _, sh := range []int{1, 2} {
					if !runOne(sc, appName, sh, *seed, *n) {
						failed++
					}
				}
			}
		}
		if failed > 0 {
			fatal(failed, "runs diverged from the oracle")
		}
	case *scenario != "":
		sc, ok := workload.Lookup(*scenario)
		if !ok {
			fatal("unknown scenario", *scenario, "(try -list)")
		}
		if !runOne(sc, *app, *shards, *seed, *n) {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// loadScenario reads and validates a serialized scenario.
func loadScenario(path string) workload.Scenario {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	sc, err := workload.DecodeScenario(data)
	if err != nil {
		fatal(err)
	}
	return sc
}

// runFuzz checks `count` generated schedules, seeds counting up from
// `start`, each against every oracle family at shards {1,2}. The first
// failure is shrunk and written as a reproducer; a clean sweep prints a
// one-line summary. Rerunning with the same -seed repeats the exact
// sweep.
func runFuzz(count int, start uint64, n int) {
	cfg := workload.DefaultFuzzConfig()
	if n != 0 {
		cfg.N = n
	}
	shardCounts := []int{1, 2}
	for i := 0; i < count; i++ {
		seed := start + uint64(i)
		sc := workload.FuzzScenario(cfg, seed)
		msg := workload.FirstFailure(sc, workload.FuzzApps(), shardCounts)
		if msg == "" {
			continue
		}
		fmt.Printf("seed %d FAILED: %s\n", seed, msg)
		writeRepro(sc, shardCounts)
		os.Exit(1)
	}
	fmt.Printf("fuzz: %d schedules (seeds %d..%d), every run oracle-exact for apps %v at shards %v\n",
		count, start, start+uint64(count)-1, workload.FuzzApps(), shardCounts)
}

// runMinimize shrinks the scenario in `path` against the full oracle
// matrix and prints the minimized reproducer. The input must currently
// fail; minimizing a passing scenario is refused rather than silently
// returning it unchanged.
func runMinimize(path string) {
	sc := loadScenario(path)
	shardCounts := []int{1, 2}
	if workload.FirstFailure(sc, workload.FuzzApps(), shardCounts) == "" {
		fatal("scenario in", path, "does not fail the oracle; nothing to minimize")
	}
	writeRepro(sc, shardCounts)
}

// writeRepro shrinks a failing scenario against the full oracle matrix,
// writes the minimized JSON next to the working directory, and prints
// the copy-pasteable invocation that replays it.
func writeRepro(sc workload.Scenario, shardCounts []int) {
	failing := func(c workload.Scenario) bool {
		return workload.FirstFailure(c, workload.FuzzApps(), shardCounts) != ""
	}
	emitRepro(sc, failing, "")
}

// emitRepro shrinks sc while `failing` holds, writes the reproducer,
// and prints a -run invocation (with extra flags when the failure is
// specific to one app x shard configuration).
func emitRepro(sc workload.Scenario, failing func(workload.Scenario) bool, extraFlags string) {
	shrunk := workload.Shrink(sc, failing)
	repro, err := workload.EncodeScenario(shrunk)
	if err != nil {
		fatal(err)
	}
	path := fmt.Sprintf("wrs-chaos-repro-%s.json", shrunk.Name)
	if err := os.WriteFile(path, append(repro, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("minimized reproducer (%d faults, n=%d) written to %s\n", len(shrunk.Faults), shrunk.N, path)
	fmt.Printf("reproduce with:\n  go run ./cmd/wrs-chaos -run %s%s\n", path, extraFlags)
}

// runOne runs a single scenario x app x shard configuration and prints
// the outcome; it returns false when the final query diverges from the
// acknowledgment oracle.
func runOne(sc workload.Scenario, appName string, shards int, seed uint64, n int) bool {
	sc.Shards = shards
	if seed != 0 {
		sc.Seed = seed
	}
	if n != 0 {
		sc.N = n
	}
	res, answer, err := workload.RunNamed(sc, appName)
	if err != nil {
		fatal(err)
	}
	st := res.Engine
	fmt.Printf("%s app=%s shards=%d seed=%d: %d arrivals (%d to dead sites), up %d/%d lost, down %d/%d lost, crashes=%d joins=%d restarts=%d acks-rolled-back=%d, vtime=%.3fs\n",
		sc.Name, appName, shards, sc.Seed,
		st.Arrivals, st.DroppedArrivals,
		st.UpLost, st.UpLost+st.UpDelivered,
		st.DownLost, st.DownLost+st.DownDelivered,
		st.Crashes, st.Joins, st.Restarts, st.AcksRolledBack, st.FinalVirtualTime)
	for p, sh := range res.Shards {
		fmt.Printf("  shard %d: sample %d, acked %d\n", p, len(sh.Query), sh.Acked)
	}
	fmt.Printf("  answer: %s\n", answer)
	if err := res.Err(); err != nil {
		fmt.Printf("  FAIL: %v\n", err)
		if sc.Source == nil && sc.SpecFor == nil {
			emitRepro(sc, func(c workload.Scenario) bool {
				c.Shards = shards
				r, _, err := workload.RunNamed(c, appName)
				return err != nil || r.Err() != nil
			}, fmt.Sprintf(" -app %s -shards %d", appName, shards))
		}
		return false
	}
	fmt.Printf("  exact: query == top-s over acknowledged updates, every shard\n")
	return true
}

// saturationRecord is BENCH_saturation.json: one sweep plus the host
// metadata needed to compare records across machines and commits.
type saturationRecord struct {
	Conns        int              `json:"conns"`
	Shards       int              `json:"shards"`
	GOMAXPROCS   int              `json:"gomaxprocs"`
	CPUs         int              `json:"cpus"`
	GOARCH       string           `json:"goarch,omitempty"`
	Commit       string           `json:"commit,omitempty"`
	Date         string           `json:"date"`
	MaxUnpacedHz float64          `json:"max_unpaced_hz"`
	KneeHz       float64          `json:"knee_hz"`
	MinUtil      float64          `json:"min_util"`
	Points       []saturate.Point `json:"points"`
}

// buildCommit returns the short VCS revision stamped into the binary,
// or "" when built without stamping (note: `go run` skips it — build
// the binary to get a commit into the record).
func buildCommit() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "+dirty"
	}
	return rev
}

func runSaturation(out string, conns int) {
	opts := saturate.Opts{
		Bench: transport.IngestBenchOpts{
			Conns: conns,
			Msgs:  1 << 20,
		},
	}
	res, err := saturate.Run(opts)
	if err != nil {
		fatal(err)
	}
	rec := saturationRecord{
		Conns:        conns,
		Shards:       1,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		CPUs:         runtime.NumCPU(),
		GOARCH:       runtime.GOARCH,
		Commit:       buildCommit(),
		Date:         time.Now().UTC().Format("2006-01-02"),
		MaxUnpacedHz: res.MaxUnpacedHz,
		KneeHz:       res.KneeHz,
		MinUtil:      res.MinUtil,
		Points:       res.Points,
	}
	fmt.Printf("unpaced service rate: %.3g msg/s\n", res.MaxUnpacedHz)
	for _, pt := range res.Points {
		marker := " "
		if pt.OfferedHz == res.KneeHz {
			marker = "*"
		}
		fmt.Printf("%s offered %.3g msg/s -> achieved %.3g (util %.2f, %.0f ns/msg)\n",
			marker, pt.OfferedHz, pt.AchievedHz, pt.Utilization, pt.NsPerMsg)
	}
	fmt.Printf("knee: %.3g msg/s (highest offered rate served at >= %.0f%% utilization)\n",
		res.KneeHz, res.MinUtil*100)
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", out)
}
