// Command wrs-chaos drives the deterministic chaos harness (package
// workload): declarative fault scenarios — site crashes and late joins,
// coordinator snapshot/restart, degrading links — run against a chosen
// application under a virtual clock, with every run checked exactly
// against the acknowledgment oracle. It also runs the wall-clock ingest
// saturation sweep (package workload/saturate) and writes
// BENCH_saturation.json.
//
// Usage:
//
//	wrs-chaos -list                         # catalog of built-in scenarios
//	wrs-chaos -scenario churn               # one scenario, swor, 1 shard
//	wrs-chaos -scenario restart -app hh -shards 2
//	wrs-chaos -all                          # full catalog x apps x shards {1,2}
//	wrs-chaos -scenario churn -seed 99      # reseed: new workload, same faults
//	wrs-chaos -saturation                   # sweep, write BENCH_saturation.json
//
// Every scenario run is deterministic: the same seed reproduces the
// same final sample, answer, and engine statistics bit for bit. A run
// whose final query diverges from the oracle exits nonzero — wrs-chaos
// doubles as an acceptance check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"wrs/internal/transport"
	"wrs/internal/workload"
	"wrs/internal/workload/saturate"
)

func fatal(v ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"wrs-chaos:"}, v...)...)
	os.Exit(1)
}

func main() {
	list := flag.Bool("list", false, "list built-in scenarios")
	scenario := flag.String("scenario", "", "run one built-in scenario by name")
	app := flag.String("app", "swor", "application: swor, hh, quantile")
	shards := flag.Int("shards", 1, "protocol shards")
	seed := flag.Uint64("seed", 0, "override the scenario's seed (0 keeps the built-in seed)")
	n := flag.Int("n", 0, "override the scenario's stream length (0 keeps the built-in length)")
	all := flag.Bool("all", false, "run every scenario x every app x shards {1,2}")
	saturation := flag.Bool("saturation", false, "run the ingest saturation sweep instead of scenarios")
	out := flag.String("out", "BENCH_saturation.json", "output path for -saturation results")
	conns := flag.Int("conns", 4, "with -saturation: concurrent site connections")
	flag.Parse()

	switch {
	case *list:
		for _, sc := range workload.Builtin() {
			fmt.Printf("%-8s k=%d s=%d n=%d seed=%d faults=%d\n         %s\n",
				sc.Name, sc.K, sc.S, sc.N, sc.Seed, len(sc.Faults), sc.About)
		}
	case *saturation:
		runSaturation(*out, *conns)
	case *all:
		failed := 0
		for _, sc := range workload.Builtin() {
			for _, appName := range workload.AppNames() {
				for _, sh := range []int{1, 2} {
					if !runOne(sc, appName, sh, *seed, *n) {
						failed++
					}
				}
			}
		}
		if failed > 0 {
			fatal(failed, "runs diverged from the oracle")
		}
	case *scenario != "":
		sc, ok := workload.Lookup(*scenario)
		if !ok {
			fatal("unknown scenario", *scenario, "(try -list)")
		}
		if !runOne(sc, *app, *shards, *seed, *n) {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runOne runs a single scenario x app x shard configuration and prints
// the outcome; it returns false when the final query diverges from the
// acknowledgment oracle.
func runOne(sc workload.Scenario, appName string, shards int, seed uint64, n int) bool {
	sc.Shards = shards
	if seed != 0 {
		sc.Seed = seed
	}
	if n != 0 {
		sc.N = n
	}
	res, answer, err := workload.RunNamed(sc, appName)
	if err != nil {
		fatal(err)
	}
	st := res.Engine
	fmt.Printf("%s app=%s shards=%d seed=%d: %d arrivals (%d to dead sites), up %d/%d lost, down %d/%d lost, crashes=%d joins=%d restarts=%d acks-rolled-back=%d, vtime=%.3fs\n",
		sc.Name, appName, shards, sc.Seed,
		st.Arrivals, st.DroppedArrivals,
		st.UpLost, st.UpLost+st.UpDelivered,
		st.DownLost, st.DownLost+st.DownDelivered,
		st.Crashes, st.Joins, st.Restarts, st.AcksRolledBack, st.FinalVirtualTime)
	for p, sh := range res.Shards {
		fmt.Printf("  shard %d: sample %d, acked %d\n", p, len(sh.Query), sh.Acked)
	}
	fmt.Printf("  answer: %s\n", answer)
	if err := res.Err(); err != nil {
		fmt.Printf("  FAIL: %v\n", err)
		return false
	}
	fmt.Printf("  exact: query == top-s over acknowledged updates, every shard\n")
	return true
}

// saturationRecord is BENCH_saturation.json: one sweep plus the host
// metadata needed to compare records across machines and commits.
type saturationRecord struct {
	Conns        int              `json:"conns"`
	Shards       int              `json:"shards"`
	GOMAXPROCS   int              `json:"gomaxprocs"`
	CPUs         int              `json:"cpus"`
	GOARCH       string           `json:"goarch,omitempty"`
	Commit       string           `json:"commit,omitempty"`
	Date         string           `json:"date"`
	MaxUnpacedHz float64          `json:"max_unpaced_hz"`
	KneeHz       float64          `json:"knee_hz"`
	MinUtil      float64          `json:"min_util"`
	Points       []saturate.Point `json:"points"`
}

// buildCommit returns the short VCS revision stamped into the binary,
// or "" when built without stamping (note: `go run` skips it — build
// the binary to get a commit into the record).
func buildCommit() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "+dirty"
	}
	return rev
}

func runSaturation(out string, conns int) {
	opts := saturate.Opts{
		Bench: transport.IngestBenchOpts{
			Conns: conns,
			Msgs:  1 << 20,
		},
	}
	res, err := saturate.Run(opts)
	if err != nil {
		fatal(err)
	}
	rec := saturationRecord{
		Conns:        conns,
		Shards:       1,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		CPUs:         runtime.NumCPU(),
		GOARCH:       runtime.GOARCH,
		Commit:       buildCommit(),
		Date:         time.Now().UTC().Format("2006-01-02"),
		MaxUnpacedHz: res.MaxUnpacedHz,
		KneeHz:       res.KneeHz,
		MinUtil:      res.MinUtil,
		Points:       res.Points,
	}
	fmt.Printf("unpaced service rate: %.3g msg/s\n", res.MaxUnpacedHz)
	for _, pt := range res.Points {
		marker := " "
		if pt.OfferedHz == res.KneeHz {
			marker = "*"
		}
		fmt.Printf("%s offered %.3g msg/s -> achieved %.3g (util %.2f, %.0f ns/msg)\n",
			marker, pt.OfferedHz, pt.AchievedHz, pt.Utilization, pt.NsPerMsg)
	}
	fmt.Printf("knee: %.3g msg/s (highest offered rate served at >= %.0f%% utilization)\n",
		res.KneeHz, res.MinUtil*100)
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", out)
}
