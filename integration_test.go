package wrs_test

import (
	"math"
	"testing"

	"wrs"
	"wrs/internal/sample"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// TestCrossImplementationAgreement runs the same weighted universe
// through four independent sampler implementations — the distributed
// protocol (sequential and concurrent runtimes), the sequential
// Efraimidis–Spirakis reservoir, and cascade sampling — and checks all of
// them against the exact weighted-SWOR inclusion law. Agreement across
// structurally different implementations is the strongest cross-check the
// library has.
func TestCrossImplementationAgreement(t *testing.T) {
	weights := []float64{1, 3, 9, 27}
	const s, trials = 2, 30000
	exact := sample.InclusionProbs(weights, s)

	impls := map[string]func(seed uint64) map[uint64]bool{
		"distributed-sequential": func(seed uint64) map[uint64]bool {
			ds, err := wrs.NewDistributedSampler(2, s, wrs.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range weights {
				if err := ds.Observe(i%2, wrs.Item{ID: uint64(i), Weight: w}); err != nil {
					t.Fatal(err)
				}
			}
			out := map[uint64]bool{}
			for _, e := range ds.Sample() {
				out[e.Item.ID] = true
			}
			return out
		},
		"reservoir-es": func(seed uint64) map[uint64]bool {
			r, err := wrs.NewReservoir(s, wrs.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range weights {
				if err := r.Observe(wrs.Item{ID: uint64(i), Weight: w}); err != nil {
					t.Fatal(err)
				}
			}
			out := map[uint64]bool{}
			for _, e := range r.Sample() {
				out[e.Item.ID] = true
			}
			return out
		},
		"cascade": func(seed uint64) map[uint64]bool {
			c := sample.NewCascade(s, xrand.New(seed))
			for i, w := range weights {
				c.Observe(stream.Item{ID: uint64(i), Weight: w})
			}
			out := map[uint64]bool{}
			for _, it := range c.Sample() {
				out[it.ID] = true
			}
			return out
		},
		"sliding-window-wide": func(seed uint64) map[uint64]bool {
			// A window wider than the stream degenerates to plain SWOR.
			r, err := wrs.NewSlidingReservoir(s, 100, wrs.WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range weights {
				if err := r.Observe(wrs.Item{ID: uint64(i), Weight: w}); err != nil {
					t.Fatal(err)
				}
			}
			out := map[uint64]bool{}
			for _, e := range r.Sample() {
				out[e.Item.ID] = true
			}
			return out
		},
	}

	for name, run := range impls {
		counts := make([]float64, len(weights))
		for tr := 0; tr < trials; tr++ {
			for id := range run(uint64(tr)*6364136223846793005 + 1442695040888963407) {
				counts[id]++
			}
		}
		for i := range weights {
			got := counts[i] / trials
			sigma := math.Sqrt(exact[i] * (1 - exact[i]) / trials)
			if math.Abs(got-exact[i]) > 5*sigma+1e-9 {
				t.Errorf("%s: inclusion[%d] = %v, want %v (5 sigma %v)",
					name, i, got, exact[i], 5*sigma)
			}
		}
	}
}

// TestConcurrentMatchesSequentialDistribution compares the concurrent
// runtime's inclusion frequencies with the exact law on a slightly larger
// universe (fewer trials: each trial spins up goroutines).
func TestConcurrentMatchesSequentialDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("goroutine-heavy distribution test skipped in -short mode")
	}
	weights := []float64{1, 4, 16}
	const s, trials = 1, 8000
	exact := sample.InclusionProbs(weights, s)
	counts := make([]float64, len(weights))
	for tr := 0; tr < trials; tr++ {
		cs, err := wrs.NewConcurrentSampler(2, s, wrs.WithSeed(uint64(tr)+555))
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range weights {
			cs.Feed(i%2, wrs.Item{ID: uint64(i), Weight: w})
		}
		if _, err := cs.Drain(); err != nil {
			t.Fatal(err)
		}
		smp, err := cs.Sample()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range smp {
			counts[e.Item.ID]++
		}
	}
	for i := range weights {
		got := counts[i] / trials
		sigma := math.Sqrt(exact[i] * (1 - exact[i]) / trials)
		if math.Abs(got-exact[i]) > 5*sigma+1e-9 {
			t.Errorf("concurrent inclusion[%d] = %v, want %v", i, got, exact[i])
		}
	}
}
