package transport

import (
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// benchClient wires one site client to a fresh loopback coordinator.
func benchClient(b *testing.B, cfg core.Config) (*CoordinatorServer, *SiteClient) {
	b.Helper()
	master := xrand.New(1)
	srv, addr := startServer(b, cfg, master.Split())
	c, err := DialSite(addr, 0, cfg, master.Split())
	if err != nil {
		b.Fatal(err)
	}
	return srv, c
}

func benchItems(n int) []stream.Item {
	rng := xrand.New(7)
	items := make([]stream.Item, n)
	for i := range items {
		items[i] = stream.Item{ID: uint64(i), Weight: rng.Pareto(1.2)}
	}
	return items
}

// BenchmarkTCPObserve measures the unbatched hot path: one frame and
// one flush per update that sends.
func BenchmarkTCPObserve(b *testing.B) {
	srv, c := benchClient(b, core.Config{K: 1, S: 32})
	defer srv.Close()
	defer c.Close()
	items := benchItems(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := range items {
		if err := c.Observe(items[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(c.Sent())/float64(b.N), "msgs/op")
}

// BenchmarkTCPObserveBatch measures the batched hot path: multi-message
// frames, one flush per 512 updates.
func BenchmarkTCPObserveBatch(b *testing.B) {
	srv, c := benchClient(b, core.Config{K: 1, S: 32})
	defer srv.Close()
	defer c.Close()
	items := benchItems(b.N)
	const chunk = 512
	b.ReportAllocs()
	b.ResetTimer()
	for start := 0; start < len(items); start += chunk {
		end := start + chunk
		if end > len(items) {
			end = len(items)
		}
		if err := c.ObserveBatch(items[start:end]); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(c.Sent())/float64(b.N), "msgs/op")
}
