package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func deadline() time.Time { return time.Now().Add(2 * time.Second) }

// startServer spins up a coordinator server on a loopback listener.
func startServer(t testing.TB, cfg core.Config, rng *xrand.RNG) (*CoordinatorServer, string) {
	t.Helper()
	srv, err := NewCoordinatorServer(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	return srv, ln.Addr().String()
}

func TestTCPEndToEndExactness(t *testing.T) {
	cfg := core.Config{K: 4, S: 8}
	rec := core.NewRecorder()
	master := xrand.New(1)
	coordRNG := master.Split()

	srv, addr := startServer(t, cfg, coordRNG)
	defer srv.Close()
	// The server-side coordinator must record early-item keys too.
	srv.DoShard(0, func() { srv.Coord(0).SetRecorder(rec) })

	clients := make([]*SiteClient, cfg.K)
	for i := 0; i < cfg.K; i++ {
		c, err := DialSite(addr, i, cfg, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		c.Site().SetRecorder(rec)
		clients[i] = c
	}

	// Feed concurrently from one goroutine per site.
	const perSite = 2500
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(site int, c *SiteClient) {
			defer wg.Done()
			rng := xrand.New(uint64(100 + site))
			for j := 0; j < perSite; j++ {
				it := stream.Item{
					ID:     uint64(site*perSite + j),
					Weight: rng.Pareto(1.3),
				}
				if err := c.Observe(it); err != nil {
					t.Errorf("site %d observe: %v", site, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()

	// Flush every connection: afterwards all sent messages are processed.
	for _, c := range clients {
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	total := int64(0)
	for _, c := range clients {
		total += c.Sent()
	}
	if got := srv.Processed(); got != total {
		t.Fatalf("server processed %d of %d sent messages", got, total)
	}
	if rec.Len() != cfg.K*perSite {
		t.Fatalf("recorded %d keys, want %d", rec.Len(), cfg.K*perSite)
	}

	// Exactness over TCP: the query is the brute-force top-s of all keys.
	q := srv.Query()
	if len(q) != cfg.S {
		t.Fatalf("query size %d, want %d", len(q), cfg.S)
	}
	want := rec.TopIDs(cfg.S)
	for _, e := range q {
		if !want[e.Item.ID] {
			t.Fatalf("sample item %d is not a top-%d key", e.Item.ID, cfg.S)
		}
	}
	t.Logf("TCP run: %d messages upstream for %d updates, %d broadcast frames",
		total, cfg.K*perSite, srv.BroadcastsSent())

	// Message efficiency should survive the transport (sublinear in n).
	if total > int64(cfg.K*perSite/2) {
		t.Errorf("upstream messages %d not sublinear in %d updates", total, cfg.K*perSite)
	}

	for _, c := range clients {
		if err := c.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}
}

func TestTCPFlushSemantics(t *testing.T) {
	cfg := core.Config{K: 1, S: 2}
	master := xrand.New(7)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()

	c, err := DialSite(addr, 0, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 100; i++ {
		if err := c.Observe(stream.Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if srv.Processed() != c.Sent() {
		t.Fatalf("flush returned but only %d of %d processed", srv.Processed(), c.Sent())
	}
	// Repeated flushes are fine.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPServerClose(t *testing.T) {
	cfg := core.Config{K: 1, S: 1}
	master := xrand.New(9)
	srv, addr := startServer(t, cfg, master.Split())
	c, err := DialSite(addr, 0, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(stream.Item{ID: 1, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// After server close the client's flush must fail, not hang.
	if err := c.Flush(); err == nil {
		t.Error("flush succeeded after server close")
	}
	c.Close()
}

func TestTCPInvalidWeightSurfacesLocally(t *testing.T) {
	cfg := core.Config{K: 1, S: 1}
	master := xrand.New(11)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()
	c, err := DialSite(addr, 0, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Observe(stream.Item{ID: 1, Weight: -5}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestTCPProtocolViolationDropsConn(t *testing.T) {
	cfg := core.Config{K: 1, S: 1}
	master := xrand.New(13)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A garbage frame (wrong payload size) must get the connection
	// dropped by the server.
	if _, err := conn.Write([]byte{5, 0, 0, 0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	conn.SetReadDeadline(deadline())
	if _, err := conn.Read(buf); err == nil {
		t.Error("expected connection drop after protocol violation")
	}
}
