package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"time"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

// IngestBenchOpts configures one coordinator-ingest measurement: a
// sharded server blasted by raw wire-level connections, the workload
// the per-shard locks and the atomic pre-filter exist for. It is
// exported (not test-only) so cmd/wrs-bench can run the same
// measurement and record it in BENCH_ingest.json — the perf trajectory
// of the ingest path across PRs.
type IngestBenchOpts struct {
	Shards     int   // protocol shards hosted by the one server (default 1)
	Conns      int   // concurrent raw site connections (default 8)
	Msgs       int64 // total messages to ingest, split across conns (default 1e6)
	FrameMsgs  int   // messages per frame (default 2048)
	SampleSize int   // per-shard sample size s (default 8)
	Serial     bool  // decode-under-lock baseline (no pre-filter)

	// Live selects the workload. False: every message is a MsgRegular
	// below the warmed drop bound — the pre-filter regime, ~100%
	// dropped outside the locks (the PR 2 benchmark). True: every
	// message is a MsgEarly, which can never be pre-filtered — each one
	// generates a key and updates the shard's sample under that shard's
	// lock, so throughput is bounded by lock-serialized handling and
	// scales with the number of shard locks.
	Live bool

	// QuerierHz > 0 runs a concurrent querier at that rate for the
	// duration of the ingest. LockedSort selects the pre-satellite read
	// path (sort the full sample inside the ingest locks via Do);
	// otherwise the snapshot path (O(s) copy per shard lock, sort
	// outside) is used. Measures how much a query stalls ingest.
	QuerierHz  int
	LockedSort bool

	// TreeDial, when non-nil, routes every bench connection through an
	// aggregation tier (package relay) instead of straight at the
	// server: it receives the server address, builds the tier, and
	// returns a per-connection dial address plus a teardown. Only the
	// Live and Window workloads compose with it — their messages are
	// never relay-filtered, so the full-ingest barrier still holds at
	// the server; the pre-filter (drop) workload would be swallowed at
	// the first relay and is rejected. The transport package cannot
	// import relay (relay builds on transport), hence the hook.
	TreeDial func(serverAddr string) (dialAddr func(conn int) string, teardown func() error, err error)

	// RateHz > 0 paces the offered load: each connection spaces its
	// frame writes (with a per-frame flush, so pacing reaches the wire
	// rather than a bufio buffer) to an aggregate offered rate of
	// RateHz messages per second. While the server keeps up, achieved
	// throughput tracks offered; past saturation the writers fall
	// behind their schedule and achieved flattens at the service rate —
	// the knee the saturation sweep (workload/saturate) looks for.
	// Zero means unpaced: blast as fast as the writers can.
	RateHz float64

	// Window > 0 selects the windowed workload: the server hosts
	// WindowCoordinators of that width and every message is a
	// sequence-stamped MsgWindow candidate (each connection is one
	// site; per-connection stamps advance monotonically, so the
	// coordinator's per-site retention slides a real window). Window
	// messages can never be pre-filtered — like Live, ingest is
	// bounded by lock-serialized handling, but the handler now pays
	// the non-monotone retention update (ordered insert, dominance,
	// expiry) instead of a heap offer.
	Window int
}

func (o *IngestBenchOpts) fill() {
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Conns == 0 {
		o.Conns = 8
	}
	if o.Msgs == 0 {
		o.Msgs = 1 << 20
	}
	if o.FrameMsgs == 0 {
		o.FrameMsgs = 2048
	}
	if o.SampleSize == 0 {
		o.SampleSize = 8
	}
}

// IngestBenchResult is one measurement.
type IngestBenchResult struct {
	Opts       IngestBenchOpts
	Msgs       int64         // messages actually ingested
	Elapsed    time.Duration // wall time, feed start to full-ingest barrier
	Dropped    int64         // pre-filter + coordinator drops
	Queries    int64         // concurrent queries completed
	GOMAXPROCS int
}

// NsPerMsg returns the headline metric.
func (r IngestBenchResult) NsPerMsg() float64 {
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Msgs)
}

// MmsgPerSec returns throughput in millions of messages per second.
func (r IngestBenchResult) MmsgPerSec() float64 {
	return float64(r.Msgs) / r.Elapsed.Seconds() / 1e6
}

// benchConn is a raw wire-level connection used by the harness: it
// bypasses SiteClient so the measurement isolates server-side ingest.
type benchConn struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

func dialBench(addr string) (*benchConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &benchConn{conn: conn, bw: bufio.NewWriterSize(conn, 64*1024), br: bufio.NewReaderSize(conn, 64*1024)}, nil
}

// send writes one frame into the buffered writer (flushed by sync, or
// explicitly via bw.Flush).
func (b *benchConn) send(payload []byte) error {
	return wire.WriteFrame(b.bw, payload)
}

// sync round-trips a ping, skipping broadcast frames queued ahead of
// the pong; when it returns the server has processed everything this
// connection sent.
func (b *benchConn) sync() error {
	if err := wire.WriteFrame(b.bw, pingPayload); err != nil {
		return err
	}
	if err := b.bw.Flush(); err != nil {
		return err
	}
	var buf []byte
	for {
		payload, err := wire.ReadFrame(b.br, buf)
		if err != nil {
			return err
		}
		buf = payload
		if len(payload) == 1 && payload[0] == pongPayload[0] {
			return nil
		}
	}
}

func (b *benchConn) close() { b.conn.Close() }

// stampFrame rewrites every window message of a frame buffer in place:
// sequence stamps advance from pos for site `site` of k (one per
// message; the next position is returned), and each key is replaced by
// a stamp-derived pseudo-random draw so the coordinator's retention
// stays at its realistic O(s·log(width/s)) size — repeating a fixed key
// cycle would pile up never-dominated maximal keys and benchmark an
// adversarial retention instead. The field offsets are the wire
// package's own layout constants, so the patch cannot drift from the
// codec.
func stampFrame(buf []byte, tagged bool, pos, site, k int) int {
	off := 0
	if tagged {
		off = wire.ShardHeaderSize
	}
	for ; off+wire.MessageSize <= len(buf); off += wire.MessageSize {
		stamp := uint64(core.WindowStamp(pos, site, k))
		key := 1 + float64(xrand.SplitMix64(&stamp)>>11)*0x1p-53*1e6
		binary.LittleEndian.PutUint64(buf[off+wire.AuxOffset:], math.Float64bits(key))
		binary.LittleEndian.PutUint32(buf[off+wire.LevelOffset:], uint32(int32(core.WindowStamp(pos, site, k))))
		pos++
	}
	return pos
}

// RunIngestBench measures coordinator ingest throughput for one
// configuration. GOMAXPROCS is whatever the caller set.
func RunIngestBench(o IngestBenchOpts) (IngestBenchResult, error) {
	o.fill()
	cfg := core.Config{K: o.Conns, S: o.SampleSize}
	if o.Live {
		// Isolate lock-serialized handling: no epoch broadcasts (the
		// writer queues would otherwise fill with downstream traffic the
		// raw connections never read mid-run).
		cfg.DisableEpochs = true
	}
	master := xrand.New(1)
	protos := make([]Coordinator, o.Shards)
	for p := range protos {
		if o.Window > 0 {
			protos[p] = core.NewWindowCoordinator(cfg, o.Window, master.Split())
		} else {
			protos[p] = core.NewCoordinator(cfg, master.Split())
		}
	}
	srv, err := NewShardedCoordinatorServer(cfg, protos)
	if err != nil {
		return IngestBenchResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return IngestBenchResult{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	srv.SetSerialIngest(o.Serial)

	dialAddr := func(int) string { return addr }
	if o.TreeDial != nil {
		if !o.Live && o.Window == 0 {
			return IngestBenchResult{}, fmt.Errorf("transport: TreeDial requires the Live or Window workload (the drop workload is swallowed at the first relay)")
		}
		da, teardown, err := o.TreeDial(addr)
		if err != nil {
			return IngestBenchResult{}, err
		}
		defer teardown()
		dialAddr = da
	}

	tagged := o.Shards > 1
	if !o.Live && o.Window == 0 {
		// Warm every shard's drop bound to ~1e12 so the regular-message
		// workload below is entirely pre-filterable.
		warm, err := dialBench(addr)
		if err != nil {
			return IngestBenchResult{}, err
		}
		for p := 0; p < o.Shards; p++ {
			var payload []byte
			if tagged {
				payload = wire.AppendShardHeader(payload, p)
			}
			for i := 0; i < o.SampleSize; i++ {
				payload = wire.AppendMessage(payload, core.Message{
					Kind: core.MsgRegular,
					Item: stream.Item{ID: uint64(i), Weight: 1},
					Key:  1e12 + float64(i),
				})
			}
			if err := wire.WriteFrame(warm.bw, payload); err != nil {
				warm.close()
				return IngestBenchResult{}, err
			}
		}
		if err := warm.sync(); err != nil {
			warm.close()
			return IngestBenchResult{}, err
		}
		warm.close()
	}
	warmed := srv.Processed()

	// Pre-encode one frame per shard; connections cycle through the
	// shards frame by frame, so every shard sees Msgs/Shards messages.
	// The windowed workload re-stamps each frame's sequence numbers per
	// connection before sending (stampFrame), so per-site positions
	// advance monotonically and the coordinator slides a real window.
	frames := make([][]byte, o.Shards)
	for p := range frames {
		var payload []byte
		if tagged {
			payload = wire.AppendShardHeader(payload, p)
		}
		for i := 0; i < o.FrameMsgs; i++ {
			m := core.Message{Item: stream.Item{ID: uint64(i), Weight: 1}}
			switch {
			case o.Window > 0:
				m.Kind = core.MsgWindow
				m.Key = 1 + float64(i%97)
			case o.Live:
				m.Kind = core.MsgEarly
			default:
				m.Kind = core.MsgRegular
				m.Key = 1 + float64(i%97)
			}
			payload = wire.AppendMessage(payload, m)
		}
		frames[p] = payload
	}

	conns := make([]*benchConn, o.Conns)
	for i := range conns {
		if conns[i], err = dialBench(dialAddr(i)); err != nil {
			for _, c := range conns[:i] {
				c.close()
			}
			return IngestBenchResult{}, err
		}
	}
	defer func() {
		for _, c := range conns {
			c.close()
		}
	}()

	framesPerConn := int(o.Msgs/int64(o.Conns)) / o.FrameMsgs
	if framesPerConn < 1 {
		framesPerConn = 1
	}
	total := int64(framesPerConn) * int64(o.FrameMsgs) * int64(o.Conns)

	var queries int64
	querierDone := make(chan struct{})
	var querierStopped sync.WaitGroup
	if o.QuerierHz > 0 {
		querierStopped.Add(1)
		go func() {
			defer querierStopped.Done()
			tick := time.NewTicker(time.Second / time.Duration(o.QuerierHz))
			defer tick.Stop()
			for {
				select {
				case <-querierDone:
					return
				case <-tick.C:
					if o.LockedSort {
						// Pre-satellite read path: the full sort+copy runs
						// inside the ingest locks.
						srv.Do(func() {
							for p := 0; p < o.Shards; p++ {
								srv.Coord(p).Query()
							}
						})
					} else {
						srv.Query()
					}
					queries++
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, o.Conns)
	for ci, bc := range conns {
		wg.Add(1)
		go func(ci int, bc *benchConn) {
			defer wg.Done()
			var buf []byte
			pos := make([]int, o.Shards) // per-shard sub-stream clock (window workload)
			var interval time.Duration
			if o.RateHz > 0 {
				perConnHz := o.RateHz / float64(o.Conns)
				interval = time.Duration(float64(o.FrameMsgs) / perConnHz * float64(time.Second))
			}
			for f := 0; f < framesPerConn; f++ {
				if interval > 0 {
					// Absolute schedule, not sleep-per-frame: a connection
					// that falls behind does not stretch the offered rate,
					// it just stops sleeping — achieved then measures the
					// service rate.
					if d := time.Until(start.Add(time.Duration(f) * interval)); d > 0 {
						time.Sleep(d)
					}
				}
				p := (ci + f) % o.Shards
				payload := frames[p]
				if o.Window > 0 {
					buf = append(buf[:0], payload...)
					pos[p] = stampFrame(buf, tagged, pos[p], ci, o.Conns)
					payload = buf
				}
				if err := wire.WriteFrame(bc.bw, payload); err != nil {
					errs <- err
					return
				}
				if interval > 0 {
					if err := bc.bw.Flush(); err != nil {
						errs <- err
						return
					}
				}
			}
			// Barrier: the server has consumed everything this connection
			// sent when the pong returns, so the measurement covers full
			// ingest, not just socket writes.
			errs <- bc.sync()
		}(ci, bc)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if o.QuerierHz > 0 {
		close(querierDone)
		querierStopped.Wait()
	}
	for i := 0; i < o.Conns; i++ {
		if err := <-errs; err != nil {
			return IngestBenchResult{}, err
		}
	}
	if got := srv.Processed() - warmed; got != total {
		return IngestBenchResult{}, fmt.Errorf("transport: ingest bench processed %d of %d messages", got, total)
	}
	return IngestBenchResult{
		Opts:       o,
		Msgs:       total,
		Elapsed:    elapsed,
		Dropped:    srv.PreFiltered() + srv.Stats().DroppedRegular,
		Queries:    queries,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}, nil
}
