package transport

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

// IngestBenchOpts configures one coordinator-ingest measurement: a
// sharded server blasted by raw wire-level connections, the workload
// the per-shard locks and the atomic pre-filter exist for. It is
// exported (not test-only) so cmd/wrs-bench can run the same
// measurement and record it in BENCH_ingest.json — the perf trajectory
// of the ingest path across PRs.
type IngestBenchOpts struct {
	Shards     int   // protocol shards hosted by the one server (default 1)
	Conns      int   // concurrent raw site connections (default 8)
	Msgs       int64 // total messages to ingest, split across conns (default 1e6)
	FrameMsgs  int   // messages per frame (default 2048)
	SampleSize int   // per-shard sample size s (default 8)
	Serial     bool  // decode-under-lock baseline (no pre-filter)

	// Live selects the workload. False: every message is a MsgRegular
	// below the warmed drop bound — the pre-filter regime, ~100%
	// dropped outside the locks (the PR 2 benchmark). True: every
	// message is a MsgEarly, which can never be pre-filtered — each one
	// generates a key and updates the shard's sample under that shard's
	// lock, so throughput is bounded by lock-serialized handling and
	// scales with the number of shard locks.
	Live bool

	// QuerierHz > 0 runs a concurrent querier at that rate for the
	// duration of the ingest. LockedSort selects the pre-satellite read
	// path (sort the full sample inside the ingest locks via Do);
	// otherwise the snapshot path (O(s) copy per shard lock, sort
	// outside) is used. Measures how much a query stalls ingest.
	QuerierHz  int
	LockedSort bool
}

func (o *IngestBenchOpts) fill() {
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Conns == 0 {
		o.Conns = 8
	}
	if o.Msgs == 0 {
		o.Msgs = 1 << 20
	}
	if o.FrameMsgs == 0 {
		o.FrameMsgs = 2048
	}
	if o.SampleSize == 0 {
		o.SampleSize = 8
	}
}

// IngestBenchResult is one measurement.
type IngestBenchResult struct {
	Opts       IngestBenchOpts
	Msgs       int64         // messages actually ingested
	Elapsed    time.Duration // wall time, feed start to full-ingest barrier
	Dropped    int64         // pre-filter + coordinator drops
	Queries    int64         // concurrent queries completed
	GOMAXPROCS int
}

// NsPerMsg returns the headline metric.
func (r IngestBenchResult) NsPerMsg() float64 {
	return float64(r.Elapsed.Nanoseconds()) / float64(r.Msgs)
}

// MmsgPerSec returns throughput in millions of messages per second.
func (r IngestBenchResult) MmsgPerSec() float64 {
	return float64(r.Msgs) / r.Elapsed.Seconds() / 1e6
}

// benchConn is a raw wire-level connection used by the harness: it
// bypasses SiteClient so the measurement isolates server-side ingest.
type benchConn struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

func dialBench(addr string) (*benchConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &benchConn{conn: conn, bw: bufio.NewWriterSize(conn, 64*1024), br: bufio.NewReaderSize(conn, 64*1024)}, nil
}

// send writes one frame into the buffered writer (flushed by sync, or
// explicitly via bw.Flush).
func (b *benchConn) send(payload []byte) error {
	return wire.WriteFrame(b.bw, payload)
}

// sync round-trips a ping, skipping broadcast frames queued ahead of
// the pong; when it returns the server has processed everything this
// connection sent.
func (b *benchConn) sync() error {
	if err := wire.WriteFrame(b.bw, pingPayload); err != nil {
		return err
	}
	if err := b.bw.Flush(); err != nil {
		return err
	}
	var buf []byte
	for {
		payload, err := wire.ReadFrame(b.br, buf)
		if err != nil {
			return err
		}
		buf = payload
		if len(payload) == 1 && payload[0] == pongPayload[0] {
			return nil
		}
	}
}

func (b *benchConn) close() { b.conn.Close() }

// RunIngestBench measures coordinator ingest throughput for one
// configuration. GOMAXPROCS is whatever the caller set.
func RunIngestBench(o IngestBenchOpts) (IngestBenchResult, error) {
	o.fill()
	cfg := core.Config{K: o.Conns, S: o.SampleSize}
	if o.Live {
		// Isolate lock-serialized handling: no epoch broadcasts (the
		// writer queues would otherwise fill with downstream traffic the
		// raw connections never read mid-run).
		cfg.DisableEpochs = true
	}
	master := xrand.New(1)
	protos := make([]Coordinator, o.Shards)
	for p := range protos {
		protos[p] = core.NewCoordinator(cfg, master.Split())
	}
	srv, err := NewShardedCoordinatorServer(cfg, protos)
	if err != nil {
		return IngestBenchResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return IngestBenchResult{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	srv.SetSerialIngest(o.Serial)

	tagged := o.Shards > 1
	if !o.Live {
		// Warm every shard's drop bound to ~1e12 so the regular-message
		// workload below is entirely pre-filterable.
		warm, err := dialBench(addr)
		if err != nil {
			return IngestBenchResult{}, err
		}
		for p := 0; p < o.Shards; p++ {
			var payload []byte
			if tagged {
				payload = wire.AppendShardHeader(payload, p)
			}
			for i := 0; i < o.SampleSize; i++ {
				payload = wire.AppendMessage(payload, core.Message{
					Kind: core.MsgRegular,
					Item: stream.Item{ID: uint64(i), Weight: 1},
					Key:  1e12 + float64(i),
				})
			}
			if err := wire.WriteFrame(warm.bw, payload); err != nil {
				warm.close()
				return IngestBenchResult{}, err
			}
		}
		if err := warm.sync(); err != nil {
			warm.close()
			return IngestBenchResult{}, err
		}
		warm.close()
	}
	warmed := srv.Processed()

	// Pre-encode one frame per shard; connections cycle through the
	// shards frame by frame, so every shard sees Msgs/Shards messages.
	frames := make([][]byte, o.Shards)
	for p := range frames {
		var payload []byte
		if tagged {
			payload = wire.AppendShardHeader(payload, p)
		}
		for i := 0; i < o.FrameMsgs; i++ {
			m := core.Message{Item: stream.Item{ID: uint64(i), Weight: 1}}
			if o.Live {
				m.Kind = core.MsgEarly
			} else {
				m.Kind = core.MsgRegular
				m.Key = 1 + float64(i%97)
			}
			payload = wire.AppendMessage(payload, m)
		}
		frames[p] = payload
	}

	conns := make([]*benchConn, o.Conns)
	for i := range conns {
		if conns[i], err = dialBench(addr); err != nil {
			for _, c := range conns[:i] {
				c.close()
			}
			return IngestBenchResult{}, err
		}
	}
	defer func() {
		for _, c := range conns {
			c.close()
		}
	}()

	framesPerConn := int(o.Msgs/int64(o.Conns)) / o.FrameMsgs
	if framesPerConn < 1 {
		framesPerConn = 1
	}
	total := int64(framesPerConn) * int64(o.FrameMsgs) * int64(o.Conns)

	var queries int64
	querierDone := make(chan struct{})
	var querierStopped sync.WaitGroup
	if o.QuerierHz > 0 {
		querierStopped.Add(1)
		go func() {
			defer querierStopped.Done()
			tick := time.NewTicker(time.Second / time.Duration(o.QuerierHz))
			defer tick.Stop()
			for {
				select {
				case <-querierDone:
					return
				case <-tick.C:
					if o.LockedSort {
						// Pre-satellite read path: the full sort+copy runs
						// inside the ingest locks.
						srv.Do(func() {
							for p := 0; p < o.Shards; p++ {
								srv.Coord(p).Query()
							}
						})
					} else {
						srv.Query()
					}
					queries++
				}
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, o.Conns)
	for ci, bc := range conns {
		wg.Add(1)
		go func(ci int, bc *benchConn) {
			defer wg.Done()
			for f := 0; f < framesPerConn; f++ {
				if err := wire.WriteFrame(bc.bw, frames[(ci+f)%o.Shards]); err != nil {
					errs <- err
					return
				}
			}
			// Barrier: the server has consumed everything this connection
			// sent when the pong returns, so the measurement covers full
			// ingest, not just socket writes.
			errs <- bc.sync()
		}(ci, bc)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if o.QuerierHz > 0 {
		close(querierDone)
		querierStopped.Wait()
	}
	for i := 0; i < o.Conns; i++ {
		if err := <-errs; err != nil {
			return IngestBenchResult{}, err
		}
	}
	if got := srv.Processed() - warmed; got != total {
		return IngestBenchResult{}, fmt.Errorf("transport: ingest bench processed %d of %d messages", got, total)
	}
	return IngestBenchResult{
		Opts:       o,
		Msgs:       total,
		Elapsed:    elapsed,
		Dropped:    srv.PreFiltered() + srv.Stats().DroppedRegular,
		Queries:    queries,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}, nil
}
