package transport

import (
	"testing"

	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/window"
	"wrs/internal/xrand"
)

// TestWindowedOverShardedTCP runs the windowed application's machines
// over a real sharded TCP cluster: sequence-stamped frames (MsgWindow
// candidates and MsgClock advances) multiplex with shard tags on k
// connections, the server hosts P windowed coordinators behind
// per-shard mutexes, and after a flush the merged query must equal the
// brute-force union-window oracle exactly. This is the first hosted
// coordinator whose state is non-monotone (candidates expire), so it
// exercises that the transport makes no monotonicity assumption about
// the apps it carries — and that the MsgRegular pre-filter never
// touches window traffic.
func TestWindowedOverShardedTCP(t *testing.T) {
	const k, s, width, shards, n = 2, 4, 20, 3, 1200
	cfg := core.Config{K: k, S: s}
	master := xrand.New(77)
	mirror := xrand.New(77)

	protos := make([]Coordinator, shards)
	machines := make([][]netsim.Site[core.Message], shards)
	coords := make([]*core.WindowCoordinator, shards)
	oracleRNG := make([][]*xrand.RNG, shards)
	for p := 0; p < shards; p++ {
		coords[p] = core.NewWindowCoordinator(cfg, width, master.Split())
		mirror.Split()
		protos[p] = coords[p]
		machines[p] = make([]netsim.Site[core.Message], k)
		oracleRNG[p] = make([]*xrand.RNG, k)
		for i := 0; i < k; i++ {
			machines[p][i] = core.NewWindowSite(i, cfg, width, master.Split())
			oracleRNG[p][i] = mirror.Split()
		}
	}

	cluster, err := NewShardedCluster(cfg, protos, machines, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	subs := make([][][]window.Entry, shards)
	for p := range subs {
		subs[p] = make([][]window.Entry, k)
	}
	wrng := xrand.New(5)
	var batches [][]stream.Item = make([][]stream.Item, k)
	for i := 0; i < n; i++ {
		it := stream.Item{ID: uint64(i)*7919 + 3, Weight: 0.2 + 30*wrng.Float64()}
		site := i % k
		p := fabric.ShardOf(it.ID, shards)
		key := oracleRNG[p][site].ExpKey(it.Weight)
		subs[p][site] = append(subs[p][site], window.Entry{Pos: len(subs[p][site]), Key: key, Item: it})
		batches[site] = append(batches[site], it)
	}
	for site, items := range batches {
		// Mixed batch sizes so frames split mid-window repeatedly.
		for off := 0; off < len(items); off += 113 {
			end := off + 113
			if end > len(items) {
				end = len(items)
			}
			if err := cluster.FeedBatch(site, items[off:end]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cluster.Flush(); err != nil {
		t.Fatal(err)
	}

	var got []window.Entry
	var cov core.WindowCoverage
	for p := 0; p < shards; p++ {
		p := p
		cluster.DoShard(p, func() {
			var c core.WindowCoverage
			got, c = coords[p].SnapshotWindow(got)
			cov.Add(c)
		})
	}
	got = window.TopEntries(got, s)

	var want []window.Entry
	for p := range subs {
		for site := range subs[p] {
			sub := subs[p][site]
			lo := len(sub) - width
			if lo < 0 {
				lo = 0
			}
			want = append(want, sub[lo:]...)
		}
	}
	want = window.TopEntries(want, s)

	if len(got) != len(want) {
		t.Fatalf("sample sizes: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Item != want[i].Item {
			t.Fatalf("sample[%d] diverged over TCP: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if cov.Retained == 0 || cov.Observed == 0 {
		t.Errorf("empty coverage after %d updates: %+v", n, cov)
	}
	if pf := cluster.Server().PreFiltered(); pf != 0 {
		t.Errorf("pre-filter dropped %d windowed messages; it must only touch MsgRegular", pf)
	}
	var st core.WindowCoordStats
	for _, c := range coords {
		st.WindowMsgs += c.Stats.WindowMsgs
		st.ClockMsgs += c.Stats.ClockMsgs
		st.BadStamps += c.Stats.BadStamps
	}
	if st.BadStamps != 0 {
		t.Errorf("%d bad stamps over the wire", st.BadStamps)
	}
	up := cluster.Stats().Upstream
	if up != st.WindowMsgs+st.ClockMsgs {
		t.Errorf("sent %d messages, coordinators handled %d candidates + %d clocks",
			up, st.WindowMsgs, st.ClockMsgs)
	}
	if up >= n {
		t.Errorf("upstream %d for n=%d: windowed filtering lost over TCP", up, n)
	}
}
