package transport

import (
	"bufio"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

// fakeCoordinator reads every frame off its side of a pipe into a
// channel so a test can assert exactly what a SiteClient put on the
// wire, and replies (pong, broadcasts) only when told to. net.Pipe is
// synchronous, which makes the observed frame order deterministic.
type fakeCoordinator struct {
	conn   net.Conn
	frames chan []byte
}

func newFakeCoordinator(conn net.Conn) *fakeCoordinator {
	f := &fakeCoordinator{conn: conn, frames: make(chan []byte, 1024)}
	go func() {
		defer close(f.frames)
		br := bufio.NewReader(conn)
		var buf []byte
		for {
			payload, err := wire.ReadFrame(br, buf)
			if err != nil {
				return
			}
			buf = payload
			f.frames <- append([]byte(nil), payload...)
		}
	}()
	return f
}

// nextFrames reads frames until it has seen n protocol messages or a
// ping, returning (messagesSeen, sawPing).
func (f *fakeCoordinator) nextFrames(t *testing.T, n int) (int, bool) {
	t.Helper()
	msgs := 0
	for msgs < n {
		select {
		case p, ok := <-f.frames:
			if !ok {
				t.Fatal("fake coordinator connection closed early")
			}
			if len(p) == 1 && p[0] == pingPayload[0] {
				return msgs, true
			}
			if len(p)%wire.MessageSize != 0 {
				t.Fatalf("unexpected frame payload length %d", len(p))
			}
			msgs += len(p) / wire.MessageSize
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out after %d messages waiting for %d", msgs, n)
		}
	}
	return msgs, false
}

func (f *fakeCoordinator) pong(t *testing.T) {
	t.Helper()
	if err := wire.WriteFrame(f.conn, pongPayload); err != nil {
		t.Fatal(err)
	}
}

func (f *fakeCoordinator) broadcast(t *testing.T, m core.Message) {
	t.Helper()
	if err := wire.WriteMessage(f.conn, m); err != nil {
		t.Fatal(err)
	}
}

// TestStalenessWindowForcesSync proves the bounded-staleness invariant
// directly: with window W and a coordinator that never responds, the
// client sends exactly W messages, then a ping, then nothing until the
// pong arrives — it can never run more than W messages ahead of the
// control plane.
func TestStalenessWindowForcesSync(t *testing.T) {
	const W = 8
	cfg := core.Config{K: 1, S: 1}
	cli, srv := net.Pipe()
	fake := newFakeCoordinator(srv)
	c, err := NewSiteClient(cli, 0, cfg, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetStalenessWindow(W)

	// Weight-1 items always send: level 0 never saturates because the
	// fake coordinator never broadcasts.
	const total = 2*W + 5
	feedErr := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if err := c.Observe(stream.Item{ID: uint64(i), Weight: 1}); err != nil {
				feedErr <- err
				return
			}
		}
		feedErr <- nil
	}()

	msgs, ping := fake.nextFrames(t, W+1)
	if !ping || msgs != W {
		t.Fatalf("first sync: saw %d messages before ping=%v, want exactly %d then ping", msgs, ping, W)
	}
	// While the pong is withheld the client must stay silent.
	select {
	case p := <-fake.frames:
		t.Fatalf("client sent a %d-byte frame past the staleness window", len(p))
	case <-time.After(100 * time.Millisecond):
	}
	fake.pong(t)

	msgs, ping = fake.nextFrames(t, W+1)
	if !ping || msgs != W {
		t.Fatalf("second sync: saw %d messages before ping=%v, want exactly %d then ping", msgs, ping, W)
	}
	fake.pong(t)

	// The tail (5 < W messages) flows without another round-trip.
	msgs, ping = fake.nextFrames(t, total-2*W)
	if ping || msgs != total-2*W {
		t.Fatalf("tail: got %d messages, ping=%v", msgs, ping)
	}
	if err := <-feedErr; err != nil {
		t.Fatal(err)
	}
	if got := c.FlowPings(); got != 2 {
		t.Errorf("flow pings = %d, want 2", got)
	}
	if got := c.Sent(); got != total {
		t.Errorf("Sent() = %d, want %d", got, total)
	}
}

// TestBroadcastDripDoesNotExtendWindow proves the hard half of the
// invariant: a steady drip of (possibly arbitrarily old) broadcasts
// must not postpone the forced round-trip. Socket buffering lets a
// site pipeline thousands of messages ahead of the coordinator while
// still receiving stale broadcasts — if applying one reset the window,
// flow control would never engage and the O(n) regression would
// reappear at full throughput (observed at GOMAXPROCS=2 before this
// was pinned).
func TestBroadcastDripDoesNotExtendWindow(t *testing.T) {
	const W = 8
	cfg := core.Config{K: 1, S: 1}
	cli, srv := net.Pipe()
	fake := newFakeCoordinator(srv)
	c, err := NewSiteClient(cli, 0, cfg, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetStalenessWindow(W)

	applied := func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.site.Applied
	}

	feedErr := make(chan error, 1)
	go func() {
		for i := 0; i < 2*W+1; i++ {
			if err := c.Observe(stream.Item{ID: uint64(i), Weight: 1}); err != nil {
				feedErr <- err
				return
			}
		}
		feedErr <- nil
	}()

	// Drip a broadcast after every message (a saturated level the
	// weight-1 items don't occupy, so the site keeps sending) and
	// confirm the client still pings after exactly W messages.
	for round := 0; round < 2; round++ {
		got := 0
		for {
			msgs, ping := fake.nextFrames(t, 1)
			if ping {
				break
			}
			got += msgs
			fake.broadcast(t, core.Message{Kind: core.MsgLevelSaturated, Level: 7})
		}
		if got != W {
			t.Fatalf("round %d: %d messages before forced sync, want exactly %d", round, got, W)
		}
		fake.pong(t)
	}
	if msgs, ping := fake.nextFrames(t, 1); ping || msgs != 1 {
		t.Fatalf("tail: got %d messages, ping=%v", msgs, ping)
	}
	if err := <-feedErr; err != nil {
		t.Fatal(err)
	}
	if got := c.FlowPings(); got != 2 {
		t.Errorf("flow pings = %d, want 2", got)
	}
	// The dripped broadcasts were in fact applied along the way — they
	// just must not masquerade as control-plane freshness.
	if applied() == 0 {
		t.Error("no broadcast was applied during the feed")
	}
}

// TestStalePongDrainedBeforeSync pins the stale-pong hazard: if a sync
// errors after writing its ping but before consuming the pong, the pong
// can arrive later and sit in the buffer. A subsequent sync must not
// return on that stale pong — it would report an earlier processing
// horizon than its own ping proves, silently voiding the staleness
// bound. syncCoordinator therefore drains buffered pongs before writing
// a new ping.
func TestStalePongDrainedBeforeSync(t *testing.T) {
	cfg := core.Config{K: 1, S: 1}
	cli, srv := net.Pipe()
	fake := newFakeCoordinator(srv)
	c, err := NewSiteClient(cli, 0, cfg, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Simulate the aftermath of an errored sync: a pong arrives with no
	// one waiting and is buffered by the read loop.
	fake.pong(t)
	for start := time.Now(); len(c.pong) == 0; {
		if time.Since(start) > 2*time.Second {
			t.Fatal("stale pong never reached the client buffer")
		}
		time.Sleep(time.Millisecond)
	}

	flushDone := make(chan error, 1)
	go func() { flushDone <- c.Flush() }()

	// The coordinator sees the new ping and — like a real server whose
	// FIFO outbox already held a broadcast — answers with the broadcast
	// first, then the pong. A sync that returned on the stale pong would
	// miss the broadcast.
	if msgs, ping := fake.nextFrames(t, 1); !ping || msgs != 0 {
		t.Fatalf("expected a ping, saw %d messages (ping=%v)", msgs, ping)
	}
	fake.broadcast(t, core.Message{Kind: core.MsgEpochUpdate, Threshold: 5})
	fake.pong(t)
	if err := <-flushDone; err != nil {
		t.Fatal(err)
	}
	if got := c.Site().Threshold(); got != 5 {
		t.Errorf("sync returned at a stale horizon: threshold %g, want 5", got)
	}
}

// TestTCPSublinearUnderSingleCPU pins the regression this package
// existed to fix: under GOMAXPROCS=1 the hot Observe loops starve the
// reader/writer goroutines, so without flow control no broadcast is
// applied before the feed ends and every update costs a message
// (O(n), vs the paper's O(k log W / log k + s log sW)). The staleness
// window forces periodic round-trips whose blocking hands the CPU to
// the control plane, keeping the message count sublinear on any
// scheduler.
func TestTCPSublinearUnderSingleCPU(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))

	cfg := core.Config{K: 4, S: 8}
	master := xrand.New(42)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()

	clients := make([]*SiteClient, cfg.K)
	for i := range clients {
		c, err := DialSite(addr, i, cfg, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}

	const perSite = 2500
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(site int, c *SiteClient) {
			defer wg.Done()
			rng := xrand.New(uint64(500 + site))
			for j := 0; j < perSite; j++ {
				it := stream.Item{ID: uint64(site*perSite + j), Weight: rng.Pareto(1.3)}
				if err := c.Observe(it); err != nil {
					t.Errorf("site %d: %v", site, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for _, c := range clients {
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	n := int64(cfg.K * perSite)
	var sent, pings int64
	for _, c := range clients {
		sent += c.Sent()
		pings += c.FlowPings()
	}
	if got := srv.Processed(); got != sent {
		t.Fatalf("processed %d of %d sent messages", got, sent)
	}
	if sent > n/2 {
		t.Errorf("upstream messages %d not sublinear in %d updates under GOMAXPROCS=1", sent, n)
	}
	// The round-trip overhead is provably bounded: each flow ping needs
	// a full window W of sends since the last reset.
	w := int64(cfg.StalenessWindow())
	if pings > sent/w+int64(cfg.K) {
		t.Errorf("%d flow pings for %d sends exceeds the sent/W=%d bound", pings, sent, sent/w)
	}
	t.Logf("GOMAXPROCS=1: %d messages for %d updates, %d flow pings (W=%d)", sent, n, pings, w)
	for _, c := range clients {
		c.Close()
	}
}

// TestLateJoinerReceivesSnapshot pins the registration race: DialSite
// returns at TCP-handshake time, which can be long before the server's
// accept loop registers the connection — every broadcast issued in
// between used to be lost to that site forever (observed in the wild
// as one site sending all n of its updates with threshold 0). The
// coordinator must replay its control-plane state to a newly
// registered connection.
func TestLateJoinerReceivesSnapshot(t *testing.T) {
	cfg := core.Config{K: 2, S: 4}
	master := xrand.New(17)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()

	// Drive the coordinator well past epoch 0 with the first site.
	first, err := DialSite(addr, 0, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	rng := xrand.New(3)
	for i := 0; i < 2000; i++ {
		if err := first.Observe(stream.Item{ID: uint64(i), Weight: rng.Pareto(1.3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := first.Flush(); err != nil {
		t.Fatal(err)
	}
	var th float64
	var sat int
	srv.DoShard(0, func() {
		th = srv.Coord(0).CurrentThreshold()
		sat = len(srv.Coord(0).SaturatedLevels())
	})
	if th == 0 || sat == 0 {
		t.Fatalf("warmup did not advance the control plane: threshold=%g, %d saturated levels", th, sat)
	}

	// A second site joins now. Its very first sync must deliver the
	// snapshot: threshold and saturations it never saw broadcast.
	late, err := DialSite(addr, 1, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if err := late.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := late.Site().Threshold(); got != th {
		t.Errorf("late joiner threshold %g, want snapshot %g", got, th)
	}
	if got := late.Site().Applied; got < int64(sat)+1 {
		t.Errorf("late joiner applied %d broadcasts, want at least %d", got, sat+1)
	}
}

// TestTCPObserveBatchExactness runs the end-to-end exactness check
// through the batched hot path: multi-message frames, one flush per
// batch, identical sample and accounting semantics.
func TestTCPObserveBatchExactness(t *testing.T) {
	cfg := core.Config{K: 4, S: 8}
	rec := core.NewRecorder()
	master := xrand.New(7)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()
	srv.DoShard(0, func() { srv.Coord(0).SetRecorder(rec) })

	clients := make([]*SiteClient, cfg.K)
	for i := range clients {
		c, err := DialSite(addr, i, cfg, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		c.Site().SetRecorder(rec)
		clients[i] = c
	}

	const perSite = 2500
	const chunk = 97 // deliberately not a divisor of perSite
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(site int, c *SiteClient) {
			defer wg.Done()
			rng := xrand.New(uint64(900 + site))
			items := make([]stream.Item, 0, chunk)
			for j := 0; j < perSite; j++ {
				items = append(items, stream.Item{
					ID:     uint64(site*perSite + j),
					Weight: rng.Pareto(1.3),
				})
				if len(items) == chunk || j == perSite-1 {
					if err := c.ObserveBatch(items); err != nil {
						t.Errorf("site %d: %v", site, err)
						return
					}
					items = items[:0]
				}
			}
		}(i, c)
	}
	wg.Wait()

	var total int64
	for _, c := range clients {
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		total += c.Sent()
	}
	if got := srv.Processed(); got != total {
		t.Fatalf("server processed %d of %d sent messages", got, total)
	}
	if rec.Len() != cfg.K*perSite {
		t.Fatalf("recorded %d keys, want %d", rec.Len(), cfg.K*perSite)
	}
	q := srv.Query()
	if len(q) != cfg.S {
		t.Fatalf("query size %d, want %d", len(q), cfg.S)
	}
	want := rec.TopIDs(cfg.S)
	for _, e := range q {
		if !want[e.Item.ID] {
			t.Fatalf("sample item %d is not a top-%d key", e.Item.ID, cfg.S)
		}
	}
	if total > int64(cfg.K*perSite/2) {
		t.Errorf("upstream messages %d not sublinear in %d updates", total, cfg.K*perSite)
	}
	for _, c := range clients {
		c.Close()
	}
}
