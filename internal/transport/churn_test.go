package transport_test

import (
	"net"
	"testing"
	"time"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/transport"
	"wrs/internal/workload"
	"wrs/internal/xrand"
)

// TestMultiSiteChurnSeeded drives the real TCP transport through the
// same declarative churn schedule the scenario engine uses: a seeded
// workload.Spec paces the stream on its virtual timestamps, one site
// crashes mid-run, a replacement dials in through the late-joiner
// snapshot path, and a second site crashes later. The first crash is
// clean (wire quiesced, then severed), the second abrupt (frames still
// in flight are lost, as in a real process crash), so the books are a
// bracket: processed must cover everything except at most the abrupt
// victim's unsynced tail, and never exceed total successful sends. The
// joined site must be a first-class participant: giants planted
// through it own the final sample.
func TestMultiSiteChurnSeeded(t *testing.T) {
	cfg := core.Config{K: 4, S: 8}
	master := xrand.New(2026)
	srv, err := transport.NewCoordinatorServer(cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	addr := ln.Addr().String()

	dial := func(i int) *transport.SiteClient {
		c, err := transport.DialSite(addr, i, cfg, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	clients := make([]*transport.SiteClient, cfg.K)
	var all []*transport.SiteClient // every client ever created, for the books
	for i := range clients {
		clients[i] = dial(i)
		all = append(all, clients[i])
	}

	// The workload and fault schedule are the scenario engine's own
	// types: the same Spec generates the same updates there, and the
	// same Schedule vocabulary describes the churn.
	spec := workload.Spec{
		N: 3000, K: cfg.K,
		Weights:  stream.ParetoWeights(1.2),
		Assign:   workload.ZipfSites(cfg.K, 1.0),
		Arrivals: workload.Constant{Hz: 3000},
	}
	sched := workload.Schedule{
		{At: 0.25, Kind: workload.SiteCrash, Site: 1},
		{At: 0.55, Kind: workload.SiteJoin, Site: 1},
		{At: 0.80, Kind: workload.SiteCrash, Site: 3},
	}
	if err := sched.Validate(workload.ScheduleContext{K: cfg.K}); err != nil {
		t.Fatal(err)
	}

	src := spec.Open(master.Split())
	alive := make([]bool, cfg.K)
	for i := range alive {
		alive[i] = true
	}
	nextFault := 0
	dropped := 0
	crashes := 0
	var maxLost int64 // upper bound on frames the abrupt crash may lose
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		for nextFault < len(sched) && sched[nextFault].At <= u.At {
			f := sched[nextFault]
			nextFault++
			switch f.Kind {
			case workload.SiteCrash:
				c := clients[f.Site]
				if crashes == 0 {
					// Clean crash: round-trip a sync first so every
					// frame this client sent is known processed, then
					// sever. Keeps the accounting below exact for the
					// join phase.
					if err := c.Flush(); err != nil {
						t.Fatalf("quiesce site %d: %v", f.Site, err)
					}
				} else {
					// Abrupt crash mid-flight: everything since this
					// client's last completed sync may be lost on the
					// wire. Nothing was synced, so bound by its whole
					// send count.
					maxLost += c.Sent()
				}
				crashes++
				if err := c.Abort(); err != nil {
					t.Fatalf("abort site %d: %v", f.Site, err)
				}
				alive[f.Site] = false
			case workload.SiteJoin:
				clients[f.Site] = dial(f.Site)
				all = append(all, clients[f.Site])
				alive[f.Site] = true
			}
		}
		if !alive[u.Site] {
			dropped++
			continue
		}
		if err := clients[u.Site].Observe(u.Item); err != nil {
			t.Fatalf("observe site %d: %v", u.Site, err)
		}
	}
	if nextFault != len(sched) {
		t.Fatalf("only %d/%d faults fired — schedule missed the stream", nextFault, len(sched))
	}
	if dropped == 0 {
		t.Fatal("no arrivals were dropped by crashed sites — churn did not bite")
	}

	// Giants through the re-joined site: if the join path left the
	// replacement half-registered, these never make it.
	for i := 0; i < cfg.S; i++ {
		it := stream.Item{ID: 1<<40 + uint64(i), Weight: 1e15}
		if err := clients[1].Observe(it); err != nil {
			t.Fatalf("observe giant on joined site: %v", err)
		}
	}
	for i, c := range clients {
		if alive[i] {
			if err := c.Flush(); err != nil {
				t.Fatalf("flush site %d: %v", i, err)
			}
		}
	}

	// Accounting bracket: the coordinator processed everything any
	// client successfully sent, except possibly the abrupt victim's
	// in-flight tail, and never more. The crashed connections' teardown
	// races the assertions, so poll until the floor is reached.
	var sentTotal int64
	for _, c := range all {
		sentTotal += c.Sent()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Processed() < sentTotal-maxLost && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Processed(); got < sentTotal-maxLost || got > sentTotal {
		t.Errorf("processed %d outside [%d, %d] (total sends %d, abrupt-crash loss bound %d)",
			got, sentTotal-maxLost, sentTotal, sentTotal, maxLost)
	}

	q := srv.Query()
	if len(q) != cfg.S {
		t.Fatalf("query size %d, want %d", len(q), cfg.S)
	}
	giants := 0
	for i, e := range q {
		if i > 0 && q[i].Key > q[i-1].Key {
			t.Fatal("sample order corrupted under churn")
		}
		if e.Item.ID >= 1<<40 {
			giants++
		}
	}
	if giants != cfg.S {
		t.Errorf("only %d/%d planted giants in the final sample — the joined site's traffic was lost", giants, cfg.S)
	}

	for i, c := range clients {
		if alive[i] {
			c.Close()
		}
	}
}
