// Package transport runs the weighted-SWOR protocol over real network
// connections (TCP or anything net.Listener/net.Conn shaped), using the
// binary framing of package wire. It is the deployment-shaped runtime:
// one CoordinatorServer, k SiteClients, FIFO per connection, broadcasts
// fanned out through per-connection writer queues so a slow site never
// blocks the coordinator.
//
// Asynchrony has the same consequences as in the goroutine runtime (see
// DESIGN.md): stale thresholds and late early-messages cost extra
// messages, never correctness.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

// Control frame payloads (distinct from 29-byte protocol messages).
var (
	pingPayload = []byte{200}
	pongPayload = []byte{201}
)

// CoordinatorServer hosts the coordinator side of the protocol.
type CoordinatorServer struct {
	cfg core.Config

	mu    sync.Mutex // guards coord and conns
	coord *core.Coordinator
	conns map[net.Conn]*netsim.Mailbox[[]byte]

	ln        net.Listener
	wg        sync.WaitGroup
	closed    atomic.Bool
	processed atomic.Int64
	bcasts    atomic.Int64
}

// NewCoordinatorServer builds a server for the given configuration.
func NewCoordinatorServer(cfg core.Config, rng *xrand.RNG) (*CoordinatorServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CoordinatorServer{
		cfg:   cfg,
		coord: core.NewCoordinator(cfg, rng),
		conns: make(map[net.Conn]*netsim.Mailbox[[]byte]),
	}, nil
}

// Serve accepts site connections on ln until Close is called. It blocks;
// run it in a goroutine.
func (s *CoordinatorServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		// The Add and the closed check happen under the same mutex
		// section Close uses, so either Close sees this handler's
		// registration or this loop sees the closed flag — and wg.Add is
		// always ordered before wg.Wait.
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *CoordinatorServer) handleConn(conn net.Conn) {
	defer s.wg.Done()
	outbox := netsim.NewMailbox[[]byte]()
	s.mu.Lock()
	s.conns[conn] = outbox
	s.mu.Unlock()
	// Close may have snapshotted the connection map before this
	// registration; re-checking after registering guarantees that every
	// interleaving either lets Close see the connection or lets this
	// goroutine see the closed flag — otherwise Close's wg.Wait() could
	// hang on a connection nobody tears down.
	if s.closed.Load() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		outbox.Close()
		conn.Close()
		return
	}

	// Writer: drains the outbox so broadcasts never block the reader.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for {
			payload, ok := outbox.Get()
			if !ok {
				return
			}
			if err := wire.WriteFrame(conn, payload); err != nil {
				return
			}
		}
	}()

	var buf []byte
	for {
		payload, err := wire.ReadFrame(conn, buf)
		if err != nil {
			break
		}
		buf = payload
		if len(payload) == 1 && payload[0] == pingPayload[0] {
			outbox.Put(append([]byte(nil), pongPayload...))
			continue
		}
		m, err := wire.ParseMessage(payload)
		if err != nil {
			break // protocol violation: drop the connection
		}
		s.mu.Lock()
		s.coord.HandleMessage(m, s.broadcastLocked)
		s.mu.Unlock()
		s.processed.Add(1)
	}

	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	outbox.Close()
	<-writerDone
	conn.Close()
}

// broadcastLocked fans a coordinator announcement to every connected
// site. Caller holds s.mu.
func (s *CoordinatorServer) broadcastLocked(m core.Message) {
	payload := wire.AppendMessage(nil, m)
	for _, box := range s.conns {
		box.Put(payload)
		s.bcasts.Add(1)
	}
}

// Query returns the current weighted sample (safe for concurrent use).
func (s *CoordinatorServer) Query() []core.SampleEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord.Query()
}

// Processed returns the number of protocol messages handled so far.
func (s *CoordinatorServer) Processed() int64 { return s.processed.Load() }

// BroadcastsSent returns the number of per-site broadcast frames sent.
func (s *CoordinatorServer) BroadcastsSent() int64 { return s.bcasts.Load() }

// Stats returns the coordinator's protocol statistics.
func (s *CoordinatorServer) Stats() core.CoordStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord.Stats
}

// Close stops accepting and tears down all connections.
func (s *CoordinatorServer) Close() error {
	s.mu.Lock()
	s.closed.Store(true)
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// SiteClient is the site side of the protocol over one connection.
// Observe is safe for use from one goroutine; the broadcast reader runs
// in the background and synchronizes with Observe internally.
type SiteClient struct {
	mu   sync.Mutex // guards site state and writes
	site *core.Site
	conn net.Conn

	sent       atomic.Int64
	pong       chan struct{}
	readerDone chan struct{}
	readerErr  error
}

// DialSite connects a site state machine to the coordinator at addr.
func DialSite(addr string, id int, cfg core.Config, rng *xrand.RNG) (*SiteClient, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &SiteClient{
		site:       core.NewSite(id, cfg, rng),
		conn:       conn,
		pong:       make(chan struct{}, 4),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

func (c *SiteClient) readLoop() {
	defer close(c.readerDone)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(c.conn, buf)
		if err != nil {
			c.readerErr = err
			return
		}
		buf = payload
		if len(payload) == 1 && payload[0] == pongPayload[0] {
			select {
			case c.pong <- struct{}{}:
			default:
			}
			continue
		}
		m, err := wire.ParseMessage(payload)
		if err != nil {
			c.readerErr = err
			return
		}
		c.mu.Lock()
		c.site.HandleBroadcast(m)
		c.mu.Unlock()
	}
}

// Observe processes one local arrival, sending any resulting protocol
// messages over the connection.
func (c *SiteClient) Observe(it stream.Item) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sendErr error
	err := c.site.Observe(it, func(m core.Message) {
		if sendErr == nil {
			sendErr = wire.WriteMessage(c.conn, m)
			c.sent.Add(1)
		}
	})
	if err != nil {
		return err
	}
	return sendErr
}

// Flush round-trips a ping so that every message this client sent has
// been processed by the coordinator when it returns.
func (c *SiteClient) Flush() error {
	c.mu.Lock()
	err := wire.WriteFrame(c.conn, pingPayload)
	c.mu.Unlock()
	if err != nil {
		return err
	}
	select {
	case <-c.pong:
		return nil
	case <-c.readerDone:
		return fmt.Errorf("transport: connection closed during flush: %w", errOr(c.readerErr))
	}
}

// Sent returns the number of protocol messages this client has sent.
func (c *SiteClient) Sent() int64 { return c.sent.Load() }

// Site returns the underlying state machine (diagnostics; synchronize
// externally if the client is still live).
func (c *SiteClient) Site() *core.Site { return c.site }

// Close tears down the connection.
func (c *SiteClient) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

func errOr(err error) error {
	if err == nil {
		return errors.New("EOF")
	}
	return err
}
