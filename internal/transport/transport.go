// Package transport runs the weighted-SWOR protocol over real network
// connections (TCP or anything net.Listener/net.Conn shaped), using the
// binary framing of package wire. It is the deployment-shaped runtime:
// one CoordinatorServer, k SiteClients, FIFO per connection, broadcasts
// fanned out through per-connection writer queues so a slow site never
// blocks the coordinator.
//
// Asynchrony has the same consequences as in the goroutine runtime (see
// DESIGN.md): stale thresholds and late early-messages cost extra
// messages, never correctness. What asynchrony must NOT be allowed to do
// is starve the control plane indefinitely — a site that keeps sending
// while broadcasts lag the whole feed degenerates to the naive O(n)
// protocol. SiteClient therefore enforces a bounded-staleness window W
// (core.Config.StalenessWindow): after every W upstream messages it
// round-trips a ping before sending more, which fully synchronizes its
// view of the control plane. The round-trip costs 2 messages per W
// sent, so the Theorem 3 message bound survives any scheduler or
// network timing.
//
// Sharding: a server can host P independent protocol shards (see
// package fabric and DESIGN.md §9), each with its own coordinator state
// machine and its own ingest mutex. One connection per site carries all
// shards — upstream and downstream frames are shard-tagged (package
// wire) — so the connection count stays k, not P×k, while coordinator
// ingest parallelizes across P locks. With P = 1 the wire traffic is
// byte-identical to the pre-sharding transport (no tags).
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

// Control frame payloads (distinct from 29-byte protocol messages).
var (
	pingPayload = []byte{wire.PingByte}
	pongPayload = []byte{wire.PongByte}
)

// Coordinator is the coordinator-side protocol a server can host: the
// plain sampler coordinator, or an application wrapper around it (the
// L1 tracker's DupCoordinator). Core exposes the inner sampler state
// machine for queries and the control-plane join snapshot.
type Coordinator interface {
	HandleMessage(m core.Message, bcast func(core.Message))
	Core() *core.Coordinator
}

// prefilterable is implemented by coordinators that publish a key bound
// below which MsgRegular messages may be discarded before reaching
// HandleMessage (see core.Coordinator.DropBelow). Coordinators that do
// not implement it are never pre-filtered.
type prefilterable interface {
	DropBelow() float64
}

// shardState is one hosted protocol shard: its state machine, the
// mutex serializing its ingest, and the atomically-published drop
// bound its pre-filtering runs against.
type shardState struct {
	mu       sync.Mutex
	proto    Coordinator
	coord    *core.Coordinator
	dropper  prefilterable // nil: never pre-filter
	dropBits atomic.Uint64 // Float64bits of the published drop bound
}

// CoordinatorServer hosts the coordinator side of one or more protocol
// shards.
//
// Ingest path: connection handlers decode incoming frames and
// pre-filter below-threshold MsgRegular messages *outside* the shard
// mutex, against the drop bound the shard's coordinator last published
// through an atomic. The bound is monotone nondecreasing, so a stale
// read only filters less, never wrongly: any key at or below a
// published bound has s released dominators and would be dropped by
// HandleMessage on arrival anyway. Only the surviving messages take the
// shard's mutex, so ingest of high-rate traffic scales with cores
// instead of serializing on one lock — across connections via the
// pre-filter, and across shards via the per-shard mutexes
// (BenchmarkTCPParallelIngest).
//
// Lock order: a shard mutex may be held while taking connsMu (the
// broadcast fan-out path); connsMu is never held while taking a shard
// mutex.
type CoordinatorServer struct {
	cfg    core.Config
	shards []*shardState

	connsMu sync.Mutex // guards conns and ln
	conns   map[net.Conn]*netsim.Mailbox[[]byte]
	ln      net.Listener

	prefilter atomic.Int64 // messages dropped before a shard mutex
	serial    atomic.Bool  // pre-refactor decode-under-lock path (benchmarks)

	wg         sync.WaitGroup
	closed     atomic.Bool
	processed  atomic.Int64
	bcasts     atomic.Int64
	bcastWords atomic.Int64
}

// NewCoordinatorServer builds a server hosting a fresh single-shard
// sampler coordinator for the given configuration.
func NewCoordinatorServer(cfg core.Config, rng *xrand.RNG) (*CoordinatorServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewCoordinatorServerFor(cfg, core.NewCoordinator(cfg, rng))
}

// NewCoordinatorServerFor builds a single-shard server hosting the
// given coordinator protocol — the plain sampler, or an application
// wrapper around it.
func NewCoordinatorServerFor(cfg core.Config, proto Coordinator) (*CoordinatorServer, error) {
	return NewShardedCoordinatorServer(cfg, []Coordinator{proto})
}

// NewShardedCoordinatorServer builds a server hosting one protocol
// shard per element of protos, each with its own ingest mutex. Every
// shard must share cfg (the shards are instances of the same protocol
// over a partition of the stream).
func NewShardedCoordinatorServer(cfg core.Config, protos []Coordinator) (*CoordinatorServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fabric.Validate(len(protos)); err != nil {
		return nil, err
	}
	s := &CoordinatorServer{
		cfg:    cfg,
		shards: make([]*shardState, len(protos)),
		conns:  make(map[net.Conn]*netsim.Mailbox[[]byte]),
	}
	for p, proto := range protos {
		sh := &shardState{proto: proto, coord: proto.Core()}
		sh.dropper, _ = proto.(prefilterable)
		s.shards[p] = sh
	}
	return s, nil
}

// Shards returns the number of hosted protocol shards.
func (s *CoordinatorServer) Shards() int { return len(s.shards) }

// sharded reports whether frames must carry shard tags.
func (s *CoordinatorServer) sharded() bool { return len(s.shards) > 1 }

// Serve accepts site connections on ln until Close is called. It blocks;
// run it in a goroutine.
func (s *CoordinatorServer) Serve(ln net.Listener) error {
	s.connsMu.Lock()
	s.ln = ln
	s.connsMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		// The Add and the closed check happen under the same mutex
		// section Close uses, so either Close sees this handler's
		// registration or this loop sees the closed flag — and wg.Add is
		// always ordered before wg.Wait.
		s.connsMu.Lock()
		if s.closed.Load() {
			s.connsMu.Unlock()
			conn.Close()
			continue
		}
		s.wg.Add(1)
		s.connsMu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *CoordinatorServer) handleConn(conn net.Conn) {
	defer s.wg.Done()
	outbox := netsim.NewMailbox[[]byte]()
	s.connsMu.Lock()
	s.conns[conn] = outbox
	s.connsMu.Unlock()
	// Catch-up snapshot: a client starts observing as soon as the TCP
	// handshake completes, which can be long before this registration —
	// every broadcast issued in between would otherwise be lost to this
	// connection forever (broadcasts are not replayed), leaving the
	// site filtering with threshold 0 and unsaturated levels for the
	// whole run: the O(n) regression. The snapshot is taken per shard
	// under that shard's ingest mutex, *after* the registration above: a
	// broadcast racing the snapshot is then delivered through the outbox
	// too, possibly ahead of the snapshot that already reflects it —
	// harmless, because broadcasts are monotone (saturation flags only
	// set, thresholds only rise), so replay and reordering never move a
	// site's view backwards.
	for p := range s.shards {
		sh := s.shards[p]
		sh.mu.Lock()
		snap := s.joinSnapshot(p)
		sh.mu.Unlock()
		if len(snap) > 0 {
			outbox.Put(snap)
			// The snapshot frame replays several broadcast messages; count
			// each so Downstream and DownWords stay message-consistent.
			body := len(snap)
			if s.sharded() {
				body -= wire.ShardHeaderSize
			}
			s.bcasts.Add(int64(body / wire.MessageSize))
		}
	}
	// Close may have snapshotted the connection map before this
	// registration; re-checking after registering guarantees that every
	// interleaving either lets Close see the connection or lets this
	// goroutine see the closed flag — otherwise Close's wg.Wait() could
	// hang on a connection nobody tears down.
	if s.closed.Load() {
		s.connsMu.Lock()
		delete(s.conns, conn)
		s.connsMu.Unlock()
		outbox.Close()
		conn.Close()
		return
	}

	// Writer: drains the outbox so broadcasts never block the reader.
	// Flush policy: coalesce every queued frame into one buffered write,
	// flush before blocking on an empty outbox — no frame is ever held
	// back, and a burst of broadcasts costs one syscall, not one each.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(conn)
		for {
			payload, ok := outbox.Get()
			if !ok {
				return
			}
			for {
				if err := wire.WriteFrame(bw, payload); err != nil {
					return
				}
				payload, ok = outbox.TryGet()
				if !ok {
					break
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}()

	br := bufio.NewReaderSize(conn, 64*1024)
	var buf []byte
	var kept []core.Message // surviving messages of the current frame
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			break
		}
		buf = payload
		if len(payload) == 1 && payload[0] == pingPayload[0] {
			outbox.Put(append([]byte(nil), pongPayload...))
			continue
		}
		// Resolve the target shard: a shard-tagged frame names it, a
		// plain batch frame is shard 0 — but only on an unsharded
		// server. On a sharded one an untagged frame means the client
		// does not know the shard layout; defaulting it to shard 0
		// would silently sample the same ID domain in two shards and
		// corrupt the exact merge, so it is rejected like a bad index.
		// Every violation drops the connection, never a panic.
		shard, msgs := 0, payload
		var perr error
		if wire.IsShardFrame(payload) {
			shard, msgs, perr = wire.ParseShardFrame(payload)
			if perr == nil && shard >= len(s.shards) {
				perr = fmt.Errorf("transport: frame for shard %d, server hosts %d", shard, len(s.shards))
			}
		} else if s.sharded() {
			perr = fmt.Errorf("transport: untagged batch frame on a %d-shard server", len(s.shards))
		}
		if perr != nil {
			break
		}
		sh := s.shards[shard]
		var n, dropped int64
		if s.serial.Load() {
			// Pre-refactor ingest: decode and handle everything under
			// the shard mutex. Kept for ablation and as the benchmark
			// baseline (BenchmarkTCPParallelIngest).
			bcast := s.broadcaster(shard)
			sh.mu.Lock()
			perr = wire.ForEachMessage(msgs, func(m core.Message) {
				sh.proto.HandleMessage(m, bcast)
				n++
			})
			s.publishDropBound(sh)
			sh.mu.Unlock()
		} else {
			// Decode and pre-filter outside the lock; only survivors
			// take it. A dropped message counts as processed — the
			// coordinator would have dropped it on arrival too — so the
			// Processed() == Σ Sent() flush invariant is unchanged.
			drop := math.Float64frombits(sh.dropBits.Load())
			kept = kept[:0]
			perr = wire.ForEachMessage(msgs, func(m core.Message) {
				n++
				if m.Kind == core.MsgRegular && drop > 0 && m.Key <= drop {
					dropped++
					return
				}
				kept = append(kept, m)
			})
			if len(kept) > 0 {
				bcast := s.broadcaster(shard)
				sh.mu.Lock()
				for _, m := range kept {
					sh.proto.HandleMessage(m, bcast)
				}
				s.publishDropBound(sh)
				sh.mu.Unlock()
			}
		}
		s.processed.Add(n)
		if dropped > 0 {
			s.prefilter.Add(dropped)
		}
		if perr != nil {
			break // protocol violation: drop the connection
		}
	}

	s.connsMu.Lock()
	delete(s.conns, conn)
	s.connsMu.Unlock()
	outbox.Close()
	<-writerDone
	conn.Close()
}

// publishDropBound stores the shard coordinator's current safe-to-drop
// key bound in the atomic the connection handlers pre-filter against.
// Caller holds the shard mutex. The bound is monotone nondecreasing, so
// handlers reading a stale value only filter less.
func (s *CoordinatorServer) publishDropBound(sh *shardState) {
	if sh.dropper == nil {
		return
	}
	sh.dropBits.Store(math.Float64bits(sh.dropper.DropBelow()))
}

// joinSnapshot encodes a shard coordinator's current control-plane
// state — saturated levels and the epoch threshold — as one batch
// payload (shard-tagged on a sharded server) for a newly registered
// connection. Caller holds the shard mutex.
func (s *CoordinatorServer) joinSnapshot(p int) []byte {
	sh := s.shards[p]
	var snap []byte
	appendMsg := func(m core.Message) {
		if len(snap) == 0 && s.sharded() {
			snap = wire.AppendShardHeader(snap, p)
		}
		snap = wire.AppendMessage(snap, m)
		s.bcastWords.Add(int64(m.Words()))
	}
	for _, j := range sh.coord.SaturatedLevels() {
		appendMsg(core.Message{Kind: core.MsgLevelSaturated, Level: j})
	}
	if th := sh.coord.CurrentThreshold(); th > 0 {
		appendMsg(core.Message{Kind: core.MsgEpochUpdate, Threshold: th})
	}
	return snap
}

// broadcaster returns the bcast callback for shard p: it fans a
// coordinator announcement to every connected site, shard-tagged on a
// sharded server. Called while holding the shard mutex; takes connsMu
// for the fan-out (the one sanctioned shard-mutex → connsMu edge).
func (s *CoordinatorServer) broadcaster(p int) func(core.Message) {
	return func(m core.Message) {
		var payload []byte
		if s.sharded() {
			payload = wire.AppendShardHeader(payload, p)
		}
		payload = wire.AppendMessage(payload, m)
		words := int64(m.Words())
		s.connsMu.Lock()
		for _, box := range s.conns {
			box.Put(payload)
			s.bcasts.Add(1)
			s.bcastWords.Add(words)
		}
		s.connsMu.Unlock()
	}
}

// Query returns the current weighted sample merged across all shards
// (safe for concurrent use). Each shard is snapshotted under its own
// ingest mutex — an O(s) copy — and the sort runs outside every lock,
// so a query never stalls ingest for the sort (DESIGN.md §9).
func (s *CoordinatorServer) Query() []core.SampleEntry {
	entries := make([]core.SampleEntry, 0, 2*s.cfg.S*len(s.shards))
	for _, sh := range s.shards {
		sh.mu.Lock()
		entries = sh.coord.Snapshot(entries)
		sh.mu.Unlock()
	}
	return core.TopSample(entries, s.cfg.S)
}

// Coord returns shard p's inner sampler coordinator. Synchronize reads
// with DoShard.
func (s *CoordinatorServer) Coord(p int) *core.Coordinator { return s.shards[p].coord }

// DoShard runs fn while holding shard p's ingest mutex, so fn can read
// that shard's coordinator (or wrapper) state without racing message
// processing.
func (s *CoordinatorServer) DoShard(p int, fn func()) {
	sh := s.shards[p]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn()
	s.publishDropBound(sh)
}

// Do runs fn while holding every shard's ingest mutex (ascending, so
// concurrent Do calls cannot deadlock), giving fn a simultaneous view
// of all shards. Prefer DoShard for per-shard reads — Do stalls ingest
// on every shard for the duration of fn.
func (s *CoordinatorServer) Do(fn func()) {
	for _, sh := range s.shards {
		sh.mu.Lock() //wrslint:allow lockorder multi-shard acquisition in ascending index order; concurrent Do calls cannot deadlock
	}
	fn()
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.publishDropBound(s.shards[i])
		s.shards[i].mu.Unlock()
	}
}

// Processed returns the number of protocol messages handled so far,
// including messages dropped by the pre-filter.
func (s *CoordinatorServer) Processed() int64 { return s.processed.Load() }

// PreFiltered returns how many MsgRegular messages the connection
// handlers dropped before taking a shard mutex.
func (s *CoordinatorServer) PreFiltered() int64 { return s.prefilter.Load() }

// SetSerialIngest switches to the pre-refactor ingest path that decodes
// and handles every message under the target shard's mutex (no
// pre-filter). For ablation and benchmarks only.
func (s *CoordinatorServer) SetSerialIngest(on bool) { s.serial.Store(on) }

// BroadcastsSent returns the number of per-site broadcast messages
// sent (join-snapshot replays included, counted per message).
func (s *CoordinatorServer) BroadcastsSent() int64 { return s.bcasts.Load() }

// BroadcastWords returns the machine words of broadcast traffic sent,
// counting each per-site delivery separately (paper accounting).
func (s *CoordinatorServer) BroadcastWords() int64 { return s.bcastWords.Load() }

// Stats returns the coordinator's protocol statistics, merged across
// shards (counts are additive over independent instances).
func (s *CoordinatorServer) Stats() core.CoordStats {
	sts := make([]core.CoordStats, len(s.shards))
	for p, sh := range s.shards {
		sh.mu.Lock()
		sts[p] = sh.coord.Stats
		sh.mu.Unlock()
	}
	return fabric.MergeCoordStats(sts)
}

// Close stops accepting and tears down all connections.
func (s *CoordinatorServer) Close() error {
	s.connsMu.Lock()
	s.closed.Store(true)
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connsMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// shardMsg is a decoded downstream announcement tagged with its shard.
type shardMsg struct {
	shard int
	m     core.Message
}

// SiteClient is the site side of the protocol over one connection. On a
// sharded deployment one client drives all P of its site's shard state
// machines, routing each arrival by item ID (fabric.ShardOf) and
// multiplexing every shard's traffic over the single connection with
// shard-tagged frames.
//
// Data plane: Observe/ObserveBatch encode messages into per-shard
// multi-message frames through a buffered writer, flushing once per
// call — the 2-syscalls-per-29-byte-message hot path becomes one
// syscall per call (per ~2000 messages in the batch path). Sent()
// counts only messages whose bytes reached the connection: a failed
// write or flush never inflates the count past what the coordinator can
// process.
//
// Control plane: the background readLoop parses incoming frames into a
// pending-broadcast queue without touching the site state machines, and
// Observe drains that queue before filtering each item — a broadcast is
// applied at the first Observe after it arrives, never blocked behind a
// network write or a busy data path.
//
// Flow control: the client round-trips a ping every W-th upstream
// message (W = the staleness window); per-connection FIFO guarantees
// that when the pong arrives, the coordinator has processed everything
// this client sent — on every shard; the shards share the FIFO — and
// every broadcast that processing triggered has been applied locally.
// This caps how far a site can outrun the control plane at W messages
// total across its shards on any scheduler or network — socket
// buffering included — at a cost of exactly 2 extra messages per W
// sent (see DESIGN.md).
//
// Observe, ObserveBatch, and Flush must be called from one goroutine;
// the broadcast reader runs in the background and synchronizes with
// them internally.
type SiteClient struct {
	mu       sync.Mutex // guards the site state machines
	machines []netsim.Site[core.Message]
	site     *core.Site // machines[0] when it is a plain sampler site, else nil
	conn     net.Conn
	tagged   bool // len(machines) > 1: frames carry shard tags

	wmu            sync.Mutex // guards bw and the staleness/accounting counters
	bw             *bufio.Writer
	unflushed      int64 // messages written but not yet flushed (not in sent)
	unflushedWords int64
	stale          int64 // messages sent since the last completed round-trip
	window         int64 // bounded-staleness window W

	sent      atomic.Int64
	sentWords atomic.Int64
	flowPings atomic.Int64

	frames     [][]byte // per-shard outgoing batch frames under construction
	frameWords []int64
	framedMsgs int   // messages across all frames under construction
	curShard   int   // shard the in-flight Observe emits into
	emitErr    error // first write error surfaced by a mid-observe frame split
	emit       func(m core.Message)
	one        [1]stream.Item // scratch so Observe can reuse the batch path

	pendMu     sync.Mutex
	pending    []shardMsg
	hasPending atomic.Bool

	pong       chan struct{}
	readerDone chan struct{}
	readerErr  error
}

// DialSite connects a plain sampler site to the coordinator at addr.
func DialSite(addr string, id int, cfg core.Config, rng *xrand.RNG) (*SiteClient, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewSiteClient(conn, id, cfg, rng)
}

// DialSiteFor connects an arbitrary site state machine — e.g. the L1
// tracker's duplicating site — to the coordinator at addr.
func DialSiteFor(addr string, machine netsim.Site[core.Message], cfg core.Config) (*SiteClient, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewSiteClientFor(conn, machine, cfg)
}

// NewSiteClient runs a plain sampler site over an established
// connection (DialSite with the dialing factored out — tests and custom
// transports hand in pipes or pre-configured conns).
func NewSiteClient(conn net.Conn, id int, cfg core.Config, rng *xrand.RNG) (*SiteClient, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewSiteClientFor(conn, core.NewSite(id, cfg, rng), cfg)
}

// NewSiteClientFor runs an arbitrary site state machine over an
// established connection. The machine's messages are framed and
// batched like a plain sampler site's; cfg supplies the staleness
// window. The window is enforced between updates (a sync cannot be
// interleaved into a running state-machine callback), so for a machine
// that emits m messages per update the staleness bound is W + m - 1
// rather than W — still a constant for any fixed configuration (the L1
// duplicating site has m <= l).
func NewSiteClientFor(conn net.Conn, machine netsim.Site[core.Message], cfg core.Config) (*SiteClient, error) {
	return NewShardedSiteClient(conn, []netsim.Site[core.Message]{machine}, cfg)
}

// NewShardedSiteClient runs one site's P shard state machines over a
// single established connection, one machine per protocol shard hosted
// by the server. Arrivals are routed across machines by item ID
// (fabric.ShardOf) and all traffic is multiplexed over the connection
// with shard-tagged frames; with one machine the frames are untagged
// and the client behaves exactly like the unsharded transport.
func NewShardedSiteClient(conn net.Conn, machines []netsim.Site[core.Message], cfg core.Config) (*SiteClient, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fabric.Validate(len(machines)); err != nil {
		return nil, err
	}
	c := &SiteClient{
		machines:   machines,
		conn:       conn,
		tagged:     len(machines) > 1,
		bw:         bufio.NewWriterSize(conn, 32*1024),
		window:     int64(cfg.StalenessWindow()),
		frames:     make([][]byte, len(machines)),
		frameWords: make([]int64, len(machines)),
		pong:       make(chan struct{}, 4),
		readerDone: make(chan struct{}),
	}
	if len(machines) == 1 {
		c.site, _ = machines[0].(*core.Site)
	}
	// One state-machine callback can emit arbitrarily many messages (the
	// L1 duplicating site sends up to l copies per update), so the frame
	// under construction is shipped whenever the next message would
	// overflow it; the write error, if any, surfaces after the callback.
	c.emit = func(m core.Message) {
		p := c.curShard
		if len(c.frames[p])+wire.MessageSize > wire.MaxFrameSize {
			if err := c.writeFrame(p); err != nil && c.emitErr == nil {
				c.emitErr = err
			}
		}
		if len(c.frames[p]) == 0 && c.tagged {
			c.frames[p] = wire.AppendShardHeader(c.frames[p], p)
		}
		c.frames[p] = wire.AppendMessage(c.frames[p], m)
		c.frameWords[p] += int64(m.Words())
		c.framedMsgs++
	}
	go c.readLoop()
	return c, nil
}

// SetStalenessWindow overrides the flow-control window W (default
// cfg.StalenessWindow()). Must be called before the first Observe.
func (c *SiteClient) SetStalenessWindow(w int) {
	if w < 1 {
		w = 1
	}
	c.wmu.Lock()
	c.window = int64(w)
	c.wmu.Unlock()
}

// readLoop parses incoming frames. Broadcasts go into the pending queue
// for Observe to drain; it never takes the site mutex or blocks on the
// data path, so a delivered broadcast is always one Observe away from
// being applied.
func (c *SiteClient) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReader(c.conn)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			c.readerErr = err
			return
		}
		buf = payload
		if len(payload) == 1 && payload[0] == pongPayload[0] {
			select {
			case c.pong <- struct{}{}:
			default:
			}
			continue
		}
		// Mirror of the server's dispatch: tagged frames name their
		// shard, untagged ones are only valid on an unsharded client —
		// a sharded client receiving untagged broadcasts is talking to
		// a server with a different shard layout, and applying them to
		// shard 0 would leave the other machines filtering at threshold
		// 0 forever (the per-shard O(n) regression).
		shard, msgs := 0, payload
		var perr error
		if wire.IsShardFrame(payload) {
			shard, msgs, perr = wire.ParseShardFrame(payload)
			if perr == nil && shard >= len(c.machines) {
				perr = fmt.Errorf("transport: broadcast for shard %d, client drives %d", shard, len(c.machines))
			}
		} else if c.tagged {
			perr = fmt.Errorf("transport: untagged broadcast frame on a %d-shard client", len(c.machines))
		}
		if perr != nil {
			c.readerErr = perr
			return
		}
		var batch []shardMsg
		if err := wire.ForEachMessage(msgs, func(m core.Message) {
			batch = append(batch, shardMsg{shard: shard, m: m})
		}); err != nil {
			c.readerErr = err
			return
		}
		c.pendMu.Lock()
		c.pending = append(c.pending, batch...)
		c.hasPending.Store(true)
		c.pendMu.Unlock()
	}
}

// drainPending applies every queued broadcast to its shard's site state
// machine. The fast path is one atomic load.
//
// Deliberately NOT a staleness reset: a just-applied broadcast can be
// arbitrarily old — under full pipelining the kernel socket buffers
// let a site run thousands of messages ahead of the coordinator while
// a steady drip of stale broadcasts keeps arriving, which would starve
// the window forever if applying one reset the clock. Only a completed
// round-trip (syncCoordinator) proves the site is current.
func (c *SiteClient) drainPending() bool {
	if !c.hasPending.Load() {
		return false
	}
	c.pendMu.Lock()
	batch := c.pending
	c.pending = nil
	c.hasPending.Store(false)
	c.pendMu.Unlock()
	if len(batch) == 0 {
		return false
	}
	c.mu.Lock()
	for _, sm := range batch {
		c.machines[sm.shard].HandleBroadcast(sm.m)
	}
	c.mu.Unlock()
	return true
}

// needSync reports whether sending the currently framed messages would
// exceed the staleness window.
func (c *SiteClient) needSync() bool {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.stale+int64(c.framedMsgs) >= c.window
}

// writeFrame sends shard p's batch frame under construction. Messages
// count toward stale immediately but reach Sent() only after a
// successful flush; a write error drops the frame without inflating the
// counters.
func (c *SiteClient) writeFrame(p int) error {
	if len(c.frames[p]) == 0 {
		return nil
	}
	body := len(c.frames[p])
	if c.tagged {
		body -= wire.ShardHeaderSize
	}
	n := int64(body / wire.MessageSize)
	c.wmu.Lock()
	//wrslint:allow nolockio wmu is the dedicated writer mutex: it guards bw itself and is never held by the observe/broadcast paths
	err := wire.WriteFrame(c.bw, c.frames[p])
	if err == nil {
		c.unflushed += n
		c.unflushedWords += c.frameWords[p]
		c.stale += n
	}
	c.wmu.Unlock()
	c.frames[p] = c.frames[p][:0]
	c.frameWords[p] = 0
	c.framedMsgs -= int(n)
	return err
}

// writeAllFrames sends every shard's frame under construction.
func (c *SiteClient) writeAllFrames() error {
	for p := range c.frames {
		if err := c.writeFrame(p); err != nil {
			return err
		}
	}
	return nil
}

// flushCommit flushes the buffered writer and, on success, commits the
// unflushed messages to Sent().
func (c *SiteClient) flushCommit() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	//wrslint:allow nolockio wmu is the dedicated writer mutex: the flush is the serialized operation, not contended state
	if err := c.bw.Flush(); err != nil {
		return err
	}
	c.sent.Add(c.unflushed)
	c.sentWords.Add(c.unflushedWords)
	c.unflushed = 0
	c.unflushedWords = 0
	return nil
}

// syncCoordinator flushes everything written, round-trips a ping, and
// applies the broadcasts that arrived before the pong. Per-connection
// FIFO at both ends guarantees that when the pong is received, the
// coordinator has processed every message this client sent — every
// shard's, since they share the connection — and every broadcast those
// messages triggered has been queued ahead of the pong — so after the
// drain the site's view is fully current.
func (c *SiteClient) syncCoordinator() error {
	// Drain stale pongs first. If an earlier sync errored after writing
	// its ping but before consuming the pong, that pong may still arrive
	// and sit in the buffer; returning on it would report an earlier
	// horizon than this ping's, silently voiding the staleness bound.
	for drained := false; !drained; {
		select {
		case <-c.pong:
		default:
			drained = true
		}
	}
	c.wmu.Lock()
	//wrslint:allow nolockio wmu is the dedicated writer mutex: the ping write/flush is the serialized operation itself
	err := wire.WriteFrame(c.bw, pingPayload)
	if err == nil {
		//wrslint:allow nolockio wmu is the dedicated writer mutex: the ping write/flush is the serialized operation itself
		err = c.bw.Flush()
	}
	if err == nil {
		c.sent.Add(c.unflushed)
		c.sentWords.Add(c.unflushedWords)
		c.unflushed = 0
		c.unflushedWords = 0
	}
	c.wmu.Unlock()
	if err != nil {
		return err
	}
	select {
	case <-c.pong:
	case <-c.readerDone:
		return fmt.Errorf("transport: connection closed during sync: %w", errOr(c.readerErr))
	}
	c.drainPending()
	c.wmu.Lock()
	c.stale = 0
	c.wmu.Unlock()
	return nil
}

// Observe processes one local arrival, sending any resulting protocol
// message over the connection (one flush per call).
func (c *SiteClient) Observe(it stream.Item) error {
	c.one[0] = it
	return c.ObserveBatch(c.one[:])
}

// ObserveBatch processes a slice of local arrivals, coalescing the
// resulting messages into per-shard multi-message frames with a single
// flush at the end — the hot path for high-throughput feeds. Pending
// broadcasts are still drained before each item and the staleness
// window is still enforced, so batching trades no control-plane
// freshness.
func (c *SiteClient) ObserveBatch(items []stream.Item) error {
	for i := range items {
		c.drainPending()
		if c.needSync() {
			if err := c.writeAllFrames(); err != nil {
				return err
			}
			c.flowPings.Add(1)
			if err := c.syncCoordinator(); err != nil {
				return err
			}
		}
		p := 0
		if c.tagged {
			p = fabric.ShardOf(items[i].ID, len(c.machines))
		}
		c.curShard = p
		c.mu.Lock()
		err := c.machines[p].Observe(items[i], c.emit)
		c.mu.Unlock()
		if err == nil && c.emitErr != nil {
			err = c.emitErr
		}
		c.emitErr = nil
		if err != nil {
			if werr := c.finishWrites(); werr != nil {
				return errors.Join(err, werr)
			}
			return err
		}
		if len(c.frames[p]) > wire.MaxFrameSize-wire.MessageSize {
			if err := c.writeFrame(p); err != nil {
				return err
			}
		}
	}
	return c.finishWrites()
}

// finishWrites sends every frame under construction and flushes.
func (c *SiteClient) finishWrites() error {
	if err := c.writeAllFrames(); err != nil {
		return err
	}
	return c.flushCommit()
}

// Flush round-trips a ping so that every message this client sent has
// been processed by the coordinator — and every broadcast the
// coordinator issued up to that point has been applied locally — when
// it returns.
func (c *SiteClient) Flush() error {
	return c.syncCoordinator()
}

// Sent returns the number of protocol messages this client has
// successfully written to the connection.
func (c *SiteClient) Sent() int64 { return c.sent.Load() }

// SentWords returns the machine words of protocol traffic this client
// has successfully written (paper accounting; control frames and shard
// tags excluded).
func (c *SiteClient) SentWords() int64 { return c.sentWords.Load() }

// FlowPings returns how many ping round-trips the bounded-staleness
// window forced (excluding explicit Flush calls). It is bounded by
// Sent()/W, the overhead that keeps the message bound scheduler-proof.
func (c *SiteClient) FlowPings() int64 { return c.flowPings.Load() }

// Site returns the underlying plain sampler site, or nil when the
// client drives a custom machine or multiple shard machines
// (diagnostics; synchronize externally if the client is still live).
func (c *SiteClient) Site() *core.Site { return c.site }

// Machine returns the first (shard 0) site state machine the client
// drives (diagnostics; synchronize externally if the client is still
// live).
func (c *SiteClient) Machine() netsim.Site[core.Message] { return c.machines[0] }

// Machines returns every shard state machine the client drives
// (diagnostics; synchronize externally if the client is still live).
func (c *SiteClient) Machines() []netsim.Site[core.Message] { return c.machines }

// Close tears down the connection. Call Flush first for a graceful
// shutdown that guarantees delivery.
func (c *SiteClient) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// Abort severs the connection immediately — no flush, no waiting for
// the read loop — so buffered frames are lost mid-write exactly as in a
// process crash. It is the fault-injection hook for churn tests and the
// chaos harness; everything after Abort behaves as after a peer crash:
// Observe errors out, and Sent never counts the lost frames.
func (c *SiteClient) Abort() error { return c.conn.Close() }

func errOr(err error) error {
	if err == nil {
		return errors.New("EOF")
	}
	return err
}
