package transport

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

// rawConn is a wire-level connection that feeds pre-encoded frames,
// bypassing SiteClient — it models a site with a maximally stale
// threshold blasting keys the coordinator will drop, the workload the
// atomic pre-filter exists for.
type rawConn struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

func dialRaw(tb testing.TB, addr string) *rawConn {
	tb.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		tb.Fatal(err)
	}
	return &rawConn{conn: conn, bw: bufio.NewWriterSize(conn, 64*1024), br: bufio.NewReaderSize(conn, 64*1024)}
}

func (r *rawConn) send(payload []byte) error {
	return wire.WriteFrame(r.bw, payload)
}

// sync round-trips a ping, skipping any broadcast frames (e.g. the join
// snapshot) queued ahead of the pong. When it returns, the server has
// processed everything this connection sent.
func (r *rawConn) sync() error {
	if err := wire.WriteFrame(r.bw, pingPayload); err != nil {
		return err
	}
	if err := r.bw.Flush(); err != nil {
		return err
	}
	var buf []byte
	for {
		payload, err := wire.ReadFrame(r.br, buf)
		if err != nil {
			return err
		}
		buf = payload
		if len(payload) == 1 && payload[0] == pongPayload[0] {
			return nil
		}
	}
}

func (r *rawConn) close() { r.conn.Close() }

// warmCoordinator drives u (and the published drop bound) to ~keyScale
// by sending s regular messages with huge keys through a throwaway
// connection.
func warmCoordinator(tb testing.TB, addr string, s int, keyScale float64) {
	tb.Helper()
	w := dialRaw(tb, addr)
	defer w.close()
	var payload []byte
	for i := 0; i < s; i++ {
		payload = wire.AppendMessage(payload, core.Message{
			Kind: core.MsgRegular,
			Item: stream.Item{ID: uint64(i), Weight: 1},
			Key:  keyScale + float64(i),
		})
	}
	if err := w.send(payload); err != nil {
		tb.Fatal(err)
	}
	if err := w.sync(); err != nil {
		tb.Fatal(err)
	}
}

// TestPrefilterDropsBelowThreshold pins the pre-filter's semantics:
// below-bound regular messages are dropped before the ingest lock,
// counted, and leave the sample untouched — and they still count as
// processed so the flush invariant Processed() == Σ Sent() holds.
func TestPrefilterDropsBelowThreshold(t *testing.T) {
	cfg := core.Config{K: 1, S: 4}
	master := xrand.New(31)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()

	warmCoordinator(t, addr, cfg.S, 1e12)
	before := srv.Query()

	rc := dialRaw(t, addr)
	defer rc.close()
	const n = 500
	var payload []byte
	for i := 0; i < n; i++ {
		payload = wire.AppendMessage(payload, core.Message{
			Kind: core.MsgRegular,
			Item: stream.Item{ID: uint64(1000 + i), Weight: 1},
			Key:  1 + float64(i), // far below u ~ 1e12
		})
	}
	if err := rc.send(payload); err != nil {
		t.Fatal(err)
	}
	if err := rc.sync(); err != nil {
		t.Fatal(err)
	}

	if got := srv.PreFiltered(); got != n {
		t.Errorf("PreFiltered = %d, want %d", got, n)
	}
	if got := srv.Processed(); got != int64(cfg.S+n) {
		t.Errorf("Processed = %d, want %d (pre-filtered messages count as processed)", got, cfg.S+n)
	}
	after := srv.Query()
	if len(after) != len(before) {
		t.Fatalf("sample size changed: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Errorf("sample entry %d changed: %+v -> %+v", i, before[i], after[i])
		}
	}
}

// TestSerialIngestMatchesPrefilter pins that the two ingest paths are
// observably equivalent: same drops (by different counters), same
// sample, same processed count.
func TestSerialIngestMatchesPrefilter(t *testing.T) {
	run := func(serial bool) (int64, int64, []core.SampleEntry) {
		cfg := core.Config{K: 1, S: 4}
		master := xrand.New(47)
		srv, addr := startServer(t, cfg, master.Split())
		defer srv.Close()
		srv.SetSerialIngest(serial)
		warmCoordinator(t, addr, cfg.S, 1e12)
		rc := dialRaw(t, addr)
		defer rc.close()
		var payload []byte
		for i := 0; i < 100; i++ {
			payload = wire.AppendMessage(payload, core.Message{
				Kind: core.MsgRegular,
				Item: stream.Item{ID: uint64(1000 + i), Weight: 1},
				Key:  1 + float64(i),
			})
		}
		if err := rc.send(payload); err != nil {
			t.Fatal(err)
		}
		if err := rc.sync(); err != nil {
			t.Fatal(err)
		}
		return srv.Processed(), srv.PreFiltered() + srv.Stats().DroppedRegular, srv.Query()
	}
	pProc, pDrop, pSample := run(false)
	sProc, sDrop, sSample := run(true)
	if pProc != sProc || pDrop != sDrop {
		t.Errorf("paths diverge: prefilter (processed=%d, dropped=%d) vs serial (processed=%d, dropped=%d)",
			pProc, pDrop, sProc, sDrop)
	}
	if len(pSample) != len(sSample) {
		t.Fatalf("sample sizes diverge: %d vs %d", len(pSample), len(sSample))
	}
	for i := range pSample {
		if pSample[i].Item != sSample[i].Item {
			t.Errorf("sample entry %d diverges: %+v vs %+v", i, pSample[i], sSample[i])
		}
	}
}

// BenchmarkTCPParallelIngest measures coordinator ingest throughput
// with k=8 concurrent site connections blasting below-threshold keys —
// the high-rate steady state where sites outrun the control plane by up
// to the staleness window. The "prefilter" mode is the current ingest
// path (decode + drop outside the lock); "serial" is the pre-refactor
// path that decodes and handles everything under the global mutex, so
// its throughput stays flat as GOMAXPROCS grows while prefilter scales
// with cores. Reported metrics: Mmsg/s (headline) and dropped/msg (the
// measured pre-filter/coordinator drop rate, ~1.0 in this workload).
func BenchmarkTCPParallelIngest(b *testing.B) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"prefilter", false}, {"serial", true}} {
		for _, procs := range []int{1, 2, 4, 8} {
			if procs > runtime.NumCPU() {
				continue
			}
			b.Run(fmt.Sprintf("%s/procs=%d", mode.name, procs), func(b *testing.B) {
				benchParallelIngest(b, mode.serial, procs)
			})
		}
	}
}

func benchParallelIngest(b *testing.B, serial bool, procs int) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	const k = 8
	const frameMsgs = 2048
	cfg := core.Config{K: k, S: 8}
	master := xrand.New(1)
	srv, addr := startServer(b, cfg, master.Split())
	defer srv.Close()
	srv.SetSerialIngest(serial)
	warmCoordinator(b, addr, cfg.S, 1e12)

	conns := make([]*rawConn, k)
	for i := range conns {
		conns[i] = dialRaw(b, addr)
		defer conns[i].close()
	}
	var frame []byte
	for i := 0; i < frameMsgs; i++ {
		frame = wire.AppendMessage(frame, core.Message{
			Kind: core.MsgRegular,
			Item: stream.Item{ID: uint64(i), Weight: 1},
			Key:  1 + float64(i%97),
		})
	}
	framesPerConn := (b.N/k + frameMsgs - 1) / frameMsgs
	if framesPerConn < 1 {
		framesPerConn = 1
	}
	total := int64(framesPerConn) * frameMsgs * k

	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, k)
	for _, rc := range conns {
		wg.Add(1)
		go func(rc *rawConn) {
			defer wg.Done()
			for f := 0; f < framesPerConn; f++ {
				if err := rc.send(frame); err != nil {
					errs <- err
					return
				}
			}
			// Barrier: the server has consumed everything when the pong
			// returns, so the measurement covers full ingest.
			errs <- rc.sync()
		}(rc)
	}
	wg.Wait()
	b.StopTimer()
	for i := 0; i < k; i++ {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
	dropped := srv.PreFiltered() + srv.Stats().DroppedRegular
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Mmsg/s")
	b.ReportMetric(float64(dropped)/float64(total), "dropped/msg")
}
