package transport

import (
	"fmt"
	"runtime"
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

// dialRaw opens a wire-level connection that feeds pre-encoded frames,
// bypassing SiteClient — it models a site with a maximally stale
// threshold blasting keys the coordinator will drop, the workload the
// atomic pre-filter exists for. The connection is the ingest-bench
// harness's benchConn, so the tests and the recorded benchmarks drive
// the exact same client.
func dialRaw(tb testing.TB, addr string) *benchConn {
	tb.Helper()
	bc, err := dialBench(addr)
	if err != nil {
		tb.Fatal(err)
	}
	return bc
}

// warmCoordinator drives u (and the published drop bound) to ~keyScale
// by sending s regular messages with huge keys through a throwaway
// connection.
func warmCoordinator(tb testing.TB, addr string, s int, keyScale float64) {
	tb.Helper()
	w := dialRaw(tb, addr)
	defer w.close()
	var payload []byte
	for i := 0; i < s; i++ {
		payload = wire.AppendMessage(payload, core.Message{
			Kind: core.MsgRegular,
			Item: stream.Item{ID: uint64(i), Weight: 1},
			Key:  keyScale + float64(i),
		})
	}
	if err := w.send(payload); err != nil {
		tb.Fatal(err)
	}
	if err := w.sync(); err != nil {
		tb.Fatal(err)
	}
}

// TestPrefilterDropsBelowThreshold pins the pre-filter's semantics:
// below-bound regular messages are dropped before the ingest lock,
// counted, and leave the sample untouched — and they still count as
// processed so the flush invariant Processed() == Σ Sent() holds.
func TestPrefilterDropsBelowThreshold(t *testing.T) {
	cfg := core.Config{K: 1, S: 4}
	master := xrand.New(31)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()

	warmCoordinator(t, addr, cfg.S, 1e12)
	before := srv.Query()

	rc := dialRaw(t, addr)
	defer rc.close()
	const n = 500
	var payload []byte
	for i := 0; i < n; i++ {
		payload = wire.AppendMessage(payload, core.Message{
			Kind: core.MsgRegular,
			Item: stream.Item{ID: uint64(1000 + i), Weight: 1},
			Key:  1 + float64(i), // far below u ~ 1e12
		})
	}
	if err := rc.send(payload); err != nil {
		t.Fatal(err)
	}
	if err := rc.sync(); err != nil {
		t.Fatal(err)
	}

	if got := srv.PreFiltered(); got != n {
		t.Errorf("PreFiltered = %d, want %d", got, n)
	}
	if got := srv.Processed(); got != int64(cfg.S+n) {
		t.Errorf("Processed = %d, want %d (pre-filtered messages count as processed)", got, cfg.S+n)
	}
	after := srv.Query()
	if len(after) != len(before) {
		t.Fatalf("sample size changed: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Errorf("sample entry %d changed: %+v -> %+v", i, before[i], after[i])
		}
	}
}

// TestSerialIngestMatchesPrefilter pins that the two ingest paths are
// observably equivalent: same drops (by different counters), same
// sample, same processed count.
func TestSerialIngestMatchesPrefilter(t *testing.T) {
	run := func(serial bool) (int64, int64, []core.SampleEntry) {
		cfg := core.Config{K: 1, S: 4}
		master := xrand.New(47)
		srv, addr := startServer(t, cfg, master.Split())
		defer srv.Close()
		srv.SetSerialIngest(serial)
		warmCoordinator(t, addr, cfg.S, 1e12)
		rc := dialRaw(t, addr)
		defer rc.close()
		var payload []byte
		for i := 0; i < 100; i++ {
			payload = wire.AppendMessage(payload, core.Message{
				Kind: core.MsgRegular,
				Item: stream.Item{ID: uint64(1000 + i), Weight: 1},
				Key:  1 + float64(i),
			})
		}
		if err := rc.send(payload); err != nil {
			t.Fatal(err)
		}
		if err := rc.sync(); err != nil {
			t.Fatal(err)
		}
		return srv.Processed(), srv.PreFiltered() + srv.Stats().DroppedRegular, srv.Query()
	}
	pProc, pDrop, pSample := run(false)
	sProc, sDrop, sSample := run(true)
	if pProc != sProc || pDrop != sDrop {
		t.Errorf("paths diverge: prefilter (processed=%d, dropped=%d) vs serial (processed=%d, dropped=%d)",
			pProc, pDrop, sProc, sDrop)
	}
	if len(pSample) != len(sSample) {
		t.Fatalf("sample sizes diverge: %d vs %d", len(pSample), len(sSample))
	}
	for i := range pSample {
		if pSample[i].Item != sSample[i].Item {
			t.Errorf("sample entry %d diverges: %+v vs %+v", i, pSample[i], sSample[i])
		}
	}
}

// BenchmarkTCPParallelIngest measures coordinator ingest throughput
// with 8 concurrent site connections, via the exported harness that
// cmd/wrs-bench also runs (BENCH_ingest.json).
//
// Two workloads:
//
//   - drop: below-threshold regular keys — the high-rate steady state
//     where sites outrun the control plane by up to the staleness
//     window. "prefilter" is the current ingest path (decode + drop
//     outside the lock); "serial" is the PR 2 baseline that decodes
//     and handles everything under the shard mutex, so its throughput
//     stays flat as GOMAXPROCS grows while prefilter scales with cores.
//   - live: early messages that can never be pre-filtered — every one
//     is handled under its shard's lock, so throughput is bounded by
//     lock-serialized handling. The shards axis multiplies the locks:
//     at GOMAXPROCS >= 8 with 8 connections, shards=4 must beat
//     shards=1 by >= 2x (the PR 3 acceptance; needs >= 8 cores to
//     show).
//
// Reported metrics: Mmsg/s (headline) and dropped/msg (the measured
// drop rate — ~1.0 for the drop workload, 0 for live).
func BenchmarkTCPParallelIngest(b *testing.B) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"prefilter", false}, {"serial", true}} {
		for _, procs := range []int{1, 2, 4, 8} {
			if procs > runtime.NumCPU() {
				continue
			}
			b.Run(fmt.Sprintf("%s/procs=%d", mode.name, procs), func(b *testing.B) {
				benchIngest(b, IngestBenchOpts{Serial: mode.serial}, procs)
			})
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, procs := range []int{1, 8} {
			if procs > runtime.NumCPU() {
				continue
			}
			b.Run(fmt.Sprintf("live/shards=%d/procs=%d", shards, procs), func(b *testing.B) {
				benchIngest(b, IngestBenchOpts{Live: true, Shards: shards}, procs)
			})
		}
	}
}

func benchIngest(b *testing.B, o IngestBenchOpts, procs int) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	o.Msgs = int64(b.N)
	b.ResetTimer()
	res, err := RunIngestBench(o)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.MmsgPerSec(), "Mmsg/s")
	b.ReportMetric(float64(res.Dropped)/float64(res.Msgs), "dropped/msg")
}

// BenchmarkTCPIngestWithQuerier measures ingest throughput with a
// concurrent 100 Hz querier over a large sample (s = 4096): the
// "lockedsort" mode is the pre-satellite read path that runs the full
// sort+copy inside the ingest locks (stalling TCP ingest for its
// duration), "snapshot" is the current path — an O(s) copy under each
// shard lock with the sort outside. The delta is the query stall the
// non-blocking read path removes.
func BenchmarkTCPIngestWithQuerier(b *testing.B) {
	for _, mode := range []struct {
		name   string
		locked bool
	}{{"snapshot", false}, {"lockedsort", true}} {
		b.Run(mode.name+"/100Hz", func(b *testing.B) {
			o := IngestBenchOpts{
				Live:       true,
				SampleSize: 4096,
				QuerierHz:  100,
				LockedSort: mode.locked,
				Msgs:       int64(b.N),
			}
			b.ResetTimer()
			res, err := RunIngestBench(o)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.MmsgPerSec(), "Mmsg/s")
			b.ReportMetric(float64(res.Queries), "queries")
		})
	}
}

// TestIngestBenchHarness pins the harness itself (it is production
// code: cmd/wrs-bench records its output): both workloads run, count
// exactly, and drop what they claim.
func TestIngestBenchHarness(t *testing.T) {
	drop, err := RunIngestBench(IngestBenchOpts{Conns: 2, Msgs: 8192, FrameMsgs: 512})
	if err != nil {
		t.Fatal(err)
	}
	if drop.Msgs != 8192 {
		t.Errorf("drop workload ingested %d, want 8192", drop.Msgs)
	}
	if drop.Dropped != drop.Msgs {
		t.Errorf("drop workload dropped %d of %d", drop.Dropped, drop.Msgs)
	}
	live, err := RunIngestBench(IngestBenchOpts{Conns: 2, Msgs: 8192, FrameMsgs: 512, Shards: 4, Live: true, QuerierHz: 200})
	if err != nil {
		t.Fatal(err)
	}
	if live.Msgs != 8192 {
		t.Errorf("live workload ingested %d, want 8192", live.Msgs)
	}
	if live.Dropped != 0 {
		t.Errorf("live workload dropped %d messages", live.Dropped)
	}
	// The window axis: sequence-stamped candidates into non-monotone
	// windowed coordinators, sharded so the stamps cross shard-tagged
	// frames too; nothing is pre-filterable and every message counts.
	win, err := RunIngestBench(IngestBenchOpts{Conns: 2, Msgs: 8192, FrameMsgs: 512, Shards: 2, Window: 256})
	if err != nil {
		t.Fatal(err)
	}
	if win.Msgs != 8192 {
		t.Errorf("window workload ingested %d, want 8192", win.Msgs)
	}
	if win.Dropped != 0 {
		t.Errorf("window workload dropped %d messages", win.Dropped)
	}
}

// BenchmarkTCPWindowIngest is the window axis of the ingest matrix:
// server-side cost of the non-monotone windowed retention (ordered
// insert, dominance bookkeeping, expiry against advancing stamps) per
// sequence-stamped message, across widths. Recorded by wrs-bench
// -ingest as the window/width=N rows of BENCH_ingest.json.
func BenchmarkTCPWindowIngest(b *testing.B) {
	for _, width := range []int{1024, 65536} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			benchIngest(b, IngestBenchOpts{Window: width}, runtime.GOMAXPROCS(0))
		})
	}
}
