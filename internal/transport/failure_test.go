package transport

import (
	"net"
	"testing"
	"time"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// TestSiteCrashDoesNotCorruptOthers kills one site's connection mid-run
// and verifies the coordinator keeps serving the surviving sites
// correctly: the final sample is the exact top-s of every key that
// *reached* the coordinator (a crashed site's unsent items are simply
// absent, as in any real deployment).
func TestSiteCrashDoesNotCorruptOthers(t *testing.T) {
	cfg := core.Config{K: 3, S: 6}
	master := xrand.New(99)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()

	clients := make([]*SiteClient, cfg.K)
	for i := range clients {
		c, err := DialSite(addr, i, cfg, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}

	rng := xrand.New(100)
	feed := func(c *SiteClient, lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := c.Observe(stream.Item{ID: uint64(i), Weight: 1 + rng.Float64()}); err != nil {
				return // expected after crash
			}
		}
	}
	feed(clients[0], 0, 500)
	feed(clients[1], 500, 1000)
	feed(clients[2], 1000, 1500)

	// Crash site 2 abruptly.
	clients[2].conn.Close()
	// Give the server a moment to reap the connection.
	deadlineAt := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadlineAt) {
		srv.connsMu.Lock()
		n := len(srv.conns)
		srv.connsMu.Unlock()
		if n == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Writes after the crash must error out and never inflate Sent():
	// the counter reflects only messages whose bytes reached the
	// connection, so the Processed/Sent books below can balance.
	sentAtCrash := clients[2].Sent()
	crashErrored := false
	for i := 5000; i < 15000; i++ {
		if err := clients[2].Observe(stream.Item{ID: uint64(i), Weight: 1 + rng.Float64()}); err != nil {
			crashErrored = true
			break
		}
	}
	if !crashErrored {
		t.Error("observe kept succeeding on a closed connection")
	}
	if got := clients[2].Sent(); got != sentAtCrash {
		t.Errorf("failed writes counted: Sent() went %d -> %d after crash", sentAtCrash, got)
	}

	// Survivors keep streaming and stay consistent.
	feed(clients[0], 2000, 3000)
	feed(clients[1], 3000, 4000)
	for _, c := range clients[:2] {
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Exact accounting under mid-run connection failure: everything any
	// client successfully wrote — including the crashed site's pre-crash
	// traffic, delivered before its FIN — was processed, and nothing
	// else was counted.
	var sentTotal int64
	for _, c := range clients {
		sentTotal += c.Sent()
	}
	if got := srv.Processed(); got != sentTotal {
		t.Errorf("processed %d != %d total successful sends", got, sentTotal)
	}
	q := srv.Query()
	if len(q) != cfg.S {
		t.Fatalf("query size %d after crash, want %d", len(q), cfg.S)
	}
	for i := 1; i < len(q); i++ {
		if q[i].Key > q[i-1].Key {
			t.Fatal("sample order corrupted after site crash")
		}
	}
	// Survivors' later messages were processed.
	if srv.Processed() < clients[0].Sent()+clients[1].Sent() {
		t.Fatalf("processed %d < survivors sent %d",
			srv.Processed(), clients[0].Sent()+clients[1].Sent())
	}
	clients[0].Close()
	clients[1].Close()
}

// TestClientObserveAfterServerGone verifies Observe fails cleanly (no
// hang, no panic) when the coordinator is unreachable.
func TestClientObserveAfterServerGone(t *testing.T) {
	cfg := core.Config{K: 1, S: 1}
	master := xrand.New(123)
	srv, addr := startServer(t, cfg, master.Split())
	c, err := DialSite(addr, 0, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	// TCP gives no synchronous delivery guarantee; keep writing until the
	// broken pipe surfaces (bounded).
	var lastErr error
	for i := 0; i < 100000 && lastErr == nil; i++ {
		lastErr = c.Observe(stream.Item{ID: uint64(i), Weight: 1e9})
	}
	if lastErr == nil {
		t.Error("writes kept succeeding long after server shutdown")
	}
}

// TestServerRejectsOversizedFrame covers the DoS guard.
func TestServerRejectsOversizedFrame(t *testing.T) {
	cfg := core.Config{K: 1, S: 1}
	master := xrand.New(321)
	srv, addr := startServer(t, cfg, master.Split())
	defer srv.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Header announcing a 1 GiB frame.
	if _, err := conn.Write([]byte{0, 0, 0, 0x40}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(deadline())
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server kept the connection after an oversized frame header")
	}
}
