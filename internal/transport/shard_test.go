package transport

import (
	"io"
	"net"
	"testing"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

// startShardedServer spins up a P-shard coordinator server on a
// loopback listener, one fresh sampler coordinator per shard.
func startShardedServer(t testing.TB, cfg core.Config, shards int, master *xrand.RNG) (*CoordinatorServer, string) {
	t.Helper()
	protos := make([]Coordinator, shards)
	for p := range protos {
		protos[p] = core.NewCoordinator(cfg, master.Split())
	}
	srv, err := NewShardedCoordinatorServer(cfg, protos)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	return srv, ln.Addr().String()
}

// TestShardedServerRoutesByTag pins the server-side dispatch: frames
// tagged for shard p land on shard p's coordinator only.
func TestShardedServerRoutesByTag(t *testing.T) {
	cfg := core.Config{K: 1, S: 4}
	const shards = 3
	srv, addr := startShardedServer(t, cfg, shards, xrand.New(41))
	defer srv.Close()

	rc := dialRaw(t, addr)
	defer rc.close()
	for p := 0; p < shards; p++ {
		payload := wire.AppendShardHeader(nil, p)
		for i := 0; i < p+1; i++ { // shard p gets p+1 messages
			payload = wire.AppendMessage(payload, core.Message{
				Kind: core.MsgRegular,
				Item: stream.Item{ID: uint64(100*p + i), Weight: 1},
				Key:  float64(1 + i),
			})
		}
		if err := rc.send(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := rc.sync(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Processed(); got != 1+2+3 {
		t.Errorf("Processed = %d, want 6", got)
	}
	for p := 0; p < shards; p++ {
		var entries []core.SampleEntry
		srv.DoShard(p, func() { entries = srv.Coord(p).Snapshot(nil) })
		if len(entries) != p+1 {
			t.Errorf("shard %d holds %d entries, want %d", p, len(entries), p+1)
		}
		for _, e := range entries {
			if e.Item.ID/100 != uint64(p) {
				t.Errorf("shard %d holds item %d from another shard", p, e.Item.ID)
			}
		}
	}
}

// TestShardedServerRejectsBadShardIndex is the wire-robustness
// acceptance: a frame naming a shard the server does not host is a
// protocol violation — the connection is dropped with no panic, the
// malformed frame's messages never reach any coordinator, and the
// server keeps serving healthy connections.
func TestShardedServerRejectsBadShardIndex(t *testing.T) {
	cfg := core.Config{K: 1, S: 4}
	const shards = 2
	srv, addr := startShardedServer(t, cfg, shards, xrand.New(43))
	defer srv.Close()

	bad := dialRaw(t, addr)
	defer bad.close()
	payload := wire.AppendShardHeader(nil, 7) // server hosts shards 0..1
	payload = wire.AppendMessage(payload, core.Message{
		Kind: core.MsgRegular, Item: stream.Item{ID: 1, Weight: 1}, Key: 5,
	})
	if err := bad.send(payload); err != nil {
		t.Fatal(err)
	}
	if err := bad.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection; the read eventually fails.
	bad.conn.SetReadDeadline(deadline())
	if _, err := io.ReadAll(bad.conn); err != nil && err != io.EOF {
		t.Fatalf("expected clean close, read failed with %v", err)
	}
	if got := srv.Processed(); got != 0 {
		t.Errorf("malformed frame processed %d messages", got)
	}

	// A healthy connection still works end to end.
	good := dialRaw(t, addr)
	defer good.close()
	ok := wire.AppendShardHeader(nil, 1)
	ok = wire.AppendMessage(ok, core.Message{
		Kind: core.MsgRegular, Item: stream.Item{ID: 2, Weight: 1}, Key: 5,
	})
	if err := good.send(ok); err != nil {
		t.Fatal(err)
	}
	if err := good.sync(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Processed(); got != 1 {
		t.Errorf("Processed = %d after healthy frame, want 1", got)
	}
}

// TestShardedServerRejectsUntaggedFrame pins that a sharded server
// refuses plain (untagged) batch frames: a client that does not know
// the shard layout would otherwise have its whole stream silently
// ingested into shard 0, sampling the same ID domain in two shards and
// corrupting the exact merge.
func TestShardedServerRejectsUntaggedFrame(t *testing.T) {
	cfg := core.Config{K: 1, S: 4}
	srv, addr := startShardedServer(t, cfg, 2, xrand.New(59))
	defer srv.Close()

	rc := dialRaw(t, addr)
	defer rc.close()
	payload := wire.AppendMessage(nil, core.Message{
		Kind: core.MsgRegular, Item: stream.Item{ID: 1, Weight: 1}, Key: 5,
	})
	if err := rc.send(payload); err != nil {
		t.Fatal(err)
	}
	if err := rc.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	rc.conn.SetReadDeadline(deadline())
	if _, err := io.ReadAll(rc.conn); err != nil && err != io.EOF {
		t.Fatalf("expected clean close, read failed with %v", err)
	}
	if got := srv.Processed(); got != 0 {
		t.Errorf("untagged frame processed %d messages on a sharded server", got)
	}
}

// TestShardedServerRejectsTruncatedShardFrame covers the other
// malformed shapes: a shard header with a misaligned message section
// drops the connection without a panic.
func TestShardedServerRejectsTruncatedShardFrame(t *testing.T) {
	cfg := core.Config{K: 1, S: 4}
	srv, addr := startShardedServer(t, cfg, 2, xrand.New(47))
	defer srv.Close()

	rc := dialRaw(t, addr)
	defer rc.close()
	payload := wire.AppendShardHeader(nil, 0)
	payload = append(payload, 0xAB, 0xCD) // not a multiple of MessageSize
	if err := rc.send(payload); err != nil {
		t.Fatal(err)
	}
	if err := rc.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	rc.conn.SetReadDeadline(deadline())
	if _, err := io.ReadAll(rc.conn); err != nil && err != io.EOF {
		t.Fatalf("expected clean close, read failed with %v", err)
	}
	if got := srv.Processed(); got != 0 {
		t.Errorf("malformed frame processed %d messages", got)
	}
}

// TestShardedClusterEndToEnd drives a 3-shard cluster through the
// Cluster surface (the runtime contract) and checks the merged query
// against per-shard routing.
func TestShardedClusterEndToEnd(t *testing.T) {
	cfg := core.Config{K: 2, S: 6}
	const shards = 3
	master := xrand.New(53)
	protos := make([]Coordinator, shards)
	sitesByShard := make([][]netsim.Site[core.Message], shards)
	for p := 0; p < shards; p++ {
		protos[p] = core.NewCoordinator(cfg, master.Split())
		sitesByShard[p] = make([]netsim.Site[core.Message], cfg.K)
		for i := 0; i < cfg.K; i++ {
			sitesByShard[p][i] = core.NewSite(i, cfg, master.Split())
		}
	}
	cluster, err := NewShardedCluster(cfg, protos, sitesByShard, "")
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Shards() != shards {
		t.Fatalf("Shards() = %d", cluster.Shards())
	}
	for i := 0; i < 3; i++ {
		if err := cluster.Feed(i%cfg.K, stream.Item{ID: uint64(1e6 + i), Weight: 1e9}); err != nil {
			t.Fatal(err)
		}
	}
	var batch []stream.Item
	for i := 0; i < 3000; i++ {
		batch = append(batch, stream.Item{ID: uint64(i), Weight: 1})
		if len(batch) == 200 {
			if err := cluster.FeedBatch(i%cfg.K, batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := cluster.Flush(); err != nil {
		t.Fatal(err)
	}
	q := cluster.Server().Query()
	if len(q) != cfg.S {
		t.Fatalf("merged query size %d, want %d", len(q), cfg.S)
	}
	found := map[uint64]bool{}
	for _, e := range q {
		found[e.Item.ID] = true
	}
	for i := 0; i < 3; i++ {
		if !found[uint64(1e6+i)] {
			t.Errorf("giant %d missing from merged query", i)
		}
	}
	st := cluster.Stats()
	if st.Upstream == 0 || st.Upstream > 3003/2 {
		t.Errorf("upstream %d: want nonzero and sublinear", st.Upstream)
	}
}
