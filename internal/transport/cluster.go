package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
)

// Cluster is the deployment-shaped runtime for one protocol instance:
// a CoordinatorServer listening on a real address and one SiteClient
// per site state machine, each over its own TCP connection. It exposes
// the same driving surface as the netsim clusters (Feed, FeedBatch,
// Flush, Stats), so the applications — plain SWOR, heavy hitters, L1
// tracking — run over real connections unchanged.
//
// Feed/FeedBatch for different sites may be called from different
// goroutines (one feeder per site is the intended deployment shape);
// calls for the same site must not be concurrent, matching SiteClient.
type Cluster struct {
	cfg     core.Config
	srv     *CoordinatorServer
	ln      net.Listener
	clients []*SiteClient
}

// NewCluster starts a coordinator server for coord on addr
// ("127.0.0.1:0" when empty) and connects one SiteClient per site
// machine. On error everything already started is torn down.
func NewCluster(cfg core.Config, coord Coordinator, sites []netsim.Site[core.Message], addr string) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sites) != cfg.K {
		return nil, fmt.Errorf("transport: %d site machines for k=%d", len(sites), cfg.K)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := NewCoordinatorServerFor(cfg, coord)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	c := &Cluster{cfg: cfg, srv: srv, ln: ln, clients: make([]*SiteClient, len(sites))}
	for i, machine := range sites {
		cl, err := DialSiteFor(ln.Addr().String(), machine, cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.clients[i] = cl
	}
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Cluster) Addr() string { return c.ln.Addr().String() }

// Server returns the coordinator server (diagnostics and queries).
func (c *Cluster) Server() *CoordinatorServer { return c.srv }

// Client returns the site client for siteID (diagnostics).
func (c *Cluster) Client(siteID int) *SiteClient { return c.clients[siteID] }

func (c *Cluster) checkSite(siteID int) error {
	if siteID < 0 || siteID >= len(c.clients) {
		return fmt.Errorf("transport: site %d out of range [0,%d)", siteID, len(c.clients))
	}
	return nil
}

// Feed delivers one arrival to a site over its connection.
func (c *Cluster) Feed(siteID int, it stream.Item) error {
	if err := c.checkSite(siteID); err != nil {
		return err
	}
	return c.clients[siteID].Observe(it)
}

// FeedBatch delivers a slice of arrivals to a site, coalesced into
// multi-message frames (the high-throughput path).
func (c *Cluster) FeedBatch(siteID int, items []stream.Item) error {
	if err := c.checkSite(siteID); err != nil {
		return err
	}
	return c.clients[siteID].ObserveBatch(items)
}

// Flush round-trips every connection: when it returns, the coordinator
// has processed every message fed so far and each site has applied
// every broadcast that processing triggered. The round-trips run
// concurrently, so the cost is one RTT, not k.
func (c *Cluster) Flush() error {
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *SiteClient) {
			defer wg.Done()
			errs[i] = cl.Flush()
		}(i, cl)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Do runs fn while holding the coordinator's ingest lock.
func (c *Cluster) Do(fn func()) { c.srv.Do(fn) }

// Stats returns cumulative protocol traffic in the paper's accounting:
// upstream counts messages whose bytes reached a connection, downstream
// counts per-site broadcast deliveries (snapshot frames included).
// Ping/pong control frames are excluded; see SiteClient.FlowPings.
func (c *Cluster) Stats() netsim.Stats {
	var s netsim.Stats
	for _, cl := range c.clients {
		s.Upstream += cl.Sent()
		s.UpWords += cl.SentWords()
	}
	s.Downstream = c.srv.BroadcastsSent()
	s.DownWords = c.srv.BroadcastWords()
	return s
}

// Close tears down every site connection and the server. It does not
// flush; call Flush first for a graceful shutdown with delivery
// guaranteed.
func (c *Cluster) Close() error {
	var errs []error
	for _, cl := range c.clients {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := c.srv.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
