package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
)

// Cluster is the deployment-shaped runtime for one protocol instance —
// or for a fabric of P shard instances: a CoordinatorServer hosting all
// shards on a real address and one SiteClient per site, each over its
// own TCP connection carrying every shard's traffic (shard-tagged
// frames; connection count stays k, not P×k). It exposes the same
// driving surface as the netsim clusters (Feed, FeedBatch, Flush,
// Stats) plus per-shard access (Shards, DoShard), so the applications —
// plain SWOR, heavy hitters, L1 tracking — run over real connections
// unchanged, sharded or not.
//
// Feed/FeedBatch for different sites may be called from different
// goroutines (one feeder per site is the intended deployment shape);
// calls for the same site must not be concurrent, matching SiteClient.
type Cluster struct {
	cfg     core.Config
	shards  int
	srv     *CoordinatorServer
	ln      net.Listener
	clients []*SiteClient
}

// NewCluster starts a coordinator server for coord on addr
// ("127.0.0.1:0" when empty) and connects one SiteClient per site
// machine. On error everything already started is torn down.
func NewCluster(cfg core.Config, coord Coordinator, sites []netsim.Site[core.Message], addr string) (*Cluster, error) {
	return NewShardedCluster(cfg, []Coordinator{coord}, [][]netsim.Site[core.Message]{sites}, addr)
}

// NewShardedCluster starts one coordinator server hosting len(protos)
// protocol shards and connects one multiplexing SiteClient per site.
// machines is indexed [shard][site]: machines[p][i] is site i's state
// machine for shard p. On error everything already started is torn
// down.
func NewShardedCluster(cfg core.Config, protos []Coordinator, machines [][]netsim.Site[core.Message], addr string) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(machines) != len(protos) {
		return nil, fmt.Errorf("transport: %d shard site slices for %d shard coordinators", len(machines), len(protos))
	}
	for p := range machines {
		if len(machines[p]) != cfg.K {
			return nil, fmt.Errorf("transport: shard %d has %d site machines for k=%d", p, len(machines[p]), cfg.K)
		}
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := NewShardedCoordinatorServer(cfg, protos)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	c := &Cluster{cfg: cfg, shards: len(protos), srv: srv, ln: ln, clients: make([]*SiteClient, cfg.K)}
	for i := 0; i < cfg.K; i++ {
		perSite := make([]netsim.Site[core.Message], len(protos))
		for p := range protos {
			perSite[p] = machines[p][i]
		}
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			c.Close()
			return nil, err
		}
		cl, err := NewShardedSiteClient(conn, perSite, cfg)
		if err != nil {
			conn.Close()
			c.Close()
			return nil, err
		}
		c.clients[i] = cl
	}
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Cluster) Addr() string { return c.ln.Addr().String() }

// Server returns the coordinator server (diagnostics and queries).
func (c *Cluster) Server() *CoordinatorServer { return c.srv }

// Client returns the site client for siteID (diagnostics).
func (c *Cluster) Client(siteID int) *SiteClient { return c.clients[siteID] }

// Shards returns the number of protocol shards the cluster runs.
func (c *Cluster) Shards() int { return c.shards }

func (c *Cluster) checkSite(siteID int) error {
	if siteID < 0 || siteID >= len(c.clients) {
		return fmt.Errorf("transport: site %d out of range [0,%d)", siteID, len(c.clients))
	}
	return nil
}

// Feed delivers one arrival to a site over its connection; the site
// client routes it to the item's shard (fabric.ShardOf).
func (c *Cluster) Feed(siteID int, it stream.Item) error {
	if err := c.checkSite(siteID); err != nil {
		return err
	}
	return c.clients[siteID].Observe(it)
}

// FeedBatch delivers a slice of arrivals to a site, coalesced into
// per-shard multi-message frames (the high-throughput path).
func (c *Cluster) FeedBatch(siteID int, items []stream.Item) error {
	if err := c.checkSite(siteID); err != nil {
		return err
	}
	return c.clients[siteID].ObserveBatch(items)
}

// Flush round-trips every connection: when it returns, the coordinator
// has processed every message fed so far — all shards share each
// connection's FIFO — and each site has applied every broadcast that
// processing triggered. The round-trips run concurrently, so the cost
// is one RTT, not k.
func (c *Cluster) Flush() error {
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *SiteClient) {
			defer wg.Done()
			errs[i] = cl.Flush()
		}(i, cl)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Do runs fn while holding every shard's ingest lock.
func (c *Cluster) Do(fn func()) { c.srv.Do(fn) }

// DoShard runs fn while holding only shard p's ingest lock, leaving
// the other shards' ingest unstalled.
func (c *Cluster) DoShard(p int, fn func()) { c.srv.DoShard(p, fn) }

// Stats returns cumulative protocol traffic in the paper's accounting:
// upstream counts messages whose bytes reached a connection, downstream
// counts per-site broadcast deliveries (snapshot frames included).
// Ping/pong control frames and shard tags are excluded; see
// SiteClient.FlowPings.
func (c *Cluster) Stats() netsim.Stats {
	var s netsim.Stats
	for _, cl := range c.clients {
		if cl == nil {
			continue
		}
		s.Upstream += cl.Sent()
		s.UpWords += cl.SentWords()
	}
	s.Downstream = c.srv.BroadcastsSent()
	s.DownWords = c.srv.BroadcastWords()
	return s
}

// Close tears down every site connection and the server. It does not
// flush; call Flush first for a graceful shutdown with delivery
// guaranteed.
func (c *Cluster) Close() error {
	var errs []error
	for _, cl := range c.clients {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := c.srv.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
