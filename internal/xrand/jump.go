package xrand

// Jump is the state of an A-ExpJ exponential jump (Efraimidis &
// Spirakis' "exponential jumps" for weighted reservoir sampling,
// adapted to the precision-sampling key v = w/t, t ~ Exp(1), used
// throughout this library).
//
// An item of weight w beats a threshold u > 0 with probability
// p = P(v > u) = 1 - e^(-w/u), independently across items. For a run of
// items with cumulative weight C the probability that none beats u is
// therefore e^(-C/u) — the same law as P(u·E > C) for a single
// E ~ Exp(1). So instead of drawing one variate per item, arm a jump:
// draw E once and set the landing target W* = u·E. The first item whose
// cumulative weight reaches W* is exactly the first item whose key
// exceeds u:
//
//	P(items 1..j-1 all fail, item j passes)
//	  = P(C_{j-1} < W* <= C_j)
//	  = e^(-C_{j-1}/u) · (1 - e^(-w_j/u)).
//
// Every skipped item costs one float subtraction — zero RNG draws, zero
// key computations. The landing item's key is then drawn from the
// conditional distribution {v | v > u} (KeyAbove), which is independent
// of where inside the item the jump landed.
//
// Re-arming: by the memorylessness of the exponential, conditioned on
// "not landed yet" the remaining distance rem is again Exp with mean u.
// Discarding a partially consumed jump and arming a fresh one at any
// item boundary is therefore distribution-exact — which is how a site
// handles a threshold raise mid-run: the jump is only valid for the
// threshold it was armed against (ArmedAt), and is re-armed whenever a
// broadcast moves the threshold.
//
// The zero value is disarmed.
type Jump struct {
	th  float64 // threshold the jump was armed against; 0 = disarmed
	rem float64 // remaining cumulative weight before the jump lands
}

// ArmedAt reports whether the jump is armed against threshold th.
func (j *Jump) ArmedAt(th float64) bool { return j.th == th && j.th > 0 }

// Arm draws a fresh landing target against threshold th > 0.
func (j *Jump) Arm(r *RNG, th float64) {
	j.th = th
	j.rem = th * r.Exp()
}

// Disarm invalidates the jump (e.g. on a threshold change observed
// outside Offer).
func (j *Jump) Disarm() { j.th = 0 }

// Offer consumes one item of weight w. A false return means the jump
// flies past the item: its key is provably <= the armed threshold and
// the item can be dropped with no RNG work. A true return means the
// jump lands within the item — its key exceeds the threshold; the
// caller must materialize the key with KeyAbove and re-arm before the
// next item. Offer must only be called while armed.
func (j *Jump) Offer(w float64) bool {
	if j.rem > w {
		j.rem -= w
		return false
	}
	j.th = 0
	return true
}

// SkipIdentical consumes up to n identical items of weight w and
// returns how many the jump skips. A return of n means all copies fail
// the threshold (the jump stays armed with its remaining distance); a
// return m < n means copy m+1 is the first to pass — the jump disarms
// and the caller draws its key with KeyAbove. The skip count floor(rem/w)
// realizes the geometric law P(skip >= m) = e^(-m·w/u) = (1-p)^m, the
// same distribution the per-copy geometric skip of ObserveRepeated used
// before it was rebased on this sampler.
func (j *Jump) SkipIdentical(w float64, n int) int {
	if float64(n)*w < j.rem {
		j.rem -= float64(n) * w
		return n
	}
	m := int(j.rem / w)
	if m >= n { // float edge: rem/w rounding up to n
		m = n - 1
	}
	j.th = 0
	return m
}

// KeyAbove returns a precision-sampling key for weight w conditioned on
// exceeding the threshold u > 0: v = w/t with t ~ Exp(1) | t < w/u.
// It is the materialization step after a jump lands.
func KeyAbove(r *RNG, w, u float64) float64 {
	return w / r.TruncExpBelow(w/u)
}
