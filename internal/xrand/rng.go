// Package xrand provides deterministic, seedable pseudo-randomness and the
// distribution samplers used throughout the library: exponential and
// truncated-exponential variates for precision sampling, binomial batching
// for the SWR reduction and L1-tracking duplication, and the lazily refined
// uniform of Proposition 7 that decides threshold comparisons with an
// expected O(1) random bits.
//
// The generator is xoshiro256++ seeded via splitmix64. It is not
// cryptographically secure; it is chosen for speed, quality and
// reproducibility (every simulation in this repository is replayable from
// a single seed).
package xrand

import "math"

// SplitMix64 advances the given state and returns the next value of the
// splitmix64 sequence. It is used to seed RNG and to derive independent
// per-component seeds from a master seed.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256++ pseudo-random number generator.
// The zero value is not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns an RNG deterministically seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro256++ requires a state that is not all zero; splitmix64 of any
	// seed never produces four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// OpenFloat64 returns a uniform float64 in the open interval (0, 1).
// It never returns exactly 0 or 1, which makes it safe to pass to math.Log.
func (r *RNG) OpenFloat64() float64 {
	return (float64(r.Uint64()>>11) + 0.5) * 0x1p-53
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Exp returns an exponential variate with rate 1 via inverse transform.
// The result is strictly positive.
func (r *RNG) Exp() float64 {
	return -math.Log(r.OpenFloat64())
}

// Perm fills dst with a uniformly random permutation of 0..len(dst)-1.
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Choose writes a uniformly random size-x subset of 0..n-1 into dst and
// returns it. It panics unless 0 <= x <= n. The returned indices are in
// arbitrary order. dst must have capacity >= x.
func (r *RNG) Choose(n, x int, dst []int) []int {
	if x < 0 || x > n {
		panic("xrand: Choose called with x out of range")
	}
	dst = dst[:0]
	// Floyd's algorithm: O(x) expected time, no O(n) allocation.
	seen := make(map[int]struct{}, x)
	for j := n - x; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := seen[t]; ok {
			t = j
		}
		seen[t] = struct{}{}
		dst = append(dst, t)
	}
	return dst
}

// Split returns a new RNG whose seed is derived from the current generator.
// Use it to fan out independent streams for per-site randomness.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// State returns the generator's full internal state. Together with
// NewFromState it lets a protocol state machine be checkpointed and
// restored bit-exactly: a restored coordinator draws the same key
// stream the snapshotted one would have (the restart-from-snapshot
// path of the chaos harness).
func (r *RNG) State() [4]uint64 { return r.s }

// NewFromState reconstructs an RNG from a state captured with State.
// It panics on the all-zero state, which xoshiro256++ cannot leave and
// which can therefore only come from a corrupted snapshot.
func NewFromState(s [4]uint64) *RNG {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		panic("xrand: NewFromState on all-zero state (corrupted snapshot)")
	}
	return &RNG{s: s}
}
