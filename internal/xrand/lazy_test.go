package xrand

import (
	"math"
	"sort"
	"testing"
)

func TestLazyUniformDecisionProbability(t *testing.T) {
	r := New(1)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		const trials = 100000
		above := 0
		for i := 0; i < trials; i++ {
			lu := NewLazyUniform(r)
			if lu.Above(p) {
				above++
			}
		}
		got := float64(above) / trials
		want := 1 - p
		if math.Abs(got-want) > 0.006 {
			t.Errorf("P(U > %v) = %v, want %v", p, got, want)
		}
	}
}

func TestLazyUniformConsistency(t *testing.T) {
	// The decision must agree with the fully materialized value, in both
	// orders of operation.
	r := New(2)
	for i := 0; i < 200000; i++ {
		p := r.Float64()
		lu := NewLazyUniform(r)
		dec := lu.Above(p)
		val := lu.Value()
		if dec != (val > p) {
			t.Fatalf("decision %v inconsistent with value %v vs p %v", dec, val, p)
		}
		if val <= 0 || val >= 1 {
			t.Fatalf("materialized value out of (0,1): %v", val)
		}
	}
}

func TestLazyUniformMultipleComparisons(t *testing.T) {
	// Several comparisons against increasing thresholds must stay mutually
	// consistent with the final value.
	r := New(3)
	for i := 0; i < 50000; i++ {
		lu := NewLazyUniform(r)
		p1, p2 := 0.3, 0.7
		d1 := lu.Above(p1)
		d2 := lu.Above(p2)
		v := lu.Value()
		if d1 != (v > p1) || d2 != (v > p2) {
			t.Fatalf("inconsistent decisions d1=%v d2=%v for value %v", d1, d2, v)
		}
	}
}

func TestLazyUniformExpectedBits(t *testing.T) {
	// Each extra bit halves the ambiguous region, so decisions need an
	// expected ~2 bits regardless of p.
	r := New(4)
	total := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		lu := NewLazyUniform(r)
		lu.Above(0.37)
		total += lu.DecisionBits
	}
	avg := float64(total) / trials
	if avg > 4 {
		t.Errorf("average decision bits = %v, want O(1) (< 4)", avg)
	}
	if avg < 1 {
		t.Errorf("average decision bits = %v, impossibly low", avg)
	}
}

func TestLazyUniformExtremeP(t *testing.T) {
	r := New(5)
	lu := NewLazyUniform(r)
	if !lu.Above(-0.5) {
		t.Error("Above(-0.5) must be true")
	}
	if lu.Above(1.0) {
		t.Error("Above(1.0) must be false")
	}
	if lu.Above(1.5) {
		t.Error("Above(1.5) must be false")
	}
}

func TestThresholdExpDistribution(t *testing.T) {
	// P(key > u) = 1 - e^(-w/u).
	r := New(6)
	cases := []struct{ w, u float64 }{
		{1, 1}, {1, 10}, {5, 2}, {0.5, 4}, {100, 1000},
	}
	const trials = 100000
	for _, c := range cases {
		above := 0
		for i := 0; i < trials; i++ {
			te := NewThresholdExp(r, c.w)
			if te.Above(c.u) {
				above++
			}
		}
		got := float64(above) / trials
		want := -math.Expm1(-c.w / c.u)
		if math.Abs(got-want) > 0.006 {
			t.Errorf("P(key(w=%v) > %v) = %v, want %v", c.w, c.u, got, want)
		}
	}
}

func TestThresholdExpKeyConsistency(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		w := 1 + 9*r.Float64()
		u := 0.1 + 10*r.Float64()
		te := NewThresholdExp(r, w)
		above := te.Above(u)
		key := te.Key()
		if key <= 0 {
			t.Fatalf("non-positive key %v", key)
		}
		// Allow a sliver of float tolerance at the boundary (exp/log
		// round-trips); the algorithm itself re-checks v > u at the
		// coordinator so a boundary-grazing key is harmless.
		if above && key < u*(1-1e-9) {
			t.Fatalf("Above=true but key %v < threshold %v (w=%v)", key, u, w)
		}
		if !above && key > u*(1+1e-9) {
			t.Fatalf("Above=false but key %v > threshold %v (w=%v)", key, u, w)
		}
	}
}

func TestThresholdExpZeroThreshold(t *testing.T) {
	r := New(8)
	te := NewThresholdExp(r, 2)
	if !te.Above(0) {
		t.Error("Above(0) must always be true")
	}
	if te.DecisionBits() != 0 {
		t.Errorf("Above(0) consumed %d bits, want 0", te.DecisionBits())
	}
	if k := te.Key(); k <= 0 {
		t.Errorf("key %v", k)
	}
}

func TestThresholdExpKeyMatchesDirectDistribution(t *testing.T) {
	// The materialized key must follow the same distribution as w/Exp():
	// compare P(key > x) at several x between lazy and direct generation.
	r := New(9)
	const w, trials = 3.0, 200000
	thresholds := []float64{0.5, 1, 3, 10, 30}
	lazyCount := make([]int, len(thresholds))
	directCount := make([]int, len(thresholds))
	for i := 0; i < trials; i++ {
		te := NewThresholdExp(r, w)
		lk := te.Key()
		dk := r.ExpKey(w)
		for j, x := range thresholds {
			if lk > x {
				lazyCount[j]++
			}
			if dk > x {
				directCount[j]++
			}
		}
	}
	for j, x := range thresholds {
		lp := float64(lazyCount[j]) / trials
		dp := float64(directCount[j]) / trials
		want := -math.Expm1(-w / x)
		if math.Abs(lp-want) > 0.006 || math.Abs(dp-want) > 0.006 {
			t.Errorf("P(key > %v): lazy %v direct %v want %v", x, lp, dp, want)
		}
	}
}

func TestThresholdExpTotalBits(t *testing.T) {
	r := New(10)
	te := NewThresholdExp(r, 2)
	te.Above(1)
	_ = te.Key()
	if te.TotalBits() < te.DecisionBits() {
		t.Errorf("TotalBits %d < DecisionBits %d", te.TotalBits(), te.DecisionBits())
	}
	if te.TotalBits() < 53 {
		t.Errorf("materialized key used only %d bits", te.TotalBits())
	}
}

func TestLazyMaterializedValuesAreUniform(t *testing.T) {
	// KS test on materialized values after a decision: refinement must
	// not bias the final uniform.
	r := New(11)
	xs := make([]float64, 4000)
	for i := range xs {
		lu := NewLazyUniform(r)
		lu.Above(0.37) // decision first
		xs[i] = lu.Value()
	}
	d, p := ksAgainstUniform(xs)
	if p < 0.001 {
		t.Errorf("materialized values not uniform: D=%v p=%v", d, p)
	}
}

// ksAgainstUniform is a tiny local KS implementation to avoid importing
// internal/stats (which would create an import cycle in tests... it would
// not, but keeping xrand self-contained is cleaner).
func ksAgainstUniform(xs []float64) (dStat, p float64) {
	n := len(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		f := x
		if lo := f - float64(i)/float64(n); lo > dStat {
			dStat = lo
		}
		if hi := float64(i+1)/float64(n) - f; hi > dStat {
			dStat = hi
		}
	}
	lambda := (math.Sqrt(float64(n)) + 0.12 + 0.11/math.Sqrt(float64(n))) * dStat
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*lambda*lambda*float64(j)*float64(j))
		p += term
		sign = -sign
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	p *= 2
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return dStat, p
}
