package xrand

import "math"

// ExpKey returns the precision-sampling key v = w / t for a positive weight
// w, where t ~ Exp(1). By Proposition 1 of the paper, retaining the items
// with the s largest keys yields a weighted sample without replacement.
func (r *RNG) ExpKey(w float64) float64 {
	return w / r.Exp()
}

// TruncExpBelow returns an Exp(1) variate conditioned on being < bound,
// where bound > 0. Used to materialize keys that are known to exceed a
// threshold: v = w/t > u  <=>  t < w/u.
func (r *RNG) TruncExpBelow(bound float64) float64 {
	// CDF of Exp(1) on [0, bound): F(x) = (1-e^-x)/(1-e^-bound).
	// Inverse transform with V ~ U(0,1): x = -log(1 - V*(1-e^-bound)).
	if bound <= 0 {
		panic("xrand: TruncExpBelow requires bound > 0")
	}
	v := r.OpenFloat64()
	// -expm1(-bound) = 1 - e^-bound, computed stably for small bounds.
	p := -math.Expm1(-bound)
	x := -math.Log1p(-v * p)
	if x >= bound {
		// Floating-point edge: clamp strictly inside the support.
		x = bound * (1 - 1e-16)
	}
	if x <= 0 {
		x = bound * 1e-300
	}
	return x
}

// Binomial returns a Binomial(n, p) variate. It is exact (up to float64
// arithmetic in the geometric skip) and runs in O(1 + n*p) expected time,
// which matches its use here: the caller performs Θ(result) work anyway
// (one message per success).
func (r *RNG) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	if p > 0.5 {
		// Exploit symmetry so the geometric skips stay short.
		return n - r.Binomial(n, 1-p)
	}
	// Geometric skip ("waiting time") method: the gap between successes is
	// 1 + Geometric(p). ln(1-p) < 0 is precomputed once.
	x := 0
	i := 0
	logq := math.Log1p(-p)
	for {
		skip := int(math.Floor(math.Log(r.OpenFloat64()) / logq))
		i += skip + 1
		if i > n {
			return x
		}
		x++
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials, p in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("xrand: Geometric requires p > 0")
	}
	return int(math.Floor(math.Log(r.OpenFloat64()) / math.Log1p(-p)))
}

// Pareto returns a Pareto(alpha) variate with scale 1: density
// alpha/x^(alpha+1) on [1, inf). Smaller alpha means heavier tails.
func (r *RNG) Pareto(alpha float64) float64 {
	if alpha <= 0 {
		panic("xrand: Pareto requires alpha > 0")
	}
	return math.Pow(r.OpenFloat64(), -1/alpha)
}
