package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		g := r.OpenFloat64()
		if g <= 0 || g >= 1 {
			t.Fatalf("OpenFloat64 out of (0,1): %v", g)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(7)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumsq += f * f
	}
	mean := sum / n
	varc := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(varc-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", varc, 1.0/12)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(11)
	const n = 300000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x <= 0 {
			t.Fatalf("Exp returned non-positive %v", x)
		}
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	varc := sumsq/n - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want ~1", mean)
	}
	if math.Abs(varc-1) > 0.05 {
		t.Errorf("Exp variance = %v, want ~1", varc)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Errorf("Intn(10) bucket %d count %d deviates from %d", v, c, n/10)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestChooseProperties(t *testing.T) {
	r := New(5)
	f := func(nRaw, xRaw uint8) bool {
		n := int(nRaw%50) + 1
		x := int(xRaw) % (n + 1)
		got := r.Choose(n, x, nil)
		if len(got) != x {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChooseUniform(t *testing.T) {
	// Every element of 0..4 should appear in a size-2 subset w.p. 2/5.
	r := New(9)
	counts := make([]int, 5)
	const n = 50000
	for i := 0; i < n; i++ {
		for _, v := range r.Choose(5, 2, nil) {
			counts[v]++
		}
	}
	for v, c := range counts {
		want := float64(n) * 2 / 5
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("element %d chosen %d times, want ~%v", v, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := make([]int, 20)
	r.Perm(p)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(17)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide %d/1000 times", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation by Sebastiano Vigna.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 step %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(99)
	for i := 0; i < 37; i++ {
		r.Uint64()
	}
	snap := r.State()
	restored := NewFromState(snap)
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("restored stream diverges at draw %d: %#x vs %#x", i, a, b)
		}
	}
}

func TestNewFromStateRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFromState accepted the all-zero state")
		}
	}()
	NewFromState([4]uint64{})
}
