package xrand

import "math"

// LazyUniform is a uniform (0,1) variate whose bits are generated on
// demand, most significant first. After n bits the value is known to lie
// in [prefix/2^n, (prefix+1)/2^n); a comparison against a constant p can
// therefore be decided as soon as the interval excludes p, which takes an
// expected O(1) bits. This implements the machinery of Proposition 7 in
// the paper: a site can decide "does this item's key beat the epoch
// threshold?" without paying for a full-precision exponential, and only
// materializes the remaining bits when the item is actually sent.
//
// Refinement is capped at 53 bits. If a comparison is still ambiguous at
// the cap (probability 2^-53 per comparison) the fully materialized value
// decides it, so decisions are always consistent with Value().
type LazyUniform struct {
	rng    *RNG
	prefix uint64 // high bits generated so far
	n      uint   // number of bits in prefix (<= 53)
	buf    uint64 // buffered raw random bits
	bufn   uint   // number of valid bits in buf

	// DecisionBits counts bits consumed by Above calls; Bits counts all
	// bits consumed including materialization. Both are diagnostics for
	// the Proposition 7 experiments.
	DecisionBits int
	Bits         int
}

// NewLazyUniform returns a LazyUniform drawing bits from rng.
func NewLazyUniform(rng *RNG) LazyUniform {
	return LazyUniform{rng: rng}
}

const lazyMaxBits = 53

func (l *LazyUniform) nextBit() uint64 {
	if l.bufn == 0 {
		l.buf = l.rng.Uint64()
		l.bufn = 64
	}
	b := l.buf >> 63
	l.buf <<= 1
	l.bufn--
	l.Bits++
	return b
}

func (l *LazyUniform) refine() {
	l.prefix = l.prefix<<1 | l.nextBit()
	l.n++
}

// Above reports whether the variate is > p, refining only as many bits as
// needed to decide.
func (l *LazyUniform) Above(p float64) bool {
	if p < 0 {
		return true
	}
	if p >= 1 {
		return false
	}
	for {
		scale := math.Ldexp(1, -int(l.n)) // 2^-n
		lo := float64(l.prefix) * scale
		hi := lo + scale
		if lo > p {
			return true
		}
		if hi <= p {
			return false
		}
		if l.n >= lazyMaxBits {
			// Ambiguous at full precision: let the materialized value decide.
			return l.Value() > p
		}
		before := l.Bits
		l.refine()
		l.DecisionBits += l.Bits - before
	}
}

// Value materializes the variate to 53-bit precision and returns it. The
// returned value lies strictly inside (0, 1) and inside every interval
// used by earlier Above decisions, so it never contradicts them.
func (l *LazyUniform) Value() float64 {
	for l.n < lazyMaxBits {
		l.refine()
	}
	return (float64(l.prefix) + 0.5) * 0x1p-53
}

// ThresholdExp decides whether the precision-sampling key v = w/t
// (t ~ Exp(1)) of an item with weight w exceeds a threshold, and can then
// materialize the key. The underlying uniform U relates to the key by
// t = -ln(U), so v > u  <=>  t < w/u  <=>  U > e^(-w/u).
type ThresholdExp struct {
	lu LazyUniform
	w  float64
}

// NewThresholdExp prepares the key comparison for an item of weight w > 0.
func NewThresholdExp(rng *RNG, w float64) ThresholdExp {
	return ThresholdExp{lu: NewLazyUniform(rng), w: w}
}

// Above reports whether the item's key exceeds u. A non-positive threshold
// always passes (keys are strictly positive).
func (t *ThresholdExp) Above(u float64) bool {
	if u <= 0 {
		return true
	}
	p := math.Exp(-t.w / u)
	return t.lu.Above(p)
}

// Key materializes and returns the key v = w / (-ln U). It is consistent
// with every earlier Above decision.
func (t *ThresholdExp) Key() float64 {
	return t.w / -math.Log(t.lu.Value())
}

// DecisionBits returns the number of random bits consumed by Above calls.
func (t *ThresholdExp) DecisionBits() int { return t.lu.DecisionBits }

// TotalBits returns all random bits consumed, including materialization.
func (t *ThresholdExp) TotalBits() int { return t.lu.Bits }
