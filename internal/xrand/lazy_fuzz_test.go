package xrand

import (
	"math"
	"testing"
)

// FuzzLazyUniformConsistency drives the lazy uniform with arbitrary
// comparison points and checks the decisions stay consistent with the
// materialized value, for any seed.
func FuzzLazyUniformConsistency(f *testing.F) {
	f.Add(uint64(1), 0.5, 0.25)
	f.Add(uint64(2), 0.0, 1.0)
	f.Add(uint64(3), 1e-18, 1-1e-18)
	f.Fuzz(func(t *testing.T, seed uint64, p1, p2 float64) {
		if math.IsNaN(p1) || math.IsNaN(p2) {
			return
		}
		lu := NewLazyUniform(New(seed))
		d1 := lu.Above(p1)
		d2 := lu.Above(p2)
		v := lu.Value()
		if v <= 0 || v >= 1 {
			t.Fatalf("value %v out of (0,1)", v)
		}
		if p1 >= 0 && p1 < 1 && d1 != (v > p1) {
			t.Fatalf("decision for p1=%v inconsistent with value %v", p1, v)
		}
		if p2 >= 0 && p2 < 1 && d2 != (v > p2) {
			t.Fatalf("decision for p2=%v inconsistent with value %v", p2, v)
		}
	})
}

// FuzzThresholdExp checks the site-filter primitive never panics and
// produces keys consistent with its decisions for arbitrary weights and
// thresholds.
func FuzzThresholdExp(f *testing.F) {
	f.Add(uint64(1), 1.0, 2.0)
	f.Add(uint64(2), 1e-9, 1e12)
	f.Add(uint64(3), 1e12, 1e-9)
	f.Fuzz(func(t *testing.T, seed uint64, w, u float64) {
		if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) || math.IsNaN(u) || math.IsInf(u, 0) {
			return
		}
		te := NewThresholdExp(New(seed), w)
		above := te.Above(u)
		key := te.Key()
		if !(key > 0) {
			t.Fatalf("key %v not positive (w=%v)", key, w)
		}
		if u > 0 {
			if above && key < u*(1-1e-9) {
				t.Fatalf("Above=true but key %v << u %v", key, u)
			}
			if !above && key > u*(1+1e-9) {
				t.Fatalf("Above=false but key %v >> u %v", key, u)
			}
		}
	})
}
