package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialEdgeCases(t *testing.T) {
	r := New(1)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	if got := r.Binomial(10, -0.5); got != 0 {
		t.Errorf("Binomial(10, -0.5) = %d", got)
	}
	if got := r.Binomial(10, 1.5); got != 10 {
		t.Errorf("Binomial(10, 1.5) = %d", got)
	}
}

func TestBinomialRange(t *testing.T) {
	r := New(2)
	f := func(nRaw uint8, pRaw float64) bool {
		n := int(nRaw % 100)
		p := math.Abs(pRaw)
		p -= math.Floor(p) // p in [0,1)
		x := r.Binomial(n, p)
		return x >= 0 && x <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(3)
	cases := []struct {
		n int
		p float64
	}{
		{100, 0.01}, {100, 0.3}, {100, 0.7}, {1000, 0.001}, {10, 0.5},
	}
	const trials = 40000
	for _, c := range cases {
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			x := float64(r.Binomial(c.n, c.p))
			sum += x
			sumsq += x * x
		}
		mean := sum / trials
		varc := sumsq/trials - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		if math.Abs(mean-wantMean) > 5*math.Sqrt(wantVar/trials)+1e-9 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, wantMean)
		}
		if wantVar > 0 && math.Abs(varc-wantVar)/wantVar > 0.1 {
			t.Errorf("Binomial(%d,%v) var = %v, want %v", c.n, c.p, varc, wantVar)
		}
	}
}

func TestBinomialExactSmall(t *testing.T) {
	// Compare the empirical pmf of Binomial(5, 0.3) against the exact pmf.
	r := New(4)
	const n, p, trials = 5, 0.3, 200000
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		counts[r.Binomial(n, p)]++
	}
	// Exact pmf.
	choose := []float64{1, 5, 10, 10, 5, 1}
	for k := 0; k <= n; k++ {
		want := choose[k] * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k)) * trials
		got := float64(counts[k])
		if math.Abs(got-want) > 6*math.Sqrt(want)+1 {
			t.Errorf("pmf(%d): got %v, want %v", k, got, want)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(5)
	const p, trials = 0.2, 100000
	var sum float64
	for i := 0; i < trials; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatalf("Geometric returned %d", g)
		}
		sum += float64(g)
	}
	mean := sum / trials
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%v) mean = %v, want %v", p, mean, want)
	}
	if g := r.Geometric(1); g != 0 {
		t.Errorf("Geometric(1) = %d, want 0", g)
	}
}

func TestTruncExpBelow(t *testing.T) {
	r := New(6)
	for _, bound := range []float64{0.01, 0.5, 1, 5, 100} {
		var sum float64
		const trials = 50000
		for i := 0; i < trials; i++ {
			x := r.TruncExpBelow(bound)
			if x <= 0 || x >= bound {
				t.Fatalf("TruncExpBelow(%v) = %v out of (0, bound)", bound, x)
			}
			sum += x
		}
		// E[X | X < b] = 1 - b*e^-b/(1-e^-b) for Exp(1).
		want := 1 - bound*math.Exp(-bound)/(-math.Expm1(-bound))
		mean := sum / trials
		if math.Abs(mean-want) > 0.02*math.Max(want, 0.003)+0.002 {
			t.Errorf("TruncExpBelow(%v) mean = %v, want %v", bound, mean, want)
		}
	}
}

func TestParetoSupport(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		if x := r.Pareto(1.1); x < 1 {
			t.Fatalf("Pareto < 1: %v", x)
		}
	}
}

func TestExpKeyWeightedSelection(t *testing.T) {
	// P(key(w1) > key(w2)) must equal w1/(w1+w2): this is the heart of
	// precision sampling (Proposition 1 for s=1, n=2).
	r := New(8)
	cases := [][2]float64{{1, 1}, {3, 1}, {10, 1}, {2, 5}}
	const trials = 120000
	for _, c := range cases {
		wins := 0
		for i := 0; i < trials; i++ {
			if r.ExpKey(c[0]) > r.ExpKey(c[1]) {
				wins++
			}
		}
		got := float64(wins) / trials
		want := c[0] / (c[0] + c[1])
		if math.Abs(got-want) > 0.006 {
			t.Errorf("P(key(%v) beats key(%v)) = %v, want %v", c[0], c[1], got, want)
		}
	}
}

func TestTruncExpBelowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TruncExpBelow(0) did not panic")
		}
	}()
	New(1).TruncExpBelow(0)
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0) did not panic")
		}
	}()
	New(1).Pareto(0)
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestIntnNonPowerOfTwoRejection(t *testing.T) {
	// Exercise the Lemire rejection path with a bound just under 2^63.
	r := New(9)
	bound := (1 << 62) + 12345
	for i := 0; i < 1000; i++ {
		v := r.Intn(bound)
		if v < 0 || v >= bound {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}
