package xrand

import (
	"math"
	"testing"
)

func TestJumpZeroValueDisarmed(t *testing.T) {
	var j Jump
	if j.ArmedAt(1.0) || j.ArmedAt(0) {
		t.Fatal("zero-value Jump reports armed")
	}
	r := New(7)
	j.Arm(r, 2.5)
	if !j.ArmedAt(2.5) {
		t.Fatal("armed jump does not report ArmedAt its threshold")
	}
	if j.ArmedAt(2.0) {
		t.Fatal("jump reports armed at a threshold it was not armed against")
	}
	j.Disarm()
	if j.ArmedAt(2.5) {
		t.Fatal("Disarm did not disarm")
	}
}

func TestJumpOfferDisarmsOnLanding(t *testing.T) {
	r := New(11)
	const th = 3.0
	for trial := 0; trial < 1000; trial++ {
		var j Jump
		j.Arm(r, th)
		for j.ArmedAt(th) {
			if j.Offer(0.5) {
				if j.ArmedAt(th) {
					t.Fatal("jump still armed after landing")
				}
			}
		}
	}
}

// TestJumpPassProbability checks the per-item marginal: an item of
// weight w offered to a jump armed at u passes with p = 1 - e^(-w/u),
// including across heterogeneous weight sequences where the jump skips
// runs of items between landings.
func TestJumpPassProbability(t *testing.T) {
	r := New(42)
	const u = 10.0
	weights := []float64{0.5, 2.0, 7.5, 30.0}
	pass := make([]int, len(weights))
	total := make([]int, len(weights))
	const rounds = 200000
	var j Jump
	for i := 0; i < rounds; i++ {
		w := weights[i%len(weights)]
		if !j.ArmedAt(u) {
			j.Arm(r, u)
		}
		total[i%len(weights)]++
		if j.Offer(w) {
			pass[i%len(weights)]++
		}
	}
	for i, w := range weights {
		p := -math.Expm1(-w / u)
		got := float64(pass[i]) / float64(total[i])
		se := math.Sqrt(p * (1 - p) / float64(total[i]))
		if math.Abs(got-p) > 4.5*se {
			t.Errorf("weight %v: pass rate %v, want %v (±%v)", w, got, p, 4.5*se)
		}
	}
}

// TestJumpRearmMemoryless re-arms the jump at every item boundary
// (discarding the partially consumed jump) and checks the marginal pass
// probability is unchanged — the re-arm rule a site applies when a
// broadcast moves the threshold must be distribution-exact.
func TestJumpRearmMemoryless(t *testing.T) {
	r := New(1234)
	const u, w = 5.0, 1.5
	p := -math.Expm1(-w / u)
	const rounds = 200000
	pass := 0
	for i := 0; i < rounds; i++ {
		var j Jump
		j.Arm(r, u) // fresh jump per item = maximal re-arming
		if j.Offer(w) {
			pass++
		}
	}
	got := float64(pass) / float64(rounds)
	se := math.Sqrt(p * (1 - p) / float64(rounds))
	if math.Abs(got-p) > 4.5*se {
		t.Errorf("re-armed pass rate %v, want %v (±%v)", got, p, 4.5*se)
	}
}

// TestJumpSkipIdenticalMatchesGeometric checks SkipIdentical against
// the geometric law it replaces: the number of skipped copies before
// the first pass is Geometric(p) with p = 1 - e^(-w/u).
func TestJumpSkipIdenticalMatchesGeometric(t *testing.T) {
	rj := New(99)
	rg := New(100)
	const u, w = 20.0, 1.0
	p := -math.Expm1(-w / u)
	const rounds = 100000
	const n = 1 << 30 // effectively unbounded
	var sumJ, sumG, sqJ, sqG float64
	for i := 0; i < rounds; i++ {
		var j Jump
		j.Arm(rj, u)
		s := float64(j.SkipIdentical(w, n))
		sumJ += s
		sqJ += s * s
		g := float64(rg.Geometric(p))
		sumG += g
		sqG += g * g
	}
	meanJ, meanG := sumJ/rounds, sumG/rounds
	varJ := sqJ/rounds - meanJ*meanJ
	varG := sqG/rounds - meanG*meanG
	se := math.Sqrt((varJ + varG) / rounds)
	if math.Abs(meanJ-meanG) > 4.5*se {
		t.Errorf("skip mean %v vs geometric mean %v (se %v)", meanJ, meanG, se)
	}
	want := (1 - p) / p
	if math.Abs(meanJ-want) > 4.5*math.Sqrt(varJ/rounds) {
		t.Errorf("skip mean %v, want analytic %v", meanJ, want)
	}
}

// TestJumpSkipIdenticalBounded: when all n copies fail, the jump stays
// armed and charges exactly n·w of distance; when copy m+1 lands the
// jump disarms and 0 <= m < n.
func TestJumpSkipIdenticalBounded(t *testing.T) {
	r := New(5)
	const u, w = 1.0, 3.0 // heavy copies: lands almost immediately
	for trial := 0; trial < 10000; trial++ {
		var j Jump
		j.Arm(r, u)
		m := j.SkipIdentical(w, 4)
		if m < 0 || m > 4 {
			t.Fatalf("skip count %d out of range", m)
		}
		if m == 4 && !j.ArmedAt(u) {
			t.Fatal("all-skipped jump disarmed itself")
		}
		if m < 4 && j.ArmedAt(u) {
			t.Fatal("landed jump still armed")
		}
	}
}

// TestKeyAboveConditional: KeyAbove draws from {v = w/t : v > u}. Every
// key must exceed u, and the log-key distribution must match a direct
// rejection sampler for the same conditional law.
func TestKeyAboveConditional(t *testing.T) {
	rk := New(21)
	rr := New(22)
	const u, w = 4.0, 2.0
	const rounds = 100000
	var sumK, sqK float64
	for i := 0; i < rounds; i++ {
		v := KeyAbove(rk, w, u)
		if v <= u {
			t.Fatalf("KeyAbove returned %v <= threshold %v", v, u)
		}
		lt := math.Log(v)
		sumK += lt
		sqK += lt * lt
	}
	// Rejection reference: draw v = w/Exp(1) until v > u.
	var sumR, sqR float64
	for i := 0; i < rounds; i++ {
		for {
			v := rr.ExpKey(w)
			if v > u {
				lv := math.Log(v)
				sumR += lv
				sqR += lv * lv
				break
			}
		}
	}
	meanK, meanR := sumK/rounds, sumR/rounds
	varK := sqK/rounds - meanK*meanK
	varR := sqR/rounds - meanR*meanR
	se := math.Sqrt((varK + varR) / rounds)
	if math.Abs(meanK-meanR) > 4.5*se {
		t.Errorf("log-key mean %v vs rejection mean %v (se %v)", meanK, meanR, se)
	}
}

// TestJumpFirstPassIndex pins the full landing law on a heterogeneous
// run: P(first pass at item j) = e^(-C_{j-1}/u)·(1 - e^(-w_j/u)).
func TestJumpFirstPassIndex(t *testing.T) {
	r := New(2024)
	const u = 8.0
	weights := []float64{1, 4, 2, 9, 0.5}
	counts := make([]int, len(weights)+1) // last bucket = no landing
	const rounds = 200000
	for i := 0; i < rounds; i++ {
		var j Jump
		j.Arm(r, u)
		hit := len(weights)
		for idx, w := range weights {
			if j.Offer(w) {
				hit = idx
				break
			}
		}
		counts[hit]++
	}
	cum := 0.0
	for idx, w := range weights {
		p := math.Exp(-cum/u) * -math.Expm1(-w/u)
		got := float64(counts[idx]) / float64(rounds)
		se := math.Sqrt(p * (1 - p) / float64(rounds))
		if math.Abs(got-p) > 4.5*se {
			t.Errorf("landing at item %d: rate %v, want %v (±%v)", idx, got, p, 4.5*se)
		}
		cum += w
	}
}
