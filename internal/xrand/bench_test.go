package xrand

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(2)
	for i := 0; i < b.N; i++ {
		_ = r.Exp()
	}
}

func BenchmarkExpKey(b *testing.B) {
	r := New(3)
	for i := 0; i < b.N; i++ {
		_ = r.ExpKey(3.5)
	}
}

func BenchmarkThresholdExpDecisionOnly(b *testing.B) {
	// The Proposition 7 hot path: decide without materializing.
	r := New(4)
	for i := 0; i < b.N; i++ {
		te := NewThresholdExp(r, 1)
		_ = te.Above(100) // rarely passes: early exit
	}
}

func BenchmarkThresholdExpWithKey(b *testing.B) {
	r := New(5)
	for i := 0; i < b.N; i++ {
		te := NewThresholdExp(r, 1)
		if te.Above(0.5) {
			_ = te.Key()
		}
	}
}

func BenchmarkBinomialSmallP(b *testing.B) {
	r := New(6)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(10000, 1e-4)
	}
}

func BenchmarkGeometric(b *testing.B) {
	r := New(7)
	for i := 0; i < b.N; i++ {
		_ = r.Geometric(0.01)
	}
}
