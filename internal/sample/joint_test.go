package sample

import (
	"math"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func TestPairInclusionProbsBasics(t *testing.T) {
	// Uniform weights, s=2, n=4: P(both i and j) = 2/(4*3) * 2 = 1/6...
	// directly: number of ordered pairs = 12, each unordered pair has
	// probability 2 * (1/4)(1/3) = 1/6.
	p := PairInclusionProbs([]float64{1, 1, 1, 1}, 2)
	for i := 0; i < 4; i++ {
		if p[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v", i, i, p[i][i])
		}
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if math.Abs(p[i][j]-1.0/6) > 1e-12 {
				t.Errorf("pair [%d][%d] = %v, want 1/6", i, j, p[i][j])
			}
		}
	}
	// Sum over unordered pairs = C(s,2) = 1.
	var sum float64
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			sum += p[i][j]
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("pair sum = %v, want 1", sum)
	}
	// s < 2: all zero.
	p1 := PairInclusionProbs([]float64{1, 2, 3}, 1)
	for i := range p1 {
		for j := range p1[i] {
			if p1[i][j] != 0 {
				t.Errorf("s=1 pair prob [%d][%d] = %v", i, j, p1[i][j])
			}
		}
	}
}

func TestPairInclusionConsistentWithMarginals(t *testing.T) {
	// sum_j P(i,j both in) = (s-1) * P(i in).
	weights := []float64{1, 2, 4, 8, 16}
	const s = 3
	pair := PairInclusionProbs(weights, s)
	marg := InclusionProbs(weights, s)
	for i := range weights {
		var rowSum float64
		for j := range weights {
			rowSum += pair[i][j]
		}
		want := float64(s-1) * marg[i]
		if math.Abs(rowSum-want) > 1e-10 {
			t.Errorf("row %d sum = %v, want (s-1)*marginal = %v", i, rowSum, want)
		}
	}
}

func TestESMatchesExactJointLaw(t *testing.T) {
	// The joint (pairwise) inclusion law is what separates true SWOR from
	// independent-marginal schemes; validate ES against the enumeration
	// oracle.
	weights := []float64{1, 2, 4, 8}
	const s, trials = 2, 80000
	want := PairInclusionProbs(weights, s)
	rng := xrand.New(21)
	counts := make([][]float64, len(weights))
	for i := range counts {
		counts[i] = make([]float64, len(weights))
	}
	for tr := 0; tr < trials; tr++ {
		es := NewES(s, rng)
		for i, w := range weights {
			es.Observe(stream.Item{ID: uint64(i), Weight: w})
		}
		smp := es.Sample()
		for a := 0; a < len(smp); a++ {
			for b := a + 1; b < len(smp); b++ {
				i, j := smp[a].ID, smp[b].ID
				counts[i][j]++
				counts[j][i]++
			}
		}
	}
	for i := range weights {
		for j := range weights {
			if i == j {
				continue
			}
			got := counts[i][j] / trials
			sigma := math.Sqrt(want[i][j] * (1 - want[i][j]) / trials)
			if math.Abs(got-want[i][j]) > 5*sigma+1e-9 {
				t.Errorf("pair (%d,%d): got %v, want %v", i, j, got, want[i][j])
			}
		}
	}
}

func TestCascadeMatchesExactJointLaw(t *testing.T) {
	weights := []float64{1, 2, 4, 8}
	const s, trials = 2, 80000
	want := PairInclusionProbs(weights, s)
	rng := xrand.New(22)
	counts := make([][]float64, len(weights))
	for i := range counts {
		counts[i] = make([]float64, len(weights))
	}
	for tr := 0; tr < trials; tr++ {
		c := NewCascade(s, rng)
		for i, w := range weights {
			c.Observe(stream.Item{ID: uint64(i), Weight: w})
		}
		smp := c.Sample()
		for a := 0; a < len(smp); a++ {
			for b := a + 1; b < len(smp); b++ {
				i, j := smp[a].ID, smp[b].ID
				counts[i][j]++
				counts[j][i]++
			}
		}
	}
	for i := range weights {
		for j := range weights {
			if i == j {
				continue
			}
			got := counts[i][j] / trials
			sigma := math.Sqrt(want[i][j] * (1 - want[i][j]) / trials)
			if math.Abs(got-want[i][j]) > 5*sigma+1e-9 {
				t.Errorf("pair (%d,%d): got %v, want %v", i, j, got, want[i][j])
			}
		}
	}
}

func TestESOrderedFirstDrawLaw(t *testing.T) {
	// The largest key must be a single weighted draw: P = w_i / W.
	weights := []float64{2, 3, 5}
	const trials = 60000
	rng := xrand.New(23)
	counts := make([]float64, len(weights))
	for tr := 0; tr < trials; tr++ {
		es := NewES(1, rng)
		for i, w := range weights {
			es.Observe(stream.Item{ID: uint64(i), Weight: w})
		}
		counts[es.Sample()[0].ID]++
	}
	for i, w := range weights {
		got := counts[i] / trials
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Errorf("first draw P(%d) = %v, want %v", i, got, want)
		}
	}
}
