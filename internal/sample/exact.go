package sample

import "math"

// InclusionProbs computes, by exhaustive enumeration of the sequential
// SWOR process of Definition 1, the exact probability that each item
// belongs to a weighted sample without replacement of size s. It runs in
// O(n^s) time and exists purely as a ground-truth oracle for statistical
// tests (n and s must be small).
func InclusionProbs(weights []float64, s int) []float64 {
	n := len(weights)
	if s > n {
		s = n
	}
	probs := make([]float64, n)
	if s == 0 {
		return probs
	}
	var total float64
	for _, w := range weights {
		if !(w > 0) {
			panic("sample: InclusionProbs requires positive weights")
		}
		total += w
	}
	chosen := make([]bool, n)
	var rec func(depth int, pathP, remW float64)
	rec = func(depth int, pathP, remW float64) {
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			p := pathP * weights[i] / remW
			probs[i] += p
			if depth+1 < s {
				chosen[i] = true
				rec(depth+1, p, remW-weights[i])
				chosen[i] = false
			}
		}
	}
	rec(0, 1, total)
	return probs
}

// SWRInclusionProb returns the probability that an item of weight w is
// present in a size-s weighted sample with replacement over total weight
// W: 1 - (1 - w/W)^s.
func SWRInclusionProb(w, W float64, s int) float64 {
	return 1 - math.Pow(1-w/W, float64(s))
}

// PairInclusionProbs computes, by the same exhaustive enumeration as
// InclusionProbs, the exact probability that items i and j are *both* in
// a weighted SWOR of size s. The joint law distinguishes SWOR from
// schemes that merely match the marginals, so tests use it to validate
// the samplers' dependence structure. O(n^s) time; small inputs only.
func PairInclusionProbs(weights []float64, s int) [][]float64 {
	n := len(weights)
	if s > n {
		s = n
	}
	probs := make([][]float64, n)
	for i := range probs {
		probs[i] = make([]float64, n)
	}
	if s < 2 {
		return probs
	}
	var total float64
	for _, w := range weights {
		if !(w > 0) {
			panic("sample: PairInclusionProbs requires positive weights")
		}
		total += w
	}
	chosen := make([]int, 0, s)
	var rec func(depth int, pathP, remW float64)
	rec = func(depth int, pathP, remW float64) {
		if depth == s {
			for a := 0; a < len(chosen); a++ {
				for b := a + 1; b < len(chosen); b++ {
					i, j := chosen[a], chosen[b]
					probs[i][j] += pathP
					probs[j][i] += pathP
				}
			}
			return
		}
	outer:
		for i := 0; i < n; i++ {
			for _, c := range chosen {
				if c == i {
					continue outer
				}
			}
			chosen = append(chosen, i)
			rec(depth+1, pathP*weights[i]/remW, remW-weights[i])
			chosen = chosen[:len(chosen)-1]
		}
	}
	rec(0, 1, total)
	return probs
}
