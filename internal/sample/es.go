package sample

import (
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// ES is the Efraimidis–Spirakis one-pass weighted sampler without
// replacement: each item receives key v = w/t with t ~ Exp(1) and the s
// largest keys are retained. (Efraimidis–Spirakis state keys as u^(1/w)
// with u uniform; -ln turns one into the other, so the retained set is
// identical in distribution — and this form matches the paper's
// Proposition 1.) It is the centralized oracle the distributed sampler is
// validated against.
type ES struct {
	rng *xrand.RNG
	top *TopK[stream.Item]
	n   int
}

// NewES returns a weighted SWOR sampler of size s.
func NewES(s int, rng *xrand.RNG) *ES {
	return &ES{rng: rng, top: NewTopK[stream.Item](s)}
}

// Observe feeds one item; weights must be positive.
func (e *ES) Observe(it stream.Item) {
	e.ObserveWithKey(it, e.rng.ExpKey(it.Weight))
}

// ObserveWithKey feeds one item with an externally generated key. Tests
// use it to compare against brute force under identical randomness.
func (e *ES) ObserveWithKey(it stream.Item, key float64) {
	if !(it.Weight > 0) {
		panic("sample: ES requires positive weights")
	}
	e.n++
	e.top.Offer(key, it)
}

// N returns the number of items observed.
func (e *ES) N() int { return e.n }

// Sample returns the current weighted SWOR, largest key first. Its size
// is min(s, items observed).
func (e *ES) Sample() []stream.Item {
	entries := e.top.SortedDesc()
	out := make([]stream.Item, len(entries))
	for i, en := range entries {
		out[i] = en.Val
	}
	return out
}

// Keys returns the current retained keys, largest first.
func (e *ES) Keys() []float64 {
	entries := e.top.SortedDesc()
	out := make([]float64, len(entries))
	for i, en := range entries {
		out[i] = en.Key
	}
	return out
}

// Threshold returns the smallest retained key once the sample is full,
// else 0.
func (e *ES) Threshold() float64 {
	if !e.top.Full() {
		return 0
	}
	m, _ := e.top.Min()
	return m
}
