package sample

import (
	"math"
	"testing"

	"wrs/internal/stats"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func items(weights ...float64) []stream.Item {
	out := make([]stream.Item, len(weights))
	for i, w := range weights {
		out[i] = stream.Item{ID: uint64(i), Weight: w}
	}
	return out
}

// runInclusionTrial counts, over `trials` runs, how often each item is in
// the sample produced by build().
func runInclusionTrials(t *testing.T, its []stream.Item, trials int,
	build func() interface {
		Observe(stream.Item)
		Sample() []stream.Item
	}) []float64 {
	t.Helper()
	counts := make([]float64, len(its))
	for tr := 0; tr < trials; tr++ {
		s := build()
		for _, it := range its {
			s.Observe(it)
		}
		for _, it := range s.Sample() {
			counts[it.ID]++
		}
	}
	for i := range counts {
		counts[i] /= float64(trials)
	}
	return counts
}

func checkInclusion(t *testing.T, name string, got, want []float64, trials int) {
	t.Helper()
	for i := range got {
		sigma := math.Sqrt(want[i] * (1 - want[i]) / float64(trials))
		if math.Abs(got[i]-want[i]) > 5*sigma+1e-9 {
			t.Errorf("%s: item %d inclusion = %v, want %v (5 sigma = %v)",
				name, i, got[i], want[i], 5*sigma)
		}
	}
}

func TestExactInclusionProbsBasics(t *testing.T) {
	// Uniform weights: inclusion = s/n for everyone.
	p := InclusionProbs([]float64{2, 2, 2, 2}, 2)
	for i, v := range p {
		if math.Abs(v-0.5) > 1e-12 {
			t.Errorf("uniform inclusion[%d] = %v", i, v)
		}
	}
	// Probabilities sum to s.
	p = InclusionProbs([]float64{1, 2, 3, 4, 5}, 3)
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-3) > 1e-12 {
		t.Errorf("inclusion sum = %v, want 3", sum)
	}
	// Monotone in weight.
	for i := 1; i < len(p); i++ {
		if p[i] < p[i-1] {
			t.Errorf("inclusion not monotone: %v", p)
		}
	}
	// s >= n: everything included.
	p = InclusionProbs([]float64{1, 9}, 5)
	if p[0] != 1 || p[1] != 1 {
		t.Errorf("s >= n inclusion = %v", p)
	}
	// Single draw: proportional to weight.
	p = InclusionProbs([]float64{1, 3}, 1)
	if math.Abs(p[0]-0.25) > 1e-12 || math.Abs(p[1]-0.75) > 1e-12 {
		t.Errorf("single draw = %v", p)
	}
}

func TestESMatchesExactSWOR(t *testing.T) {
	rng := xrand.New(10)
	its := items(1, 2, 4, 8, 16)
	want := InclusionProbs([]float64{1, 2, 4, 8, 16}, 2)
	const trials = 60000
	got := runInclusionTrials(t, its, trials, func() interface {
		Observe(stream.Item)
		Sample() []stream.Item
	} {
		return NewES(2, rng)
	})
	checkInclusion(t, "ES", got, want, trials)
}

func TestCascadeMatchesExactSWOR(t *testing.T) {
	rng := xrand.New(11)
	its := items(1, 2, 4, 8, 16)
	want := InclusionProbs([]float64{1, 2, 4, 8, 16}, 2)
	const trials = 60000
	got := runInclusionTrials(t, its, trials, func() interface {
		Observe(stream.Item)
		Sample() []stream.Item
	} {
		return NewCascade(2, rng)
	})
	checkInclusion(t, "Cascade", got, want, trials)
}

func TestCascadeFirstLevelIsSingleDraw(t *testing.T) {
	// Level 1 of the cascade must be a plain single weighted sample.
	rng := xrand.New(12)
	its := items(1, 5, 2)
	counts := make([]float64, 3)
	const trials = 60000
	for tr := 0; tr < trials; tr++ {
		c := NewCascade(1, rng)
		for _, it := range its {
			c.Observe(it)
		}
		counts[c.Sample()[0].ID]++
	}
	for i, w := range []float64{1, 5, 2} {
		got := counts[i] / trials
		want := w / 8
		if math.Abs(got-want) > 0.01 {
			t.Errorf("level-1 P(item %d) = %v, want %v", i, got, want)
		}
	}
}

func TestESSampleShape(t *testing.T) {
	rng := xrand.New(13)
	e := NewES(3, rng)
	if len(e.Sample()) != 0 {
		t.Fatal("empty sampler returned items")
	}
	e.Observe(stream.Item{ID: 1, Weight: 2})
	if len(e.Sample()) != 1 {
		t.Fatal("size after 1 item != 1")
	}
	for i := 2; i <= 10; i++ {
		e.Observe(stream.Item{ID: uint64(i), Weight: float64(i)})
	}
	s := e.Sample()
	if len(s) != 3 {
		t.Fatalf("size = %d, want 3", len(s))
	}
	seen := map[uint64]bool{}
	for _, it := range s {
		if seen[it.ID] {
			t.Fatalf("duplicate id %d in SWOR sample", it.ID)
		}
		seen[it.ID] = true
	}
	keys := e.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i] > keys[i-1] {
			t.Fatal("keys not sorted desc")
		}
	}
	if th := e.Threshold(); th != keys[len(keys)-1] {
		t.Fatalf("threshold %v != smallest key %v", th, keys[len(keys)-1])
	}
}

func TestSWRInclusion(t *testing.T) {
	rng := xrand.New(14)
	weights := []float64{1, 2, 4, 8, 16}
	its := items(weights...)
	var W float64
	for _, w := range weights {
		W += w
	}
	const s, trials = 3, 60000
	counts := make([]float64, len(its))
	for tr := 0; tr < trials; tr++ {
		sw := NewSWR(s, rng)
		for _, it := range its {
			sw.Observe(it)
		}
		seen := map[uint64]bool{}
		for _, it := range sw.Sample() {
			if !seen[it.ID] {
				seen[it.ID] = true
				counts[it.ID]++
			}
		}
	}
	for i, w := range weights {
		got := counts[i] / trials
		want := SWRInclusionProb(w, W, s)
		sigma := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(got-want) > 5*sigma+1e-9 {
			t.Errorf("SWR inclusion[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestSWRSlotsIndependent(t *testing.T) {
	// P(slot0 = heavy AND slot1 = heavy) must equal P(slot=heavy)^2.
	rng := xrand.New(15)
	its := items(1, 1, 8)
	const trials = 60000
	both, single := 0.0, 0.0
	for tr := 0; tr < trials; tr++ {
		sw := NewSWR(2, rng)
		for _, it := range its {
			sw.Observe(it)
		}
		s := sw.Sample()
		if s[0].ID == 2 {
			single++
		}
		if s[0].ID == 2 && s[1].ID == 2 {
			both++
		}
	}
	p := single / trials
	pBoth := both / trials
	if math.Abs(pBoth-p*p) > 0.01 {
		t.Errorf("joint = %v, product = %v: slots not independent", pBoth, p*p)
	}
	if math.Abs(p-0.8) > 0.01 {
		t.Errorf("marginal = %v, want 0.8", p)
	}
}

func TestReservoirUniformInclusion(t *testing.T) {
	for _, mode := range []string{"R", "L"} {
		rng := xrand.New(16)
		const n, s, trials = 30, 5, 30000
		counts := make([]float64, n)
		for tr := 0; tr < trials; tr++ {
			var r *Reservoir
			if mode == "R" {
				r = NewReservoir(s, rng)
			} else {
				r = NewReservoirL(s, rng)
			}
			for i := 0; i < n; i++ {
				r.Observe(stream.Item{ID: uint64(i), Weight: 1})
			}
			if got := len(r.Sample()); got != s {
				t.Fatalf("%s: sample size %d", mode, got)
			}
			for _, it := range r.Sample() {
				counts[it.ID]++
			}
		}
		want := float64(s) / n
		sigma := math.Sqrt(want * (1 - want) / trials)
		for i := range counts {
			got := counts[i] / trials
			if math.Abs(got-want) > 5.5*sigma {
				t.Errorf("%s: inclusion[%d] = %v, want %v", mode, i, got, want)
			}
		}
	}
}

func TestPriorityUnbiasedSubsetSum(t *testing.T) {
	rng := xrand.New(17)
	its := items(3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7)
	var evenSum float64
	for _, it := range its {
		if it.ID%2 == 0 {
			evenSum += it.Weight
		}
	}
	const trials = 40000
	var est []float64
	for tr := 0; tr < trials; tr++ {
		p := NewPriority(5, rng)
		for _, it := range its {
			p.Observe(it)
		}
		est = append(est, p.EstimateSubset(func(it stream.Item) bool { return it.ID%2 == 0 }))
	}
	mean := stats.Mean(est)
	se := stats.StdDev(est) / math.Sqrt(trials)
	if math.Abs(mean-evenSum) > 5*se {
		t.Errorf("priority subset estimate = %v +- %v, want %v", mean, se, evenSum)
	}
}

func TestPriorityTotalEstimate(t *testing.T) {
	rng := xrand.New(18)
	its := items(10, 20, 30, 40)
	p := NewPriority(10, rng) // s >= n: estimate must be exact
	for _, it := range its {
		p.Observe(it)
	}
	if got := p.EstimateTotal(); math.Abs(got-100) > 1e-9 {
		t.Errorf("full-retention estimate = %v, want 100", got)
	}
}

func TestSamplersRejectNonPositiveWeights(t *testing.T) {
	rng := xrand.New(19)
	bad := stream.Item{ID: 0, Weight: 0}
	for name, fn := range map[string]func(){
		"ES":       func() { NewES(2, rng).Observe(bad) },
		"SWR":      func() { NewSWR(2, rng).Observe(bad) },
		"Cascade":  func() { NewCascade(2, rng).Observe(bad) },
		"Priority": func() { NewPriority(2, rng).Observe(bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted weight 0", name)
				}
			}()
			fn()
		}()
	}
}
