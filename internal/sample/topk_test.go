package sample

import (
	"sort"
	"testing"
	"testing/quick"

	"wrs/internal/xrand"
)

func TestTopKBruteForce(t *testing.T) {
	rng := xrand.New(1)
	f := func(kRaw uint8, nRaw uint16) bool {
		k := int(kRaw%20) + 1
		n := int(nRaw % 300)
		top := NewTopK[int](k)
		keys := make([]float64, n)
		for i := 0; i < n; i++ {
			keys[i] = rng.Float64()
			top.Offer(keys[i], i)
		}
		// Brute-force top-k keys.
		sorted := append([]float64(nil), keys...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		want := sorted
		if len(want) > k {
			want = want[:k]
		}
		got := top.SortedDesc()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Key != want[i] {
				return false
			}
		}
		// Min must match the smallest retained key.
		if len(want) > 0 {
			m, ok := top.Min()
			if !ok || m != want[len(want)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTopKEviction(t *testing.T) {
	top := NewTopK[string](2)
	_, _, ev, acc := top.Offer(1, "a")
	if ev || !acc {
		t.Fatal("first offer should be accepted without eviction")
	}
	top.Offer(2, "b")
	evKey, evVal, ev, acc := top.Offer(3, "c")
	if !ev || !acc || evKey != 1 || evVal != "a" {
		t.Fatalf("expected eviction of (1, a), got (%v, %v, %v, %v)", evKey, evVal, ev, acc)
	}
	evKey, evVal, ev, acc = top.Offer(0.5, "d")
	if !ev || acc || evKey != 0.5 || evVal != "d" {
		t.Fatalf("low offer should bounce: (%v, %v, %v, %v)", evKey, evVal, ev, acc)
	}
}

func TestTopKSortLargeSlice(t *testing.T) {
	rng := xrand.New(2)
	top := NewTopK[int](500)
	for i := 0; i < 2000; i++ {
		top.Offer(rng.Float64(), i)
	}
	got := top.SortedDesc()
	if len(got) != 500 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key > got[i-1].Key {
			t.Fatalf("not sorted desc at %d", i)
		}
	}
}

func TestTopKReset(t *testing.T) {
	top := NewTopK[int](3)
	top.Offer(1, 1)
	top.Reset()
	if top.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	if _, ok := top.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
}
