package sample

import (
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// SWR is a sequential weighted sampler with replacement: s independent
// single-item weighted samplers, each retaining the item with the maximum
// precision-sampling key it has seen. Slot i therefore holds item e with
// probability w_e/W independently across slots, which is exactly
// Definition 2 of the paper.
type SWR struct {
	rng   *xrand.RNG
	best  []float64
	items []stream.Item
	n     int
	w     float64
}

// NewSWR returns a weighted SWR sampler of size s.
func NewSWR(s int, rng *xrand.RNG) *SWR {
	if s < 1 {
		panic("sample: NewSWR requires s >= 1")
	}
	return &SWR{rng: rng, best: make([]float64, s), items: make([]stream.Item, s)}
}

// Observe feeds one item; weights must be positive.
func (s *SWR) Observe(it stream.Item) {
	if !(it.Weight > 0) {
		panic("sample: SWR requires positive weights")
	}
	s.n++
	s.w += it.Weight
	for i := range s.best {
		if key := s.rng.ExpKey(it.Weight); key > s.best[i] {
			s.best[i] = key
			s.items[i] = it
		}
	}
}

// Sample returns the current with-replacement sample of size s (slots
// observed no items are absent; before any item arrives the sample is
// empty).
func (s *SWR) Sample() []stream.Item {
	if s.n == 0 {
		return nil
	}
	return append([]stream.Item(nil), s.items...)
}

// N returns the number of observed items; TotalWeight the sum of weights.
func (s *SWR) N() int               { return s.n }
func (s *SWR) TotalWeight() float64 { return s.w }
