package sample

import (
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func BenchmarkTopKOffer(b *testing.B) {
	rng := xrand.New(1)
	top := NewTopK[int](64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.Offer(rng.Float64(), i)
	}
}

func BenchmarkESObserve(b *testing.B) {
	es := NewES(64, xrand.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		es.Observe(stream.Item{ID: uint64(i), Weight: 1 + float64(i%100)})
	}
}

func BenchmarkReservoirL(b *testing.B) {
	r := NewReservoirL(64, xrand.New(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe(stream.Item{ID: uint64(i), Weight: 1})
	}
}

func BenchmarkCascadeObserve(b *testing.B) {
	c := NewCascade(16, xrand.New(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(stream.Item{ID: uint64(i), Weight: 1 + float64(i%100)})
	}
}

func BenchmarkPriorityObserve(b *testing.B) {
	p := NewPriority(64, xrand.New(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(stream.Item{ID: uint64(i), Weight: 1 + float64(i%100)})
	}
}
