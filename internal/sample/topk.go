// Package sample implements the centralized (single-stream) samplers that
// the distributed algorithms are built from and validated against:
//
//   - Efraimidis–Spirakis weighted sampling without replacement (the
//     sequential analogue of the paper's precision sampling),
//   - Vitter's reservoir sampling, algorithms R and L (the unweighted
//     classic the paper generalizes),
//   - sequential weighted sampling with replacement,
//   - priority sampling (Duffield–Lund–Thorup), a related key-based
//     scheme for subset-sum estimation,
//   - cascade sampling in the style of Braverman–Ostrovsky–Vorsanger,
//   - an exact brute-force oracle for weighted-SWOR inclusion
//     probabilities, used by the statistical tests.
package sample

// Entry is a keyed payload held by TopK.
type Entry[T any] struct {
	Key float64
	Val T
}

// TopK retains the k entries with the largest keys seen so far, using a
// min-heap so each offer is O(log k). Ties are broken arbitrarily; the
// samplers built on top of it use continuous keys, so ties occur with
// probability zero.
type TopK[T any] struct {
	k int
	h []Entry[T]
}

// NewTopK returns a TopK retaining the k largest-keyed entries, k >= 1.
func NewTopK[T any](k int) *TopK[T] {
	if k < 1 {
		panic("sample: NewTopK requires k >= 1")
	}
	return &TopK[T]{k: k}
}

// Len returns the number of retained entries (<= k).
func (t *TopK[T]) Len() int { return len(t.h) }

// K returns the retention capacity.
func (t *TopK[T]) K() int { return t.k }

// Min returns the smallest retained key. ok is false when empty.
func (t *TopK[T]) Min() (key float64, ok bool) {
	if len(t.h) == 0 {
		return 0, false
	}
	return t.h[0].Key, true
}

// Full reports whether k entries are retained.
func (t *TopK[T]) Full() bool { return len(t.h) == t.k }

// Offer inserts (key, val). If the structure overflows, the entry with
// the smallest key is evicted and returned with evicted=true. accepted
// reports whether the offered entry itself was retained.
func (t *TopK[T]) Offer(key float64, val T) (evKey float64, evVal T, evicted, accepted bool) {
	if len(t.h) < t.k {
		t.h = append(t.h, Entry[T]{key, val})
		t.up(len(t.h) - 1)
		return 0, evVal, false, true
	}
	if key <= t.h[0].Key {
		return key, val, true, false
	}
	ev := t.h[0]
	t.h[0] = Entry[T]{key, val}
	t.down(0)
	return ev.Key, ev.Val, true, true
}

// Items returns the retained entries in arbitrary (heap) order. The
// returned slice aliases internal storage; callers must not modify it.
func (t *TopK[T]) Items() []Entry[T] { return t.h }

// SortedDesc returns a fresh slice of the retained entries sorted by
// descending key.
func (t *TopK[T]) SortedDesc() []Entry[T] {
	out := append([]Entry[T](nil), t.h...)
	// Simple heapsort-free path: small k, use insertion-friendly sort.
	sortEntriesDesc(out)
	return out
}

// Reset empties the structure, retaining capacity.
func (t *TopK[T]) Reset() { t.h = t.h[:0] }

func (t *TopK[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.h[parent].Key <= t.h[i].Key {
			break
		}
		t.h[parent], t.h[i] = t.h[i], t.h[parent]
		i = parent
	}
}

func (t *TopK[T]) down(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && t.h[l].Key < t.h[small].Key {
			small = l
		}
		if r < n && t.h[r].Key < t.h[small].Key {
			small = r
		}
		if small == i {
			return
		}
		t.h[i], t.h[small] = t.h[small], t.h[i]
		i = small
	}
}

func sortEntriesDesc[T any](es []Entry[T]) {
	// Insertion sort is fine for sample-sized slices; switch to a
	// pivot-based sort for larger ones.
	if len(es) > 64 {
		quickSortDesc(es)
		return
	}
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].Key < e.Key {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

func quickSortDesc[T any](es []Entry[T]) {
	for len(es) > 32 {
		p := partitionDesc(es)
		if p < len(es)-p {
			quickSortDesc(es[:p])
			es = es[p+1:]
		} else {
			quickSortDesc(es[p+1:])
			es = es[:p]
		}
	}
	sortEntriesDesc(es)
}

func partitionDesc[T any](es []Entry[T]) int {
	mid := len(es) / 2
	es[mid], es[len(es)-1] = es[len(es)-1], es[mid]
	pivot := es[len(es)-1].Key
	i := 0
	for j := 0; j < len(es)-1; j++ {
		if es[j].Key > pivot {
			es[i], es[j] = es[j], es[i]
			i++
		}
	}
	es[i], es[len(es)-1] = es[len(es)-1], es[i]
	return i
}
