package sample

import (
	"math"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Priority implements priority sampling (Duffield–Lund–Thorup, J.ACM
// 2007), the subset-sum estimation scheme the paper cites as a relative
// of precision sampling: each item gets priority w/u with u ~ U(0,1); the
// sampler keeps the s+1 largest priorities and estimates any subset sum
// as the sum over retained subset members of max(w_i, tau), where tau is
// the (s+1)-th priority.
type Priority struct {
	rng *xrand.RNG
	top *TopK[stream.Item]
	s   int
	n   int
}

// NewPriority returns a priority sampler with sample size s (it retains
// s+1 items internally).
func NewPriority(s int, rng *xrand.RNG) *Priority {
	if s < 1 {
		panic("sample: NewPriority requires s >= 1")
	}
	return &Priority{rng: rng, top: NewTopK[stream.Item](s + 1), s: s}
}

// Observe feeds one item.
func (p *Priority) Observe(it stream.Item) {
	if !(it.Weight > 0) {
		panic("sample: Priority requires positive weights")
	}
	p.n++
	p.top.Offer(it.Weight/p.rng.OpenFloat64(), it)
}

// Tau returns the threshold (the (s+1)-th largest priority), or 0 when
// fewer than s+1 items have been observed.
func (p *Priority) Tau() float64 {
	if !p.top.Full() {
		return 0
	}
	m, _ := p.top.Min()
	return m
}

// EstimateSubset returns the unbiased estimate of the total weight of
// items satisfying pred.
func (p *Priority) EstimateSubset(pred func(stream.Item) bool) float64 {
	tau := p.Tau()
	entries := p.top.SortedDesc()
	if p.top.Full() {
		entries = entries[:p.s] // exclude the threshold item itself
	}
	var est float64
	for _, e := range entries {
		if pred(e.Val) {
			est += math.Max(e.Val.Weight, tau)
		}
	}
	return est
}

// EstimateTotal returns the unbiased estimate of the total stream weight.
func (p *Priority) EstimateTotal() float64 {
	return p.EstimateSubset(func(stream.Item) bool { return true })
}

// N returns the number of observed items.
func (p *Priority) N() int { return p.n }
