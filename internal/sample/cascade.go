package sample

import (
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Cascade implements cascade sampling in the style of Braverman,
// Ostrovsky and Vorsanger (IPL 2015): a chain of s single-item weighted
// samplers. Every arriving item is offered to level 1; at each level the
// incumbent and the offer compete (the offer wins with probability
// w/W_level where W_level counts all weight offered to that level) and
// the loser cascades to the next level. Level ell therefore holds the
// ell-th draw of a weighted SWOR, giving a second, structurally different
// sequential oracle to validate the distributed sampler against.
type Cascade struct {
	rng    *xrand.RNG
	levels []cascadeLevel
	n      int
}

type cascadeLevel struct {
	item     stream.Item
	w        float64
	occupied bool
}

// NewCascade returns a cascade sampler of size s.
func NewCascade(s int, rng *xrand.RNG) *Cascade {
	if s < 1 {
		panic("sample: NewCascade requires s >= 1")
	}
	return &Cascade{rng: rng, levels: make([]cascadeLevel, s)}
}

// Observe feeds one item; weights must be positive.
func (c *Cascade) Observe(it stream.Item) {
	if !(it.Weight > 0) {
		panic("sample: Cascade requires positive weights")
	}
	c.n++
	cur := it
	for i := range c.levels {
		lv := &c.levels[i]
		lv.w += cur.Weight
		if !lv.occupied {
			lv.item = cur
			lv.occupied = true
			return
		}
		if c.rng.Float64() < cur.Weight/lv.w {
			cur, lv.item = lv.item, cur // offer accepted; incumbent cascades
		}
		// else the offer itself cascades
	}
}

// Sample returns the held items in draw order (level 1 first). Its size
// is min(s, items observed).
func (c *Cascade) Sample() []stream.Item {
	var out []stream.Item
	for _, lv := range c.levels {
		if lv.occupied {
			out = append(out, lv.item)
		}
	}
	return out
}

// N returns the number of observed items.
func (c *Cascade) N() int { return c.n }
