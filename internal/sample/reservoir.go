package sample

import (
	"math"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Reservoir is Vitter's classic unweighted reservoir sampler (Algorithm R
// by default, the skip-based Algorithm L when constructed with
// NewReservoirL). The paper's distributed weighted SWOR degenerates to
// this distribution when all weights are 1, which the tests exploit.
type Reservoir struct {
	rng  *xrand.RNG
	buf  []stream.Item
	s    int
	n    int
	useL bool
	// Algorithm L state.
	wExp float64
	next int
}

// NewReservoir returns an Algorithm R reservoir of size s.
func NewReservoir(s int, rng *xrand.RNG) *Reservoir {
	if s < 1 {
		panic("sample: NewReservoir requires s >= 1")
	}
	return &Reservoir{rng: rng, s: s}
}

// NewReservoirL returns an Algorithm L (geometric-skip) reservoir of size
// s. It observes the same distribution as Algorithm R but performs
// expected O(s log(n/s)) random draws instead of n.
func NewReservoirL(s int, rng *xrand.RNG) *Reservoir {
	r := NewReservoir(s, rng)
	r.useL = true
	r.wExp = math.Exp(math.Log(rng.OpenFloat64()) / float64(s))
	r.next = s - 1 + r.skip()
	return r
}

func (r *Reservoir) skip() int {
	return int(math.Floor(math.Log(r.rng.OpenFloat64())/math.Log1p(-r.wExp))) + 1
}

// Observe feeds one item.
func (r *Reservoir) Observe(it stream.Item) {
	r.n++
	if len(r.buf) < r.s {
		r.buf = append(r.buf, it)
		return
	}
	if r.useL {
		if r.n-1 == r.next { // 0-based index of current item is r.n-1
			r.buf[r.rng.Intn(r.s)] = it
			r.wExp *= math.Exp(math.Log(r.rng.OpenFloat64()) / float64(r.s))
			r.next += r.skip()
		}
		return
	}
	// Algorithm R: replace a random slot with probability s/n.
	if j := r.rng.Intn(r.n); j < r.s {
		r.buf[j] = it
	}
}

// Sample returns the current sample (size min(s, n)), in slot order.
func (r *Reservoir) Sample() []stream.Item {
	return append([]stream.Item(nil), r.buf...)
}

// N returns the number of observed items.
func (r *Reservoir) N() int { return r.n }
