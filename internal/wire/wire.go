// Package wire provides the binary wire format for the protocol messages
// and length-prefixed framing, so the samplers can run over real network
// transports (see package transport). The encoding is fixed-layout
// little-endian; every message fits in O(1) machine words, matching the
// paper's accounting (Proposition 7).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"wrs/internal/core"
	"wrs/internal/stream"
)

// Frame layout: 4-byte little-endian payload length, then the payload.
// Message payload layout (fixed 29 bytes):
//
//	offset 0  : kind (1 byte)
//	offset 1  : item ID (8 bytes)
//	offset 9  : item weight (8 bytes, IEEE-754)
//	offset 17 : key / threshold (8 bytes, IEEE-754; kind-dependent)
//	offset 25 : level / sequence stamp (4 bytes, int32; kind-dependent)
//
// Sequence-stamped frames: the windowed application's messages
// (core.MsgWindow, core.MsgClock) carry a shard-local sequence stamp —
// core.WindowStamp packing the site-local arrival position with the
// site id — in the int32 level slot, so sliding-window candidates and
// clock advances ride the same 29-byte layout, the same batch frames,
// and the same shard tags as every other message; stamps are bounded
// by core.MaxWindowStamp and the site errors before overflowing.
//
// A frame whose payload length is a positive multiple of MessageSize is
// a batch frame: the concatenation of one or more encoded messages in
// order. A single message is the degenerate batch of one, so readers
// only need the batch path (see ForEachMessage).
//
// A shard-tagged batch frame prefixes the batch with a 3-byte header —
// the marker byte ShardMarker followed by a little-endian uint16 shard
// index — so one connection can multiplex P protocol shards without
// P×k connections. The marker is unambiguous: a plain batch frame
// starts with a message kind (0..3), control frames are 1 byte, and
// ShardMarker is neither.
const (
	payloadLen = 29
	// MessageSize is the fixed encoded size of one protocol message.
	MessageSize = payloadLen

	// Field offsets within an encoded message. Exported so in-place
	// frame rewriting (the ingest benchmark harness re-stamps window
	// messages without re-encoding) shares the layout with
	// AppendMessage/ParseMessage instead of duplicating magic offsets.
	KindOffset   = 0  // 1 byte
	IDOffset     = 1  // 8 bytes
	WeightOffset = 9  // 8 bytes, IEEE-754
	AuxOffset    = 17 // 8 bytes, IEEE-754: key or threshold
	LevelOffset  = 25 // 4 bytes, int32: level or sequence stamp
	// MaxFrameSize bounds incoming frames; anything larger is a protocol
	// violation.
	MaxFrameSize = 1 << 16

	// ShardMarker is the first byte of a shard-tagged batch frame.
	ShardMarker = 0xF5
	// ShardHeaderSize is the length of the shard tag prefix.
	ShardHeaderSize = 3
	// MaxShard is the largest encodable shard index.
	MaxShard = 1<<16 - 1

	// PingByte and PongByte are the 1-byte control frame payloads of the
	// bounded-staleness flow control (DESIGN.md): a site (or relay) writes
	// a ping frame after its staleness window fills, and the pong coming
	// back proves the full upstream path has processed everything sent
	// before it. They are unambiguous on the wire: a control frame is 1
	// byte, a message frame is a multiple of MessageSize, and a
	// shard-tagged frame starts with ShardMarker.
	PingByte = 200
	PongByte = 201
)

// IsPing reports whether a frame payload is the flow-control ping.
func IsPing(payload []byte) bool { return len(payload) == 1 && payload[0] == PingByte }

// IsPong reports whether a frame payload is the flow-control pong.
func IsPong(payload []byte) bool { return len(payload) == 1 && payload[0] == PongByte }

// AppendMessage appends the encoded message to dst and returns it.
func AppendMessage(dst []byte, m core.Message) []byte {
	var buf [payloadLen]byte
	buf[KindOffset] = byte(m.Kind)
	binary.LittleEndian.PutUint64(buf[IDOffset:], m.Item.ID)
	binary.LittleEndian.PutUint64(buf[WeightOffset:], math.Float64bits(m.Item.Weight))
	aux := m.Key
	if m.Kind == core.MsgEpochUpdate {
		aux = m.Threshold
	}
	binary.LittleEndian.PutUint64(buf[AuxOffset:], math.Float64bits(aux))
	binary.LittleEndian.PutUint32(buf[LevelOffset:], uint32(int32(m.Level)))
	return append(dst, buf[:]...)
}

// ParseMessage decodes a message encoded by AppendMessage.
func ParseMessage(b []byte) (core.Message, error) {
	if len(b) != payloadLen {
		return core.Message{}, fmt.Errorf("wire: payload length %d, want %d", len(b), payloadLen)
	}
	kind := core.MsgKind(b[KindOffset])
	if kind > core.MsgClock {
		return core.Message{}, fmt.Errorf("wire: unknown message kind %d", b[KindOffset])
	}
	m := core.Message{
		Kind: kind,
		Item: stream.Item{
			ID:     binary.LittleEndian.Uint64(b[IDOffset:]),
			Weight: math.Float64frombits(binary.LittleEndian.Uint64(b[WeightOffset:])),
		},
		Level: int(int32(binary.LittleEndian.Uint32(b[LevelOffset:]))),
	}
	aux := math.Float64frombits(binary.LittleEndian.Uint64(b[AuxOffset:]))
	if kind == core.MsgEpochUpdate {
		m.Threshold = aux
	} else {
		m.Key = aux
	}
	return m, nil
}

// ForEachMessage decodes a batch payload — one or more concatenated
// encoded messages — invoking fn for each in order. It fails without
// calling fn unless the payload is a positive multiple of MessageSize;
// a decode error mid-batch stops the iteration.
func ForEachMessage(b []byte, fn func(core.Message)) error {
	if len(b) == 0 || len(b)%payloadLen != 0 {
		return fmt.Errorf("wire: batch payload length %d is not a positive multiple of %d", len(b), payloadLen)
	}
	for off := 0; off < len(b); off += payloadLen {
		m, err := ParseMessage(b[off : off+payloadLen])
		if err != nil {
			return err
		}
		fn(m)
	}
	return nil
}

// AppendMessages appends the encoded batch of msgs to dst and returns
// it. The caller is responsible for splitting batches so the payload
// stays within MaxFrameSize (WriteFrame enforces the bound).
func AppendMessages(dst []byte, msgs []core.Message) []byte {
	for _, m := range msgs {
		dst = AppendMessage(dst, m)
	}
	return dst
}

// AppendShardHeader appends the 3-byte shard tag that turns the batch
// messages appended after it into a shard-tagged frame payload.
func AppendShardHeader(dst []byte, shard int) []byte {
	if shard < 0 || shard > MaxShard {
		panic(fmt.Sprintf("wire: shard index %d out of range [0,%d]", shard, MaxShard))
	}
	var hdr [ShardHeaderSize]byte
	hdr[0] = ShardMarker
	binary.LittleEndian.PutUint16(hdr[1:], uint16(shard))
	return append(dst, hdr[:]...)
}

// IsShardFrame reports whether a frame payload carries a shard tag.
func IsShardFrame(payload []byte) bool {
	return len(payload) >= ShardHeaderSize && payload[0] == ShardMarker
}

// ParseShardFrame splits a shard-tagged payload into its shard index
// and the batch-message bytes (decode those with ForEachMessage). It
// errors — never panics — on anything malformed: missing marker,
// truncated header, or an empty or misaligned message section.
func ParseShardFrame(payload []byte) (shard int, msgs []byte, err error) {
	if len(payload) < ShardHeaderSize || payload[0] != ShardMarker {
		return 0, nil, fmt.Errorf("wire: not a shard-tagged frame (len %d)", len(payload))
	}
	msgs = payload[ShardHeaderSize:]
	if len(msgs) == 0 || len(msgs)%payloadLen != 0 {
		return 0, nil, fmt.Errorf("wire: shard frame message section of %d bytes is not a positive multiple of %d", len(msgs), payloadLen)
	}
	return int(binary.LittleEndian.Uint16(payload[1:])), msgs, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(payload), MaxFrameSize)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame into buf (growing it as
// needed) and returns the payload slice.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: incoming frame of %d bytes exceeds max %d", n, MaxFrameSize)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteMessage encodes and writes one protocol message as a frame.
func WriteMessage(w io.Writer, m core.Message) error {
	return WriteFrame(w, AppendMessage(nil, m))
}

// ReadMessage reads and decodes one protocol message frame.
func ReadMessage(r io.Reader, buf []byte) (core.Message, []byte, error) {
	payload, err := ReadFrame(r, buf)
	if err != nil {
		return core.Message{}, payload, err
	}
	m, err := ParseMessage(payload)
	return m, payload, err
}
