package wire

import (
	"bytes"
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
)

// FuzzParseMessage ensures arbitrary payloads never panic and that every
// successfully parsed message re-encodes to the identical payload
// (canonical encoding).
func FuzzParseMessage(f *testing.F) {
	f.Add(AppendMessage(nil, core.Message{Kind: core.MsgEarly, Item: stream.Item{ID: 1, Weight: 2}}))
	f.Add(AppendMessage(nil, core.Message{Kind: core.MsgRegular, Item: stream.Item{ID: 9, Weight: 1}, Key: 3}))
	f.Add(AppendMessage(nil, core.Message{Kind: core.MsgLevelSaturated, Level: 3}))
	f.Add(AppendMessage(nil, core.Message{Kind: core.MsgEpochUpdate, Threshold: 16}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 29))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMessage(data)
		if err != nil {
			return
		}
		re := AppendMessage(nil, m)
		// NaN payloads cannot round-trip by value; re-parse instead and
		// compare encodings.
		if !bytes.Equal(re, data) {
			m2, err2 := ParseMessage(re)
			if err2 != nil {
				t.Fatalf("re-encoded message failed to parse: %v", err2)
			}
			re2 := AppendMessage(nil, m2)
			if !bytes.Equal(re, re2) {
				t.Fatalf("encoding not canonical: % x vs % x", re, re2)
			}
		}
	})
}

// FuzzReadFrame ensures frame parsing never panics or over-allocates on
// adversarial input.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	WriteFrame(&good, []byte{1, 2, 3})
	f.Add(good.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		payload, err := ReadFrame(r, nil)
		if err == nil && len(payload) > MaxFrameSize {
			t.Fatalf("oversized payload of %d accepted", len(payload))
		}
	})
}
