package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"

	"wrs/internal/core"
	"wrs/internal/stream"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []core.Message{
		{Kind: core.MsgEarly, Item: stream.Item{ID: 42, Weight: 3.25}},
		{Kind: core.MsgRegular, Item: stream.Item{ID: 7, Weight: 1e12}, Key: 123.456},
		{Kind: core.MsgLevelSaturated, Level: 17},
		{Kind: core.MsgLevelSaturated, Level: -1},
		{Kind: core.MsgEpochUpdate, Threshold: 1024},
	}
	for _, m := range msgs {
		got, err := ParseMessage(AppendMessage(nil, m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != m {
			t.Errorf("round trip changed message: %+v -> %+v", m, got)
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, id uint64, w, aux float64, level int32) bool {
		kind := core.MsgKind(kindRaw % 4)
		m := core.Message{Kind: kind, Level: int(level)}
		switch kind {
		case core.MsgEarly:
			m.Item = stream.Item{ID: id, Weight: w}
			m.Level = 0
		case core.MsgRegular:
			m.Item = stream.Item{ID: id, Weight: w}
			m.Key = aux
			m.Level = 0
		case core.MsgLevelSaturated:
		case core.MsgEpochUpdate:
			m.Threshold = aux
			m.Level = 0
		}
		if math.IsNaN(w) || math.IsNaN(aux) {
			return true // NaN != NaN; protocol never sends NaN
		}
		got, err := ParseMessage(AppendMessage(nil, m))
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestParseMessageErrors(t *testing.T) {
	if _, err := ParseMessage(make([]byte, 5)); err == nil {
		t.Error("short payload accepted")
	}
	bad := AppendMessage(nil, core.Message{Kind: core.MsgEarly})
	bad[0] = 99
	if _, err := ParseMessage(bad); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame mismatch: %v vs %v", got, want)
		}
		scratch = got
	}
	if _, err := ReadFrame(&buf, scratch); err != io.EOF {
		t.Errorf("expected EOF after last frame, got %v", err)
	}
}

func TestFrameSizeLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("oversize write accepted")
	}
	// Forge an oversized header.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf, nil); err == nil {
		t.Error("oversize incoming frame accepted")
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc), nil); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	msgs := []core.Message{
		{Kind: core.MsgEarly, Item: stream.Item{ID: 1, Weight: 0.5}},
		{Kind: core.MsgRegular, Item: stream.Item{ID: 2, Weight: 7}, Key: 3.5},
		{Kind: core.MsgEpochUpdate, Threshold: 64},
		{Kind: core.MsgLevelSaturated, Level: 3},
	}
	payload := AppendMessages(nil, msgs)
	if len(payload) != len(msgs)*MessageSize {
		t.Fatalf("batch payload %d bytes, want %d", len(payload), len(msgs)*MessageSize)
	}
	var got []core.Message
	if err := ForEachMessage(payload, func(m core.Message) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if got[i] != msgs[i] {
			t.Errorf("message %d: got %+v, want %+v", i, got[i], msgs[i])
		}
	}
	// A single message is a valid batch of one.
	one := AppendMessage(nil, msgs[0])
	n := 0
	if err := ForEachMessage(one, func(core.Message) { n++ }); err != nil || n != 1 {
		t.Errorf("single-message batch: n=%d err=%v", n, err)
	}
}

func TestBatchErrors(t *testing.T) {
	if err := ForEachMessage(nil, func(core.Message) { t.Error("fn called on empty batch") }); err == nil {
		t.Error("empty batch accepted")
	}
	if err := ForEachMessage(make([]byte, MessageSize+1), func(core.Message) { t.Error("fn called on ragged batch") }); err == nil {
		t.Error("ragged batch length accepted")
	}
	// A decode error mid-batch stops the iteration with an error.
	payload := AppendMessages(nil, []core.Message{
		{Kind: core.MsgEarly, Item: stream.Item{ID: 1, Weight: 1}},
		{Kind: core.MsgEarly, Item: stream.Item{ID: 2, Weight: 1}},
	})
	payload[MessageSize] = 99 // corrupt the second message's kind
	n := 0
	if err := ForEachMessage(payload, func(core.Message) { n++ }); err == nil {
		t.Error("corrupt batch accepted")
	}
	if n != 1 {
		t.Errorf("iteration processed %d messages before the corrupt one, want 1", n)
	}
}

func TestWriteReadMessage(t *testing.T) {
	var buf bytes.Buffer
	want := core.Message{Kind: core.MsgRegular, Item: stream.Item{ID: 5, Weight: 2.5}, Key: 9.75}
	if err := WriteMessage(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadMessage(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}
