package wire

import (
	"bytes"
	"strings"
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
)

// window_test.go pins the sequence-stamped frames of the windowed
// application: MsgWindow and MsgClock ride the standard 29-byte layout
// with the shard-local sequence stamp in the int32 level slot, so they
// batch and shard-tag exactly like every other message.

func TestWindowMessageRoundTrip(t *testing.T) {
	msgs := []core.Message{
		{Kind: core.MsgWindow, Item: stream.Item{ID: 42, Weight: 3.5}, Key: 17.25,
			Level: core.WindowStamp(1000, 3, 8)},
		{Kind: core.MsgWindow, Item: stream.Item{ID: 7, Weight: 1e-9}, Key: 1e12,
			Level: core.MaxWindowStamp},
		{Kind: core.MsgClock, Level: core.WindowStamp(0, 0, 1)},
		{Kind: core.MsgClock, Level: core.WindowStamp(123456, 6, 7)},
	}
	for _, m := range msgs {
		got, err := ParseMessage(AppendMessage(nil, m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != m {
			t.Errorf("round trip changed message: sent %+v, got %+v", m, got)
		}
		if pos, site := core.SplitWindowStamp(got.Level, 8); m.Level == core.WindowStamp(1000, 3, 8) && (pos != 1000 || site != 3) {
			t.Errorf("stamp did not survive the wire: pos %d site %d", pos, site)
		}
	}
}

func TestWindowBatchAndShardFrames(t *testing.T) {
	batch := []core.Message{
		{Kind: core.MsgWindow, Item: stream.Item{ID: 1, Weight: 2}, Key: 9, Level: core.WindowStamp(5, 1, 2)},
		{Kind: core.MsgClock, Level: core.WindowStamp(6, 0, 2)},
		{Kind: core.MsgRegular, Item: stream.Item{ID: 2, Weight: 4}, Key: 8},
	}
	payload := AppendMessages(nil, batch)
	var got []core.Message
	if err := ForEachMessage(payload, func(m core.Message) { got = append(got, m) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("decoded %d of %d messages", len(got), len(batch))
	}
	for i := range got {
		if got[i] != batch[i] {
			t.Errorf("batch[%d]: sent %+v, got %+v", i, batch[i], got[i])
		}
	}

	tagged := AppendMessages(AppendShardHeader(nil, 11), batch)
	shard, msgs, err := ParseShardFrame(tagged)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 11 {
		t.Errorf("shard = %d, want 11", shard)
	}
	if !bytes.Equal(msgs, payload) {
		t.Error("shard-tagged window batch does not match the untagged encoding")
	}
}

func TestUnknownKindAfterWindowRejected(t *testing.T) {
	raw := AppendMessage(nil, core.Message{Kind: core.MsgClock, Level: 1})
	raw[0] = byte(core.MsgClock) + 1
	if _, err := ParseMessage(raw); err == nil || !strings.Contains(err.Error(), "unknown message kind") {
		t.Fatalf("kind %d accepted: %v", raw[0], err)
	}
}
