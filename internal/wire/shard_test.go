package wire

import (
	"bytes"
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
)

func shardFrame(shard int, msgs ...core.Message) []byte {
	payload := AppendShardHeader(nil, shard)
	return AppendMessages(payload, msgs)
}

func TestShardFrameRoundTrip(t *testing.T) {
	msgs := []core.Message{
		{Kind: core.MsgRegular, Item: stream.Item{ID: 7, Weight: 2.5}, Key: 9.25},
		{Kind: core.MsgEarly, Item: stream.Item{ID: 8, Weight: 1e9}},
	}
	for _, shard := range []int{0, 1, 41, MaxShard} {
		payload := shardFrame(shard, msgs...)
		if !IsShardFrame(payload) {
			t.Fatalf("shard %d: IsShardFrame false", shard)
		}
		got, body, err := ParseShardFrame(payload)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if got != shard {
			t.Errorf("parsed shard %d, want %d", got, shard)
		}
		var decoded []core.Message
		if err := ForEachMessage(body, func(m core.Message) { decoded = append(decoded, m) }); err != nil {
			t.Fatal(err)
		}
		if len(decoded) != len(msgs) {
			t.Fatalf("decoded %d messages, want %d", len(decoded), len(msgs))
		}
		for i := range msgs {
			if decoded[i] != msgs[i] {
				t.Errorf("message %d: got %+v, want %+v", i, decoded[i], msgs[i])
			}
		}
	}
}

// TestShardFrameUnambiguous pins the dispatch rule: a plain batch frame
// is never mistaken for a shard frame (message kinds are 0..3, the
// marker is neither), and control frames are too short.
func TestShardFrameUnambiguous(t *testing.T) {
	plain := AppendMessage(nil, core.Message{Kind: core.MsgEpochUpdate, Threshold: 4})
	if IsShardFrame(plain) {
		t.Error("plain batch frame classified as shard frame")
	}
	if IsShardFrame([]byte{200}) || IsShardFrame([]byte{201}) {
		t.Error("control frame classified as shard frame")
	}
	if _, _, err := ParseShardFrame(plain); err == nil {
		t.Error("plain batch frame parsed as shard frame")
	}
}

func TestParseShardFrameMalformed(t *testing.T) {
	valid := shardFrame(3, core.Message{Kind: core.MsgEarly, Item: stream.Item{ID: 1, Weight: 1}})
	cases := map[string][]byte{
		"empty":             {},
		"marker only":       {ShardMarker},
		"truncated header":  {ShardMarker, 0x01},
		"header no msgs":    {ShardMarker, 0x01, 0x00},
		"misaligned msgs":   append(append([]byte{}, valid...), 0xAB),
		"truncated message": valid[:len(valid)-1],
	}
	for name, payload := range cases {
		if _, _, err := ParseShardFrame(payload); err == nil {
			t.Errorf("%s: malformed shard frame accepted", name)
		}
	}
}

func TestAppendShardHeaderPanicsOutOfRange(t *testing.T) {
	for _, shard := range []int{-1, MaxShard + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("shard %d: no panic", shard)
				}
			}()
			AppendShardHeader(nil, shard)
		}()
	}
}

// FuzzParseShardFrame ensures shard-frame parsing errors — never
// panics — on arbitrary payloads, and that every accepted payload
// round-trips canonically through re-encoding.
func FuzzParseShardFrame(f *testing.F) {
	f.Add(shardFrame(0, core.Message{Kind: core.MsgEarly, Item: stream.Item{ID: 1, Weight: 2}}))
	f.Add(shardFrame(65535, core.Message{Kind: core.MsgRegular, Item: stream.Item{ID: 9, Weight: 1}, Key: 3}))
	f.Add([]byte{ShardMarker})
	f.Add([]byte{ShardMarker, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{ShardMarker}, ShardHeaderSize+MessageSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		shard, body, err := ParseShardFrame(data)
		if err != nil {
			return
		}
		if shard < 0 || shard > MaxShard {
			t.Fatalf("accepted shard index %d out of range", shard)
		}
		if len(body) == 0 || len(body)%MessageSize != 0 {
			t.Fatalf("accepted misaligned message section of %d bytes", len(body))
		}
		re := AppendShardHeader(nil, shard)
		re = append(re, body...)
		if !bytes.Equal(re, data) {
			t.Fatalf("shard frame not canonical: % x vs % x", re, data)
		}
	})
}
