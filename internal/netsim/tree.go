package netsim

import (
	"fmt"

	"wrs/internal/stream"
)

// TreeRelay is the per-node state machine of a hierarchical aggregation
// tree (package relay provides the protocol implementation). A relay
// sits between a slice of sites (or lower relays) and the coordinator
// (or a higher relay): upstream messages pass through Up, which either
// swallows them (pre-filtering below the broadcast threshold, or
// against the top-s union merge) or hands them to forward; coordinator
// broadcasts pass through Down on their way to the children, letting
// the relay track the monotone control plane.
type TreeRelay[M Msg] interface {
	// Up processes one upstream message, calling forward for each
	// message that should continue toward the coordinator (zero or one
	// per call today; the signature permits coalescing relays).
	Up(m M, forward func(M))
	// Down observes one coordinator broadcast on its way down the tree.
	Down(m M)
}

// ValidateTree checks a tree shape: depth 0 (the flat topology, no
// relay tier) needs no fanout; any deeper tree needs fanout >= 2 —
// fanout 1 would chain every message through depth relays for no
// connection reduction.
func ValidateTree(fanout, depth int) error {
	if depth < 0 {
		return fmt.Errorf("netsim: tree depth %d is negative", depth)
	}
	if depth > 0 && fanout < 2 {
		return fmt.Errorf("netsim: tree fanout %d < 2 (depth %d)", fanout, depth)
	}
	return nil
}

// TreeTierSizes returns the relay count of each tier of a fanout-ary
// aggregation tree over k sites, tier 0 being the root's children and
// tier depth-1 the leaves the sites attach to. Tier t holds
// min(fanout^(t+1), k) relays — no tier needs more nodes than there are
// sites — so the root terminates min(fanout, k) connections instead of
// k. A node at tier t+1 attaches to parent (node % size[t]), and site i
// attaches to leaf (i % size[depth-1]): round-robin, seed-independent,
// at most fanout children per node.
func TreeTierSizes(k, fanout, depth int) []int {
	sizes := make([]int, depth)
	width := 1
	for t := range sizes {
		width *= fanout
		if width > k {
			width = k
		}
		sizes[t] = width
	}
	return sizes
}

// TreeTierStats is one tier's message accounting in a TreeCluster.
type TreeTierStats struct {
	Nodes     int   // relay nodes in this tier
	In        int64 // messages entering the tier from below
	Forwarded int64 // messages the tier passed toward the coordinator
}

// Filtered returns the messages this tier swallowed.
func (t TreeTierStats) Filtered() int64 { return t.In - t.Forwarded }

// TreeCluster is the sequential, deterministic runtime over a
// hierarchical relay tree: the netsim mirror of relay.TreeCluster, used
// to pin tree exactness and message counts without network timing. A
// site's messages climb through its leaf relay and that relay's
// ancestors to the coordinator; broadcasts fan down through every relay
// to every site. Because delivery is synchronous and relays only ever
// pre-filter messages the coordinator would drop anyway, the
// coordinator state — and therefore the broadcast sequence, the site
// decisions, and Stats.Upstream — is bit-identical to the flat
// Cluster's under the same seeds.
type TreeCluster[M Msg] struct {
	Coord  Coordinator[M]
	Sites  []Site[M]
	Relays [][]TreeRelay[M] // [tier][node]; tier 0 reports to the root
	Stats  Stats

	tierIn  [][]int64 // per [tier][node] messages in
	tierFwd [][]int64 // per [tier][node] messages forwarded
	sends   []func(M) // per-site upstream entry point
	bcast   func(M)
}

// NewTreeCluster assembles a sequential tree cluster with depth relay
// tiers of the given fanout; newRelay builds the state machine for each
// node. Depth 0 is the flat topology (no relays, identical to
// NewCluster).
func NewTreeCluster[M Msg](coord Coordinator[M], sites []Site[M], fanout, depth int, newRelay func(tier, node int) TreeRelay[M]) (*TreeCluster[M], error) {
	if err := ValidateTree(fanout, depth); err != nil {
		return nil, err
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("netsim: tree cluster with no sites")
	}
	c := &TreeCluster[M]{Coord: coord, Sites: sites}
	sizes := TreeTierSizes(len(sites), fanout, depth)
	c.Relays = make([][]TreeRelay[M], depth)
	c.tierIn = make([][]int64, depth)
	c.tierFwd = make([][]int64, depth)
	for t, n := range sizes {
		c.Relays[t] = make([]TreeRelay[M], n)
		c.tierIn[t] = make([]int64, n)
		c.tierFwd[t] = make([]int64, n)
		for node := range c.Relays[t] {
			c.Relays[t][node] = newRelay(t, node)
		}
	}
	c.bcast = func(m M) {
		k := int64(len(c.Sites))
		c.Stats.Downstream += k
		c.Stats.DownWords += int64(m.Words()) * k
		for _, tier := range c.Relays {
			for _, r := range tier {
				r.Down(m)
			}
		}
		for _, s := range c.Sites {
			s.HandleBroadcast(m)
		}
	}
	// into(t, node) is the delivery chain from tier t's node up to the
	// coordinator; into(-1, 0) is the coordinator itself.
	var into func(tier, node int) func(M)
	into = func(tier, node int) func(M) {
		if tier < 0 {
			return func(m M) { c.Coord.HandleMessage(m, c.bcast) }
		}
		parent := 0
		if tier > 0 {
			parent = node % len(c.Relays[tier-1])
		}
		up := into(tier-1, parent)
		r := c.Relays[tier][node]
		in, fwd := &c.tierIn[tier][node], &c.tierFwd[tier][node]
		return func(m M) {
			*in++
			r.Up(m, func(fm M) {
				*fwd++
				up(fm)
			})
		}
	}
	c.sends = make([]func(M), len(sites))
	for i := range sites {
		var deliver func(M)
		if depth == 0 {
			deliver = into(-1, 0)
		} else {
			deliver = into(depth-1, i%sizes[depth-1])
		}
		c.sends[i] = func(m M) {
			c.Stats.Upstream++
			c.Stats.UpWords += int64(m.Words())
			deliver(m)
		}
	}
	return c, nil
}

// K returns the number of sites.
func (c *TreeCluster[M]) K() int { return len(c.Sites) }

// Depth returns the number of relay tiers.
func (c *TreeCluster[M]) Depth() int { return len(c.Relays) }

// RootFanIn returns how many connections the coordinator terminates:
// the top tier's node count, or k for the flat topology.
func (c *TreeCluster[M]) RootFanIn() int {
	if len(c.Relays) == 0 {
		return len(c.Sites)
	}
	return len(c.Relays[0])
}

// RootUpstream returns the messages that reached the coordinator — the
// top tier's forwarded count, or Stats.Upstream for the flat topology.
// The gap to Stats.Upstream (the site edge) is what relay pre-filtering
// saved.
func (c *TreeCluster[M]) RootUpstream() int64 {
	if len(c.Relays) == 0 {
		return c.Stats.Upstream
	}
	var n int64
	for _, v := range c.tierFwd[0] {
		n += v
	}
	return n
}

// TierStats returns per-tier message accounting, tier 0 first.
func (c *TreeCluster[M]) TierStats() []TreeTierStats {
	out := make([]TreeTierStats, len(c.Relays))
	for t := range c.Relays {
		st := TreeTierStats{Nodes: len(c.Relays[t])}
		for node := range c.Relays[t] {
			st.In += c.tierIn[t][node]
			st.Forwarded += c.tierFwd[t][node]
		}
		out[t] = st
	}
	return out
}

// Feed delivers one arrival to a site and synchronously propagates
// every resulting message up the tree and every broadcast down it.
func (c *TreeCluster[M]) Feed(siteID int, it stream.Item) error {
	if siteID < 0 || siteID >= len(c.Sites) {
		return fmt.Errorf("netsim: site %d out of range [0,%d)", siteID, len(c.Sites))
	}
	return c.Sites[siteID].Observe(it, c.sends[siteID])
}

// FeedBatch delivers a slice of arrivals to a site in order, using the
// site's native batch path when it has one.
func (c *TreeCluster[M]) FeedBatch(siteID int, items []stream.Item) error {
	if siteID < 0 || siteID >= len(c.Sites) {
		return fmt.Errorf("netsim: site %d out of range [0,%d)", siteID, len(c.Sites))
	}
	if bs, ok := c.Sites[siteID].(BatchSite[M]); ok {
		return bs.ObserveBatch(items, c.sends[siteID])
	}
	for _, it := range items {
		if err := c.Sites[siteID].Observe(it, c.sends[siteID]); err != nil {
			return err
		}
	}
	return nil
}
