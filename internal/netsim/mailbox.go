package netsim

import "sync"

// Mailbox is an unbounded FIFO queue safe for concurrent use. The
// concurrent runtime uses one per site for coordinator-to-site traffic so
// that the coordinator never blocks on a slow site — the property that
// makes the goroutine runtime deadlock-free by construction (the only
// blocking edges are site -> coordinator, which the coordinator always
// drains).
type Mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []T
	closed bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox[T any]() *Mailbox[T] {
	m := &Mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Put appends v. Put on a closed mailbox panics (protocol bug).
func (m *Mailbox[T]) Put(v T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		panic("netsim: Put on closed Mailbox")
	}
	m.q = append(m.q, v)
	m.mu.Unlock()
	m.cond.Signal()
}

// TryGet pops the head without blocking. ok is false when empty.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.q) == 0 {
		return v, false
	}
	v = m.q[0]
	m.q = m.q[1:]
	return v, true
}

// Get pops the head, blocking until a value arrives or the mailbox is
// closed and drained (ok = false).
func (m *Mailbox[T]) Get() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.q) == 0 {
		return v, false
	}
	v = m.q[0]
	m.q = m.q[1:]
	return v, true
}

// Close marks the mailbox closed; pending values remain retrievable.
func (m *Mailbox[T]) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Len returns the current queue length.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.q)
}
