package netsim

import (
	"errors"
	"sync"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// testMsg is a minimal message for runtime tests.
type testMsg struct {
	From int
	Seq  int
	Down bool
}

func (testMsg) Words() int { return 2 }

// echoSite sends one message per observed item and records broadcasts.
type echoSite struct {
	id         int
	seq        int
	broadcasts []testMsg
	mu         sync.Mutex
}

func (s *echoSite) Observe(it stream.Item, send func(testMsg)) error {
	if it.Weight < 0 {
		return errors.New("bad weight")
	}
	s.seq++
	send(testMsg{From: s.id, Seq: s.seq})
	return nil
}

func (s *echoSite) HandleBroadcast(m testMsg) {
	s.mu.Lock()
	s.broadcasts = append(s.broadcasts, m)
	s.mu.Unlock()
}

// countCoord broadcasts every nth message and checks FIFO per site.
type countCoord struct {
	n        int
	received int
	lastSeq  map[int]int
	fifoErr  bool
	mu       sync.Mutex
}

func (c *countCoord) HandleMessage(m testMsg, bcast func(testMsg)) {
	c.mu.Lock()
	c.received++
	if c.lastSeq == nil {
		c.lastSeq = map[int]int{}
	}
	if m.Seq <= c.lastSeq[m.From] {
		c.fifoErr = true
	}
	c.lastSeq[m.From] = m.Seq
	doBcast := c.received%c.n == 0
	c.mu.Unlock()
	if doBcast {
		bcast(testMsg{Down: true, Seq: c.received})
	}
}

func TestClusterAccounting(t *testing.T) {
	coord := &countCoord{n: 10}
	sites := make([]Site[testMsg], 4)
	rawSites := make([]*echoSite, 4)
	for i := range sites {
		rawSites[i] = &echoSite{id: i}
		sites[i] = rawSites[i]
	}
	cl := NewCluster[testMsg](coord, sites)
	const n = 100
	for i := 0; i < n; i++ {
		if err := cl.Feed(i%4, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if cl.Stats.Upstream != n {
		t.Errorf("upstream = %d, want %d", cl.Stats.Upstream, n)
	}
	wantDown := int64(n / 10 * 4) // 10 broadcasts x 4 sites
	if cl.Stats.Downstream != wantDown {
		t.Errorf("downstream = %d, want %d", cl.Stats.Downstream, wantDown)
	}
	if cl.Stats.UpWords != 2*n {
		t.Errorf("upwords = %d, want %d", cl.Stats.UpWords, 2*n)
	}
	if cl.Stats.Total() != cl.Stats.Upstream+cl.Stats.Downstream {
		t.Error("Total mismatch")
	}
	if coord.fifoErr {
		t.Error("FIFO violated in sequential cluster")
	}
	// Every site saw every broadcast.
	for i, s := range rawSites {
		if len(s.broadcasts) != n/10 {
			t.Errorf("site %d saw %d broadcasts, want %d", i, len(s.broadcasts), n/10)
		}
	}
}

func TestClusterFeedErrors(t *testing.T) {
	coord := &countCoord{n: 1000}
	sites := []Site[testMsg]{&echoSite{id: 0}}
	cl := NewCluster[testMsg](coord, sites)
	if err := cl.Feed(2, stream.Item{}); err == nil {
		t.Error("out-of-range site accepted")
	}
	if err := cl.Feed(0, stream.Item{Weight: -1}); err == nil {
		t.Error("site error not propagated")
	}
	if err := cl.FeedRepeated(9, stream.Item{Weight: 1}, 2); err == nil {
		t.Error("FeedRepeated out-of-range site accepted")
	}
}

func TestClusterFeedRepeatedFallback(t *testing.T) {
	// echoSite does not implement RepeatSite: FeedRepeated must loop.
	coord := &countCoord{n: 1000}
	sites := []Site[testMsg]{&echoSite{id: 0}}
	cl := NewCluster[testMsg](coord, sites)
	if err := cl.FeedRepeated(0, stream.Item{Weight: 1}, 7); err != nil {
		t.Fatal(err)
	}
	if cl.Stats.Upstream != 7 {
		t.Errorf("upstream = %d, want 7", cl.Stats.Upstream)
	}
}

func TestClusterRunGenerator(t *testing.T) {
	coord := &countCoord{n: 50}
	sites := make([]Site[testMsg], 3)
	for i := range sites {
		sites[i] = &echoSite{id: i}
	}
	cl := NewCluster[testMsg](coord, sites)
	g := stream.NewGenerator(500, 3, stream.UnitWeights(), stream.RoundRobin(3))
	if err := cl.Run(g, xrand.New(1)); err != nil {
		t.Fatal(err)
	}
	if coord.received != 500 {
		t.Errorf("coordinator received %d, want 500", coord.received)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Upstream: 1, Downstream: 2, UpWords: 3, DownWords: 4}
	b := Stats{Upstream: 10, Downstream: 20, UpWords: 30, DownWords: 40}
	a.Add(b)
	if a.Upstream != 11 || a.Downstream != 22 || a.UpWords != 33 || a.DownWords != 44 {
		t.Errorf("Add broken: %+v", a)
	}
	if a.TotalWords() != 77 {
		t.Errorf("TotalWords = %d", a.TotalWords())
	}
}

func TestMailboxFIFO(t *testing.T) {
	m := NewMailbox[int]()
	for i := 0; i < 100; i++ {
		m.Put(i)
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := m.TryGet()
		if !ok || v != i {
			t.Fatalf("TryGet = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := m.TryGet(); ok {
		t.Fatal("TryGet on empty returned ok")
	}
}

func TestMailboxBlockingGet(t *testing.T) {
	m := NewMailbox[int]()
	done := make(chan int)
	go func() {
		v, _ := m.Get()
		done <- v
	}()
	m.Put(42)
	if v := <-done; v != 42 {
		t.Fatalf("Get = %d", v)
	}
}

func TestMailboxCloseDrains(t *testing.T) {
	m := NewMailbox[int]()
	m.Put(1)
	m.Close()
	if v, ok := m.Get(); !ok || v != 1 {
		t.Fatalf("Get after close = (%d, %v)", v, ok)
	}
	if _, ok := m.Get(); ok {
		t.Fatal("Get on closed empty mailbox returned ok")
	}
}

func TestMailboxPutAfterClosePanics(t *testing.T) {
	m := NewMailbox[int]()
	m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Put after Close did not panic")
		}
	}()
	m.Put(1)
}

func TestMailboxConcurrent(t *testing.T) {
	m := NewMailbox[int]()
	const producers, perProducer = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m.Put(i)
			}
		}()
	}
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			_, ok := m.Get()
			if !ok {
				return
			}
			got++
		}
	}()
	wg.Wait()
	m.Close()
	<-done
	if got != producers*perProducer {
		t.Fatalf("consumed %d, want %d", got, producers*perProducer)
	}
}

func TestConcurrentClusterDeliversEverything(t *testing.T) {
	coord := &countCoord{n: 25}
	sites := make([]Site[testMsg], 6)
	rawSites := make([]*echoSite, 6)
	for i := range sites {
		rawSites[i] = &echoSite{id: i}
		sites[i] = rawSites[i]
	}
	cc := NewConcurrentCluster[testMsg](coord, sites)
	cc.Start()
	const n = 3000
	for i := 0; i < n; i++ {
		cc.Feed(i%6, stream.Item{ID: uint64(i), Weight: 1})
	}
	stats, err := cc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if coord.received != n {
		t.Errorf("coordinator received %d, want %d", coord.received, n)
	}
	if stats.Upstream != n {
		t.Errorf("upstream = %d, want %d", stats.Upstream, n)
	}
	if coord.fifoErr {
		t.Error("per-site FIFO violated in concurrent cluster")
	}
	wantDown := int64(n / 25 * 6)
	if stats.Downstream != wantDown {
		t.Errorf("downstream = %d, want %d", stats.Downstream, wantDown)
	}
}

func TestConcurrentClusterPropagatesError(t *testing.T) {
	coord := &countCoord{n: 1000}
	sites := []Site[testMsg]{&echoSite{id: 0}}
	cc := NewConcurrentCluster[testMsg](coord, sites)
	cc.Start()
	cc.Feed(0, stream.Item{Weight: -1})
	_, err := cc.Drain()
	if err == nil {
		t.Fatal("site error not propagated")
	}
}

func TestClusterAccessors(t *testing.T) {
	coord := &countCoord{n: 10}
	sites := []Site[testMsg]{&echoSite{id: 0}, &echoSite{id: 1}}
	cl := NewCluster[testMsg](coord, sites)
	if cl.K() != 2 {
		t.Errorf("K = %d", cl.K())
	}
}

func TestClusterRunStream(t *testing.T) {
	coord := &countCoord{n: 100}
	sites := []Site[testMsg]{&echoSite{id: 0}, &echoSite{id: 1}}
	cl := NewCluster[testMsg](coord, sites)
	s := &stream.Stream{K: 2}
	for i := 0; i < 20; i++ {
		s.Updates = append(s.Updates, stream.Update{Pos: i, Site: i % 2,
			Item: stream.Item{ID: uint64(i), Weight: 1}})
	}
	if err := cl.RunStream(s); err != nil {
		t.Fatal(err)
	}
	if coord.received != 20 {
		t.Errorf("received %d", coord.received)
	}
	// Error propagation.
	bad := &stream.Stream{K: 2, Updates: []stream.Update{
		{Pos: 0, Site: 0, Item: stream.Item{Weight: -1}}}}
	if err := cl.RunStream(bad); err == nil {
		t.Error("RunStream swallowed site error")
	}
}

// repeatSite implements RepeatSite for FeedRepeated coverage.
type repeatSite struct {
	echoSite
	batched int
}

func (s *repeatSite) ObserveRepeated(it stream.Item, count int, send func(testMsg)) error {
	s.batched += count
	for i := 0; i < count; i++ {
		send(testMsg{From: s.id, Seq: s.seq + i + 1})
	}
	s.seq += count
	return nil
}

func TestClusterFeedRepeatedUsesBatchedPath(t *testing.T) {
	coord := &countCoord{n: 1000}
	rs := &repeatSite{}
	cl := NewCluster[testMsg](coord, []Site[testMsg]{rs})
	if err := cl.FeedRepeated(0, stream.Item{Weight: 1}, 9); err != nil {
		t.Fatal(err)
	}
	if rs.batched != 9 {
		t.Errorf("batched path not used: %d", rs.batched)
	}
	if cl.Stats.Upstream != 9 {
		t.Errorf("upstream = %d", cl.Stats.Upstream)
	}
}
