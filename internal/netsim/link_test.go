package netsim

import (
	"testing"

	"wrs/internal/xrand"
)

func TestLinkModelValidate(t *testing.T) {
	for _, l := range []LinkModel{PerfectLink(), WANLink(), LossyLink()} {
		if err := l.Validate(); err != nil {
			t.Errorf("preset %+v rejected: %v", l, err)
		}
	}
	bad := []LinkModel{
		{BaseDelay: -1},
		{Jitter: -0.5},
		{LossProb: -0.1},
		{LossProb: 1},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("invalid model %+v accepted", l)
		}
	}
}

func TestLinkModelDelayBounds(t *testing.T) {
	l := LinkModel{BaseDelay: 0.01, Jitter: 0.02}
	rng := xrand.New(1)
	for i := 0; i < 10000; i++ {
		d := l.Delay(rng)
		if d < 0.01 || d >= 0.03 {
			t.Fatalf("delay %v outside [base, base+jitter)", d)
		}
	}
}

func TestLinkModelLossRate(t *testing.T) {
	l := LinkModel{LossProb: 0.05}
	rng := xrand.New(2)
	lost := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if l.Lose(rng) {
			lost++
		}
	}
	got := float64(lost) / n
	if got < 0.04 || got > 0.06 {
		t.Errorf("loss rate %v, want ~0.05", got)
	}
}

// TestPerfectLinkConsumesNoRandomness pins the bit-compatibility
// contract: a lossless zero-jitter link must not advance the RNG, so
// scenario runs without link effects replay identically to runs that
// predate the link model.
func TestPerfectLinkConsumesNoRandomness(t *testing.T) {
	rng := xrand.New(3)
	before := rng.State()
	l := PerfectLink()
	for i := 0; i < 100; i++ {
		l.Delay(rng)
		if l.Lose(rng) {
			t.Fatal("perfect link lost a message")
		}
	}
	if rng.State() != before {
		t.Error("perfect link consumed randomness")
	}
}
