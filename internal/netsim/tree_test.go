package netsim

import (
	"reflect"
	"testing"

	"wrs/internal/stream"
)

// recRelay forwards everything except messages drop returns true for,
// and records the broadcasts it saw on the way down.
type recRelay struct {
	drop func(testMsg) bool
	down []testMsg
}

func (r *recRelay) Up(m testMsg, forward func(testMsg)) {
	if r.drop != nil && r.drop(m) {
		return
	}
	forward(m)
}

func (r *recRelay) Down(m testMsg) { r.down = append(r.down, m) }

func passRelays(drop func(testMsg) bool) func(tier, node int) TreeRelay[testMsg] {
	return func(tier, node int) TreeRelay[testMsg] { return &recRelay{drop: drop} }
}

func TestValidateTree(t *testing.T) {
	for _, tc := range []struct {
		fanout, depth int
		ok            bool
	}{
		{0, 0, true}, {2, 0, true}, {2, 1, true}, {4, 3, true},
		{2, -1, false}, {1, 1, false}, {0, 2, false},
	} {
		err := ValidateTree(tc.fanout, tc.depth)
		if (err == nil) != tc.ok {
			t.Errorf("ValidateTree(%d, %d) = %v, want ok=%v", tc.fanout, tc.depth, err, tc.ok)
		}
	}
}

func TestTreeTierSizes(t *testing.T) {
	for _, tc := range []struct {
		k, fanout, depth int
		want             []int
	}{
		{8, 2, 2, []int{2, 4}},
		{1000, 4, 2, []int{4, 16}},
		{3, 2, 3, []int{2, 3, 3}},
		{10, 2, 0, []int{}},
		{1, 2, 2, []int{1, 1}},
	} {
		got := TreeTierSizes(tc.k, tc.fanout, tc.depth)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("TreeTierSizes(%d, %d, %d) = %v, want %v", tc.k, tc.fanout, tc.depth, got, tc.want)
		}
	}
}

// A pass-through tree must be indistinguishable from the flat cluster:
// same coordinator deliveries in the same order, same stats at the site
// edge, every site seeing every broadcast.
func TestTreeClusterPassthroughMatchesFlat(t *testing.T) {
	const k, n = 6, 240
	feed := func(c interface {
		Feed(int, stream.Item) error
	}) {
		for i := 0; i < n; i++ {
			if err := c.Feed(i%k, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	mkSites := func() ([]Site[testMsg], []*echoSite) {
		sites := make([]Site[testMsg], k)
		raw := make([]*echoSite, k)
		for i := range sites {
			raw[i] = &echoSite{id: i}
			sites[i] = raw[i]
		}
		return sites, raw
	}

	flatCoord := &countCoord{n: 10}
	flatSites, _ := mkSites()
	flat := NewCluster[testMsg](flatCoord, flatSites)
	feed(flat)

	for _, shape := range []struct{ fanout, depth int }{{2, 0}, {2, 2}, {3, 1}, {4, 2}} {
		treeCoord := &countCoord{n: 10}
		treeSites, rawSites := mkSites()
		tree, err := NewTreeCluster[testMsg](treeCoord, treeSites, shape.fanout, shape.depth, passRelays(nil))
		if err != nil {
			t.Fatal(err)
		}
		feed(tree)
		if treeCoord.received != flatCoord.received {
			t.Errorf("shape %+v: coordinator received %d, flat %d", shape, treeCoord.received, flatCoord.received)
		}
		if treeCoord.fifoErr {
			t.Errorf("shape %+v: per-site FIFO violated through the tree", shape)
		}
		if tree.Stats != flat.Stats {
			t.Errorf("shape %+v: stats %+v, flat %+v", shape, tree.Stats, flat.Stats)
		}
		if got := tree.RootUpstream(); got != flat.Stats.Upstream {
			t.Errorf("shape %+v: root upstream %d, want %d (nothing filtered)", shape, got, flat.Stats.Upstream)
		}
		wantFan := shape.fanout
		if shape.depth == 0 {
			wantFan = k
		} else if wantFan > k {
			wantFan = k
		}
		if got := tree.RootFanIn(); got != wantFan {
			t.Errorf("shape %+v: root fan-in %d, want %d", shape, got, wantFan)
		}
		for i, s := range rawSites {
			if len(s.broadcasts) != n/10 {
				t.Errorf("shape %+v: site %d saw %d broadcasts, want %d", shape, i, len(s.broadcasts), n/10)
			}
		}
		// Every relay saw every broadcast on the way down.
		for tier := range tree.Relays {
			for node, r := range tree.Relays[tier] {
				if got := len(r.(*recRelay).down); got != n/10 {
					t.Errorf("shape %+v: relay[%d][%d] saw %d broadcasts, want %d", shape, tier, node, got, n/10)
				}
			}
		}
		// Per-tier accounting: nothing filtered, tier in == site sends.
		for tier, st := range tree.TierStats() {
			if st.Filtered() != 0 || st.In != n || st.Forwarded != n {
				t.Errorf("shape %+v tier %d: stats %+v, want in=fwd=%d", shape, tier, st, n)
			}
		}
	}
}

// A filtering relay tier shrinks the root edge but not the site edge,
// and the accounting pins exactly what each tier swallowed.
func TestTreeClusterFilteringAccounting(t *testing.T) {
	const k, n = 4, 100
	coord := &countCoord{n: 1 << 30} // never broadcasts
	sites := make([]Site[testMsg], k)
	for i := range sites {
		sites[i] = &echoSite{id: i}
	}
	// Leaf tier drops odd sequence numbers; upper tier passes through.
	newRelay := func(tier, node int) TreeRelay[testMsg] {
		if tier == 1 {
			return &recRelay{drop: func(m testMsg) bool { return m.Seq%2 == 1 }}
		}
		return &recRelay{}
	}
	tree, err := NewTreeCluster[testMsg](coord, sites, 2, 2, newRelay)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tree.Feed(i%k, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Each site emits seqs 1..25; 13 odd, 12 even per site.
	wantFwd := int64(k * 12)
	if tree.Stats.Upstream != n {
		t.Errorf("site edge %d, want %d (filtering must not touch it)", tree.Stats.Upstream, n)
	}
	if got := tree.RootUpstream(); got != wantFwd {
		t.Errorf("root edge %d, want %d", got, wantFwd)
	}
	if coord.received != int(wantFwd) {
		t.Errorf("coordinator received %d, want %d", coord.received, wantFwd)
	}
	ts := tree.TierStats()
	if ts[1].In != n || ts[1].Forwarded != wantFwd || ts[1].Filtered() != n-wantFwd {
		t.Errorf("leaf tier stats %+v, want in=%d fwd=%d", ts[1], n, wantFwd)
	}
	if ts[0].In != wantFwd || ts[0].Filtered() != 0 {
		t.Errorf("root tier stats %+v, want in=%d filtered=0", ts[0], wantFwd)
	}
}

func TestTreeClusterErrors(t *testing.T) {
	coord := &countCoord{n: 10}
	sites := []Site[testMsg]{&echoSite{id: 0}}
	if _, err := NewTreeCluster[testMsg](coord, sites, 1, 2, passRelays(nil)); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := NewTreeCluster[testMsg](coord, nil, 2, 1, passRelays(nil)); err == nil {
		t.Error("no sites accepted")
	}
	tree, err := NewTreeCluster[testMsg](coord, sites, 2, 1, passRelays(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Feed(1, stream.Item{ID: 1, Weight: 1}); err == nil {
		t.Error("out-of-range site accepted")
	}
	if err := tree.FeedBatch(-1, nil); err == nil {
		t.Error("negative site accepted")
	}
}
