// Package netsim provides the two in-process runtimes that drive the
// transport-agnostic site/coordinator state machines (package
// internal/runtime wraps them, together with the TCP transport, behind
// one Runtime interface):
//
//   - Cluster: a deterministic sequential simulator matching the
//     synchronous model of Section 2.1 (a broadcast is delivered to every
//     site before the next arrival), with exact message and word
//     accounting. All message-complexity experiments run on it.
//   - ConcurrentCluster (concurrent.go): a goroutine-per-site runtime
//     with batched FIFO input queues and FIFO links in both directions,
//     demonstrating the protocol live and validating that correctness
//     survives asynchrony (stale thresholds only cost extra messages;
//     see DESIGN.md).
package netsim

import (
	"fmt"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Msg is the constraint for protocol messages: they must report their
// size in machine words for communication accounting.
type Msg interface {
	Words() int
}

// Site is a per-site protocol state machine.
type Site[M Msg] interface {
	// Observe processes one local arrival and may emit messages to the
	// coordinator through send.
	Observe(it stream.Item, send func(M)) error
	// HandleBroadcast applies a coordinator announcement. Implementations
	// must not send from inside HandleBroadcast.
	HandleBroadcast(M)
}

// RepeatSite is implemented by sites that can process many identical
// copies of an update in sublinear time (the L1-tracking duplication).
type RepeatSite[M Msg] interface {
	ObserveRepeated(it stream.Item, count int, send func(M)) error
}

// BatchSite is implemented by sites with a native batch ingest path
// (core.Site's A-ExpJ skip-ahead keeps its armed jump in a register
// across a batch). FeedBatch uses it when present.
type BatchSite[M Msg] interface {
	ObserveBatch(items []stream.Item, send func(M)) error
}

// Coordinator is the central protocol state machine.
type Coordinator[M Msg] interface {
	// HandleMessage processes one site message and may broadcast
	// announcements to all sites through bcast.
	HandleMessage(m M, bcast func(M))
}

// Stats counts network traffic. A broadcast costs k messages, matching
// the paper's accounting.
type Stats struct {
	Upstream   int64 // site -> coordinator messages
	Downstream int64 // coordinator -> site messages (broadcast = k)
	UpWords    int64
	DownWords  int64
}

// Total returns the total number of messages sent over the network.
func (s Stats) Total() int64 { return s.Upstream + s.Downstream }

// TotalWords returns the total number of machine words sent.
func (s Stats) TotalWords() int64 { return s.UpWords + s.DownWords }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Upstream += other.Upstream
	s.Downstream += other.Downstream
	s.UpWords += other.UpWords
	s.DownWords += other.DownWords
}

// Cluster is the sequential, deterministic runtime.
type Cluster[M Msg] struct {
	Coord Coordinator[M]
	Sites []Site[M]
	Stats Stats

	send  func(M)
	bcast func(M)
}

// NewCluster assembles a sequential cluster.
func NewCluster[M Msg](coord Coordinator[M], sites []Site[M]) *Cluster[M] {
	c := &Cluster[M]{Coord: coord, Sites: sites}
	c.bcast = func(m M) {
		k := int64(len(c.Sites))
		c.Stats.Downstream += k
		c.Stats.DownWords += int64(m.Words()) * k
		for _, s := range c.Sites {
			s.HandleBroadcast(m)
		}
	}
	c.send = func(m M) {
		c.Stats.Upstream++
		c.Stats.UpWords += int64(m.Words())
		c.Coord.HandleMessage(m, c.bcast)
	}
	return c
}

// K returns the number of sites.
func (c *Cluster[M]) K() int { return len(c.Sites) }

// Feed delivers one arrival to a site and synchronously propagates every
// resulting message and broadcast.
func (c *Cluster[M]) Feed(siteID int, it stream.Item) error {
	if siteID < 0 || siteID >= len(c.Sites) {
		return fmt.Errorf("netsim: site %d out of range [0,%d)", siteID, len(c.Sites))
	}
	return c.Sites[siteID].Observe(it, c.send)
}

// FeedBatch delivers a slice of arrivals to a site in order — the
// sequential-runtime counterpart of transport.SiteClient.ObserveBatch,
// so code can be written against one feeding API and run on either
// runtime. Sites with a native batch path (BatchSite) get the whole
// slice in one call; otherwise batching changes nothing observable and
// exists for API parity.
func (c *Cluster[M]) FeedBatch(siteID int, items []stream.Item) error {
	if siteID < 0 || siteID >= len(c.Sites) {
		return fmt.Errorf("netsim: site %d out of range [0,%d)", siteID, len(c.Sites))
	}
	if bs, ok := c.Sites[siteID].(BatchSite[M]); ok {
		return bs.ObserveBatch(items, c.send)
	}
	for _, it := range items {
		if err := c.Sites[siteID].Observe(it, c.send); err != nil {
			return err
		}
	}
	return nil
}

// FeedRepeated delivers count identical copies of an arrival, using the
// site's batched path when available.
func (c *Cluster[M]) FeedRepeated(siteID int, it stream.Item, count int) error {
	if siteID < 0 || siteID >= len(c.Sites) {
		return fmt.Errorf("netsim: site %d out of range [0,%d)", siteID, len(c.Sites))
	}
	if rs, ok := c.Sites[siteID].(RepeatSite[M]); ok {
		return rs.ObserveRepeated(it, count, c.send)
	}
	for i := 0; i < count; i++ {
		if err := c.Sites[siteID].Observe(it, c.send); err != nil {
			return err
		}
	}
	return nil
}

// Run feeds an entire generated stream through the cluster.
func (c *Cluster[M]) Run(g *stream.Generator, rng *xrand.RNG) error {
	g.Reset()
	for {
		u, ok := g.Next(rng)
		if !ok {
			return nil
		}
		if err := c.Feed(u.Site, u.Item); err != nil {
			return err
		}
	}
}

// RunStream feeds a materialized stream through the cluster.
func (c *Cluster[M]) RunStream(s *stream.Stream) error {
	for _, u := range s.Updates {
		if err := c.Feed(u.Site, u.Item); err != nil {
			return err
		}
	}
	return nil
}
