package netsim

import (
	"fmt"

	"wrs/internal/xrand"
)

// LinkModel describes the behavior of one simulated network direction:
// a fixed propagation delay, uniform jitter on top of it, and an
// independent per-message loss probability. Times are in abstract
// seconds of the virtual clock used by the workload scenario engine —
// no wall clock is involved, so runs under a LinkModel stay
// deterministic for a fixed RNG.
//
// The protocol tolerates both effects by construction: reordered or
// delayed broadcasts only leave sites filtering with a stale (lower)
// threshold, which costs extra messages but never correctness, and a
// lost upstream message removes its update from the set of arrivals the
// coordinator acknowledged — the exactness oracle is defined over
// exactly that set.
type LinkModel struct {
	BaseDelay float64 // fixed one-way delay added to every delivery
	Jitter    float64 // extra delay drawn uniformly from [0, Jitter)
	LossProb  float64 // probability in [0, 1) that a message is dropped
}

// Validate rejects models the virtual clock cannot schedule.
func (l LinkModel) Validate() error {
	if l.BaseDelay < 0 || l.Jitter < 0 {
		return fmt.Errorf("netsim: link delay/jitter must be nonnegative, got %v/%v", l.BaseDelay, l.Jitter)
	}
	if l.LossProb < 0 || l.LossProb >= 1 {
		return fmt.Errorf("netsim: link loss probability %v outside [0, 1)", l.LossProb)
	}
	return nil
}

// Delay draws the one-way latency for a single message.
func (l LinkModel) Delay(rng *xrand.RNG) float64 {
	d := l.BaseDelay
	if l.Jitter > 0 {
		d += l.Jitter * rng.Float64()
	}
	return d
}

// Lose reports whether a single message is dropped. A zero LossProb
// never consumes randomness, so lossless models stay bit-compatible
// with runs that predate loss simulation.
func (l LinkModel) Lose(rng *xrand.RNG) bool {
	if l.LossProb <= 0 {
		return false
	}
	return rng.Float64() < l.LossProb
}

// PerfectLink is instant, lossless delivery — the synchronous model of
// the paper's Section 2.1.
func PerfectLink() LinkModel { return LinkModel{} }

// WANLink approximates a wide-area hop: 40ms base, 20ms jitter, no loss.
func WANLink() LinkModel { return LinkModel{BaseDelay: 0.040, Jitter: 0.020} }

// LossyLink is a degraded wide-area hop: WAN latency plus 5% loss.
func LossyLink() LinkModel { return LinkModel{BaseDelay: 0.040, Jitter: 0.020, LossProb: 0.05} }
