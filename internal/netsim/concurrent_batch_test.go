package netsim

import (
	"testing"

	"wrs/internal/stream"
)

func TestBatchQueueFIFOAndBatching(t *testing.T) {
	q := NewBatchQueue[int](4)
	q.Put(1)
	q.PutBatch([]int{2, 3, 4, 5, 6}) // one operation, admitted whole
	got, ok := q.GetAll(nil)
	if !ok {
		t.Fatal("GetAll on non-empty queue reported closed")
	}
	want := []int{1, 2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("GetAll returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GetAll returned %v, want %v", got, want)
		}
	}
	q.Close()
	if _, ok := q.GetAll(nil); ok {
		t.Error("GetAll on closed empty queue reported a value")
	}
}

func TestBatchQueueBlocksWhenFull(t *testing.T) {
	q := NewBatchQueue[int](2)
	q.PutBatch([]int{1, 2})
	done := make(chan struct{})
	go func() {
		q.Put(3) // must block until a GetAll makes room
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Put on a full queue did not block")
	default:
	}
	if got, _ := q.GetAll(nil); len(got) != 2 {
		t.Fatalf("GetAll returned %d items, want 2", len(got))
	}
	<-done
	if got, _ := q.GetAll(nil); len(got) != 1 || got[0] != 3 {
		t.Fatalf("GetAll returned %v, want [3]", got)
	}
}

func TestBatchQueueCloseDrains(t *testing.T) {
	q := NewBatchQueue[int](8)
	q.PutBatch([]int{7, 8})
	q.Close()
	got, ok := q.GetAll(nil)
	if !ok || len(got) != 2 {
		t.Fatalf("queued values lost on close: %v, ok=%v", got, ok)
	}
}

func TestConcurrentFeedBatchDeliversInOrder(t *testing.T) {
	coord := &countCoord{n: 25}
	sites := make([]Site[testMsg], 4)
	for i := range sites {
		sites[i] = &echoSite{id: i}
	}
	cc := NewConcurrentCluster[testMsg](coord, sites)
	cc.Start()
	const n, chunk = 4000, 97
	batch := make([]stream.Item, 0, chunk)
	fed := 0
	for fed < n {
		site := (fed / chunk) % 4
		batch = batch[:0]
		for j := 0; j < chunk && fed < n; j++ {
			batch = append(batch, stream.Item{ID: uint64(fed), Weight: 1})
			fed++
		}
		if err := cc.FeedBatch(site, batch); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := cc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if coord.received != n {
		t.Errorf("coordinator received %d, want %d", coord.received, n)
	}
	if coord.fifoErr {
		t.Error("per-site FIFO violated by batched enqueue")
	}
	if stats.Upstream != n {
		t.Errorf("upstream = %d, want %d", stats.Upstream, n)
	}
}

func TestConcurrentFeedAfterDrainErrors(t *testing.T) {
	coord := &countCoord{n: 100}
	cc := NewConcurrentCluster[testMsg](coord, []Site[testMsg]{&echoSite{id: 0}})
	cc.Start()
	if err := cc.Feed(0, stream.Item{ID: 1, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Drain(); err != nil {
		t.Fatal(err)
	}
	// Used to panic on the closed input channel.
	if err := cc.Feed(0, stream.Item{ID: 2, Weight: 1}); err == nil {
		t.Error("Feed after Drain succeeded")
	}
	if err := cc.FeedBatch(0, []stream.Item{{ID: 3, Weight: 1}}); err == nil {
		t.Error("FeedBatch after Drain succeeded")
	}
	// Drain stays idempotent.
	if _, err := cc.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentFeedSiteRange(t *testing.T) {
	coord := &countCoord{n: 100}
	cc := NewConcurrentCluster[testMsg](coord, []Site[testMsg]{&echoSite{id: 0}})
	cc.Start()
	defer cc.Drain()
	if err := cc.Feed(1, stream.Item{ID: 1, Weight: 1}); err == nil {
		t.Error("out-of-range site accepted")
	}
	if err := cc.FeedBatch(-1, []stream.Item{{ID: 1, Weight: 1}}); err == nil {
		t.Error("negative site accepted")
	}
}

func TestConcurrentFlushBarrier(t *testing.T) {
	coord := &countCoord{n: 1 << 30} // never broadcasts
	sites := make([]Site[testMsg], 3)
	for i := range sites {
		sites[i] = &echoSite{id: i}
	}
	cc := NewConcurrentCluster[testMsg](coord, sites)
	cc.Start()
	const rounds, perRound = 5, 700
	total := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			if err := cc.Feed(i%3, stream.Item{ID: uint64(total + i), Weight: 1}); err != nil {
				t.Fatal(err)
			}
		}
		total += perRound
		if err := cc.Flush(); err != nil {
			t.Fatal(err)
		}
		got := 0
		cc.Do(func() { got = coord.received })
		if got != total {
			t.Fatalf("after flush %d: coordinator received %d, want %d", r, got, total)
		}
	}
	if _, err := cc.Drain(); err != nil {
		t.Fatal(err)
	}
}

// nullSite never sends, isolating queue overhead for the benchmarks.
type nullSite struct{ seen int64 }

func (s *nullSite) Observe(it stream.Item, send func(testMsg)) error {
	s.seen++
	return nil
}
func (s *nullSite) HandleBroadcast(testMsg) {}

func benchCluster(k int) (*ConcurrentCluster[testMsg], []*nullSite) {
	coord := &countCoord{n: 1 << 30}
	raw := make([]*nullSite, k)
	sites := make([]Site[testMsg], k)
	for i := range sites {
		raw[i] = &nullSite{}
		sites[i] = raw[i]
	}
	cc := NewConcurrentCluster[testMsg](coord, sites)
	cc.Start()
	return cc, raw
}

// BenchmarkConcurrentFeed is the per-item enqueue path — the "before"
// of the batched-FeedBatch change (FeedBatch used to be this loop).
func BenchmarkConcurrentFeed(b *testing.B) {
	cc, _ := benchCluster(4)
	it := stream.Item{ID: 1, Weight: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cc.Feed(i%4, it); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cc.Drain()
}

// BenchmarkConcurrentFeedBatch is the batched enqueue: one queue
// operation per 256-item batch.
func BenchmarkConcurrentFeedBatch(b *testing.B) {
	cc, _ := benchCluster(4)
	const chunk = 256
	batch := make([]stream.Item, chunk)
	for i := range batch {
		batch[i] = stream.Item{ID: uint64(i), Weight: 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	fed := 0
	for i := 0; fed < b.N; i++ {
		n := chunk
		if b.N-fed < n {
			n = b.N - fed
		}
		if err := cc.FeedBatch(i%4, batch[:n]); err != nil {
			b.Fatal(err)
		}
		fed += n
	}
	b.StopTimer()
	cc.Drain()
}
