package netsim

import (
	"sync"
	"sync/atomic"

	"wrs/internal/stream"
)

// ConcurrentCluster runs one goroutine per site plus one for the
// coordinator, wired by FIFO channels (site -> coordinator) and unbounded
// FIFO mailboxes (coordinator -> site). It models the paper's
// communication assumptions — FIFO links, no loss — without the
// synchrony: sites may act on stale thresholds, which is safe by design
// (see DESIGN.md).
type ConcurrentCluster[M Msg] struct {
	coord Coordinator[M]
	sites []Site[M]

	inCh  []chan stream.Item
	boxes []*Mailbox[M]
	upCh  chan M

	up, down, upWords, downWords atomic.Int64

	siteWG  sync.WaitGroup
	coordWG sync.WaitGroup
	errOnce sync.Once
	err     error
	started bool
}

// NewConcurrentCluster assembles the runtime; call Start before feeding.
func NewConcurrentCluster[M Msg](coord Coordinator[M], sites []Site[M]) *ConcurrentCluster[M] {
	cc := &ConcurrentCluster[M]{
		coord: coord,
		sites: sites,
		inCh:  make([]chan stream.Item, len(sites)),
		boxes: make([]*Mailbox[M], len(sites)),
		upCh:  make(chan M, 1024),
	}
	for i := range sites {
		cc.inCh[i] = make(chan stream.Item, 256)
		cc.boxes[i] = NewMailbox[M]()
	}
	return cc
}

// Start launches the site and coordinator goroutines.
func (cc *ConcurrentCluster[M]) Start() {
	if cc.started {
		panic("netsim: ConcurrentCluster started twice")
	}
	cc.started = true

	cc.coordWG.Add(1)
	go func() {
		defer cc.coordWG.Done()
		bcast := func(m M) {
			k := int64(len(cc.sites))
			cc.down.Add(k)
			cc.downWords.Add(int64(m.Words()) * k)
			for _, b := range cc.boxes {
				b.Put(m)
			}
		}
		for m := range cc.upCh {
			cc.coord.HandleMessage(m, bcast)
		}
	}()

	for i := range cc.sites {
		cc.siteWG.Add(1)
		go func(id int) {
			defer cc.siteWG.Done()
			site := cc.sites[id]
			box := cc.boxes[id]
			send := func(m M) {
				cc.up.Add(1)
				cc.upWords.Add(int64(m.Words()))
				cc.upCh <- m
			}
			for it := range cc.inCh[id] {
				// Apply pending announcements first so thresholds are as
				// fresh as the asynchrony allows.
				for {
					m, ok := box.TryGet()
					if !ok {
						break
					}
					site.HandleBroadcast(m)
				}
				if err := site.Observe(it, send); err != nil {
					cc.errOnce.Do(func() { cc.err = err })
				}
			}
		}(i)
	}
}

// Feed enqueues one arrival for a site. It may block if the site's input
// buffer is full (backpressure), never deadlocks.
func (cc *ConcurrentCluster[M]) Feed(siteID int, it stream.Item) {
	cc.inCh[siteID] <- it
}

// FeedBatch enqueues a slice of arrivals for a site in order — the
// concurrent-runtime counterpart of transport.SiteClient.ObserveBatch.
// Like Feed it may block on the site's input buffer (backpressure).
func (cc *ConcurrentCluster[M]) FeedBatch(siteID int, items []stream.Item) {
	for _, it := range items {
		cc.Feed(siteID, it)
	}
}

// Drain closes the inputs, waits for all in-flight messages to be
// processed by the coordinator, and returns the traffic statistics and
// the first site error, if any. The cluster cannot be reused afterwards.
func (cc *ConcurrentCluster[M]) Drain() (Stats, error) {
	for _, ch := range cc.inCh {
		close(ch)
	}
	cc.siteWG.Wait()
	close(cc.upCh)
	cc.coordWG.Wait()
	for _, b := range cc.boxes {
		b.Close()
	}
	return Stats{
		Upstream:   cc.up.Load(),
		Downstream: cc.down.Load(),
		UpWords:    cc.upWords.Load(),
		DownWords:  cc.downWords.Load(),
	}, cc.err
}
