package netsim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wrs/internal/stream"
)

// ConcurrentCluster runs one goroutine per site plus one for the
// coordinator, wired by batched FIFO input queues (feeder -> site),
// a FIFO channel (site -> coordinator) and unbounded FIFO mailboxes
// (coordinator -> site). It models the paper's communication
// assumptions — FIFO links, no loss — without the synchrony: sites may
// act on stale thresholds, which is safe by design (see DESIGN.md).
//
// Feed and FeedBatch may be called from any goroutine until Drain;
// afterwards they return an error. Flush is a non-terminal barrier:
// it blocks until everything fed before the call has been observed by
// the sites and every resulting message handled by the coordinator.
// Do runs a function serialized with coordinator message processing,
// so mid-run queries see a consistent coordinator state.
type ConcurrentCluster[M Msg] struct {
	coord Coordinator[M]
	sites []Site[M]

	in    []*BatchQueue[stream.Item]
	boxes []*Mailbox[M]
	upCh  chan M

	up, down, upWords, downWords atomic.Int64

	fed       []atomic.Int64 // items accepted by Feed/FeedBatch, per site
	processed []atomic.Int64 // items fully observed by the site goroutine
	handled   atomic.Int64   // messages processed by the coordinator

	coordMu sync.Mutex // serializes HandleMessage with Do

	feedMu sync.RWMutex // guards closed against concurrent feeds
	closed bool

	errMu sync.Mutex
	err   error

	siteWG  sync.WaitGroup
	coordWG sync.WaitGroup
	started bool

	drainMu    sync.Mutex
	drained    bool
	finalStats Stats
}

// NewConcurrentCluster assembles the runtime; call Start before feeding.
func NewConcurrentCluster[M Msg](coord Coordinator[M], sites []Site[M]) *ConcurrentCluster[M] {
	cc := &ConcurrentCluster[M]{
		coord:     coord,
		sites:     sites,
		in:        make([]*BatchQueue[stream.Item], len(sites)),
		boxes:     make([]*Mailbox[M], len(sites)),
		upCh:      make(chan M, 1024),
		fed:       make([]atomic.Int64, len(sites)),
		processed: make([]atomic.Int64, len(sites)),
	}
	for i := range sites {
		cc.in[i] = NewBatchQueue[stream.Item](256)
		cc.boxes[i] = NewMailbox[M]()
	}
	return cc
}

// Start launches the site and coordinator goroutines.
func (cc *ConcurrentCluster[M]) Start() {
	if cc.started {
		panic("netsim: ConcurrentCluster started twice")
	}
	cc.started = true

	cc.coordWG.Add(1)
	go func() {
		defer cc.coordWG.Done()
		bcast := func(m M) {
			k := int64(len(cc.sites))
			cc.down.Add(k)
			cc.downWords.Add(int64(m.Words()) * k)
			for _, b := range cc.boxes {
				b.Put(m)
			}
		}
		for m := range cc.upCh {
			cc.coordMu.Lock()
			cc.coord.HandleMessage(m, bcast)
			cc.coordMu.Unlock()
			cc.handled.Add(1)
		}
	}()

	for i := range cc.sites {
		cc.siteWG.Add(1)
		go func(id int) {
			defer cc.siteWG.Done()
			site := cc.sites[id]
			box := cc.boxes[id]
			send := func(m M) {
				cc.up.Add(1)
				cc.upWords.Add(int64(m.Words()))
				cc.upCh <- m
			}
			var batch []stream.Item
			for {
				var ok bool
				batch, ok = cc.in[id].GetAll(batch[:0])
				if !ok {
					return
				}
				for _, it := range batch {
					// Apply pending announcements first so thresholds are
					// as fresh as the asynchrony allows.
					for {
						m, ok := box.TryGet()
						if !ok {
							break
						}
						site.HandleBroadcast(m)
					}
					if err := site.Observe(it, send); err != nil {
						cc.setErr(err)
					}
					cc.processed[id].Add(1)
				}
			}
		}(i)
	}
}

func (cc *ConcurrentCluster[M]) setErr(err error) {
	cc.errMu.Lock()
	if cc.err == nil {
		cc.err = err
	}
	cc.errMu.Unlock()
}

// Err returns the first site error observed so far.
func (cc *ConcurrentCluster[M]) Err() error {
	cc.errMu.Lock()
	defer cc.errMu.Unlock()
	return cc.err
}

func (cc *ConcurrentCluster[M]) checkSite(siteID int) error {
	if siteID < 0 || siteID >= len(cc.sites) {
		return fmt.Errorf("netsim: site %d out of range [0,%d)", siteID, len(cc.sites))
	}
	return nil
}

// Feed enqueues one arrival for a site. It may block if the site's
// input buffer is full (backpressure), never deadlocks. After Drain it
// returns an error instead of panicking on the closed queue.
func (cc *ConcurrentCluster[M]) Feed(siteID int, it stream.Item) error {
	if err := cc.checkSite(siteID); err != nil {
		return err
	}
	cc.feedMu.RLock()
	defer cc.feedMu.RUnlock()
	if cc.closed {
		return fmt.Errorf("netsim: Feed on drained ConcurrentCluster")
	}
	cc.fed[siteID].Add(1)
	cc.in[siteID].Put(it)
	return nil
}

// FeedBatch enqueues a slice of arrivals for a site in order, as one
// queue operation — the concurrent-runtime counterpart of
// transport.SiteClient.ObserveBatch. Like Feed it may block on the
// site's input buffer (backpressure). The items are copied; the caller
// may reuse the slice immediately.
func (cc *ConcurrentCluster[M]) FeedBatch(siteID int, items []stream.Item) error {
	if err := cc.checkSite(siteID); err != nil {
		return err
	}
	if len(items) == 0 {
		return nil
	}
	cc.feedMu.RLock()
	defer cc.feedMu.RUnlock()
	if cc.closed {
		return fmt.Errorf("netsim: FeedBatch on drained ConcurrentCluster")
	}
	cc.fed[siteID].Add(int64(len(items)))
	cc.in[siteID].PutBatch(items)
	return nil
}

// Do runs fn serialized with coordinator message processing, so fn can
// read (or mutate) the coordinator state without racing HandleMessage.
// It works both mid-run and after Drain.
func (cc *ConcurrentCluster[M]) Do(fn func()) {
	cc.coordMu.Lock()
	defer cc.coordMu.Unlock()
	fn()
}

// Flush is a non-terminal barrier: it returns once every item fed
// before the call has been observed by its site and every message
// those observations sent has been handled by the coordinator. The
// cluster remains usable. Concurrent feeds during a Flush are allowed;
// they may or may not be covered by the barrier.
func (cc *ConcurrentCluster[M]) Flush() error {
	fedSnap := make([]int64, len(cc.fed))
	for i := range cc.fed {
		fedSnap[i] = cc.fed[i].Load()
	}
	wait := func(done func() bool) {
		for spin := 0; !done(); spin++ {
			if spin < 100 {
				runtime.Gosched()
			} else {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	for i := range fedSnap {
		i := i
		wait(func() bool { return cc.processed[i].Load() >= fedSnap[i] })
	}
	// Every send from the flushed items is already in upCh (sends happen
	// inside Observe, before the processed counter advances).
	sent := cc.up.Load()
	wait(func() bool { return cc.handled.Load() >= sent })
	return cc.Err()
}

// Stats returns a snapshot of the traffic statistics. Safe to call at
// any time; counts may be mid-flight unless a Flush or Drain happened.
func (cc *ConcurrentCluster[M]) Stats() Stats {
	return Stats{
		Upstream:   cc.up.Load(),
		Downstream: cc.down.Load(),
		UpWords:    cc.upWords.Load(),
		DownWords:  cc.downWords.Load(),
	}
}

// Drain closes the inputs, waits for all in-flight messages to be
// processed by the coordinator, and returns the traffic statistics and
// the first site error, if any. Feeding is rejected afterwards; Drain
// is idempotent.
func (cc *ConcurrentCluster[M]) Drain() (Stats, error) {
	cc.drainMu.Lock()
	defer cc.drainMu.Unlock()
	if cc.drained {
		return cc.finalStats, cc.Err()
	}
	cc.feedMu.Lock()
	cc.closed = true
	cc.feedMu.Unlock()
	for _, q := range cc.in {
		q.Close()
	}
	cc.siteWG.Wait()
	close(cc.upCh)
	cc.coordWG.Wait()
	for _, b := range cc.boxes {
		b.Close()
	}
	cc.finalStats = cc.Stats()
	cc.drained = true
	return cc.finalStats, cc.Err()
}
