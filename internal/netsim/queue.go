package netsim

import "sync"

// BatchQueue is a bounded FIFO queue with batched enqueue and dequeue:
// PutBatch appends a whole slice under one lock acquisition and GetAll
// hands the consumer everything queued in one swap. The concurrent
// runtime uses one per site for its input lane, so FeedBatch costs one
// queue operation per batch instead of one channel send per item, and
// the site goroutine wakes once per burst instead of once per item.
//
// Capacity is a soft bound: a producer blocks while the queue holds at
// least max items, but a single PutBatch is admitted whole once there
// is any room, so the queue can momentarily exceed max by one batch.
// That keeps "one batch = one operation" without forcing callers to
// split their batches against the buffer size.
type BatchQueue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []T
	max      int
	closed   bool
}

// NewBatchQueue returns an empty open queue with the given soft
// capacity (minimum 1).
func NewBatchQueue[T any](max int) *BatchQueue[T] {
	if max < 1 {
		max = 1
	}
	q := &BatchQueue[T]{max: max}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Put appends one value, blocking while the queue is full. Put on a
// closed queue panics (protocol bug, mirroring Mailbox).
func (q *BatchQueue[T]) Put(v T) {
	q.mu.Lock()
	for len(q.buf) >= q.max && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		panic("netsim: Put on closed BatchQueue")
	}
	q.buf = append(q.buf, v)
	q.mu.Unlock()
	q.notEmpty.Signal()
}

// PutBatch appends every value of batch in order under one lock
// acquisition, blocking while the queue is full. The values are copied;
// the caller may reuse the slice immediately.
func (q *BatchQueue[T]) PutBatch(batch []T) {
	if len(batch) == 0 {
		return
	}
	q.mu.Lock()
	for len(q.buf) >= q.max && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		panic("netsim: PutBatch on closed BatchQueue")
	}
	q.buf = append(q.buf, batch...)
	q.mu.Unlock()
	q.notEmpty.Signal()
}

// GetAll appends everything currently queued to dst and returns it,
// blocking until at least one value is available or the queue is closed
// and drained (ok = false). Pass dst[:0] of a reused slice to avoid
// per-wakeup allocation.
func (q *BatchQueue[T]) GetAll(dst []T) (out []T, ok bool) {
	q.mu.Lock()
	for len(q.buf) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.buf) == 0 {
		q.mu.Unlock()
		return dst, false
	}
	dst = append(dst, q.buf...)
	q.buf = q.buf[:0]
	q.mu.Unlock()
	q.notFull.Broadcast()
	return dst, true
}

// Len returns the current queue length.
func (q *BatchQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Close marks the queue closed; queued values remain retrievable.
func (q *BatchQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
