// Package fabric provides the shard-partitioning primitives for running
// P independent protocol instances behind one sampling API: a
// deterministic, seed-stable router that partitions a stream by item ID,
// and the exact merge of per-shard query results.
//
// Correctness of the merge rests on the precision-sampling keys: the
// global weighted SWOR is the set of items with the s largest keys, and
// the top-s of a union is contained in the union of per-shard top-s
// sets (an item of the global top-s has fewer than s dominators overall,
// hence fewer than s within its own shard). So P full protocol
// instances, each maintaining a size-s sample over its partition, merge
// to exactly the sample one instance would maintain over the whole
// stream — the property Hübschle-Schneider & Sanders exploit for
// communication-efficient and parallel weighted reservoir sampling
// (arXiv:1910.11069, arXiv:1903.00227).
package fabric

import (
	"fmt"

	"wrs/internal/core"
)

// routerSalt decorrelates the shard router from every other use of the
// item ID (the ID is fed through a full splitmix64 mix, so IDs that are
// sequential — the common case — spread uniformly across shards).
const routerSalt = 0x7F4A7C15A0761D65

// ShardOf routes an item ID to one of p shards. It is a pure function
// of (id, p): stable across runs, seeds, runtimes, and processes, which
// is what lets independently constructed sites and coordinators agree
// on the partition without coordination.
func ShardOf(id uint64, p int) int {
	if p <= 1 {
		return 0
	}
	// splitmix64 finalizer over the salted ID.
	z := id ^ routerSalt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(p))
}

// Merge sorts the concatenated per-shard sample entries by descending
// key and truncates to s — the exact global top-s, per the package
// comment. It is core.TopSample under the name the sharding layers use.
func Merge(entries []core.SampleEntry, s int) []core.SampleEntry {
	return core.TopSample(entries, s)
}

// MergeCoordStats sums per-shard coordinator statistics. Message and
// broadcast counts are additive across independent instances.
func MergeCoordStats(stats []core.CoordStats) core.CoordStats {
	var out core.CoordStats
	for _, st := range stats {
		out.EarlyMsgs += st.EarlyMsgs
		out.RegularMsgs += st.RegularMsgs
		out.Saturations += st.Saturations
		out.EpochAdvances += st.EpochAdvances
		out.LateEarlyMsgs += st.LateEarlyMsgs
		out.DroppedRegular += st.DroppedRegular
		out.IgnoredMsgs += st.IgnoredMsgs
	}
	return out
}

// Validate reports whether p is a usable shard count.
func Validate(p int) error {
	if p < 1 || p > MaxShards {
		return fmt.Errorf("fabric: shard count must be in [1,%d], got %d", MaxShards, p)
	}
	return nil
}

// MaxShards bounds the shard count; the wire format carries the shard
// index in 16 bits.
const MaxShards = 1 << 16
