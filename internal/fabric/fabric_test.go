package fabric

import (
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
)

func TestShardOfDeterministicAndInRange(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 16, 100} {
		for id := uint64(0); id < 10000; id++ {
			s := ShardOf(id, p)
			if s < 0 || s >= p {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, p, s)
			}
			if s != ShardOf(id, p) {
				t.Fatalf("ShardOf(%d, %d) not deterministic", id, p)
			}
		}
	}
}

func TestShardOfSingleShardIsZero(t *testing.T) {
	for id := uint64(0); id < 100; id++ {
		if ShardOf(id, 1) != 0 {
			t.Fatalf("ShardOf(%d, 1) != 0", id)
		}
	}
}

// TestShardOfBalanced checks that sequential IDs — the common case —
// spread roughly uniformly: the splitmix64 finalizer must decorrelate
// the low bits from the modulus.
func TestShardOfBalanced(t *testing.T) {
	const n, p = 100000, 8
	counts := make([]int, p)
	for id := uint64(0); id < n; id++ {
		counts[ShardOf(id, p)]++
	}
	want := n / p
	for s, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("shard %d holds %d of %d ids (want ~%d)", s, c, n, want)
		}
	}
}

func TestMergeIsExactTopS(t *testing.T) {
	// Three "shards" with interleaved keys; the merge of their top-4
	// truncations must be the global top-4.
	mk := func(keys ...float64) []core.SampleEntry {
		out := make([]core.SampleEntry, len(keys))
		for i, k := range keys {
			out[i] = core.SampleEntry{Key: k, Item: stream.Item{ID: uint64(k * 10)}}
		}
		return out
	}
	all := append(append(mk(9, 5, 1), mk(8, 6, 2)...), mk(7, 4, 3)...)
	got := Merge(all, 4)
	want := []float64{9, 8, 7, 6}
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.Key != want[i] {
			t.Errorf("merged[%d].Key = %v, want %v", i, e.Key, want[i])
		}
	}
}

func TestMergeCoordStats(t *testing.T) {
	a := core.CoordStats{EarlyMsgs: 1, RegularMsgs: 2, Saturations: 3, EpochAdvances: 4, LateEarlyMsgs: 5, DroppedRegular: 6}
	b := core.CoordStats{EarlyMsgs: 10, RegularMsgs: 20, Saturations: 30, EpochAdvances: 40, LateEarlyMsgs: 50, DroppedRegular: 60}
	got := MergeCoordStats([]core.CoordStats{a, b})
	want := core.CoordStats{EarlyMsgs: 11, RegularMsgs: 22, Saturations: 33, EpochAdvances: 44, LateEarlyMsgs: 55, DroppedRegular: 66}
	if got != want {
		t.Errorf("MergeCoordStats = %+v, want %+v", got, want)
	}
	if got.Broadcasts() != 77 {
		t.Errorf("Broadcasts = %d, want 77", got.Broadcasts())
	}
}

func TestValidate(t *testing.T) {
	for _, p := range []int{1, 2, MaxShards} {
		if err := Validate(p); err != nil {
			t.Errorf("Validate(%d) = %v", p, err)
		}
	}
	for _, p := range []int{0, -1, MaxShards + 1} {
		if err := Validate(p); err == nil {
			t.Errorf("Validate(%d) accepted", p)
		}
	}
}
