package heavyhitter

import "sort"

// SpaceSaving is the classic Metwally–Agrawal–El Abbadi sketch, included
// as the standard *centralized* heavy-hitter comparator: m counters give
// per-item overestimates bounded by W/m. It operates on aggregated item
// identities (unlike the samplers, which treat each occurrence as
// distinct), which is how it would be deployed against the same streams.
type SpaceSaving struct {
	m       int
	entries map[uint64]*ssEntry
	heap    []*ssEntry // min-heap by Count
	total   float64
}

type ssEntry struct {
	ID    uint64
	Count float64
	Err   float64 // overestimate bound for this counter
	pos   int
}

// NewSpaceSaving returns a sketch with m counters, m >= 1.
func NewSpaceSaving(m int) *SpaceSaving {
	if m < 1 {
		panic("heavyhitter: NewSpaceSaving requires m >= 1")
	}
	return &SpaceSaving{m: m, entries: make(map[uint64]*ssEntry, m)}
}

// Observe adds weight w for item id.
func (s *SpaceSaving) Observe(id uint64, w float64) {
	if !(w > 0) {
		panic("heavyhitter: SpaceSaving requires positive weights")
	}
	s.total += w
	if e, ok := s.entries[id]; ok {
		e.Count += w
		s.down(e.pos)
		return
	}
	if len(s.heap) < s.m {
		e := &ssEntry{ID: id, Count: w, pos: len(s.heap)}
		s.entries[id] = e
		s.heap = append(s.heap, e)
		s.up(e.pos)
		return
	}
	// Evict the minimum counter: the newcomer inherits its count as
	// error bound.
	min := s.heap[0]
	delete(s.entries, min.ID)
	e := &ssEntry{ID: id, Count: min.Count + w, Err: min.Count, pos: 0}
	s.entries[id] = e
	s.heap[0] = e
	s.down(0)
}

// Estimate returns the (over)estimate and error bound for id; ok is false
// if the item is not tracked (estimate at most W/m).
func (s *SpaceSaving) Estimate(id uint64) (count, errBound float64, ok bool) {
	e, found := s.entries[id]
	if !found {
		return 0, s.ErrorBound(), false
	}
	return e.Count, e.Err, true
}

// ErrorBound returns the global overestimate bound: the minimum counter
// value (<= W/m).
func (s *SpaceSaving) ErrorBound() float64 {
	if len(s.heap) < s.m {
		return 0
	}
	return s.heap[0].Count
}

// Total returns the total observed weight.
func (s *SpaceSaving) Total() float64 { return s.total }

// Candidate is a SpaceSaving query result.
type Candidate struct {
	ID    uint64
	Count float64 // overestimate of true weight
	Err   float64 // Count - Err <= true weight <= Count
}

// Query returns all items with estimated weight >= phi * total, heaviest
// first. Every true phi-heavy hitter is included (no false negatives).
func (s *SpaceSaving) Query(phi float64) []Candidate {
	var out []Candidate
	for _, e := range s.heap {
		if e.Count >= phi*s.total {
			out = append(out, Candidate{ID: e.ID, Count: e.Count, Err: e.Err})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

func (s *SpaceSaving) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].Count <= s.heap[i].Count {
			break
		}
		s.swap(parent, i)
		i = parent
	}
}

func (s *SpaceSaving) down(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.heap[l].Count < s.heap[small].Count {
			small = l
		}
		if r < n && s.heap[r].Count < s.heap[small].Count {
			small = r
		}
		if small == i {
			return
		}
		s.swap(i, small)
		i = small
	}
}

func (s *SpaceSaving) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].pos = i
	s.heap[j].pos = j
}
