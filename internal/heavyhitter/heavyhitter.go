// Package heavyhitter implements Section 4 of the paper: continuous
// monitoring of heavy hitters with a *residual* error guarantee.
//
// An item is an (eps, delta) residual heavy hitter at time t if its
// weight is at least eps times the residual L1 — the total weight after
// the top 1/eps items are removed (Definition 6). Theorem 4 shows that a
// weighted SWOR of size s = 6*ln(1/(eps*delta))/eps contains every such
// item with probability 1-delta; the Tracker here is that construction on
// top of the distributed sampler of package core.
//
// The package also provides the with-replacement baseline (which captures
// plain eps-heavy hitters but provably misses residual ones on skewed
// streams — the paper's motivation for SWOR), a SpaceSaving sketch as the
// standard centralized comparator, and exact ground-truth oracles used by
// tests and experiments.
package heavyhitter

import (
	"fmt"
	"math"
	"sort"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/swr"
	"wrs/internal/xrand"
)

// Params are the accuracy parameters of Definitions 5 and 6.
type Params struct {
	Eps   float64 // heaviness threshold
	Delta float64 // failure probability
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if !(p.Eps > 0 && p.Eps < 1) || !(p.Delta > 0 && p.Delta < 1) {
		return fmt.Errorf("heavyhitter: need eps, delta in (0,1), got %v, %v", p.Eps, p.Delta)
	}
	return nil
}

// SampleSize returns s = ceil(6*ln(1/(eps*delta))/eps) per Theorem 4.
func (p Params) SampleSize() int {
	return int(math.Ceil(6 * math.Log(1/(p.Eps*p.Delta)) / p.Eps))
}

// OutputSize returns the query size ceil(2/eps) per Theorem 4.
func (p Params) OutputSize() int { return int(math.Ceil(2 / p.Eps)) }

// Tracker monitors residual heavy hitters via distributed weighted SWOR.
// Wire its Coordinator and Sites into a netsim runtime (or any transport
// delivering core.Message both ways).
type Tracker struct {
	Coord  *core.Coordinator
	Sites  []*core.Site
	params Params
}

// NewTracker builds the Theorem 4 construction over k sites.
func NewTracker(k int, p Params, master *xrand.RNG) (*Tracker, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := core.Config{K: k, S: p.SampleSize()}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tracker{Coord: core.NewCoordinator(cfg, master.Split()), params: p}
	for i := 0; i < k; i++ {
		t.Sites = append(t.Sites, core.NewSite(i, cfg, master.Split()))
	}
	return t, nil
}

// Params returns the tracker's accuracy parameters.
func (t *Tracker) Params() Params { return t.params }

// Query returns the current candidate set: the OutputSize() heaviest
// items of the SWOR sample, heaviest first. With probability 1-delta it
// contains every residual eps-heavy hitter.
func (t *Tracker) Query() []stream.Item {
	return CandidatesFrom(t.Coord.Query(), t.params)
}

// CandidatesFrom extracts the candidate set from raw sample-candidate
// entries: keep the SampleSize() largest keys (the weighted SWOR —
// exact even when entries concatenates snapshots of several protocol
// shards, since the top-s of a union is the top-s of the per-shard
// top-s sets), then rank by weight and truncate to OutputSize(). It is
// the lock-free half of a query: snapshot coordinators under their
// ingest locks, call this outside them.
func CandidatesFrom(entries []core.SampleEntry, p Params) []stream.Item {
	entries = core.TopSample(entries, p.SampleSize())
	items := make([]stream.Item, len(entries))
	for i, e := range entries {
		items[i] = e.Item
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Weight > items[j].Weight })
	if n := p.OutputSize(); len(items) > n {
		items = items[:n]
	}
	return items
}

// SWRTracker is the with-replacement baseline: the same number of samples
// drawn with replacement, candidates ranked by weight. It guarantees
// plain eps-heavy hitters (coupon collecting) but not residual ones.
type SWRTracker struct {
	Coord  *swr.Coordinator
	Sites  []*swr.Site
	params Params
}

// NewSWRTracker builds the baseline over k sites.
func NewSWRTracker(k int, p Params, master *xrand.RNG) (*SWRTracker, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := swr.Config{K: k, S: p.SampleSize()}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &SWRTracker{Coord: swr.NewCoordinator(cfg), params: p}
	for i := 0; i < k; i++ {
		t.Sites = append(t.Sites, swr.NewSite(cfg, master.Split()))
	}
	return t, nil
}

// Query returns the OutputSize() heaviest distinct sampled items.
func (t *SWRTracker) Query() []stream.Item {
	seen := map[uint64]bool{}
	var items []stream.Item
	for _, it := range t.Coord.Sample() {
		if !seen[it.ID] {
			seen[it.ID] = true
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].Weight > items[j].Weight })
	if n := t.params.OutputSize(); len(items) > n {
		items = items[:n]
	}
	return items
}

// ---- Exact ground truth --------------------------------------------------

// ResidualTail returns the L1 of weights after zeroing the top `top`
// coordinates (the ||x_tail(top)||_1 of Definition 6).
func ResidualTail(weights []float64, top int) float64 {
	sorted := append([]float64(nil), weights...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var tail float64
	for i := top; i < len(sorted); i++ {
		tail += sorted[i]
	}
	return tail
}

// ExactResidualHH returns the indices i with
// weights[i] >= eps * ResidualTail(weights, ceil(1/eps)) — the ground
// truth of Definition 6.
func ExactResidualHH(weights []float64, eps float64) []int {
	tail := ResidualTail(weights, int(math.Ceil(1/eps)))
	var out []int
	for i, w := range weights {
		if w >= eps*tail {
			out = append(out, i)
		}
	}
	return out
}

// ExactHH returns the indices i with weights[i] >= eps * sum(weights) —
// the plain L1 heavy hitters of Definition 5.
func ExactHH(weights []float64, eps float64) []int {
	var total float64
	for _, w := range weights {
		total += w
	}
	var out []int
	for i, w := range weights {
		if w >= eps*total {
			out = append(out, i)
		}
	}
	return out
}

// Recall returns |got ∩ want| / |want| for index sets (1 when want is
// empty).
func Recall(got []stream.Item, want []int) float64 {
	if len(want) == 0 {
		return 1
	}
	gotSet := make(map[uint64]bool, len(got))
	for _, it := range got {
		gotSet[it.ID] = true
	}
	hit := 0
	for _, i := range want {
		if gotSet[uint64(i)] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}
