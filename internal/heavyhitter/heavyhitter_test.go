package heavyhitter

import (
	"math"
	"testing"
	"testing/quick"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/swr"
	"wrs/internal/xrand"
)

// plantStream builds the skewed instance from the package tests: a few
// giants (plain HHs), a band of mediums (residual HHs but not plain HHs),
// and a sea of unit items.
func plantStream(giants, mediums, lights int, k int) (*stream.Stream, []float64) {
	var weights []float64
	for i := 0; i < giants; i++ {
		weights = append(weights, 1e8+float64(i))
	}
	for i := 0; i < mediums; i++ {
		weights = append(weights, 400+float64(i))
	}
	for i := 0; i < lights; i++ {
		weights = append(weights, 1)
	}
	s := &stream.Stream{K: k}
	for i, w := range weights {
		s.Updates = append(s.Updates, stream.Update{
			Pos: i, Site: i % k, Item: stream.Item{ID: uint64(i), Weight: w},
		})
	}
	return s, weights
}

func runTracker(t *testing.T, tr *Tracker, s *stream.Stream) netsim.Stats {
	t.Helper()
	coreSites := make([]netsim.Site[core.Message], len(tr.Sites))
	for i, st := range tr.Sites {
		coreSites[i] = st
	}
	cl := netsim.NewCluster[core.Message](tr.Coord, coreSites)
	if err := cl.RunStream(s); err != nil {
		t.Fatal(err)
	}
	return cl.Stats
}

func TestParams(t *testing.T) {
	p := Params{Eps: 0.1, Delta: 0.1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := p.SampleSize(); s != int(math.Ceil(6*math.Log(100)/0.1)) {
		t.Errorf("SampleSize = %d", s)
	}
	if o := p.OutputSize(); o != 20 {
		t.Errorf("OutputSize = %d", o)
	}
	for _, bad := range []Params{{0, 0.1}, {0.1, 0}, {1, 0.1}, {0.1, 1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("params %+v accepted", bad)
		}
	}
}

func TestGroundTruthOracles(t *testing.T) {
	weights := []float64{100, 50, 10, 10, 10, 10, 10}
	if tail := ResidualTail(weights, 2); tail != 50 {
		t.Errorf("ResidualTail = %v, want 50", tail)
	}
	if tail := ResidualTail(weights, 0); tail != 200 {
		t.Errorf("ResidualTail(0) = %v, want 200", tail)
	}
	// eps = 0.5: top-2 removed, tail = 50; residual HHs have w >= 25.
	hh := ExactResidualHH(weights, 0.5)
	if len(hh) != 2 || hh[0] != 0 || hh[1] != 1 {
		t.Errorf("ExactResidualHH = %v, want [0 1]", hh)
	}
	// Plain HHs at eps=0.25: w >= 50.
	plain := ExactHH(weights, 0.25)
	if len(plain) != 2 || plain[0] != 0 || plain[1] != 1 {
		t.Errorf("ExactHH = %v, want [0 1]", plain)
	}
}

func TestRecallHelper(t *testing.T) {
	got := []stream.Item{{ID: 1}, {ID: 2}}
	if r := Recall(got, []int{1, 2, 3, 4}); r != 0.5 {
		t.Errorf("Recall = %v", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Errorf("empty Recall = %v", r)
	}
}

func TestResidualTrackerRecall(t *testing.T) {
	// The planted instance: residual HHs include the mediums, which are
	// invisible to plain eps-HH analysis (they are ~1e-6 of total W).
	const k = 4
	p := Params{Eps: 0.1, Delta: 0.05}
	for trial := 0; trial < 8; trial++ {
		st, weights := plantStream(5, 6, 3000, k)
		want := ExactResidualHH(weights, p.Eps)
		if len(want) != 11 { // 5 giants + 6 mediums
			t.Fatalf("planted instance broken: %d residual HHs", len(want))
		}
		tr, err := NewTracker(k, p, xrand.New(uint64(9000+trial)))
		if err != nil {
			t.Fatal(err)
		}
		runTracker(t, tr, st)
		got := tr.Query()
		if len(got) > p.OutputSize() {
			t.Fatalf("query returned %d items > bound %d", len(got), p.OutputSize())
		}
		if r := Recall(got, want); r < 1 {
			t.Errorf("trial %d: residual recall = %v, want 1", trial, r)
		}
	}
}

func TestSWRTrackerFindsPlainButMissesResidual(t *testing.T) {
	const k = 4
	p := Params{Eps: 0.1, Delta: 0.05}
	plainRecall, residualRecall := 0.0, 0.0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		st, weights := plantStream(5, 6, 3000, k)
		tr, err := NewSWRTracker(k, p, xrand.New(uint64(100+trial)))
		if err != nil {
			t.Fatal(err)
		}
		sites := make([]netsim.Site[swr.Message], len(tr.Sites))
		for i, s := range tr.Sites {
			sites[i] = s
		}
		cl := netsim.NewCluster[swr.Message](tr.Coord, sites)
		if err := cl.RunStream(st); err != nil {
			t.Fatal(err)
		}
		got := tr.Query()
		plainRecall += Recall(got, ExactHH(weights, p.Eps))
		residualRecall += Recall(got, ExactResidualHH(weights, p.Eps))
	}
	plainRecall /= trials
	residualRecall /= trials
	if plainRecall < 0.99 {
		t.Errorf("SWR plain recall = %v, want ~1 (coupon collector)", plainRecall)
	}
	// 5 giants hold ~99.999% of the weight: the mediums are essentially
	// never drawn, so residual recall collapses to ~5/11 (the giants).
	if residualRecall > 0.7 {
		t.Errorf("SWR residual recall = %v; expected to fail (< 0.7) on skewed stream", residualRecall)
	}
	t.Logf("SWR baseline: plain recall %v, residual recall %v", plainRecall, residualRecall)
}

func TestResidualTrackerMessageEfficiency(t *testing.T) {
	const k = 8
	p := Params{Eps: 0.1, Delta: 0.1}
	st, _ := plantStream(5, 6, 30000, k)
	tr, err := NewTracker(k, p, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	stats := runTracker(t, tr, st)
	n := int64(len(st.Updates))
	if stats.Total() >= n/2 {
		t.Errorf("tracker sent %d messages on %d updates; want sublinear", stats.Total(), n)
	}
}

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	ss := NewSpaceSaving(10)
	weights := map[uint64]float64{1: 5, 2: 3, 3: 8}
	for id, w := range weights {
		ss.Observe(id, w/2)
		ss.Observe(id, w/2)
	}
	for id, w := range weights {
		got, errB, ok := ss.Estimate(id)
		if !ok || got != w || errB != 0 {
			t.Errorf("Estimate(%d) = (%v, %v, %v), want (%v, 0, true)", id, got, errB, ok, w)
		}
	}
	if ss.ErrorBound() != 0 {
		t.Errorf("under-capacity error bound = %v", ss.ErrorBound())
	}
}

func TestSpaceSavingErrorBound(t *testing.T) {
	// Overestimates bounded by W/m; no false negatives at phi.
	rng := xrand.New(5)
	const m, n = 20, 5000
	ss := NewSpaceSaving(m)
	truth := map[uint64]float64{}
	var total float64
	for i := 0; i < n; i++ {
		id := uint64(rng.Intn(200))
		w := 1 + math.Floor(10*rng.Float64())
		if id < 5 {
			w += 200 // planted heavy ids
		}
		ss.Observe(id, w)
		truth[id] += w
		total += w
	}
	if ss.Total() != total {
		t.Fatalf("Total = %v, want %v", ss.Total(), total)
	}
	bound := total / m
	if ss.ErrorBound() > bound {
		t.Errorf("ErrorBound %v > W/m = %v", ss.ErrorBound(), bound)
	}
	for _, c := range ss.Query(0.05) {
		tw := truth[c.ID]
		if c.Count < tw {
			t.Errorf("id %d underestimated: %v < %v", c.ID, c.Count, tw)
		}
		if c.Count-tw > ss.ErrorBound() {
			t.Errorf("id %d overestimate %v exceeds bound %v", c.ID, c.Count-tw, ss.ErrorBound())
		}
	}
	// No false negatives: every true 5% HH must be in the query result.
	got := map[uint64]bool{}
	for _, c := range ss.Query(0.05) {
		got[c.ID] = true
	}
	for id, tw := range truth {
		if tw >= 0.05*total && !got[id] {
			t.Errorf("true heavy hitter %d missing from query", id)
		}
	}
}

func TestSpaceSavingCounterInvariants(t *testing.T) {
	f := func(ids []uint8) bool {
		ss := NewSpaceSaving(4)
		var total float64
		for _, id := range ids {
			ss.Observe(uint64(id%16), 1)
			total++
		}
		// Min counter <= total/m.
		return ss.ErrorBound() <= total/4+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
