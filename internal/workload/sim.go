package workload

import (
	"container/heap"
	"fmt"

	"wrs"
	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	"wrs/internal/relay"
	"wrs/internal/xrand"
)

// The scenario engine: a virtual-clock event simulator that drives the
// protocol state machines of any supported App through a workload and a
// fault schedule. Every source of nondeterminism — arrival gaps, link
// delays, loss, key draws — comes from RNGs split off the scenario seed
// in a fixed order, and simultaneous events break ties by schedule
// order, so a (scenario, seed) pair names one exact execution: same
// final sample, same statistics, bit for bit.
//
// Exactness under faults is judged against a delivery-relative oracle
// owned by the coordinator's family (families.go): the engine logs what
// verifiably reached the coordinator, rolls the log back on coordinator
// restart exactly as far as the restored checkpoint, and requires the
// final per-shard query to equal the oracle's replay of that log.
// Updates that never arrived (crashed site, lost or relay-filtered
// message, severed subtree) are exactly the updates absent from the
// log, so the criterion is meaningful under every fault the engine can
// inject. See DESIGN.md §15 for the soundness arguments, §15.5–§15.7
// for the L1, windowed and relay-tree extensions.
//
// With Scenario.Depth > 0 the messages route through a relay tree of
// per-(tier, node, shard) relay.Machine filters (threshold pre-filter
// always; top-s union merge only when the coordinator type opts in),
// with per-edge link models and severable parent edges — the virtual
// mirror of the TCP relay fabric of DESIGN.md §14.

type eventKind uint8

const (
	evArrival eventKind = iota
	evUp
	evDown
	evFault
	evUpRelay
	evDownRelay
)

type event struct {
	at    float64
	seq   uint64
	kind  eventKind
	upd   TimedUpdate  // evArrival
	shard int          // evUp, evDown, ev*Relay
	site  int          // evDown
	tier  int          // ev*Relay
	node  int          // ev*Relay
	msg   core.Message // evUp, evDown, ev*Relay
	fault Fault        // evFault
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EngineStats are the engine's deterministic counters. Two runs of the
// same scenario and seed produce identical EngineStats.
type EngineStats struct {
	Arrivals         int // updates drawn from the workload source
	DroppedArrivals  int // arrivals addressed to a crashed site
	UpDelivered      int // messages delivered to a coordinator
	UpLost           int // upstream messages lost by a link
	DownDelivered    int // broadcast copies delivered to live sites
	DownLost         int // broadcast copies lost by a link
	DownToDead       int // broadcast copies addressed to a crashed site
	Crashes          int
	Joins            int
	Snapshots        int
	Restarts         int
	LinkChanges      int
	AcksRolledBack   int     // acknowledgment log entries discarded by restarts
	FinalVirtualTime float64 // virtual time of the last event
	RelayFiltered    int     // upstream messages swallowed by relay filters
	SeveredUp        int     // upstream messages dropped at a severed edge
	SeveredDown      int     // broadcast copies dropped at a severed edge
	Severs           int
	Reparents        int
	EdgeChanges      int
}

// ShardResult is one shard's final protocol state and its oracle. The
// Query/Oracle pair is the generic comparison every family fills;
// Mismatch carries family-specific divergences (the L1 estimate check,
// the windowed clock cross-check), and the remaining fields are
// family-specific diagnostics (zero-valued where not applicable).
type ShardResult struct {
	Query  []core.SampleEntry // the coordinator's final sample, desc by key
	Oracle []core.SampleEntry // the oracle's replay of acknowledged updates
	Acked  int                // acknowledgment log length at the end
	Stats  core.CoordStats

	WStats         core.WindowCoordStats // windowed runs
	Estimate       float64               // L1 runs: the wrapper's estimate
	OracleEstimate float64               // L1 runs: recomputed from oracle state
	Mismatch       string                // family-specific divergence, "" if none
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario string
	Shards   []ShardResult
	Engine   EngineStats
}

// Err returns nil when every shard's final query equals its oracle and
// no family-specific check diverged, and a description of the first
// divergence otherwise.
func (r *Result) Err() error {
	for p, sh := range r.Shards {
		if sh.Mismatch != "" {
			return fmt.Errorf("workload: scenario %q shard %d: %s", r.Scenario, p, sh.Mismatch)
		}
		if len(sh.Query) != len(sh.Oracle) {
			return fmt.Errorf("workload: scenario %q shard %d: query has %d entries, oracle %d",
				r.Scenario, p, len(sh.Query), len(sh.Oracle))
		}
		for i := range sh.Query {
			if sh.Query[i] != sh.Oracle[i] {
				return fmt.Errorf("workload: scenario %q shard %d entry %d: query %+v, oracle %+v",
					r.Scenario, p, i, sh.Query[i], sh.Oracle[i])
			}
		}
	}
	return nil
}

// Fingerprint renders the result as a string that two runs match on iff
// they are bit-identical: float64 values print as their shortest
// round-trippable representation, so distinct bits give distinct
// fingerprints.
func (r *Result) Fingerprint() string {
	return fmt.Sprintf("%+v", *r)
}

// soloSnaps is the single-threaded wrs.Snapshots: the engine owns every
// state machine, nothing runs concurrently, so a view is a direct call.
type soloSnaps struct{ n int }

func (s soloSnaps) Shards() int           { return s.n }
func (s soloSnaps) View(_ int, fn func()) { fn() }

// RunApp drives app through the scenario and returns the engine result
// together with the application's final answer. The app descriptor is
// consumed (one-shot, as with wrs.Open): build a fresh one per run.
//
// Supported apps are those whose per-shard coordinator has an oracle
// family: the plain core sampler (Sampler, HeavyHitters, Quantiles),
// the L1 duplication tracker, and the windowed protocol.
func RunApp[Q any](sc Scenario, app wrs.App[Q]) (*Result, Q, error) {
	var zero Q
	if err := sc.Validate(); err != nil {
		return nil, zero, err
	}
	shards := sc.Shards
	if shards == 0 {
		shards = 1
	}

	// Build the protocol fabric exactly as wrs.Open would: the app
	// splits master in the documented order, so a scenario seed pins
	// the same instances a production Open(WithSeed(seed)) builds.
	master := xrand.New(sc.Seed)
	insts, err := app.Instances(sc.K, shards, master)
	if err != nil {
		return nil, zero, err
	}
	if len(insts) != shards {
		return nil, zero, fmt.Errorf("workload: app built %d instances for %d shards", len(insts), shards)
	}
	fam, err := newFamily(insts)
	if err != nil {
		return nil, zero, err
	}
	sites := make([][]netsim.Site[core.Message], shards)
	cfgs := make([]core.Config, shards)
	for p, inst := range insts {
		sites[p] = inst.Sites
		cfgs[p] = inst.Cfg
	}

	// Engine RNGs come from a salted seed, NOT from the app's master:
	// the workload, the network and the join randomness are then
	// independent of how many streams the app split off, so the same
	// scenario feeds the identical update sequence to every app and a
	// recorded trace replays bit-for-bit regardless of the source kind.
	netRNG, _, joinRNG := sc.auxRNGs()

	src := sc.OpenSource()
	if src.K() != sc.K {
		return nil, zero, fmt.Errorf("workload: spec is for %d sites, scenario has %d", src.K(), sc.K)
	}

	eng := &engine{
		shards:  shards,
		fam:     fam,
		sites:   sites,
		cfgs:    cfgs,
		alive:   make([]bool, sc.K),
		up:      sc.Up,
		down:    sc.Down,
		netRNG:  netRNG,
		joinRNG: joinRNG,
		depth:   sc.Depth,
	}
	for i := range eng.alive {
		eng.alive[i] = true
	}
	if sc.Depth > 0 {
		eng.sizes = netsim.TreeTierSizes(sc.K, sc.Fanout, sc.Depth)
		eng.relays = make([][][]*relay.Machine, sc.Depth)
		eng.severed = make([][]bool, sc.Depth)
		eng.edgeUp = make([][]netsim.LinkModel, sc.Depth)
		eng.edgeDown = make([][]netsim.LinkModel, sc.Depth)
		for t := 0; t < sc.Depth; t++ {
			eng.relays[t] = make([][]*relay.Machine, eng.sizes[t])
			eng.severed[t] = make([]bool, eng.sizes[t])
			eng.edgeUp[t] = make([]netsim.LinkModel, eng.sizes[t])
			eng.edgeDown[t] = make([]netsim.LinkModel, eng.sizes[t])
			for node := 0; node < eng.sizes[t]; node++ {
				eng.edgeUp[t][node] = sc.EdgeUp
				eng.edgeDown[t][node] = sc.EdgeDown
				machines := make([]*relay.Machine, shards)
				for p := 0; p < shards; p++ {
					machines[p] = relay.NewMachine(cfgs[p].S, relay.UnionMergeable(fam.proto(p)))
				}
				eng.relays[t][node] = machines
			}
		}
	}
	for _, f := range sc.Faults {
		eng.push(&event{at: f.At, kind: evFault, fault: f})
	}
	if u, ok := src.Next(); ok {
		eng.push(&event{at: u.At, kind: evArrival, upd: u})
	}

	if err := eng.run(src); err != nil {
		return nil, zero, err
	}

	res := &Result{Scenario: sc.Name, Engine: eng.stats, Shards: fam.results()}
	answer := app.Query(soloSnaps{n: shards})
	return res, answer, nil
}

type engine struct {
	shards  int
	fam     family
	sites   [][]netsim.Site[core.Message]
	cfgs    []core.Config
	alive   []bool
	up      netsim.LinkModel
	down    netsim.LinkModel
	netRNG  *xrand.RNG
	joinRNG *xrand.RNG

	// Relay tree (depth > 0): per-(tier, node) filter machines (one per
	// shard), severed-edge flags, and parent-edge link models.
	depth    int
	sizes    []int
	relays   [][][]*relay.Machine
	severed  [][]bool
	edgeUp   [][]netsim.LinkModel
	edgeDown [][]netsim.LinkModel

	heap  eventHeap
	seq   uint64
	now   float64
	stats EngineStats
}

func (e *engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.heap, ev)
}

func (e *engine) run(src Source) error {
	for e.heap.Len() > 0 {
		ev := heap.Pop(&e.heap).(*event)
		e.now = ev.at
		e.stats.FinalVirtualTime = ev.at
		switch ev.kind {
		case evArrival:
			if err := e.arrive(ev.upd); err != nil {
				return err
			}
			if u, ok := src.Next(); ok {
				e.push(&event{at: u.At, kind: evArrival, upd: u})
			}
		case evUp:
			e.deliverUp(ev.shard, ev.msg)
		case evDown:
			e.deliverDown(ev.shard, ev.site, ev.msg)
		case evUpRelay:
			e.deliverUpRelay(ev.tier, ev.node, ev.shard, ev.msg)
		case evDownRelay:
			e.deliverDownRelay(ev.tier, ev.node, ev.shard, ev.msg)
		case evFault:
			if err := e.applyFault(ev.fault); err != nil {
				return err
			}
		}
	}
	return nil
}

// leafOf returns the leaf relay site i attaches to (round-robin, the
// netsim.TreeCluster wiring).
func (e *engine) leafOf(site int) int { return site % e.sizes[e.depth-1] }

// parentOf returns the parent node index of relay (t, node) for t > 0.
func (e *engine) parentOf(t, node int) int { return node % e.sizes[t-1] }

func (e *engine) arrive(u TimedUpdate) error {
	e.stats.Arrivals++
	if !e.alive[u.Site] {
		e.stats.DroppedArrivals++
		return nil
	}
	p := fabric.ShardOf(u.Item.ID, e.shards)
	return e.sites[p][u.Site].Observe(u.Item, func(m core.Message) {
		if e.up.Lose(e.netRNG) {
			e.stats.UpLost++
			return
		}
		at := e.now + e.up.Delay(e.netRNG)
		if e.depth == 0 {
			e.push(&event{at: at, kind: evUp, shard: p, msg: m})
			return
		}
		e.push(&event{at: at, kind: evUpRelay, tier: e.depth - 1, node: e.leafOf(u.Site), shard: p, msg: m})
	})
}

// deliverUpRelay runs one upstream message through relay (t, node)'s
// shard filter; survivors cross the parent edge (severed check, then
// loss/delay) toward tier t-1 or the coordinator.
func (e *engine) deliverUpRelay(t, node, p int, m core.Message) {
	passed := false
	e.relays[t][node][p].Up(m, func(fm core.Message) {
		passed = true
		if e.severed[t][node] {
			e.stats.SeveredUp++
			return
		}
		lm := e.edgeUp[t][node]
		if lm.Lose(e.netRNG) {
			e.stats.UpLost++
			return
		}
		at := e.now + lm.Delay(e.netRNG)
		if t == 0 {
			e.push(&event{at: at, kind: evUp, shard: p, msg: fm})
			return
		}
		e.push(&event{at: at, kind: evUpRelay, tier: t - 1, node: e.parentOf(t, node), shard: p, msg: fm})
	})
	if !passed {
		e.stats.RelayFiltered++
	}
}

func (e *engine) deliverUp(p int, m core.Message) {
	e.stats.UpDelivered++
	e.fam.handle(p, m, func(b core.Message) { e.broadcast(p, b) })
}

// broadcast fans one coordinator announcement down: directly to every
// live site on a flat topology, through the root edges and relay tiers
// on a tree.
func (e *engine) broadcast(p int, b core.Message) {
	if e.depth == 0 {
		for i := range e.sites[p] {
			if !e.alive[i] {
				e.stats.DownToDead++
				continue
			}
			if e.down.Lose(e.netRNG) {
				e.stats.DownLost++
				continue
			}
			e.push(&event{at: e.now + e.down.Delay(e.netRNG), kind: evDown, shard: p, site: i, msg: b})
		}
		return
	}
	for node := 0; node < e.sizes[0]; node++ {
		if e.severed[0][node] {
			e.stats.SeveredDown++
			continue
		}
		lm := e.edgeDown[0][node]
		if lm.Lose(e.netRNG) {
			e.stats.DownLost++
			continue
		}
		e.push(&event{at: e.now + lm.Delay(e.netRNG), kind: evDownRelay, tier: 0, node: node, shard: p, msg: b})
	}
}

// deliverDownRelay records the broadcast on relay (t, node)'s monotone
// control-plane view and fans it further down: to child relays over
// their parent edges, or — at the leaf tier — to the node's live sites
// over the site-edge model.
func (e *engine) deliverDownRelay(t, node, p int, m core.Message) {
	e.relays[t][node][p].Down(m)
	if t < e.depth-1 {
		for child := 0; child < e.sizes[t+1]; child++ {
			if e.parentOf(t+1, child) != node {
				continue
			}
			if e.severed[t+1][child] {
				e.stats.SeveredDown++
				continue
			}
			lm := e.edgeDown[t+1][child]
			if lm.Lose(e.netRNG) {
				e.stats.DownLost++
				continue
			}
			e.push(&event{at: e.now + lm.Delay(e.netRNG), kind: evDownRelay, tier: t + 1, node: child, shard: p, msg: m})
		}
		return
	}
	for i := range e.sites[p] {
		if e.leafOf(i) != node {
			continue
		}
		if !e.alive[i] {
			e.stats.DownToDead++
			continue
		}
		if e.down.Lose(e.netRNG) {
			e.stats.DownLost++
			continue
		}
		e.push(&event{at: e.now + e.down.Delay(e.netRNG), kind: evDown, shard: p, site: i, msg: m})
	}
}

func (e *engine) deliverDown(p, site int, m core.Message) {
	if !e.alive[site] {
		e.stats.DownToDead++
		return
	}
	e.stats.DownDelivered++
	e.sites[p][site].HandleBroadcast(m)
}

func (e *engine) applyFault(f Fault) error {
	switch f.Kind {
	case SiteCrash:
		e.alive[f.Site] = false
		e.stats.Crashes++
	case SiteJoin:
		// A fresh replacement instance per shard. Its control-plane
		// snapshot replays from what it would attach to in the real
		// deployment: its leaf relay's monotone view on a tree, the
		// coordinator's on a flat topology — both safe (the relay's
		// view is a subset of the coordinator's, and replaying less
		// only makes the site send more).
		for p := range e.sites {
			ns, err := e.fam.newSite(p, f.Site, e.sites[p][f.Site], e.joinRNG.Split())
			if err != nil {
				return err
			}
			replay := func(m core.Message) { ns.HandleBroadcast(m) }
			if e.depth > 0 {
				e.relays[e.depth-1][e.leafOf(f.Site)][p].Snapshot(replay)
			} else {
				e.fam.controlSnapshot(p, replay)
			}
			e.sites[p][f.Site] = ns
		}
		e.alive[f.Site] = true
		e.stats.Joins++
	case CoordSnapshot:
		e.fam.snapshot()
		e.stats.Snapshots++
	case CoordRestart:
		rolled, err := e.fam.restore()
		if err != nil {
			return err
		}
		e.stats.AcksRolledBack += rolled
		e.stats.Restarts++
	case LinkSet:
		e.up, e.down = f.Up, f.Down
		e.stats.LinkChanges++
	case SeverParent:
		e.severed[f.Tier][f.Node] = true
		e.stats.Severs++
	case Reparent:
		e.severed[f.Tier][f.Node] = false
		e.stats.Reparents++
		e.reattach(f.Tier, f.Node)
	case EdgeLinkSet:
		e.edgeUp[f.Tier][f.Node] = f.Up
		e.edgeDown[f.Tier][f.Node] = f.Down
		e.stats.EdgeChanges++
	}
	return nil
}

// reattach replays the parent's monotone control-plane snapshot down
// the re-attached subtree, mirroring the TCP relay's child-join path:
// the snapshot rides connection registration (reliable, instant), not
// the lossy broadcast fan-down. Because broadcasts are monotone —
// thresholds only rise, saturations only set — replaying state the
// subtree partially has can never move any view backwards, and a
// coordinator restart having rewound the live threshold does not make
// the replay unsafe: the relay's recorded threshold was genuinely
// broadcast, so everything it pre-filters had s released dominators
// when that bound was issued (DESIGN.md §14/§15.7).
func (e *engine) reattach(t, node int) {
	for p := 0; p < e.shards; p++ {
		var msgs []core.Message
		emit := func(m core.Message) { msgs = append(msgs, m) }
		if t == 0 {
			e.fam.controlSnapshot(p, emit)
		} else {
			e.relays[t-1][e.parentOf(t, node)][p].Snapshot(emit)
		}
		e.replayDownSubtree(t, node, p, msgs)
	}
}

// replayDownSubtree applies snapshot messages to relay (t, node) and
// everything below it that is currently attached; a severed child stays
// partitioned and will get its own replay when it reattaches.
func (e *engine) replayDownSubtree(t, node, p int, msgs []core.Message) {
	for _, m := range msgs {
		e.relays[t][node][p].Down(m)
	}
	if t < e.depth-1 {
		for child := 0; child < e.sizes[t+1]; child++ {
			if e.parentOf(t+1, child) != node || e.severed[t+1][child] {
				continue
			}
			e.replayDownSubtree(t+1, child, p, msgs)
		}
		return
	}
	for i := range e.sites[p] {
		if e.leafOf(i) != node || !e.alive[i] {
			continue
		}
		for _, m := range msgs {
			e.sites[p][i].HandleBroadcast(m)
		}
	}
}
