package workload

import (
	"container/heap"
	"fmt"

	"wrs"
	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	"wrs/internal/xrand"
)

// The scenario engine: a virtual-clock event simulator that drives the
// protocol state machines of any supported App through a workload and a
// fault schedule. Every source of nondeterminism — arrival gaps, link
// delays, loss, key draws — comes from RNGs split off the scenario seed
// in a fixed order, and simultaneous events break ties by schedule
// order, so a (scenario, seed) pair names one exact execution: same
// final sample, same statistics, bit for bit.
//
// Exactness under faults is judged against the acknowledgment oracle:
// the engine logs every (key, item) the coordinator actually processed
// — regular messages carry their key, early messages' keys are
// recovered from the attached core.Recorder — rolls the log back on
// coordinator restart exactly as far as the restored checkpoint, and
// requires the final per-shard query to equal the brute-force top-s of
// the log. Updates that never reached the coordinator (crashed site,
// lost message, filtered below a stale-high threshold) are exactly the
// updates absent from the log, so the criterion is meaningful under
// every fault the engine can inject. See DESIGN.md §15 for why the
// protocol's monotone control plane makes the faulted executions safe.

type eventKind uint8

const (
	evArrival eventKind = iota
	evUp
	evDown
	evFault
)

type event struct {
	at    float64
	seq   uint64
	kind  eventKind
	upd   TimedUpdate  // evArrival
	shard int          // evUp, evDown
	site  int          // evDown
	msg   core.Message // evUp, evDown
	fault Fault        // evFault
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EngineStats are the engine's deterministic counters. Two runs of the
// same scenario and seed produce identical EngineStats.
type EngineStats struct {
	Arrivals         int // updates drawn from the workload source
	DroppedArrivals  int // arrivals addressed to a crashed site
	UpDelivered      int // site -> coordinator messages delivered
	UpLost           int // site -> coordinator messages lost by the link
	DownDelivered    int // broadcast copies delivered to live sites
	DownLost         int // broadcast copies lost by the link
	DownToDead       int // broadcast copies addressed to a crashed site
	Crashes          int
	Joins            int
	Snapshots        int
	Restarts         int
	LinkChanges      int
	AcksRolledBack   int     // acknowledgment log entries discarded by restarts
	FinalVirtualTime float64 // virtual time of the last event
}

// ShardResult is one shard's final protocol state and its oracle.
type ShardResult struct {
	Query  []core.SampleEntry // the coordinator's final sample, desc by key
	Oracle []core.SampleEntry // brute-force top-s over acknowledged updates
	Acked  int                // acknowledgment log length at the end
	Stats  core.CoordStats
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario string
	Shards   []ShardResult
	Engine   EngineStats
}

// Err returns nil when every shard's final query equals its
// acknowledgment oracle, and a description of the first divergence
// otherwise.
func (r *Result) Err() error {
	for p, sh := range r.Shards {
		if len(sh.Query) != len(sh.Oracle) {
			return fmt.Errorf("workload: scenario %q shard %d: query has %d entries, oracle %d",
				r.Scenario, p, len(sh.Query), len(sh.Oracle))
		}
		for i := range sh.Query {
			if sh.Query[i] != sh.Oracle[i] {
				return fmt.Errorf("workload: scenario %q shard %d entry %d: query %+v, oracle %+v",
					r.Scenario, p, i, sh.Query[i], sh.Oracle[i])
			}
		}
	}
	return nil
}

// Fingerprint renders the result as a string that two runs match on iff
// they are bit-identical: float64 values print as their shortest
// round-trippable representation, so distinct bits give distinct
// fingerprints.
func (r *Result) Fingerprint() string {
	return fmt.Sprintf("%+v", *r)
}

// soloSnaps is the single-threaded wrs.Snapshots: the engine owns every
// state machine, nothing runs concurrently, so a view is a direct call.
type soloSnaps struct{ n int }

func (s soloSnaps) Shards() int           { return s.n }
func (s soloSnaps) View(_ int, fn func()) { fn() }

// RunApp drives app through the scenario and returns the engine result
// together with the application's final answer. The app descriptor is
// consumed (one-shot, as with wrs.Open): build a fresh one per run.
//
// Supported apps are those whose per-shard coordinator is the plain
// core sampler — Sampler, HeavyHitters, Quantiles. Apps that wrap or
// replace the coordinator state machine (L1's duplication wrapper, the
// windowed protocol) are rejected: their acknowledgment oracles need
// app-specific replay logic that does not exist yet.
func RunApp[Q any](sc Scenario, app wrs.App[Q]) (*Result, Q, error) {
	var zero Q
	if err := sc.Validate(); err != nil {
		return nil, zero, err
	}
	shards := sc.Shards
	if shards == 0 {
		shards = 1
	}

	// Build the protocol fabric exactly as wrs.Open would: the app
	// splits master in the documented order, so a scenario seed pins
	// the same instances a production Open(WithSeed(seed)) builds.
	master := xrand.New(sc.Seed)
	insts, err := app.Instances(sc.K, shards, master)
	if err != nil {
		return nil, zero, err
	}
	if len(insts) != shards {
		return nil, zero, fmt.Errorf("workload: app built %d instances for %d shards", len(insts), shards)
	}
	coords := make([]*core.Coordinator, shards)
	recs := make([]*core.Recorder, shards)
	sites := make([][]netsim.Site[core.Message], shards)
	for p, inst := range insts {
		coord, ok := inst.Coord.(*core.Coordinator)
		if !ok {
			return nil, zero, fmt.Errorf("workload: app coordinator %T is not the plain core sampler; scenario oracles support swor/hh/quantile only", inst.Coord)
		}
		coords[p] = coord
		recs[p] = core.NewRecorder()
		coord.SetRecorder(recs[p])
		sites[p] = inst.Sites
	}

	// Engine RNGs come from a salted seed, NOT from the app's master:
	// the workload, the network and the join randomness are then
	// independent of how many streams the app split off, so the same
	// scenario feeds the identical update sequence to every app and a
	// recorded trace replays bit-for-bit regardless of the source kind.
	netRNG, _, joinRNG := sc.auxRNGs()

	src := sc.OpenSource()
	if src.K() != sc.K {
		return nil, zero, fmt.Errorf("workload: spec is for %d sites, scenario has %d", src.K(), sc.K)
	}

	eng := &engine{
		shards:  shards,
		coords:  coords,
		recs:    recs,
		sites:   sites,
		alive:   make([]bool, sc.K),
		up:      sc.Up,
		down:    sc.Down,
		netRNG:  netRNG,
		joinRNG: joinRNG,
		acks:    make([][]core.SampleEntry, shards),
		cfgs:    make([]core.Config, shards),
	}
	for i := range eng.alive {
		eng.alive[i] = true
	}
	for p, inst := range insts {
		eng.cfgs[p] = inst.Cfg
	}
	for _, f := range sc.Faults {
		eng.push(&event{at: f.At, kind: evFault, fault: f})
	}
	if u, ok := src.Next(); ok {
		eng.push(&event{at: u.At, kind: evArrival, upd: u})
	}

	if err := eng.run(src); err != nil {
		return nil, zero, err
	}

	res := &Result{Scenario: sc.Name, Engine: eng.stats, Shards: make([]ShardResult, shards)}
	for p := range coords {
		oracle := append([]core.SampleEntry(nil), eng.acks[p]...)
		res.Shards[p] = ShardResult{
			Query:  coords[p].Query(),
			Oracle: core.TopSample(oracle, eng.cfgs[p].S),
			Acked:  len(eng.acks[p]),
			Stats:  coords[p].Stats,
		}
	}
	answer := app.Query(soloSnaps{n: shards})
	return res, answer, nil
}

type engine struct {
	shards  int
	coords  []*core.Coordinator
	recs    []*core.Recorder
	sites   [][]netsim.Site[core.Message]
	cfgs    []core.Config
	alive   []bool
	up      netsim.LinkModel
	down    netsim.LinkModel
	netRNG  *xrand.RNG
	joinRNG *xrand.RNG

	heap  eventHeap
	seq   uint64
	now   float64
	stats EngineStats

	acks       [][]core.SampleEntry
	snapStates []*core.CoordinatorState
	snapAcks   []int
}

func (e *engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.heap, ev)
}

func (e *engine) run(src Source) error {
	for e.heap.Len() > 0 {
		ev := heap.Pop(&e.heap).(*event)
		e.now = ev.at
		e.stats.FinalVirtualTime = ev.at
		switch ev.kind {
		case evArrival:
			if err := e.arrive(ev.upd); err != nil {
				return err
			}
			if u, ok := src.Next(); ok {
				e.push(&event{at: u.At, kind: evArrival, upd: u})
			}
		case evUp:
			e.deliverUp(ev.shard, ev.msg)
		case evDown:
			e.deliverDown(ev.shard, ev.site, ev.msg)
		case evFault:
			if err := e.applyFault(ev.fault); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *engine) arrive(u TimedUpdate) error {
	e.stats.Arrivals++
	if !e.alive[u.Site] {
		e.stats.DroppedArrivals++
		return nil
	}
	p := fabric.ShardOf(u.Item.ID, e.shards)
	return e.sites[p][u.Site].Observe(u.Item, func(m core.Message) {
		if e.up.Lose(e.netRNG) {
			e.stats.UpLost++
			return
		}
		e.push(&event{at: e.now + e.up.Delay(e.netRNG), kind: evUp, shard: p, msg: m})
	})
}

func (e *engine) deliverUp(p int, m core.Message) {
	e.stats.UpDelivered++
	e.coords[p].HandleMessage(m, func(b core.Message) {
		for i := range e.sites[p] {
			if !e.alive[i] {
				e.stats.DownToDead++
				continue
			}
			if e.down.Lose(e.netRNG) {
				e.stats.DownLost++
				continue
			}
			e.push(&event{at: e.now + e.down.Delay(e.netRNG), kind: evDown, shard: p, site: i, msg: b})
		}
	})
	switch m.Kind {
	case core.MsgRegular:
		e.acks[p] = append(e.acks[p], core.SampleEntry{Key: m.Key, Item: m.Item})
	case core.MsgEarly:
		// The coordinator drew this item's key on arrival and the
		// attached recorder captured it; stream positions are unique
		// IDs, so the lookup is unambiguous.
		key, ok := e.recs[p].Key(m.Item.ID)
		if !ok {
			panic(fmt.Sprintf("workload: early item %d has no recorded key", m.Item.ID))
		}
		e.acks[p] = append(e.acks[p], core.SampleEntry{Key: key, Item: m.Item})
	default:
		// Sites only ever send MsgRegular and MsgEarly; control kinds
		// (MsgEpochUpdate, MsgLevelSaturated, MsgClock) flow downstream
		// and MsgWindow belongs to the windowed runtime the engine
		// rejects at RunApp. Nothing to acknowledge.
	}
}

func (e *engine) deliverDown(p, site int, m core.Message) {
	if !e.alive[site] {
		e.stats.DownToDead++
		return
	}
	e.stats.DownDelivered++
	e.sites[p][site].HandleBroadcast(m)
}

func (e *engine) applyFault(f Fault) error {
	switch f.Kind {
	case SiteCrash:
		e.alive[f.Site] = false
		e.stats.Crashes++
	case SiteJoin:
		// A fresh replacement instance per shard, control-plane state
		// seeded from the coordinator exactly like the TCP transport's
		// late-joiner snapshot.
		for p := range e.sites {
			ns := core.NewSite(f.Site, e.cfgs[p], e.joinRNG.Split())
			for _, j := range e.coords[p].SaturatedLevels() {
				ns.HandleBroadcast(core.Message{Kind: core.MsgLevelSaturated, Level: j})
			}
			if th := e.coords[p].CurrentThreshold(); th > 0 {
				ns.HandleBroadcast(core.Message{Kind: core.MsgEpochUpdate, Threshold: th})
			}
			e.sites[p][f.Site] = ns
		}
		e.alive[f.Site] = true
		e.stats.Joins++
	case CoordSnapshot:
		if e.snapStates == nil {
			e.snapStates = make([]*core.CoordinatorState, e.shards)
			e.snapAcks = make([]int, e.shards)
		}
		for p, c := range e.coords {
			e.snapStates[p] = c.ExportState()
			e.snapAcks[p] = len(e.acks[p])
		}
		e.stats.Snapshots++
	case CoordRestart:
		if e.snapStates == nil {
			return fmt.Errorf("workload: coord-restart with no snapshot taken")
		}
		for p, c := range e.coords {
			if err := c.RestoreState(e.snapStates[p]); err != nil {
				return err
			}
			e.stats.AcksRolledBack += len(e.acks[p]) - e.snapAcks[p]
			// Full slice expression: appends after the rollback must
			// not overwrite the (dead) entries past the checkpoint in
			// a way that would alias a prior snapshot's backing array.
			e.acks[p] = e.acks[p][:e.snapAcks[p]:e.snapAcks[p]]
		}
		e.stats.Restarts++
	case LinkSet:
		e.up, e.down = f.Up, f.Down
		e.stats.LinkChanges++
	}
	return nil
}
