package workload

import (
	"fmt"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// TimedUpdate is a stream update stamped with its virtual arrival time.
type TimedUpdate struct {
	stream.Update
	At float64
}

// Spec declares a workload: how many updates over how many sites, which
// weight and placement distributions, and the arrival process that
// spaces them on the virtual clock. A Spec is a recipe; Open binds it
// to an RNG and produces the concrete update sequence.
type Spec struct {
	N        int
	K        int
	Weights  stream.WeightFn
	Assign   stream.AssignFn
	Arrivals ArrivalProcess
}

// Source produces the timed updates of one workload run. Implementations
// are the generative Spec source and the recorded-trace replayer; both
// yield identical sequences for identical histories, which is what makes
// any run reproducible bit-for-bit.
type Source interface {
	// Next returns the next timed update; ok is false once exhausted.
	Next() (TimedUpdate, bool)
	// K returns the number of sites the updates are addressed to.
	K() int
}

// Open binds the spec to an RNG and returns its update source. The RNG
// drives weights, placement, and arrival gaps in a fixed interleaved
// order (gap, then weight, then site, per update), so one seed pins the
// entire workload.
func (sp Spec) Open(rng *xrand.RNG) Source {
	if sp.N < 0 || sp.K <= 0 {
		panic(fmt.Sprintf("workload: Spec needs N >= 0 and K > 0, got N=%d K=%d", sp.N, sp.K))
	}
	if sp.Weights == nil || sp.Assign == nil || sp.Arrivals == nil {
		panic("workload: Spec needs Weights, Assign and Arrivals")
	}
	sp.Arrivals.Reset()
	return &specSource{
		g:   stream.NewGenerator(sp.N, sp.K, sp.Weights, sp.Assign),
		arr: sp.Arrivals,
		rng: rng,
		k:   sp.K,
	}
}

type specSource struct {
	g   *stream.Generator
	arr ArrivalProcess
	rng *xrand.RNG
	k   int
	now float64
}

func (s *specSource) K() int { return s.k }

func (s *specSource) Next() (TimedUpdate, bool) {
	// Draw the gap before the update so the arrival process modulates
	// on the clock of the *previous* arrival, matching a live system
	// where time passes before the next item exists.
	gap := s.arr.Gap(s.now, s.rng)
	if !(gap > 0) {
		panic(fmt.Sprintf("workload: arrival process returned non-positive gap %v", gap))
	}
	u, ok := s.g.Next(s.rng)
	if !ok {
		return TimedUpdate{}, false
	}
	s.now += gap
	return TimedUpdate{Update: u, At: s.now}, true
}
