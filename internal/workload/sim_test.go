package workload

import (
	"strings"
	"testing"

	"wrs"
)

// scale shrinks scenario streams in -short mode (the CI race smoke)
// while keeping every fault inside the stream.
func scale(sc Scenario, short bool) Scenario {
	if short {
		sc.N /= 4
	}
	return sc
}

// TestScenariosExactAndDeterministic is the acceptance matrix: every
// built-in scenario × app × shard count must (1) satisfy the exactness
// criterion — final per-shard query equals the brute-force top-s oracle
// over acknowledged updates — and (2) be deterministic: a second run
// with the same seed reproduces the identical result fingerprint and
// application answer.
func TestScenariosExactAndDeterministic(t *testing.T) {
	for _, base := range Builtin() {
		for _, app := range AppNames() {
			for _, shards := range []int{1, 2} {
				sc := scale(base, testing.Short())
				sc.Shards = shards
				name := sc.Name + "/" + app + "/shards=" + string(rune('0'+shards))
				t.Run(name, func(t *testing.T) {
					res1, ans1, err := RunNamed(sc, app)
					if err != nil {
						t.Fatal(err)
					}
					if err := res1.Err(); err != nil {
						t.Fatalf("exactness violated: %v", err)
					}
					res2, ans2, err := RunNamed(sc, app)
					if err != nil {
						t.Fatal(err)
					}
					if res1.Fingerprint() != res2.Fingerprint() {
						t.Errorf("nondeterministic result:\nrun1: %s\nrun2: %s", res1.Fingerprint(), res2.Fingerprint())
					}
					if ans1 != ans2 {
						t.Errorf("nondeterministic answer:\nrun1: %s\nrun2: %s", ans1, ans2)
					}
				})
			}
		}
	}
}

// TestScenarioFaultsActuallyFire guards against schedules silently
// missing the stream: each built-in scenario's characteristic fault
// must leave its trace in the engine counters.
func TestScenarioFaultsActuallyFire(t *testing.T) {
	run := func(name string) *Result {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		res, _, err := RunNamed(sc, "swor")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	churn := run("churn")
	if churn.Engine.Crashes != 2 || churn.Engine.Joins != 1 {
		t.Errorf("churn: crashes=%d joins=%d, want 2/1", churn.Engine.Crashes, churn.Engine.Joins)
	}
	if churn.Engine.DroppedArrivals == 0 {
		t.Error("churn: no arrivals were dropped by the crashed sites")
	}
	restart := run("restart")
	if restart.Engine.Snapshots != 2 || restart.Engine.Restarts != 2 {
		t.Errorf("restart: snapshots=%d restarts=%d, want 2/2", restart.Engine.Snapshots, restart.Engine.Restarts)
	}
	if restart.Engine.AcksRolledBack == 0 {
		t.Error("restart: restart rolled back nothing — schedule missed the stream")
	}
	lossy := run("lossy")
	if lossy.Engine.UpLost == 0 && lossy.Engine.DownLost == 0 {
		t.Error("lossy: the lossy link lost nothing")
	}
	if lossy.Engine.LinkChanges != 2 {
		t.Errorf("lossy: link changes = %d, want 2", lossy.Engine.LinkChanges)
	}
}

// TestTraceReplayReproducesRun is the recorded-trace contract: record
// the workload of a scenario, replay the scenario from the trace, and
// the engine reproduces the generative run bit-for-bit.
func TestTraceReplayReproducesRun(t *testing.T) {
	sc, _ := Lookup("churn")
	sc.N = 1000
	live, ansLive, err := RunNamed(sc, "swor")
	if err != nil {
		t.Fatal(err)
	}
	tr := recordScenarioWorkload(t, sc)
	replayed, ansReplayed, err := RunNamed(WithTrace(sc, tr), "swor")
	if err != nil {
		t.Fatal(err)
	}
	if live.Fingerprint() != replayed.Fingerprint() {
		t.Errorf("trace replay diverged:\nlive:   %s\nreplay: %s", live.Fingerprint(), replayed.Fingerprint())
	}
	if ansLive != ansReplayed {
		t.Errorf("trace replay answer diverged:\nlive:   %s\nreplay: %s", ansLive, ansReplayed)
	}
}

// TestRunAppRejectsWrappedCoordinators pins the support boundary: apps
// whose coordinator is not the plain core sampler are refused rather
// than checked against a wrong oracle.
func TestRunAppRejectsWrappedCoordinators(t *testing.T) {
	sc, _ := Lookup("lossy")
	_, _, err := RunApp(sc, wrs.L1(sc.K, 0.3, 0.2))
	if err == nil || !strings.Contains(err.Error(), "not the plain core sampler") {
		t.Errorf("L1 app accepted by scenario engine: %v", err)
	}
}

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		sch  Schedule
		ok   bool
	}{
		{"empty", nil, true},
		{"crash+join", Schedule{{At: 1, Kind: SiteCrash, Site: 0}, {At: 2, Kind: SiteJoin, Site: 0}}, true},
		{"site out of range", Schedule{{At: 1, Kind: SiteCrash, Site: 4}}, false},
		{"negative time", Schedule{{At: -1, Kind: CoordSnapshot}}, false},
		{"restart without snapshot", Schedule{{At: 1, Kind: CoordRestart}}, false},
		{"restart after snapshot, out of order in slice", Schedule{{At: 2, Kind: CoordRestart}, {At: 1, Kind: CoordSnapshot}}, true},
		{"bad link model", Schedule{{At: 1, Kind: LinkSet, Up: badLink()}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.sch.Validate(4)
			if (err == nil) != c.ok {
				t.Errorf("Validate = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

// TestRestartMidFlightIsExact stresses the nastiest interleaving: a
// coordinator restart while messages are in flight on a slow link, so
// deliveries from before the snapshot arrive after the restore. The
// ack-oracle criterion must still hold.
func TestRestartMidFlightIsExact(t *testing.T) {
	sc, _ := Lookup("restart")
	sc.Up = lateLink()
	sc.Down = lateLink()
	for _, shards := range []int{1, 2} {
		sc.Shards = shards
		res, _, err := RunNamed(sc, "swor")
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Errorf("shards=%d: %v", shards, err)
		}
	}
}
