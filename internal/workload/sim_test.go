package workload

import (
	"runtime"
	"strings"
	"testing"
)

// scale shrinks scenario streams in -short mode (the CI race smoke)
// while keeping every fault inside the stream.
func scale(sc Scenario, short bool) Scenario {
	if short {
		sc.N /= 4
	}
	return sc
}

// TestScenariosExactAndDeterministic is the acceptance matrix: every
// built-in scenario × app × shard count must (1) satisfy the exactness
// criterion — final per-shard query equals the brute-force top-s oracle
// over acknowledged updates — and (2) be deterministic: a second run
// with the same seed reproduces the identical result fingerprint and
// application answer.
func TestScenariosExactAndDeterministic(t *testing.T) {
	for _, base := range Builtin() {
		for _, app := range AppNames() {
			for _, shards := range []int{1, 2} {
				sc := scale(base, testing.Short())
				sc.Shards = shards
				name := sc.Name + "/" + app + "/shards=" + string(rune('0'+shards))
				t.Run(name, func(t *testing.T) {
					res1, ans1, err := RunNamed(sc, app)
					if err != nil {
						t.Fatal(err)
					}
					if err := res1.Err(); err != nil {
						t.Fatalf("exactness violated: %v", err)
					}
					res2, ans2, err := RunNamed(sc, app)
					if err != nil {
						t.Fatal(err)
					}
					if res1.Fingerprint() != res2.Fingerprint() {
						t.Errorf("nondeterministic result:\nrun1: %s\nrun2: %s", res1.Fingerprint(), res2.Fingerprint())
					}
					if ans1 != ans2 {
						t.Errorf("nondeterministic answer:\nrun1: %s\nrun2: %s", ans1, ans2)
					}
				})
			}
		}
	}
}

// TestScenarioFaultsActuallyFire guards against schedules silently
// missing the stream: each built-in scenario's characteristic fault
// must leave its trace in the engine counters.
func TestScenarioFaultsActuallyFire(t *testing.T) {
	run := func(name string) *Result {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		res, _, err := RunNamed(sc, "swor")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	churn := run("churn")
	if churn.Engine.Crashes != 2 || churn.Engine.Joins != 1 {
		t.Errorf("churn: crashes=%d joins=%d, want 2/1", churn.Engine.Crashes, churn.Engine.Joins)
	}
	if churn.Engine.DroppedArrivals == 0 {
		t.Error("churn: no arrivals were dropped by the crashed sites")
	}
	restart := run("restart")
	if restart.Engine.Snapshots != 2 || restart.Engine.Restarts != 2 {
		t.Errorf("restart: snapshots=%d restarts=%d, want 2/2", restart.Engine.Snapshots, restart.Engine.Restarts)
	}
	if restart.Engine.AcksRolledBack == 0 {
		t.Error("restart: restart rolled back nothing — schedule missed the stream")
	}
	lossy := run("lossy")
	if lossy.Engine.UpLost == 0 && lossy.Engine.DownLost == 0 {
		t.Error("lossy: the lossy link lost nothing")
	}
	if lossy.Engine.LinkChanges != 2 {
		t.Errorf("lossy: link changes = %d, want 2", lossy.Engine.LinkChanges)
	}
}

// TestTraceReplayReproducesRun is the recorded-trace contract: record
// the workload of a scenario, replay the scenario from the trace, and
// the engine reproduces the generative run bit-for-bit.
func TestTraceReplayReproducesRun(t *testing.T) {
	sc, _ := Lookup("churn")
	sc.N = 1000
	live, ansLive, err := RunNamed(sc, "swor")
	if err != nil {
		t.Fatal(err)
	}
	tr := recordScenarioWorkload(t, sc)
	replayed, ansReplayed, err := RunNamed(WithTrace(sc, tr), "swor")
	if err != nil {
		t.Fatal(err)
	}
	if live.Fingerprint() != replayed.Fingerprint() {
		t.Errorf("trace replay diverged:\nlive:   %s\nreplay: %s", live.Fingerprint(), replayed.Fingerprint())
	}
	if ansLive != ansReplayed {
		t.Errorf("trace replay answer diverged:\nlive:   %s\nreplay: %s", ansLive, ansReplayed)
	}
}

// TestTreeScenarioFaultsActuallyFire is the tree-topology counterpart:
// the relay scenarios' severs, reparents and edge changes must leave
// their traces in the engine counters, and a severed edge must actually
// drop traffic.
func TestTreeScenarioFaultsActuallyFire(t *testing.T) {
	run := func(name string) *Result {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("scenario %q missing", name)
		}
		res, _, err := RunNamed(sc, "swor")
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Fatalf("%s: exactness violated: %v", name, err)
		}
		return res
	}
	sever := run("tree-sever")
	if sever.Engine.Severs != 2 || sever.Engine.Reparents != 2 {
		t.Errorf("tree-sever: severs=%d reparents=%d, want 2/2", sever.Engine.Severs, sever.Engine.Reparents)
	}
	if sever.Engine.SeveredUp == 0 {
		t.Error("tree-sever: severed edges dropped no upstream traffic — schedule missed the stream")
	}
	lossy := run("tree-lossy")
	if lossy.Engine.EdgeChanges != 1 {
		t.Errorf("tree-lossy: edge changes = %d, want 1", lossy.Engine.EdgeChanges)
	}
	if lossy.Engine.Snapshots != 1 || lossy.Engine.Restarts != 1 {
		t.Errorf("tree-lossy: snapshots=%d restarts=%d, want 1/1", lossy.Engine.Snapshots, lossy.Engine.Restarts)
	}
	if lossy.Engine.UpLost == 0 {
		t.Error("tree-lossy: the lossy links lost nothing")
	}
}

// TestRelayFilteringActuallyHappens confirms the tree engine's filter
// machines are not pass-through: on a scenario with enough stream
// behind a relay, some upstream messages must be swallowed by the
// threshold pre-filter or the top-s union merge, and exactness must
// hold regardless (the oracle is delivery-relative).
func TestRelayFilteringActuallyHappens(t *testing.T) {
	sc, ok := Lookup("tree-sever")
	if !ok {
		t.Fatal("scenario tree-sever missing")
	}
	res, _, err := RunNamed(sc, "swor")
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.RelayFiltered == 0 {
		t.Error("relay machines filtered nothing — the tree is a pass-through")
	}
}

// TestRunNamedUnknownApp pins the app-name boundary of the engine's
// by-name entry point.
func TestRunNamedUnknownApp(t *testing.T) {
	sc, _ := Lookup("lossy")
	_, _, err := RunNamed(sc, "bogus")
	if err == nil || !strings.Contains(err.Error(), "unknown app") {
		t.Errorf("bogus app accepted: %v", err)
	}
}

// TestScheduleValidate is the table of Validate's rejection paths: site
// ranges, liveness bookkeeping (no crashing a dead site, no joining a
// live one), snapshot/restart ordering, horizon clipping, link-model
// sanity, and — with a tree context — tier/node ranges and severed-edge
// alternation.
func TestScheduleValidate(t *testing.T) {
	flat := ScheduleContext{K: 4}
	horizon := ScheduleContext{K: 4, Horizon: 2}
	tree := ScheduleContext{K: 8, Fanout: 2, Depth: 2} // tier sizes [2 4]
	cases := []struct {
		name string
		sch  Schedule
		ctx  ScheduleContext
		ok   bool
	}{
		{"empty", nil, flat, true},
		{"crash+join", Schedule{{At: 1, Kind: SiteCrash, Site: 0}, {At: 2, Kind: SiteJoin, Site: 0}}, flat, true},
		{"site out of range", Schedule{{At: 1, Kind: SiteCrash, Site: 4}}, flat, false},
		{"negative site", Schedule{{At: 1, Kind: SiteCrash, Site: -1}}, flat, false},
		{"negative time", Schedule{{At: -1, Kind: CoordSnapshot}}, flat, false},
		{"crash a dead site", Schedule{{At: 1, Kind: SiteCrash, Site: 2}, {At: 2, Kind: SiteCrash, Site: 2}}, flat, false},
		{"join a live site", Schedule{{At: 1, Kind: SiteJoin, Site: 2}}, flat, false},
		{"crash join crash", Schedule{{At: 1, Kind: SiteCrash, Site: 2}, {At: 2, Kind: SiteJoin, Site: 2}, {At: 3, Kind: SiteCrash, Site: 2}}, flat, true},
		{"restart without snapshot", Schedule{{At: 1, Kind: CoordRestart}}, flat, false},
		{"restart after snapshot, out of order in slice", Schedule{{At: 2, Kind: CoordRestart}, {At: 1, Kind: CoordSnapshot}}, flat, true},
		{"bad link model", Schedule{{At: 1, Kind: LinkSet, Up: badLink()}}, flat, false},
		{"inside horizon", Schedule{{At: 1.9, Kind: CoordSnapshot}}, horizon, true},
		{"at horizon", Schedule{{At: 2, Kind: CoordSnapshot}}, horizon, false},
		{"after horizon", Schedule{{At: 3, Kind: SiteCrash, Site: 0}}, horizon, false},
		{"sever+reparent", Schedule{{At: 1, Kind: SeverParent, Tier: 1, Node: 3}, {At: 2, Kind: Reparent, Tier: 1, Node: 3}}, tree, true},
		{"tree fault on flat topology", Schedule{{At: 1, Kind: SeverParent}}, flat, false},
		{"tier out of range", Schedule{{At: 1, Kind: SeverParent, Tier: 2}}, tree, false},
		{"node out of range", Schedule{{At: 1, Kind: SeverParent, Tier: 0, Node: 2}}, tree, false},
		{"sever a severed edge", Schedule{{At: 1, Kind: SeverParent, Tier: 1, Node: 1}, {At: 2, Kind: SeverParent, Tier: 1, Node: 1}}, tree, false},
		{"reparent an attached edge", Schedule{{At: 1, Kind: Reparent, Tier: 0, Node: 0}}, tree, false},
		{"edge link set", Schedule{{At: 1, Kind: EdgeLinkSet, Tier: 0, Node: 1}}, tree, true},
		{"edge link set bad model", Schedule{{At: 1, Kind: EdgeLinkSet, Tier: 0, Node: 1, Down: badLink()}}, tree, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.sch.Validate(c.ctx)
			if (err == nil) != c.ok {
				t.Errorf("Validate = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

// TestReplayDeterministicAcrossGOMAXPROCS pins that chaos-run
// determinism does not depend on the scheduler: record a chaos run's
// workload, replay the scenario from the trace at GOMAXPROCS 1 and 4,
// and demand bit-identical samples and statistics — both between the
// two replays and against the generative run. The engine is
// single-goroutine by construction, so a divergence here means some
// state machine leaked wall-clock or scheduler nondeterminism into the
// virtual-clock run.
func TestReplayDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc, _ := Lookup("tree-lossy")
	sc.N = 1500
	sc.Shards = 2
	live, ansLive, err := RunNamed(sc, "window")
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Err(); err != nil {
		t.Fatalf("exactness violated: %v", err)
	}
	tr := recordScenarioWorkload(t, sc)
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		replayed, ansReplayed, err := RunNamed(WithTrace(sc, tr), "window")
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if live.Fingerprint() != replayed.Fingerprint() {
			t.Errorf("GOMAXPROCS=%d: trace replay diverged from the live run:\nlive:   %s\nreplay: %s",
				procs, live.Fingerprint(), replayed.Fingerprint())
		}
		if ansLive != ansReplayed {
			t.Errorf("GOMAXPROCS=%d: answer diverged:\nlive:   %s\nreplay: %s", procs, ansLive, ansReplayed)
		}
	}
}

// TestRestartMidFlightIsExact stresses the nastiest interleaving: a
// coordinator restart while messages are in flight on a slow link, so
// deliveries from before the snapshot arrive after the restore. The
// ack-oracle criterion must still hold.
func TestRestartMidFlightIsExact(t *testing.T) {
	sc, _ := Lookup("restart")
	sc.Up = lateLink()
	sc.Down = lateLink()
	for _, shards := range []int{1, 2} {
		sc.Shards = shards
		res, _, err := RunNamed(sc, "swor")
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Err(); err != nil {
			t.Errorf("shards=%d: %v", shards, err)
		}
	}
}
