package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallFuzzConfig keeps per-seed cost low enough for the go-fuzz smoke
// loop and the shrink unit tests.
func smallFuzzConfig() FuzzConfig {
	cfg := DefaultFuzzConfig()
	cfg.N = 400
	return cfg
}

// TestFuzzScenariosValid pins the generator's valid-by-construction
// contract and its purity: every seed yields a scenario that passes
// Validate, and generating it twice yields the identical scenario.
func TestFuzzScenariosValid(t *testing.T) {
	cfg := DefaultFuzzConfig()
	for seed := uint64(0); seed < 200; seed++ {
		sc := FuzzScenario(cfg, seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid scenario: %v", seed, err)
		}
		b1, err := EncodeScenario(sc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b2, err := EncodeScenario(FuzzScenario(cfg, seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("seed %d: generator is not a pure function of the seed", seed)
		}
	}
}

// TestFuzzScenariosCoverFaultSpace guards the generator against
// silently collapsing: across a modest seed range, every fault kind
// must appear and both tree shapes must be drawn.
func TestFuzzScenariosCoverFaultSpace(t *testing.T) {
	cfg := DefaultFuzzConfig()
	kinds := make(map[FaultKind]int)
	depths := make(map[int]int)
	for seed := uint64(0); seed < 300; seed++ {
		sc := FuzzScenario(cfg, seed)
		depths[sc.Depth]++
		for _, f := range sc.Faults {
			kinds[f.Kind]++
		}
	}
	for k := SiteCrash; k <= EdgeLinkSet; k++ {
		if kinds[k] == 0 {
			t.Errorf("fault kind %v never generated in 300 seeds", k)
		}
	}
	for _, d := range []int{0, 1, 2} {
		if depths[d] == 0 {
			t.Errorf("tree depth %d never drawn in 300 seeds", d)
		}
	}
}

// TestShrinkMinimizesSchedule exercises the minimizer's mechanics
// against a synthetic failure predicate ("the schedule still contains a
// coord-restart"), where the unique greedy fixpoint is known: the
// restart survives because dropping it stops the failure, its snapshot
// survives because dropping it invalidates the schedule, everything
// else goes, then N halves to the floor and the links simplify.
func TestShrinkMinimizesSchedule(t *testing.T) {
	sc, ok := Lookup("tree-lossy")
	if !ok {
		t.Fatal("scenario tree-lossy missing")
	}
	hasRestart := func(c Scenario) bool {
		for _, f := range c.Faults {
			if f.Kind == CoordRestart {
				return true
			}
		}
		return false
	}
	shrunk := Shrink(sc, hasRestart)
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk scenario invalid: %v", err)
	}
	if !hasRestart(shrunk) {
		t.Fatal("shrunk scenario no longer fails the predicate")
	}
	if len(shrunk.Faults) != 2 {
		t.Errorf("shrunk schedule has %d events, want 2 (snapshot+restart): %+v", len(shrunk.Faults), shrunk.Faults)
	}
	if shrunk.N >= sc.N {
		t.Errorf("shrink did not reduce the stream: N=%d", shrunk.N)
	}
	// Determinism: shrinking again from the same input reproduces the
	// same reproducer byte for byte.
	b1, _ := EncodeScenario(shrunk)
	b2, _ := EncodeScenario(Shrink(sc, hasRestart))
	if !bytes.Equal(b1, b2) {
		t.Error("Shrink is not deterministic")
	}
}

// TestScenarioJSONRoundTrip pins lossless serialization: every built-in
// scenario and a generated one survive encode → decode → encode with
// identical bytes, and the decoded scenario runs to the identical
// result fingerprint.
func TestScenarioJSONRoundTrip(t *testing.T) {
	scs := Builtin()
	scs = append(scs, FuzzScenario(smallFuzzConfig(), 42))
	for _, sc := range scs {
		t.Run(sc.Name, func(t *testing.T) {
			b1, err := EncodeScenario(sc)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeScenario(b1)
			if err != nil {
				t.Fatal(err)
			}
			b2, err := EncodeScenario(dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("round trip not lossless:\n%s\nvs\n%s", b1, b2)
			}
			sc.N = 800
			dec.N = 800
			r1, a1, err := RunNamed(sc, "swor")
			if err != nil {
				t.Fatal(err)
			}
			r2, a2, err := RunNamed(dec, "swor")
			if err != nil {
				t.Fatal(err)
			}
			if r1.Fingerprint() != r2.Fingerprint() || a1 != a2 {
				t.Error("decoded scenario runs differently from the original")
			}
		})
	}
}

// TestEncodeRejectsInlineWorkloads pins the serialization boundary.
func TestEncodeRejectsInlineWorkloads(t *testing.T) {
	sc, _ := Lookup("churn")
	sc.SpecFor = func(k, n int) Spec { return Spec{} }
	if _, err := EncodeScenario(sc); err == nil || !strings.Contains(err.Error(), "cannot serialize") {
		t.Errorf("inline spec encoded: %v", err)
	}
}

// TestCorpusScenariosExact replays every committed reproducer in
// testdata/corpus. Each file is a schedule that once exposed a bug
// (most from the wrsmutation planted-bug self-test); normal builds must
// stay oracle-exact on all of them, forever.
func TestCorpusScenariosExact(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("regression corpus is empty")
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := DecodeScenario(data)
			if err != nil {
				t.Fatal(err)
			}
			if msg := FirstFailure(sc, FuzzApps(), []int{1, 2}); msg != "" {
				t.Errorf("corpus scenario diverged: %s", msg)
			}
		})
	}
}

// FuzzScenarioSchedule is the randomized exactness sweep: any seed names
// a scenario (FuzzScenario is pure), and every scenario must be
// oracle-exact for every app family at shards 1 and 2. A failing seed
// is a complete reproducer; the failure message carries the shrunk
// schedule ready for wrs-chaos -run.
func FuzzScenarioSchedule(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	cfg := smallFuzzConfig()
	shardCounts := []int{1, 2}
	f.Fuzz(func(t *testing.T, seed uint64) {
		sc := FuzzScenario(cfg, seed)
		msg := FirstFailure(sc, FuzzApps(), shardCounts)
		if msg == "" {
			return
		}
		shrunk := Shrink(sc, func(c Scenario) bool {
			return FirstFailure(c, FuzzApps(), shardCounts) != ""
		})
		repro, _ := EncodeScenario(shrunk)
		t.Fatalf("seed %d: %s\nminimized reproducer (save and run with wrs-chaos -run FILE):\n%s", seed, msg, repro)
	})
}
