package workload

import (
	"fmt"

	"wrs"
)

// AppNames lists the applications the scenario engine can drive by
// name: the three whose coordinator is the plain core sampler, plus the
// two wrapped runtimes with their own oracle families (l1, window).
func AppNames() []string { return []string{"swor", "hh", "l1", "quantile", "window"} }

// RunNamed runs a scenario against an application chosen by name,
// returning the engine result and the application's final answer
// rendered as a string (floats print round-trippably, so the string is
// a determinism fingerprint for the answer too). The scenario's S sizes
// the swor sample; hh and quantile size their own samples from their
// accuracy parameters.
func RunNamed(sc Scenario, appName string) (*Result, string, error) {
	switch appName {
	case "swor":
		res, q, err := RunApp(sc, wrs.Sampler(sc.K, sc.S))
		return res, fmt.Sprintf("%v", q), err
	case "hh":
		res, q, err := RunApp(sc, wrs.HeavyHitters(sc.K, 0.3, 0.2))
		return res, fmt.Sprintf("%v", q), err
	case "l1":
		// Loose accuracy keeps the per-shard sample (S = ceil(27/eps²·
		// ln 2/delta)) and the duplication factor ell small enough for
		// chaos-sized streams while still exercising both estimator
		// regimes (exact prefix, then threshold-based).
		res, q, err := RunApp(sc, wrs.L1(sc.K, 0.45, 0.3))
		return res, fmt.Sprintf("%v", q), err
	case "quantile":
		res, q, err := RunApp(sc, wrs.Quantiles(sc.K, 0.3, 0.2))
		return res, fmt.Sprintf("%v", q), err
	case "window":
		width := sc.Width
		if width == 0 {
			width = 128
		}
		res, q, err := RunApp(sc, wrs.Windowed(sc.K, sc.S, width))
		return res, fmt.Sprintf("%v", q), err
	default:
		return nil, "", fmt.Errorf("workload: unknown app %q (have %v)", appName, AppNames())
	}
}
