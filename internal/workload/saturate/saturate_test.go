package saturate

import (
	"testing"

	"wrs/internal/transport"
)

// TestSweepSmoke runs a miniature sweep end to end. It asserts shape
// and sanity, not absolute rates: this is wall-clock measurement and
// CI boxes are noisy; the committed BENCH_saturation.json is produced
// by wrs-chaos -saturation on a quiet host instead.
func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock sweep")
	}
	res, err := Run(Opts{
		Bench: transport.IngestBenchOpts{
			Conns:     2,
			FrameMsgs: 256,
			Msgs:      1 << 14,
		},
		Multipliers: []float64{0.25, 1.0},
		TargetSecs:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxUnpacedHz <= 0 {
		t.Fatalf("probe rate %v", res.MaxUnpacedHz)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	for i, pt := range res.Points {
		if i > 0 && pt.OfferedHz <= res.Points[i-1].OfferedHz {
			t.Errorf("offered rates not ascending: %v", res.Points)
		}
		if pt.AchievedHz <= 0 || pt.Msgs <= 0 {
			t.Errorf("degenerate point %+v", pt)
		}
	}
	// The quarter-rate rung must be nowhere near saturation; allow wide
	// noise margins but catch pacing that is broken outright.
	if u := res.Points[0].Utilization; u < 0.5 {
		t.Errorf("utilization %v at 0.25x the service rate — pacing is broken", u)
	}
	if res.KneeHz > res.Points[len(res.Points)-1].OfferedHz {
		t.Errorf("knee %v above the highest offered rate", res.KneeHz)
	}
}

func TestSweepRejectsBadOpts(t *testing.T) {
	if _, err := Run(Opts{Multipliers: []float64{0, 1}}); err == nil {
		t.Error("zero multiplier accepted")
	}
	if _, err := Run(Opts{MinUtil: 1.5}); err == nil {
		t.Error("MinUtil > 1 accepted")
	}
}
