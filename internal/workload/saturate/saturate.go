// Package saturate finds the coordinator's ingest saturation knee: the
// highest offered message rate the TCP ingest path still serves at
// (close to) the offered rate. It first probes the unpaced service
// rate, then replays the same workload paced at a ladder of fractions
// of that probe and reports, per rung, offered vs achieved throughput.
// The knee is the highest offered rate whose achieved throughput stays
// within MinUtil of offered — below it latency is flat, above it the
// writers fall behind and the system is saturated.
//
// Everything here is wall-clock measurement by construction, so this
// package is deliberately OUTSIDE wrs-lint's detrand set; the parent
// workload package (the deterministic scenario engine) is inside it.
// Keep virtual-clock code out of here and wall-clock code out of there.
package saturate

import (
	"fmt"
	"sort"

	"wrs/internal/transport"
)

// Opts configures a sweep.
type Opts struct {
	// Bench is the base ingest configuration (shards, conns, frame
	// size, workload). Msgs is the PROBE size; paced rungs scale their
	// message count to run for roughly TargetSecs at the offered rate.
	Bench transport.IngestBenchOpts

	// Multipliers are the offered-rate rungs as fractions of the probed
	// unpaced rate, swept in ascending order. Default:
	// 0.25, 0.5, 0.7, 0.85, 0.95, 1.05, 1.2.
	Multipliers []float64

	// MinUtil is the achieved/offered ratio a rung must reach to count
	// as "keeping up" (default 0.9).
	MinUtil float64

	// TargetSecs is the intended duration of each paced rung (default
	// 0.5). Longer smooths scheduler noise at the cost of sweep time.
	TargetSecs float64
}

func (o *Opts) fill() {
	if len(o.Multipliers) == 0 {
		o.Multipliers = []float64{0.25, 0.5, 0.7, 0.85, 0.95, 1.05, 1.2}
	}
	if o.MinUtil == 0 {
		o.MinUtil = 0.9
	}
	if o.TargetSecs == 0 {
		o.TargetSecs = 0.5
	}
}

// Point is one rung of the sweep.
type Point struct {
	OfferedHz   float64 `json:"offered_hz"`
	AchievedHz  float64 `json:"achieved_hz"`
	NsPerMsg    float64 `json:"ns_per_msg"`
	Utilization float64 `json:"utilization"` // achieved / offered
	Msgs        int64   `json:"msgs"`
}

// Result is a full sweep.
type Result struct {
	MaxUnpacedHz float64 `json:"max_unpaced_hz"` // the probe's service rate
	KneeHz       float64 `json:"knee_hz"`        // highest offered rate still served at >= MinUtil
	MinUtil      float64 `json:"min_util"`
	Points       []Point `json:"points"`
}

// Run probes the unpaced service rate, then sweeps the paced ladder.
func Run(o Opts) (Result, error) {
	o.fill()
	mults := append([]float64(nil), o.Multipliers...)
	sort.Float64s(mults)
	for _, m := range mults {
		if m <= 0 {
			return Result{}, fmt.Errorf("saturate: non-positive rate multiplier %v", m)
		}
	}
	if o.MinUtil <= 0 || o.MinUtil > 1 {
		return Result{}, fmt.Errorf("saturate: MinUtil %v outside (0, 1]", o.MinUtil)
	}

	probe := o.Bench
	probe.RateHz = 0
	pres, err := transport.RunIngestBench(probe)
	if err != nil {
		return Result{}, fmt.Errorf("saturate: unpaced probe: %w", err)
	}
	maxHz := pres.MmsgPerSec() * 1e6
	if !(maxHz > 0) {
		return Result{}, fmt.Errorf("saturate: probe measured non-positive rate %v", maxHz)
	}

	res := Result{MaxUnpacedHz: maxHz, MinUtil: o.MinUtil}
	for _, m := range mults {
		offered := m * maxHz
		rung := o.Bench
		rung.RateHz = offered
		// Size the rung to run ~TargetSecs at the offered rate, but
		// never below one frame per connection (RunIngestBench's floor).
		rung.Msgs = int64(offered * o.TargetSecs)
		rres, err := transport.RunIngestBench(rung)
		if err != nil {
			return Result{}, fmt.Errorf("saturate: rung %.2fx: %w", m, err)
		}
		achieved := rres.MmsgPerSec() * 1e6
		pt := Point{
			OfferedHz:   offered,
			AchievedHz:  achieved,
			NsPerMsg:    rres.NsPerMsg(),
			Utilization: achieved / offered,
			Msgs:        rres.Msgs,
		}
		res.Points = append(res.Points, pt)
		if pt.Utilization >= o.MinUtil && offered > res.KneeHz {
			res.KneeHz = offered
		}
	}
	return res, nil
}
