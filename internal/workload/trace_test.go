package workload

import (
	"bytes"
	"testing"

	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func badLink() netsim.LinkModel { return netsim.LinkModel{LossProb: 1.5} }

// lateLink keeps messages in flight long enough to straddle the
// restart scenario's snapshot/restore pair.
func lateLink() netsim.LinkModel { return netsim.LinkModel{BaseDelay: 0.2, Jitter: 0.3} }

func recordScenarioWorkload(t *testing.T, sc Scenario) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, sc.OpenSource()); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testSpec(n, k int) Spec {
	return Spec{
		N: n, K: k,
		Weights:  stream.ParetoWeights(1.3),
		Assign:   ZipfSites(k, 1.0),
		Arrivals: NewBursty(500, 5000, 10),
	}
}

// TestTraceRoundTripBitExact: write a workload to a trace, read it
// back, and every field — including the float64 bit patterns of
// weights and times — must survive; writing the read trace again must
// produce identical bytes.
func TestTraceRoundTripBitExact(t *testing.T) {
	src := testSpec(500, 4).Open(xrand.New(123))
	var buf1 bytes.Buffer
	n, err := WriteTrace(&buf1, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 500 {
		t.Fatalf("wrote %d updates, want 500", n)
	}
	tr, err := ReadTrace(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := testSpec(500, 4).Open(xrand.New(123))
	for i := 0; ; i++ {
		wu, wok := want.Next()
		gu, gok := tr.Next()
		if wok != gok {
			t.Fatalf("update %d: ok %v vs %v", i, wok, gok)
		}
		if !wok {
			break
		}
		if wu != gu {
			t.Fatalf("update %d differs: %+v vs %+v", i, wu, gu)
		}
	}
	tr.Rewind()
	var buf2 bytes.Buffer
	if _, err := WriteTrace(&buf2, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("re-encoding a read trace changed its bytes")
	}
}

// TestTraceRejectsCorruption exercises the reader's validation.
func TestTraceRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, testSpec(50, 3).Open(xrand.New(7))); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	corrupt := func(mutate func([]byte)) error {
		b := append([]byte(nil), good...)
		mutate(b)
		_, err := ReadTrace(bytes.NewReader(b))
		return err
	}
	if err := corrupt(func(b []byte) { b[0] = 'X' }); err == nil {
		t.Error("bad magic accepted")
	}
	if err := corrupt(func(b []byte) { b[4] = 99 }); err == nil {
		t.Error("bad version accepted")
	}
	// Record layout is 36 bytes: pos(8) id(8) site(4) weight(8) at(8).
	if err := corrupt(func(b []byte) {
		for i := len(b) - 20; i < len(b)-16; i++ {
			b[i] = 0xFF // site index far out of range
		}
	}); err == nil {
		t.Error("out-of-range site accepted")
	}
	if err := corrupt(func(b []byte) {
		for i := len(b) - 16; i < len(b)-8; i++ {
			b[i] = 0 // weight becomes +0, invalid
		}
	}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(good[:len(good)-5])); err == nil {
		t.Error("truncated trace accepted")
	}
}
