// Package workload is the production workload engine and chaos harness:
// arrival and weight processes layered on stream.Generator (diurnal rate
// curves, Markov-modulated bursts, heavy-tailed weights with adversarial
// mid-stream shift, per-site skew), a recorded-trace format with
// bit-exact replay, and a virtual-clock scenario engine that drives the
// protocol through declarative fault schedules — site crash and join,
// coordinator restart from snapshot, slow and lossy links — while
// checking the exactness criterion that survives every fault: the final
// query equals the brute-force top-s oracle over the updates the
// coordinator acknowledged. Everything here runs on virtual time and a
// seeded RNG, so every scenario is deterministic and wrs-lint
// detrand-clean; the wall-clock saturation sweep lives in the
// workload/saturate subpackage. See DESIGN.md §15.
package workload

import (
	"fmt"
	"math"

	"wrs/internal/xrand"
)

// ArrivalProcess generates the inter-arrival gaps of a point process on
// the virtual clock. Gap returns the (strictly positive) time from now
// until the next arrival, given the current virtual time now; stateful
// processes advance their own modulating state inside Gap. Reset
// rewinds that state so the same process value can replay a run.
type ArrivalProcess interface {
	Gap(now float64, rng *xrand.RNG) float64
	Reset()
}

// Constant is a Poisson process with a fixed rate: memoryless
// exponential gaps, the baseline open-loop workload.
type Constant struct {
	Hz float64 // mean arrivals per virtual second
}

// Gap draws an Exp(Hz) inter-arrival time.
func (c Constant) Gap(now float64, rng *xrand.RNG) float64 {
	if !(c.Hz > 0) {
		panic(fmt.Sprintf("workload: Constant rate %v must be positive", c.Hz))
	}
	return rng.Exp() / c.Hz
}

// Reset is a no-op: the process is memoryless.
func (c Constant) Reset() {}

// RateComponent is one sinusoidal term of a diurnal rate curve.
type RateComponent struct {
	Period    float64 // virtual seconds per full cycle
	Amplitude float64 // relative modulation depth
	Phase     float64 // radians
}

// Diurnal is a non-homogeneous Poisson process whose instantaneous rate
// is a base rate modulated by a sum of sinusoids — the multi-period
// temporal pattern of production traffic (daily peak, weekly dip,
// minute-scale wobble stacked on one curve). Gaps are drawn by local
// exponential approximation: an Exp(1) variate divided by the rate at
// the current instant, which is exact in the limit of gaps short
// against the fastest period and deterministic for a fixed RNG either
// way.
type Diurnal struct {
	BaseHz     float64
	Components []RateComponent
	FloorHz    float64 // rate never drops below this; defaults to BaseHz/100
}

// Rate returns the instantaneous arrival rate at virtual time t.
func (d Diurnal) Rate(t float64) float64 {
	r := d.BaseHz
	for _, c := range d.Components {
		r += d.BaseHz * c.Amplitude * math.Sin(2*math.Pi*t/c.Period+c.Phase)
	}
	floor := d.FloorHz
	if floor <= 0 {
		floor = d.BaseHz / 100
	}
	if r < floor {
		r = floor
	}
	return r
}

// Gap draws the next inter-arrival time at the current instantaneous rate.
func (d Diurnal) Gap(now float64, rng *xrand.RNG) float64 {
	if !(d.BaseHz > 0) {
		panic(fmt.Sprintf("workload: Diurnal base rate %v must be positive", d.BaseHz))
	}
	return rng.Exp() / d.Rate(now)
}

// Reset is a no-op: the rate depends only on the clock.
func (d Diurnal) Reset() {}

// MMPP is a Markov-modulated Poisson process: arrivals are Poisson at
// the rate of the current hidden state, and the state makes memoryless
// transitions to a uniformly random other state at rate SwitchHz. Two
// states (quiet, burst) give the classic bursty-traffic model; more
// states give multi-level burstiness. The zero state index is the
// initial state.
type MMPP struct {
	RatesHz  []float64 // per-state arrival rates, all positive
	SwitchHz float64   // state-change rate

	state       int
	sojournLeft float64 // virtual time left in the current state; 0 = draw anew
}

// NewBursty is the two-state quiet/burst MMPP: quietHz baseline,
// burstHz spikes, switching at switchHz.
func NewBursty(quietHz, burstHz, switchHz float64) *MMPP {
	return &MMPP{RatesHz: []float64{quietHz, burstHz}, SwitchHz: switchHz}
}

// Gap advances the modulating chain across the drawn gap and returns
// the inter-arrival time. Time spent in each visited state contributes
// at that state's rate: the gap is accumulated piecewise until one
// arrival's worth of exponential "work" is consumed, so bursts start
// and end between arrivals, not only at them.
func (m *MMPP) Gap(now float64, rng *xrand.RNG) float64 {
	if len(m.RatesHz) == 0 || m.SwitchHz <= 0 {
		panic("workload: MMPP needs states and a positive switch rate")
	}
	for _, r := range m.RatesHz {
		if !(r > 0) {
			panic(fmt.Sprintf("workload: MMPP state rate %v must be positive", r))
		}
	}
	need := rng.Exp() // unit-rate work until the next arrival
	var gap float64
	for {
		if m.sojournLeft <= 0 {
			m.sojournLeft = rng.Exp() / m.SwitchHz
		}
		rate := m.RatesHz[m.state]
		// Work available before the next state switch.
		avail := m.sojournLeft * rate
		if need <= avail {
			dt := need / rate
			gap += dt
			m.sojournLeft -= dt
			return gap
		}
		need -= avail
		gap += m.sojournLeft
		m.sojournLeft = 0
		if len(m.RatesHz) > 1 {
			next := rng.Intn(len(m.RatesHz) - 1)
			if next >= m.state {
				next++
			}
			m.state = next
		}
	}
}

// Reset rewinds the chain to its initial state.
func (m *MMPP) Reset() { m.state = 0; m.sojournLeft = 0 }
