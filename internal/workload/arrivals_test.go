package workload

import (
	"math"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func TestConstantMeanGap(t *testing.T) {
	c := Constant{Hz: 100}
	rng := xrand.New(1)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		g := c.Gap(0, rng)
		if !(g > 0) {
			t.Fatalf("non-positive gap %v", g)
		}
		sum += g
	}
	mean := sum / n
	if math.Abs(mean-0.01) > 0.001 {
		t.Errorf("mean gap %v, want ~0.01", mean)
	}
}

func TestDiurnalRateCurve(t *testing.T) {
	d := Diurnal{BaseHz: 1000, Components: []RateComponent{{Period: 1, Amplitude: 0.5}}}
	peak := d.Rate(0.25)   // sin = 1
	trough := d.Rate(0.75) // sin = -1
	if math.Abs(peak-1500) > 1e-6 || math.Abs(trough-500) > 1e-6 {
		t.Errorf("rate curve peak/trough %v/%v, want 1500/500", peak, trough)
	}
	// Deep modulation must clip at the floor, never go nonpositive.
	deep := Diurnal{BaseHz: 1000, Components: []RateComponent{{Period: 1, Amplitude: 3}}}
	for x := 0.0; x < 1; x += 0.01 {
		if r := deep.Rate(x); !(r > 0) {
			t.Fatalf("rate %v at t=%v", r, x)
		}
	}
}

func TestMMPPDeterministicAndBursty(t *testing.T) {
	gaps := func() []float64 {
		m := NewBursty(100, 10000, 5)
		rng := xrand.New(9)
		out := make([]float64, 20000)
		now := 0.0
		for i := range out {
			g := m.Gap(now, rng)
			if !(g > 0) {
				t.Fatalf("non-positive gap %v", g)
			}
			out[i] = g
			now += g
		}
		return out
	}
	a, b := gaps(), gaps()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d nondeterministic: %v vs %v", i, a[i], b[i])
		}
	}
	// The mixture must actually visit both regimes: the overall mean
	// rate has to sit strictly between quiet-only and burst-only.
	var sum float64
	for _, g := range a {
		sum += g
	}
	meanHz := float64(len(a)) / sum
	if meanHz < 150 || meanHz > 9000 {
		t.Errorf("mean rate %v Hz suggests the chain never switched (quiet=100, burst=10000)", meanHz)
	}
}

func TestMMPPResetReplays(t *testing.T) {
	m := NewBursty(10, 1000, 3)
	run := func() []float64 {
		m.Reset()
		rng := xrand.New(4)
		out := make([]float64, 100)
		for i := range out {
			out[i] = m.Gap(0, rng)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs after Reset: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSkewedSitesDistribution(t *testing.T) {
	fn := SkewedSites([]float64{3, 1})
	rng := xrand.New(12)
	counts := [2]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[fn(i, rng)]++
	}
	got := float64(counts[0]) / n
	if math.Abs(got-0.75) > 0.02 {
		t.Errorf("site 0 share %v, want ~0.75", got)
	}
}

func TestShiftWeightsSwitchesAtPos(t *testing.T) {
	fn := ShiftWeights(stream.UnitWeights(), stream.HeavyHeadWeights(1000, 7), 10)
	rng := xrand.New(1)
	for pos := 0; pos < 20; pos++ {
		w := fn(pos, rng)
		want := 1.0
		if pos >= 10 {
			want = 7
		}
		if w != want {
			t.Errorf("pos %d: weight %v, want %v", pos, w, want)
		}
	}
}

func TestSkewedSitesRejectsBadShares(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { SkewedSites(nil) },
		"negative": func() { SkewedSites([]float64{1, -1}) },
		"all zero": func() { SkewedSites([]float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
