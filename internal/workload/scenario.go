package workload

import (
	"fmt"
	"sort"

	"wrs/internal/netsim"
	"wrs/internal/xrand"
)

// FaultKind enumerates the faults the scenario engine can inject.
type FaultKind int

const (
	// SiteCrash silences a site: pending and future arrivals addressed
	// to it are lost, and broadcasts to it are dropped.
	SiteCrash FaultKind = iota
	// SiteJoin brings up a fresh replacement site instance at a site
	// index and feeds it the late-joiner control snapshot (saturated
	// levels + current epoch threshold), mirroring the TCP transport's
	// join path.
	SiteJoin
	// CoordSnapshot checkpoints every shard coordinator
	// (core.ExportState) together with the acknowledgment log position.
	CoordSnapshot
	// CoordRestart kills the coordinator and restores the latest
	// CoordSnapshot in place: all state since the snapshot — including
	// acknowledgments — is lost, exactly like a process restart from a
	// persisted checkpoint.
	CoordRestart
	// LinkSet replaces the active link models (both directions) from
	// this instant on, degrading or healing the network mid-run. On a
	// relay tree these are the site<->leaf edge models; relay<->parent
	// edges are per-edge (EdgeLinkSet).
	LinkSet
	// SeverParent cuts the edge between relay (Tier, Node) and its
	// parent: messages climbing past the relay and broadcasts fanning
	// into it are dropped from this instant on. The subtree below keeps
	// running — sites feed their leaf relays, whose forwards die at the
	// severed edge — modeling a network partition above an aggregation
	// node. Tree scenarios only.
	SeverParent
	// Reparent re-attaches a severed relay to its parent and replays
	// the parent's monotone control-plane snapshot (thresholds,
	// saturations) down the reattached subtree, mirroring the TCP
	// relay's child-join snapshot. Tree scenarios only.
	Reparent
	// EdgeLinkSet replaces the link models of relay (Tier, Node)'s
	// parent edge (both directions). Tree scenarios only.
	EdgeLinkSet
)

func (k FaultKind) String() string {
	switch k {
	case SiteCrash:
		return "site-crash"
	case SiteJoin:
		return "site-join"
	case CoordSnapshot:
		return "coord-snapshot"
	case CoordRestart:
		return "coord-restart"
	case LinkSet:
		return "link-set"
	case SeverParent:
		return "sever-parent"
	case Reparent:
		return "reparent"
	case EdgeLinkSet:
		return "edge-link-set"
	default:
		return "unknown"
	}
}

// faultKindFromString is the inverse of FaultKind.String (scenario
// serialization).
func faultKindFromString(s string) (FaultKind, error) {
	for k := SiteCrash; k <= EdgeLinkSet; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown fault kind %q", s)
}

// Fault is one scheduled fault. Site is used by SiteCrash/SiteJoin;
// Tier/Node by SeverParent/Reparent/EdgeLinkSet; Up/Down by LinkSet and
// EdgeLinkSet.
type Fault struct {
	At   float64
	Kind FaultKind
	Site int
	Tier int
	Node int
	Up   netsim.LinkModel
	Down netsim.LinkModel
}

// Schedule is a declarative fault schedule, applied in time order.
type Schedule []Fault

// ScheduleContext is the static cluster shape a schedule is validated
// against: the site count, the optional event horizon (a positive
// Horizon rejects faults scheduled at or after it — the fuzzer's bound
// on useful fault times), and the relay-tree shape (Depth 0 = flat).
type ScheduleContext struct {
	K       int
	Horizon float64
	Fanout  int
	Depth   int
}

// Validate rejects schedules the engine cannot apply: site or relay
// indices out of range, invalid link models, negative times, events at
// or past the horizon, a CoordRestart with no CoordSnapshot anywhere
// before it, overlapping site faults (crashing a site that is already
// down, or joining one that is up), tree faults on a flat topology, and
// sever/reparent events that do not alternate per edge. The liveness
// checks walk the schedule in applied (time, then declaration) order,
// so a valid schedule is exactly one every fault of which changes state.
func (sch Schedule) Validate(ctx ScheduleContext) error {
	ordered := append(Schedule(nil), sch...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	var sizes []int
	if ctx.Depth > 0 {
		sizes = netsim.TreeTierSizes(ctx.K, ctx.Fanout, ctx.Depth)
	}
	alive := make([]bool, ctx.K)
	for i := range alive {
		alive[i] = true
	}
	severed := make(map[[2]int]bool)
	haveSnap := false
	for _, f := range ordered {
		if f.At < 0 {
			return fmt.Errorf("workload: fault %v at negative time %v", f.Kind, f.At)
		}
		if ctx.Horizon > 0 && f.At >= ctx.Horizon {
			return fmt.Errorf("workload: fault %v at t=%v is at or past the horizon %v", f.Kind, f.At, ctx.Horizon)
		}
		switch f.Kind {
		case SiteCrash, SiteJoin:
			if f.Site < 0 || f.Site >= ctx.K {
				return fmt.Errorf("workload: fault %v addresses site %d of %d", f.Kind, f.Site, ctx.K)
			}
			if f.Kind == SiteCrash {
				if !alive[f.Site] {
					return fmt.Errorf("workload: site-crash at t=%v on site %d, which is already down", f.At, f.Site)
				}
				alive[f.Site] = false
			} else {
				if alive[f.Site] {
					return fmt.Errorf("workload: site-join at t=%v on site %d, which is still up", f.At, f.Site)
				}
				alive[f.Site] = true
			}
		case CoordSnapshot:
			haveSnap = true
		case CoordRestart:
			if !haveSnap {
				return fmt.Errorf("workload: coord-restart at t=%v has no preceding coord-snapshot", f.At)
			}
		case LinkSet:
			if err := f.Up.Validate(); err != nil {
				return err
			}
			if err := f.Down.Validate(); err != nil {
				return err
			}
		case SeverParent, Reparent, EdgeLinkSet:
			if ctx.Depth == 0 {
				return fmt.Errorf("workload: fault %v at t=%v on a flat (depth-0) topology", f.Kind, f.At)
			}
			if f.Tier < 0 || f.Tier >= ctx.Depth {
				return fmt.Errorf("workload: fault %v addresses tier %d of %d", f.Kind, f.Tier, ctx.Depth)
			}
			if f.Node < 0 || f.Node >= sizes[f.Tier] {
				return fmt.Errorf("workload: fault %v addresses node %d of %d at tier %d", f.Kind, f.Node, sizes[f.Tier], f.Tier)
			}
			edge := [2]int{f.Tier, f.Node}
			switch f.Kind {
			case SeverParent:
				if severed[edge] {
					return fmt.Errorf("workload: sever-parent at t=%v on edge (%d,%d), which is already severed", f.At, f.Tier, f.Node)
				}
				severed[edge] = true
			case Reparent:
				if !severed[edge] {
					return fmt.Errorf("workload: reparent at t=%v on edge (%d,%d), which is attached", f.At, f.Tier, f.Node)
				}
				severed[edge] = false
			case EdgeLinkSet:
				if err := f.Up.Validate(); err != nil {
					return err
				}
				if err := f.Down.Validate(); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("workload: unknown fault kind %d", f.Kind)
		}
	}
	return nil
}

// Scenario is a complete chaos experiment: a workload, a cluster shape,
// an optional relay-tree topology, initial link models, and a fault
// schedule. The workload comes from Workload (a named recipe from
// Recipes — the serializable path) or from SpecFor (an inline builder;
// overrides Workload); Source, when non-nil, overrides both with an
// explicit update source — the recorded-trace replay path (see
// WithTrace). Shards defaults to 1 when zero.
//
// With Depth > 0 the engine routes every message through a
// fanout-ary relay tree (netsim.TreeTierSizes shape): sites attach to
// leaf relays over the Up/Down site-edge models, relay<->parent edges
// use EdgeUp/EdgeDown (changeable per edge via EdgeLinkSet), and
// SeverParent/Reparent faults partition and heal subtrees.
type Scenario struct {
	Name     string
	About    string
	K, S     int
	N        int
	Shards   int
	Width    int     // windowed app: window width (0 = RunNamed default)
	Horizon  float64 // optional bound on fault times (0 = unbounded)
	Seed     uint64
	Workload string
	SpecFor  func(k, n int) Spec
	Source   func() Source
	Fanout   int
	Depth    int
	Up       netsim.LinkModel
	Down     netsim.LinkModel
	EdgeUp   netsim.LinkModel
	EdgeDown netsim.LinkModel
	Faults   Schedule
}

// scenarioSalt decorrelates the engine's auxiliary randomness from the
// protocol randomness, which is seeded with the raw scenario seed (the
// same master a production Open(WithSeed(seed)) uses).
const scenarioSalt = 0x5752535f43484153 // "WRS_CHAS"

// auxRNGs returns the engine's auxiliary RNGs in their fixed split
// order: network (delays/loss), workload source, replacement sites.
func (sc Scenario) auxRNGs() (netRNG, srcRNG, joinRNG *xrand.RNG) {
	aux := xrand.New(sc.Seed ^ scenarioSalt)
	return aux.Split(), aux.Split(), aux.Split()
}

// OpenSource returns the update source a run of this scenario consumes:
// the explicit Source when set (trace replay), then the inline SpecFor
// builder, then the named workload recipe — bound to the scenario's
// workload RNG. Calling it outside a run — e.g. to record the workload
// to a trace — yields the exact sequence the engine would feed.
func (sc Scenario) OpenSource() Source {
	if sc.Source != nil {
		return sc.Source()
	}
	_, srcRNG, _ := sc.auxRNGs()
	if sc.SpecFor != nil {
		return sc.SpecFor(sc.K, sc.N).Open(srcRNG)
	}
	spec, ok := RecipeSpec(sc.Workload)
	if !ok {
		panic(fmt.Sprintf("workload: scenario %q names unknown workload recipe %q", sc.Name, sc.Workload))
	}
	return spec(sc.K, sc.N).Open(srcRNG)
}

// WithTrace returns the scenario with its generative workload replaced
// by replay of a recorded trace. Because the engine's other RNGs split
// off the seed in a fixed order regardless of the workload source, a
// scenario replayed from the trace of its own recorded workload
// reproduces the original run bit-for-bit.
func WithTrace(sc Scenario, tr *Trace) Scenario {
	sc.Source = func() Source {
		tr.Rewind()
		return tr
	}
	return sc
}

// Validate checks the scenario's static shape.
func (sc Scenario) Validate() error {
	if sc.K <= 0 || sc.S <= 0 || sc.N < 0 {
		return fmt.Errorf("workload: scenario %q needs K > 0, S > 0, N >= 0", sc.Name)
	}
	if sc.Shards < 0 {
		return fmt.Errorf("workload: scenario %q has negative shard count", sc.Name)
	}
	if sc.Width < 0 {
		return fmt.Errorf("workload: scenario %q has negative window width", sc.Name)
	}
	if sc.Horizon < 0 {
		return fmt.Errorf("workload: scenario %q has negative horizon", sc.Name)
	}
	if sc.SpecFor == nil && sc.Source == nil {
		if sc.Workload == "" {
			return fmt.Errorf("workload: scenario %q has no workload recipe, spec or source", sc.Name)
		}
		if _, ok := RecipeSpec(sc.Workload); !ok {
			return fmt.Errorf("workload: scenario %q names unknown workload recipe %q (have %v)", sc.Name, sc.Workload, RecipeNames())
		}
	}
	if err := netsim.ValidateTree(sc.Fanout, sc.Depth); err != nil {
		return fmt.Errorf("workload: scenario %q: %w", sc.Name, err)
	}
	for _, lm := range []netsim.LinkModel{sc.Up, sc.Down, sc.EdgeUp, sc.EdgeDown} {
		if err := lm.Validate(); err != nil {
			return err
		}
	}
	return sc.Faults.Validate(ScheduleContext{K: sc.K, Horizon: sc.Horizon, Fanout: sc.Fanout, Depth: sc.Depth})
}

// Builtin returns the built-in scenario catalog. Each scenario is fully
// declarative — rerunning one with the same seed reproduces the same
// final sample and statistics bit-for-bit; every workload is a named
// recipe (see Recipes), so each catalog entry serializes losslessly for
// the -run reproducer path. The N, K, S shapes are sized so the full
// catalog runs in well under a second per app; crank N up via the -n
// flag of wrs-chaos for longer soaks.
func Builtin() []Scenario {
	return []Scenario{
		{
			Name:  "churn",
			About: "diurnal Zipf traffic; one site crashes mid-stream, a replacement joins later",
			K:     6, S: 8, N: 4000, Seed: 1,
			Workload: "zipf-diurnal",
			Faults: Schedule{
				{At: 0.4, Kind: SiteCrash, Site: 1},
				{At: 1.1, Kind: SiteJoin, Site: 1},
				{At: 1.5, Kind: SiteCrash, Site: 4},
			},
		},
		{
			Name:  "restart",
			About: "bursty MMPP traffic; coordinator checkpoints, then restarts from the checkpoint losing everything since",
			K:     5, S: 6, N: 4000, Seed: 2,
			Workload: "pareto-bursty",
			Faults: Schedule{
				{At: 0.25, Kind: CoordSnapshot},
				{At: 0.55, Kind: CoordRestart},
				{At: 0.9, Kind: CoordSnapshot},
				{At: 1.2, Kind: CoordRestart},
			},
		},
		{
			Name:  "lossy",
			About: "steady traffic over a WAN that degrades to 5% loss mid-run, then heals",
			K:     4, S: 8, N: 3000, Seed: 3,
			Workload: "uniform-steady",
			Up:       netsim.WANLink(),
			Down:     netsim.WANLink(),
			Faults: Schedule{
				{At: 0.3, Kind: LinkSet, Up: netsim.LossyLink(), Down: netsim.LossyLink()},
				{At: 0.9, Kind: LinkSet, Up: netsim.WANLink(), Down: netsim.WANLink()},
			},
		},
		{
			Name:  "shift",
			About: "adversarial mid-stream shift from uniform to heavy-tailed weights plus a traffic migration, with a site crash landing inside the shift",
			K:     6, S: 10, N: 4000, Seed: 4,
			Workload: "shift-adversarial",
			Up:       netsim.WANLink(),
			Down:     netsim.WANLink(),
			Faults: Schedule{
				{At: 0.66, Kind: SiteCrash, Site: 0},
				{At: 1.0, Kind: SiteJoin, Site: 0},
			},
		},
		{
			Name:  "tree-sever",
			About: "fanout=2 depth=2 relay tree; a mid-tier subtree is partitioned away, its sites keep feeding into the void, then it reattaches and the control snapshot replays down",
			K:     8, S: 8, N: 4000, Seed: 5,
			Workload: "zipf-diurnal",
			Fanout:   2, Depth: 2,
			Faults: Schedule{
				{At: 0.35, Kind: SeverParent, Tier: 1, Node: 1},
				{At: 0.9, Kind: Reparent, Tier: 1, Node: 1},
				{At: 1.2, Kind: SeverParent, Tier: 0, Node: 0},
				{At: 1.5, Kind: Reparent, Tier: 0, Node: 0},
			},
		},
		{
			Name:  "tree-lossy",
			About: "fanout=3 depth=1 relay tree over WAN site edges; one relay's parent edge degrades to heavy loss, another is severed while the coordinator restarts from a checkpoint",
			K:     6, S: 8, N: 4000, Seed: 6,
			Workload: "pareto-bursty",
			Fanout:   3, Depth: 1,
			Up:   netsim.WANLink(),
			Down: netsim.WANLink(),
			Faults: Schedule{
				{At: 0.2, Kind: EdgeLinkSet, Tier: 0, Node: 2, Up: netsim.LinkModel{BaseDelay: 0.02, Jitter: 0.02, LossProb: 0.25}, Down: netsim.LossyLink()},
				{At: 0.4, Kind: CoordSnapshot},
				{At: 0.6, Kind: SeverParent, Tier: 0, Node: 0},
				{At: 0.75, Kind: CoordRestart},
				{At: 1.0, Kind: Reparent, Tier: 0, Node: 0},
			},
		},
	}
}

// Lookup returns the built-in scenario with the given name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Builtin() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
