package workload

import (
	"fmt"
	"sort"

	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// FaultKind enumerates the faults the scenario engine can inject.
type FaultKind int

const (
	// SiteCrash silences a site: pending and future arrivals addressed
	// to it are lost, and broadcasts to it are dropped.
	SiteCrash FaultKind = iota
	// SiteJoin brings up a fresh replacement site instance at a site
	// index and feeds it the late-joiner control snapshot (saturated
	// levels + current epoch threshold), mirroring the TCP transport's
	// join path.
	SiteJoin
	// CoordSnapshot checkpoints every shard coordinator
	// (core.ExportState) together with the acknowledgment log position.
	CoordSnapshot
	// CoordRestart kills the coordinator and restores the latest
	// CoordSnapshot in place: all state since the snapshot — including
	// acknowledgments — is lost, exactly like a process restart from a
	// persisted checkpoint.
	CoordRestart
	// LinkSet replaces the active link models (both directions) from
	// this instant on, degrading or healing the network mid-run.
	LinkSet
)

func (k FaultKind) String() string {
	switch k {
	case SiteCrash:
		return "site-crash"
	case SiteJoin:
		return "site-join"
	case CoordSnapshot:
		return "coord-snapshot"
	case CoordRestart:
		return "coord-restart"
	case LinkSet:
		return "link-set"
	default:
		return "unknown"
	}
}

// Fault is one scheduled fault. Site is used by SiteCrash/SiteJoin;
// Up/Down by LinkSet.
type Fault struct {
	At   float64
	Kind FaultKind
	Site int
	Up   netsim.LinkModel
	Down netsim.LinkModel
}

// Schedule is a declarative fault schedule, applied in time order.
type Schedule []Fault

// Validate rejects schedules the engine cannot apply: site indices out
// of range, invalid link models, negative times, or a CoordRestart with
// no CoordSnapshot anywhere before it.
func (sch Schedule) Validate(k int) error {
	ordered := append(Schedule(nil), sch...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	haveSnap := false
	for _, f := range ordered {
		if f.At < 0 {
			return fmt.Errorf("workload: fault %v at negative time %v", f.Kind, f.At)
		}
		switch f.Kind {
		case SiteCrash, SiteJoin:
			if f.Site < 0 || f.Site >= k {
				return fmt.Errorf("workload: fault %v addresses site %d of %d", f.Kind, f.Site, k)
			}
		case CoordSnapshot:
			haveSnap = true
		case CoordRestart:
			if !haveSnap {
				return fmt.Errorf("workload: coord-restart at t=%v has no preceding coord-snapshot", f.At)
			}
		case LinkSet:
			if err := f.Up.Validate(); err != nil {
				return err
			}
			if err := f.Down.Validate(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("workload: unknown fault kind %d", f.Kind)
		}
	}
	return nil
}

// Scenario is a complete chaos experiment: a workload, a cluster shape,
// initial link models, and a fault schedule. SpecFor builds a fresh
// workload Spec per run so stateful arrival processes never leak state
// between runs; Shards defaults to 1 when zero. Source, when non-nil,
// overrides SpecFor with an explicit update source — the recorded-trace
// replay path (see WithTrace).
type Scenario struct {
	Name    string
	About   string
	K, S    int
	N       int
	Shards  int
	Seed    uint64
	SpecFor func(k, n int) Spec
	Source  func() Source
	Up      netsim.LinkModel
	Down    netsim.LinkModel
	Faults  Schedule
}

// scenarioSalt decorrelates the engine's auxiliary randomness from the
// protocol randomness, which is seeded with the raw scenario seed (the
// same master a production Open(WithSeed(seed)) uses).
const scenarioSalt = 0x5752535f43484153 // "WRS_CHAS"

// auxRNGs returns the engine's auxiliary RNGs in their fixed split
// order: network (delays/loss), workload source, replacement sites.
func (sc Scenario) auxRNGs() (netRNG, srcRNG, joinRNG *xrand.RNG) {
	aux := xrand.New(sc.Seed ^ scenarioSalt)
	return aux.Split(), aux.Split(), aux.Split()
}

// OpenSource returns the update source a run of this scenario consumes:
// the explicit Source when set (trace replay), otherwise the generative
// spec bound to the scenario's workload RNG. Calling it outside a run —
// e.g. to record the workload to a trace — yields the exact sequence
// the engine would feed.
func (sc Scenario) OpenSource() Source {
	if sc.Source != nil {
		return sc.Source()
	}
	_, srcRNG, _ := sc.auxRNGs()
	return sc.SpecFor(sc.K, sc.N).Open(srcRNG)
}

// WithTrace returns the scenario with its generative workload replaced
// by replay of a recorded trace. Because the engine's other RNGs split
// off the seed in a fixed order regardless of the workload source, a
// scenario replayed from the trace of its own recorded workload
// reproduces the original run bit-for-bit.
func WithTrace(sc Scenario, tr *Trace) Scenario {
	sc.Source = func() Source {
		tr.Rewind()
		return tr
	}
	return sc
}

// Validate checks the scenario's static shape.
func (sc Scenario) Validate() error {
	if sc.K <= 0 || sc.S <= 0 || sc.N < 0 {
		return fmt.Errorf("workload: scenario %q needs K > 0, S > 0, N >= 0", sc.Name)
	}
	if sc.Shards < 0 {
		return fmt.Errorf("workload: scenario %q has negative shard count", sc.Name)
	}
	if sc.SpecFor == nil && sc.Source == nil {
		return fmt.Errorf("workload: scenario %q has no workload spec or source", sc.Name)
	}
	if err := sc.Up.Validate(); err != nil {
		return err
	}
	if err := sc.Down.Validate(); err != nil {
		return err
	}
	return sc.Faults.Validate(sc.K)
}

// Builtin returns the built-in scenario catalog. Each scenario is fully
// declarative — rerunning one with the same seed reproduces the same
// final sample and statistics bit-for-bit. The N, K, S shapes are sized
// so the full catalog runs in well under a second per app; crank N up
// via the -n flag of wrs-chaos for longer soaks.
func Builtin() []Scenario {
	return []Scenario{
		{
			Name:  "churn",
			About: "diurnal Zipf traffic; one site crashes mid-stream, a replacement joins later",
			K:     6, S: 8, N: 4000, Seed: 1,
			SpecFor: func(k, n int) Spec {
				return Spec{
					N: n, K: k,
					Weights:  stream.ZipfWeights(1.2, 1<<16),
					Assign:   ZipfSites(k, 1.0),
					Arrivals: Diurnal{BaseHz: 2000, Components: []RateComponent{{Period: 1.0, Amplitude: 0.6}, {Period: 0.13, Amplitude: 0.25}}},
				}
			},
			Faults: Schedule{
				{At: 0.4, Kind: SiteCrash, Site: 1},
				{At: 1.1, Kind: SiteJoin, Site: 1},
				{At: 1.5, Kind: SiteCrash, Site: 4},
			},
		},
		{
			Name:  "restart",
			About: "bursty MMPP traffic; coordinator checkpoints, then restarts from the checkpoint losing everything since",
			K:     5, S: 6, N: 4000, Seed: 2,
			SpecFor: func(k, n int) Spec {
				return Spec{
					N: n, K: k,
					Weights:  stream.ParetoWeights(1.15),
					Assign:   stream.RandomSites(k),
					Arrivals: NewBursty(1000, 4000, 5),
				}
			},
			Faults: Schedule{
				{At: 0.25, Kind: CoordSnapshot},
				{At: 0.55, Kind: CoordRestart},
				{At: 0.9, Kind: CoordSnapshot},
				{At: 1.2, Kind: CoordRestart},
			},
		},
		{
			Name:  "lossy",
			About: "steady traffic over a WAN that degrades to 5% loss mid-run, then heals",
			K:     4, S: 8, N: 3000, Seed: 3,
			Up:   netsim.WANLink(),
			Down: netsim.WANLink(),
			SpecFor: func(k, n int) Spec {
				return Spec{
					N: n, K: k,
					Weights:  stream.UniformWeights(1e4),
					Assign:   stream.RoundRobin(k),
					Arrivals: Constant{Hz: 2500},
				}
			},
			Faults: Schedule{
				{At: 0.3, Kind: LinkSet, Up: netsim.LossyLink(), Down: netsim.LossyLink()},
				{At: 0.9, Kind: LinkSet, Up: netsim.WANLink(), Down: netsim.WANLink()},
			},
		},
		{
			Name:  "shift",
			About: "adversarial mid-stream shift from uniform to heavy-tailed weights plus a traffic migration, with a site crash landing inside the shift",
			K:     6, S: 10, N: 4000, Seed: 4,
			Up:   netsim.WANLink(),
			Down: netsim.WANLink(),
			SpecFor: func(k, n int) Spec {
				return Spec{
					N: n, K: k,
					Weights:  ShiftWeights(stream.UniformWeights(10), stream.ParetoWeights(1.05), n/2),
					Assign:   ShiftAssign(ZipfSites(k, 1.5), stream.RandomSites(k), n/2),
					Arrivals: Constant{Hz: 3000},
				}
			},
			Faults: Schedule{
				{At: 0.66, Kind: SiteCrash, Site: 0},
				{At: 1.0, Kind: SiteJoin, Site: 0},
			},
		},
	}
}

// Lookup returns the built-in scenario with the given name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Builtin() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
