package workload

import (
	"fmt"
	"math"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// ShiftWeights switches from one weight distribution to another at a
// fixed stream position — the adversarial mid-stream distribution shift
// (a quiet uniform workload that suddenly turns heavy-tailed is the
// instance that forces epoch thresholds to chase a moving u).
func ShiftWeights(before, after stream.WeightFn, shiftPos int) stream.WeightFn {
	return func(pos int, rng *xrand.RNG) float64 {
		if pos < shiftPos {
			return before(pos, rng)
		}
		return after(pos, rng)
	}
}

// ShiftAssign switches the site-assignment policy at a fixed stream
// position, modeling a traffic migration (e.g. a failover that drains
// one region into another mid-run).
func ShiftAssign(before, after stream.AssignFn, shiftPos int) stream.AssignFn {
	return func(pos int, rng *xrand.RNG) int {
		if pos < shiftPos {
			return before(pos, rng)
		}
		return after(pos, rng)
	}
}

// SkewedSites assigns each update to a site drawn from a fixed
// categorical distribution — the per-site skew map. share[i] is site
// i's relative traffic share; shares need not sum to one.
func SkewedSites(share []float64) stream.AssignFn {
	if len(share) == 0 {
		panic("workload: SkewedSites needs at least one site share")
	}
	cdf := make([]float64, len(share))
	var sum float64
	for i, w := range share {
		if !(w >= 0) {
			panic(fmt.Sprintf("workload: site share %d is %v, must be nonnegative", i, w))
		}
		sum += w
		cdf[i] = sum
	}
	if !(sum > 0) {
		panic("workload: SkewedSites shares sum to zero")
	}
	return func(_ int, rng *xrand.RNG) int {
		x := rng.Float64() * sum
		for i, c := range cdf {
			if x < c {
				return i
			}
		}
		return len(cdf) - 1
	}
}

// ZipfSites is SkewedSites with share[i] proportional to 1/(i+1)^alpha:
// site 0 is the hottest, the tail is cold — the canonical skewed
// placement for k sites.
func ZipfSites(k int, alpha float64) stream.AssignFn {
	share := make([]float64, k)
	for i := range share {
		share[i] = 1 / math.Pow(float64(i+1), alpha)
	}
	return SkewedSites(share)
}
