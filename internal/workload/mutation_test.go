//go:build wrsmutation

package workload

import (
	"bytes"
	"testing"
)

// TestMutationSelfTest proves the fuzzer can actually catch an
// exactness bug — the standard worry with an oracle harness is that it
// silently tests nothing. The wrsmutation build tag arms a planted
// checkpoint bug (core.ExportState drops the withheld pool; see
// internal/core/mutation_off.go), and this test demands that (1) the
// seeded fuzz loop finds a failing schedule within a bounded seed
// budget, (2) Shrink reduces it to at most 5 events while it still
// fails, and (3) the whole find-and-shrink pipeline is deterministic.
//
// Run it alone — every other snapshot/restart test in this package is
// SUPPOSED to fail under the planted bug:
//
//	go test -tags wrsmutation -run TestMutationSelfTest ./internal/workload
func TestMutationSelfTest(t *testing.T) {
	cfg := smallFuzzConfig()
	shardCounts := []int{1, 2}
	failing := func(c Scenario) bool {
		return FirstFailure(c, FuzzApps(), shardCounts) != ""
	}

	const seedBudget = 200
	found := uint64(0)
	var firstMsg string
	for seed := uint64(0); seed < seedBudget; seed++ {
		sc := FuzzScenario(cfg, seed)
		if msg := FirstFailure(sc, FuzzApps(), shardCounts); msg != "" {
			found = seed
			firstMsg = msg
			break
		}
	}
	if firstMsg == "" {
		t.Fatalf("planted checkpoint bug not detected in %d seeds — the fuzzer is blind", seedBudget)
	}
	t.Logf("seed %d detected the planted bug: %s", found, firstMsg)

	shrunk := Shrink(FuzzScenario(cfg, found), failing)
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk reproducer invalid: %v", err)
	}
	if !failing(shrunk) {
		t.Fatal("shrunk reproducer no longer fails")
	}
	if len(shrunk.Faults) > 5 {
		t.Errorf("shrunk reproducer has %d events, want <= 5: %+v", len(shrunk.Faults), shrunk.Faults)
	}
	snap, restart := 0, 0
	for _, f := range shrunk.Faults {
		switch f.Kind {
		case CoordSnapshot:
			snap++
		case CoordRestart:
			restart++
		}
	}
	if snap == 0 || restart == 0 {
		t.Errorf("shrunk reproducer lost the snapshot/restart pair the planted bug needs: %+v", shrunk.Faults)
	}

	b1, err := EncodeScenario(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeScenario(Shrink(FuzzScenario(cfg, found), failing))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("find-and-shrink pipeline is not deterministic")
	}
	t.Logf("minimized reproducer:\n%s", b1)
}
