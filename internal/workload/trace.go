package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Trace format ("WRST"): a workload run recorded update-by-update so it
// can be replayed bit-for-bit — same IDs, weights, sites, and virtual
// arrival times — without the generating Spec or its seed. The format
// is a fixed little-endian layout:
//
//	magic   [4]byte  "WRST"
//	version uint32   (1)
//	k       uint32   number of sites
//	count   uint64   number of updates
//	records count × { pos uint64, id uint64, site uint32,
//	                  weight float64 bits, at float64 bits }
//
// Weights and times are stored as IEEE-754 bit patterns, so a replayed
// trace is bit-identical to the recorded run, not merely close.

const (
	traceMagic   = "WRST"
	traceVersion = 1
)

// WriteTrace drains a source into w in trace format. It returns the
// number of updates written.
func WriteTrace(w io.Writer, src Source) (int, error) {
	var updates []TimedUpdate
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		updates = append(updates, u)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return 0, err
	}
	var scratch [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	if err := put32(traceVersion); err != nil {
		return 0, err
	}
	if err := put32(uint32(src.K())); err != nil {
		return 0, err
	}
	if err := put64(uint64(len(updates))); err != nil {
		return 0, err
	}
	for _, u := range updates {
		if err := put64(uint64(u.Pos)); err != nil {
			return 0, err
		}
		if err := put64(u.Item.ID); err != nil {
			return 0, err
		}
		if err := put32(uint32(u.Site)); err != nil {
			return 0, err
		}
		if err := put64(math.Float64bits(u.Item.Weight)); err != nil {
			return 0, err
		}
		if err := put64(math.Float64bits(u.At)); err != nil {
			return 0, err
		}
	}
	return len(updates), bw.Flush()
}

// Trace is a fully loaded recorded run. It implements Source by
// replaying its updates in order; Rewind starts replay over.
type Trace struct {
	Sites   int
	Updates []TimedUpdate
	next    int
}

// ReadTrace loads a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: reading trace magic: %w", err)
	}
	if string(magic[:]) != traceMagic {
		return nil, fmt.Errorf("workload: bad trace magic %q", magic[:])
	}
	var scratch [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	version, err := get32()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace version: %w", err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("workload: trace version %d, want %d", version, traceVersion)
	}
	k, err := get32()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace site count: %w", err)
	}
	if k == 0 {
		return nil, fmt.Errorf("workload: trace has zero sites")
	}
	count, err := get64()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace length: %w", err)
	}
	tr := &Trace{Sites: int(k), Updates: make([]TimedUpdate, 0, count)}
	prevAt := math.Inf(-1)
	for i := uint64(0); i < count; i++ {
		var u TimedUpdate
		pos, err := get64()
		if err != nil {
			return nil, fmt.Errorf("workload: truncated trace at record %d: %w", i, err)
		}
		u.Pos = int(pos)
		if u.Item.ID, err = get64(); err != nil {
			return nil, fmt.Errorf("workload: truncated trace at record %d: %w", i, err)
		}
		site, err := get32()
		if err != nil {
			return nil, fmt.Errorf("workload: truncated trace at record %d: %w", i, err)
		}
		if int(site) >= int(k) {
			return nil, fmt.Errorf("workload: trace record %d addresses site %d of %d", i, site, k)
		}
		u.Site = int(site)
		wbits, err := get64()
		if err != nil {
			return nil, fmt.Errorf("workload: truncated trace at record %d: %w", i, err)
		}
		u.Item.Weight = math.Float64frombits(wbits)
		if !(u.Item.Weight > 0) || math.IsInf(u.Item.Weight, 0) {
			return nil, fmt.Errorf("workload: trace record %d has invalid weight %v", i, u.Item.Weight)
		}
		abits, err := get64()
		if err != nil {
			return nil, fmt.Errorf("workload: truncated trace at record %d: %w", i, err)
		}
		u.At = math.Float64frombits(abits)
		if u.At < prevAt {
			return nil, fmt.Errorf("workload: trace record %d goes back in time (%v after %v)", i, u.At, prevAt)
		}
		prevAt = u.At
		tr.Updates = append(tr.Updates, u)
	}
	return tr, nil
}

// K returns the number of sites the trace addresses.
func (t *Trace) K() int { return t.Sites }

// Next replays the next recorded update.
func (t *Trace) Next() (TimedUpdate, bool) {
	if t.next >= len(t.Updates) {
		return TimedUpdate{}, false
	}
	u := t.Updates[t.next]
	t.next++
	return u, true
}

// Rewind restarts replay from the first update.
func (t *Trace) Rewind() { t.next = 0 }
