package workload

import (
	"fmt"

	"wrs/internal/core"
	"wrs/internal/l1track"
	"wrs/internal/netsim"
	rt "wrs/internal/runtime"
	"wrs/internal/window"
	"wrs/internal/xrand"
)

// A family adapts one coordinator runtime to the engine's fault and
// oracle bookkeeping: every message delivery runs through it (so it can
// log acknowledgments in whatever shape that runtime's oracle needs),
// and so do checkpoints, restarts, replacement-site construction and
// the final query-vs-oracle comparison. One family instance covers all
// shards of a run; the engine never inspects coordinator state itself.
//
// Three families exist, one per coordinator type the supported apps
// build (DESIGN.md §15.5–§15.6 argue each oracle's soundness):
//
//   - samplerFamily — the plain core sampler (swor, hh, quantile): the
//     PR-9 acknowledgment oracle. Query must equal the brute-force
//     top-s over every (key, item) that verifiably reached the
//     coordinator, with the log rolled back on restart.
//   - l1Family — the L1 duplication tracker: the sampler oracle over
//     the inner coordinator, plus a mirrored exact-prefix accumulator
//     so the estimate itself is checked delivery-exactly in both
//     phases of the estimator.
//   - windowFamily — the windowed protocol: per-(shard, site) delivery
//     logs and observed clocks; the oracle replays retention at the
//     coordinator's clock, so non-monotone expiry is judged exactly.
type family interface {
	// handle delivers one upstream message to shard p's coordinator,
	// doing the acknowledgment bookkeeping; broadcasts go to bcast.
	handle(p int, m core.Message, bcast func(core.Message))
	// newSite builds a replacement machine for a joining site. old is
	// the machine being replaced (the windowed family reads its
	// sequence position); control-plane replay is the engine's job.
	newSite(p, site int, old netsim.Site[core.Message], rng *xrand.RNG) (netsim.Site[core.Message], error)
	// controlSnapshot emits shard p's coordinator-side control-plane
	// snapshot (the late-joiner replay; empty for push-only protocols).
	controlSnapshot(p int, emit func(core.Message))
	// snapshot checkpoints every shard together with its oracle state.
	snapshot()
	// restore restores the latest checkpoint in place and returns how
	// many acknowledgments were rolled back.
	restore() (int, error)
	// results builds the final per-shard query-vs-oracle comparison.
	results() []ShardResult
	// proto returns shard p's coordinator for capability probing
	// (relay.UnionMergeable).
	proto(p int) any
}

// newFamily picks the family for the app's coordinator type. All shards
// of one app share a type, so probing instance 0 suffices.
func newFamily(insts []rt.Instance) (family, error) {
	switch insts[0].Coord.(type) {
	case *core.Coordinator:
		return newSamplerFamily(insts)
	case *l1track.DupCoordinator:
		return newL1Family(insts)
	case *core.WindowCoordinator:
		return newWindowFamily(insts)
	default:
		return nil, fmt.Errorf("workload: no chaos oracle for coordinator type %T", insts[0].Coord)
	}
}

// ---- samplerFamily -------------------------------------------------------

// ackLog is the shared sampler-shaped acknowledgment machinery: the
// per-shard (key, item) log, the recorders that capture coordinator-side
// key draws for early messages, and the snapshot positions. l1Family
// embeds one over the inner coordinators.
type ackLog struct {
	coords []*core.Coordinator
	recs   []*core.Recorder
	recIdx []int // recorder entries consumed, per shard
	cfgs   []core.Config
	acks   [][]core.SampleEntry

	snaps    []*core.CoordinatorState
	snapAcks []int
}

func newAckLog(coords []*core.Coordinator, cfgs []core.Config) *ackLog {
	l := &ackLog{
		coords: coords,
		cfgs:   cfgs,
		recs:   make([]*core.Recorder, len(coords)),
		recIdx: make([]int, len(coords)),
		acks:   make([][]core.SampleEntry, len(coords)),
	}
	for p, c := range coords {
		l.recs[p] = core.NewRecorder()
		c.SetRecorder(l.recs[p])
	}
	return l
}

// ack logs the acknowledgment for one message the inner coordinator just
// processed. Regular messages carry their key on the wire; an early
// message's key was drawn coordinator-side during processing and
// captured by the recorder. Recorder entries are consumed strictly in
// append order — NOT looked up by item ID — because the L1 runtime
// delivers duplicated copies sharing one ID with distinct keys; the
// coordinator records exactly one entry per early message processed, so
// the next unconsumed record is this message's key. The index survives
// restarts untouched: a rewound coordinator re-draws (identical) keys,
// appending fresh records for the re-deliveries.
func (l *ackLog) ack(p int, m core.Message) {
	switch m.Kind {
	case core.MsgRegular:
		l.acks[p] = append(l.acks[p], core.SampleEntry{Key: m.Key, Item: m.Item})
	case core.MsgEarly:
		if l.recIdx[p] >= l.recs[p].Len() {
			panic(fmt.Sprintf("workload: early item %d processed but no key was recorded", m.Item.ID))
		}
		id, key := l.recs[p].At(l.recIdx[p])
		l.recIdx[p]++
		if id != m.Item.ID {
			panic(fmt.Sprintf("workload: recorded key order diverged: expected item %d, recorder holds %d", m.Item.ID, id))
		}
		l.acks[p] = append(l.acks[p], core.SampleEntry{Key: key, Item: m.Item})
	default:
		// Control kinds flow downstream and the windowed kinds belong
		// to windowFamily; nothing to acknowledge.
	}
}

func (l *ackLog) controlSnapshot(p int, emit func(core.Message)) {
	for _, j := range l.coords[p].SaturatedLevels() {
		emit(core.Message{Kind: core.MsgLevelSaturated, Level: j})
	}
	if th := l.coords[p].CurrentThreshold(); th > 0 {
		emit(core.Message{Kind: core.MsgEpochUpdate, Threshold: th})
	}
}

func (l *ackLog) snapshot() {
	if l.snaps == nil {
		l.snaps = make([]*core.CoordinatorState, len(l.coords))
		l.snapAcks = make([]int, len(l.coords))
	}
	for p, c := range l.coords {
		l.snaps[p] = c.ExportState()
		l.snapAcks[p] = len(l.acks[p])
	}
}

func (l *ackLog) restore() (int, error) {
	if l.snaps == nil {
		return 0, fmt.Errorf("workload: coord-restart with no snapshot taken")
	}
	rolled := 0
	for p, c := range l.coords {
		if err := c.RestoreState(l.snaps[p]); err != nil {
			return rolled, err
		}
		rolled += len(l.acks[p]) - l.snapAcks[p]
		// Full slice expression: appends after the rollback must not
		// overwrite the (dead) entries past the checkpoint in a way
		// that would alias a prior snapshot's backing array.
		l.acks[p] = l.acks[p][:l.snapAcks[p]:l.snapAcks[p]]
	}
	return rolled, nil
}

type samplerFamily struct {
	log *ackLog
}

func newSamplerFamily(insts []rt.Instance) (*samplerFamily, error) {
	coords := make([]*core.Coordinator, len(insts))
	cfgs := make([]core.Config, len(insts))
	for p, inst := range insts {
		coords[p] = inst.Coord.(*core.Coordinator)
		cfgs[p] = inst.Cfg
	}
	return &samplerFamily{log: newAckLog(coords, cfgs)}, nil
}

func (f *samplerFamily) handle(p int, m core.Message, bcast func(core.Message)) {
	f.log.coords[p].HandleMessage(m, bcast)
	f.log.ack(p, m)
}

func (f *samplerFamily) newSite(p, site int, _ netsim.Site[core.Message], rng *xrand.RNG) (netsim.Site[core.Message], error) {
	return core.NewSite(site, f.log.cfgs[p], rng), nil
}

func (f *samplerFamily) controlSnapshot(p int, emit func(core.Message)) {
	f.log.controlSnapshot(p, emit)
}

func (f *samplerFamily) snapshot()             { f.log.snapshot() }
func (f *samplerFamily) restore() (int, error) { return f.log.restore() }
func (f *samplerFamily) proto(p int) any       { return f.log.coords[p] }

func (f *samplerFamily) results() []ShardResult {
	out := make([]ShardResult, len(f.log.coords))
	for p, c := range f.log.coords {
		oracle := append([]core.SampleEntry(nil), f.log.acks[p]...)
		out[p] = ShardResult{
			Query:  c.Query(),
			Oracle: core.TopSample(oracle, f.log.cfgs[p].S),
			Acked:  len(f.log.acks[p]),
			Stats:  c.Stats,
		}
	}
	return out
}

// ---- l1Family ------------------------------------------------------------

// l1Family drives the L1 duplication tracker. The inner sampler
// coordinator gets the full sampler oracle (over duplicated copies —
// each copy is its own message with its own key, so the ack log is per
// copy). On top, the family mirrors the wrapper's exact-prefix
// accumulator delivery by delivery: weight is added for every early or
// regular copy processed while the wrapper is still in the exact phase,
// in the same float64 addition order the wrapper uses, and rolled back
// to the checkpointed value on restart. The final check then has two
// parts: inner query == top-s over acked copies, and the wrapper's
// Estimate() == the estimate recomputed from oracle state alone
// (accumulator while exact, the Theorem 6 estimator s·u/l with u the
// oracle's s-th key once estimating). Any divergence — a lost
// accumulator update, a wrong phase flip, a checkpoint that forgot the
// accumulator — lands in ShardResult.Mismatch.
type l1Family struct {
	log    *ackLog
	coords []*l1track.DupCoordinator
	exact  []float64 // mirror of each wrapper's exact-prefix accumulator

	snapDup   []*l1track.DupState
	snapExact []float64
}

func newL1Family(insts []rt.Instance) (*l1Family, error) {
	dups := make([]*l1track.DupCoordinator, len(insts))
	inner := make([]*core.Coordinator, len(insts))
	cfgs := make([]core.Config, len(insts))
	for p, inst := range insts {
		dups[p] = inst.Coord.(*l1track.DupCoordinator)
		inner[p] = dups[p].Core()
		cfgs[p] = inst.Cfg
	}
	return &l1Family{
		log:    newAckLog(inner, cfgs),
		coords: dups,
		exact:  make([]float64, len(insts)),
	}, nil
}

func (f *l1Family) handle(p int, m core.Message, bcast func(core.Message)) {
	// Mirror the wrapper's accumulator rule exactly, including its
	// evaluation order: the phase is read BEFORE processing (the
	// message that flips the threshold positive still counts), and the
	// weight is added in delivery order so the float64 sum is
	// bit-identical to the wrapper's own.
	if !f.coords[p].EstMode() && (m.Kind == core.MsgEarly || m.Kind == core.MsgRegular) {
		f.exact[p] += m.Item.Weight
	}
	f.coords[p].HandleMessage(m, bcast)
	f.log.ack(p, m)
}

func (f *l1Family) newSite(p, site int, _ netsim.Site[core.Message], rng *xrand.RNG) (netsim.Site[core.Message], error) {
	return f.coords[p].NewSite(site, rng), nil
}

func (f *l1Family) controlSnapshot(p int, emit func(core.Message)) {
	f.log.controlSnapshot(p, emit)
}

func (f *l1Family) snapshot() {
	if f.snapDup == nil {
		f.snapDup = make([]*l1track.DupState, len(f.coords))
		f.snapExact = make([]float64, len(f.coords))
	}
	for p, c := range f.coords {
		f.snapDup[p] = c.ExportState()
		f.snapExact[p] = f.exact[p]
		f.log.snapAcksOnly(p)
	}
}

func (f *l1Family) restore() (int, error) {
	if f.snapDup == nil {
		return 0, fmt.Errorf("workload: coord-restart with no snapshot taken")
	}
	rolled := 0
	for p, c := range f.coords {
		if err := c.RestoreState(f.snapDup[p]); err != nil {
			return rolled, err
		}
		f.exact[p] = f.snapExact[p]
		rolled += len(f.log.acks[p]) - f.log.snapAcks[p]
		f.log.acks[p] = f.log.acks[p][:f.log.snapAcks[p]:f.log.snapAcks[p]]
	}
	return rolled, nil
}

func (f *l1Family) proto(p int) any { return f.coords[p] }

func (f *l1Family) results() []ShardResult {
	out := make([]ShardResult, len(f.coords))
	for p, c := range f.coords {
		oracle := append([]core.SampleEntry(nil), f.log.acks[p]...)
		s := f.log.cfgs[p].S
		r := ShardResult{
			Query:  c.Core().Query(),
			Oracle: core.TopSample(oracle, s),
			Acked:  len(f.log.acks[p]),
			Stats:  c.Core().Stats,
		}
		// The estimate check: recompute the wrapper's estimator from
		// oracle-side state only. ExportState exposes the wrapper's
		// actual accumulator, so a divergence pinpoints which side of
		// the bookkeeping broke.
		ell := float64(c.Ell())
		if st := c.ExportState(); st.ExactDup != f.exact[p] {
			r.Mismatch = fmt.Sprintf("exact-prefix accumulator: wrapper %v, oracle %v", st.ExactDup, f.exact[p])
		}
		r.Estimate = c.Estimate()
		if !c.EstMode() || len(r.Oracle) < s {
			r.OracleEstimate = f.exact[p] / ell
		} else {
			r.OracleEstimate = float64(s) * r.Oracle[s-1].Key / ell
		}
		if r.Mismatch == "" && r.Estimate != r.OracleEstimate {
			r.Mismatch = fmt.Sprintf("estimate: wrapper %v, oracle %v", r.Estimate, r.OracleEstimate)
		}
		out[p] = r
	}
	return out
}

// snapAcksOnly records shard p's ack position without exporting inner
// coordinator state (the wrapper's own export already contains it).
func (l *ackLog) snapAcksOnly(p int) {
	if l.snapAcks == nil {
		l.snapAcks = make([]int, len(l.coords))
	}
	l.snapAcks[p] = len(l.acks[p])
}

// ---- windowFamily --------------------------------------------------------

// windowFamily drives the windowed protocol, whose retention is
// non-monotone: candidates expire as per-site clocks advance, so "what
// the coordinator verifiably holds" depends on WHEN each delivery
// happened relative to the clock. The oracle therefore logs, per
// (shard, site), every delivered candidate AND the observed clock —
// the max of pos+1 over every delivered stamp, exactly the rule
// Retention.Add/Advance applies — and replays expiry at the end: a
// delivered candidate is live iff pos >= clock - width at the final
// observed clock. That replay is exact, not conservative, because
// per-site clocks are monotone and expiry is a pure function of (pos,
// final clock): an entry the coordinator expired mid-run stays expired
// (its pos only falls further behind), and one it retained is still
// live at the final clock. The engine cross-checks its mirrored clocks
// against the coordinator's own (SiteClock) so the two bookkeepings
// cannot silently drift.
type windowFamily struct {
	coords []*core.WindowCoordinator
	k, s   int
	width  int
	acks   [][][]window.Entry // [shard][site]: delivered candidates
	clocks [][]int            // [shard][site]: observed clock (max pos+1)

	snaps      []*core.WindowCoordinatorState
	snapAcks   [][]int
	snapClocks [][]int
}

func newWindowFamily(insts []rt.Instance) (*windowFamily, error) {
	coords := make([]*core.WindowCoordinator, len(insts))
	for p, inst := range insts {
		coords[p] = inst.Coord.(*core.WindowCoordinator)
	}
	k := coords[0].Config().K
	f := &windowFamily{
		coords: coords,
		k:      k,
		s:      coords[0].Config().S,
		width:  coords[0].Width(),
		acks:   make([][][]window.Entry, len(insts)),
		clocks: make([][]int, len(insts)),
	}
	for p := range insts {
		f.acks[p] = make([][]window.Entry, k)
		f.clocks[p] = make([]int, k)
	}
	return f, nil
}

func (f *windowFamily) handle(p int, m core.Message, bcast func(core.Message)) {
	f.coords[p].HandleMessage(m, bcast)
	if m.Level < 0 {
		return // the coordinator counted it as a bad stamp and dropped it
	}
	switch m.Kind {
	case core.MsgWindow:
		pos, site := core.SplitWindowStamp(m.Level, f.k)
		f.acks[p][site] = append(f.acks[p][site], window.Entry{Pos: pos, Key: m.Key, Item: m.Item})
		if pos+1 > f.clocks[p][site] {
			f.clocks[p][site] = pos + 1
		}
	case core.MsgClock:
		pos, site := core.SplitWindowStamp(m.Level, f.k)
		if pos+1 > f.clocks[p][site] {
			f.clocks[p][site] = pos + 1
		}
	default:
		// Ignored by the coordinator (IgnoredMsgs); nothing delivered.
	}
}

// newSite fast-forwards the replacement machine to the crashed
// machine's sequence position: the coordinator's retention clock for
// this site only moves forward, so a machine restarting at position 0
// would have every candidate dropped as pre-expired. Resuming at N()
// is what a durable site-local sequence counter gives a real
// deployment (DESIGN.md §15.6).
func (f *windowFamily) newSite(p, site int, old netsim.Site[core.Message], rng *xrand.RNG) (netsim.Site[core.Message], error) {
	prev, ok := old.(*core.WindowSite)
	if !ok {
		return nil, fmt.Errorf("workload: windowed replacement for site %d: old machine is %T", site, old)
	}
	ns := core.NewWindowSite(site, f.coords[p].Config(), f.width, rng)
	if err := ns.Resume(prev.N()); err != nil {
		return nil, err
	}
	return ns, nil
}

// controlSnapshot is empty: the windowed protocol has no broadcasts,
// hence no control plane for a joiner to replay.
func (f *windowFamily) controlSnapshot(int, func(core.Message)) {}

func (f *windowFamily) snapshot() {
	if f.snaps == nil {
		f.snaps = make([]*core.WindowCoordinatorState, len(f.coords))
		f.snapAcks = make([][]int, len(f.coords))
		f.snapClocks = make([][]int, len(f.coords))
		for p := range f.coords {
			f.snapAcks[p] = make([]int, f.k)
			f.snapClocks[p] = make([]int, f.k)
		}
	}
	for p, c := range f.coords {
		f.snaps[p] = c.ExportState()
		for i := 0; i < f.k; i++ {
			f.snapAcks[p][i] = len(f.acks[p][i])
			f.snapClocks[p][i] = f.clocks[p][i]
		}
	}
}

func (f *windowFamily) restore() (int, error) {
	if f.snaps == nil {
		return 0, fmt.Errorf("workload: coord-restart with no snapshot taken")
	}
	rolled := 0
	for p, c := range f.coords {
		if err := c.RestoreState(f.snaps[p]); err != nil {
			return rolled, err
		}
		for i := 0; i < f.k; i++ {
			rolled += len(f.acks[p][i]) - f.snapAcks[p][i]
			f.acks[p][i] = f.acks[p][i][:f.snapAcks[p][i]:f.snapAcks[p][i]]
			f.clocks[p][i] = f.snapClocks[p][i]
		}
	}
	return rolled, nil
}

func (f *windowFamily) proto(p int) any { return f.coords[p] }

func (f *windowFamily) results() []ShardResult {
	out := make([]ShardResult, len(f.coords))
	for p, c := range f.coords {
		var r ShardResult
		var cands []window.Entry
		acked := 0
		for site := 0; site < f.k; site++ {
			acked += len(f.acks[p][site])
			clock := f.clocks[p][site]
			if got := c.SiteClock(site); got != clock {
				r.Mismatch = fmt.Sprintf("site %d clock: coordinator %d, oracle %d", site, got, clock)
			}
			lo := clock - f.width
			for _, e := range f.acks[p][site] {
				if e.Pos >= lo {
					cands = append(cands, e)
				}
			}
		}
		r.Acked = acked
		r.WStats = c.Stats
		r.Query = sampleEntries(c.Query())
		r.Oracle = sampleEntries(window.TopEntries(cands, f.s))
		out[p] = r
	}
	return out
}

// sampleEntries projects window entries onto the (key, item) shape the
// generic query-vs-oracle comparison uses. Position stamps need no
// separate comparison: item IDs are unique stream positions, so equal
// (key, item) pairs imply the same candidate.
func sampleEntries(es []window.Entry) []core.SampleEntry {
	out := make([]core.SampleEntry, len(es))
	for i, e := range es {
		out[i] = core.SampleEntry{Key: e.Key, Item: e.Item}
	}
	return out
}
