package workload

import (
	"encoding/json"
	"fmt"

	"wrs/internal/netsim"
)

// Lossless JSON round-trip for declarative scenarios: the reproducer
// path. A fuzzer-found failure is shrunk, encoded, and either committed
// to testdata/corpus or replayed via wrs-chaos -run. Only fully
// declarative scenarios serialize — one carrying an inline SpecFor
// builder or an explicit Source (trace replay) has no JSON form; its
// workload must first be named as a recipe.

// FaultSpec is the JSON form of one Fault.
type FaultSpec struct {
	At   float64          `json:"at"`
	Kind string           `json:"kind"`
	Site int              `json:"site,omitempty"`
	Tier int              `json:"tier,omitempty"`
	Node int              `json:"node,omitempty"`
	Up   netsim.LinkModel `json:"up"`
	Down netsim.LinkModel `json:"down"`
}

// ScenarioSpec is the JSON form of a declarative Scenario.
type ScenarioSpec struct {
	Name     string           `json:"name"`
	About    string           `json:"about,omitempty"`
	K        int              `json:"k"`
	S        int              `json:"s"`
	N        int              `json:"n"`
	Shards   int              `json:"shards,omitempty"`
	Width    int              `json:"width,omitempty"`
	Horizon  float64          `json:"horizon,omitempty"`
	Seed     uint64           `json:"seed"`
	Workload string           `json:"workload"`
	Fanout   int              `json:"fanout,omitempty"`
	Depth    int              `json:"depth,omitempty"`
	Up       netsim.LinkModel `json:"up"`
	Down     netsim.LinkModel `json:"down"`
	EdgeUp   netsim.LinkModel `json:"edgeUp"`
	EdgeDown netsim.LinkModel `json:"edgeDown"`
	Faults   []FaultSpec      `json:"faults,omitempty"`
}

// EncodeScenario renders a declarative scenario as indented JSON.
func EncodeScenario(sc Scenario) ([]byte, error) {
	if sc.SpecFor != nil || sc.Source != nil {
		return nil, fmt.Errorf("workload: scenario %q carries an inline spec or source and cannot serialize; name its workload as a recipe", sc.Name)
	}
	spec := ScenarioSpec{
		Name: sc.Name, About: sc.About,
		K: sc.K, S: sc.S, N: sc.N, Shards: sc.Shards, Width: sc.Width,
		Horizon: sc.Horizon, Seed: sc.Seed, Workload: sc.Workload,
		Fanout: sc.Fanout, Depth: sc.Depth,
		Up: sc.Up, Down: sc.Down, EdgeUp: sc.EdgeUp, EdgeDown: sc.EdgeDown,
	}
	for _, f := range sc.Faults {
		spec.Faults = append(spec.Faults, FaultSpec{
			At: f.At, Kind: f.Kind.String(),
			Site: f.Site, Tier: f.Tier, Node: f.Node,
			Up: f.Up, Down: f.Down,
		})
	}
	return json.MarshalIndent(spec, "", "  ")
}

// DecodeScenario parses and validates a scenario encoded by
// EncodeScenario (or written by hand in the same form).
func DecodeScenario(data []byte) (Scenario, error) {
	var spec ScenarioSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return Scenario{}, fmt.Errorf("workload: decoding scenario: %w", err)
	}
	sc := Scenario{
		Name: spec.Name, About: spec.About,
		K: spec.K, S: spec.S, N: spec.N, Shards: spec.Shards, Width: spec.Width,
		Horizon: spec.Horizon, Seed: spec.Seed, Workload: spec.Workload,
		Fanout: spec.Fanout, Depth: spec.Depth,
		Up: spec.Up, Down: spec.Down, EdgeUp: spec.EdgeUp, EdgeDown: spec.EdgeDown,
	}
	for _, f := range spec.Faults {
		kind, err := faultKindFromString(f.Kind)
		if err != nil {
			return Scenario{}, err
		}
		sc.Faults = append(sc.Faults, Fault{
			At: f.At, Kind: kind,
			Site: f.Site, Tier: f.Tier, Node: f.Node,
			Up: f.Up, Down: f.Down,
		})
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}
