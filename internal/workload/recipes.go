package workload

import (
	"wrs/internal/stream"
)

// A workload recipe is a named Spec builder. Recipes exist so scenarios
// are serializable: a Scenario that names its workload instead of
// carrying a closure round-trips through JSON (see EncodeScenario),
// which is what lets the fuzzer emit copy-pasteable reproducers and the
// regression corpus commit failing schedules as plain files. The
// registry is an ordered slice, not a map, so enumeration order is
// deterministic everywhere it shows up (CLI listings, fuzzer draws).
type recipe struct {
	name string
	spec func(k, n int) Spec
}

func recipes() []recipe {
	return []recipe{
		{"zipf-diurnal", func(k, n int) Spec {
			return Spec{
				N: n, K: k,
				Weights:  stream.ZipfWeights(1.2, 1<<16),
				Assign:   ZipfSites(k, 1.0),
				Arrivals: Diurnal{BaseHz: 2000, Components: []RateComponent{{Period: 1.0, Amplitude: 0.6}, {Period: 0.13, Amplitude: 0.25}}},
			}
		}},
		{"pareto-bursty", func(k, n int) Spec {
			return Spec{
				N: n, K: k,
				Weights:  stream.ParetoWeights(1.15),
				Assign:   stream.RandomSites(k),
				Arrivals: NewBursty(1000, 4000, 5),
			}
		}},
		{"uniform-steady", func(k, n int) Spec {
			return Spec{
				N: n, K: k,
				Weights:  stream.UniformWeights(1e4),
				Assign:   stream.RoundRobin(k),
				Arrivals: Constant{Hz: 2500},
			}
		}},
		{"shift-adversarial", func(k, n int) Spec {
			return Spec{
				N: n, K: k,
				Weights:  ShiftWeights(stream.UniformWeights(10), stream.ParetoWeights(1.05), n/2),
				Assign:   ShiftAssign(ZipfSites(k, 1.5), stream.RandomSites(k), n/2),
				Arrivals: Constant{Hz: 3000},
			}
		}},
	}
}

// RecipeNames lists the registered workload recipes in registry order.
func RecipeNames() []string {
	rs := recipes()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.name
	}
	return out
}

// RecipeSpec returns the named recipe's Spec builder.
func RecipeSpec(name string) (func(k, n int) Spec, bool) {
	for _, r := range recipes() {
		if r.name == name {
			return r.spec, true
		}
	}
	return nil, false
}
