package runtime

import (
	"fmt"
	"testing"

	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// TestSkipAheadMatrix drives the A-ExpJ skip-ahead configuration over
// every runtime × shard-count combination. The brute-force recorder
// oracle of TestFabricMatrixExactness cannot apply — skipped items
// never materialize a key, which is the whole point — so this matrix
// pins the structural invariants on every cell: the merged sample is a
// full, duplicate-free top-s of genuinely streamed items, filtering
// stays sublinear, and the jump actually engaged (items were consumed
// with zero RNG draws). Distribution-exactness of the jump filter is
// pinned separately: per-decision in internal/xrand's jump suite and
// end-to-end in internal/core's skip-ahead inclusion tests.
func TestSkipAheadMatrix(t *testing.T) {
	for name, factory := range factories() {
		for _, shards := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				cfg := core.Config{K: 4, S: 8, SkipAhead: true}
				insts := buildShardInstances(cfg, shards, 17, nil)
				run, err := buildSharded(name, factory, insts)
				if err != nil {
					t.Fatal(err)
				}
				closed := false
				defer func() {
					if !closed {
						run.Close()
					}
				}()

				const n = 6000
				rng := xrand.New(99)
				for i := 0; i < n; i++ {
					it := stream.Item{ID: uint64(i), Weight: rng.Pareto(1.3)}
					if err := run.Feed(i%cfg.K, it); err != nil {
						t.Fatal(err)
					}
				}
				if err := run.Flush(); err != nil {
					t.Fatal(err)
				}
				var entries []core.SampleEntry
				for p := range insts {
					coord := insts[p].Coord.Core()
					run.DoShard(p, func() { entries = coord.Snapshot(entries) })
				}
				merged := fabric.Merge(entries, cfg.S)
				if len(merged) != cfg.S {
					t.Fatalf("merged sample size %d, want %d", len(merged), cfg.S)
				}
				seen := make(map[uint64]bool, cfg.S)
				for _, e := range merged {
					if e.Item.ID >= n {
						t.Fatalf("sampled item %d was never streamed", e.Item.ID)
					}
					if seen[e.Item.ID] {
						t.Fatalf("item %d sampled twice", e.Item.ID)
					}
					seen[e.Item.ID] = true
					if !(e.Key > 0) {
						t.Fatalf("sampled key %v not positive", e.Key)
					}
				}
				st := run.Stats()
				if st.Upstream == 0 {
					t.Error("no upstream traffic recorded")
				}
				// The tight sublinearity bound only holds per sub-stream
				// length: at 7 shards each shard sees ~n/7 items and its
				// thresholds converge proportionally later (more so under
				// asynchronous scheduling), so the multi-shard cells get
				// the loose strictly-filtered bound instead.
				bound := int64(n)
				if shards == 1 {
					bound = n / 2
				}
				if st.Upstream > bound {
					t.Errorf("upstream messages %d exceed bound %d for %d updates", st.Upstream, bound, n)
				}
				closed = true
				if err := run.Close(); err != nil {
					t.Fatal(err)
				}
				var skipped int64
				for p := range insts {
					for _, s := range insts[p].Sites {
						skipped += s.(*core.Site).Skipped
					}
				}
				if skipped == 0 {
					t.Error("skip-ahead never engaged: no arrivals consumed by an armed jump")
				}
			})
		}
	}
}
