// Package runtime is the pluggable runtime layer: a protocol instance
// is a (Coordinator, []Site) pair of transport-agnostic state machines,
// and a Runtime is anything that can drive one — deliver arrivals to
// sites, carry the resulting messages to the coordinator, and fan
// broadcasts back.
//
// Three runtimes ship with the repository, all driving the same
// unchanged state machines:
//
//   - Sequential: the deterministic synchronous simulator
//     (netsim.Cluster) — the model analyzed in the paper; every
//     message-complexity experiment runs on it.
//   - Goroutines: the in-process asynchronous runtime
//     (netsim.ConcurrentCluster) — one goroutine per site, FIFO links.
//   - TCP: the deployment-shaped runtime (transport.Cluster) — a real
//     CoordinatorServer plus one SiteClient connection per site, with
//     batching, flow control, and the lock-minimized ingest path.
//
// Because the split is sampler/communication-substrate (the design axis
// of Hübschle-Schneider & Sanders, arXiv:1910.11069), every application
// — plain SWOR, heavy hitters, L1 tracking — runs over every runtime:
// the application supplies the instance, the runtime supplies delivery.
package runtime

import (
	"errors"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/transport"
)

// Coordinator is the coordinator side of an instance: the plain sampler
// coordinator or an application wrapper around it. Core exposes the
// inner sampler for queries and transport-level snapshots.
type Coordinator interface {
	HandleMessage(m core.Message, bcast func(core.Message))
	Core() *core.Coordinator
}

// Instance is one protocol instance, ready to be driven by a runtime.
type Instance struct {
	Cfg   core.Config
	Coord Coordinator
	Sites []netsim.Site[core.Message]
}

// SiteList widens a slice of concrete site machines (*core.Site,
// *l1track.DupSite, ...) to the netsim.Site[core.Message] slice an
// Instance carries — the conversion every application performs when
// assembling instances.
func SiteList[S netsim.Site[core.Message]](sites []S) []netsim.Site[core.Message] {
	out := make([]netsim.Site[core.Message], len(sites))
	for i, s := range sites {
		out[i] = s
	}
	return out
}

// Runtime drives a protocol instance. Which goroutines may call Feed
// and FeedBatch is runtime-specific: the sequential runtime is
// single-threaded, the others allow one feeder per site.
type Runtime interface {
	// Feed delivers one arrival to a site.
	Feed(site int, it stream.Item) error
	// FeedBatch delivers a slice of arrivals to a site in order, using
	// the runtime's batched path.
	FeedBatch(site int, items []stream.Item) error
	// Flush is a barrier: when it returns, everything fed before the
	// call has reached the coordinator and the resulting broadcasts
	// have been applied as far as the runtime can guarantee.
	Flush() error
	// Stats returns cumulative protocol traffic.
	Stats() netsim.Stats
	// Do runs fn serialized with coordinator message processing, so fn
	// can read coordinator state consistently at any time.
	Do(fn func())
	// Close releases the runtime's resources. Feeding afterwards is an
	// error. Close does not flush.
	Close() error
}

// Factory builds a runtime over an instance.
type Factory func(inst Instance) (Runtime, error)

// Sequential returns the deterministic synchronous runtime: messages
// and broadcasts are delivered inline inside Feed, exactly the model of
// Section 2.1. Single-goroutine use only.
func Sequential() Factory {
	return func(inst Instance) (Runtime, error) {
		return &seqRuntime{c: netsim.NewCluster[core.Message](inst.Coord, inst.Sites)}, nil
	}
}

// Goroutines returns the in-process asynchronous runtime: one goroutine
// per site plus one for the coordinator, FIFO links both ways.
func Goroutines() Factory {
	return func(inst Instance) (Runtime, error) {
		cc := netsim.NewConcurrentCluster[core.Message](inst.Coord, inst.Sites)
		cc.Start()
		return &goRuntime{cc: cc}, nil
	}
}

// TCP returns the deployment-shaped runtime: a CoordinatorServer
// listening on addr ("127.0.0.1:0" when empty — any free loopback
// port) and one SiteClient connection per site.
func TCP(addr string) Factory {
	return func(inst Instance) (Runtime, error) {
		return transport.NewCluster(inst.Cfg, inst.Coord, inst.Sites, addr)
	}
}

// seqRuntime adapts netsim.Cluster. Everything is synchronous, so
// Flush is a no-op and Do is a plain call; Close only rejects further
// feeding, keeping the contract uniform across runtimes.
type seqRuntime struct {
	c      *netsim.Cluster[core.Message]
	closed bool
}

func (r *seqRuntime) Feed(site int, it stream.Item) error {
	if r.closed {
		return errClosed
	}
	return r.c.Feed(site, it)
}
func (r *seqRuntime) FeedBatch(site int, items []stream.Item) error {
	if r.closed {
		return errClosed
	}
	return r.c.FeedBatch(site, items)
}
func (r *seqRuntime) Flush() error        { return nil }
func (r *seqRuntime) Stats() netsim.Stats { return r.c.Stats }
func (r *seqRuntime) Do(fn func())        { fn() }
func (r *seqRuntime) Close() error        { r.closed = true; return nil }

var errClosed = errors.New("runtime: feed on closed runtime")

// goRuntime adapts netsim.ConcurrentCluster; Close drains it.
type goRuntime struct {
	cc *netsim.ConcurrentCluster[core.Message]

	closed     bool
	finalStats netsim.Stats
	closeErr   error
}

func (r *goRuntime) Feed(site int, it stream.Item) error { return r.cc.Feed(site, it) }
func (r *goRuntime) FeedBatch(site int, items []stream.Item) error {
	return r.cc.FeedBatch(site, items)
}
func (r *goRuntime) Flush() error { return r.cc.Flush() }
func (r *goRuntime) Stats() netsim.Stats {
	if r.closed {
		return r.finalStats
	}
	return r.cc.Stats()
}
func (r *goRuntime) Do(fn func()) { r.cc.Do(fn) }
func (r *goRuntime) Close() error {
	if !r.closed {
		r.finalStats, r.closeErr = r.cc.Drain()
		r.closed = true
	}
	return r.closeErr
}
