package runtime

import (
	"testing"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// buildInstance assembles a plain sampler instance with a recorder
// attached everywhere keys are generated, so exactness can be checked
// against the brute-force top-s on any runtime and any interleaving.
func buildInstance(cfg core.Config, seed uint64, rec *core.Recorder) Instance {
	master := xrand.New(seed)
	coord := core.NewCoordinator(cfg, master.Split())
	coord.SetRecorder(rec)
	sites := make([]netsim.Site[core.Message], cfg.K)
	for i := 0; i < cfg.K; i++ {
		s := core.NewSite(i, cfg, master.Split())
		s.SetRecorder(rec)
		sites[i] = s
	}
	return Instance{Cfg: cfg, Coord: coord, Sites: sites}
}

func factories() map[string]Factory {
	return map[string]Factory{
		"sequential": Sequential(),
		"goroutines": Goroutines(),
		"tcp":        TCP(""),
	}
}

// TestRuntimeMatrixExactness drives the identical protocol instance
// over every runtime and checks the paper's core invariant on each: the
// coordinator's query is exactly the brute-force top-s of all generated
// keys, no matter how messages were delivered.
func TestRuntimeMatrixExactness(t *testing.T) {
	for name, factory := range factories() {
		t.Run(name, func(t *testing.T) {
			cfg := core.Config{K: 4, S: 8}
			rec := core.NewRecorder()
			inst := buildInstance(cfg, 11, rec)
			run, err := factory(inst)
			if err != nil {
				t.Fatal(err)
			}
			defer run.Close()

			const n = 6000
			rng := xrand.New(99)
			for i := 0; i < n; i++ {
				it := stream.Item{ID: uint64(i), Weight: rng.Pareto(1.3)}
				if err := run.Feed(i%cfg.K, it); err != nil {
					t.Fatal(err)
				}
			}
			if err := run.Flush(); err != nil {
				t.Fatal(err)
			}
			if rec.Len() != n {
				t.Fatalf("recorded %d keys, want %d", rec.Len(), n)
			}
			var q []core.SampleEntry
			run.Do(func() { q = inst.Coord.Core().Query() })
			if len(q) != cfg.S {
				t.Fatalf("query size %d, want %d", len(q), cfg.S)
			}
			want := rec.TopIDs(cfg.S)
			for _, e := range q {
				if !want[e.Item.ID] {
					t.Fatalf("sample item %d is not a top-%d key", e.Item.ID, cfg.S)
				}
			}
			st := run.Stats()
			if st.Upstream == 0 || st.UpWords == 0 {
				t.Errorf("no upstream traffic recorded: %+v", st)
			}
			if st.Upstream > n/2 {
				t.Errorf("upstream messages %d not sublinear in %d updates", st.Upstream, n)
			}
		})
	}
}

// TestRuntimeMatrixFeedBatch runs the same invariant through each
// runtime's batched path.
func TestRuntimeMatrixFeedBatch(t *testing.T) {
	for name, factory := range factories() {
		t.Run(name, func(t *testing.T) {
			cfg := core.Config{K: 2, S: 5}
			rec := core.NewRecorder()
			inst := buildInstance(cfg, 23, rec)
			run, err := factory(inst)
			if err != nil {
				t.Fatal(err)
			}
			defer run.Close()

			const n, chunk = 4000, 111
			rng := xrand.New(5)
			batches := make([][]stream.Item, cfg.K)
			for i := 0; i < n; i++ {
				site := i % cfg.K
				batches[site] = append(batches[site], stream.Item{ID: uint64(i), Weight: rng.Pareto(1.2)})
				if len(batches[site]) == chunk {
					if err := run.FeedBatch(site, batches[site]); err != nil {
						t.Fatal(err)
					}
					batches[site] = batches[site][:0]
				}
			}
			for site := range batches {
				if err := run.FeedBatch(site, batches[site]); err != nil {
					t.Fatal(err)
				}
			}
			if err := run.Flush(); err != nil {
				t.Fatal(err)
			}
			if rec.Len() != n {
				t.Fatalf("recorded %d keys, want %d", rec.Len(), n)
			}
			var q []core.SampleEntry
			run.Do(func() { q = inst.Coord.Core().Query() })
			want := rec.TopIDs(cfg.S)
			if len(q) != cfg.S {
				t.Fatalf("query size %d, want %d", len(q), cfg.S)
			}
			for _, e := range q {
				if !want[e.Item.ID] {
					t.Fatalf("sample item %d is not a top-%d key", e.Item.ID, cfg.S)
				}
			}
		})
	}
}

// TestRuntimeFeedAfterClose pins the uniform contract: every runtime
// rejects feeding after Close with an error instead of panicking.
func TestRuntimeFeedAfterClose(t *testing.T) {
	for name, factory := range factories() {
		t.Run(name, func(t *testing.T) {
			cfg := core.Config{K: 2, S: 2}
			run, err := factory(buildInstance(cfg, 7, nil))
			if err != nil {
				t.Fatal(err)
			}
			if err := run.Feed(0, stream.Item{ID: 1, Weight: 1}); err != nil {
				t.Fatal(err)
			}
			if err := run.Close(); err != nil {
				t.Fatal(err)
			}
			if err := run.Feed(0, stream.Item{ID: 2, Weight: 1}); err == nil {
				t.Error("Feed after Close succeeded")
			}
			if err := run.FeedBatch(0, []stream.Item{{ID: 3, Weight: 1}}); err == nil {
				t.Error("FeedBatch after Close succeeded")
			}
		})
	}
}

// TestRuntimeSiteRange pins range validation on every runtime.
func TestRuntimeSiteRange(t *testing.T) {
	for name, factory := range factories() {
		t.Run(name, func(t *testing.T) {
			cfg := core.Config{K: 2, S: 2}
			run, err := factory(buildInstance(cfg, 7, nil))
			if err != nil {
				t.Fatal(err)
			}
			defer run.Close()
			if err := run.Feed(2, stream.Item{ID: 1, Weight: 1}); err == nil {
				t.Error("out-of-range site accepted")
			}
			if err := run.Feed(-1, stream.Item{ID: 1, Weight: 1}); err == nil {
				t.Error("negative site accepted")
			}
		})
	}
}
