package runtime

import (
	"fmt"
	"testing"

	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// buildShardInstances assembles P full sampler instances from one
// master seed, every key generator recording into rec so the merged
// sample can be checked against the brute-force top-s of all keys the
// run actually generated — the paper's exactness invariant, extended
// across the shard fabric.
func buildShardInstances(cfg core.Config, shards int, seed uint64, rec *core.Recorder) []Instance {
	master := xrand.New(seed)
	insts := make([]Instance, shards)
	for p := range insts {
		coord := core.NewCoordinator(cfg, master.Split())
		coord.SetRecorder(rec)
		sites := make([]netsim.Site[core.Message], cfg.K)
		for i := 0; i < cfg.K; i++ {
			s := core.NewSite(i, cfg, master.Split())
			s.SetRecorder(rec)
			sites[i] = s
		}
		insts[p] = Instance{Cfg: cfg, Coord: coord, Sites: sites}
	}
	return insts
}

// buildSharded mirrors the public API's runtime assembly: Single for
// one shard, the native sharded TCP cluster, the generic fabric
// composition otherwise.
func buildSharded(name string, factory Factory, insts []Instance) (ShardedRuntime, error) {
	if len(insts) == 1 {
		r, err := factory(insts[0])
		if err != nil {
			return nil, err
		}
		return Single(r), nil
	}
	if name == "tcp" {
		return TCPSharded("")(insts)
	}
	return NewFabric(insts, factory)
}

// TestFabricMatrixExactness drives the identical sharded protocol over
// every runtime × shard-count combination and checks that the merged
// per-shard query is exactly the brute-force top-s of all generated
// keys — the fabric's headline invariant: sharding multiplies
// coordinator locks without perturbing the maintained sample.
func TestFabricMatrixExactness(t *testing.T) {
	for name, factory := range factories() {
		for _, shards := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				cfg := core.Config{K: 4, S: 8}
				rec := core.NewRecorder()
				insts := buildShardInstances(cfg, shards, 17, rec)
				run, err := buildSharded(name, factory, insts)
				if err != nil {
					t.Fatal(err)
				}
				defer run.Close()

				if got := run.Shards(); got != shards {
					t.Fatalf("Shards() = %d, want %d", got, shards)
				}
				const n = 6000
				rng := xrand.New(99)
				for i := 0; i < n; i++ {
					it := stream.Item{ID: uint64(i), Weight: rng.Pareto(1.3)}
					if err := run.Feed(i%cfg.K, it); err != nil {
						t.Fatal(err)
					}
				}
				if err := run.Flush(); err != nil {
					t.Fatal(err)
				}
				if rec.Len() != n {
					t.Fatalf("recorded %d keys, want %d", rec.Len(), n)
				}
				var entries []core.SampleEntry
				for p := range insts {
					coord := insts[p].Coord.Core()
					run.DoShard(p, func() { entries = coord.Snapshot(entries) })
				}
				merged := fabric.Merge(entries, cfg.S)
				if len(merged) != cfg.S {
					t.Fatalf("merged sample size %d, want %d", len(merged), cfg.S)
				}
				want := rec.TopIDs(cfg.S)
				for _, e := range merged {
					if !want[e.Item.ID] {
						t.Fatalf("merged item %d is not a top-%d key", e.Item.ID, cfg.S)
					}
				}
				st := run.Stats()
				if st.Upstream == 0 || st.UpWords == 0 {
					t.Errorf("no upstream traffic recorded: %+v", st)
				}
			})
		}
	}
}

// TestFabricFeedBatchSplit runs the batched path: FeedBatch must split
// each batch across shards in one pass, preserving per-shard order,
// with the same exactness invariant.
func TestFabricFeedBatchSplit(t *testing.T) {
	for name, factory := range factories() {
		for _, shards := range []int{2, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				cfg := core.Config{K: 2, S: 5}
				rec := core.NewRecorder()
				insts := buildShardInstances(cfg, shards, 23, rec)
				run, err := buildSharded(name, factory, insts)
				if err != nil {
					t.Fatal(err)
				}
				defer run.Close()

				const n, chunk = 4000, 111
				rng := xrand.New(5)
				batches := make([][]stream.Item, cfg.K)
				for i := 0; i < n; i++ {
					site := i % cfg.K
					batches[site] = append(batches[site], stream.Item{ID: uint64(i), Weight: rng.Pareto(1.2)})
					if len(batches[site]) == chunk {
						if err := run.FeedBatch(site, batches[site]); err != nil {
							t.Fatal(err)
						}
						batches[site] = batches[site][:0]
					}
				}
				for site := range batches {
					if err := run.FeedBatch(site, batches[site]); err != nil {
						t.Fatal(err)
					}
				}
				if err := run.Flush(); err != nil {
					t.Fatal(err)
				}
				if rec.Len() != n {
					t.Fatalf("recorded %d keys, want %d", rec.Len(), n)
				}
				var entries []core.SampleEntry
				for p := range insts {
					coord := insts[p].Coord.Core()
					run.DoShard(p, func() { entries = coord.Snapshot(entries) })
				}
				merged := fabric.Merge(entries, cfg.S)
				want := rec.TopIDs(cfg.S)
				if len(merged) != cfg.S {
					t.Fatalf("merged sample size %d, want %d", len(merged), cfg.S)
				}
				for _, e := range merged {
					if !want[e.Item.ID] {
						t.Fatalf("merged item %d is not a top-%d key", e.Item.ID, cfg.S)
					}
				}
			})
		}
	}
}

// TestFabricRouterConsistency pins that the in-process fabric and the
// TCP sharded cluster route identically: the same item lands on the
// same shard coordinator regardless of the runtime driving it —
// without this, a query against one runtime's shard layout would not
// be comparable to another's.
func TestFabricRouterConsistency(t *testing.T) {
	const shards = 5
	cfg := core.Config{K: 2, S: 4}
	perShardIDs := func(name string, factory Factory) [][]uint64 {
		insts := buildShardInstances(cfg, shards, 31, nil)
		run, err := buildSharded(name, factory, insts)
		if err != nil {
			t.Fatal(err)
		}
		defer run.Close()
		// Giant weights: every item is withheld as an early message, so
		// every shard coordinator's snapshot lists exactly the IDs routed
		// to it (up to the O(s) pool bound; keep counts below S).
		for i := 0; i < 2*shards; i++ {
			if err := run.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
				t.Fatal(err)
			}
		}
		if err := run.Flush(); err != nil {
			t.Fatal(err)
		}
		out := make([][]uint64, shards)
		for p := range insts {
			coord := insts[p].Coord.Core()
			var entries []core.SampleEntry
			run.DoShard(p, func() { entries = coord.Snapshot(entries) })
			for _, e := range entries {
				out[p] = append(out[p], e.Item.ID)
			}
		}
		return out
	}
	for name, factory := range factories() {
		got := perShardIDs(name, factory)
		for p := range got {
			for _, id := range got[p] {
				if want := fabric.ShardOf(id, shards); want != p {
					t.Errorf("%s: item %d on shard %d, router says %d", name, id, p, want)
				}
			}
		}
	}
}
