package runtime

import (
	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	"wrs/internal/relay"
	"wrs/internal/stream"
	"wrs/internal/transport"
)

// SequentialTree returns the deterministic synchronous runtime over a
// hierarchical relay tree (netsim.TreeCluster with relay.Machine
// nodes): identical delivery semantics to Sequential — messages climb
// the tree and broadcasts fan down inline inside Feed — plus relay
// pre-filtering on the way up. Because relays only drop messages the
// coordinator would drop on arrival anyway, coordinator state, the
// broadcast sequence, and site-edge Stats are bit-identical to
// Sequential under the same seeds; depth 0 is exactly Sequential. The
// top-s union merge engages only when the instance's coordinator has
// opted in (relay.UnionMergeable). Single-goroutine use only.
func SequentialTree(fanout, depth int) Factory {
	return func(inst Instance) (Runtime, error) {
		merge := relay.UnionMergeable(inst.Coord)
		c, err := netsim.NewTreeCluster[core.Message](inst.Coord, inst.Sites, fanout, depth,
			func(tier, node int) netsim.TreeRelay[core.Message] {
				return relay.NewMachine(inst.Cfg.S, merge)
			})
		if err != nil {
			return nil, err
		}
		return &seqTreeRuntime{c: c}, nil
	}
}

// seqTreeRuntime adapts netsim.TreeCluster, mirroring seqRuntime.
type seqTreeRuntime struct {
	c      *netsim.TreeCluster[core.Message]
	closed bool
}

func (r *seqTreeRuntime) Feed(site int, it stream.Item) error {
	if r.closed {
		return errClosed
	}
	return r.c.Feed(site, it)
}
func (r *seqTreeRuntime) FeedBatch(site int, items []stream.Item) error {
	if r.closed {
		return errClosed
	}
	return r.c.FeedBatch(site, items)
}
func (r *seqTreeRuntime) Flush() error        { return nil }
func (r *seqTreeRuntime) Stats() netsim.Stats { return r.c.Stats }
func (r *seqTreeRuntime) Do(fn func())        { fn() }
func (r *seqTreeRuntime) Close() error        { r.closed = true; return nil }

// Tree exposes the underlying cluster for tier-level accounting
// (RootFanIn, RootUpstream, TierStats) in experiments and tests.
func (r *seqTreeRuntime) Tree() *netsim.TreeCluster[core.Message] { return r.c }

// TCPTree returns the deployment-shaped runtime over a hierarchical
// relay tree: a CoordinatorServer on addr ("127.0.0.1:0" when empty),
// depth tiers of relay.Relay nodes beneath it, and one SiteClient per
// site attached to a leaf relay — the root terminates min(fanout, k)
// connections instead of k. Depth 0 is the flat TCP topology.
func TCPTree(addr string, fanout, depth int) Factory {
	sharded := TCPTreeSharded(addr, fanout, depth)
	return func(inst Instance) (Runtime, error) {
		return sharded([]Instance{inst})
	}
}

// TCPTreeSharded returns the sharded tree builder: one coordinator
// server hosting all P shard coordinators, one relay tree carrying
// every shard's traffic in shard-tagged frames, and one multiplexing
// connection per site to its leaf relay. The top-s union merge engages
// only when EVERY shard coordinator has opted in — one non-mergeable
// shard disables it everywhere, because relays filter per shard but are
// configured uniformly.
func TCPTreeSharded(addr string, fanout, depth int) ShardedFactory {
	return func(insts []Instance) (ShardedRuntime, error) {
		if err := fabric.Validate(len(insts)); err != nil {
			return nil, err
		}
		cfg := insts[0].Cfg
		protos := make([]transport.Coordinator, len(insts))
		machines := make([][]netsim.Site[core.Message], len(insts))
		merge := true
		for p, inst := range insts {
			protos[p] = inst.Coord
			machines[p] = inst.Sites
			merge = merge && relay.UnionMergeable(inst.Coord)
		}
		return relay.NewTreeCluster(cfg, protos, machines, addr, fanout, depth, relay.Options{Merge: merge})
	}
}
