package runtime

import (
	"errors"
	"sync"

	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/transport"
)

// ShardedRuntime drives a fabric of P protocol shards under the
// Runtime contract: Feed routes each arrival to its item's shard
// (fabric.ShardOf), FeedBatch splits batches per shard in one pass,
// and Flush/Stats/Close fan out and aggregate. DoShard serializes with
// a single shard's message processing — the read path for merging
// per-shard coordinator state without stalling the other shards.
type ShardedRuntime interface {
	Runtime
	// Shards returns the number of protocol shards.
	Shards() int
	// DoShard runs fn serialized with shard p's coordinator message
	// processing only.
	DoShard(p int, fn func())
}

// ShardedFactory builds a sharded runtime over P instances that share
// one configuration. Factories with shard-aware infrastructure (TCP:
// one server, one connection per site for all shards) provide their
// own; everything else composes per-instance runtimes with NewFabric.
type ShardedFactory func(insts []Instance) (ShardedRuntime, error)

// Single adapts a single-instance Runtime to the ShardedRuntime
// contract (one shard; DoShard(0) is Do). It is the P = 1 path, which
// leaves the pre-fabric runtime stack byte-identical.
func Single(r Runtime) ShardedRuntime { return singleShard{r} }

type singleShard struct{ Runtime }

func (s singleShard) Shards() int              { return 1 }
func (s singleShard) DoShard(_ int, fn func()) { s.Do(fn) }

// Fabric composes P independently built runtimes — one full protocol
// instance each — into one ShardedRuntime. It is the generic
// composition used by the in-process runtimes; the TCP transport has a
// native sharded cluster instead (TCPSharded) so the connection count
// stays k rather than P×k.
type Fabric struct {
	runs []Runtime
}

// NewFabric builds one runtime per instance with f and composes them.
// On error every runtime already started is closed.
func NewFabric(insts []Instance, f Factory) (*Fabric, error) {
	if err := fabric.Validate(len(insts)); err != nil {
		return nil, err
	}
	runs := make([]Runtime, len(insts))
	for p, inst := range insts {
		r, err := f(inst)
		if err != nil {
			for _, started := range runs[:p] {
				started.Close()
			}
			return nil, err
		}
		runs[p] = r
	}
	return &Fabric{runs: runs}, nil
}

// Shards returns the number of composed shards.
func (f *Fabric) Shards() int { return len(f.runs) }

// Feed routes one arrival to its item's shard.
func (f *Fabric) Feed(site int, it stream.Item) error {
	return f.runs[fabric.ShardOf(it.ID, len(f.runs))].Feed(site, it)
}

// FeedBatch splits the batch across shards in one pass, preserving
// per-shard arrival order, and delivers each part through the shard
// runtime's batched path.
func (f *Fabric) FeedBatch(site int, items []stream.Item) error {
	p := len(f.runs)
	parts := make([][]stream.Item, p)
	hint := len(items)/p + 1
	for _, it := range items {
		s := fabric.ShardOf(it.ID, p)
		if parts[s] == nil {
			parts[s] = make([]stream.Item, 0, hint)
		}
		parts[s] = append(parts[s], it)
	}
	for s, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := f.runs[s].FeedBatch(site, part); err != nil {
			return err
		}
	}
	return nil
}

// Flush barriers every shard concurrently.
func (f *Fabric) Flush() error {
	errs := make([]error, len(f.runs))
	var wg sync.WaitGroup
	for p, r := range f.runs {
		wg.Add(1)
		go func(p int, r Runtime) {
			defer wg.Done()
			errs[p] = r.Flush()
		}(p, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats sums traffic across shards.
func (f *Fabric) Stats() netsim.Stats {
	var s netsim.Stats
	for _, r := range f.runs {
		s.Add(r.Stats())
	}
	return s
}

// Do runs fn serialized with every shard's message processing at once
// (the shard locks are acquired in ascending order, so concurrent Do
// calls cannot deadlock). Prefer DoShard: Do stalls all shards.
func (f *Fabric) Do(fn func()) { f.doFrom(0, fn) }

func (f *Fabric) doFrom(p int, fn func()) {
	if p == len(f.runs) {
		fn()
		return
	}
	f.runs[p].Do(func() { f.doFrom(p+1, fn) })
}

// DoShard runs fn serialized with shard p's message processing only.
func (f *Fabric) DoShard(p int, fn func()) { f.runs[p].Do(fn) }

// Close closes every shard runtime and joins their errors.
func (f *Fabric) Close() error {
	errs := make([]error, len(f.runs))
	for p, r := range f.runs {
		errs[p] = r.Close()
	}
	return errors.Join(errs...)
}

// TCPSharded returns the sharded TCP builder: ONE coordinator server
// hosting all P shard coordinators (per-shard ingest mutexes) and one
// multiplexing connection per site carrying every shard's traffic in
// shard-tagged frames — k connections total, not P×k.
func TCPSharded(addr string) ShardedFactory {
	return func(insts []Instance) (ShardedRuntime, error) {
		if err := fabric.Validate(len(insts)); err != nil {
			return nil, err
		}
		cfg := insts[0].Cfg
		protos := make([]transport.Coordinator, len(insts))
		machines := make([][]netsim.Site[core.Message], len(insts))
		for p, inst := range insts {
			protos[p] = inst.Coord
			machines[p] = inst.Sites
		}
		return transport.NewShardedCluster(cfg, protos, machines, addr)
	}
}
