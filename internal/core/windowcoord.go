package core

import (
	"fmt"

	"wrs/internal/window"
	"wrs/internal/xrand"
)

// WindowCoordStats counts windowed-protocol events at the coordinator.
type WindowCoordStats struct {
	WindowMsgs  int64 // sequence-stamped candidates received
	ClockMsgs   int64 // clock advances received
	BadStamps   int64 // messages with negative stamps (dropped)
	IgnoredMsgs int64 // messages of non-window kinds (dropped)
}

// WindowCoverage aggregates the coordinator's view of the sub-stream
// clocks at query time. Observed and Live reflect positions the
// coordinator has been told about; they can trail the sites' true
// counts while the newest arrivals are still buffered locally (the
// sample itself is exact regardless — the expiry of any reported
// candidate forces a clock update, so staleness only ever hides items
// that were never going to be sampled).
type WindowCoverage struct {
	Observed int64 // sub-stream positions accounted for, summed over sites
	Live     int   // positions currently inside some sub-stream window
	Retained int   // candidates currently held
}

// Add accumulates other into c (coverage is additive across sites and
// shards).
func (c *WindowCoverage) Add(other WindowCoverage) {
	c.Observed += other.Observed
	c.Live += other.Live
	c.Retained += other.Retained
}

// WindowCoordinator is the coordinator-side machine of the distributed
// sliding-window application: one window.Retention per site sub-stream,
// fed from sequence-stamped messages, merged at query time. Its state
// is non-monotone — candidates expire as sub-stream clocks advance —
// which is exactly what the plain Coordinator's epoch machinery cannot
// host; see WindowSite for the protocol and its exactness argument.
//
// It satisfies the same Coordinator interface as every other
// application wrapper (HandleMessage + Core), so all three runtimes and
// the sharded TCP server drive it unchanged. The inner Core coordinator
// is inert — never fed — and exists so transports can take their
// control-plane join snapshot (empty: this protocol has no broadcasts)
// and so the RNG split order of the plugin contract stays uniform (the
// coordinator split seeds it, though no keys are ever drawn).
type WindowCoordinator struct {
	cfg   Config
	width int
	inert *Coordinator
	sites []*window.Retention

	Stats WindowCoordStats
}

// NewWindowCoordinator returns the windowed coordinator for cfg.K site
// sub-streams of window width each. The rng is the coordinator's
// contract split; the windowed protocol draws nothing from it.
func NewWindowCoordinator(cfg Config, width int, rng *xrand.RNG) *WindowCoordinator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if width < 1 {
		panic(fmt.Sprintf("core: window width must be >= 1, got %d", width))
	}
	c := &WindowCoordinator{
		cfg:   cfg,
		width: width,
		inert: NewCoordinator(cfg, rng),
		sites: make([]*window.Retention, cfg.K),
	}
	for i := range c.sites {
		ret, err := window.NewRetention(cfg.S, width)
		if err != nil {
			panic(err) // unreachable: cfg and width were validated above
		}
		c.sites[i] = ret
	}
	return c
}

// Core exposes the inert inner sampler coordinator, satisfying the
// runtime/transport Coordinator interface. Its sample is always empty;
// windowed queries go through SnapshotWindow instead.
func (c *WindowCoordinator) Core() *Coordinator { return c.inert }

// Config returns the shared protocol configuration.
func (c *WindowCoordinator) Config() Config { return c.cfg }

// Width returns the window width in sub-stream items.
func (c *WindowCoordinator) Width() int { return c.width }

// HandleMessage folds one site message. The windowed protocol never
// broadcasts, so bcast is unused.
func (c *WindowCoordinator) HandleMessage(m Message, bcast func(Message)) {
	switch m.Kind {
	case MsgWindow:
		if m.Level < 0 {
			c.Stats.BadStamps++
			return
		}
		pos, site := SplitWindowStamp(m.Level, c.cfg.K)
		c.Stats.WindowMsgs++
		c.sites[site].Add(pos, m.Key, m.Item)
	case MsgClock:
		if m.Level < 0 {
			c.Stats.BadStamps++
			return
		}
		pos, site := SplitWindowStamp(m.Level, c.cfg.K)
		c.Stats.ClockMsgs++
		c.sites[site].Advance(pos + 1)
	default:
		// Infinite-horizon kinds (early/regular/broadcasts) are not
		// part of the windowed protocol; count and drop them so a
		// misrouted frame surfaces in Stats instead of corrupting
		// window state.
		c.Stats.IgnoredMsgs++
	}
}

// SnapshotWindow appends every live candidate — expiry applied against
// each sub-stream's current clock — to dst and returns it together
// with the coverage view. It is the locked read path: O(retained)
// copies, no sorting; merge with window.TopEntries outside the lock.
func (c *WindowCoordinator) SnapshotWindow(dst []window.Entry) ([]window.Entry, WindowCoverage) {
	var cov WindowCoverage
	for _, r := range c.sites {
		dst = r.AppendEntries(dst)
		cov.Observed += int64(r.Count())
		cov.Live += r.Live()
		cov.Retained += r.Retained()
	}
	return dst, cov
}

// Retained returns the total candidate count across sub-streams.
func (c *WindowCoordinator) Retained() int {
	n := 0
	for _, r := range c.sites {
		n += r.Retained()
	}
	return n
}

// Site returns site i's retention structure (diagnostics and tests;
// synchronize with the runtime's Do/DoShard when live).
func (c *WindowCoordinator) Site(i int) *window.Retention { return c.sites[i] }

// Query returns the exact weighted SWOR of the union of sub-stream
// windows, largest key first (diagnostics; the application layer merges
// shard snapshots outside the locks instead).
func (c *WindowCoordinator) Query() []window.Entry {
	dst, _ := c.SnapshotWindow(nil)
	return window.TopEntries(dst, c.cfg.S)
}
