package core

import (
	"sort"

	"wrs/internal/sample"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// SampleEntry is one sampled item together with its precision-sampling
// key.
type SampleEntry struct {
	Key  float64
	Item stream.Item
}

// CoordStats counts protocol events at the coordinator.
type CoordStats struct {
	EarlyMsgs      int64 // early messages received
	RegularMsgs    int64 // regular messages received
	Saturations    int64 // level sets saturated (each costs one broadcast)
	EpochAdvances  int64 // threshold broadcasts
	LateEarlyMsgs  int64 // early messages for already-saturated levels (async runtimes only)
	DroppedRegular int64 // regular messages below u on arrival (stale site threshold)
	IgnoredMsgs    int64 // messages of kinds that are not coordinator input
}

// Broadcasts returns the number of coordinator broadcasts performed.
func (s CoordStats) Broadcasts() int64 { return s.Saturations + s.EpochAdvances }

type levelState struct {
	count     int
	saturated bool
}

// poolItem tags a withheld item with its level so saturation can release
// exactly the items of that level from the O(s)-bounded pool.
type poolItem struct {
	item  stream.Item
	level int
}

// Coordinator is the state machine of Algorithms 2 and 3. Per
// Proposition 6 it stores O(s) machine words: the sample heap S, the
// level pool (the top-s keys among withheld items, see DESIGN.md), and
// one counter per non-empty level.
type Coordinator struct {
	cfg Config
	r   float64
	rng *xrand.RNG
	rec *Recorder

	smp    *sample.TopK[stream.Item] // S: top-s released keys
	u      float64                   // min key of S once |S| = s, else 0
	curTh  float64                   // last broadcast threshold
	levels map[int]*levelState
	pool   *sample.TopK[poolItem] // Slevel: top-s withheld keys

	Stats CoordStats
}

// NewCoordinator returns the coordinator state machine. It needs its own
// RNG (keys of withheld items are generated here, per Algorithm 2).
func NewCoordinator(cfg Config, rng *xrand.RNG) *Coordinator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Coordinator{
		cfg:    cfg,
		r:      cfg.R(),
		rng:    rng,
		smp:    sample.NewTopK[stream.Item](cfg.S),
		levels: make(map[int]*levelState),
		pool:   sample.NewTopK[poolItem](cfg.S),
	}
}

// SetRecorder attaches a key recorder (tests only).
func (c *Coordinator) SetRecorder(rec *Recorder) { c.rec = rec }

// U returns u, the s-th largest released key (0 until S fills). It is
// monotone nondecreasing over the run.
func (c *Coordinator) U() float64 { return c.u }

// Core returns the coordinator itself. Wrapper coordinators (e.g. the
// L1 tracker's DupCoordinator) implement the same method to expose the
// inner sampler state machine, so runtimes can reach the sampler —
// query, control-plane snapshot — through one interface regardless of
// what application is layered on top.
func (c *Coordinator) Core() *Coordinator { return c }

// DropBelow returns the largest key B such that a MsgRegular with
// Key <= B may be discarded without delivering it to HandleMessage:
// such a key has at least s released dominators (u is monotone
// nondecreasing), so HandleMessage would drop it on arrival anyway.
// Transports use this to pre-filter messages outside their ingest
// lock. 0 means nothing may be dropped.
func (c *Coordinator) DropBelow() float64 { return c.u }

// CurrentThreshold returns the last broadcast epoch threshold.
func (c *Coordinator) CurrentThreshold() float64 { return c.curTh }

// UnionTopSMergeable declares that every answer built on this
// coordinator depends only on the top-s keys (and their items) of the
// released-message union plus the withheld pool — so an intermediate
// aggregator (package relay) may drop a MsgRegular that already has s
// forwarded dominators in its own substream: the global top-s of a
// union is contained in the union of substream top-s sets, exactly the
// argument the shard fabric's query merge rests on. Application
// wrappers whose answer reads more than the top-s (the L1 tracker's
// exact-prefix accumulator, the windowed coordinator's non-monotone
// retention) must NOT expose this method — they wrap the coordinator in
// a plain field, never by embedding, so the marker cannot leak through.
func (c *Coordinator) UnionTopSMergeable() bool { return true }

// Config returns the configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// HandleMessage processes one site message; any resulting announcement to
// the sites is emitted through bcast (which the transport must deliver to
// every site).
func (c *Coordinator) HandleMessage(m Message, bcast func(Message)) {
	switch m.Kind {
	case MsgEarly:
		c.Stats.EarlyMsgs++
		c.handleEarly(m.Item, bcast)
	case MsgRegular:
		c.Stats.RegularMsgs++
		if m.Key <= c.u && c.smp.Full() {
			// Below the s-th released key: cannot be in the top s.
			// Happens only with stale site thresholds (async runtimes).
			c.Stats.DroppedRegular++
			return
		}
		c.addToSample(m.Key, m.Item)
		c.maybeAdvanceEpoch(bcast)
	default:
		// MsgLevelSaturated and MsgEpochUpdate are coordinator *output*
		// (broadcasts), and the window kinds belong to
		// WindowCoordinator; none is valid coordinator input. Dropping
		// them here keeps a confused or malicious site harmless.
		c.Stats.IgnoredMsgs++
	}
}

func (c *Coordinator) handleEarly(it stream.Item, bcast func(Message)) {
	j := levelOf(it.Weight, c.r)
	lv := c.levels[j]
	if lv == nil {
		lv = &levelState{}
		c.levels[j] = lv
	}
	key := c.rng.ExpKey(it.Weight)
	if c.rec != nil {
		c.rec.Record(it.ID, key)
	}
	if lv.saturated {
		// An early message raced with the saturation broadcast (async
		// runtimes only): treat the item as released immediately.
		c.Stats.LateEarlyMsgs++
		c.addToSample(key, it)
		c.maybeAdvanceEpoch(bcast)
		return
	}
	lv.count++
	c.pool.Offer(key, poolItem{item: it, level: j})
	if lv.count >= c.cfg.LevelCap() {
		c.saturate(j, lv, bcast)
	}
}

// saturate releases level j: all pool entries of that level move into the
// sample, the level is marked saturated, and the sites are notified.
func (c *Coordinator) saturate(j int, lv *levelState, bcast func(Message)) {
	lv.saturated = true
	c.Stats.Saturations++
	kept := c.pool.Items()
	var released []sample.Entry[poolItem]
	remaining := make([]sample.Entry[poolItem], 0, len(kept))
	for _, e := range kept {
		if e.Val.level == j {
			released = append(released, e)
		} else {
			remaining = append(remaining, e)
		}
	}
	c.pool.Reset()
	for _, e := range remaining {
		c.pool.Offer(e.Key, e.Val)
	}
	for _, e := range released {
		c.addToSample(e.Key, e.Val.item)
	}
	bcast(Message{Kind: MsgLevelSaturated, Level: j})
	c.maybeAdvanceEpoch(bcast)
}

// addToSample is Algorithm 3 without the broadcast (the caller batches
// epoch checks so one handled message broadcasts at most once).
func (c *Coordinator) addToSample(key float64, it stream.Item) {
	c.smp.Offer(key, it)
	if c.smp.Full() {
		if m, ok := c.smp.Min(); ok {
			c.u = m
		}
	}
}

func (c *Coordinator) maybeAdvanceEpoch(bcast func(Message)) {
	if c.cfg.DisableEpochs {
		return
	}
	th := epochThreshold(c.u, c.r)
	if th > c.curTh {
		c.curTh = th
		c.Stats.EpochAdvances++
		bcast(Message{Kind: MsgEpochUpdate, Threshold: th})
	}
}

// Snapshot appends every sample candidate — released items of S and
// withheld pool items, unsorted — to dst and returns it. It is the
// cheap read path for concurrent runtimes: O(s) copies, no sorting, so
// the time a caller must hold the coordinator's ingest lock is minimal.
// Sort and truncate outside the lock with TopSample.
func (c *Coordinator) Snapshot(dst []SampleEntry) []SampleEntry {
	for _, e := range c.smp.Items() {
		dst = append(dst, SampleEntry{Key: e.Key, Item: e.Val})
	}
	for _, e := range c.pool.Items() {
		dst = append(dst, SampleEntry{Key: e.Key, Item: e.Val.item})
	}
	return dst
}

// TopSample sorts entries by descending key in place and truncates to
// s — the finishing step for Snapshot results, also used to merge
// per-shard snapshots exactly (the global top-s of a union is contained
// in the union of per-shard top-s sets).
func TopSample(entries []SampleEntry, s int) []SampleEntry {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key > entries[j].Key })
	if len(entries) > s {
		entries = entries[:s]
	}
	return entries
}

// Query returns the current weighted sample without replacement: the
// items with the top min(t, s) keys among S and all withheld items,
// largest key first.
func (c *Coordinator) Query() []SampleEntry {
	return TopSample(c.Snapshot(make([]SampleEntry, 0, c.smp.Len()+c.pool.Len())), c.cfg.S)
}

// SthKey returns the s-th largest key over all items held (released and
// withheld) and whether s keys exist yet. The L1 tracker's estimate is
// built on this order statistic (Section 5).
func (c *Coordinator) SthKey() (float64, bool) {
	q := c.Query()
	if len(q) < c.cfg.S {
		return 0, false
	}
	return q[len(q)-1].Key, true
}

// WithheldCount returns how many items are currently withheld in
// unsaturated level sets (bounded by s in this O(s)-memory
// implementation: only the top-s withheld keys are retained, the rest are
// provably outside every future sample).
func (c *Coordinator) WithheldCount() int { return c.pool.Len() }

// SaturatedLevels returns the indices of saturated levels, ascending.
func (c *Coordinator) SaturatedLevels() []int {
	var out []int
	//wrslint:allow detrand order-insensitive traversal: the levels map holds no order and out is sorted below
	for j, lv := range c.levels {
		if lv.saturated {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}
