package core

import (
	"math"
	"testing"

	"wrs/internal/netsim"
	"wrs/internal/sample"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// newTestCluster wires a coordinator and k sites into a sequential
// cluster, optionally sharing a key recorder.
func newTestCluster(cfg Config, seed uint64, rec *Recorder) (*netsim.Cluster[Message], *Coordinator) {
	master := xrand.New(seed)
	coord := NewCoordinator(cfg, master.Split())
	sites := make([]netsim.Site[Message], cfg.K)
	for i := 0; i < cfg.K; i++ {
		s := NewSite(i, cfg, master.Split())
		if rec != nil {
			s.SetRecorder(rec)
		}
		sites[i] = s
	}
	if rec != nil {
		coord.SetRecorder(rec)
	}
	return netsim.NewCluster(coord, sites), coord
}

func sampleIDs(entries []SampleEntry) map[uint64]bool {
	out := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		out[e.Item.ID] = true
	}
	return out
}

// checkExactTopS verifies the exactness invariant: the query equals the
// brute-force top-min(t, s) of every key generated so far.
func checkExactTopS(t *testing.T, coord *Coordinator, rec *Recorder, step int) {
	t.Helper()
	q := coord.Query()
	wantSize := rec.Len()
	if wantSize > coord.Config().S {
		wantSize = coord.Config().S
	}
	if len(q) != wantSize {
		t.Fatalf("step %d: query size %d, want %d", step, len(q), wantSize)
	}
	want := rec.TopIDs(coord.Config().S)
	got := sampleIDs(q)
	for id := range want {
		if !got[id] {
			t.Fatalf("step %d: top-key item %d missing from query", step, id)
		}
	}
	for i := 1; i < len(q); i++ {
		if q[i].Key > q[i-1].Key {
			t.Fatalf("step %d: query not sorted desc", step)
		}
	}
}

func TestExactTopSInvariantEveryStep(t *testing.T) {
	workloads := map[string]stream.WeightFn{
		"unit":      stream.UnitWeights(),
		"uniform":   stream.UniformWeights(100),
		"pareto":    stream.ParetoWeights(1.1),
		"heavyhead": stream.HeavyHeadWeights(3, 1e8),
		"geometric": stream.GeometricWeights(0.3),
	}
	configs := []Config{
		{K: 1, S: 1}, {K: 3, S: 2}, {K: 4, S: 8}, {K: 16, S: 2},
	}
	for name, wf := range workloads {
		for _, cfg := range configs {
			rec := NewRecorder()
			cl, coord := newTestCluster(cfg, 1000+uint64(cfg.K*31+cfg.S), rec)
			g := stream.NewGenerator(300, cfg.K, wf, stream.RoundRobin(cfg.K))
			rng := xrand.New(7)
			g.Reset()
			step := 0
			for {
				u, ok := g.Next(rng)
				if !ok {
					break
				}
				if err := cl.Feed(u.Site, u.Item); err != nil {
					t.Fatalf("%s cfg=%+v: feed error %v", name, cfg, err)
				}
				step++
				if rec.Len() != step {
					t.Fatalf("%s cfg=%+v step %d: %d keys recorded", name, cfg, step, rec.Len())
				}
				checkExactTopS(t, coord, rec, step)
			}
		}
	}
}

func TestExactTopSInvariantAblations(t *testing.T) {
	// The sample stays exact with level sets or epochs disabled — only
	// message complexity changes.
	for _, cfg := range []Config{
		{K: 4, S: 4, DisableLevelSets: true},
		{K: 4, S: 4, DisableEpochs: true},
		{K: 4, S: 4, DisableLevelSets: true, DisableEpochs: true},
	} {
		rec := NewRecorder()
		cl, coord := newTestCluster(cfg, 55, rec)
		g := stream.NewGenerator(300, cfg.K, stream.HeavyHeadWeights(3, 1e7), stream.RoundRobin(cfg.K))
		rng := xrand.New(8)
		g.Reset()
		step := 0
		for {
			u, ok := g.Next(rng)
			if !ok {
				break
			}
			if err := cl.Feed(u.Site, u.Item); err != nil {
				t.Fatal(err)
			}
			step++
			checkExactTopS(t, coord, rec, step)
		}
	}
}

func TestExactTopSLargeStreamCheckpoints(t *testing.T) {
	cfg := Config{K: 8, S: 16}
	rec := NewRecorder()
	cl, coord := newTestCluster(cfg, 77, rec)
	g := stream.NewGenerator(20000, cfg.K, stream.ParetoWeights(1.2), stream.RandomSites(cfg.K))
	rng := xrand.New(9)
	g.Reset()
	step := 0
	for {
		u, ok := g.Next(rng)
		if !ok {
			break
		}
		if err := cl.Feed(u.Site, u.Item); err != nil {
			t.Fatal(err)
		}
		step++
		if step%977 == 0 {
			checkExactTopS(t, coord, rec, step)
		}
	}
	checkExactTopS(t, coord, rec, step)
}

func TestThresholdSafetyAndMonotonicity(t *testing.T) {
	cfg := Config{K: 5, S: 3}
	master := xrand.New(4)
	coord := NewCoordinator(cfg, master.Split())
	var rawSites []*Site
	sites := make([]netsim.Site[Message], cfg.K)
	for i := 0; i < cfg.K; i++ {
		s := NewSite(i, cfg, master.Split())
		rawSites = append(rawSites, s)
		sites[i] = s
	}
	cl := netsim.NewCluster[Message](coord, sites)
	g := stream.NewGenerator(4000, cfg.K, stream.UniformWeights(50), stream.RandomSites(cfg.K))
	rng := xrand.New(10)
	g.Reset()
	prevU := 0.0
	for {
		u, ok := g.Next(rng)
		if !ok {
			break
		}
		if err := cl.Feed(u.Site, u.Item); err != nil {
			t.Fatal(err)
		}
		if coord.U() < prevU {
			t.Fatalf("u decreased: %v -> %v", prevU, coord.U())
		}
		prevU = coord.U()
		for _, s := range rawSites {
			if s.Threshold() > coord.U()+1e-12 && coord.U() > 0 {
				t.Fatalf("site threshold %v exceeds u %v", s.Threshold(), coord.U())
			}
			if s.Threshold() != coord.CurrentThreshold() {
				t.Fatalf("site threshold %v out of sync with coordinator %v (synchronous runtime)",
					s.Threshold(), coord.CurrentThreshold())
			}
		}
	}
	if coord.U() == 0 {
		t.Fatal("u never advanced on a 4000-item stream")
	}
}

func TestDistributionMatchesExactSWOR(t *testing.T) {
	// Full-protocol inclusion frequencies vs the exact sequential-SWOR
	// oracle (Definition 1), exercising level sets, epochs and filtering.
	weights := []float64{1, 2, 4, 8, 16}
	want := sample.InclusionProbs(weights, 2)
	cfg := Config{K: 3, S: 2}
	const trials = 40000
	counts := make([]float64, len(weights))
	for tr := 0; tr < trials; tr++ {
		cl, coord := newTestCluster(cfg, uint64(tr)*2654435761+17, nil)
		for i, w := range weights {
			if err := cl.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: w}); err != nil {
				t.Fatal(err)
			}
		}
		for id := range sampleIDs(coord.Query()) {
			counts[id]++
		}
	}
	for i := range counts {
		got := counts[i] / trials
		sigma := math.Sqrt(want[i] * (1 - want[i]) / trials)
		if math.Abs(got-want[i]) > 5*sigma+1e-9 {
			t.Errorf("inclusion[%d] = %v, want %v (5 sigma = %v)", i, got, want[i], 5*sigma)
		}
	}
}

func TestDistributionUnweightedCase(t *testing.T) {
	// Unit weights: every size-s subset equally likely; inclusion = s/n.
	cfg := Config{K: 4, S: 3}
	const n, trials = 9, 30000
	counts := make([]float64, n)
	for tr := 0; tr < trials; tr++ {
		cl, coord := newTestCluster(cfg, uint64(tr)*7919+3, nil)
		for i := 0; i < n; i++ {
			if err := cl.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
				t.Fatal(err)
			}
		}
		for id := range sampleIDs(coord.Query()) {
			counts[id]++
		}
	}
	want := 3.0 / 9.0
	sigma := math.Sqrt(want * (1 - want) / trials)
	for i := range counts {
		got := counts[i] / trials
		if math.Abs(got-want) > 5.5*sigma {
			t.Errorf("unweighted inclusion[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestMessageComplexityUnitWeights(t *testing.T) {
	cfg := Config{K: 16, S: 8}
	cl, _ := newTestCluster(cfg, 5, nil)
	const n = 50000
	g := stream.NewGenerator(n, cfg.K, stream.UnitWeights(), stream.RoundRobin(cfg.K))
	if err := cl.Run(g, xrand.New(11)); err != nil {
		t.Fatal(err)
	}
	total := cl.Stats.Total()
	// Theorem 3 bound with generous constant: ~ 4rs log(W/s)/log(r) + k
	// per epoch. For unit weights W = n.
	r := cfg.R()
	bound := 40 * (4*r*float64(cfg.S) + float64(cfg.K)) * math.Log(float64(n)/float64(cfg.S)) / math.Log(r)
	if float64(total) > bound {
		t.Errorf("total messages %d exceed generous Theorem 3 envelope %v", total, bound)
	}
	if total < 50 {
		t.Errorf("suspiciously few messages: %d", total)
	}
	if float64(total) > float64(n)/4 {
		t.Errorf("messages %d not sublinear in n = %d", total, n)
	}
}

func TestAblationEpochsOffSendsEverything(t *testing.T) {
	cfg := Config{K: 8, S: 4, DisableEpochs: true}
	cl, _ := newTestCluster(cfg, 6, nil)
	const n = 20000
	g := stream.NewGenerator(n, cfg.K, stream.UnitWeights(), stream.RoundRobin(cfg.K))
	if err := cl.Run(g, xrand.New(12)); err != nil {
		t.Fatal(err)
	}
	if cl.Stats.Upstream < int64(n) {
		t.Errorf("epoch ablation sent %d upstream messages, want >= %d (every item)", cl.Stats.Upstream, n)
	}
}

func TestLevelSetOverheadBounded(t *testing.T) {
	// Level sets are the price of the worst-case Theorem 3 proof (they
	// enforce w_i <= W_(i-1)/(4s) for every released item, which the tail
	// bound of Proposition 3 needs). On any one stream their overhead is
	// at most one early message per withheld slot plus one broadcast per
	// saturated level: total <= (#levels touched) * (cap + k). Verify
	// that envelope on a heavy-head stream, and that both variants stay
	// within the Theorem 3 shape.
	const n = 30000
	mk := func(disable bool) (int64, *Coordinator) {
		cfg := Config{K: 8, S: 4, DisableLevelSets: disable}
		cl, coord := newTestCluster(cfg, 7, nil)
		g := stream.NewGenerator(n, cfg.K, stream.HeavyHeadWeights(3, 1e12), stream.RoundRobin(cfg.K))
		if err := cl.Run(g, xrand.New(13)); err != nil {
			t.Fatal(err)
		}
		return cl.Stats.Total(), coord
	}
	with, coord := mk(false)
	without, _ := mk(true)
	t.Logf("heavy-head messages: with level sets %d, without %d", with, without)
	cfg := Config{K: 8, S: 4}
	// Levels touched: level 0 (the 30k unit items) and the giants' level.
	maxOverhead := int64(2*(cfg.LevelCap()+cfg.K)) + int64(coord.Stats.Saturations)*int64(cfg.K)
	if with > without+2*maxOverhead {
		t.Errorf("level-set overhead too large: %d vs %d (+%d allowed)", with, without, 2*maxOverhead)
	}
	// Both sublinear in n.
	if float64(with) > float64(n)/10 || float64(without) > float64(n)/10 {
		t.Errorf("message counts not sublinear: with=%d without=%d n=%d", with, without, n)
	}
}

func TestQuerySizeMinTS(t *testing.T) {
	cfg := Config{K: 2, S: 10}
	cl, coord := newTestCluster(cfg, 8, nil)
	for i := 0; i < 25; i++ {
		if err := cl.Feed(i%2, stream.Item{ID: uint64(i), Weight: float64(1 + i)}); err != nil {
			t.Fatal(err)
		}
		wantSize := i + 1
		if wantSize > 10 {
			wantSize = 10
		}
		if got := len(coord.Query()); got != wantSize {
			t.Fatalf("after %d items query size = %d, want %d", i+1, got, wantSize)
		}
	}
}

func TestSthKey(t *testing.T) {
	cfg := Config{K: 2, S: 5}
	cl, coord := newTestCluster(cfg, 9, nil)
	if _, ok := coord.SthKey(); ok {
		t.Fatal("SthKey ok before s items")
	}
	for i := 0; i < 20; i++ {
		if err := cl.Feed(i%2, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	key, ok := coord.SthKey()
	if !ok || key <= 0 {
		t.Fatalf("SthKey = (%v, %v)", key, ok)
	}
	q := coord.Query()
	if key != q[len(q)-1].Key {
		t.Fatalf("SthKey %v != smallest query key %v", key, q[len(q)-1].Key)
	}
}

func TestSiteRejectsInvalidWeights(t *testing.T) {
	cfg := Config{K: 1, S: 1}
	site := NewSite(0, cfg, xrand.New(1))
	for _, w := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := site.Observe(stream.Item{Weight: w}, func(Message) {}); err == nil {
			t.Errorf("weight %v accepted", w)
		}
		if err := site.ObserveRepeated(stream.Item{Weight: w}, 3, func(Message) {}); err == nil {
			t.Errorf("repeated weight %v accepted", w)
		}
	}
}

func TestObserveRepeatedMatchesLoop(t *testing.T) {
	// The batched duplication path must produce statistically identical
	// message counts and s-th key estimates to the naive loop.
	cfg := Config{K: 4, S: 8}
	const items, copies = 200, 50
	run := func(batched bool, seed uint64) (int64, float64) {
		cl, coord := newTestCluster(cfg, seed, nil)
		rng := xrand.New(seed ^ 0xabcdef)
		for i := 0; i < items; i++ {
			it := stream.Item{ID: uint64(i), Weight: 1 + rng.Float64()*9}
			site := i % cfg.K
			var err error
			if batched {
				err = cl.FeedRepeated(site, it, copies)
			} else {
				for cpy := 0; cpy < copies; cpy++ {
					if err = cl.Feed(site, it); err != nil {
						break
					}
				}
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		key, _ := coord.SthKey()
		return cl.Stats.Upstream, key
	}
	const reps = 150
	var msgsB, msgsL, keyB, keyL []float64
	for i := 0; i < reps; i++ {
		mb, kb := run(true, uint64(1000+i))
		ml, kl := run(false, uint64(5000+i))
		msgsB = append(msgsB, float64(mb))
		msgsL = append(msgsL, float64(ml))
		keyB = append(keyB, kb)
		keyL = append(keyL, kl)
	}
	// Welch-style comparison: means must agree within 4.5 pooled standard
	// errors (both paths realize the same distribution).
	welch := func(name string, a, b []float64) {
		ma, mb := mean(a), mean(b)
		se := math.Sqrt(variance(a)/float64(len(a)) + variance(b)/float64(len(b)))
		if math.Abs(ma-mb) > 4.5*se {
			t.Errorf("%s: batched mean %v vs loop mean %v (4.5 SE = %v)", name, ma, mb, 4.5*se)
		}
	}
	welch("upstream messages", msgsB, msgsL)
	welch("s-th key", keyB, keyL)
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func variance(xs []float64) float64 {
	m := mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return s / float64(len(xs)-1)
}

func TestCoordinatorMemoryIsBounded(t *testing.T) {
	// Proposition 6: the withheld pool never exceeds s entries.
	cfg := Config{K: 4, S: 6}
	cl, coord := newTestCluster(cfg, 21, nil)
	g := stream.NewGenerator(20000, cfg.K, stream.ParetoWeights(0.8), stream.RandomSites(cfg.K))
	rng := xrand.New(22)
	g.Reset()
	for {
		u, ok := g.Next(rng)
		if !ok {
			break
		}
		if err := cl.Feed(u.Site, u.Item); err != nil {
			t.Fatal(err)
		}
		if coord.WithheldCount() > cfg.S {
			t.Fatalf("withheld pool grew to %d > s = %d", coord.WithheldCount(), cfg.S)
		}
	}
}

func TestSaturatedLevelsReported(t *testing.T) {
	cfg := Config{K: 2, S: 2}
	cl, coord := newTestCluster(cfg, 23, nil)
	// Unit weights all land in level 0; cap = max(8s, 4k) = 16.
	for i := 0; i < 100; i++ {
		if err := cl.Feed(i%2, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	levels := coord.SaturatedLevels()
	if len(levels) != 1 || levels[0] != 0 {
		t.Fatalf("saturated levels = %v, want [0]", levels)
	}
	if coord.Stats.Saturations != 1 {
		t.Fatalf("saturations = %d", coord.Stats.Saturations)
	}
}
