package core

import (
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Site is the per-site state machine of Algorithm 1. It holds O(1) words
// of state — the current epoch threshold plus one saturation bit per
// level (at most log_r(W) bits, i.e. O(1) machine words) — and does O(1)
// expected work per update.
type Site struct {
	id        int
	cfg       Config
	r         float64
	rng       *xrand.RNG
	threshold float64
	saturated map[int]bool
	rec       *Recorder
	jump      xrand.Jump // armed A-ExpJ jump (Config.SkipAhead only)

	// Diagnostics.
	DecisionBits int64 // random bits used by threshold comparisons
	TotalBits    int64 // all random bits, including key materialization
	Observed     int64
	Sent         int64
	Skipped      int64 // arrivals consumed by an armed jump with no RNG draw
	Applied      int64 // broadcasts applied via HandleBroadcast
}

// NewSite returns the state machine for site id. Each site must get an
// independently seeded RNG.
func NewSite(id int, cfg Config, rng *xrand.RNG) *Site {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Site{
		id:        id,
		cfg:       cfg,
		r:         cfg.R(),
		rng:       rng,
		saturated: make(map[int]bool),
	}
}

// ID returns the site's identifier.
func (st *Site) ID() int { return st.id }

// SetRecorder attaches a key recorder (tests only; see Recorder).
func (st *Site) SetRecorder(rec *Recorder) { st.rec = rec }

// Threshold returns the site's current filtering threshold.
func (st *Site) Threshold() float64 { return st.threshold }

// Observe processes one local arrival, emitting any resulting message
// through send. It is the hot path: one lazy threshold comparison
// (expected O(1) random bits) and, only if the key passes, one key
// materialization. With Config.SkipAhead the comparison is replaced by
// an armed exponential jump (xrand.Jump): sub-threshold arrivals cost
// one float subtraction and no RNG draws at all.
func (st *Site) Observe(it stream.Item, send func(Message)) error {
	if err := validWeight(it.Weight); err != nil {
		return err
	}
	st.Observed++
	j := levelOf(it.Weight, st.r)
	if !st.cfg.DisableLevelSets && !st.saturated[j] {
		st.Sent++
		send(Message{Kind: MsgEarly, Item: it})
		return nil
	}
	th := st.threshold
	if st.cfg.DisableEpochs {
		th = 0
	}
	if st.cfg.SkipAhead && st.rec == nil && th > 0 {
		// ArmedAt re-arms whenever a broadcast moved the threshold since
		// the last arrival: the old jump targeted the old threshold, and
		// by memorylessness a fresh exponential at the new one is exact.
		if !st.jump.ArmedAt(th) {
			st.jump.Arm(st.rng, th)
		}
		if !st.jump.Offer(it.Weight) {
			st.Skipped++
			return nil
		}
		st.Sent++
		send(Message{Kind: MsgRegular, Item: it, Key: xrand.KeyAbove(st.rng, it.Weight, th)})
		return nil
	}
	te := xrand.NewThresholdExp(st.rng, it.Weight)
	above := te.Above(th)
	if above || st.rec != nil {
		key := te.Key()
		if st.rec != nil {
			st.rec.Record(it.ID, key)
		}
		if above {
			st.Sent++
			send(Message{Kind: MsgRegular, Item: it, Key: key})
		}
	}
	st.DecisionBits += int64(te.DecisionBits())
	st.TotalBits += int64(te.TotalBits())
	return nil
}

// ObserveBatch processes a run of local arrivals, equivalent to calling
// Observe on each in order. Under Config.SkipAhead it is the intended
// ingest entry point: the armed jump is carried across the whole run in
// a local, so a run of sub-threshold arrivals costs one branch and one
// subtraction each with no per-item state traffic. The threshold is
// re-read after every send — a send can advance the epoch synchronously
// — which re-arms the jump exactly as the one-by-one path would.
func (st *Site) ObserveBatch(items []stream.Item, send func(Message)) error {
	if !st.cfg.SkipAhead || st.rec != nil {
		for _, it := range items {
			if err := st.Observe(it, send); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < len(items); {
		it := items[i]
		if err := validWeight(it.Weight); err != nil {
			return err
		}
		th := st.threshold
		if st.cfg.DisableEpochs {
			th = 0
		}
		if th <= 0 || (!st.cfg.DisableLevelSets && !st.saturated[levelOf(it.Weight, st.r)]) {
			// Early and no-epoch arrivals take the one-by-one path
			// verbatim, keeping the batch bit-identical to an Observe
			// loop (same RNG draws in the same order).
			if err := st.Observe(it, send); err != nil {
				return err
			}
			i++
			continue
		}
		if !st.jump.ArmedAt(th) {
			st.jump.Arm(st.rng, th)
		}
		// Consume the run under this jump until it lands, the run ends,
		// or an item diverts to the early/naive path above.
		for i < len(items) {
			it = items[i]
			if validWeight(it.Weight) != nil {
				break // surface the error through the outer re-check
			}
			if !st.cfg.DisableLevelSets && !st.saturated[levelOf(it.Weight, st.r)] {
				break
			}
			i++
			st.Observed++
			if !st.jump.Offer(it.Weight) {
				st.Skipped++
				continue
			}
			st.Sent++
			send(Message{Kind: MsgRegular, Item: it, Key: xrand.KeyAbove(st.rng, it.Weight, th)})
			break // send may have advanced the epoch; re-read threshold
		}
	}
	return nil
}

// ObserveRepeated processes `count` identical copies of an item, as
// needed by the L1-tracking reduction of Section 5 (each update is
// duplicated l = s/(2*eps) times). It is distributionally identical to
// calling Observe count times but runs in O(1 + messages) time: the
// copies that fall below the threshold are skipped in one Binomial draw
// and the passing keys are drawn from the conditional (truncated
// exponential) distribution.
//
// When a Recorder is attached it falls back to the one-by-one path so
// every key is materialized.
func (st *Site) ObserveRepeated(it stream.Item, count int, send func(Message)) error {
	if err := validWeight(it.Weight); err != nil {
		return err
	}
	if count < 0 {
		count = 0
	}
	if st.rec != nil {
		for i := 0; i < count; i++ {
			if err := st.Observe(it, send); err != nil {
				return err
			}
		}
		return nil
	}
	j := levelOf(it.Weight, st.r)
	// Withheld copies go out one by one until the level saturates (the
	// saturation broadcast may flip the flag mid-loop in the synchronous
	// runtime, which is why the flag is re-checked per copy).
	for count > 0 && !st.cfg.DisableLevelSets && !st.saturated[j] {
		st.Observed++
		st.Sent++
		send(Message{Kind: MsgEarly, Item: it})
		count--
	}
	// Remaining copies are regular. Walk from one passing copy to the
	// next with an exponential jump over the run of identical weights
	// (xrand.Jump.SkipIdentical realizes the geometric skip law — a copy
	// passes with p = 1 - e^(-w/th)), re-reading the threshold after
	// every send — a send can advance the epoch synchronously, so this
	// is exactly equivalent to the one-by-one loop while doing
	// O(1 + messages sent) work. The jump is re-armed per iteration
	// rather than carried in st.jump so the copies of one call never
	// share randomness with surrounding Observe arrivals.
	for count > 0 {
		th := st.threshold
		if st.cfg.DisableEpochs {
			th = 0
		}
		if th <= 0 {
			st.Observed++
			st.Sent++
			count--
			send(Message{Kind: MsgRegular, Item: it, Key: st.rng.ExpKey(it.Weight)})
			continue
		}
		var jp xrand.Jump
		jp.Arm(st.rng, th)
		skip := jp.SkipIdentical(it.Weight, count)
		st.Skipped += int64(skip)
		if skip >= count {
			st.Observed += int64(count)
			return nil
		}
		st.Observed += int64(skip + 1)
		count -= skip + 1
		st.Sent++
		send(Message{Kind: MsgRegular, Item: it, Key: xrand.KeyAbove(st.rng, it.Weight, th)})
	}
	return nil
}

// HandleBroadcast applies a coordinator announcement. It never sends.
func (st *Site) HandleBroadcast(m Message) {
	st.Applied++
	switch m.Kind {
	case MsgLevelSaturated:
		st.saturated[m.Level] = true
	case MsgEpochUpdate:
		// Thresholds are monotone; the guard tolerates out-of-order
		// delivery in asynchronous runtimes.
		if m.Threshold > st.threshold {
			st.threshold = m.Threshold
		}
	default:
		// Upstream kinds (MsgEarly, MsgRegular) and the window kinds
		// are never broadcast; a sampler site ignores them rather than
		// corrupting its filter state.
	}
}
