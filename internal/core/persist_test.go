package core

import (
	"math"
	"reflect"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// feedPrefix drives n generator steps into the cluster.
func feedPrefix(t *testing.T, cl interface {
	Feed(int, stream.Item) error
}, g *stream.Generator, rng *xrand.RNG, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		u, ok := g.Next(rng)
		if !ok {
			t.Fatalf("generator exhausted at step %d", i)
		}
		if err := cl.Feed(u.Site, u.Item); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExportRestoreRoundTrip checks that a restored coordinator is
// observably identical to the one it was exported from: same query,
// same statistics, and a snapshot of the restored machine equals the
// original snapshot.
func TestExportRestoreRoundTrip(t *testing.T) {
	cfg := Config{K: 4, S: 6}
	cl, coord := newTestCluster(cfg, 20260807, nil)
	g := stream.NewGenerator(400, cfg.K, stream.ParetoWeights(1.2), stream.RoundRobin(cfg.K))
	feedPrefix(t, cl, g, xrand.New(11), 400)

	st := coord.ExportState()
	if err := st.Validate(); err != nil {
		t.Fatalf("exported state invalid: %v", err)
	}
	restored, err := RestoreCoordinator(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.Query(), coord.Query()) {
		t.Error("restored query differs from original")
	}
	if restored.Stats != coord.Stats {
		t.Errorf("restored stats %+v, want %+v", restored.Stats, coord.Stats)
	}
	if !reflect.DeepEqual(restored.ExportState(), st) {
		t.Error("re-exported state differs from original snapshot")
	}
}

// TestRestoredCoordinatorResumesBitExact is the contract the chaos
// harness relies on: snapshot the coordinator mid-stream, replace it
// with a restored copy, keep feeding — the final sample, query order
// and coordinator statistics must be bit-identical to the uninterrupted
// run. Covers several stream shapes so epochs and level saturation both
// trigger before and after the snapshot point.
func TestRestoredCoordinatorResumesBitExact(t *testing.T) {
	workloads := map[string]stream.WeightFn{
		"uniform":   stream.UniformWeights(50),
		"pareto":    stream.ParetoWeights(1.1),
		"heavyhead": stream.HeavyHeadWeights(5, 1e9),
	}
	cfg := Config{K: 5, S: 4}
	const n, cut = 600, 233
	for name, wf := range workloads {
		t.Run(name, func(t *testing.T) {
			seed := uint64(900 + len(name))
			clA, coordA := newTestCluster(cfg, seed, nil)
			clB, coordB := newTestCluster(cfg, seed, nil)
			gA := stream.NewGenerator(n, cfg.K, wf, stream.RandomSites(cfg.K))
			gB := stream.NewGenerator(n, cfg.K, wf, stream.RandomSites(cfg.K))
			rngA, rngB := xrand.New(77), xrand.New(77)

			feedPrefix(t, clA, gA, rngA, cut)
			feedPrefix(t, clB, gB, rngB, cut)

			// Kill coordinator B and bring up a restored replacement.
			restored, err := RestoreCoordinator(coordB.ExportState())
			if err != nil {
				t.Fatal(err)
			}
			clB.Coord = restored

			feedPrefix(t, clA, gA, rngA, n-cut)
			feedPrefix(t, clB, gB, rngB, n-cut)

			qA, qB := coordA.Query(), restored.Query()
			if !reflect.DeepEqual(qA, qB) {
				t.Fatalf("resumed query differs from uninterrupted run:\nA: %v\nB: %v", qA, qB)
			}
			if coordA.Stats != restored.Stats {
				t.Errorf("resumed stats %+v, want %+v", restored.Stats, coordA.Stats)
			}
			if clA.Stats != clB.Stats {
				t.Errorf("resumed network stats %+v, want %+v", clB.Stats, clA.Stats)
			}
		})
	}
}

// TestValidateRejectsCorruptSnapshots exercises each structural check.
func TestValidateRejectsCorruptSnapshots(t *testing.T) {
	base := func() *CoordinatorState {
		cl, coord := newTestCluster(Config{K: 3, S: 2}, 5, nil)
		g := stream.NewGenerator(120, 3, stream.UniformWeights(10), stream.RoundRobin(3))
		feedPrefix(t, cl, g, xrand.New(3), 120)
		return coord.ExportState()
	}
	cases := []struct {
		name    string
		corrupt func(*CoordinatorState)
	}{
		{"bad config", func(st *CoordinatorState) { st.Cfg.S = 0 }},
		{"zero rng", func(st *CoordinatorState) { st.RNG = [4]uint64{} }},
		{"oversized sample", func(st *CoordinatorState) {
			st.Sample = append(st.Sample, st.Sample...)
			st.Sample = append(st.Sample, st.Sample...)
		}},
		{"oversized pool", func(st *CoordinatorState) {
			for i := 0; i < st.Cfg.S+1; i++ {
				st.Pool = append(st.Pool, PoolEntryState{Key: 0.1, Item: stream.Item{ID: uint64(i), Weight: 1}})
			}
		}},
		{"negative level", func(st *CoordinatorState) {
			st.Levels = append([]LevelStateEntry{{Level: -1, Count: 1}}, st.Levels...)
		}},
		{"unsorted levels", func(st *CoordinatorState) {
			st.Levels = append(st.Levels, LevelStateEntry{Level: 0, Count: 1})
		}},
		{"negative count", func(st *CoordinatorState) {
			st.Levels = []LevelStateEntry{{Level: 0, Count: -3}}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := base()
			c.corrupt(st)
			if err := st.Validate(); err == nil {
				t.Error("corrupt snapshot accepted")
			}
			if _, err := RestoreCoordinator(st); err == nil {
				t.Error("RestoreCoordinator accepted corrupt snapshot")
			}
		})
	}
}

// TestRestoredCoordinatorDrawsSameKeys pins the RNG half of the
// contract directly: the exponential variates a restored coordinator
// draws match the ones the original would have drawn.
func TestRestoredCoordinatorDrawsSameKeys(t *testing.T) {
	cl, coord := newTestCluster(Config{K: 2, S: 3}, 42, nil)
	g := stream.NewGenerator(200, 2, stream.GeometricWeights(0.4), stream.RoundRobin(2))
	feedPrefix(t, cl, g, xrand.New(9), 200)
	st := coord.ExportState()
	restored, err := RestoreCoordinator(st)
	if err != nil {
		t.Fatal(err)
	}
	a, b := xrand.NewFromState(coord.ExportState().RNG), xrand.NewFromState(restored.ExportState().RNG)
	for i := 0; i < 64; i++ {
		if x, y := a.Exp(), b.Exp(); math.Abs(x-y) != 0 {
			t.Fatalf("draw %d diverges: %v vs %v", i, x, y)
		}
	}
}
