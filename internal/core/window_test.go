package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/window"
	"wrs/internal/xrand"
)

// winOracle is the brute-force windowed-SWOR oracle: it remembers every
// (pos, key, item) of every sub-stream — keys drawn from mirrored RNGs
// in the exact order the site machines draw them — and answers the
// top-s over the union of the last `width` items per sub-stream.
type winOracle struct {
	s, width int
	subs     [][]window.Entry
	rngs     []*xrand.RNG
}

func newWinOracle(k, s, width int, rngs []*xrand.RNG) *winOracle {
	return &winOracle{s: s, width: width, subs: make([][]window.Entry, k), rngs: rngs}
}

func (o *winOracle) observe(site int, it stream.Item) {
	key := o.rngs[site].ExpKey(it.Weight)
	o.subs[site] = append(o.subs[site], window.Entry{Pos: len(o.subs[site]), Key: key, Item: it})
}

// sample returns the exact union-window top-s, largest key first (ties,
// measure zero, break by item ID — the comparator the app layer uses).
func (o *winOracle) sample() []window.Entry {
	var live []window.Entry
	for _, sub := range o.subs {
		lo := len(sub) - o.width
		if lo < 0 {
			lo = 0
		}
		live = append(live, sub[lo:]...)
	}
	return window.TopEntries(live, o.s)
}

// windowPair wires k WindowSites to one WindowCoordinator with
// synchronous inline delivery — the minimal deterministic harness.
type windowPair struct {
	coord *WindowCoordinator
	sites []*WindowSite
	up    int64
}

func newWindowPair(k, s, width int, seed uint64) (*windowPair, *winOracle) {
	cfg := Config{K: k, S: s}
	master := xrand.New(seed)
	mirror := xrand.New(seed)
	coord := NewWindowCoordinator(cfg, width, master.Split())
	mirror.Split() // the coordinator's contract split, unused by the oracle
	p := &windowPair{coord: coord}
	rngs := make([]*xrand.RNG, k)
	for i := 0; i < k; i++ {
		p.sites = append(p.sites, NewWindowSite(i, cfg, width, master.Split()))
		rngs[i] = mirror.Split()
	}
	return p, newWinOracle(k, s, width, rngs)
}

func (p *windowPair) feed(t *testing.T, site int, it stream.Item) {
	t.Helper()
	err := p.sites[site].Observe(it, func(m Message) {
		p.up++
		p.coord.HandleMessage(m, func(Message) {
			t.Fatal("windowed coordinator broadcast — the protocol is push-only")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func sameEntries(a, b []window.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Item != b[i].Item {
			return false
		}
	}
	return true
}

// TestWindowProtocolExactEveryStep is the heart of the windowed
// protocol: at every single instant, over several widths (including
// width < s) and site assignments, the coordinator's query must equal
// the brute-force union-window top-s bit for bit.
func TestWindowProtocolExactEveryStep(t *testing.T) {
	for _, tc := range []struct {
		k, s, width int
		assign      func(i int) int
		name        string
	}{
		{1, 4, 10, func(i int) int { return 0 }, "single-site"},
		{3, 4, 25, func(i int) int { return i % 3 }, "round-robin"},
		{3, 4, 3, func(i int) int { return i % 3 }, "width<s"},
		{4, 2, 60, func(i int) int { return (i * i) % 4 }, "skewed"},
		{2, 6, 1, func(i int) int { return i % 2 }, "width=1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pair, oracle := newWindowPair(tc.k, tc.s, tc.width, 42)
			wrng := xrand.New(99)
			for i := 0; i < 500; i++ {
				site := tc.assign(i)
				it := stream.Item{ID: uint64(i), Weight: 0.1 + 100*wrng.Float64()}
				oracle.observe(site, it)
				pair.feed(t, site, it)
				got, want := pair.coord.Query(), oracle.sample()
				if !sameEntries(got, want) {
					t.Fatalf("step %d: query diverged from oracle\n got %v\nwant %v", i, got, want)
				}
			}
			if pair.up >= 500 && tc.width > tc.s {
				t.Errorf("sent %d messages for 500 updates: no filtering at width %d > s", pair.up, tc.width)
			}
		})
	}
}

// TestWindowSiteLocalTopSAlwaysSent pins the site invariant the
// exactness argument rests on: after every arrival, every member of the
// site's local window top-s has been emitted.
func TestWindowSiteLocalTopSAlwaysSent(t *testing.T) {
	const s, width, n = 3, 20, 300
	site := NewWindowSite(0, Config{K: 1, S: s}, width, xrand.New(7))
	mirror := xrand.New(7)
	var sub []window.Entry
	sent := map[int]bool{} // by pos
	wrng := xrand.New(8)
	for i := 0; i < n; i++ {
		it := stream.Item{ID: uint64(i), Weight: 0.5 + 10*wrng.Float64()}
		sub = append(sub, window.Entry{Pos: i, Key: mirror.ExpKey(it.Weight), Item: it})
		if err := site.Observe(it, func(m Message) {
			if m.Kind == MsgWindow {
				pos, _ := SplitWindowStamp(m.Level, 1)
				if sent[pos] {
					t.Fatalf("position %d sent twice", pos)
				}
				sent[pos] = true
			}
		}); err != nil {
			t.Fatal(err)
		}
		lo := len(sub) - width
		if lo < 0 {
			lo = 0
		}
		top := window.TopEntries(append([]window.Entry(nil), sub[lo:]...), s)
		for _, e := range top {
			if !sent[e.Pos] {
				t.Fatalf("step %d: local top-%d member at pos %d never sent", i, s, e.Pos)
			}
		}
	}
}

// TestWindowWidthLessThanS pins the degenerate regime: with width < s
// every arrival is in its sub-window's top-s, so every arrival is sent
// immediately, the item send always carries the newest position, and no
// clock messages are ever needed.
func TestWindowWidthLessThanS(t *testing.T) {
	pair, oracle := newWindowPair(2, 8, 3, 5)
	wrng := xrand.New(6)
	for i := 0; i < 200; i++ {
		it := stream.Item{ID: uint64(i), Weight: 1 + wrng.Float64()}
		oracle.observe(i%2, it)
		pair.feed(t, i%2, it)
	}
	if pair.up != 200 {
		t.Errorf("upstream %d, want exactly n=200 (width < s sends everything)", pair.up)
	}
	for _, st := range pair.sites {
		if st.Clocks != 0 {
			t.Errorf("site %d sent %d clock messages; item sends already carry the clock", st.ID(), st.Clocks)
		}
	}
	if got, want := pair.coord.Query(), oracle.sample(); !sameEntries(got, want) {
		t.Fatalf("width<s query diverged:\n got %v\nwant %v", got, want)
	}
	if len(pair.coord.Query()) != 2*3 {
		t.Errorf("sample size %d, want full union window 6", len(pair.coord.Query()))
	}
}

// TestWindowBoundaryExpiry pins expiry exactly at the window boundary:
// a giant item is in every sample while its position is within the last
// `width` arrivals of its sub-stream and gone at the first arrival that
// pushes it out — even though its successors were all buffered unsent
// until then (the clock message path).
func TestWindowBoundaryExpiry(t *testing.T) {
	const width = 5
	pair, _ := newWindowPair(1, 2, width, 11)
	giant := stream.Item{ID: 1000, Weight: 1e12}
	pair.feed(t, 0, giant)
	has := func() bool {
		for _, e := range pair.coord.Query() {
			if e.Item.ID == giant.ID {
				return true
			}
		}
		return false
	}
	for i := 1; i < width; i++ {
		pair.feed(t, 0, stream.Item{ID: uint64(i), Weight: 1})
		if !has() {
			t.Fatalf("giant missing at fill %d, window still contains position 0", i+1)
		}
	}
	// Arrival number width+1 moves the window to [1, width]: position 0
	// expires exactly now.
	pair.feed(t, 0, stream.Item{ID: uint64(width), Weight: 1})
	if has() {
		t.Fatal("giant still sampled after its position left the window")
	}
	if pair.sites[0].Clocks == 0 {
		t.Error("expiry of a dominant sent item with buffered successors must force a clock message")
	}
}

// TestWindowCoordinatorAllExpired pins the all-items-expired query: a
// clock advance far past every retained position empties the structure
// (the Retention primitive tolerates arbitrary jumps), and the query
// answers an empty sample instead of resurrecting expired items.
func TestWindowCoordinatorAllExpired(t *testing.T) {
	cfg := Config{K: 2, S: 3}
	c := NewWindowCoordinator(cfg, 10, xrand.New(1))
	for i := 0; i < 6; i++ {
		c.HandleMessage(Message{
			Kind: MsgWindow, Item: stream.Item{ID: uint64(i), Weight: 1},
			Key: float64(i + 1), Level: WindowStamp(i, i%2, cfg.K),
		}, nil)
	}
	if got := len(c.Query()); got != 3 {
		t.Fatalf("pre-expiry sample size %d, want 3", got)
	}
	for site := 0; site < 2; site++ {
		c.HandleMessage(Message{Kind: MsgClock, Level: WindowStamp(1000, site, cfg.K)}, nil)
	}
	if got := c.Query(); len(got) != 0 {
		t.Fatalf("all-expired query returned %v, want empty", got)
	}
	if got := c.Retained(); got != 0 {
		t.Fatalf("retained %d after full expiry, want 0", got)
	}
	_, cov := c.SnapshotWindow(nil)
	if cov.Observed != 2*1001 {
		t.Errorf("coverage observed %d, want 2002 (clock jumps advance the count)", cov.Observed)
	}
}

// TestWindowCoordinatorIgnoresBadStamps pins that negative stamps are
// counted and dropped, never a panic or a bogus sub-stream write.
func TestWindowCoordinatorIgnoresBadStamps(t *testing.T) {
	c := NewWindowCoordinator(Config{K: 2, S: 2}, 5, xrand.New(1))
	c.HandleMessage(Message{Kind: MsgWindow, Key: 1, Level: -3, Item: stream.Item{ID: 1, Weight: 1}}, nil)
	c.HandleMessage(Message{Kind: MsgClock, Level: -1}, nil)
	if c.Stats.BadStamps != 2 {
		t.Errorf("BadStamps = %d, want 2", c.Stats.BadStamps)
	}
	if got := len(c.Query()); got != 0 {
		t.Errorf("bad stamps produced %d candidates", got)
	}
}

// TestWindowStampOverflow pins the explicit overflow error: positions
// are bounded so stamps always fit the wire format's int32 slot.
func TestWindowStampOverflow(t *testing.T) {
	site := NewWindowSite(1, Config{K: 4, S: 2}, 8, xrand.New(1))
	site.n = (MaxWindowStamp-1)/4 + 1
	err := site.Observe(stream.Item{ID: 1, Weight: 1}, func(Message) {})
	if err == nil {
		t.Fatal("no error at sequence stamp overflow")
	}
	// At the largest valid position the stamp must still round-trip
	// through int32.
	site2 := NewWindowSite(3, Config{K: 4, S: 2}, 8, xrand.New(1))
	site2.n = (MaxWindowStamp - 3) / 4
	var got Message
	if err := site2.Observe(stream.Item{ID: 2, Weight: 1}, func(m Message) { got = m }); err != nil {
		t.Fatal(err)
	}
	if got.Level > MaxWindowStamp || int32(got.Level) < 0 {
		t.Fatalf("stamp %d does not fit int32", got.Level)
	}
}

// TestWindowMessageWords pins the accounting of the new kinds.
func TestWindowMessageWords(t *testing.T) {
	if w := (Message{Kind: MsgWindow}).Words(); w != 5 {
		t.Errorf("window message words = %d, want 5", w)
	}
	if w := (Message{Kind: MsgClock}).Words(); w != 2 {
		t.Errorf("clock message words = %d, want 2", w)
	}
	for kind, want := range map[MsgKind]string{MsgWindow: "window", MsgClock: "window-clock"} {
		if got := kind.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", kind, got, want)
		}
	}
}

// TestWindowSiteBatchBitEquivalence pins that feeding one item at a
// time and feeding across a window boundary in any grouping are the
// same machine: the site has no batch path, so equivalence is exact by
// construction — this guards that no future batch "optimization"
// changes stamping or key order.
func TestWindowSiteBatchBitEquivalence(t *testing.T) {
	const width = 7
	mkSite := func() *WindowSite { return NewWindowSite(0, Config{K: 1, S: 3}, width, xrand.New(3)) }
	a, b := mkSite(), mkSite()
	var am, bm []Message
	wrng := xrand.New(4)
	items := make([]stream.Item, 3*width+2) // crosses the boundary twice
	for i := range items {
		items[i] = stream.Item{ID: uint64(i), Weight: 1 + wrng.Float64()}
	}
	for _, it := range items {
		if err := a.Observe(it, func(m Message) { am = append(am, m) }); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range items { // "batched": same order, one loop
		if err := b.Observe(it, func(m Message) { bm = append(bm, m) }); err != nil {
			t.Fatal(err)
		}
	}
	if len(am) != len(bm) {
		t.Fatalf("message counts diverged: %d vs %d", len(am), len(bm))
	}
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("message %d diverged: %+v vs %+v", i, am[i], bm[i])
		}
	}
}

// TestWindowSiteRetentionLockstep pins that WindowSite's inlined
// expire/dominance/trim pass is the same rule as window.Retention fed
// the identical (pos, key) sequence: after every arrival — with both
// sides' lazy dominance compaction forced, so the comparison is of the
// eager rule both implement — the site's retained (pos, key) set must
// equal the Retention's, and the site's incrementally maintained
// threshold must equal the s-th largest retained key derived from the
// Retention's view. The sandwich exactness argument needs the site and
// coordinator structures to agree on what is retainable, so a change
// to one rule without the other must fail here.
func TestWindowSiteRetentionLockstep(t *testing.T) {
	const s, width, n = 3, 15, 400
	site := NewWindowSite(0, Config{K: 1, S: s}, width, xrand.New(21))
	mirror := xrand.New(21)
	ret, err := window.NewRetention(s, width)
	if err != nil {
		t.Fatal(err)
	}
	wrng := xrand.New(22)
	for i := 0; i < n; i++ {
		it := stream.Item{ID: uint64(i), Weight: 0.3 + 8*wrng.Float64()}
		if err := site.Observe(it, func(Message) {}); err != nil {
			t.Fatal(err)
		}
		ret.Add(i, mirror.ExpKey(it.Weight), it)
		site.Compact()
		ret.Compact()
		want := ret.AppendEntries(nil)
		if site.Buffered() != len(want) {
			t.Fatalf("step %d: site retains %d entries, Retention %d", i, site.Buffered(), len(want))
		}
		for j, e := range want {
			got := site.kept[site.start+j]
			if got.pos != e.Pos || got.key != e.Key {
				t.Fatalf("step %d: entry %d diverged: site (%d, %v), Retention (%d, %v)",
					i, j, got.pos, got.key, e.Pos, e.Key)
			}
		}
		// The incremental threshold must match a from-scratch selection
		// over the retained keys (-1 while at most s are live).
		wantTh := -1.0
		if len(want) > s {
			keys := make([]float64, 0, len(want))
			for _, e := range want {
				keys = append(keys, e.Key)
			}
			sort.Float64s(keys)
			wantTh = keys[len(keys)-s]
		}
		if got := site.Threshold(); got != wantTh {
			t.Fatalf("step %d: incremental threshold %v, want %v", i, got, wantTh)
		}
	}
}

// TestWindowSiteRejectsBadWeights matches the validation contract of
// every other site machine.
func TestWindowSiteRejectsBadWeights(t *testing.T) {
	site := NewWindowSite(0, Config{K: 1, S: 2}, 4, xrand.New(1))
	for _, w := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := site.Observe(stream.Item{ID: 1, Weight: w}, func(Message) {}); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
	if site.N() != 0 {
		t.Errorf("invalid weights advanced the clock to %d", site.N())
	}
}

// TestWindowConstructorValidation pins the panic contract shared with
// NewSite/NewCoordinator.
func TestWindowConstructorValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewWindowSite(0, Config{K: 1, S: 1}, 0, xrand.New(1)) },
		func() { NewWindowCoordinator(Config{K: 1, S: 1}, 0, xrand.New(1)) },
		func() { NewWindowSite(0, Config{K: 0, S: 1}, 4, xrand.New(1)) },
		func() { NewWindowCoordinator(Config{K: 1, S: 0}, 4, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid windowed configuration did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestWindowCoordinatorInertCore pins the transport contract: Core()
// exposes an inert sampler whose control plane is empty, so a TCP
// join snapshot for a windowed shard replays nothing.
func TestWindowCoordinatorInertCore(t *testing.T) {
	c := NewWindowCoordinator(Config{K: 2, S: 2}, 5, xrand.New(1))
	for i := 0; i < 10; i++ {
		c.HandleMessage(Message{
			Kind: MsgWindow, Item: stream.Item{ID: uint64(i), Weight: 1e6},
			Key: 1e6 / float64(i+1), Level: WindowStamp(i, 0, 2),
		}, nil)
	}
	core := c.Core()
	if th := core.CurrentThreshold(); th != 0 {
		t.Errorf("inert core threshold %v, want 0", th)
	}
	if lv := core.SaturatedLevels(); len(lv) != 0 {
		t.Errorf("inert core saturated levels %v, want none", lv)
	}
	if got := len(core.Query()); got != 0 {
		t.Errorf("inert core sample has %d entries", got)
	}
}

func ExampleWindowStamp() {
	stamp := WindowStamp(7, 2, 4) // position 7 at site 2 of 4
	pos, site := SplitWindowStamp(stamp, 4)
	fmt.Println(stamp, pos, site)
	// Output: 30 7 2
}
