package core

import (
	"fmt"

	"wrs/internal/window"
)

// WindowCoordinatorState is a self-contained checkpoint of the windowed
// coordinator: one RetentionState per site sub-stream plus the message
// counters. The inert inner sampler coordinator is deliberately not
// captured — it is never fed, so a restored coordinator keeps its own
// (equally inert) instance and every outstanding pointer stays valid.
type WindowCoordinatorState struct {
	Cfg   Config
	Width int
	Sites []window.RetentionState
	Stats WindowCoordStats
}

// ExportState captures the coordinator as a WindowCoordinatorState that
// shares nothing with the live machine. Like every other state read it
// must be serialized with message processing on concurrent runtimes.
func (c *WindowCoordinator) ExportState() *WindowCoordinatorState {
	st := &WindowCoordinatorState{
		Cfg:   c.cfg,
		Width: c.width,
		Sites: make([]window.RetentionState, len(c.sites)),
		Stats: c.Stats,
	}
	for i, r := range c.sites {
		st.Sites[i] = r.ExportState()
	}
	return st
}

// RestoreState overwrites the coordinator with a checkpoint in place,
// keeping every outstanding pointer valid (the chaos engine's restart
// path). The checkpoint's config and width must match the coordinator's
// own: a restart never changes protocol parameters.
func (c *WindowCoordinator) RestoreState(st *WindowCoordinatorState) error {
	if st.Cfg != c.cfg {
		return fmt.Errorf("core: window snapshot config %+v does not match coordinator config %+v", st.Cfg, c.cfg)
	}
	if st.Width != c.width {
		return fmt.Errorf("core: window snapshot width %d does not match coordinator width %d", st.Width, c.width)
	}
	if len(st.Sites) != len(c.sites) {
		return fmt.Errorf("core: window snapshot has %d sites, coordinator has %d", len(st.Sites), len(c.sites))
	}
	for i, s := range st.Sites {
		if err := c.sites[i].RestoreState(s); err != nil {
			return fmt.Errorf("core: window snapshot site %d: %w", i, err)
		}
	}
	c.Stats = st.Stats
	return nil
}

// SiteClock returns the coordinator's observed clock for site i's
// sub-stream: the number of positions it has been told about, which is
// the clock expiry is applied against. Exported for the chaos oracle,
// which replays delivered candidates at exactly this clock per site.
func (c *WindowCoordinator) SiteClock(i int) int { return c.sites[i].Count() }
