// Package core implements the paper's primary contribution: the
// message-optimal algorithm for weighted sampling without replacement
// from a distributed stream (Section 3, Algorithms 1-3, Theorem 3).
//
// The implementation is transport-agnostic: Site and Coordinator are
// state machines that emit messages through callbacks, so they can be
// driven by the deterministic sequential simulator, by the concurrent
// goroutine runtime (package netsim), or embedded in a user's own
// network layer.
//
// Summary of the algorithm:
//
//   - Every item (e, w) receives a key v = w/t with t ~ Exp(1); the
//     coordinator's sample is the set of items with the s largest keys
//     (precision sampling; correct by Proposition 1).
//   - Epochs: the coordinator tracks u, the s-th largest released key,
//     and broadcasts the threshold r^j with u in [r^j, r^(j+1)),
//     r = max(2, k/s). Sites drop keys below the threshold locally,
//     which removes the naive O(ks log W) message blow-up.
//   - Level sets: an item of weight w in [r^j, r^(j+1)) is "withheld" —
//     sent to the coordinator as an *early* message and parked in level
//     set D_j — until 4rs items of its level exist. This keeps extreme
//     heavy hitters from stalling epoch advancement. Withheld items
//     still carry keys (generated at the coordinator on arrival), so the
//     maintained sample — the top s keys of S ∪ (∪_j D_j) — is a valid
//     weighted SWOR at every instant.
package core

import (
	"fmt"
	"math"

	"wrs/internal/stream"
)

// MsgKind discriminates protocol messages.
type MsgKind uint8

const (
	// MsgEarly carries a withheld item from a site to the coordinator
	// (site -> coordinator, no key attached).
	MsgEarly MsgKind = iota
	// MsgRegular carries an item and its key (site -> coordinator).
	MsgRegular
	// MsgLevelSaturated announces that level set D_j filled up
	// (coordinator -> all sites).
	MsgLevelSaturated
	// MsgEpochUpdate announces a new filtering threshold
	// (coordinator -> all sites).
	MsgEpochUpdate
	// MsgWindow carries a sequence-stamped sliding-window candidate: an
	// item, its key, and the shard-local stamp packing the site-local
	// arrival position with the site id (site -> coordinator; the
	// windowed application).
	MsgWindow
	// MsgClock advances a site's sub-stream clock without carrying an
	// item, so the coordinator can expire that site's sent candidates
	// even when the site's newest arrivals were all buffered locally
	// (site -> coordinator; the windowed application).
	MsgClock
)

func (k MsgKind) String() string {
	switch k {
	case MsgEarly:
		return "early"
	case MsgRegular:
		return "regular"
	case MsgLevelSaturated:
		return "level-saturated"
	case MsgEpochUpdate:
		return "epoch-update"
	case MsgWindow:
		return "window"
	case MsgClock:
		return "window-clock"
	default:
		return "unknown"
	}
}

// Message is a protocol message. Every message fits in O(1) machine words
// (Proposition 7): an item id, a weight, and at most one of key, level, or
// threshold. The windowed application reuses the Level slot as its
// sequence stamp (see WindowStamp), so its messages ride the same wire
// layout.
type Message struct {
	Kind      MsgKind
	Item      stream.Item // early, regular, window
	Key       float64     // regular, window
	Level     int         // level-saturated; sequence stamp for window/window-clock
	Threshold float64     // epoch-update
}

// Words returns the size of the message in machine words, for
// communication accounting.
func (m Message) Words() int {
	switch m.Kind {
	case MsgEarly:
		return 3 // kind + id + weight
	case MsgRegular:
		return 4 // kind + id + weight + key
	case MsgWindow:
		return 5 // kind + id + weight + key + stamp
	default:
		return 2 // kind + payload (level, threshold, or stamp)
	}
}

// MaxWindowStamp is the largest sequence stamp a window message can
// carry: stamps share the Level slot, which the wire format encodes as
// an int32.
const MaxWindowStamp = math.MaxInt32

// WindowStamp packs a site-local arrival position and the site id into
// the shard-local sequence stamp carried in Message.Level: stamp =
// pos·k + site. The packing is unique across a shard's k sub-streams
// and order-preserving within each, so one int both names the
// sub-stream and advances its clock. Positions are bounded by
// MaxWindowStamp/k; WindowSite.Observe errors before overflowing.
func WindowStamp(pos, site, k int) int { return pos*k + site }

// SplitWindowStamp unpacks a sequence stamp into (pos, site). The
// caller must reject negative stamps first.
func SplitWindowStamp(stamp, k int) (pos, site int) { return stamp / k, stamp % k }

// Config holds the algorithm parameters shared by sites and coordinator.
type Config struct {
	K int // number of sites
	S int // sample size

	// DisableLevelSets turns off the withholding of heavy items
	// (ablation A1). The sample remains a correct weighted SWOR; the
	// message bound of Theorem 3 no longer holds on skewed streams.
	DisableLevelSets bool
	// DisableEpochs turns off threshold broadcasts (ablation A2): sites
	// send every key, reproducing the naive O(n) protocol.
	DisableEpochs bool

	// SkipAhead switches sites to the A-ExpJ exponential-jump filter
	// (xrand.Jump): one armed jump per threshold epoch skips whole runs
	// of sub-threshold arrivals with zero RNG draws, instead of one lazy
	// threshold comparison per arrival. Distributionally identical to
	// the default path — same sample law, same message bound — but a
	// different realization of the randomness, so it is opt-in: the
	// bit-exact legacy suites and recorded-oracle tests pin the lazy
	// path. Sites with a Recorder attached fall back to the lazy path
	// regardless (skipped items have no key to record).
	SkipAhead bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: need at least 1 site, got %d", c.K)
	}
	if c.S < 1 {
		return fmt.Errorf("core: need sample size >= 1, got %d", c.S)
	}
	return nil
}

// R returns the epoch/level base r = max(2, k/s).
func (c Config) R() float64 {
	r := float64(c.K) / float64(c.S)
	if r < 2 {
		r = 2
	}
	return r
}

// LevelCap returns the saturation size ceil(4*r*s) = max(8s, 4k) of each
// level set.
func (c Config) LevelCap() int {
	cap8s := 8 * c.S
	if cap4k := 4 * c.K; cap4k > cap8s {
		return cap4k
	}
	return cap8s
}

// StalenessWindow returns the default flow-control window W used by
// asynchronous transports: after every W upstream messages a site must
// synchronize (round-trip) with the coordinator before sending more,
// so it can never run further than W messages ahead of the control
// plane. W = 4*LevelCap() keeps the round-trip overhead at 2 messages
// per W sent while bounding how long a site can filter with a stale
// threshold, preserving the message bound of Theorem 3 on any
// scheduler or network. See DESIGN.md.
func (c Config) StalenessWindow() int {
	return 4 * c.LevelCap()
}

// levelOf returns the level j >= 0 with w in [r^j, r^(j+1)) per
// Definition 4 (weights below r, including (0,1), map to level 0). The
// post-correction loops guard against floating-point boundary rounding.
func levelOf(w, r float64) int {
	if w < r {
		return 0
	}
	j := int(math.Floor(math.Log(w) / math.Log(r)))
	for j > 0 && math.Pow(r, float64(j)) > w {
		j--
	}
	for math.Pow(r, float64(j+1)) <= w {
		j++
	}
	if j < 0 {
		j = 0
	}
	return j
}

// epochThreshold returns the filtering threshold r^floor(log_r u) for
// u >= 1 and 0 for u < 1 ("epoch 0 until u reaches r"; see DESIGN.md).
// The returned threshold never exceeds u, so a site filtering with it can
// only drop keys with at least s released dominators.
func epochThreshold(u, r float64) float64 {
	if u < 1 {
		return 0
	}
	j := int(math.Floor(math.Log(u) / math.Log(r)))
	th := math.Pow(r, float64(j))
	for th > u && j > 0 {
		j--
		th = math.Pow(r, float64(j))
	}
	if th > u {
		return 0
	}
	return th
}

func validWeight(w float64) error {
	if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
		return fmt.Errorf("core: weight must be positive and finite, got %v", w)
	}
	return nil
}
