package core

import (
	"sort"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// refEntry is one live item of the naive reference window.
type refEntry struct {
	pos  int
	key  float64
	item stream.Item
	sent bool
}

// naiveWindowRef reimplements the windowed site's send semantics the
// slow, obviously-correct way: keep every live item (no dominance
// pruning at all), re-derive the top-s threshold from scratch by
// sorting, and sweep all unsent entries per arrival. The incremental
// WindowSite must produce a bit-identical message sequence.
type naiveWindowRef struct {
	s, width int
	rng      *xrand.RNG
	n        int
	entries  []refEntry
	frontier int
	sentPos  []int
}

func newNaiveWindowRef(s, width int, rng *xrand.RNG) *naiveWindowRef {
	return &naiveWindowRef{s: s, width: width, rng: rng, frontier: -1}
}

func (r *naiveWindowRef) pruneCovered() {
	bound := r.frontier - r.width
	out := r.sentPos[:0]
	for _, p := range r.sentPos {
		if p > bound {
			out = append(out, p)
		}
	}
	r.sentPos = out
}

func (r *naiveWindowRef) threshold() float64 {
	if len(r.entries) <= r.s {
		return -1
	}
	keys := make([]float64, len(r.entries))
	for i, e := range r.entries {
		keys[i] = e.key
	}
	sort.Float64s(keys)
	return keys[len(keys)-r.s]
}

func (r *naiveWindowRef) observe(it stream.Item) []Message {
	pos := r.n
	r.n++
	key := r.rng.ExpKey(it.Weight)
	lo := r.n - r.width
	live := r.entries[:0]
	for _, e := range r.entries {
		if e.pos >= lo {
			live = append(live, e)
		}
	}
	r.entries = append(live, refEntry{pos: pos, key: key, item: it})

	th := r.threshold()
	var out []Message
	for i := range r.entries {
		e := &r.entries[i]
		if e.sent || (th >= 0 && e.key < th) {
			continue
		}
		e.sent = true
		r.sentPos = append(r.sentPos, e.pos)
		if e.pos > r.frontier {
			r.frontier = e.pos
		}
		out = append(out, Message{Kind: MsgWindow, Item: e.item, Key: e.key, Level: WindowStamp(e.pos, 0, 1)})
	}
	r.pruneCovered()

	clock := false
	for _, p := range r.sentPos {
		if p < lo {
			clock = true
		}
	}
	if clock {
		r.frontier = pos
		out = append(out, Message{Kind: MsgClock, Level: WindowStamp(pos, 0, 1)})
		r.pruneCovered()
	}
	return out
}

// FuzzWindowSiteObserve drives the incremental WindowSite against the
// naive full-recompute reference over fuzzer-chosen (s, width, seed,
// weight schedule) and demands bit-identical messages, thresholds, and
// clock counts at every single arrival.
func FuzzWindowSiteObserve(f *testing.F) {
	f.Add(uint8(2), uint8(8), uint64(1), []byte{7, 200, 3, 3, 90, 14, 255, 0, 42, 42, 9, 180, 66, 5, 230, 1})
	f.Add(uint8(1), uint8(1), uint64(9), []byte{10, 20, 30, 40, 50})
	f.Add(uint8(5), uint8(3), uint64(77), []byte{128, 128, 128, 128, 128, 128, 128, 128})
	f.Add(uint8(4), uint8(40), uint64(1234), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 250, 250, 250, 1, 1, 1})
	f.Fuzz(func(t *testing.T, s, width uint8, seed uint64, data []byte) {
		S := int(s%6) + 1
		W := int(width%48) + 1
		if len(data) > 300 {
			data = data[:300]
		}
		site := NewWindowSite(0, Config{K: 1, S: S}, W, xrand.New(seed))
		ref := newNaiveWindowRef(S, W, xrand.New(seed))
		var clocks int64
		for i, b := range data {
			it := stream.Item{ID: uint64(i), Weight: 0.1 + float64(b)}
			var got []Message
			if err := site.Observe(it, func(m Message) { got = append(got, m) }); err != nil {
				t.Fatal(err)
			}
			want := ref.observe(it)
			if len(got) != len(want) {
				t.Fatalf("arrival %d (s=%d width=%d): %d messages, reference %d\ngot  %+v\nwant %+v",
					i, S, W, len(got), len(want), got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("arrival %d (s=%d width=%d): message %d = %+v, reference %+v",
						i, S, W, j, got[j], want[j])
				}
				if got[j].Kind == MsgClock {
					clocks++
				}
			}
			// When dominance pruning leaves <= s retained entries the site
			// reports -1 (send-everything, a superset rule — same messages,
			// as asserted above). A defined threshold, however, must equal
			// the reference's: the retained set always contains the window
			// top-s, so their s-th largest keys coincide.
			if gt, wt := site.Threshold(), ref.threshold(); gt >= 0 && gt != wt {
				t.Fatalf("arrival %d (s=%d width=%d): threshold %v, reference %v", i, S, W, gt, wt)
			}
		}
		if site.Clocks != clocks {
			t.Fatalf("site counted %d clocks, stream carried %d", site.Clocks, clocks)
		}
		if site.Buffered() > len(data) {
			t.Fatalf("buffered %d exceeds arrivals %d", site.Buffered(), len(data))
		}
	})
}

// TestWindowObserveAllocsBounded guards the trim/recycle rework: a
// warmed site in steady state must process arrivals without per-item
// allocations (the backing array, heaps, and scratch slices are all
// recycled in place).
func TestWindowObserveAllocsBounded(t *testing.T) {
	const width, s = 1024, 8
	site := NewWindowSite(0, Config{K: 1, S: s}, width, xrand.New(3))
	wrng := xrand.New(4)
	drop := func(Message) {}
	feed := func(n int) {
		for i := 0; i < n; i++ {
			if err := site.Observe(stream.Item{ID: uint64(i), Weight: 0.1 + 100*wrng.Float64()}, drop); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(8 * width) // reach steady state: all backing arrays at capacity
	avg := testing.AllocsPerRun(4096, func() { feed(1) })
	if avg > 0.05 {
		t.Errorf("window Observe allocates %.3f objects/op in steady state, want ~0", avg)
	}
}
