package core

import (
	"math"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// TestExtremeWeightRanges runs exactness over 15 orders of magnitude of
// weight (the paper assumes weights fit in a machine word, i.e. are
// polynomially bounded; float64 keys handle this range losslessly enough
// that top-s ordering is preserved).
func TestExtremeWeightRanges(t *testing.T) {
	cfg := Config{K: 4, S: 6}
	rec := NewRecorder()
	cl, coord := newTestCluster(cfg, 2024, rec)
	rng := xrand.New(2025)
	for i := 0; i < 400; i++ {
		w := math.Pow(10, 15*rng.Float64()) // 1 .. 1e15
		if err := cl.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: w}); err != nil {
			t.Fatal(err)
		}
		checkExactTopS(t, coord, rec, i+1)
	}
}

// TestAdversarialPartitions checks exactness under the orderings the
// model allows the adversary to pick (Section 2.1: no assumption on
// interleaving).
func TestAdversarialPartitions(t *testing.T) {
	const n = 600
	cfg := Config{K: 6, S: 5}
	for name, af := range map[string]stream.AssignFn{
		"contiguous":  stream.Contiguous(cfg.K, n),
		"single-site": stream.SingleSite(),
		"epochblocks": stream.EpochBlocks(cfg.K),
	} {
		rec := NewRecorder()
		cl, coord := newTestCluster(cfg, 3033, rec)
		g := stream.NewGenerator(n, cfg.K, stream.ParetoWeights(1.1), af)
		rng := xrand.New(3034)
		g.Reset()
		step := 0
		for {
			u, ok := g.Next(rng)
			if !ok {
				break
			}
			if err := cl.Feed(u.Site, u.Item); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			step++
			checkExactTopS(t, coord, rec, step)
		}
	}
}

// TestDuplicateIdentifiers exercises the paper's note that the same id
// may appear many times, each occurrence sampled independently.
func TestDuplicateIdentifiers(t *testing.T) {
	cfg := Config{K: 2, S: 4}
	cl, coord := newTestCluster(cfg, 404, nil)
	for i := 0; i < 100; i++ {
		// One identifier, many occurrences with varying weights.
		if err := cl.Feed(i%2, stream.Item{ID: 7, Weight: float64(1 + i%3)}); err != nil {
			t.Fatal(err)
		}
	}
	q := coord.Query()
	if len(q) != cfg.S {
		t.Fatalf("query size %d", len(q))
	}
	for _, e := range q {
		if e.Item.ID != 7 {
			t.Fatalf("unexpected id %d", e.Item.ID)
		}
	}
}

// TestManySitesFewItems covers k >> n (most sites silent).
func TestManySitesFewItems(t *testing.T) {
	cfg := Config{K: 64, S: 4}
	rec := NewRecorder()
	cl, coord := newTestCluster(cfg, 505, rec)
	for i := 0; i < 10; i++ {
		if err := cl.Feed(i*5%cfg.K, stream.Item{ID: uint64(i), Weight: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		checkExactTopS(t, coord, rec, i+1)
	}
}

// TestLongRunStability pushes one long stream through a small config and
// verifies the message rate decays (the defining property of the
// epoch-filter design) and u grows monotonically throughout.
func TestLongRunStability(t *testing.T) {
	cfg := Config{K: 4, S: 4}
	cl, coord := newTestCluster(cfg, 606, nil)
	g := stream.NewGenerator(200000, cfg.K, stream.UniformWeights(10), stream.RoundRobin(cfg.K))
	rng := xrand.New(607)
	g.Reset()
	var firstHalf, secondHalf int64
	half := int64(0)
	n := 0
	for {
		u, ok := g.Next(rng)
		if !ok {
			break
		}
		if err := cl.Feed(u.Site, u.Item); err != nil {
			t.Fatal(err)
		}
		n++
		if n == 100000 {
			half = cl.Stats.Total()
		}
	}
	firstHalf = half
	secondHalf = cl.Stats.Total() - half
	if secondHalf >= firstHalf {
		t.Errorf("message rate did not decay: first half %d, second half %d", firstHalf, secondHalf)
	}
	if coord.U() <= 0 {
		t.Error("u never advanced")
	}
}
