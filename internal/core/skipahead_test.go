package core

import (
	"math"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// TestSkipAheadFixedThresholdStatistics pins the jump filter's law
// against the analytic pass probability: at a fixed threshold u, an
// arrival of weight w must be forwarded with probability exactly
// p = 1 - e^(-w/u), the same Bernoulli the lazy ThresholdExp
// comparison realizes. Heterogeneous weights exercise the jump's
// cumulative-weight accounting (the skip run ends at different depths
// depending on which weights it crosses).
func TestSkipAheadFixedThresholdStatistics(t *testing.T) {
	const th = 10.0
	weights := []float64{0.5, 2, 7.5, 30}
	const n = 80000
	cfg := Config{K: 1, S: 2, SkipAhead: true, DisableLevelSets: true}
	st := NewSite(0, cfg, xrand.New(11))
	st.HandleBroadcast(Message{Kind: MsgEpochUpdate, Threshold: th})

	sent := make([]int, len(weights))
	for i := 0; i < n; i++ {
		w := i % len(weights)
		err := st.Observe(stream.Item{ID: uint64(i), Weight: weights[w]}, func(m Message) {
			if m.Kind != MsgRegular {
				t.Fatalf("unexpected message kind %v", m.Kind)
			}
			if m.Key <= th {
				t.Fatalf("forwarded key %v not above threshold %v", m.Key, th)
			}
			sent[w]++
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	trials := n / len(weights)
	for w, wt := range weights {
		p := -math.Expm1(-wt / th)
		mean := float64(trials) * p
		se := math.Sqrt(float64(trials) * p * (1 - p))
		if d := math.Abs(float64(sent[w]) - mean); d > 4.5*se {
			t.Errorf("weight %v: %d of %d forwarded, want %.0f +- %.0f (4.5 SE)",
				wt, sent[w], trials, mean, 4.5*se)
		}
	}
	if st.Skipped == 0 {
		t.Error("no arrivals were skipped: the jump never engaged")
	}
	if st.Skipped+st.Sent != st.Observed {
		t.Errorf("counter mismatch: skipped %d + sent %d != observed %d",
			st.Skipped, st.Sent, st.Observed)
	}
	if st.TotalBits != 0 {
		t.Errorf("jump path consumed %d lazy comparison bits, want 0", st.TotalBits)
	}
}

// TestSkipAheadRearmOnThresholdChange pins the re-arm rule: a jump
// armed at one threshold is abandoned the moment a broadcast raises
// it (memorylessness makes the fresh exponential exact), while a
// stale lower broadcast leaves the armed jump untouched.
func TestSkipAheadRearmOnThresholdChange(t *testing.T) {
	cfg := Config{K: 1, S: 2, SkipAhead: true, DisableLevelSets: true}
	st := NewSite(0, cfg, xrand.New(7))
	st.HandleBroadcast(Message{Kind: MsgEpochUpdate, Threshold: 50})
	drop := func(Message) {}

	for st.Skipped == 0 {
		if err := st.Observe(stream.Item{ID: 1, Weight: 0.01}, drop); err != nil {
			t.Fatal(err)
		}
	}
	if !st.jump.ArmedAt(50) {
		t.Fatal("jump not armed at the active threshold after a skip")
	}
	// Monotone guard: a stale lower threshold must not disturb the jump.
	st.HandleBroadcast(Message{Kind: MsgEpochUpdate, Threshold: 10})
	if !st.jump.ArmedAt(50) {
		t.Fatal("stale lower broadcast disturbed the armed jump")
	}
	// A real epoch advance invalidates the armed jump...
	st.HandleBroadcast(Message{Kind: MsgEpochUpdate, Threshold: 80})
	if st.jump.ArmedAt(80) {
		t.Fatal("jump claims to target the new threshold before any arrival")
	}
	// ...and the next arrival re-arms at the new threshold (or lands and
	// disarms, the only other legal outcome).
	sentBefore := st.Sent
	if err := st.Observe(stream.Item{ID: 2, Weight: 0.01}, drop); err != nil {
		t.Fatal(err)
	}
	if st.Sent == sentBefore && !st.jump.ArmedAt(80) {
		t.Fatal("arrival after a threshold change neither re-armed the jump nor sent")
	}
}

// TestObserveBatchBitEquality pins that ObserveBatch is bit-identical
// to the equivalent Observe loop — same messages, same order, same RNG
// draws — across all three arrival classes: early (unsaturated level),
// jump-filtered, and jump-landing. A mid-run threshold bump (applied
// from inside the send callback, as the synchronous runtime would)
// exercises the re-read-after-send break.
func TestObserveBatchBitEquality(t *testing.T) {
	cfg := Config{K: 1, S: 3, SkipAhead: true}
	r := cfg.R()
	mkSite := func() *Site {
		s := NewSite(0, cfg, xrand.New(23))
		// Saturate the light class's level so it uses the jump path; the
		// heavy class stays early, diverting batches mid-run.
		s.HandleBroadcast(Message{Kind: MsgLevelSaturated, Level: levelOf(1.0, r)})
		s.HandleBroadcast(Message{Kind: MsgEpochUpdate, Threshold: 4})
		return s
	}
	collect := func(s *Site, out *[]Message) func(Message) {
		return func(m Message) {
			*out = append(*out, m)
			if len(*out) == 5 {
				s.HandleBroadcast(Message{Kind: MsgEpochUpdate, Threshold: 9})
			}
		}
	}
	items := make([]stream.Item, 400)
	for i := range items {
		w := 1.0
		if i%7 == 3 {
			w = 1000.0
		}
		items[i] = stream.Item{ID: uint64(i), Weight: w}
	}

	a, b := mkSite(), mkSite()
	var ma, mb []Message
	sendA, sendB := collect(a, &ma), collect(b, &mb)
	for _, it := range items {
		if err := a.Observe(it, sendA); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.ObserveBatch(items, sendB); err != nil {
		t.Fatal(err)
	}
	if len(ma) != len(mb) {
		t.Fatalf("message counts differ: loop %d, batch %d", len(ma), len(mb))
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("message %d differs: loop %+v, batch %+v", i, ma[i], mb[i])
		}
	}
	if a.Observed != b.Observed || a.Sent != b.Sent || a.Skipped != b.Skipped {
		t.Errorf("counters differ: loop (%d, %d, %d), batch (%d, %d, %d)",
			a.Observed, a.Sent, a.Skipped, b.Observed, b.Sent, b.Skipped)
	}
	if a.Skipped == 0 {
		t.Error("workload never engaged the jump: the equality is vacuous")
	}
}

// TestSkipAheadInclusionExactS1 is the end-to-end distributional pin:
// for s = 1, weighted SWOR reduces to single weighted selection, whose
// inclusion probability is exactly w_i / W — no approximation, no
// tuning. Running the full coordinator/site protocol with SkipAhead
// over many independent seeds must reproduce it for every item.
func TestSkipAheadInclusionExactS1(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 40}
	var W float64
	for _, w := range weights {
		W += w
	}
	const trials = 6000
	cfg := Config{K: 2, S: 1, SkipAhead: true}
	wins := make([]int, len(weights))
	for tr := 0; tr < trials; tr++ {
		cl, coord := newTestCluster(cfg, 1_000_000+uint64(tr), nil)
		for i, w := range weights {
			if err := cl.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: w}); err != nil {
				t.Fatal(err)
			}
		}
		q := coord.Query()
		if len(q) != 1 {
			t.Fatalf("trial %d: query size %d, want 1", tr, len(q))
		}
		wins[q[0].Item.ID]++
	}
	for i, w := range weights {
		p := w / W
		mean := trials * p
		se := math.Sqrt(trials * p * (1 - p))
		if d := math.Abs(float64(wins[i]) - mean); d > 4.5*se {
			t.Errorf("item %d (weight %v): included %d of %d, want %.0f +- %.0f (4.5 SE)",
				i, w, wins[i], trials, mean, 4.5*se)
		}
	}
}
