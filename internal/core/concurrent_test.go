package core

import (
	"testing"

	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// TestConcurrentRuntimeExactness runs the full protocol on the goroutine
// runtime. Asynchrony means sites can filter with stale (lower)
// thresholds and early messages can race saturation broadcasts; by design
// neither breaks exactness: at drain, the coordinator's sample must equal
// the brute-force top-s of every key generated anywhere.
func TestConcurrentRuntimeExactness(t *testing.T) {
	for _, cfg := range []Config{
		{K: 4, S: 8},
		{K: 16, S: 2},
	} {
		rec := NewRecorder()
		master := xrand.New(31 + uint64(cfg.K))
		coord := NewCoordinator(cfg, master.Split())
		coord.SetRecorder(rec)
		sites := make([]netsim.Site[Message], cfg.K)
		for i := 0; i < cfg.K; i++ {
			s := NewSite(i, cfg, master.Split())
			s.SetRecorder(rec)
			sites[i] = s
		}
		cc := netsim.NewConcurrentCluster[Message](coord, sites)
		cc.Start()
		const n = 20000
		g := stream.NewGenerator(n, cfg.K, stream.ParetoWeights(1.3), stream.RandomSites(cfg.K))
		rng := xrand.New(77)
		g.Reset()
		for {
			u, ok := g.Next(rng)
			if !ok {
				break
			}
			cc.Feed(u.Site, u.Item)
		}
		stats, err := cc.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Len() != n {
			t.Fatalf("cfg %+v: %d keys recorded, want %d", cfg, rec.Len(), n)
		}
		q := coord.Query()
		if len(q) != cfg.S {
			t.Fatalf("cfg %+v: query size %d, want %d", cfg, len(q), cfg.S)
		}
		want := rec.TopIDs(cfg.S)
		for _, e := range q {
			if !want[e.Item.ID] {
				t.Fatalf("cfg %+v: sample contains %d which is not a top-%d key", cfg, e.Item.ID, cfg.S)
			}
		}
		if stats.Upstream == 0 || stats.Upstream > n {
			t.Errorf("cfg %+v: upstream = %d", cfg, stats.Upstream)
		}
		t.Logf("cfg %+v: upstream=%d downstream=%d lateEarly=%d droppedRegular=%d",
			cfg, stats.Upstream, stats.Downstream,
			coord.Stats.LateEarlyMsgs, coord.Stats.DroppedRegular)
	}
}
