//go:build wrsmutation

package core

// mutationDropPool: the planted checkpoint bug is ACTIVE — ExportState
// drops the withheld pool. Only the chaos fuzzer's mutation self-test
// builds with this tag; see mutation_off.go for the full story.
const mutationDropPool = true
