//go:build !wrsmutation

package core

// mutationDropPool switches on a deliberately planted exactness bug:
// ExportState silently drops the withheld pool from the checkpoint, so
// a coordinator restored from it forgets every early item that had not
// been released into the sample yet — the classic persistence bug where
// a checkpoint misses part of the in-memory state. It exists solely for
// the chaos fuzzer's mutation self-test (internal/workload, build tag
// wrsmutation): a randomized schedule containing a snapshot + restart
// must detect the divergence and shrink it to a minimal reproducer.
// Normal builds compile it to false and the guarded branch is dead.
const mutationDropPool = false
