package core

import (
	"fmt"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// WindowSite is the per-site state machine of the distributed
// sliding-window application: weighted SWOR of size s over the most
// recent `width` items of each site's (shard-local) sub-stream. It is
// the first site machine whose relevant state is non-monotone — items
// expire — so it cannot use the epoch thresholds of Algorithm 1 (a
// threshold that is safe now may discard an item that re-enters the
// sample when heavier items expire). Instead it is push-only, built on
// the dominance structure of internal/window:
//
//   - Every arrival is stamped with the site-local position pos
//     (carried on the wire as WindowStamp(pos, site, k)) and keyed
//     immediately (one ExpKey per arrival, so seeded runs replay on
//     every runtime).
//   - The site keeps its own windowed retention structure and
//     maintains the invariant that every member of its *local window
//     top-s* has been sent: the union window top-s is contained in the
//     union of per-site top-s sets (any global top item has fewer than
//     s dominators in the union window, hence fewer than s in its own
//     site's window), so the coordinator always holds a superset of
//     the true sample — the same sandwich argument that makes sharded
//     merges exact. Items below the local top-s are buffered unsent;
//     when expiries promote one into the top-s (which can only happen
//     during a local arrival — the site's window only moves then), it
//     is sent with its original stamp.
//   - Exactness also needs the coordinator to *expire* what this site
//     has sent: whenever a sent item falls out of the local window and
//     no message of this arrival carries the current position, the
//     site emits a MsgClock stamp (amortized at most one clock per
//     sent item — each clock covers at least the expired minimum).
//
// The hot path is incremental (DESIGN.md §13): instead of re-deriving
// the top-s threshold from scratch and sweeping every retained entry
// per arrival, the site maintains
//
//   - top: a min-heap holding exactly the top-min(s, live) entries of
//     the retained set (each retained entry carries an inTop flag);
//     its root is the send threshold whenever more than s entries are
//     live, matching the old full-rebuild sthKey value bit for bit
//     (lazily retained dominated entries are never in the live top-s,
//     so the top-s multiset — and hence its minimum — is unchanged);
//   - rest: a lazy max-heap of (key, pos) records for entries below
//     the top; records of expired, compacted-away, or promoted entries
//     go stale and are skipped on pop (a record is live iff its pos
//     still resolves into the retained array and is not in top). The
//     heap order invariant max(rest) <= min(top) is restored after
//     each arrival with at most one promotion (the single possible
//     expiry) plus at most one swap (the single new arrival);
//   - dominance is pruned lazily exactly as in window.Retention: a
//     backward suffix-top-s compaction triggered when the live count
//     doubles, equivalent to the eager per-arrival rule because the s
//     largest of an entry's later-larger arrivals survive every
//     compaction. Expiry is a prefix drop handled by advancing start
//     and reusing the backing array in place.
//
// The common case — new key below threshold, no expiry touching the
// top — is O(log s): one heap push and one comparison. The message
// sequence is bit-identical to the per-arrival O(kept) implementation
// it replaced (same RNG draws, same sent sets in the same order, same
// clocks), which the pinned windowed-protocol suites verify.
//
// No broadcasts exist in this protocol: HandleBroadcast ignores
// everything, which is also what makes the machine trivially safe on
// asynchronous runtimes (there is no control plane to go stale).
type WindowSite struct {
	id    int
	cfg   Config
	width int
	rng   *xrand.RNG
	n     int // site-local (= shard-local per machine) arrivals

	start   int           // kept[start:] are the live entries
	kept    []windowEntry // ascending pos from start
	pruneAt int           // live count triggering the next dominance compaction

	top        []heapRec // min-heap by key: the live top-min(s, live)
	rest       []heapRec // max-heap by key: below-top records, lazily invalidated
	pending    []int     // scratch: positions to send this arrival
	keyScratch []float64 // scratch: compaction's suffix top-s heap

	frontier int   // highest pos stamped on any sent message; -1 before any
	sentPos  []int // min-heap: sent positions the coordinator may retain

	// Diagnostics.
	Observed int64
	Sent     int64 // total upstream messages (candidates + clocks)
	Clocks   int64 // MsgClock messages within Sent
	MaxKept  int   // high-water retained count (lazy, so up to ~2x eager)
}

type windowEntry struct {
	pos   int
	key   float64
	item  stream.Item
	sent  bool
	inTop bool
}

// heapRec is a (key, pos) record in the top and rest heaps.
type heapRec struct {
	key float64
	pos int
}

// NewWindowSite returns the windowed state machine for site id. Each
// site needs an independently seeded RNG (split order: see DESIGN.md
// §10 and docs/PLUGINS.md).
func NewWindowSite(id int, cfg Config, width int, rng *xrand.RNG) *WindowSite {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if width < 1 {
		panic(fmt.Sprintf("core: window width must be >= 1, got %d", width))
	}
	st := &WindowSite{id: id, cfg: cfg, width: width, rng: rng, frontier: -1}
	st.setPruneAt(cfg.S)
	return st
}

// ID returns the site's identifier.
func (st *WindowSite) ID() int { return st.id }

// Width returns the window width in sub-stream items.
func (st *WindowSite) Width() int { return st.width }

// N returns the number of items observed by this machine.
func (st *WindowSite) N() int { return st.n }

// Resume fast-forwards a fresh machine's sequence position to n, so a
// replacement site continues the sub-stream where a crashed machine
// left it. The windowed protocol's exactness depends on per-site
// positions never being reused: the coordinator's retention clock only
// moves forward, so a replacement starting again at position 0 would
// see every candidate it sends dropped as pre-expired. The machine
// starts with an empty local window — whatever the dead site retained
// is gone, which the delivery-relative oracle accounts for naturally
// (unsent candidates were never acknowledged).
func (st *WindowSite) Resume(n int) error {
	if n < 0 {
		return fmt.Errorf("core: cannot resume window site at negative position %d", n)
	}
	if st.n != 0 || st.Sent != 0 {
		return fmt.Errorf("core: Resume requires a fresh site machine (observed %d, sent %d)", st.n, st.Sent)
	}
	st.n = n
	return nil
}

// Buffered returns the current retention size (sent and unsent; lazy,
// so up to ~2x the eager dominance-pruned count — see Compact).
func (st *WindowSite) Buffered() int { return st.live() }

func (st *WindowSite) live() int { return len(st.kept) - st.start }

// setPruneAt mirrors window.Retention: next compaction at double the
// live count, clamped below width.
func (st *WindowSite) setPruneAt(n int) {
	p := 2*n + st.cfg.S
	if p >= st.width {
		p = st.width - 1
	}
	st.pruneAt = p
}

// Observe processes one local arrival, emitting any resulting
// sequence-stamped messages through send.
func (st *WindowSite) Observe(it stream.Item, send func(Message)) error {
	if err := validWeight(it.Weight); err != nil {
		return err
	}
	pos := st.n
	if pos > (MaxWindowStamp-st.id)/st.cfg.K {
		return fmt.Errorf("core: window sequence stamp overflow at position %d (site %d of %d)", pos, st.id, st.cfg.K)
	}
	st.n++
	st.Observed++
	key := st.rng.ExpKey(it.Weight)

	// Slide the local window: the clock advances by one, so at most the
	// single oldest live entry can expire.
	lo := st.n - st.width
	if st.start < len(st.kept) && st.kept[st.start].pos < lo {
		e := st.kept[st.start]
		st.kept[st.start] = windowEntry{}
		st.start++
		if e.inTop {
			st.topRemove(e.pos)
		}
		if st.start == len(st.kept) {
			st.kept = st.kept[:0]
			st.start = 0
		}
	}

	// Append the new arrival, recycling the backing array in place when
	// the expired prefix would otherwise force a reallocation.
	if len(st.kept) == cap(st.kept) && st.start > 0 {
		st.compactFront()
	}
	st.kept = append(st.kept, windowEntry{pos: pos, key: key, item: it})
	st.restPush(heapRec{key: key, pos: pos})
	if st.live() > st.MaxKept {
		st.MaxKept = st.live()
	}

	// Restore the top-s invariant and collect the entries the old
	// full-sweep would newly send: at most one promotion refilling the
	// expiry, the new arrival, and (measure-zero) ties at the threshold.
	st.pending = st.pending[:0]
	for len(st.top) < st.cfg.S {
		r, ok := st.restPopLive()
		if !ok {
			break
		}
		st.promote(r)
	}
	if len(st.top) == st.cfg.S && st.live() > st.cfg.S {
		// Only the new arrival can sit in rest above the top root; one
		// swap restores max(rest) <= min(top). The demoted root was sent
		// in an earlier arrival (every top member is), so it just moves
		// back below the threshold.
		if r, ok := st.restPeekLive(); ok && r.key > st.top[0].key {
			st.restPopMax()
			root := st.topPopRoot()
			st.restPush(root)
			st.promote(r)
		}
	}
	th := -1.0
	if st.live() > st.cfg.S {
		th = st.top[0].key
		st.collectTies(th)
	}
	if len(st.rest) > 2*st.live()+st.cfg.S {
		st.rebuildRest()
	}

	// Send pending promotions in ascending position order — the order
	// the old sweep over the position-sorted retained array produced.
	st.sortPending()
	for _, p := range st.pending {
		e := &st.kept[st.start+st.findLive(p)]
		e.sent = true
		st.Sent++
		if e.pos > st.frontier {
			st.frontier = e.pos
		}
		st.pushSent(e.pos)
		send(Message{Kind: MsgWindow, Item: e.item, Key: e.key, Level: WindowStamp(e.pos, st.id, st.cfg.K)})
	}
	st.dropCovered()

	// A sent item expired, but no message of this arrival carried the
	// current position (a promotion's stamp is its original, older pos):
	// advance the coordinator's clock explicitly so it can expire it.
	if len(st.sentPos) > 0 && st.sentPos[0] < lo {
		st.Sent++
		st.Clocks++
		st.frontier = pos
		send(Message{Kind: MsgClock, Level: WindowStamp(pos, st.id, st.cfg.K)})
		st.dropCovered()
	}

	// Dominance compaction runs last, once top is the exact top-s of
	// the live set including this arrival: a true top-s member has
	// fewer than s larger live keys anywhere, so in particular fewer
	// than s later-larger ones, and can never be dropped here. Running
	// it earlier would compact against a top heap that is stale with
	// respect to the new key.
	if st.live() > st.pruneAt {
		st.compact()
	}
	return nil
}

// HandleBroadcast ignores every announcement: the windowed protocol is
// push-only and has no coordinator-to-site control plane.
func (st *WindowSite) HandleBroadcast(Message) {}

// Threshold returns the current send threshold: the s-th largest live
// key, or -1 while at most s entries are live (diagnostics and the
// lockstep/fuzz suites).
func (st *WindowSite) Threshold() float64 {
	if st.live() > st.cfg.S {
		return st.top[0].key
	}
	return -1
}

// Compact eagerly applies the dominance rule (tests: makes Buffered
// comparable with an eagerly pruned reference).
func (st *WindowSite) Compact() { st.compact() }

// findLive returns the index of pos within the live slice kept[start:],
// or -1. Live entries are strictly ascending by pos.
func (st *WindowSite) findLive(pos int) int {
	live := st.kept[st.start:]
	lo, hi := 0, len(live)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if live[mid].pos < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(live) && live[lo].pos == pos {
		return lo
	}
	return -1
}

// promote moves a validated rest record into the top heap; unsent
// promotions are queued for sending.
func (st *WindowSite) promote(r heapRec) {
	e := &st.kept[st.start+st.findLive(r.pos)]
	e.inTop = true
	if !e.sent {
		st.pending = append(st.pending, r.pos)
	}
	st.top = append(st.top, r)
	for c := len(st.top) - 1; c > 0; {
		p := (c - 1) / 2
		if st.top[p].key <= st.top[c].key {
			break
		}
		st.top[p], st.top[c] = st.top[c], st.top[p]
		c = p
	}
}

// topPopRoot removes and returns the top heap's minimum, clearing its
// inTop flag and un-queuing it if it was promoted this same arrival
// (the spurious-promotion case: an entry refilled into the top that the
// new arrival immediately evicts was never in the final top-s, and the
// old sweep would not have sent it).
func (st *WindowSite) topPopRoot() heapRec {
	root := st.top[0]
	e := &st.kept[st.start+st.findLive(root.pos)]
	e.inTop = false
	for i, p := range st.pending {
		if p == root.pos {
			st.pending = append(st.pending[:i], st.pending[i+1:]...)
			break
		}
	}
	last := len(st.top) - 1
	st.top[0] = st.top[last]
	st.top = st.top[:last]
	st.topSiftDown(0)
	return root
}

// topRemove deletes the record for pos from the top heap (expiry path;
// O(s) find plus O(log s) repair).
func (st *WindowSite) topRemove(pos int) {
	for i := range st.top {
		if st.top[i].pos == pos {
			last := len(st.top) - 1
			st.top[i] = st.top[last]
			st.top = st.top[:last]
			if i < last {
				st.topSiftDown(i)
				st.topSiftUp(i)
			}
			return
		}
	}
}

func (st *WindowSite) topSiftUp(c int) {
	for c > 0 {
		p := (c - 1) / 2
		if st.top[p].key <= st.top[c].key {
			return
		}
		st.top[p], st.top[c] = st.top[c], st.top[p]
		c = p
	}
}

func (st *WindowSite) topSiftDown(c int) {
	for {
		l, r := 2*c+1, 2*c+2
		m := c
		if l < len(st.top) && st.top[l].key < st.top[m].key {
			m = l
		}
		if r < len(st.top) && st.top[r].key < st.top[m].key {
			m = r
		}
		if m == c {
			return
		}
		st.top[m], st.top[c] = st.top[c], st.top[m]
		c = m
	}
}

// restPush adds a record to the rest max-heap.
func (st *WindowSite) restPush(r heapRec) {
	st.rest = append(st.rest, r)
	for c := len(st.rest) - 1; c > 0; {
		p := (c - 1) / 2
		if st.rest[p].key >= st.rest[c].key {
			break
		}
		st.rest[p], st.rest[c] = st.rest[c], st.rest[p]
		c = p
	}
}

// restPopMax removes the maximum record without validation.
func (st *WindowSite) restPopMax() heapRec {
	root := st.rest[0]
	last := len(st.rest) - 1
	st.rest[0] = st.rest[last]
	st.rest = st.rest[:last]
	st.restSiftDown(0)
	return root
}

func (st *WindowSite) restSiftDown(c int) {
	for {
		l, r := 2*c+1, 2*c+2
		m := c
		if l < len(st.rest) && st.rest[l].key > st.rest[m].key {
			m = l
		}
		if r < len(st.rest) && st.rest[r].key > st.rest[m].key {
			m = r
		}
		if m == c {
			return
		}
		st.rest[m], st.rest[c] = st.rest[c], st.rest[m]
		c = m
	}
}

// restValid reports whether a rest record still names a live, below-top
// entry (stale records name expired, compacted-away, or promoted ones).
func (st *WindowSite) restValid(r heapRec) bool {
	i := st.findLive(r.pos)
	return i >= 0 && !st.kept[st.start+i].inTop
}

// restPeekLive discards stale records until the maximum is live, and
// returns it without removing it.
func (st *WindowSite) restPeekLive() (heapRec, bool) {
	for len(st.rest) > 0 {
		if st.restValid(st.rest[0]) {
			return st.rest[0], true
		}
		st.restPopMax()
	}
	return heapRec{}, false
}

// restPopLive removes and returns the maximum live record.
func (st *WindowSite) restPopLive() (heapRec, bool) {
	r, ok := st.restPeekLive()
	if ok {
		st.restPopMax()
	}
	return r, ok
}

// collectTies queues unsent rest entries whose key equals the threshold
// (the old sweep's rule is key >= th; with continuous keys this branch
// has measure zero, but the rule is preserved exactly).
func (st *WindowSite) collectTies(th float64) {
	if r, ok := st.restPeekLive(); !ok || r.key < th {
		return
	}
	var hold []heapRec
	for len(st.rest) > 0 {
		r, ok := st.restPeekLive()
		if !ok || r.key < th {
			break
		}
		st.restPopMax()
		hold = append(hold, r)
		e := &st.kept[st.start+st.findLive(r.pos)]
		if !e.sent {
			st.pending = append(st.pending, r.pos)
		}
	}
	for _, r := range hold {
		st.restPush(r)
	}
}

// rebuildRest re-derives the rest heap from the live below-top entries,
// shedding accumulated stale records (Floyd heapify, O(live)).
func (st *WindowSite) rebuildRest() {
	st.rest = st.rest[:0]
	for i := st.start; i < len(st.kept); i++ {
		if !st.kept[i].inTop {
			st.rest = append(st.rest, heapRec{key: st.kept[i].key, pos: st.kept[i].pos})
		}
	}
	for i := len(st.rest)/2 - 1; i >= 0; i-- {
		st.restSiftDown(i)
	}
}

// compactFront slides the live entries to the front of the backing
// array, reclaiming the expired prefix without reallocating.
func (st *WindowSite) compactFront() {
	n := copy(st.kept, st.kept[st.start:])
	tail := st.kept[n:]
	for i := range tail {
		tail[i] = windowEntry{}
	}
	st.kept = st.kept[:n]
	st.start = 0
}

// compact applies the dominance rule eagerly: one backward pass with
// the suffix top-s min-heap drops every entry with at least s later,
// strictly larger live entries (the window.Retention rule). Top members
// are never dropped — a live top-s entry has fewer than s larger keys
// anywhere in the window — so the top heap survives unchanged; rest is
// rebuilt, shedding records of the dropped.
func (st *WindowSite) compact() {
	live := st.kept[st.start:]
	h := st.keyScratch[:0]
	out := len(live)
	for i := len(live) - 1; i >= 0; i-- {
		e := live[i]
		// The !inTop guard is belt-and-braces: compact runs only after
		// the top heap is exact for the current live set, and an exact
		// top-s member is never dominated.
		if len(h) == st.cfg.S && h[0] > e.key && !e.inTop {
			continue
		}
		h = pushTopKeyCore(h, e.key, st.cfg.S)
		out--
		live[out] = e
	}
	n := copy(st.kept, live[out:])
	tail := st.kept[n:]
	for i := range tail {
		tail[i] = windowEntry{}
	}
	st.kept = st.kept[:n]
	st.start = 0
	st.keyScratch = h
	st.setPruneAt(n)
	st.rebuildRest()
}

// pushTopKeyCore folds k into the min-heap h of the up-to-s largest
// keys (the same helper window.Retention uses for its compaction).
func pushTopKeyCore(h []float64, k float64, s int) []float64 {
	if len(h) < s {
		h = append(h, k)
		for c := len(h) - 1; c > 0; {
			p := (c - 1) / 2
			if h[p] <= h[c] {
				break
			}
			h[p], h[c] = h[c], h[p]
			c = p
		}
		return h
	}
	if k <= h[0] {
		return h
	}
	h[0] = k
	for c := 0; ; {
		l, r := 2*c+1, 2*c+2
		m := c
		if l < len(h) && h[l] < h[m] {
			m = l
		}
		if r < len(h) && h[r] < h[m] {
			m = r
		}
		if m == c {
			break
		}
		h[m], h[c] = h[c], h[m]
		c = m
	}
	return h
}

// sortPending orders the pending positions ascending (insertion sort:
// at most a promotion, the new arrival, and rare ties).
func (st *WindowSite) sortPending() {
	for i := 1; i < len(st.pending); i++ {
		v := st.pending[i]
		j := i
		for j > 0 && st.pending[j-1] > v {
			st.pending[j] = st.pending[j-1]
			j--
		}
		st.pending[j] = v
	}
}

// pushSent records a sent position in the min-heap of positions the
// coordinator may still retain.
func (st *WindowSite) pushSent(pos int) {
	st.sentPos = append(st.sentPos, pos)
	for c := len(st.sentPos) - 1; c > 0; {
		p := (c - 1) / 2
		if st.sentPos[p] <= st.sentPos[c] {
			break
		}
		st.sentPos[p], st.sentPos[c] = st.sentPos[c], st.sentPos[p]
		c = p
	}
}

// dropCovered pops sent positions the coordinator has provably expired:
// a stamp at frontier advances its clock to frontier+1, expiring
// everything at or below frontier-width.
func (st *WindowSite) dropCovered() {
	bound := st.frontier - st.width
	for len(st.sentPos) > 0 && st.sentPos[0] <= bound {
		last := len(st.sentPos) - 1
		st.sentPos[0] = st.sentPos[last]
		st.sentPos = st.sentPos[:last]
		for c := 0; ; {
			l, r := 2*c+1, 2*c+2
			m := c
			if l < len(st.sentPos) && st.sentPos[l] < st.sentPos[m] {
				m = l
			}
			if r < len(st.sentPos) && st.sentPos[r] < st.sentPos[m] {
				m = r
			}
			if m == c {
				break
			}
			st.sentPos[m], st.sentPos[c] = st.sentPos[c], st.sentPos[m]
			c = m
		}
	}
}
