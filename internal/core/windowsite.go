package core

import (
	"fmt"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// WindowSite is the per-site state machine of the distributed
// sliding-window application: weighted SWOR of size s over the most
// recent `width` items of each site's (shard-local) sub-stream. It is
// the first site machine whose relevant state is non-monotone — items
// expire — so it cannot use the epoch thresholds of Algorithm 1 (a
// threshold that is safe now may discard an item that re-enters the
// sample when heavier items expire). Instead it is push-only, built on
// the dominance structure of internal/window:
//
//   - Every arrival is stamped with the site-local position pos
//     (carried on the wire as WindowStamp(pos, site, k)) and keyed
//     immediately (one ExpKey per arrival, so seeded runs replay on
//     every runtime).
//   - The site keeps its own windowed retention structure and
//     maintains the invariant that every member of its *local window
//     top-s* has been sent: the union window top-s is contained in the
//     union of per-site top-s sets (any global top item has fewer than
//     s dominators in the union window, hence fewer than s in its own
//     site's window), so the coordinator always holds a superset of
//     the true sample — the same sandwich argument that makes sharded
//     merges exact. Items below the local top-s are buffered unsent;
//     when expiries promote one into the top-s (which can only happen
//     during a local arrival — the site's window only moves then), it
//     is sent with its original stamp.
//   - Exactness also needs the coordinator to *expire* what this site
//     has sent: whenever a sent item falls out of the local window and
//     no message of this arrival carries the current position, the
//     site emits a MsgClock stamp (amortized at most one clock per
//     sent item — each clock covers at least the expired minimum).
//
// No broadcasts exist in this protocol: HandleBroadcast ignores
// everything, which is also what makes the machine trivially safe on
// asynchronous runtimes (there is no control plane to go stale).
type WindowSite struct {
	id    int
	cfg   Config
	width int
	rng   *xrand.RNG
	n     int           // site-local (= shard-local per machine) arrivals
	kept  []windowEntry // ascending pos, in-window, < s later dominators

	frontier int   // highest pos stamped on any sent message; -1 before any
	sentPos  []int // min-heap: sent positions the coordinator may retain
	scratch  []float64

	// Diagnostics.
	Observed int64
	Sent     int64 // total upstream messages (candidates + clocks)
	Clocks   int64 // MsgClock messages within Sent
	MaxKept  int   // high-water retained count
}

type windowEntry struct {
	pos        int
	key        float64
	item       stream.Item
	dominators int
	sent       bool
}

// NewWindowSite returns the windowed state machine for site id. Each
// site needs an independently seeded RNG (split order: see DESIGN.md
// §10 and docs/PLUGINS.md).
func NewWindowSite(id int, cfg Config, width int, rng *xrand.RNG) *WindowSite {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if width < 1 {
		panic(fmt.Sprintf("core: window width must be >= 1, got %d", width))
	}
	return &WindowSite{id: id, cfg: cfg, width: width, rng: rng, frontier: -1}
}

// ID returns the site's identifier.
func (st *WindowSite) ID() int { return st.id }

// Width returns the window width in sub-stream items.
func (st *WindowSite) Width() int { return st.width }

// N returns the number of items observed by this machine.
func (st *WindowSite) N() int { return st.n }

// Buffered returns the current retention size (sent and unsent).
func (st *WindowSite) Buffered() int { return len(st.kept) }

// Observe processes one local arrival, emitting any resulting
// sequence-stamped messages through send.
func (st *WindowSite) Observe(it stream.Item, send func(Message)) error {
	if err := validWeight(it.Weight); err != nil {
		return err
	}
	pos := st.n
	if pos > (MaxWindowStamp-st.id)/st.cfg.K {
		return fmt.Errorf("core: window sequence stamp overflow at position %d (site %d of %d)", pos, st.id, st.cfg.K)
	}
	st.n++
	st.Observed++
	key := st.rng.ExpKey(it.Weight)

	// Slide the local window: expire, then update dominance against the
	// new arrival, then append it. This is the window.Retention rule
	// (in-order fast path) inlined so each entry can carry its sent
	// flag; TestWindowSiteRetentionLockstep pins that the two stay the
	// same rule — a change to one without the other breaks the
	// site/coordinator sandwich invariant.
	lo := st.n - st.width
	trim := 0
	for trim < len(st.kept) && st.kept[trim].pos < lo {
		trim++
	}
	st.kept = st.kept[trim:]
	dst := st.kept[:0]
	for i := range st.kept {
		e := st.kept[i]
		if e.key < key {
			e.dominators++
		}
		if e.dominators < st.cfg.S {
			dst = append(dst, e)
		}
	}
	st.kept = append(dst, windowEntry{pos: pos, key: key, item: it})
	if len(st.kept) > st.MaxKept {
		st.MaxKept = len(st.kept)
	}

	// Restore the invariant: every unsent member of the local window
	// top-s goes out now (the new arrival, plus anything an expiry just
	// promoted).
	th := st.sthKey()
	for i := range st.kept {
		e := &st.kept[i]
		if !e.sent && e.key >= th {
			e.sent = true
			st.Sent++
			if e.pos > st.frontier {
				st.frontier = e.pos
			}
			st.pushSent(e.pos)
			send(Message{Kind: MsgWindow, Item: e.item, Key: e.key, Level: WindowStamp(e.pos, st.id, st.cfg.K)})
		}
	}
	st.dropCovered()

	// A sent item expired, but no message of this arrival carried the
	// current position (a promotion's stamp is its original, older pos):
	// advance the coordinator's clock explicitly so it can expire it.
	if len(st.sentPos) > 0 && st.sentPos[0] < lo {
		st.Sent++
		st.Clocks++
		st.frontier = pos
		send(Message{Kind: MsgClock, Level: WindowStamp(pos, st.id, st.cfg.K)})
		st.dropCovered()
	}
	return nil
}

// HandleBroadcast ignores every announcement: the windowed protocol is
// push-only and has no coordinator-to-site control plane.
func (st *WindowSite) HandleBroadcast(Message) {}

// sthKey returns the s-th largest key among retained items, or -1 when
// fewer than s are retained (everything is then in the local top-s; the
// retained set always contains the local window top-s).
func (st *WindowSite) sthKey() float64 {
	if len(st.kept) <= st.cfg.S {
		return -1
	}
	// Min-heap of the s largest keys; the root is the threshold.
	h := st.scratch[:0]
	for i := range st.kept {
		k := st.kept[i].key
		if len(h) < st.cfg.S {
			h = append(h, k)
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if h[p] <= h[c] {
					break
				}
				h[p], h[c] = h[c], h[p]
				c = p
			}
		} else if k > h[0] {
			h[0] = k
			for c := 0; ; {
				l, r := 2*c+1, 2*c+2
				m := c
				if l < len(h) && h[l] < h[m] {
					m = l
				}
				if r < len(h) && h[r] < h[m] {
					m = r
				}
				if m == c {
					break
				}
				h[m], h[c] = h[c], h[m]
				c = m
			}
		}
	}
	st.scratch = h
	return h[0]
}

// pushSent records a sent position in the min-heap of positions the
// coordinator may still retain.
func (st *WindowSite) pushSent(pos int) {
	st.sentPos = append(st.sentPos, pos)
	for c := len(st.sentPos) - 1; c > 0; {
		p := (c - 1) / 2
		if st.sentPos[p] <= st.sentPos[c] {
			break
		}
		st.sentPos[p], st.sentPos[c] = st.sentPos[c], st.sentPos[p]
		c = p
	}
}

// dropCovered pops sent positions the coordinator has provably expired:
// a stamp at frontier advances its clock to frontier+1, expiring
// everything at or below frontier-width.
func (st *WindowSite) dropCovered() {
	bound := st.frontier - st.width
	for len(st.sentPos) > 0 && st.sentPos[0] <= bound {
		last := len(st.sentPos) - 1
		st.sentPos[0] = st.sentPos[last]
		st.sentPos = st.sentPos[:last]
		for c := 0; ; {
			l, r := 2*c+1, 2*c+2
			m := c
			if l < len(st.sentPos) && st.sentPos[l] < st.sentPos[m] {
				m = l
			}
			if r < len(st.sentPos) && st.sentPos[r] < st.sentPos[m] {
				m = r
			}
			if m == c {
				break
			}
			st.sentPos[m], st.sentPos[c] = st.sentPos[c], st.sentPos[m]
			c = m
		}
	}
}
