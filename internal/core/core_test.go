package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{K: 0, S: 1}).Validate(); err == nil {
		t.Error("K=0 accepted")
	}
	if err := (Config{K: 1, S: 0}).Validate(); err == nil {
		t.Error("S=0 accepted")
	}
	if err := (Config{K: 4, S: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestConfigR(t *testing.T) {
	if r := (Config{K: 4, S: 16}).R(); r != 2 {
		t.Errorf("R = %v, want 2 (k/s < 2 clamps to 2)", r)
	}
	if r := (Config{K: 64, S: 4}).R(); r != 16 {
		t.Errorf("R = %v, want 16", r)
	}
}

func TestConfigLevelCap(t *testing.T) {
	// cap = ceil(4rs) = max(8s, 4k).
	if c := (Config{K: 4, S: 16}).LevelCap(); c != 128 {
		t.Errorf("LevelCap = %d, want 128", c)
	}
	if c := (Config{K: 100, S: 4}).LevelCap(); c != 400 {
		t.Errorf("LevelCap = %d, want 400", c)
	}
}

func TestLevelOfDefinition(t *testing.T) {
	// Definition 4: level j satisfies w in [r^j, r^(j+1)); w < r -> 0.
	f := func(wRaw, rRaw float64) bool {
		w := math.Abs(wRaw)
		if w == 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			return true
		}
		// Keep w in a numerically sane range.
		w = math.Mod(w, 1e12)
		if w <= 0 {
			return true
		}
		r := 2 + math.Mod(math.Abs(rRaw), 30)
		j := levelOf(w, r)
		if j < 0 {
			return false
		}
		if w < r {
			return j == 0
		}
		return math.Pow(r, float64(j)) <= w && w < math.Pow(r, float64(j+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLevelOfBoundaries(t *testing.T) {
	cases := []struct {
		w, r float64
		want int
	}{
		{0.5, 2, 0}, {1, 2, 0}, {1.99, 2, 0}, {2, 2, 1}, {4, 2, 2},
		{8, 2, 3}, {1 << 20, 2, 20}, {15.9, 16, 0}, {16, 16, 1}, {256, 16, 2},
	}
	for _, c := range cases {
		if got := levelOf(c.w, c.r); got != c.want {
			t.Errorf("levelOf(%v, %v) = %d, want %d", c.w, c.r, got, c.want)
		}
	}
}

func TestEpochThresholdProperties(t *testing.T) {
	// The threshold never exceeds u and equals r^j for some j >= 0 (or 0).
	f := func(uRaw, rRaw float64) bool {
		u := math.Abs(uRaw)
		if math.IsInf(u, 0) || math.IsNaN(u) {
			return true
		}
		u = math.Mod(u, 1e15)
		r := 2 + math.Mod(math.Abs(rRaw), 30)
		th := epochThreshold(u, r)
		if th > u {
			return false
		}
		if u < 1 {
			return th == 0
		}
		if th <= 0 {
			return false
		}
		// th = r^j for integer j >= 0 and r*th > u (it is the largest
		// such power).
		j := math.Round(math.Log(th) / math.Log(r))
		if j < 0 || math.Abs(th-math.Pow(r, j)) > 1e-9*th {
			return false
		}
		return th*r > u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEpochThresholdMonotone(t *testing.T) {
	r := 2.0
	prev := 0.0
	for u := 0.1; u < 1e9; u *= 1.37 {
		th := epochThreshold(u, r)
		if th < prev {
			t.Fatalf("threshold decreased: %v -> %v at u=%v", prev, th, u)
		}
		prev = th
	}
}

func TestMessageWords(t *testing.T) {
	if w := (Message{Kind: MsgEarly}).Words(); w != 3 {
		t.Errorf("early words = %d", w)
	}
	if w := (Message{Kind: MsgRegular}).Words(); w != 4 {
		t.Errorf("regular words = %d", w)
	}
	if w := (Message{Kind: MsgEpochUpdate}).Words(); w != 2 {
		t.Errorf("epoch words = %d", w)
	}
}

func TestMsgKindString(t *testing.T) {
	for k, want := range map[MsgKind]string{
		MsgEarly: "early", MsgRegular: "regular",
		MsgLevelSaturated: "level-saturated", MsgEpochUpdate: "epoch-update",
		MsgKind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("MsgKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
