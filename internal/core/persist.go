package core

import (
	"fmt"
	"sort"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// CoordinatorState is a self-contained checkpoint of the coordinator
// state machine: everything HandleMessage reads or writes, including
// the RNG state that keys withheld items. A coordinator restored from
// it continues bit-exactly where the snapshot was taken — same sample,
// same future key draws, same broadcasts — which is what makes
// restart-from-snapshot a safe fault-recovery path (see DESIGN.md §15):
// the control plane is monotone, so sites holding a threshold from
// *after* the snapshot merely filter with a stale-high bound, which can
// only drop keys with at least s released dominators at the time that
// bound was broadcast.
type CoordinatorState struct {
	Cfg       Config
	RNG       [4]uint64
	U         float64
	Threshold float64
	Sample    []SampleEntry     // released top-s (heap order, content-significant only)
	Pool      []PoolEntryState  // withheld top-s with their levels
	Levels    []LevelStateEntry // per-level counters, ascending by level
	Stats     CoordStats
}

// PoolEntryState is one withheld item in a checkpoint.
type PoolEntryState struct {
	Key   float64
	Item  stream.Item
	Level int
}

// LevelStateEntry is one level-set counter in a checkpoint.
type LevelStateEntry struct {
	Level     int
	Count     int
	Saturated bool
}

// ExportState captures the coordinator as a CoordinatorState. The
// returned value shares nothing with the live coordinator; callers on
// concurrent runtimes must invoke it serialized with message processing
// (Runtime.Do / Snapshots.View), like every other state read.
func (c *Coordinator) ExportState() *CoordinatorState {
	st := &CoordinatorState{
		Cfg:       c.cfg,
		RNG:       c.rng.State(),
		U:         c.u,
		Threshold: c.curTh,
		Stats:     c.Stats,
		Sample:    make([]SampleEntry, 0, c.smp.Len()),
		Pool:      make([]PoolEntryState, 0, c.pool.Len()),
		Levels:    make([]LevelStateEntry, 0, len(c.levels)),
	}
	for _, e := range c.smp.Items() {
		st.Sample = append(st.Sample, SampleEntry{Key: e.Key, Item: e.Val})
	}
	for _, e := range c.pool.Items() {
		st.Pool = append(st.Pool, PoolEntryState{Key: e.Key, Item: e.Val.item, Level: e.Val.level})
	}
	//wrslint:allow detrand order-insensitive traversal: the snapshot is sorted by level below
	for j, lv := range c.levels {
		st.Levels = append(st.Levels, LevelStateEntry{Level: j, Count: lv.count, Saturated: lv.saturated})
	}
	sort.Slice(st.Levels, func(i, j int) bool { return st.Levels[i].Level < st.Levels[j].Level })
	if mutationDropPool {
		st.Pool = nil // planted checkpoint bug (wrsmutation builds only)
	}
	return st
}

// Validate checks the structural invariants a checkpoint must satisfy
// before it can be restored. It rejects corrupt snapshots rather than
// rebuilding a coordinator that would violate the O(s) bounds.
func (st *CoordinatorState) Validate() error {
	if err := st.Cfg.Validate(); err != nil {
		return fmt.Errorf("core: snapshot config: %w", err)
	}
	if st.RNG[0]|st.RNG[1]|st.RNG[2]|st.RNG[3] == 0 {
		return fmt.Errorf("core: snapshot has all-zero RNG state")
	}
	if len(st.Sample) > st.Cfg.S {
		return fmt.Errorf("core: snapshot sample holds %d entries, cap %d", len(st.Sample), st.Cfg.S)
	}
	if len(st.Pool) > st.Cfg.S {
		return fmt.Errorf("core: snapshot pool holds %d entries, cap %d", len(st.Pool), st.Cfg.S)
	}
	seen := -1
	for _, lv := range st.Levels {
		if lv.Level < 0 || lv.Level <= seen {
			return fmt.Errorf("core: snapshot levels not ascending and nonnegative at level %d", lv.Level)
		}
		seen = lv.Level
		if lv.Count < 0 {
			return fmt.Errorf("core: snapshot level %d has negative count", lv.Level)
		}
	}
	return nil
}

// RestoreCoordinator rebuilds a coordinator from a checkpoint taken
// with ExportState. The restored machine is behaviorally identical to
// the snapshotted one: same query, same statistics, and — because the
// RNG state is part of the checkpoint — the same keys for every future
// early message.
func RestoreCoordinator(st *CoordinatorState) (*Coordinator, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	c := NewCoordinator(st.Cfg, xrand.New(0))
	if err := c.RestoreState(st); err != nil {
		return nil, err
	}
	return c, nil
}

// RestoreState overwrites the coordinator with a checkpoint in place,
// keeping every outstanding pointer to it valid — the restart path of
// the chaos engine, where application descriptors and runtimes hold the
// coordinator by reference and a restart must not strand them on the
// dead pre-crash object. The checkpoint's config must match the
// coordinator's own: a restart never changes the protocol parameters.
// The attached recorder, if any, is kept.
func (c *Coordinator) RestoreState(st *CoordinatorState) error {
	if err := st.Validate(); err != nil {
		return err
	}
	if st.Cfg != c.cfg {
		return fmt.Errorf("core: snapshot config %+v does not match coordinator config %+v", st.Cfg, c.cfg)
	}
	c.rng = xrand.NewFromState(st.RNG)
	c.u = st.U
	c.curTh = st.Threshold
	c.Stats = st.Stats
	c.smp.Reset()
	for _, e := range st.Sample {
		c.smp.Offer(e.Key, e.Item)
	}
	c.pool.Reset()
	for _, e := range st.Pool {
		c.pool.Offer(e.Key, poolItem{item: e.Item, level: e.Level})
	}
	c.levels = make(map[int]*levelState, len(st.Levels))
	for _, lv := range st.Levels {
		c.levels[lv.Level] = &levelState{count: lv.Count, saturated: lv.Saturated}
	}
	return nil
}
