package core

import (
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func TestCoordStatsBroadcasts(t *testing.T) {
	s := CoordStats{Saturations: 3, EpochAdvances: 4}
	if got := s.Broadcasts(); got != 7 {
		t.Errorf("Broadcasts = %d, want 7", got)
	}
}

func TestRecorderKeyLookup(t *testing.T) {
	r := NewRecorder()
	r.Record(5, 1.25)
	r.Record(9, 2.5)
	if k, ok := r.Key(9); !ok || k != 2.5 {
		t.Errorf("Key(9) = (%v, %v)", k, ok)
	}
	if _, ok := r.Key(404); ok {
		t.Error("Key(404) found")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestSiteID(t *testing.T) {
	s := NewSite(3, Config{K: 4, S: 2}, xrand.New(1))
	if s.ID() != 3 {
		t.Errorf("ID = %d", s.ID())
	}
}

func TestConstructorsPanicOnBadConfig(t *testing.T) {
	for name, fn := range map[string]func(){
		"NewSite":        func() { NewSite(0, Config{K: 0, S: 1}, xrand.New(1)) },
		"NewCoordinator": func() { NewCoordinator(Config{K: 1, S: 0}, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on invalid config", name)
				}
			}()
			fn()
		}()
	}
}

func TestEpochThresholdRoundingGuards(t *testing.T) {
	// Values engineered near r^j boundaries where floor(log) can
	// overshoot; the guard must keep threshold <= u.
	for _, r := range []float64{2, 3, 16, 31.7} {
		u := 1.0
		for j := 0; j < 40; j++ {
			u *= r
			for _, probe := range []float64{u * (1 - 1e-15), u, u * (1 + 1e-15)} {
				th := epochThreshold(probe, r)
				if th > probe {
					t.Fatalf("threshold %v exceeds u %v (r=%v)", th, probe, r)
				}
			}
		}
	}
	if th := epochThreshold(0.999999, 2); th != 0 {
		t.Errorf("threshold below 1 = %v", th)
	}
}

func TestLevelOfExtremes(t *testing.T) {
	// Very large weights and boundary-adjacent values.
	for _, w := range []float64{1e300, 1e-300, 1} {
		j := levelOf(w, 2)
		if j < 0 {
			t.Errorf("levelOf(%v) = %d", w, j)
		}
	}
	// Exact powers across a large range.
	r := 2.0
	for j := 0; j < 200; j++ {
		w := 1.0
		for i := 0; i < j; i++ {
			w *= r
		}
		if got := levelOf(w, r); got != j {
			t.Fatalf("levelOf(2^%d) = %d", j, got)
		}
	}
}

func TestObserveRepeatedZeroAndNegativeCount(t *testing.T) {
	cfg := Config{K: 1, S: 1}
	s := NewSite(0, cfg, xrand.New(2))
	sent := 0
	send := func(Message) { sent++ }
	if err := s.ObserveRepeated(stream.Item{ID: 1, Weight: 1}, 0, send); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveRepeated(stream.Item{ID: 1, Weight: 1}, -5, send); err != nil {
		t.Fatal(err)
	}
	if sent != 0 {
		t.Errorf("zero-count ObserveRepeated sent %d messages", sent)
	}
}
