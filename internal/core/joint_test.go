package core

import (
	"math"
	"testing"

	"wrs/internal/sample"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// TestDistributedJointLaw validates the full protocol against the exact
// *pairwise* inclusion law of weighted SWOR — the dependence structure
// that distinguishes genuine sampling without replacement from anything
// that merely matches the marginals. This exercises level sets, epochs
// and filtering end to end.
func TestDistributedJointLaw(t *testing.T) {
	weights := []float64{1, 2, 4, 8}
	const trials = 60000
	cfg := Config{K: 2, S: 2}
	want := sample.PairInclusionProbs(weights, cfg.S)
	counts := make([][]float64, len(weights))
	for i := range counts {
		counts[i] = make([]float64, len(weights))
	}
	for tr := 0; tr < trials; tr++ {
		cl, coord := newTestCluster(cfg, uint64(tr)*1099511628211+7, nil)
		for i, w := range weights {
			if err := cl.Feed(i%cfg.K, stream.Item{ID: uint64(i), Weight: w}); err != nil {
				t.Fatal(err)
			}
		}
		q := coord.Query()
		for a := 0; a < len(q); a++ {
			for b := a + 1; b < len(q); b++ {
				i, j := q[a].Item.ID, q[b].Item.ID
				counts[i][j]++
				counts[j][i]++
			}
		}
	}
	for i := range weights {
		for j := range weights {
			if i == j {
				continue
			}
			got := counts[i][j] / trials
			sigma := math.Sqrt(want[i][j] * (1 - want[i][j]) / trials)
			if math.Abs(got-want[i][j]) > 5*sigma+1e-9 {
				t.Errorf("joint law pair (%d,%d): got %v, want %v (5 sigma %v)",
					i, j, got, want[i][j], 5*sigma)
			}
		}
	}
}

// TestExactInvariantRandomConfigs fuzzes small random configurations and
// weight patterns through the exactness check.
func TestExactInvariantRandomConfigs(t *testing.T) {
	rng := xrand.New(4242)
	for trial := 0; trial < 40; trial++ {
		cfg := Config{K: 1 + rng.Intn(12), S: 1 + rng.Intn(12)}
		rec := NewRecorder()
		cl, coord := newTestCluster(cfg, rng.Uint64(), rec)
		n := 20 + rng.Intn(150)
		for i := 0; i < n; i++ {
			// Mixture: occasional giants among mundane weights.
			w := 1 + 9*rng.Float64()
			if rng.Intn(10) == 0 {
				w *= math.Pow(10, float64(1+rng.Intn(8)))
			}
			site := rng.Intn(cfg.K)
			if err := cl.Feed(site, stream.Item{ID: uint64(i), Weight: w}); err != nil {
				t.Fatal(err)
			}
			checkExactTopS(t, coord, rec, i+1)
		}
	}
}
