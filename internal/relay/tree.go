package relay

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/transport"
)

// IngestTier adapts the relay fabric to transport.IngestBenchOpts
// .TreeDial: it returns a hook that builds depth tiers of the given
// fanout over the bench server's address and routes bench connection i
// to leaf relay i mod leaves — the same topology NewTreeCluster gives
// sites. cfg must match the bench's server configuration (relay filter
// machines size their top-s from cfg.S).
func IngestTier(cfg core.Config, shards, fanout, depth int, opts Options) func(serverAddr string) (func(conn int) string, func() error, error) {
	return func(serverAddr string) (func(conn int) string, func() error, error) {
		if err := netsim.ValidateTree(fanout, depth); err != nil {
			return nil, nil, err
		}
		sizes := netsim.TreeTierSizes(cfg.K, fanout, depth)
		tiers := make([][]*Relay, depth)
		teardown := func() error {
			var errs []error
			for t := len(tiers) - 1; t >= 0; t-- {
				for _, r := range tiers[t] {
					if r != nil {
						errs = append(errs, r.Close())
					}
				}
			}
			return errors.Join(errs...)
		}
		for t, n := range sizes {
			tiers[t] = make([]*Relay, n)
			for node := range tiers[t] {
				parentAddr := serverAddr
				if t > 0 {
					parentAddr = tiers[t-1][node%len(tiers[t-1])].Addr()
				}
				r, err := New(cfg, shards, parentAddr, "", opts)
				if err != nil {
					teardown()
					return nil, nil, err
				}
				tiers[t][node] = r
			}
		}
		leaves := tiers[depth-1]
		return func(conn int) string { return leaves[conn%len(leaves)].Addr() }, teardown, nil
	}
}

// TierStats is one relay tier's traffic accounting in a TreeCluster.
type TierStats struct {
	Nodes        int   // relay nodes in this tier
	Forwarded    int64 // upstream messages the tier passed toward the root
	Filtered     int64 // upstream messages the tier swallowed
	DownMessages int64 // broadcast messages the tier delivered to its children
	DownWords    int64
}

// TreeCluster is the deployment-shaped runtime over a hierarchical
// relay tree: one CoordinatorServer hosting all protocol shards, depth
// tiers of Relay nodes, and one SiteClient per site attached to a leaf
// relay. The root terminates min(fanout, k) connections instead of k;
// every tier pre-filters upstream candidates and fans broadcasts down.
// Depth 0 degenerates to the flat transport.Cluster topology (no
// relays, sites dial the server directly).
//
// The driving surface matches transport.Cluster — Feed, FeedBatch,
// Flush, Do/DoShard, Stats, Server().Query() — so every application
// runs over the tree unchanged.
type TreeCluster struct {
	cfg     core.Config
	shards  int
	fanout  int
	depth   int
	srv     *transport.CoordinatorServer
	ln      net.Listener
	tiers   [][]*Relay
	clients []*transport.SiteClient
}

// NewTreeCluster starts a coordinator server hosting len(protos)
// protocol shards on addr ("127.0.0.1:0" when empty), builds depth
// relay tiers of the given fanout beneath it, and connects one
// multiplexing SiteClient per site to its leaf relay (site i attaches
// to leaf i mod leaves — round-robin, seed-independent). machines is
// indexed [shard][site]. The top-s union merge is enabled on every
// relay only when every shard protocol has opted in via the
// UnionTopSMergeable marker; the threshold pre-filter is always on. On
// error everything already started is torn down.
func NewTreeCluster(cfg core.Config, protos []transport.Coordinator, machines [][]netsim.Site[core.Message], addr string, fanout, depth int, opts Options) (*TreeCluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := netsim.ValidateTree(fanout, depth); err != nil {
		return nil, err
	}
	if len(machines) != len(protos) {
		return nil, fmt.Errorf("relay: %d shard site slices for %d shard coordinators", len(machines), len(protos))
	}
	for p := range machines {
		if len(machines[p]) != cfg.K {
			return nil, fmt.Errorf("relay: shard %d has %d site machines for k=%d", p, len(machines[p]), cfg.K)
		}
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	srv, err := transport.NewShardedCoordinatorServer(cfg, protos)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	go srv.Serve(ln)
	c := &TreeCluster{
		cfg:     cfg,
		shards:  len(protos),
		fanout:  fanout,
		depth:   depth,
		srv:     srv,
		ln:      ln,
		clients: make([]*transport.SiteClient, cfg.K),
	}
	sizes := netsim.TreeTierSizes(cfg.K, fanout, depth)
	c.tiers = make([][]*Relay, depth)
	for t, n := range sizes {
		c.tiers[t] = make([]*Relay, n)
		for node := range c.tiers[t] {
			parentAddr := ln.Addr().String()
			if t > 0 {
				parentAddr = c.tiers[t-1][node%len(c.tiers[t-1])].Addr()
			}
			r, err := New(cfg, len(protos), parentAddr, "", opts)
			if err != nil {
				c.Close()
				return nil, err
			}
			c.tiers[t][node] = r
		}
	}
	for i := 0; i < cfg.K; i++ {
		leafAddr := ln.Addr().String()
		if depth > 0 {
			leaves := c.tiers[depth-1]
			leafAddr = leaves[i%len(leaves)].Addr()
		}
		perSite := make([]netsim.Site[core.Message], len(protos))
		for p := range protos {
			perSite[p] = machines[p][i]
		}
		conn, err := net.Dial("tcp", leafAddr)
		if err != nil {
			c.Close()
			return nil, err
		}
		cl, err := transport.NewShardedSiteClient(conn, perSite, cfg)
		if err != nil {
			conn.Close()
			c.Close()
			return nil, err
		}
		c.clients[i] = cl
	}
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *TreeCluster) Addr() string { return c.ln.Addr().String() }

// Server returns the coordinator server (diagnostics and queries).
func (c *TreeCluster) Server() *transport.CoordinatorServer { return c.srv }

// Client returns the site client for siteID (diagnostics).
func (c *TreeCluster) Client(siteID int) *transport.SiteClient { return c.clients[siteID] }

// Shards returns the number of protocol shards the cluster runs.
func (c *TreeCluster) Shards() int { return c.shards }

// Depth returns the number of relay tiers.
func (c *TreeCluster) Depth() int { return c.depth }

// RootConns returns how many connections the coordinator terminates:
// the top relay tier's node count, or k for the flat topology. This is
// the quantity the tree exists to shrink.
func (c *TreeCluster) RootConns() int {
	if c.depth == 0 {
		return c.cfg.K
	}
	return len(c.tiers[0])
}

// RootUpstream returns the messages forwarded to the coordinator by the
// top relay tier — the root edge's traffic. For the flat topology it
// equals the site edge, Stats().Upstream.
func (c *TreeCluster) RootUpstream() int64 {
	if c.depth == 0 {
		return c.Stats().Upstream
	}
	var n int64
	for _, r := range c.tiers[0] {
		n += r.Forwarded()
	}
	return n
}

// TierStats returns per-tier traffic accounting, tier 0 (the root's
// children) first. Empty for the flat topology.
func (c *TreeCluster) TierStats() []TierStats {
	out := make([]TierStats, len(c.tiers))
	for t, tier := range c.tiers {
		st := TierStats{Nodes: len(tier)}
		for _, r := range tier {
			st.Forwarded += r.Forwarded()
			st.Filtered += r.Filtered()
			st.DownMessages += r.DownMessages()
			st.DownWords += r.DownWords()
		}
		out[t] = st
	}
	return out
}

func (c *TreeCluster) checkSite(siteID int) error {
	if siteID < 0 || siteID >= len(c.clients) {
		return fmt.Errorf("relay: site %d out of range [0,%d)", siteID, len(c.clients))
	}
	return nil
}

// Feed delivers one arrival to a site over its leaf connection.
func (c *TreeCluster) Feed(siteID int, it stream.Item) error {
	if err := c.checkSite(siteID); err != nil {
		return err
	}
	return c.clients[siteID].Observe(it)
}

// FeedBatch delivers a slice of arrivals to a site, coalesced into
// per-shard multi-message frames (the high-throughput path).
func (c *TreeCluster) FeedBatch(siteID int, items []stream.Item) error {
	if err := c.checkSite(siteID); err != nil {
		return err
	}
	return c.clients[siteID].ObserveBatch(items)
}

// Flush round-trips every site connection through its whole relay
// chain: a site's ping forces each relay on the path to ship its
// buffered frames before forwarding, and the pong comes back only after
// the coordinator has processed everything and every triggered
// broadcast has been queued ahead of it at each tier. When Flush
// returns, the coordinator has seen every message fed so far and every
// site has applied the resulting broadcasts.
func (c *TreeCluster) Flush() error {
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		if cl == nil {
			continue
		}
		wg.Add(1)
		go func(i int, cl *transport.SiteClient) {
			defer wg.Done()
			errs[i] = cl.Flush()
		}(i, cl)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Do runs fn while holding every shard's ingest lock.
func (c *TreeCluster) Do(fn func()) { c.srv.Do(fn) }

// DoShard runs fn while holding only shard p's ingest lock.
func (c *TreeCluster) DoShard(p int, fn func()) { c.srv.DoShard(p, fn) }

// Stats returns cumulative protocol traffic in the paper's accounting,
// measured at the site edge so trees and the flat topology compare
// directly: upstream counts messages sites put on the wire, downstream
// counts per-site broadcast deliveries (for depth > 0, the leaf tier's
// fan-down; snapshot frames included). Control frames and shard tags
// are excluded. The root edge — what relay filtering saved — is
// RootUpstream and TierStats.
func (c *TreeCluster) Stats() netsim.Stats {
	var s netsim.Stats
	for _, cl := range c.clients {
		if cl == nil {
			continue
		}
		s.Upstream += cl.Sent()
		s.UpWords += cl.SentWords()
	}
	if c.depth == 0 {
		s.Downstream = c.srv.BroadcastsSent()
		s.DownWords = c.srv.BroadcastWords()
		return s
	}
	for _, r := range c.tiers[c.depth-1] {
		if r == nil {
			continue
		}
		s.Downstream += r.DownMessages()
		s.DownWords += r.DownWords()
	}
	return s
}

// Close tears down every site connection, every relay tier from the
// leaves up, and the server. It does not flush; call Flush first for a
// graceful shutdown with delivery guaranteed.
func (c *TreeCluster) Close() error {
	var errs []error
	for _, cl := range c.clients {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	for t := len(c.tiers) - 1; t >= 0; t-- {
		for _, r := range c.tiers[t] {
			if r == nil {
				continue
			}
			if err := r.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	if err := c.srv.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}
