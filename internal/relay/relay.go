package relay

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"wrs/internal/core"
	"wrs/internal/fabric"
	"wrs/internal/netsim"
	"wrs/internal/wire"
)

// Control frame payloads, shared with the transport (wire constants).
// Writers treat queued payloads as read-only, so the static slices are
// safe to share across child outboxes.
var (
	pingPayload = []byte{wire.PingByte}
	pongPayload = []byte{wire.PongByte}
)

// Options configures a relay node.
type Options struct {
	// Merge enables the top-s union merge on MsgRegular traffic. Sound
	// only when every protocol shard hosted above this relay is
	// union-top-s mergeable (UnionMergeable); the tree builders gate it
	// automatically.
	Merge bool
}

// child is one downstream connection (a site client or a lower relay)
// and its outbox. dead is guarded by the relay's upMu and set before
// the outbox closes, so a parent pong racing the teardown never Puts
// into a closed mailbox.
type child struct {
	conn   net.Conn
	outbox *netsim.Mailbox[[]byte]
	dead   bool
	bcasts int64 // broadcast messages delivered to this child (under upMu for snapshot, atomic-free: counted by the single fan goroutine)
}

// Relay is one node of the aggregation tree over real connections. It
// dials ONE upstream connection (to the coordinator server or a higher
// relay), listens for downstream connections, and moves traffic both
// ways:
//
// Up: each child's frames are decoded and run through the per-shard
// filter machines; survivors are coalesced into per-shard batch frames
// buffered on the upstream writer. A child's flow-control ping ships
// every buffered frame, forwards the ping, and remembers the child in a
// FIFO so the matching pong can be routed back — per-connection FIFO on
// the parent link plus in-order processing here means the pong reaches
// the child only after every broadcast its data triggered has been
// queued to it, which is exactly the invariant SiteClient's
// bounded-staleness window needs, so the Theorem 3 message bound
// survives any tree depth by induction over tiers.
//
// Down: parent broadcast frames update the filter machines' monotone
// control-plane view and are fanned verbatim to every child's outbox
// (per-child writer goroutines, so a slow child never blocks the
// relay). A child that attaches mid-stream first receives a synthesized
// join snapshot of that view — broadcast monotonicity makes the replay
// harmless, the same argument as the coordinator server's snapshot, one
// hop down.
//
// Lock order: upMu (parent writer, filter machines, ping FIFO) and
// connsMu (child registry) are never held together; the fan-down path
// takes them strictly in sequence.
type Relay struct {
	cfg    core.Config
	shards int
	tagged bool

	parent net.Conn

	// upMu is the dedicated parent-writer mutex: it guards pw and the
	// per-shard frames under construction, the filter machines, the
	// ping FIFO, and the sticky upstream-write error. It is never held
	// while taking connsMu.
	upMu     sync.Mutex
	pw       *bufio.Writer
	machines []*Machine
	frames   [][]byte
	pingQ    []*child
	upErr    error

	connsMu  sync.Mutex // guards children, ln, and the closed handshake
	children map[net.Conn]*child
	ln       net.Listener

	closed     atomic.Bool
	wg         sync.WaitGroup
	parentDone chan struct{}

	downMsgs  atomic.Int64 // broadcast messages delivered to children (snapshots included)
	downWords atomic.Int64
}

// New starts a relay for cfg hosting `shards` protocol shards: it dials
// parentAddr, listens on listenAddr ("127.0.0.1:0" when empty), and
// serves until Close — or until the parent connection dies, which
// cascades the teardown to every child so the subtree errors instead of
// hanging.
func New(cfg core.Config, shards int, parentAddr, listenAddr string, opts Options) (*Relay, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fabric.Validate(shards); err != nil {
		return nil, err
	}
	parent, err := net.Dial("tcp", parentAddr)
	if err != nil {
		return nil, err
	}
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		parent.Close()
		return nil, err
	}
	r := &Relay{
		cfg:        cfg,
		shards:     shards,
		tagged:     shards > 1,
		parent:     parent,
		pw:         bufio.NewWriterSize(parent, 32*1024),
		machines:   make([]*Machine, shards),
		frames:     make([][]byte, shards),
		children:   make(map[net.Conn]*child),
		ln:         ln,
		parentDone: make(chan struct{}),
	}
	for p := range r.machines {
		r.machines[p] = NewMachine(cfg.S, opts.Merge)
	}
	go r.serve()
	go r.parentLoop()
	return r, nil
}

// Addr returns the relay's downstream listen address.
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// serve accepts child connections until Close.
func (r *Relay) serve() {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		// The Add and the closed check share connsMu with Close, so every
		// interleaving either lets Close see this child or lets this loop
		// see the closed flag (the same handshake as the server's).
		r.connsMu.Lock()
		if r.closed.Load() {
			r.connsMu.Unlock()
			conn.Close()
			continue
		}
		r.wg.Add(1)
		r.connsMu.Unlock()
		go r.handleChild(conn)
	}
}

func (r *Relay) handleChild(conn net.Conn) {
	defer r.wg.Done()
	ch := &child{conn: conn, outbox: netsim.NewMailbox[[]byte]()}
	r.connsMu.Lock()
	r.children[conn] = ch
	r.connsMu.Unlock()

	// Join snapshot: replay the monotone control-plane view this relay
	// has accumulated, so a child that attaches mid-stream does not
	// filter at threshold 0 forever (the O(n) regression the server's
	// snapshot exists to prevent — re-proven one hop down, because a
	// relay's view is a prefix of the coordinator's broadcast sequence
	// and replay/reorder/duplication of monotone state is harmless).
	// Registration happens first: a broadcast racing this snapshot is
	// delivered through the outbox too, possibly ahead of a snapshot
	// that already reflects it — harmless for the same reason.
	r.upMu.Lock()
	var snaps [][]byte
	var snapMsgs, snapWords int64
	for p := range r.machines {
		var snap []byte
		r.machines[p].Snapshot(func(m core.Message) {
			if len(snap) == 0 && r.tagged {
				snap = wire.AppendShardHeader(snap, p)
			}
			snap = wire.AppendMessage(snap, m)
			snapMsgs++
			snapWords += int64(m.Words())
		})
		if len(snap) > 0 {
			snaps = append(snaps, snap)
		}
	}
	r.upMu.Unlock()
	for _, snap := range snaps {
		ch.outbox.Put(snap)
	}
	if snapMsgs > 0 {
		r.downMsgs.Add(snapMsgs)
		r.downWords.Add(snapWords)
	}
	if r.closed.Load() {
		r.dropChild(ch, nil)
		return
	}

	// Writer: drains the outbox with coalesced flushes so broadcasts
	// and pongs never block the child's reader (mirrors the server).
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(conn)
		for {
			payload, ok := ch.outbox.Get()
			if !ok {
				return
			}
			for {
				if err := wire.WriteFrame(bw, payload); err != nil {
					return
				}
				payload, ok = ch.outbox.TryGet()
				if !ok {
					break
				}
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}()

	br := bufio.NewReaderSize(conn, 64*1024)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			break
		}
		buf = payload
		if wire.IsPing(payload) {
			if err := r.forwardPing(ch); err != nil {
				break
			}
			continue
		}
		// Malformed child input drops this child's connection, never the
		// relay; a dead parent link (sticky upErr) also lands here so
		// children error out instead of buffering forever.
		if err := r.relayUp(payload); err != nil {
			break
		}
	}
	r.dropChild(ch, writerDone)
}

// dropChild unregisters a child and tears its connection down. The
// dead flag is flipped under upMu before the outbox closes, so a pong
// being routed to this child concurrently is skipped rather than put
// into a closed mailbox.
func (r *Relay) dropChild(ch *child, writerDone chan struct{}) {
	r.connsMu.Lock()
	delete(r.children, ch.conn)
	r.connsMu.Unlock()
	r.upMu.Lock()
	ch.dead = true
	r.upMu.Unlock()
	ch.outbox.Close()
	if writerDone != nil {
		<-writerDone
	}
	ch.conn.Close()
}

// relayUp runs one child data frame through the shard filters,
// buffering survivors into the per-shard upstream frames. Frames are
// shipped to the buffered parent writer when full; the OS-bound flush
// happens on the next flow-control ping, which every site issues at
// least once per staleness window and on every Flush.
func (r *Relay) relayUp(payload []byte) error {
	r.upMu.Lock()
	defer r.upMu.Unlock()
	if r.upErr != nil {
		return r.upErr
	}
	if err := ProcessUpFrame(r.machines, payload, r.bufferUpLocked); err != nil {
		return err
	}
	return r.upErr // surfaces a parent write error from a mid-frame ship
}

// bufferUpLocked appends one surviving message to its shard's upstream
// frame, shipping the frame first when the message would overflow it.
// Caller holds upMu.
func (r *Relay) bufferUpLocked(p int, m core.Message) {
	if len(r.frames[p])+wire.MessageSize > wire.MaxFrameSize {
		r.shipFrameLocked(p)
	}
	if len(r.frames[p]) == 0 && r.tagged {
		r.frames[p] = wire.AppendShardHeader(r.frames[p], p)
	}
	r.frames[p] = wire.AppendMessage(r.frames[p], m)
}

// shipFrameLocked writes shard p's frame under construction to the
// buffered parent writer. A write error goes sticky in upErr: the
// parent link is unusable, and the parent loop's teardown will cascade.
// Caller holds upMu.
func (r *Relay) shipFrameLocked(p int) {
	if len(r.frames[p]) == 0 {
		return
	}
	if r.upErr == nil {
		//wrslint:allow nolockio upMu is the dedicated parent-writer mutex: it guards pw itself and is never held while taking connsMu
		if err := wire.WriteFrame(r.pw, r.frames[p]); err != nil {
			r.upErr = err
		}
	}
	r.frames[p] = r.frames[p][:0]
}

// forwardPing handles a child's flow-control ping: atomically ship
// every buffered upstream frame, forward the ping, flush, and enqueue
// the child in the pong-routing FIFO. Atomicity under upMu plus FIFO on
// the parent connection gives the transitive staleness guarantee: when
// the matching pong comes back, everything this relay had accepted
// before the ping — this child's data included — has been processed
// upstream, and every broadcast that processing triggered has already
// been fanned to the child's outbox ahead of the pong.
func (r *Relay) forwardPing(ch *child) error {
	r.upMu.Lock()
	defer r.upMu.Unlock()
	if r.upErr != nil {
		return r.upErr
	}
	for p := range r.frames {
		r.shipFrameLocked(p)
	}
	if r.upErr == nil {
		//wrslint:allow nolockio upMu is the dedicated parent-writer mutex: the ping write/flush is the serialized operation itself
		if err := wire.WriteFrame(r.pw, pingPayload); err != nil {
			r.upErr = err
		}
	}
	if r.upErr == nil {
		//wrslint:allow nolockio upMu is the dedicated parent-writer mutex: the ping write/flush is the serialized operation itself
		if err := r.pw.Flush(); err != nil {
			r.upErr = err
		}
	}
	if r.upErr != nil {
		return r.upErr
	}
	r.pingQ = append(r.pingQ, ch)
	return nil
}

// SeverParent cuts only the upstream link, mid-write, as if the parent
// process vanished: the parent loop errors out and cascades the
// teardown to this relay's own subtree, while sibling subtrees attached
// to other relays are untouched. It is the fault-injection hook for
// partial-tree loss tests and the chaos harness.
func (r *Relay) SeverParent() error { return r.parent.Close() }

// parentLoop reads the upstream connection: pongs are routed to the
// child whose ping they answer (FIFO), broadcast frames update the
// filter machines and fan down to every child. When the parent link
// dies the relay closes itself, cascading to all children.
func (r *Relay) parentLoop() {
	br := bufio.NewReaderSize(r.parent, 64*1024)
	var buf []byte
	for {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			break
		}
		buf = payload
		if wire.IsPong(payload) {
			r.routePong()
			continue
		}
		if err := r.relayDown(payload); err != nil {
			break
		}
	}
	close(r.parentDone)
	r.Close()
}

// routePong answers the oldest outstanding forwarded ping. Pop and
// delivery happen under upMu so the teardown's dead flag is respected.
func (r *Relay) routePong() {
	r.upMu.Lock()
	var ch *child
	if len(r.pingQ) > 0 {
		ch = r.pingQ[0]
		r.pingQ = r.pingQ[1:]
	}
	if ch != nil && !ch.dead {
		ch.outbox.Put(pongPayload)
	}
	r.upMu.Unlock()
}

// relayDown applies one parent broadcast frame to the filter machines
// and fans it verbatim to every child. The machine update (upMu) and
// the fan-out (connsMu) take their locks strictly in sequence, never
// nested.
func (r *Relay) relayDown(payload []byte) error {
	r.upMu.Lock()
	msgs, words, err := ProcessDownFrame(r.machines, payload)
	r.upMu.Unlock()
	if err != nil {
		return err
	}
	cp := append([]byte(nil), payload...) // the read buffer is reused; children share one copy
	var fanned int64
	r.connsMu.Lock()
	for _, ch := range r.children {
		ch.outbox.Put(cp)
		fanned++
	}
	r.connsMu.Unlock()
	if fanned > 0 {
		r.downMsgs.Add(msgs * fanned)
		r.downWords.Add(words * fanned)
	}
	return nil
}

// Forwarded returns how many upstream messages passed this relay's
// filters, summed over shards.
func (r *Relay) Forwarded() int64 {
	r.upMu.Lock()
	defer r.upMu.Unlock()
	var n int64
	for _, m := range r.machines {
		n += m.Forwarded()
	}
	return n
}

// Filtered returns how many upstream messages this relay swallowed,
// summed over shards.
func (r *Relay) Filtered() int64 {
	r.upMu.Lock()
	defer r.upMu.Unlock()
	var n int64
	for _, m := range r.machines {
		n += m.Filtered()
	}
	return n
}

// Threshold returns shard p's last-seen broadcast threshold
// (diagnostics and tests).
func (r *Relay) Threshold(p int) float64 {
	r.upMu.Lock()
	defer r.upMu.Unlock()
	return r.machines[p].Threshold()
}

// DownMessages returns broadcast messages delivered to children
// (per-child, join snapshots included) — the paper's downstream
// accounting for the edge this relay owns.
func (r *Relay) DownMessages() int64 { return r.downMsgs.Load() }

// DownWords returns the machine words of that broadcast traffic.
func (r *Relay) DownWords() int64 { return r.downWords.Load() }

// Children returns the number of connected children (diagnostics).
func (r *Relay) Children() int {
	r.connsMu.Lock()
	defer r.connsMu.Unlock()
	return len(r.children)
}

// Close tears the relay down: the listener, every child connection, and
// the parent connection. It is idempotent; the parent loop also calls
// it when the upstream link dies, so a broken parent cascades to the
// children instead of leaving them hanging.
func (r *Relay) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	r.connsMu.Lock()
	ln := r.ln
	conns := make([]net.Conn, 0, len(r.children))
	for c := range r.children {
		conns = append(conns, c)
	}
	r.connsMu.Unlock()
	err := ln.Close()
	for _, c := range conns {
		c.Close()
	}
	r.parent.Close()
	r.wg.Wait()
	<-r.parentDone
	return err
}

// String identifies the relay in logs and errors.
func (r *Relay) String() string {
	return fmt.Sprintf("relay(%s, shards=%d)", r.Addr(), r.shards)
}
