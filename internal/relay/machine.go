// Package relay implements the hierarchical aggregation tier that
// scales the protocol's fan-in: an intermediate node that terminates a
// slice of site (or lower-relay) connections, locally pre-filters their
// upstream candidate streams, coalesces the survivors into batch frames
// on ONE upstream connection, and fans coordinator broadcasts back down
// to its children. A depth-D tree of fanout F puts min(F, k)
// connections on the root instead of k, while both filters only ever
// drop messages the coordinator would drop on arrival anyway — see
// DESIGN.md §14 for the exactness and staleness arguments.
//
// Two independent filters run at every relay, per shard:
//
//   - Threshold pre-filter: a MsgRegular whose key is at or below the
//     last epoch threshold the relay saw broadcast is dropped. A site
//     with a fresh control plane would not have sent it (sites send only
//     strictly above the threshold), and every broadcast threshold is a
//     proven lower bound on the coordinator's s-th released key, so the
//     message has at least s released dominators and cannot enter any
//     future sample. Safe for every application, because it exactly
//     emulates a fresher site.
//   - Top-s union merge (Options.Merge): the relay keeps the top-s keys
//     it has forwarded on this shard; a MsgRegular at or below the
//     minimum of a full top-s is dropped — it has s forwarded dominators
//     in this relay's own substream, so by the union-top-s argument (the
//     same one behind the shard fabric's query merge) it can never be in
//     the global top-s. Safe only for protocols whose answers read
//     nothing beyond the coordinator's top-s state: the plain sampler,
//     heavy hitters, and quantiles opt in via the
//     core.Coordinator.UnionTopSMergeable marker; the L1 tracker's
//     exact-prefix accumulator and the windowed retention do not.
//
// Early messages, window candidates, and clock advances always pass
// through: their keys are either generated coordinator-side (early) or
// their retention is not top-s shaped (window).
package relay

import (
	"fmt"
	"sort"

	"wrs/internal/core"
	"wrs/internal/sample"
	"wrs/internal/wire"
)

// Machine is the per-(relay, shard) filter state machine: the monotone
// control-plane view (last broadcast threshold, saturated levels) used
// for pre-filtering and child join snapshots, plus the optional top-s
// merge heap. It implements netsim.TreeRelay[core.Message], so the
// sequential tree cluster and the TCP relay share one filtering
// implementation. Not safe for concurrent use; the TCP relay serializes
// access under its parent-writer mutex.
type Machine struct {
	merge bool
	th    float64                // largest broadcast threshold seen
	sat   map[int]bool           // saturated levels seen
	top   *sample.TopK[struct{}] // keys forwarded upstream (merge mode)

	forwarded int64
	filtered  int64
}

// NewMachine returns a relay filter machine for sample size s; merge
// enables the top-s union merge (see the package comment for when that
// is sound).
func NewMachine(s int, merge bool) *Machine {
	m := &Machine{merge: merge, sat: make(map[int]bool)}
	if merge {
		m.top = sample.NewTopK[struct{}](s)
	}
	return m
}

// Up processes one upstream message: it either swallows it (both
// filters only drop messages with s proven dominators) or hands it to
// forward unchanged.
func (m *Machine) Up(msg core.Message, forward func(core.Message)) {
	if msg.Kind == core.MsgRegular {
		if m.th > 0 && msg.Key <= m.th {
			m.filtered++
			return
		}
		if m.merge {
			if min, ok := m.top.Min(); ok && m.top.Full() && msg.Key <= min {
				m.filtered++
				return
			}
			m.top.Offer(msg.Key, struct{}{})
		}
	}
	m.forwarded++
	forward(msg)
}

// Down observes one coordinator broadcast on its way down: the relay
// records the monotone control plane (thresholds only rise, saturation
// flags only set) so it can pre-filter and synthesize join snapshots.
func (m *Machine) Down(msg core.Message) {
	switch msg.Kind {
	case core.MsgEpochUpdate:
		if msg.Threshold > m.th {
			m.th = msg.Threshold
		}
	case core.MsgLevelSaturated:
		m.sat[msg.Level] = true
	default:
		// MsgEarly/MsgRegular/MsgWindow/MsgClock carry no downstream
		// control state; they pass through to the children unrecorded.
	}
}

// Snapshot emits the control-plane state as broadcast messages — the
// same shape as the coordinator server's join snapshot, one hop down.
// A child that attaches mid-stream replays these; because broadcasts
// are monotone, replaying state the child will also receive live (or
// already has) can never move its view backwards.
func (m *Machine) Snapshot(emit func(core.Message)) {
	levels := make([]int, 0, len(m.sat))
	//wrslint:allow detrand order-insensitive traversal: the set holds no order and levels is sorted below
	for j := range m.sat {
		levels = append(levels, j)
	}
	sort.Ints(levels)
	for _, j := range levels {
		emit(core.Message{Kind: core.MsgLevelSaturated, Level: j})
	}
	if m.th > 0 {
		emit(core.Message{Kind: core.MsgEpochUpdate, Threshold: m.th})
	}
}

// Threshold returns the largest broadcast threshold seen (diagnostics).
func (m *Machine) Threshold() float64 { return m.th }

// Forwarded returns how many upstream messages passed the filters.
func (m *Machine) Forwarded() int64 { return m.forwarded }

// Filtered returns how many upstream messages were swallowed.
func (m *Machine) Filtered() int64 { return m.filtered }

// UnionMergeable reports whether a coordinator-side protocol has opted
// in to the top-s union merge via the UnionTopSMergeable marker method
// (core.Coordinator has it; application wrappers whose answers read
// more than the top-s deliberately do not).
func UnionMergeable(proto any) bool {
	mk, ok := proto.(interface{ UnionTopSMergeable() bool })
	return ok && mk.UnionTopSMergeable()
}

// resolveShard mirrors the coordinator server's frame dispatch: a
// shard-tagged frame names its shard, an untagged batch frame is shard
// 0 on an unsharded relay and a protocol violation on a sharded one
// (the sender does not know the shard layout). Every violation is an
// error — the connection must be dropped — never a panic.
func resolveShard(payload []byte, shards int) (int, []byte, error) {
	shard, msgs := 0, payload
	if wire.IsShardFrame(payload) {
		var err error
		shard, msgs, err = wire.ParseShardFrame(payload)
		if err != nil {
			return 0, nil, err
		}
		if shard >= shards {
			return 0, nil, fmt.Errorf("relay: frame for shard %d, relay hosts %d", shard, shards)
		}
	} else if shards > 1 {
		return 0, nil, fmt.Errorf("relay: untagged batch frame on a %d-shard relay", shards)
	}
	return shard, msgs, nil
}

// ProcessUpFrame decodes one child-to-parent batch frame against the
// per-shard machines, running every message through the target shard's
// filters and handing survivors to forward. Malformed input — bad shard
// tag, out-of-range shard, misaligned or undecodable message section —
// returns an error so the caller drops the child connection; it never
// panics (FuzzRelayFrames).
func ProcessUpFrame(machines []*Machine, payload []byte, forward func(shard int, m core.Message)) error {
	shard, msgs, err := resolveShard(payload, len(machines))
	if err != nil {
		return err
	}
	mach := machines[shard]
	return wire.ForEachMessage(msgs, func(m core.Message) {
		mach.Up(m, func(fm core.Message) { forward(shard, fm) })
	})
}

// ProcessDownFrame decodes one parent-to-child broadcast frame,
// updating the target shard machine's control-plane view, and returns
// the message and word counts for fan-down accounting. Malformed input
// returns an error — the parent link is unusable — never a panic.
func ProcessDownFrame(machines []*Machine, payload []byte) (msgs, words int64, err error) {
	shard, body, err := resolveShard(payload, len(machines))
	if err != nil {
		return 0, 0, err
	}
	mach := machines[shard]
	err = wire.ForEachMessage(body, func(m core.Message) {
		mach.Down(m)
		msgs++
		words += int64(m.Words())
	})
	return msgs, words, err
}
