package relay

import (
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

func upAll(m *Machine, msgs ...core.Message) []core.Message {
	var out []core.Message
	for _, msg := range msgs {
		m.Up(msg, func(fm core.Message) { out = append(out, fm) })
	}
	return out
}

func regular(key float64) core.Message {
	return core.Message{Kind: core.MsgRegular, Item: stream.Item{ID: uint64(key * 1000), Weight: key}, Key: key}
}

func TestMachineThresholdFilter(t *testing.T) {
	m := NewMachine(4, false)
	if got := upAll(m, regular(1)); len(got) != 1 {
		t.Fatalf("no threshold yet: forwarded %d, want 1", len(got))
	}
	m.Down(core.Message{Kind: core.MsgEpochUpdate, Threshold: 5})
	if m.Threshold() != 5 {
		t.Fatalf("threshold %g, want 5", m.Threshold())
	}
	if got := upAll(m, regular(4), regular(5)); len(got) != 0 {
		t.Errorf("keys at/below threshold forwarded: %v", got)
	}
	if got := upAll(m, regular(5.5)); len(got) != 1 {
		t.Errorf("key above threshold filtered")
	}
	// Thresholds are monotone: a stale lower broadcast must not regress.
	m.Down(core.Message{Kind: core.MsgEpochUpdate, Threshold: 3})
	if m.Threshold() != 5 {
		t.Errorf("threshold regressed to %g after stale broadcast", m.Threshold())
	}
	// Non-regular kinds always pass, whatever the threshold.
	passthrough := []core.Message{
		{Kind: core.MsgEarly, Item: stream.Item{ID: 9, Weight: 0.1}},
		{Kind: core.MsgWindow, Item: stream.Item{ID: 10, Weight: 0.1}, Key: 0.1, Level: 7},
		{Kind: core.MsgClock, Level: 9},
	}
	if got := upAll(m, passthrough...); len(got) != len(passthrough) {
		t.Errorf("non-regular kinds: forwarded %d of %d", len(got), len(passthrough))
	}
	if m.Filtered() != 2 {
		t.Errorf("filtered = %d, want 2", m.Filtered())
	}
}

func TestMachineMergeFilter(t *testing.T) {
	m := NewMachine(2, true)
	if got := upAll(m, regular(10), regular(9)); len(got) != 2 {
		t.Fatalf("first s keys must forward, got %d", len(got))
	}
	// Top-2 is {10, 9}: anything at or below 9 has 2 forwarded dominators.
	if got := upAll(m, regular(8), regular(9)); len(got) != 0 {
		t.Errorf("dominated keys forwarded: %v", got)
	}
	if got := upAll(m, regular(9.5)); len(got) != 1 {
		t.Errorf("new top-2 key filtered")
	}
	// Merge off: everything below threshold 0 forwards.
	off := NewMachine(2, false)
	if got := upAll(off, regular(10), regular(9), regular(1), regular(1)); len(got) != 4 {
		t.Errorf("merge off: forwarded %d of 4", len(got))
	}
}

func TestMachineSnapshot(t *testing.T) {
	m := NewMachine(4, false)
	var empty []core.Message
	m.Snapshot(func(msg core.Message) { empty = append(empty, msg) })
	if len(empty) != 0 {
		t.Fatalf("fresh machine snapshot emitted %v", empty)
	}
	m.Down(core.Message{Kind: core.MsgLevelSaturated, Level: 3})
	m.Down(core.Message{Kind: core.MsgLevelSaturated, Level: -1})
	m.Down(core.Message{Kind: core.MsgEpochUpdate, Threshold: 2.5})
	var got []core.Message
	m.Snapshot(func(msg core.Message) { got = append(got, msg) })
	if len(got) != 3 {
		t.Fatalf("snapshot emitted %d messages, want 3", len(got))
	}
	if got[0].Level != -1 || got[1].Level != 3 {
		t.Errorf("levels not ascending: %v", got)
	}
	if got[2].Kind != core.MsgEpochUpdate || got[2].Threshold != 2.5 {
		t.Errorf("threshold message %v", got[2])
	}
}

type optedOut struct{}

func (optedOut) UnionTopSMergeable() bool { return false }

func TestUnionMergeable(t *testing.T) {
	cfg := core.Config{K: 2, S: 4}
	coord := core.NewCoordinator(cfg, xrand.New(1))
	if !UnionMergeable(coord) {
		t.Error("core.Coordinator must be union-mergeable")
	}
	if UnionMergeable(struct{}{}) {
		t.Error("markerless type reported mergeable")
	}
	if UnionMergeable(optedOut{}) {
		t.Error("explicit false reported mergeable")
	}
	// The window coordinator wraps the sampler in a plain field; the
	// marker must not leak through.
	wc := core.NewWindowCoordinator(cfg, 16, xrand.New(2))
	if UnionMergeable(wc) {
		t.Error("window coordinator reported mergeable: non-monotone retention reads beyond the top-s")
	}
}

func frame(shard, shards int, msgs ...core.Message) []byte {
	var p []byte
	if shards > 1 {
		p = wire.AppendShardHeader(p, shard)
	}
	return wire.AppendMessages(p, msgs)
}

func TestProcessUpFrameRouting(t *testing.T) {
	machines := []*Machine{NewMachine(4, false), NewMachine(4, false)}
	machines[1].Down(core.Message{Kind: core.MsgEpochUpdate, Threshold: 5})
	var got []struct {
		shard int
		m     core.Message
	}
	forward := func(shard int, m core.Message) {
		got = append(got, struct {
			shard int
			m     core.Message
		}{shard, m})
	}
	if err := ProcessUpFrame(machines, frame(0, 2, regular(1)), forward); err != nil {
		t.Fatal(err)
	}
	if err := ProcessUpFrame(machines, frame(1, 2, regular(1), regular(6)), forward); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].shard != 0 || got[1].shard != 1 || got[1].m.Key != 6 {
		t.Errorf("routing got %+v", got)
	}
	if machines[1].Filtered() != 1 {
		t.Errorf("shard 1 filtered %d, want 1", machines[1].Filtered())
	}
}

func TestProcessFramesMalformed(t *testing.T) {
	one := []*Machine{NewMachine(4, false)}
	two := []*Machine{NewMachine(4, false), NewMachine(4, false)}
	drop := func(int, core.Message) {}
	badKind := make([]byte, wire.MessageSize)
	badKind[0] = 99
	beyondHosted := wire.AppendMessages(wire.AppendShardHeader(nil, 5), []core.Message{regular(1)})
	cases := []struct {
		name     string
		machines []*Machine
		payload  []byte
	}{
		{"misaligned", one, []byte{1, 2, 3}},
		{"truncated shard header", two, []byte{0xF5, 0}},
		{"untagged on sharded", two, frame(0, 1, regular(1))},
		{"bad kind", one, badKind},
		{"shard beyond hosted", two, beyondHosted},
	}
	for _, tc := range cases {
		if err := ProcessUpFrame(tc.machines, tc.payload, drop); err == nil {
			t.Errorf("ProcessUpFrame(%s): no error", tc.name)
		}
		if _, _, err := ProcessDownFrame(tc.machines, tc.payload); err == nil {
			t.Errorf("ProcessDownFrame(%s): no error", tc.name)
		}
	}
}

func TestProcessDownFrameCounts(t *testing.T) {
	machines := []*Machine{NewMachine(4, false)}
	p := frame(0, 1,
		core.Message{Kind: core.MsgEpochUpdate, Threshold: 2},
		core.Message{Kind: core.MsgLevelSaturated, Level: 1},
	)
	msgs, words, err := ProcessDownFrame(machines, p)
	if err != nil {
		t.Fatal(err)
	}
	if msgs != 2 || words != 4 {
		t.Errorf("msgs=%d words=%d, want 2 and 4", msgs, words)
	}
	if machines[0].Threshold() != 2 {
		t.Errorf("threshold %g, want 2", machines[0].Threshold())
	}
}
