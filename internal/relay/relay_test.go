package relay

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"wrs/internal/core"
	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/transport"
	"wrs/internal/wire"
	"wrs/internal/xrand"
)

// buildSampler assembles a plain-sampler tree cluster: one recorder
// shared by every key-generating party, so the brute-force top-s over
// all recorded keys is the exactness oracle.
func buildSampler(t *testing.T, cfg core.Config, shards, fanout, depth int, seed uint64) (*TreeCluster, *core.Recorder) {
	t.Helper()
	master := xrand.New(seed)
	rec := core.NewRecorder()
	protos := make([]transport.Coordinator, shards)
	machines := make([][]netsim.Site[core.Message], shards)
	for p := range protos {
		coord := core.NewCoordinator(cfg, master.Split())
		coord.SetRecorder(rec)
		protos[p] = coord
		machines[p] = make([]netsim.Site[core.Message], cfg.K)
		for i := 0; i < cfg.K; i++ {
			site := core.NewSite(i, cfg, master.Split())
			site.SetRecorder(rec)
			machines[p][i] = site
		}
	}
	cl, err := NewTreeCluster(cfg, protos, machines, "", fanout, depth, Options{Merge: true})
	if err != nil {
		t.Fatal(err)
	}
	return cl, rec
}

func feedPareto(t *testing.T, cl *TreeCluster, k, perSite int) {
	t.Helper()
	var wg sync.WaitGroup
	for site := 0; site < k; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			rng := xrand.New(uint64(100 + site))
			batch := make([]stream.Item, 0, 64)
			for j := 0; j < perSite; j++ {
				batch = append(batch, stream.Item{
					ID:     uint64(site*perSite + j),
					Weight: rng.Pareto(1.3),
				})
				if len(batch) == cap(batch) || j == perSite-1 {
					if err := cl.FeedBatch(site, batch); err != nil {
						t.Errorf("site %d: %v", site, err)
						return
					}
					batch = batch[:0]
				}
			}
		}(site)
	}
	wg.Wait()
}

// TestTreeTCPExactness is the end-to-end acceptance for the relay
// fabric: with both filters on and real connections at every hop, the
// sample the root serves is exactly the brute-force top-s of all keys,
// the root terminates fanout connections instead of k, and relay
// filtering strictly shrinks the root edge.
func TestTreeTCPExactness(t *testing.T) {
	for _, tc := range []struct {
		shards, fanout, depth int
	}{
		{1, 2, 2},
		{1, 4, 1},
		{2, 2, 2},
	} {
		cfg := core.Config{K: 8, S: 8}
		cl, rec := buildSampler(t, cfg, tc.shards, tc.fanout, tc.depth, uint64(11+tc.shards))
		const perSite = 1500
		feedPareto(t, cl, cfg.K, perSite)
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}

		if got := cl.RootConns(); got != tc.fanout {
			t.Errorf("%+v: root conns %d, want %d", tc, got, tc.fanout)
		}
		if rec.Len() != cfg.K*perSite*1 { // every update keyed exactly once
			t.Errorf("%+v: recorded %d keys, want %d", tc, rec.Len(), cfg.K*perSite)
		}
		q := cl.Server().Query()
		if len(q) != cfg.S {
			t.Fatalf("%+v: query size %d, want %d", tc, len(q), cfg.S)
		}
		want := rec.TopIDs(cfg.S)
		for _, e := range q {
			if !want[e.Item.ID] {
				t.Errorf("%+v: sample item %d is not a top-%d key", tc, e.Item.ID, cfg.S)
			}
		}

		stats := cl.Stats()
		root := cl.RootUpstream()
		if root > stats.Upstream {
			t.Errorf("%+v: root edge %d exceeds site edge %d", tc, root, stats.Upstream)
		}
		var filtered int64
		for _, ts := range cl.TierStats() {
			filtered += ts.Filtered
		}
		if filtered == 0 {
			t.Errorf("%+v: relays filtered nothing over %d updates", tc, cfg.K*perSite)
		}
		if stats.Downstream == 0 || stats.Upstream == 0 {
			t.Errorf("%+v: degenerate stats %+v", tc, stats)
		}
		t.Logf("%+v: site edge %d, root edge %d (%d filtered), downstream %d",
			tc, stats.Upstream, root, filtered, stats.Downstream)
		if err := cl.Close(); err != nil {
			t.Errorf("%+v: close: %v", tc, err)
		}
	}
}

// TestTreeTCPDepthZeroIsFlat pins the degenerate topology: depth 0
// builds no relays and behaves exactly like the flat cluster.
func TestTreeTCPDepthZeroIsFlat(t *testing.T) {
	cfg := core.Config{K: 3, S: 4}
	cl, rec := buildSampler(t, cfg, 1, 0, 0, 5)
	defer cl.Close()
	feedPareto(t, cl, cfg.K, 400)
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := cl.RootConns(); got != cfg.K {
		t.Errorf("root conns %d, want k=%d", got, cfg.K)
	}
	if got := len(cl.TierStats()); got != 0 {
		t.Errorf("flat topology reports %d tiers", got)
	}
	if cl.RootUpstream() != cl.Stats().Upstream {
		t.Errorf("flat root edge %d != site edge %d", cl.RootUpstream(), cl.Stats().Upstream)
	}
	want := rec.TopIDs(cfg.S)
	for _, e := range cl.Server().Query() {
		if !want[e.Item.ID] {
			t.Errorf("sample item %d is not a top key", e.Item.ID)
		}
	}
}

// startRelayedServer builds server <- relay and returns both plus the
// relay's child-facing address.
func startRelayedServer(t *testing.T, cfg core.Config, master *xrand.RNG) (*transport.CoordinatorServer, *Relay) {
	t.Helper()
	srv, err := transport.NewCoordinatorServerFor(cfg, core.NewCoordinator(cfg, master.Split()))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	r, err := New(cfg, 1, ln.Addr().String(), "", Options{Merge: true})
	if err != nil {
		t.Fatal(err)
	}
	return srv, r
}

// TestLateJoinerThroughRelay pins the control-plane snapshot one hop
// down: a site that dials a RELAY mid-stream must still learn the
// threshold and saturations broadcast before it joined — now served
// from the relay's own monotone view, since the coordinator never sees
// the new connection.
func TestLateJoinerThroughRelay(t *testing.T) {
	cfg := core.Config{K: 2, S: 4}
	master := xrand.New(17)
	srv, r := startRelayedServer(t, cfg, master)
	defer srv.Close()
	defer r.Close()

	first, err := transport.DialSite(r.Addr(), 0, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	rng := xrand.New(3)
	for i := 0; i < 2000; i++ {
		if err := first.Observe(stream.Item{ID: uint64(i), Weight: rng.Pareto(1.3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := first.Flush(); err != nil {
		t.Fatal(err)
	}
	var th float64
	var sat int
	srv.DoShard(0, func() {
		th = srv.Coord(0).CurrentThreshold()
		sat = len(srv.Coord(0).SaturatedLevels())
	})
	if th == 0 || sat == 0 {
		t.Fatalf("warmup did not advance the control plane: threshold=%g, %d saturated levels", th, sat)
	}
	// The relay's view must match: Flush guarantees every broadcast the
	// warmup triggered was fanned down before the pong came back.
	if got := r.Threshold(0); got != th {
		t.Fatalf("relay threshold %g, coordinator %g", got, th)
	}

	late, err := transport.DialSite(r.Addr(), 1, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if err := late.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := late.Site().Threshold(); got != th {
		t.Errorf("late joiner threshold %g, want snapshot %g", got, th)
	}
	if got := late.Site().Applied; got < int64(sat)+1 {
		t.Errorf("late joiner applied %d broadcasts, want at least %d", got, sat+1)
	}
}

// TestRelayMalformedFrameDropsChildOnly is the robustness acceptance: a
// child speaking garbage loses its connection — no panic — while the
// relay keeps serving its healthy children.
func TestRelayMalformedFrameDropsChildOnly(t *testing.T) {
	cfg := core.Config{K: 2, S: 4}
	master := xrand.New(23)
	srv, r := startRelayedServer(t, cfg, master)
	defer srv.Close()
	defer r.Close()

	healthy, err := transport.DialSite(r.Addr(), 0, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	bad, err := net.Dial("tcp", r.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	bw := bufio.NewWriter(bad)
	if err := wire.WriteFrame(bw, []byte{1, 2, 3}); err != nil { // misaligned message section
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	bad.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := bad.Read(buf); err != nil {
			break // dropped: EOF or reset, never a hang past the deadline
		}
	}

	// The healthy child still works end to end.
	for i := 0; i < 100; i++ {
		if err := healthy.Observe(stream.Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := healthy.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Processed(); got == 0 {
		t.Error("healthy child's messages never reached the coordinator")
	}
}

// TestRelayParentLossCascades pins the failure semantics: when a
// relay's upstream link dies, the relay tears itself down and its
// children observe connection errors — the subtree fails fast instead
// of buffering into the void.
func TestRelayParentLossCascades(t *testing.T) {
	cfg := core.Config{K: 1, S: 4}
	master := xrand.New(29)
	srv, r := startRelayedServer(t, cfg, master)
	defer r.Close()

	site, err := transport.DialSite(r.Addr(), 0, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()
	if err := site.Observe(stream.Item{ID: 1, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := site.Flush(); err != nil {
		t.Fatal(err)
	}

	srv.Close() // kill the parent

	deadline := time.Now().Add(5 * time.Second)
	for {
		err := site.Observe(stream.Item{ID: 2, Weight: 1})
		if err == nil {
			err = site.Flush()
		}
		if err != nil {
			return // cascade reached the site
		}
		if time.Now().After(deadline) {
			t.Fatal("site never observed the relay teardown after parent loss")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRelayParentLossPartialTree pins the partial-failure semantics the
// cascade test leaves open: when ONE of two sibling relays loses its
// upstream link (SeverParent), only that relay's subtree dies. The
// sibling keeps streaming through the same coordinator, and traffic it
// sends after the sever still lands in the final sample — the fabric
// degrades to the surviving subtree instead of failing whole.
func TestRelayParentLossPartialTree(t *testing.T) {
	cfg := core.Config{K: 2, S: 4}
	master := xrand.New(31)
	srv, err := transport.NewCoordinatorServerFor(cfg, core.NewCoordinator(cfg, master.Split()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	relayA, err := New(cfg, 1, ln.Addr().String(), "", Options{Merge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer relayA.Close()
	relayB, err := New(cfg, 1, ln.Addr().String(), "", Options{Merge: true})
	if err != nil {
		t.Fatal(err)
	}
	defer relayB.Close()

	siteA, err := transport.DialSite(relayA.Addr(), 0, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer siteA.Close()
	siteB, err := transport.DialSite(relayB.Addr(), 1, cfg, master.Split())
	if err != nil {
		t.Fatal(err)
	}
	defer siteB.Close()

	rng := xrand.New(7)
	for i := 0; i < 1000; i++ {
		if err := siteA.Observe(stream.Item{ID: uint64(i), Weight: rng.Pareto(1.3)}); err != nil {
			t.Fatal(err)
		}
		if err := siteB.Observe(stream.Item{ID: uint64(10000 + i), Weight: rng.Pareto(1.3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := siteA.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := siteB.Flush(); err != nil {
		t.Fatal(err)
	}
	procBefore := srv.Processed()

	if err := relayA.SeverParent(); err != nil {
		t.Fatal(err)
	}
	// The severed relay's subtree must fail fast...
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := siteA.Observe(stream.Item{ID: 5000, Weight: 1})
		if err == nil {
			err = siteA.Flush()
		}
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("severed subtree's site never observed the teardown")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// ...while the sibling subtree keeps working end to end: giants
	// planted after the sever must own the final sample.
	for i := 0; i < cfg.S; i++ {
		if err := siteB.Observe(stream.Item{ID: 1<<40 + uint64(i), Weight: 1e15}); err != nil {
			t.Fatalf("surviving subtree broken after sibling sever: %v", err)
		}
	}
	if err := siteB.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Processed(); got <= procBefore {
		t.Errorf("coordinator processed nothing after the sever (%d -> %d)", procBefore, got)
	}
	if got := relayB.Children(); got != 1 {
		t.Errorf("surviving relay has %d children, want 1", got)
	}
	q := srv.Query()
	if len(q) != cfg.S {
		t.Fatalf("query size %d, want %d", len(q), cfg.S)
	}
	for i, e := range q {
		if i > 0 && q[i].Key > q[i-1].Key {
			t.Fatal("sample order corrupted after partial-tree loss")
		}
		if e.Item.ID < 1<<40 {
			t.Errorf("sample item %d is not a survivor giant", e.Item.ID)
		}
	}
}
