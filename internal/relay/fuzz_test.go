package relay

import (
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/wire"
)

// FuzzRelayFrames is the relay parsing robustness target: whatever
// bytes arrive as a frame payload — from a child (ProcessUpFrame) or
// from the parent (ProcessDownFrame) — the relay must either process
// them or return an error so the connection is dropped. It must never
// panic: a relay serves a whole subtree, so one malicious child taking
// it down would sever every site beneath it.
func FuzzRelayFrames(f *testing.F) {
	valid := wire.AppendMessage(nil, core.Message{
		Kind: core.MsgRegular, Item: stream.Item{ID: 7, Weight: 2}, Key: 3,
	})
	tagged := wire.AppendMessage(wire.AppendShardHeader(nil, 1), core.Message{
		Kind: core.MsgEpochUpdate, Threshold: 1.5,
	})
	f.Add(1, valid)
	f.Add(2, tagged)
	f.Add(2, []byte{0xF5, 0x01})               // truncated shard header
	f.Add(1, []byte{wire.PingByte})            // control byte as data frame
	f.Add(3, wire.AppendShardHeader(nil, 200)) // shard far out of range
	f.Add(1, []byte{})
	f.Fuzz(func(t *testing.T, shards int, payload []byte) {
		if shards < 1 {
			shards = 1
		}
		if shards > 4 {
			shards = 4
		}
		machines := make([]*Machine, shards)
		for p := range machines {
			machines[p] = NewMachine(4, true)
		}
		// Errors are expected on malformed input; panics never are.
		_ = ProcessUpFrame(machines, payload, func(int, core.Message) {})
		_, _, _ = ProcessDownFrame(machines, payload)
	})
}
