package lint_test

import (
	"testing"

	"wrs/internal/lint/linttest"
)

// Each fixture package under testdata/src deliberately violates one
// analyzer's invariant: the test fails if the analyzer misses a
// violation (the fixture "fails without it") or flags a sanctioned
// shape. The nolockio fixture reproduces the historical PR 1
// mutex-held-across-write bug verbatim; the wirekinds fixture replays
// the PR 5 new-kind hazard.

func TestNoLockIOFixtures(t *testing.T)     { linttest.Run(t, "nolockio", "nolockio") }
func TestLockOrderFixtures(t *testing.T)    { linttest.Run(t, "lockorder", "lockorder") }
func TestSnapshotMathFixtures(t *testing.T) { linttest.Run(t, "snapshotmath", "snapshotmath") }
func TestDetRandFixtures(t *testing.T)      { linttest.Run(t, "detrand", "detrand") }
func TestWireKindsFixtures(t *testing.T)    { linttest.Run(t, "wirekinds", "wirekinds") }
