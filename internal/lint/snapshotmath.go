package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapshotMath enforces the locked-snapshot / unlocked-math contract
// of the plugin API (DESIGN.md §10, docs/PLUGINS.md): code holding a
// shard ingest lock — a sync mutex region, or the body of a callback
// passed to DoShard/Do/View — performs only O(s) state copies; all
// query mathematics (sorting, top-s selection, cross-shard merging)
// runs outside every lock so a querier never stalls ingest.
//
// Flagged inside locked regions:
//   - sorting calls: sort.Sort/Stable/Slice/SliceStable/Ints/
//     Float64s/Strings and slices.Sort*;
//   - the repo's own query-math entry points: TopSample, TopEntries,
//     and Merge*-named functions in wrs packages.
var SnapshotMath = &Analyzer{
	Name: "snapshotmath",
	Doc:  "forbids sorting/merge query math inside shard-locked regions (locked-snapshot/unlocked-math contract)",
	Run:  runSnapshotMath,
}

// viewMethods are the locked-view primitives: the callback they
// receive runs under a shard's ingest lock.
var viewMethods = map[string]bool{"DoShard": true, "Do": true, "View": true}

func runSnapshotMath(pass *Pass) {
	// Mutex-held regions.
	for _, root := range funcBodies(pass) {
		w := &lockWalker{
			info: pass.Info,
			visit: func(n ast.Node, held lockSet, _ bool) {
				if len(held) == 0 {
					return
				}
				if call, ok := n.(*ast.CallExpr); ok {
					checkHeavyMath(pass, call, "while holding "+held[len(held)-1].key)
				}
			},
		}
		w.walkFunc(root.body)
	}

	// Callbacks passed to the locked-view primitives.
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Info, call)
			if f == nil || !viewMethods[f.Name()] || !isWrsReceiver(pass.Info, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					inspectLockedCallback(pass, lit, f.Name())
				}
			}
			return true
		})
	}
}

// inspectLockedCallback flags heavy math in a locked-view callback
// body (nested function literals are separate goroutine-able values
// and are not part of the locked region).
func inspectLockedCallback(pass *Pass, lit *ast.FuncLit, primitive string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			checkHeavyMath(pass, call, "inside a "+primitive+" callback (runs under the shard ingest lock)")
		}
		return true
	})
}

// isWrsReceiver reports whether the method's receiver is a type
// declared in this module (Do/View/DoShard are common names; only the
// repo's locked-view primitives count).
func isWrsReceiver(info *types.Info, call *ast.CallExpr) bool {
	rt := recvType(info, call)
	if rt == nil {
		return false
	}
	p := typePkgPath(rt)
	return p == "wrs" || strings.HasPrefix(p, "wrs/")
}

// sortFuncs are the O(n log n) entry points of package sort.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Ints": true, "Float64s": true, "Strings": true,
}

func checkHeavyMath(pass *Pass, call *ast.CallExpr, where string) {
	f := calleeFunc(pass.Info, call)
	if f == nil {
		return
	}
	pkg, name := funcPkgPath(f), f.Name()
	switch {
	case pkg == "sort" && sortFuncs[name]:
		pass.Reportf(call.Pos(), "sort.%s %s: snapshot under the lock, sort outside it (locked-snapshot/unlocked-math, DESIGN.md §10)", name, where)
	case pkg == "slices" && strings.HasPrefix(name, "Sort"):
		pass.Reportf(call.Pos(), "slices.%s %s: snapshot under the lock, sort outside it (locked-snapshot/unlocked-math, DESIGN.md §10)", name, where)
	case isWrsPkg(pkg) && (name == "TopSample" || name == "TopEntries" || strings.HasPrefix(name, "Merge")):
		pass.Reportf(call.Pos(), "%s %s: query math (top-s selection / cross-shard merge) runs outside every lock (DESIGN.md §10)", name, where)
	}
}

func isWrsPkg(p string) bool {
	return p == "wrs" || strings.HasPrefix(p, "wrs/")
}
