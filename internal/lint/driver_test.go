package lint

import (
	"go/token"
	"testing"
)

func TestFindingLineRoundTrip(t *testing.T) {
	d := Diagnostic{
		Analyzer: "nolockio",
		Pos:      token.Position{Filename: "internal/transport/transport.go", Line: 42, Column: 7},
		Message:  "Write on a net value while holding client.mu: conn I/O must run off the locked path",
	}
	line := FindingLine(d)
	f, ok := ParseFindingLine(line)
	if !ok {
		t.Fatalf("ParseFindingLine rejected its own format: %q", line)
	}
	if f.Analyzer != d.Analyzer {
		t.Errorf("analyzer = %q, want %q", f.Analyzer, d.Analyzer)
	}
	if f.Message != d.Message {
		t.Errorf("message = %q, want %q", f.Message, d.Message)
	}
	if want := "internal/transport/transport.go:42:7"; f.Pos != want {
		t.Errorf("pos = %q, want %q", f.Pos, want)
	}
}

func TestParseFindingLineRejectsNonFindings(t *testing.T) {
	for _, line := range []string{
		"",
		"# wrs/internal/transport",
		"exit status 2",
		"internal/core/site.go:10:2: undefined: frobnicate",
		"a [wrslint:nolockio", // no closing bracket
	} {
		if _, ok := ParseFindingLine(line); ok {
			t.Errorf("ParseFindingLine accepted %q", line)
		}
	}
}

func TestKnownAnalyzers(t *testing.T) {
	known := KnownAnalyzers()
	if !known["wrslint"] {
		t.Error("the wrslint pseudo-analyzer (malformed allow directives) must be allow-able")
	}
	if len(Analyzers) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(Analyzers))
	}
	for _, a := range Analyzers {
		if !known[a.Name] {
			t.Errorf("analyzer %s missing from KnownAnalyzers", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s lacks doc or run function", a.Name)
		}
	}
}
