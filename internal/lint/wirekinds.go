package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// WireKinds checks exhaustiveness of switches over wire message-kind
// types. Adding MsgWindow/MsgClock in PR 5 meant finding every
// dispatch site by grep; a missed one silently drops or misroutes a
// kind. The rule: every switch whose tag is a message-kind type — a
// named type with two or more Msg*-prefixed constants declared in its
// package — either lists every declared kind as a case or carries an
// explicit default clause stating what happens to the kinds it
// ignores (state machines that deliberately handle a subset document
// that subset with `default:`; frame decoders drop the conn).
var WireKinds = &Analyzer{
	Name: "wirekinds",
	Doc:  "requires switches over Msg* kind types to cover every declared kind or carry an explicit default",
	Run:  runWireKinds,
}

func runWireKinds(pass *Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkKindSwitch(pass, sw)
			return true
		})
	}
}

func checkKindSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tagType := pass.Info.TypeOf(sw.Tag)
	declared := kindConstants(tagType)
	if len(declared) < 2 {
		return
	}
	covered := map[*types.Const]bool{}
	hasDefault := false
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			var id *ast.Ident
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				id = x
			case *ast.SelectorExpr:
				id = x.Sel
			default:
				continue
			}
			if k, ok := pass.Info.Uses[id].(*types.Const); ok {
				covered[k] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for _, k := range declared {
		if !covered[k] {
			missing = append(missing, k.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Switch, "switch on %s does not handle %s and has no default: cover every kind or add an explicit default stating what happens to ignored kinds (new kinds were found by grep in PR 5)",
		types.TypeString(tagType, types.RelativeTo(pass.Pkg)), strings.Join(missing, ", "))
}

// kindConstants returns the Msg*-prefixed constants of type t declared
// in t's own package, sorted by constant value — the declared wire
// kinds. Fewer than two means t is not a kind type.
func kindConstants(t types.Type) []*types.Const {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Msg") {
			continue
		}
		if types.Identical(c.Type(), t) {
			out = append(out, c)
		}
	}
	if len(out) < 2 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
