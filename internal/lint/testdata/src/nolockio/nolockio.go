// Package nolockio is the wrs-lint fixture for the nolockio analyzer.
//
// The bad* methods reproduce the historical PR 1 bug verbatim: a
// transport holding one mutex over both protocol state and the
// connection list, writing broadcast frames to every site connection
// while the lock is held — so one slow site stalled every observer
// and the paper's sublinear message bound collapsed to O(n) under
// contention. The good* methods are the repaired shapes.
package nolockio

import (
	"bufio"
	"net"
	"sync"

	"wrs/internal/wire"
)

// client mirrors the original PR 1 transport: one mutex guarding both
// the protocol state and the connection list.
type client struct {
	mu    sync.Mutex
	seq   int
	conns []net.Conn
}

// badBroadcast is the PR 1 bug: conn writes on the locked path.
func (c *client) badBroadcast(frame []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	for _, conn := range c.conns {
		conn.Write(frame) // want "Write on a net value while holding client.mu"
	}
}

// badFlush flushes a buffered writer under the state mutex.
func (c *client) badFlush(bw *bufio.Writer) {
	c.mu.Lock()
	bw.Flush() // want "Flush on a bufio value while holding client.mu"
	c.mu.Unlock()
}

// badFrame writes a wire frame (which blocks on the conn) under the
// state mutex.
func (c *client) badFrame(conn net.Conn, payload []byte) {
	c.mu.Lock()
	wire.WriteFrame(conn, payload) // want "wire.WriteFrame while holding client.mu"
	c.mu.Unlock()
}

// badSend parks on a mailbox channel while holding the mutex: a full
// channel blocks every path into the lock.
func (c *client) badSend(ch chan []byte, b []byte) {
	c.mu.Lock()
	ch <- b // want "channel send while holding client.mu"
	c.mu.Unlock()
}

// badRecv blocks on a receive while holding the mutex.
func (c *client) badRecv(ch chan []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-ch // want "channel receive while holding client.mu"
}

// goodBroadcast is the PR 1 fix shape: snapshot the connection list
// under the lock, write outside it.
func (c *client) goodBroadcast(frame []byte) {
	c.mu.Lock()
	conns := append([]net.Conn(nil), c.conns...)
	c.mu.Unlock()
	for _, conn := range conns {
		conn.Write(frame)
	}
}

// goodTrySend: a select with a default never blocks, locked or not.
func (c *client) goodTrySend(ch chan []byte, b []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- b:
		return true
	default:
		return false
	}
}

// writer has a dedicated writer mutex guarding only the bufio.Writer —
// the sanctioned exception, annotated with its justification.
type writer struct {
	wmu sync.Mutex
	bw  *bufio.Writer
}

func (w *writer) flush() error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	//wrslint:allow nolockio wmu is the dedicated writer mutex; it guards only bw
	return w.bw.Flush()
}

// flushNoReason shows that a directive without a justification
// suppresses nothing: the bare directive is reported, and so is the
// flush it failed to cover.
func (w *writer) flushNoReason() error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	//wrslint:allow nolockio
	return w.bw.Flush() // want "Flush on a bufio value while holding writer.wmu"
	// want-above2 "needs a one-line justification"
}

// A typo'd analyzer name is reported, not silently inert.
//
//wrslint:allow nolockioo typos in analyzer names must not hide findings
// want-above "unknown analyzer"
