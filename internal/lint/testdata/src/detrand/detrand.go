// Package detrand is the wrs-lint fixture for the detrand analyzer
// (its testdata path opts it in; see detrandPkgs): ambient
// randomness, wall-clock reads, and map-order iteration inside what
// the analyzer treats as a deterministic protocol package.
package detrand

import (
	"math/rand" // want "import of math/rand"
	"sort"
	"time"
)

// pick draws from the ambient source instead of an injected xrand
// split stream; the import line carries the finding.
func pick(xs []int) int {
	return xs[rand.Intn(len(xs))]
}

// stamp makes protocol state depend on the wall clock.
func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic protocol package"
}

// badKeys feeds output from a randomized traversal order.
func badKeys(m map[int]int) []int {
	var out []int
	for k := range m { // want "map iteration order is randomized"
		out = append(out, k)
	}
	return out
}

// goodTotal is order-insensitive and annotated as such.
func goodTotal(m map[int]int) int {
	n := 0
	//wrslint:allow detrand pure sum: the traversal order cannot affect the result
	for _, v := range m {
		n += v
	}
	return n
}

// goodSortedKeys is the deterministic traversal shape: collect
// (order-insensitively), then sort.
func goodSortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	//wrslint:allow detrand key collection is order-insensitive; keys are sorted below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
