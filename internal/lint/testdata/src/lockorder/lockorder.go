// Package lockorder is the wrs-lint fixture for the lockorder
// analyzer: the forbidden connsMu→shardMu inversion (direct and
// through a same-package call), an acquisition-order cycle, and the
// loop-repeated acquisition that needs a documented global order.
package lockorder

import "sync"

// shardState names the shard ingest mutex class the transport
// invariant protects (DESIGN.md §9).
type shardState struct {
	mu sync.Mutex
	n  int
}

type server struct {
	connsMu sync.Mutex
	shards  []*shardState
}

// badDirect inverts the sanctioned order: the broadcast mutex is held
// while taking a shard ingest mutex.
func (s *server) badDirect(i int) {
	s.connsMu.Lock()
	defer s.connsMu.Unlock()
	sh := s.shards[i]
	sh.mu.Lock() // want "inverts the sanctioned lock order"
	sh.n++
	sh.mu.Unlock()
}

type router struct {
	connsMu sync.Mutex
	shard   *shardState
}

// badIndirect reaches the shard mutex through a same-package call: the
// transitive closure over static calls still sees the inversion.
func (r *router) badIndirect() {
	r.connsMu.Lock()
	r.lockShard() // want "inverts the sanctioned lock order"
	r.connsMu.Unlock()
}

func (r *router) lockShard() {
	r.shard.mu.Lock()
	r.shard.n++
	r.shard.mu.Unlock()
}

// pair disagrees with itself about order: ab takes a then b, ba takes
// b then a — a deadlock waiting for load.
type pair struct {
	a, b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want "closes a lock-order cycle"
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock() // want "closes a lock-order cycle"
	p.a.Unlock()
	p.b.Unlock()
}

// badLoop re-acquires the shard class while the previous iteration's
// lock is still held — a multi-lock without a stated global order.
func (s *server) badLoop() {
	for _, sh := range s.shards {
		sh.mu.Lock() // want "acquired in a loop"
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// okLoop is the sanctioned multi-shard pattern: ascending index order
// is the documented global order, so the repeat is annotated.
func (s *server) okLoop() {
	for _, sh := range s.shards {
		sh.mu.Lock() //wrslint:allow lockorder shards are locked in ascending index order; every multi-locker uses it
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// hub and ingest exercise the sanctioned transport direction: a shard
// ingest mutex may be held while taking the broadcast mutex.
type hub struct {
	connsMu sync.Mutex
	shard   ingest
}

type ingest struct {
	mu sync.Mutex
	n  int
}

func (h *hub) goodDirection() {
	h.shard.mu.Lock()
	h.connsMu.Lock()
	h.shard.n = 1
	h.connsMu.Unlock()
	h.shard.mu.Unlock()
}
