// Package wirekinds is the wrs-lint fixture for the wirekinds
// analyzer: non-exhaustive switches over message-kind types. kind
// replays the PR 5 hazard — a kind set gaining a new member after
// dispatch sites were written — and badRoute does the same over the
// real core.MsgKind.
package wirekinds

import "wrs/internal/core"

// kind is a local message-kind type; MsgTrace is the newly added kind
// that the dispatch below predates.
type kind uint8

const (
	MsgPing kind = iota
	MsgPong
	MsgTrace
)

// badDispatch was written before MsgTrace existed and silently drops
// it.
func badDispatch(k kind) string {
	switch k { // want "does not handle MsgTrace"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	}
	return ""
}

// badRoute covers only the upstream kinds of the real wire type.
func badRoute(k core.MsgKind) bool {
	switch k { // want "does not handle MsgClock, MsgEpochUpdate, MsgLevelSaturated, MsgWindow"
	case core.MsgEarly, core.MsgRegular:
		return true
	}
	return false
}

// goodDefault documents what happens to the kinds it ignores.
func goodDefault(k core.MsgKind) bool {
	switch k {
	case core.MsgEarly, core.MsgRegular:
		return true
	default:
		// Broadcast and window kinds are not input here; drop them.
		return false
	}
}

// goodFull lists every declared kind.
func goodFull(k kind) string {
	switch k {
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgTrace:
		return "trace"
	}
	return ""
}
