// Package snapshotmath is the wrs-lint fixture for the snapshotmath
// analyzer: sorting and query math inside mutex regions and
// locked-view callbacks, violating the locked-snapshot/unlocked-math
// contract (DESIGN.md §10).
package snapshotmath

import (
	"sort"
	"sync"

	"wrs/internal/core"
)

type shard struct {
	mu   sync.Mutex
	keys []float64
}

// badSortLocked sorts while holding the ingest mutex: a querier
// stalls ingest for the whole O(n log n) pass.
func (s *shard) badSortLocked() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Float64s(s.keys) // want "sort.Float64s while holding shard.mu"
	return s.keys
}

// badMergeLocked runs top-s selection while holding the mutex.
func (s *shard) badMergeLocked(entries []core.SampleEntry) []core.SampleEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.TopSample(entries, 4) // want "TopSample while holding shard.mu"
}

// goodSnapshot is the contract: O(s) copy under the lock, sort
// outside it.
func (s *shard) goodSnapshot() []float64 {
	s.mu.Lock()
	out := append([]float64(nil), s.keys...)
	s.mu.Unlock()
	sort.Float64s(out)
	return out
}

// snaps mimics the runtime's locked-view primitive: the callback runs
// under the shard's ingest lock.
type snaps struct{}

func (snaps) View(i int, f func()) { f() }

// badViewCallback sorts inside the locked-view callback.
func badViewCallback(s snaps, xs []int) {
	s.View(0, func() {
		sort.Ints(xs) // want "sort.Ints inside a View callback"
	})
}

// goodViewCallback copies inside the callback and sorts after it
// returns.
func goodViewCallback(s snaps, xs []int) []int {
	var out []int
	s.View(0, func() {
		out = append(out, xs...)
	})
	sort.Ints(out)
	return out
}

// goodNestedLit: a nested literal is a separate goroutine-able value,
// not part of the locked region.
func goodNestedLit(s snaps, xs []int) {
	s.View(0, func() {
		go func() {
			sort.Ints(xs)
		}()
	})
}
