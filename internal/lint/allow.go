package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix is the suppression directive: a comment of the form
//
//	//wrslint:allow <analyzer> <one-line justification>
//
// suppresses that analyzer's findings on the directive's own line
// (trailing comment) or on the line directly below it (comment line).
// The justification is mandatory: a directive without one suppresses
// nothing and is reported as a finding of its own, so every
// intentional violation in the tree documents *why* it is allowed.
const allowPrefix = "//wrslint:allow"

// allowDirective is one parsed //wrslint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	line     int  // source line the comment sits on
	used     bool // a finding matched it (unused directives are not an error, stale ones are cheap)
}

// allowSet indexes the directives of one unit: (filename, line,
// analyzer) -> directive.
type allowSet struct {
	fset *token.FileSet
	byID map[string]*allowDirective
	bad  []Diagnostic // malformed directives, reported under "wrslint"
}

func allowKey(file string, line int, analyzer string) string {
	// line is small; the separator cannot appear in analyzer names.
	return file + "\x00" + itoa(line) + "\x00" + analyzer
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// collectAllows parses every //wrslint:allow directive in the unit's
// files, including test files — a directive in a test file is simply
// never matched, since analyzers skip test files.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) *allowSet {
	as := &allowSet{fset: fset, byID: map[string]*allowDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					as.bad = append(as.bad, Diagnostic{
						Analyzer: "wrslint",
						Pos:      pos,
						Message:  "wrslint:allow directive names no analyzer",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					as.bad = append(as.bad, Diagnostic{
						Analyzer: "wrslint",
						Pos:      pos,
						Message:  "wrslint:allow names unknown analyzer " + quote(name),
					})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), name))
				if reason == "" {
					as.bad = append(as.bad, Diagnostic{
						Analyzer: "wrslint",
						Pos:      pos,
						Message:  "wrslint:allow " + name + " needs a one-line justification",
					})
					continue
				}
				d := &allowDirective{analyzer: name, reason: reason, pos: c.Pos(), line: pos.Line}
				as.byID[allowKey(pos.Filename, pos.Line, name)] = d
			}
		}
	}
	return as
}

func quote(s string) string { return "\"" + s + "\"" }

// allowed reports whether a finding is suppressed: a matching
// directive on the finding's line, or on the line directly above it.
func (as *allowSet) allowed(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if dir, ok := as.byID[allowKey(d.Pos.Filename, line, d.Analyzer)]; ok {
			dir.used = true
			return true
		}
	}
	return false
}

// filterAllowed drops suppressed findings and appends the diagnostics
// for malformed directives.
func (as *allowSet) filterAllowed(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if !as.allowed(d) {
			out = append(out, d)
		}
	}
	return append(out, as.bad...)
}
