package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared lock-region engine: a syntactic,
// branch-merging walk over a function body that tracks which
// sync.Mutex/RWMutex locks are held at every node. nolockio,
// lockorder, and snapshotmath are all views over this walk.
//
// The model is deliberately intra-procedural and conservative in the
// direction that produces findings (a lock acquired on one branch is
// considered held after the merge; a branch that returns discards its
// effects). Function literals are analyzed as independent functions
// with an empty held set — a closure does not inherit its creator's
// locks (it may run on another goroutine), and goroutine bodies and
// deferred calls are likewise excluded from the held region.
// Intentional violations are annotated with //wrslint:allow.

// lockInfo is one held lock.
type lockInfo struct {
	key    string    // lock identity class, e.g. "CoordinatorServer.connsMu"
	pos    token.Pos // acquisition site
	read   bool      // RLock
	sticky bool      // released by defer: held to end of function
}

// lockSet is the ordered multiset of held locks.
type lockSet []lockInfo

func (s lockSet) clone() lockSet { return append(lockSet(nil), s...) }

func (s lockSet) has(key string) bool {
	for _, l := range s {
		if l.key == key {
			return true
		}
	}
	return false
}

// union merges two post-branch lock sets by key (conservative: held on
// either branch counts as held after the merge).
func union(a, b lockSet) lockSet {
	out := a.clone()
	for _, l := range b {
		if !out.has(l.key) {
			out = append(out, l)
		}
	}
	return out
}

// lockWalker drives one function body. Callbacks may be nil.
type lockWalker struct {
	info *types.Info

	// visit fires for every expression node reached in straight-line
	// execution of the function (go/defer bodies and function literals
	// excluded), with the locks held at that point. nonBlocking is set
	// inside the comm clauses of a select that has a default.
	visit func(n ast.Node, held lockSet, nonBlocking bool)

	// acquire fires at each Lock/RLock with the set held just before.
	acquire func(l lockInfo, held lockSet)

	// loopRepeat fires for a lock acquired inside a loop body and not
	// released by the end of that body: the next iteration re-acquires
	// the same lock class while holding it.
	loopRepeat func(l lockInfo)
}

// walkFunc analyzes one function body starting with no locks held.
func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	w.stmts(body.List, nil)
}

// lockOp classifies a call as a sync lock operation. It matches any
// Lock/RLock/Unlock/RUnlock method declared in package sync, which
// covers sync.Mutex, sync.RWMutex, and promoted embedded mutexes.
func (w *lockWalker) lockOp(call *ast.CallExpr) (op string, key string, ok bool) {
	sel, selOk := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	f, _ := w.info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	return f.Name(), w.lockKey(sel.X), true
}

// lockKey names the lock class of a mutex expression: "Type.field" for
// a struct-field mutex (the common case — sh.mu, s.connsMu), the
// identifier name for a variable mutex, and "Type.Mutex" for an
// embedded one. Instances are deliberately collapsed to classes: the
// acquisition-order invariants are stated over classes.
func (w *lockWalker) lockKey(x ast.Expr) string {
	x = ast.Unparen(x)
	switch e := x.(type) {
	case *ast.SelectorExpr:
		base := typeName(w.info.TypeOf(e.X))
		if base == "" {
			return e.Sel.Name
		}
		return base + "." + e.Sel.Name
	case *ast.Ident:
		return e.Name
	default:
		if n := typeName(w.info.TypeOf(x)); n != "" {
			return n + ".Mutex"
		}
		return "lock"
	}
}

// stmts walks a statement list, mutating and returning the held set;
// terminated reports whether the list ends in a terminating statement
// (so callers can discard the branch's effects).
func (w *lockWalker) stmts(list []ast.Stmt, held lockSet) (out lockSet, terminated bool) {
	for _, stmt := range list {
		var term bool
		held, term = w.stmt(stmt, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(stmt ast.Stmt, held lockSet) (lockSet, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, key, ok := w.lockOp(call); ok {
				return w.applyLockOp(op, key, call.Pos(), held), false
			}
			if isTerminatingCall(w.info, call) {
				w.exprs(s.X, held, false)
				return held, true
			}
		}
		w.exprs(s.X, held, false)
		return held, false

	case *ast.DeferStmt:
		// defer mu.Unlock() pins the lock as held to function end.
		if op, key, ok := w.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			for i := range held {
				if held[i].key == key {
					held[i].sticky = true
				}
			}
			return held, false
		}
		// The deferred call runs at return, outside this region: visit
		// only the argument expressions, which are evaluated now.
		for _, arg := range s.Call.Args {
			w.exprs(arg, held, false)
		}
		return held, false

	case *ast.GoStmt:
		// The spawned goroutine does not hold the caller's locks; its
		// body (a FuncLit or named function) is analyzed on its own.
		for _, arg := range s.Call.Args {
			w.exprs(arg, held, false)
		}
		return held, false

	case *ast.BlockStmt:
		// A lexical block does not bound a lock region.
		return w.stmts(s.List, held)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)

	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.exprs(s.Cond, held, false)
		thenHeld, thenTerm := w.stmts(s.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = w.stmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return union(thenHeld, elseHeld), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.exprs(s.Cond, held, false)
		}
		bodyHeld, _ := w.stmts(s.Body.List, held.clone())
		if s.Post != nil {
			w.stmt(s.Post, bodyHeld)
		}
		w.noteLoopLocks(held, bodyHeld)
		return union(held, bodyHeld), false

	case *ast.RangeStmt:
		w.exprs(s.X, held, false)
		bodyHeld, _ := w.stmts(s.Body.List, held.clone())
		w.noteLoopLocks(held, bodyHeld)
		return union(held, bodyHeld), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.exprs(s.Tag, held, false)
		}
		return w.caseBodies(s.Body, held), false

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		return w.caseBodies(s.Body, held), false

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		merged := held
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := held.clone()
			if cc.Comm != nil {
				// The comm op of a select with a default never blocks.
				w.commStmt(cc.Comm, branch, hasDefault)
			}
			if bh, term := w.stmts(cc.Body, branch); !term {
				merged = union(merged, bh)
			}
		}
		return merged, false

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.exprs(r, held, false)
		}
		return held, true

	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line list.
		return held, true

	default:
		// Assignments, sends, declarations, inc/dec, empty: no nested
		// statement lists, visit the whole subtree.
		w.exprs(stmt, held, false)
		return held, false
	}
}

// commStmt visits a select comm statement (send or receive-assign)
// with the non-blocking flag.
func (w *lockWalker) commStmt(stmt ast.Stmt, held lockSet, nonBlocking bool) {
	w.exprs(stmt, held, nonBlocking)
}

// caseBodies walks every case clause of a switch body and merges the
// non-terminating branches.
func (w *lockWalker) caseBodies(body *ast.BlockStmt, held lockSet) lockSet {
	merged := held
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.exprs(e, held, false)
		}
		if bh, term := w.stmts(cc.Body, held.clone()); !term {
			merged = union(merged, bh)
		}
	}
	return merged
}

// applyLockOp mutates the held set for one lock/unlock call.
func (w *lockWalker) applyLockOp(op, key string, pos token.Pos, held lockSet) lockSet {
	switch op {
	case "Lock", "RLock":
		l := lockInfo{key: key, pos: pos, read: op == "RLock"}
		if w.acquire != nil {
			w.acquire(l, held)
		}
		return append(held, l)
	default: // Unlock, RUnlock
		for i := len(held) - 1; i >= 0; i-- {
			if held[i].key == key && !held[i].sticky {
				return append(held[:i:i], held[i+1:]...)
			}
		}
		return held
	}
}

// noteLoopLocks reports locks newly acquired in a loop body and still
// held at its end: the next iteration re-acquires the class while
// holding it (the multi-shard Do pattern), which needs a global order.
func (w *lockWalker) noteLoopLocks(before, after lockSet) {
	if w.loopRepeat == nil {
		return
	}
	for _, l := range after {
		if !before.has(l.key) {
			w.loopRepeat(l)
		}
	}
}

// exprs visits an expression (or simple-statement) subtree, skipping
// function literal bodies — those are analyzed as independent roots.
func (w *lockWalker) exprs(n ast.Node, held lockSet, nonBlocking bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if node != nil && w.visit != nil {
			w.visit(node, held, nonBlocking)
		}
		return true
	})
}

// isTerminatingCall reports calls that never return: panic and
// os.Exit-shaped terminators.
func isTerminatingCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		if f != nil && f.Name() == "Exit" && funcPkgPath(f) == "os" {
			return true
		}
	}
	return false
}

// funcBody is one analysis root: a declared function/method or a
// function literal, walked with an empty initial held set.
type funcBody struct {
	decl *ast.FuncDecl // nil for function literals
	lit  *ast.FuncLit  // nil for declared functions
	body *ast.BlockStmt
}

// funcBodies enumerates every analysis root in the unit's non-test
// files: all declared functions and all function literals (wherever
// they appear — each literal is its own root exactly once).
func funcBodies(pass *Pass) []funcBody {
	var roots []funcBody
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				roots = append(roots, funcBody{decl: fd, body: fd.Body})
			}
		}
		// Every function literal in the file — inside function bodies,
		// package-level var initializers, anywhere — is its own root.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				roots = append(roots, funcBody{lit: lit, body: lit.Body})
			}
			return true
		})
	}
	return roots
}
