// Package lint is wrs-lint: a static-analysis suite that mechanically
// enforces the protocol's concurrency and determinism invariants
// (DESIGN.md §12). The five analyzers — nolockio, lockorder,
// snapshotmath, detrand, wirekinds — each guard a rule that exists
// because breaking it has already cost a debugging session or would
// silently void one of the paper's guarantees.
//
// The suite is deliberately built on the standard library only
// (go/ast, go/types): it mirrors the golang.org/x/tools/go/analysis
// API shape — Analyzer, Pass, Reportf — so analyzers read like any
// go/analysis checker and could be ported to the upstream framework
// mechanically, but it carries no dependency. The driver speaks the
// cmd/go vet-tool protocol by hand (see unitchecker.go), so the same
// binary works standalone (`go run ./cmd/wrs-lint ./...`) and as
// `go vet -vettool`.
//
// Escape hatch: a finding that is intentional is suppressed with
//
//	//wrslint:allow <analyzer> <one-line justification>
//
// on the flagged line or the line directly above it. A directive
// without a justification suppresses nothing and is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the checkers read
// idiomatically and port mechanically.
type Analyzer struct {
	Name string // flag-name of the analyzer, e.g. "nolockio"
	Doc  string // one-paragraph description of the invariant it guards
	Run  func(*Pass)
}

// Pass carries one type-checked package unit through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // the unit's files, test files included
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding, positioned in the fileset of its Pass.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file is a _test.go file. The
// analyzers enforce production invariants; tests routinely hold locks
// around assertions, iterate maps, and call time.Now, so every
// analyzer skips test files.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// TypeName returns the named-type name of t (pointers dereferenced),
// or "" when t is unnamed.
func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	// Unalias through type aliases so `type C = net.Conn` still names
	// the underlying type's package.
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// typePkgPath returns the import path of the package declaring t's
// named type (pointers dereferenced), or "" for unnamed types and
// universe types like error.
func typePkgPath(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	t = types.Unalias(t)
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// calleeFunc resolves the *types.Func a call expression statically
// invokes — a package function, a method, or nil for dynamic calls
// (function values, interface methods resolve to the interface
// method's object, which is still useful for name/package checks).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring f, or
// "" when f is nil or has no package.
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// recvType returns the receiver type of the method a selector call
// invokes (the static type of the receiver expression), or nil for
// non-method calls.
func recvType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		return s.Recv()
	}
	return nil
}

// sortDiagnostics orders findings by file, line, column, analyzer for
// stable output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
