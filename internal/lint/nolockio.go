package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoLockIO flags network/buffered-writer I/O and blocking channel
// operations reachable while a sync.Mutex or sync.RWMutex is held.
//
// This is the bug class PR 1 fixed by hand: the original transport
// wrote broadcast frames to every site connection while holding the
// client's state mutex, so one slow site stalled every observer and
// the control plane, and the paper's sublinear message bound collapsed
// to O(n) under CPU contention. The repaired design moves every
// conn write off the locked path (per-connection writer goroutines
// draining mailboxes); this analyzer keeps it that way mechanically.
//
// Flagged while a lock is held:
//   - method calls named Write/WriteString/WriteByte/WriteRune/
//     ReadFrom/Flush whose receiver is a net or bufio type (net.Conn
//     implementations, *bufio.Writer, ...);
//   - calls into package wrs/internal/wire with a Write prefix
//     (WriteFrame, WriteMessage — frame writes that block on the conn);
//   - channel sends and receives, except inside a select that has a
//     default clause (those never block).
//
// A mutex that exists to serialize the writes themselves (a dedicated
// writer mutex guarding only the bufio.Writer, like SiteClient.wmu) is
// a sanctioned exception: annotate the write with //wrslint:allow
// nolockio and say which mutex guards what.
var NoLockIO = &Analyzer{
	Name: "nolockio",
	Doc:  "flags conn/bufio writes, flushes, and blocking channel ops while a mutex is held",
	Run:  runNoLockIO,
}

func runNoLockIO(pass *Pass) {
	for _, root := range funcBodies(pass) {
		w := &lockWalker{
			info: pass.Info,
			visit: func(n ast.Node, held lockSet, nonBlocking bool) {
				if len(held) == 0 {
					return
				}
				checkLockedIO(pass, n, held, nonBlocking)
			},
		}
		w.walkFunc(root.body)
	}
}

func checkLockedIO(pass *Pass, n ast.Node, held lockSet, nonBlocking bool) {
	lock := held[len(held)-1].key
	switch e := n.(type) {
	case *ast.CallExpr:
		f := calleeFunc(pass.Info, e)
		if f == nil {
			return
		}
		if isConnWriteMethod(pass.Info, e, f) {
			pass.Reportf(e.Pos(), "%s on a %s value while holding %s: conn/bufio I/O must run off the locked path (the PR 1 bug class)",
				f.Name(), ioPkgOf(pass.Info, e, f), lock)
			return
		}
		if strings.HasSuffix(funcPkgPath(f), "internal/wire") && strings.HasPrefix(f.Name(), "Write") {
			pass.Reportf(e.Pos(), "wire.%s while holding %s: frame writes block on the conn and must run off the locked path", f.Name(), lock)
		}
	case *ast.SendStmt:
		if !nonBlocking {
			pass.Reportf(e.Arrow, "channel send while holding %s: a full channel blocks every path into this lock", lock)
		}
	case *ast.UnaryExpr:
		if e.Op.String() == "<-" && !nonBlocking {
			pass.Reportf(e.OpPos, "channel receive while holding %s: an empty channel blocks every path into this lock", lock)
		}
	}
}

// ioWriteMethods are the blocking writer-side methods of net/bufio
// types.
var ioWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "ReadFrom": true, "Flush": true,
}

// isConnWriteMethod reports whether the call is a write-side method on
// a type declared in package net or bufio (concrete *bufio.Writer,
// net.TCPConn, or the net.Conn interface itself).
func isConnWriteMethod(info *types.Info, call *ast.CallExpr, f *types.Func) bool {
	if !ioWriteMethods[f.Name()] {
		return false
	}
	switch ioPkgOf(info, call, f) {
	case "net", "bufio":
		return true
	}
	return false
}

// ioPkgOf names the package owning the method's receiver type: the
// static receiver type's package when named, else the package
// declaring the method (interface methods like net.Conn.Write).
func ioPkgOf(info *types.Info, call *ast.CallExpr, f *types.Func) string {
	if rt := recvType(info, call); rt != nil {
		if p := typePkgPath(rt); p != "" {
			return p
		}
	}
	return funcPkgPath(f)
}
