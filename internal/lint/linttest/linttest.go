// Package linttest is the analysistest-style harness for the wrs-lint
// suite: it builds cmd/wrs-lint once per test process, points it at
// one fixture package under internal/lint/testdata/src, and checks
// the reported findings against the fixture's // want comments in
// both directions — every finding must be wanted, every want found.
//
// Fixtures live under testdata, invisible to the go tool's ./...
// wildcards, so the repo-wide lint run stays clean while each fixture
// deliberately violates one invariant. Because the harness runs the
// real binary in standalone mode (which re-execs `go vet -vettool`),
// a fixture test exercises the entire stack: the vet protocol
// handshakes, unit analysis, allow filtering, and -json output.
package linttest

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// Expectation comments in fixture files:
//
//	conn.Write(b) // want "substring of the finding message"
//	// want-above "substring"   — applies to the previous source line
//	// want-above2 "substring"  — two lines up (etc.)
//
// Several quoted substrings after one marker expect several findings
// on the same line. want-above exists for findings on lines that
// cannot carry a trailing comment — //wrslint:allow directives consume
// the whole line comment, so their own malformed-directive findings
// are annotated from below.
var (
	wantRe    = regexp.MustCompile(`// want(-above[0-9]*)? ((?:"[^"]*"\s*)+)`)
	wantArgRe = regexp.MustCompile(`"([^"]*)"`)
)

// finding mirrors the -json output record of cmd/wrs-lint.
type finding struct {
	Analyzer string `json:"analyzer"`
	Pkg      string `json:"pkg"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
}

// Run checks one analyzer against one fixture package (a directory
// name under internal/lint/testdata/src).
func Run(t *testing.T, analyzer, fixture string) {
	t.Helper()
	root := modRoot(t)
	bin, err := buildBinary(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join("internal", "lint", "testdata", "src", fixture)

	wants := collectWants(t, filepath.Join(root, pkgDir))
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments: every fixture must fail without its analyzer", fixture)
	}

	cmd := exec.Command(bin, "-only", analyzer, "-json", "./"+filepath.ToSlash(pkgDir))
	cmd.Dir = root
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()
	if code := exitCode(runErr); code != 0 && code != 1 {
		// 0 and 1 (findings present) are both valid analysis outcomes;
		// anything else is a build or protocol failure.
		t.Fatalf("wrs-lint -only %s failed (%v):\n%s%s", analyzer, runErr, stdout.String(), stderr.String())
	}

	var res struct {
		Findings []finding `json:"findings"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &res); err != nil {
		t.Fatalf("parsing wrs-lint -json output: %v\n%s", err, stdout.String())
	}

	for _, f := range res.Findings {
		k, ok := posKey(f.Pos)
		if !ok {
			t.Errorf("unparseable finding position %q", f.Pos)
			continue
		}
		ws := wants[k]
		matched := -1
		for i, w := range ws {
			if strings.Contains(f.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected finding [%s] %s", f.Pos, f.Analyzer, f.Message)
			continue
		}
		wants[k] = append(ws[:matched], ws[matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: no finding matching %q", k.file, k.line, w)
		}
	}
}

// lineKey addresses one fixture source line by base filename.
type lineKey struct {
	file string
	line int
}

// posKey extracts the (file, line) key from a file:line:col position.
func posKey(pos string) (lineKey, bool) {
	parts := strings.Split(pos, ":")
	if len(parts) < 2 {
		return lineKey{}, false
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		return lineKey{}, false
	}
	file := strings.Join(parts[:len(parts)-2], ":")
	return lineKey{file: filepath.Base(file), line: line}, true
}

// collectWants scans the fixture's non-test .go files for expectation
// comments.
func collectWants(t *testing.T, dir string) map[lineKey][]string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	wants := map[lineKey][]string{}
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(file)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			target := i + 1
			if above := m[1]; above != "" {
				up := 1
				if d := strings.TrimPrefix(above, "-above"); d != "" {
					up, _ = strconv.Atoi(d)
				}
				target -= up
			}
			k := lineKey{file: base, line: target}
			for _, arg := range wantArgRe.FindAllStringSubmatch(m[2], -1) {
				wants[k] = append(wants[k], arg[1])
			}
		}
	}
	return wants
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

func modRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		t.Fatal("linttest: not inside a module")
	}
	return filepath.Dir(gomod)
}

var (
	buildOnce sync.Once
	binPath   string
	binErr    error
)

// buildBinary compiles cmd/wrs-lint once per test process. The temp
// directory is intentionally not cleaned up mid-process: later tests
// share the binary, and the OS reclaims temp space.
func buildBinary(root string) (string, error) {
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "wrs-lint-test-")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "wrs-lint")
		cmd := exec.Command("go", "build", "-o", binPath, "./cmd/wrs-lint")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			binErr = fmt.Errorf("building wrs-lint: %v\n%s", err, out)
		}
	})
	return binPath, binErr
}
