package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DetRand guards the determinism substrate of the protocol packages.
// The bit-identical pinning suites (equivalence_test.go, the
// cross-runtime exactness matrices) and reproducible experiments all
// assume that protocol state evolves as a pure function of the input
// stream and the injected xrand split streams. Three things silently
// break that:
//
//   - math/rand (v1 or v2): ambient, unseeded or globally seeded
//     randomness that does not flow through the pinned xrand split
//     order;
//   - time.Now/Since/Until: wall-clock reads that make state depend
//     on scheduling;
//   - ranging over a map: Go randomizes map iteration order per run,
//     so any map traversal that feeds protocol state, message order,
//     or query output is a nondeterminism leak. Order-insensitive
//     traversals (results sorted afterwards, pure counting) are
//     annotated with //wrslint:allow detrand and a justification.
//
// The analyzer applies only to the deterministic-core packages listed
// in detrandPkgs; transport and netsim are inherently timing-dependent
// and are exempt.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbids math/rand, wall-clock reads, and map-order iteration in the deterministic protocol packages",
	Run:  runDetRand,
}

// detrandPkgs are the packages whose state evolution must be a pure
// function of (stream, xrand splits). The testdata entry lets the
// analyzer's own fixtures trigger it.
var detrandPkgs = []string{
	"wrs/internal/core",
	"wrs/internal/window",
	"wrs/internal/fabric",
	"wrs/internal/wire",
	"wrs/internal/xrand",
	// The chaos scenario engine's whole contract is seed-reproducible
	// runs; its wall-clock counterpart lives in workload/saturate,
	// which is deliberately NOT listed.
	"wrs/internal/workload",
}

func detrandApplies(path string) bool {
	for _, p := range detrandPkgs {
		if path == p {
			return true
		}
	}
	return strings.Contains(path, "lint/testdata/src/detrand")
}

func runDetRand(pass *Pass) {
	if !detrandApplies(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a deterministic protocol package: all randomness flows through the injected xrand split streams (bit-identical pinning)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, e)
				if fn != nil && funcPkgPath(fn) == "time" {
					switch fn.Name() {
					case "Now", "Since", "Until":
						pass.Reportf(e.Pos(), "time.%s in a deterministic protocol package: protocol state must not depend on the wall clock", fn.Name())
					}
				}
			case *ast.RangeStmt:
				t := pass.Info.TypeOf(e.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(e.For, "map iteration order is randomized per run: traverse protocol state in a deterministic order (sort keys first) or annotate an order-insensitive traversal")
				}
			}
			return true
		})
	}
}
