package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder extracts the package's lock acquisition graph and rejects
// orderings that can deadlock.
//
// Nodes are lock classes ("CoordinatorServer.connsMu",
// "shardState.mu"); an edge A→B is recorded when B is acquired while A
// is held — directly, or through a static call to a same-package
// function that (transitively) acquires B. Three rules:
//
//  1. The sanctioned transport order (DESIGN.md §9): a shard ingest
//     mutex may be held while taking connsMu for broadcast fan-out;
//     connsMu must NEVER be held while taking a shard mutex. The
//     reverse edge is rejected wherever it appears.
//  2. Any cycle in the acquisition graph is rejected — two functions
//     disagreeing about order is a deadlock waiting for load.
//  3. A lock acquired in a loop body and still held at the body's end
//     re-acquires its own class while holding it (the multi-shard
//     Do pattern); that needs a documented global order — annotate
//     with //wrslint:allow lockorder naming the order.
//
// Limits (documented in docs/LINTS.md): dynamic calls through
// interfaces or function values contribute no edges, and a closure
// does not inherit its creator's held set.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "rejects lock acquisition orders that invert shardMu→connsMu or form a cycle",
	Run:  runLockOrder,
}

// forbiddenOrders are edges rejected outright even without a visible
// cycle: acquiring `to` while holding a lock whose class field is
// `fromField`. The one entry encodes the transport invariant; the
// table grows with the design.
var forbiddenOrders = []struct {
	fromField string // last component of the held lock's class
	to        string // acquired lock class
	rule      string
}{
	{"connsMu", "shardState.mu", "connsMu is never held while taking a shard ingest mutex (DESIGN.md §9)"},
}

// lockEdge is one A-held-while-acquiring-B observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(pass *Pass) {
	// Map declared functions to their bodies for the call closure.
	bodies := map[*types.Func]*ast.BlockStmt{}
	for _, root := range funcBodies(pass) {
		if root.decl == nil {
			continue
		}
		if f, ok := pass.Info.Defs[root.decl.Name].(*types.Func); ok {
			bodies[f] = root.body
		}
	}

	type funcFacts struct {
		acquires map[string]bool // lock classes acquired directly
		calls    []*types.Func   // same-package declared callees
	}
	facts := map[*ast.BlockStmt]*funcFacts{}
	var edges []lockEdge
	type heldCall struct {
		held   lockSet
		callee *types.Func
		pos    token.Pos
	}
	var heldCalls []heldCall

	for _, root := range funcBodies(pass) {
		ff := &funcFacts{acquires: map[string]bool{}}
		facts[root.body] = ff
		w := &lockWalker{info: pass.Info}
		w.acquire = func(l lockInfo, held lockSet) {
			ff.acquires[l.key] = true
			for _, h := range held {
				if h.key != l.key {
					edges = append(edges, lockEdge{from: h.key, to: l.key, pos: l.pos})
				}
			}
		}
		w.loopRepeat = func(l lockInfo) {
			pass.Reportf(l.pos, "lock %s is acquired in a loop while the previous iteration's %s may still be held; concurrent callers deadlock without a global acquisition order", l.key, l.key)
		}
		w.visit = func(n ast.Node, held lockSet, _ bool) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			f := calleeFunc(pass.Info, call)
			if f == nil || f.Pkg() != pass.Pkg {
				return
			}
			ff.calls = append(ff.calls, f)
			if len(held) > 0 {
				heldCalls = append(heldCalls, heldCall{held: held.clone(), callee: f, pos: call.Pos()})
			}
		}
		w.walkFunc(root.body)
	}

	// mayAcquire closure over same-package static calls, to a fixpoint.
	mayAcquire := func(f *types.Func) map[string]bool {
		if b := bodies[f]; b != nil {
			return facts[b].acquires
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, ff := range facts {
			for _, callee := range ff.calls {
				for key := range mayAcquire(callee) {
					if !ff.acquires[key] {
						ff.acquires[key] = true
						changed = true
					}
				}
			}
		}
	}

	// Calls made while holding locks contribute the callee's closure.
	for _, hc := range heldCalls {
		for key := range mayAcquire(hc.callee) {
			for _, h := range hc.held {
				if h.key != key {
					edges = append(edges, lockEdge{from: h.key, to: key, pos: hc.pos})
				}
			}
		}
	}

	// Dedup edges by (from, to), keeping the earliest site.
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.from != b.from {
			return a.from < b.from
		}
		if a.to != b.to {
			return a.to < b.to
		}
		return a.pos < b.pos
	})
	uniq := edges[:0]
	for _, e := range edges {
		if len(uniq) > 0 && uniq[len(uniq)-1].from == e.from && uniq[len(uniq)-1].to == e.to {
			continue
		}
		uniq = append(uniq, e)
	}
	edges = uniq

	// Rule 1: forbidden orders.
	for _, e := range edges {
		for _, f := range forbiddenOrders {
			if lastComponent(e.from) == f.fromField && e.to == f.to {
				pass.Reportf(e.pos, "acquiring %s while holding %s inverts the sanctioned lock order: %s", e.to, e.from, f.rule)
			}
		}
	}

	// Rule 2: cycles. For each edge a→b, a path b⇝a closes a cycle.
	next := map[string][]string{}
	for _, e := range edges {
		next[e.from] = append(next[e.from], e.to)
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range next[n] {
				if m == to {
					return true
				}
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}
	for _, e := range edges {
		if reaches(e.to, e.from) {
			pass.Reportf(e.pos, "acquiring %s while holding %s closes a lock-order cycle (%s is also acquired while %s is held somewhere in this package)", e.to, e.from, e.from, e.to)
		}
	}
}

func lastComponent(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}
