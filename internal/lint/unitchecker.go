package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"strings"
)

// This file is the driver: a hand-rolled implementation of the cmd/go
// vet-tool protocol (the same contract golang.org/x/tools'
// unitchecker speaks), built on the standard library so the suite
// carries no dependency. cmd/go hands the tool one JSON config per
// package unit naming the unit's files and the export-data files of
// everything it imports; the tool type-checks the unit with the
// stdlib gc importer, runs the analyzers, and reports diagnostics on
// stderr with a nonzero exit (which cmd/go relays and — importantly —
// never caches, so findings always resurface on re-runs).

// Analyzers is the wrs-lint suite, in reporting order.
var Analyzers = []*Analyzer{NoLockIO, LockOrder, SnapshotMath, DetRand, WireKinds}

// KnownAnalyzers is the name set, including the driver's own
// pseudo-analyzer for malformed allow directives.
func KnownAnalyzers() map[string]bool {
	m := map[string]bool{"wrslint": true}
	for _, a := range Analyzers {
		m[a.Name] = true
	}
	return m
}

// vetConfig is the JSON unit description cmd/go passes to a vet tool
// (the fields of unitchecker.Config; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the selected analyzers over one vet unit. It
// returns the diagnostics (already allow-filtered and sorted) and the
// unit's import path; a nil error with no diagnostics is a clean unit.
func RunUnit(cfgPath string, enabled map[string]bool) (diags []Diagnostic, pkgPath string, err error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, "", err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, "", fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}
	// The facts file must exist even though wrs-lint exports no facts:
	// cmd/go treats a missing output as a tool failure.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, "", err
		}
	}
	if cfg.VetxOnly {
		return nil, cfg.ImportPath, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, cfg.ImportPath, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheckUnit(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, cfg.ImportPath, nil
		}
		return nil, cfg.ImportPath, err
	}

	for _, a := range Analyzers {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}

	allows := collectAllows(fset, files, KnownAnalyzers())
	diags = allows.filterAllowed(diags)
	sortDiagnostics(diags)
	return diags, cfg.ImportPath, nil
}

// typecheckUnit type-checks the unit's files, resolving imports
// through the export-data files cmd/go listed in the config.
func typecheckUnit(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("wrs-lint: no export data for import %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tc := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor(compiler, "amd64"),
	}
	// types.Config wants a language version ("go1.24"), not a full
	// toolchain version ("go1.24.0").
	tc.GoVersion = version.Lang(cfg.GoVersion)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("wrs-lint: type-checking %s: %w", cfg.ImportPath, err)
	}
	return pkg, info, nil
}

// Finding is the machine-readable diagnostic record of the -json
// output: one finding, positioned relative to the working directory
// when possible.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Pkg      string `json:"pkg"`
	Pos      string `json:"pos"`
	Message  string `json:"message"`
}

// FindingLine formats one diagnostic in the fixed single-line form
// both humans and the standalone driver parse:
//
//	file:line:col: message [wrslint:analyzer]
func FindingLine(d Diagnostic) string {
	return fmt.Sprintf("%s:%d:%d: %s [wrslint:%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// ParseFindingLine inverts FindingLine; ok is false for lines that are
// not findings (build errors, cmd/go package headers).
func ParseFindingLine(line string) (Finding, bool) {
	tail := strings.LastIndex(line, " [wrslint:")
	if tail < 0 || !strings.HasSuffix(line, "]") {
		return Finding{}, false
	}
	analyzer := line[tail+len(" [wrslint:") : len(line)-1]
	head := line[:tail]
	// pos is file:line:col: — split off the first ": " after the column.
	i := strings.Index(head, ": ")
	if i < 0 {
		return Finding{}, false
	}
	return Finding{Analyzer: analyzer, Pos: head[:i], Message: head[i+2:]}, true
}
