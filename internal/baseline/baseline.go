// Package baseline implements the two naive distributed weighted-SWOR
// protocols that Section 1.2 of the paper compares against:
//
//   - Independent: every site runs a local Efraimidis–Spirakis top-s
//     sampler and forwards each item that enters its local top-s; the
//     coordinator keeps the global top-s. Correct, with expected
//     O(k·s·log(W)) messages — the multiplicative ks the paper's
//     algorithm reduces to an additive k+s.
//   - SendAll: every site forwards every item (n messages), the trivial
//     upper bound.
//
// Both maintain an exact weighted SWOR (anything a site suppresses is
// dominated by s local keys, hence by s global keys), so experiment E5
// compares message complexity on equal-correctness footing.
package baseline

import (
	"sort"

	"wrs/internal/sample"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// Msg carries an item and its precision-sampling key to the coordinator.
type Msg struct {
	Item stream.Item
	Key  float64
}

// Words returns the message size in machine words.
func (Msg) Words() int { return 4 }

// IndependentSite runs a local ES sampler and forwards local-top-s
// entries.
type IndependentSite struct {
	rng *xrand.RNG
	top *sample.TopK[stream.Item]
	// KeyHook, when set, receives every generated key (tests).
	KeyHook func(id uint64, key float64)
}

// NewIndependentSite returns a site with local sample size s.
func NewIndependentSite(s int, rng *xrand.RNG) *IndependentSite {
	return &IndependentSite{rng: rng, top: sample.NewTopK[stream.Item](s)}
}

// Observe feeds one local arrival.
func (st *IndependentSite) Observe(it stream.Item, send func(Msg)) error {
	key := st.rng.ExpKey(it.Weight)
	if st.KeyHook != nil {
		st.KeyHook(it.ID, key)
	}
	if _, _, _, accepted := st.top.Offer(key, it); accepted {
		send(Msg{Item: it, Key: key})
	}
	return nil
}

// HandleBroadcast is a no-op: the protocol has no downstream traffic.
func (st *IndependentSite) HandleBroadcast(Msg) {}

// SendAllSite forwards everything.
type SendAllSite struct {
	rng *xrand.RNG
	// KeyHook, when set, receives every generated key (tests).
	KeyHook func(id uint64, key float64)
}

// NewSendAllSite returns a forwarding site.
func NewSendAllSite(rng *xrand.RNG) *SendAllSite {
	return &SendAllSite{rng: rng}
}

// Observe forwards the arrival with a fresh key.
func (st *SendAllSite) Observe(it stream.Item, send func(Msg)) error {
	key := st.rng.ExpKey(it.Weight)
	if st.KeyHook != nil {
		st.KeyHook(it.ID, key)
	}
	send(Msg{Item: it, Key: key})
	return nil
}

// HandleBroadcast is a no-op.
func (st *SendAllSite) HandleBroadcast(Msg) {}

// Coordinator keeps the global top-s of forwarded keys.
type Coordinator struct {
	top *sample.TopK[stream.Item]
	s   int
}

// NewCoordinator returns a coordinator with sample size s.
func NewCoordinator(s int) *Coordinator {
	return &Coordinator{top: sample.NewTopK[stream.Item](s), s: s}
}

// HandleMessage folds one forwarded candidate into the global sample.
func (c *Coordinator) HandleMessage(m Msg, _ func(Msg)) {
	c.top.Offer(m.Key, m.Item)
}

// Sample returns the current weighted SWOR, largest key first.
func (c *Coordinator) Sample() []stream.Item {
	entries := append([]sample.Entry[stream.Item](nil), c.top.Items()...)
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key > entries[j].Key })
	out := make([]stream.Item, len(entries))
	for i, e := range entries {
		out[i] = e.Val
	}
	return out
}

// SampleIDs returns the set of sampled item IDs.
func (c *Coordinator) SampleIDs() map[uint64]bool {
	out := make(map[uint64]bool, c.top.Len())
	for _, e := range c.top.Items() {
		out[e.Val.ID] = true
	}
	return out
}
