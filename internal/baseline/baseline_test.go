package baseline

import (
	"math"
	"sort"
	"sync"
	"testing"

	"wrs/internal/netsim"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

type keyLog struct {
	mu   sync.Mutex
	ids  []uint64
	keys []float64
}

func (l *keyLog) hook(id uint64, key float64) {
	l.mu.Lock()
	l.ids = append(l.ids, id)
	l.keys = append(l.keys, key)
	l.mu.Unlock()
}

func (l *keyLog) topIDs(s int) map[uint64]bool {
	type kv struct {
		id  uint64
		key float64
	}
	all := make([]kv, len(l.ids))
	for i := range l.ids {
		all[i] = kv{l.ids[i], l.keys[i]}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key > all[j].key })
	if len(all) > s {
		all = all[:s]
	}
	out := map[uint64]bool{}
	for _, e := range all {
		out[e.id] = true
	}
	return out
}

func buildIndependent(k, s int, seed uint64, log *keyLog) (*netsim.Cluster[Msg], *Coordinator) {
	master := xrand.New(seed)
	coord := NewCoordinator(s)
	sites := make([]netsim.Site[Msg], k)
	for i := 0; i < k; i++ {
		st := NewIndependentSite(s, master.Split())
		if log != nil {
			st.KeyHook = log.hook
		}
		sites[i] = st
	}
	return netsim.NewCluster[Msg](coord, sites), coord
}

func TestIndependentExactTopS(t *testing.T) {
	const k, s, n = 5, 7, 3000
	log := &keyLog{}
	cl, coord := buildIndependent(k, s, 42, log)
	g := stream.NewGenerator(n, k, stream.ParetoWeights(1.2), stream.RandomSites(k))
	if err := cl.Run(g, xrand.New(1)); err != nil {
		t.Fatal(err)
	}
	want := log.topIDs(s)
	got := coord.SampleIDs()
	if len(got) != s {
		t.Fatalf("sample size = %d, want %d", len(got), s)
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("top key item %d missing from baseline sample", id)
		}
	}
}

func TestIndependentMessageScaling(t *testing.T) {
	// Expected messages ~ k * s * ln(n/k): check a generous envelope and
	// that the multiplicative-in-s behavior is visible (double s =>
	// roughly double the messages).
	const k, n = 8, 40000
	run := func(s int) int64 {
		cl, _ := buildIndependent(k, s, 7, nil)
		g := stream.NewGenerator(n, k, stream.UnitWeights(), stream.RoundRobin(k))
		if err := cl.Run(g, xrand.New(2)); err != nil {
			t.Fatal(err)
		}
		return cl.Stats.Upstream
	}
	m8 := run(8)
	m16 := run(16)
	expect8 := float64(k) * 8 * (1 + math.Log(float64(n)/float64(k)/8))
	if float64(m8) < expect8/3 || float64(m8) > expect8*3 {
		t.Errorf("s=8 messages = %d, outside [%v, %v]", m8, expect8/3, expect8*3)
	}
	ratio := float64(m16) / float64(m8)
	if ratio < 1.4 || ratio > 2.6 {
		t.Errorf("doubling s changed messages by %vx, want ~2x", ratio)
	}
}

func TestSendAllForwardsEverything(t *testing.T) {
	const k, s, n = 3, 5, 1000
	master := xrand.New(11)
	coord := NewCoordinator(s)
	sites := make([]netsim.Site[Msg], k)
	log := &keyLog{}
	for i := 0; i < k; i++ {
		st := NewSendAllSite(master.Split())
		st.KeyHook = log.hook
		sites[i] = st
	}
	cl := netsim.NewCluster[Msg](coord, sites)
	g := stream.NewGenerator(n, k, stream.UniformWeights(50), stream.RoundRobin(k))
	if err := cl.Run(g, xrand.New(3)); err != nil {
		t.Fatal(err)
	}
	if cl.Stats.Upstream != n {
		t.Errorf("send-all upstream = %d, want %d", cl.Stats.Upstream, n)
	}
	if cl.Stats.Downstream != 0 {
		t.Errorf("send-all downstream = %d, want 0", cl.Stats.Downstream)
	}
	want := log.topIDs(s)
	for id := range want {
		if !coord.SampleIDs()[id] {
			t.Fatalf("top key item %d missing", id)
		}
	}
	smp := coord.Sample()
	if len(smp) != s {
		t.Fatalf("sample size %d", len(smp))
	}
}
