// Package quantile estimates the weight-CDF of a distributed stream —
// F(x) = (total weight on items of weight <= x) / W — and its rank
// quantiles, from the weighted SWOR the paper's protocol maintains.
//
// The estimator is the bottom-k/priority-sampling construction over the
// protocol's precision-sampling keys (v = w/t, t ~ Exp(1)), combined
// with the Section 5 idea of calibrating totals from an extreme order
// statistic of the keys: conditioned on tau, the s-th largest key, each
// of the s-1 items with keys above tau was included with probability
// P(v > tau) = 1 - e^(-w/tau), so its Horvitz-Thompson adjusted weight
// w / (1 - e^(-w/tau)) makes any subset sum — in particular every CDF
// numerator and the normalizing total itself — conditionally unbiased
// (Cohen & Kaplan's bottom-k subset-sum estimator; see also
// Hübschle-Schneider & Sanders, arXiv:1910.11069, which treats the
// distributed weighted sample as exactly this kind of substrate).
//
// Because the merged top-s of per-shard top-s samples is exactly the
// global top-s (the fabric's union property), the estimate is identical
// whether the sample came from one protocol instance or a P-way sharded
// fabric — Summarize never needs to know.
//
// Accuracy: a self-normalized ratio of subset sums over s weighted
// samples has error O(sqrt(log(1/delta)/s)) uniformly over prefixes, so
// Params provisions s = ceil(SFactor * ln(2/delta) / eps^2) for
// additive CDF error eps with probability 1-delta.
package quantile

import (
	"fmt"
	"math"
	"sort"

	"wrs/internal/core"
	"wrs/internal/stream"
)

// Params selects the accuracy of the quantile estimate.
type Params struct {
	Eps   float64 // additive CDF error
	Delta float64 // failure probability
	// SFactor scales the sample size s = SFactor*ln(2/delta)/eps^2.
	// 0 means 4, a comfortable constant for the uniform-over-prefixes
	// guarantee (2 is the with-replacement DKW constant; SWOR is at
	// least as concentrated by negative association, and the extra
	// factor absorbs the self-normalization).
	SFactor float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if !(p.Eps > 0 && p.Eps < 1) || !(p.Delta > 0 && p.Delta < 1) {
		return fmt.Errorf("quantile: need eps, delta in (0,1), got %v, %v", p.Eps, p.Delta)
	}
	return nil
}

func (p Params) sFactor() float64 {
	if p.SFactor <= 0 {
		return 4
	}
	return p.SFactor
}

// SampleSize returns the SWOR sample size s the parameters require.
func (p Params) SampleSize() int {
	return int(math.Ceil(p.sFactor() * math.Log(2/p.Delta) / (p.Eps * p.Eps)))
}

// point is one support point of the estimated weight distribution.
type point struct {
	item stream.Item
	adj  float64 // Horvitz-Thompson adjusted weight
	cum  float64 // prefix sum of adj, ascending by item weight
}

// Summary is a queryable estimate of the stream's weight-CDF, built
// from a weighted SWOR by Summarize. The zero value is an empty stream
// (Total 0, CDF identically 0).
type Summary struct {
	pts       []point
	total     float64
	tau       float64
	saturated bool
}

// Summarize builds a Summary from sample-candidate entries and the
// configured sample size s. The entries may be the concatenated
// snapshots of several protocol shards: the exact top-s merge happens
// here. With fewer than s entries after the merge the stream itself had
// fewer than s items, so the summary is exact; otherwise the s-th
// largest key becomes the calibration threshold tau and the remaining
// s-1 items carry Horvitz-Thompson weights.
func Summarize(entries []core.SampleEntry, s int) Summary {
	entries = core.TopSample(entries, s)
	sm := Summary{}
	if len(entries) >= s && s > 0 {
		sm.saturated = true
		sm.tau = entries[s-1].Key
		entries = entries[:s-1]
	}
	sm.pts = make([]point, 0, len(entries))
	for _, e := range entries {
		adj := e.Item.Weight
		if sm.saturated {
			// Inclusion probability given tau: P(w/t > tau) = 1 - e^(-w/tau).
			adj = e.Item.Weight / -math.Expm1(-e.Item.Weight/sm.tau)
		}
		sm.pts = append(sm.pts, point{item: e.Item, adj: adj})
	}
	sort.Slice(sm.pts, func(i, j int) bool { return sm.pts[i].item.Weight < sm.pts[j].item.Weight })
	for i := range sm.pts {
		sm.total += sm.pts[i].adj
		sm.pts[i].cum = sm.total
	}
	return sm
}

// Saturated reports whether the summary is in estimation mode (the
// stream exceeded the sample size). When false, Total, CDF, and
// Quantile are exact.
func (sm Summary) Saturated() bool { return sm.saturated }

// Threshold returns tau, the calibration key (0 while exact).
func (sm Summary) Threshold() float64 { return sm.tau }

// Support returns the number of distinct sampled support points.
func (sm Summary) Support() int { return len(sm.pts) }

// Total returns the estimated total weight W of the stream — the
// Section 5 calibration at work: exact while the sample holds
// everything, afterwards the sum of the HT-adjusted weights, which is
// conditionally unbiased for W given tau.
func (sm Summary) Total() float64 { return sm.total }

// CDF returns the estimated fraction of total weight carried by items
// of weight <= x. It is a nondecreasing step function from 0 to 1.
func (sm Summary) CDF(x float64) float64 {
	if sm.total <= 0 {
		return 0
	}
	// Largest i with pts[i].weight <= x.
	i := sort.Search(len(sm.pts), func(i int) bool { return sm.pts[i].item.Weight > x })
	if i == 0 {
		return 0
	}
	return sm.pts[i-1].cum / sm.total
}

// Quantile returns the smallest sampled weight x with CDF(x) >= phi —
// the phi rank-quantile of the weight distribution (phi <= 0 yields the
// smallest support point, phi >= 1 the largest). ok is false on an
// empty summary.
func (sm Summary) Quantile(phi float64) (x float64, ok bool) {
	if len(sm.pts) == 0 || sm.total <= 0 {
		return 0, false
	}
	target := phi * sm.total
	i := sort.Search(len(sm.pts), func(i int) bool { return sm.pts[i].cum >= target })
	if i == len(sm.pts) {
		i = len(sm.pts) - 1
	}
	return sm.pts[i].item.Weight, true
}

// Oracle accumulates the exact weight distribution — the ground truth
// tests and demos compare a Summary against.
type Oracle struct {
	weights []float64
	total   float64
	sorted  bool
}

// Observe records one arrival's weight.
func (o *Oracle) Observe(w float64) {
	o.weights = append(o.weights, w)
	o.total += w
	o.sorted = false
}

// Total returns the exact total weight.
func (o *Oracle) Total() float64 { return o.total }

func (o *Oracle) sort() {
	if !o.sorted {
		sort.Float64s(o.weights)
		o.sorted = true
	}
}

// CDF returns the exact fraction of total weight on items of weight <= x.
func (o *Oracle) CDF(x float64) float64 {
	if o.total <= 0 {
		return 0
	}
	o.sort()
	var sum float64
	for _, w := range o.weights {
		if w > x {
			break
		}
		sum += w
	}
	return sum / o.total
}

// Quantile returns the exact phi rank-quantile of the weight
// distribution.
func (o *Oracle) Quantile(phi float64) (float64, bool) {
	if len(o.weights) == 0 || o.total <= 0 {
		return 0, false
	}
	o.sort()
	target := phi * o.total
	var sum float64
	for _, w := range o.weights {
		sum += w
		if sum >= target {
			return w, true
		}
	}
	return o.weights[len(o.weights)-1], true
}
