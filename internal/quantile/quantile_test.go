package quantile

import (
	"math"
	"testing"

	"wrs/internal/core"
	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		eps, delta float64
		ok         bool
	}{
		{0.1, 0.1, true},
		{0.5, 0.9, true},
		{0, 0.1, false},
		{1, 0.1, false},
		{0.1, 0, false},
		{0.1, 1, false},
		{-0.1, 0.5, false},
	}
	for _, c := range cases {
		err := Params{Eps: c.eps, Delta: c.delta}.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(eps=%v, delta=%v) = %v, want ok=%v", c.eps, c.delta, err, c.ok)
		}
	}
}

func TestSampleSizeMonotone(t *testing.T) {
	base := Params{Eps: 0.1, Delta: 0.1}.SampleSize()
	if tighter := (Params{Eps: 0.05, Delta: 0.1}).SampleSize(); tighter <= base {
		t.Errorf("halving eps did not grow s: %d vs %d", tighter, base)
	}
	if surer := (Params{Eps: 0.1, Delta: 0.01}).SampleSize(); surer <= base {
		t.Errorf("shrinking delta did not grow s: %d vs %d", surer, base)
	}
	want := int(math.Ceil(4 * math.Log(2/0.1) / (0.1 * 0.1)))
	if base != want {
		t.Errorf("SampleSize = %d, want %d (SFactor default 4)", base, want)
	}
}

// keysFor draws a precision-sampling key per weight, the same
// construction the protocol uses.
func keysFor(weights []float64, seed uint64) []core.SampleEntry {
	rng := xrand.New(seed)
	entries := make([]core.SampleEntry, len(weights))
	for i, w := range weights {
		entries[i] = core.SampleEntry{
			Key:  rng.ExpKey(w),
			Item: stream.Item{ID: uint64(i), Weight: w},
		}
	}
	return entries
}

func TestExactModeMatchesOracle(t *testing.T) {
	weights := []float64{5, 1, 3, 2, 8, 13, 1}
	entries := keysFor(weights, 1)
	var o Oracle
	for _, w := range weights {
		o.Observe(w)
	}
	sm := Summarize(entries, 100) // s far above the stream length
	if sm.Saturated() {
		t.Fatal("summary saturated on a short stream")
	}
	if sm.Support() != len(weights) {
		t.Fatalf("support %d, want %d", sm.Support(), len(weights))
	}
	if math.Abs(sm.Total()-o.Total()) > 1e-12*o.Total() {
		t.Errorf("exact Total = %v, want %v", sm.Total(), o.Total())
	}
	for _, x := range []float64{0, 0.5, 1, 2, 3, 5, 8, 12, 13, 99} {
		if got, want := sm.CDF(x), o.CDF(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("exact CDF(%v) = %v, want %v", x, got, want)
		}
	}
	for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
		got, ok1 := sm.Quantile(phi)
		want, ok2 := o.Quantile(phi)
		if !ok1 || !ok2 || got != want {
			t.Errorf("exact Quantile(%v) = %v (%v), want %v (%v)", phi, got, ok1, want, ok2)
		}
	}
}

// TestSaturatedAccuracy is the estimator's oracle bound: on streams far
// longer than s, the max CDF error over a weight grid stays within the
// provisioned eps, across seeds, on both smooth and heavy-tailed
// weight distributions.
func TestSaturatedAccuracy(t *testing.T) {
	p := Params{Eps: 0.1, Delta: 0.05}
	s := p.SampleSize()
	const n = 30000
	dists := map[string]func(r *xrand.RNG) float64{
		"uniform": func(r *xrand.RNG) float64 { return 1 + 99*r.Float64() },
		"pareto":  func(r *xrand.RNG) float64 { return math.Pow(1-r.OpenFloat64(), -1/1.5) },
		"bimodal": func(r *xrand.RNG) float64 {
			if r.Float64() < 0.01 {
				return 1000
			}
			return 1 + r.Float64()
		},
	}
	for name, draw := range dists {
		for seed := uint64(1); seed <= 3; seed++ {
			rng := xrand.New(seed * 7919)
			weights := make([]float64, n)
			var o Oracle
			for i := range weights {
				weights[i] = draw(rng)
				o.Observe(weights[i])
			}
			sm := Summarize(keysFor(weights, seed), s)
			if !sm.Saturated() {
				t.Fatalf("%s/seed=%d: not saturated", name, seed)
			}
			var maxErr float64
			for _, w := range weights[:2000] { // grid over realized weights
				if err := math.Abs(sm.CDF(w) - o.CDF(w)); err > maxErr {
					maxErr = err
				}
			}
			if maxErr > p.Eps {
				t.Errorf("%s/seed=%d: max CDF error %.4f > eps %.2f (s=%d)", name, seed, maxErr, p.Eps, s)
			}
			if rel := math.Abs(sm.Total()-o.Total()) / o.Total(); rel > p.Eps {
				t.Errorf("%s/seed=%d: Total rel error %.4f > eps", name, seed, rel)
			}
		}
	}
}

// TestShardMergeInvariance pins the property the sharded fabric relies
// on: summarizing the concatenated per-shard top-s snapshots is
// identical to summarizing the whole stream's entries, because the
// top-s of a union is the top-s of the per-shard top-s sets.
func TestShardMergeInvariance(t *testing.T) {
	const n, s, shards = 5000, 200, 3
	rng := xrand.New(42)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 + 9*rng.Float64()
	}
	entries := keysFor(weights, 99)

	whole := Summarize(append([]core.SampleEntry(nil), entries...), s)

	var parts []core.SampleEntry
	for p := 0; p < shards; p++ {
		var part []core.SampleEntry
		for i, e := range entries {
			if i%shards == p {
				part = append(part, e)
			}
		}
		parts = append(parts, core.TopSample(part, s)...)
	}
	merged := Summarize(parts, s)

	if whole.Total() != merged.Total() || whole.Threshold() != merged.Threshold() {
		t.Fatalf("merge changed the summary: total %v vs %v, tau %v vs %v",
			whole.Total(), merged.Total(), whole.Threshold(), merged.Threshold())
	}
	for _, x := range []float64{1, 2, 5, 7.5, 10} {
		if whole.CDF(x) != merged.CDF(x) {
			t.Errorf("CDF(%v): whole %v != merged %v", x, whole.CDF(x), merged.CDF(x))
		}
	}
}

func TestCDFShape(t *testing.T) {
	weights := make([]float64, 3000)
	rng := xrand.New(7)
	for i := range weights {
		weights[i] = 1 + 9*rng.Float64()
	}
	sm := Summarize(keysFor(weights, 8), 150)
	prev := 0.0
	for x := 0.0; x <= 11; x += 0.25 {
		c := sm.CDF(x)
		if c < prev || c < 0 || c > 1 {
			t.Fatalf("CDF not a [0,1] nondecreasing function at %v: %v after %v", x, c, prev)
		}
		prev = c
	}
	if got := sm.CDF(1e18); got != 1 {
		t.Errorf("CDF(+inf-ish) = %v, want 1", got)
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		x, ok := sm.Quantile(phi)
		if !ok {
			t.Fatalf("Quantile(%v) not ok", phi)
		}
		if sm.CDF(x) < phi {
			t.Errorf("CDF(Quantile(%v)) = %v < phi", phi, sm.CDF(x))
		}
	}
}

func TestEmptySummary(t *testing.T) {
	var zero Summary
	if zero.CDF(3) != 0 || zero.Total() != 0 || zero.Saturated() {
		t.Error("zero Summary not empty")
	}
	if _, ok := zero.Quantile(0.5); ok {
		t.Error("Quantile on empty summary reported ok")
	}
	sm := Summarize(nil, 10)
	if sm.Support() != 0 || sm.Total() != 0 {
		t.Error("Summarize(nil) not empty")
	}
	var o Oracle
	if o.CDF(1) != 0 {
		t.Error("empty Oracle CDF != 0")
	}
	if _, ok := o.Quantile(0.5); ok {
		t.Error("empty Oracle Quantile ok")
	}
}
