package window

import (
	"sort"
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

// distRecorder collects every key generated across all sites.
type distRecorder struct {
	keys []keyRec
	next int
}

func (r *distRecorder) hookFor() func(uint64, float64) {
	return func(id uint64, key float64) {
		r.keys = append(r.keys, keyRec{pos: r.next, id: id, key: key})
		r.next++
	}
}

// NOTE: the hook relies on the synchronous driver generating exactly one
// key per Feed, in global order.

func bruteWindowTop(recs []keyRec, width, s int) map[uint64]bool {
	lo := len(recs) - width
	if lo < 0 {
		lo = 0
	}
	win := append([]keyRec(nil), recs[lo:]...)
	sort.Slice(win, func(i, j int) bool { return win[i].key > win[j].key })
	if len(win) > s {
		win = win[:s]
	}
	out := map[uint64]bool{}
	for _, r := range win {
		out[r.id] = true
	}
	return out
}

func TestSlideClusterExactEveryStep(t *testing.T) {
	cases := []struct {
		k, s, width int
		wf          stream.WeightFn
		name        string
	}{
		{3, 2, 20, stream.UniformWeights(50), "uniform"},
		{4, 5, 60, stream.ParetoWeights(1.2), "pareto"},
		{2, 3, 30, stream.HeavyHeadWeights(2, 1e7), "heavyhead"},
		{1, 4, 15, stream.UnitWeights(), "single-site"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			master := xrand.New(uint64(c.k*1000 + c.s))
			cl, err := NewSlideCluster(c.k, c.s, c.width, master)
			if err != nil {
				t.Fatal(err)
			}
			rec := &distRecorder{}
			for _, site := range cl.Sites {
				site.KeyHook = rec.hookFor()
			}
			rng := xrand.New(42)
			const n = 500
			for i := 0; i < n; i++ {
				it := stream.Item{ID: uint64(i), Weight: c.wf(i, rng)}
				if err := cl.Feed(i%c.k, it); err != nil {
					t.Fatal(err)
				}
				want := bruteWindowTop(rec.keys, c.width, c.s)
				got := cl.Coord.Query()
				if len(got) != len(want) {
					t.Fatalf("step %d: query size %d, want %d", i, len(got), len(want))
				}
				for _, e := range got {
					if !want[e.Item.ID] {
						t.Fatalf("step %d: item %d not in brute-force window top-s", i, e.Item.ID)
					}
				}
			}
		})
	}
}

func TestSlideClusterThresholdFalls(t *testing.T) {
	// A giant item inside the window inflates the threshold; when it
	// expires the threshold must fall and buffered light items must be
	// flushed into the sample.
	const k, s, width = 2, 2, 10
	master := xrand.New(7)
	cl, err := NewSlideCluster(k, s, width, master)
	if err != nil {
		t.Fatal(err)
	}
	rec := &distRecorder{}
	for _, site := range cl.Sites {
		site.KeyHook = rec.hookFor()
	}
	feed := func(i int, w float64) {
		if err := cl.Feed(i%k, stream.Item{ID: uint64(i), Weight: w}); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	for ; i < 3; i++ {
		feed(i, 1e9) // giants
	}
	for ; i < 60; i++ {
		feed(i, 1)
		// Exactness maintained throughout the giants' expiry.
		want := bruteWindowTop(rec.keys, width, s)
		for _, e := range cl.Coord.Query() {
			if !want[e.Item.ID] {
				t.Fatalf("step %d: stale/wrong sample item %d", i, e.Item.ID)
			}
		}
	}
	if cl.Coord.Falls == 0 {
		t.Error("no threshold falls observed; the instance should force them")
	}
}

func TestSlideClusterMessageEfficiency(t *testing.T) {
	const k, s, width, n = 4, 8, 2000, 30000
	master := xrand.New(11)
	cl, err := NewSlideCluster(k, s, width, master)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(12)
	maxBuf := 0
	for i := 0; i < n; i++ {
		it := stream.Item{ID: uint64(i), Weight: 1 + 9*rng.Float64()}
		if err := cl.Feed(i%k, it); err != nil {
			t.Fatal(err)
		}
		for _, site := range cl.Sites {
			if b := site.Buffered(); b > maxBuf {
				maxBuf = b
			}
		}
	}
	if cl.Upstream > n/3 {
		t.Errorf("upstream %d not well below n = %d (send-all)", cl.Upstream, n)
	}
	// Expected per-site buffer O(s log(width/s)); allow a wide envelope.
	if maxBuf > 40*s {
		t.Errorf("site buffer reached %d, want O(s log(width/s))", maxBuf)
	}
	t.Logf("sliding window: %d up + %d down messages for %d updates (%.3f/update), max site buffer %d, falls %d",
		cl.Upstream, cl.Downstream, n,
		float64(cl.Upstream+cl.Downstream)/float64(n), maxBuf, cl.Coord.Falls)
}

func TestSlideClusterValidation(t *testing.T) {
	if _, err := NewSlideCluster(2, 0, 5, xrand.New(1)); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := NewSlideCoordinator(1, 0); err == nil {
		t.Error("width=0 accepted")
	}
	if _, err := NewSlideSite(0, 5, xrand.New(1)); err == nil {
		t.Error("site s=0 accepted")
	}
	cl, _ := NewSlideCluster(2, 2, 5, xrand.New(2))
	if err := cl.Feed(5, stream.Item{Weight: 1}); err == nil {
		t.Error("out-of-range site accepted")
	}
	if err := cl.Feed(0, stream.Item{Weight: -1}); err == nil {
		t.Error("bad weight accepted")
	}
}

func TestSlideClusterSmallWindowRampUp(t *testing.T) {
	cl, _ := NewSlideCluster(2, 5, 100, xrand.New(3))
	for i := 0; i < 4; i++ {
		if err := cl.Feed(i%2, stream.Item{ID: uint64(i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
		if got := len(cl.Coord.Query()); got != i+1 {
			t.Fatalf("after %d items query size = %d", i+1, got)
		}
	}
	if cl.N() != 4 {
		t.Errorf("N = %d", cl.N())
	}
}
