package window

import (
	"testing"

	"wrs/internal/stream"
	"wrs/internal/xrand"
)

func re(t *testing.T, s, width int) *Retention {
	t.Helper()
	r, err := NewRetention(s, width)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRetentionValidation(t *testing.T) {
	if _, err := NewRetention(0, 5); err == nil {
		t.Error("s=0 accepted")
	}
	if _, err := NewRetention(2, 0); err == nil {
		t.Error("width=0 accepted")
	}
}

// TestRetentionMatchesSamplerBruteForce cross-checks the generalized
// structure against a brute-force window top-s when fed in order with
// external keys.
func TestRetentionMatchesSamplerBruteForce(t *testing.T) {
	const s, width, n = 3, 12, 400
	r := re(t, s, width)
	rng := xrand.New(5)
	var all []Entry
	for i := 0; i < n; i++ {
		it := stream.Item{ID: uint64(i), Weight: 1 + 10*rng.Float64()}
		key := rng.ExpKey(it.Weight)
		all = append(all, Entry{Pos: i, Key: key, Item: it})
		r.Add(i, key, it)

		lo := len(all) - width
		if lo < 0 {
			lo = 0
		}
		want := TopEntries(append([]Entry(nil), all[lo:]...), s)
		got := r.Sample()
		if len(got) != len(want) {
			t.Fatalf("step %d: sample sizes %d vs %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("step %d: sample[%d] = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
	if r.Retained() >= width {
		t.Errorf("retained %d items, want far below width %d", r.Retained(), width)
	}
}

// TestRetentionOutOfOrderAdd pins the distributed delivery shape:
// promoted items arrive after newer positions and must slot into
// position order with correct dominance counts in both directions.
func TestRetentionOutOfOrderAdd(t *testing.T) {
	r := re(t, 2, 10)
	r.Add(0, 5, stream.Item{ID: 0, Weight: 1})
	r.Add(3, 9, stream.Item{ID: 3, Weight: 1})
	r.Add(1, 7, stream.Item{ID: 1, Weight: 1}) // late promotion between them
	got := r.Sample()
	if len(got) != 2 || got[0].Pos != 3 || got[1].Pos != 1 {
		t.Fatalf("sample after out-of-order add: %+v", got)
	}
	// Position 0 now has two later dominators (keys 7 and 9): pruned by
	// the next compaction (dominance is applied lazily).
	r.Compact()
	if r.Retained() != 2 {
		t.Errorf("retained %d, want 2 (pos 0 dominance-pruned by the late insert)", r.Retained())
	}
	// A stale position (already expired on arrival) is dropped outright.
	r.Advance(20)
	r.Add(5, 100, stream.Item{ID: 5, Weight: 1})
	if r.Retained() != 0 {
		t.Errorf("expired-on-arrival position retained (%d entries)", r.Retained())
	}
	// Negative positions are ignored.
	r.Add(-1, 100, stream.Item{ID: 9, Weight: 1})
	if r.Retained() != 0 || r.Count() != 20 {
		t.Errorf("negative position mutated the structure: retained %d count %d", r.Retained(), r.Count())
	}
}

// TestRetentionAdvance pins clock semantics: jumps expire exactly the
// positions that left the window, including all of them, and never move
// backwards.
func TestRetentionAdvance(t *testing.T) {
	r := re(t, 2, 4)
	for i := 0; i < 4; i++ {
		r.Add(i, float64(10-i), stream.Item{ID: uint64(i), Weight: 1})
	}
	r.Advance(5) // window [1,4]: position 0 exactly at the boundary
	if got := r.Sample(); len(got) != 2 || got[0].Pos != 1 {
		t.Fatalf("post-boundary sample %+v, want top keys from positions 1..3", got)
	}
	r.Advance(3) // stale clock: no-op
	if r.Count() != 5 {
		t.Errorf("clock moved backwards to %d", r.Count())
	}
	r.Advance(1000) // all items expired
	if r.Retained() != 0 || len(r.Sample()) != 0 {
		t.Errorf("all-expired structure still holds %d items", r.Retained())
	}
	if r.Live() != 4 {
		t.Errorf("Live() = %d, want width 4 once count >= width", r.Live())
	}
}

func TestRetentionLiveRampUp(t *testing.T) {
	r := re(t, 3, 10)
	if r.Live() != 0 || r.Count() != 0 {
		t.Fatal("fresh structure not empty")
	}
	r.Add(0, 1, stream.Item{ID: 0, Weight: 1})
	r.Add(1, 2, stream.Item{ID: 1, Weight: 1})
	if r.Live() != 2 {
		t.Errorf("Live() = %d during ramp-up, want 2", r.Live())
	}
}
