package window

import (
	"fmt"

	"wrs/internal/stream"
)

// Retention is the dominance-pruned retention structure over one
// position-stamped sub-stream, generalized for external sequence
// sources: positions and keys are supplied by the caller instead of
// being generated here, and the clock (how many positions the
// sub-stream has advanced) can move independently of insertions. It is
// the building block both of the centralized Sampler (which feeds it
// in arrival order with keys from its own RNG) and of the distributed
// windowed coordinator (which keeps one Retention per site, fed from
// sequence-stamped protocol messages and clock announcements).
//
// Invariant: kept holds, in ascending position order, exactly the
// added items that (a) are inside the current window
// [count-width, count-1] and (b) have fewer than s *later* added items
// with larger keys. Later items outlive earlier ones in every window
// (windows are suffixes of the sub-stream), so an item with s later
// dominators can never re-enter a top-s sample — discarding it is
// safe, and the expected retained count is O(s·log(width/s)).
//
// core.WindowSite inlines the in-order fast path of this rule (its
// entries additionally carry a sent flag); the exactness of the
// distributed protocol depends on the two staying the same rule,
// pinned by TestWindowSiteRetentionLockstep in internal/core.
type Retention struct {
	s     int
	width int
	count int     // positions observed: the window is [count-width, count-1]
	kept  []entry // ascending by Pos
}

// NewRetention returns a retention structure for sample size s over a
// window of width positions.
func NewRetention(s, width int) (*Retention, error) {
	if s < 1 || width < 1 {
		return nil, fmt.Errorf("window: need s >= 1 and width >= 1, got %d, %d", s, width)
	}
	return &Retention{s: s, width: width}, nil
}

// Add inserts the item observed at position pos with the given key.
// Positions need not arrive in order (the distributed protocol delivers
// promoted items after newer ones); an already-expired position is
// dropped. Adding position p advances the clock to at least p+1.
func (r *Retention) Add(pos int, key float64, it stream.Item) {
	if pos < 0 {
		return
	}
	if pos >= r.count {
		r.count = pos + 1
	}
	lo := r.count - r.width
	if pos < lo {
		return // expired before it arrived; it can never be sampled again
	}
	// Insert in position order (tail scan: sub-streams are nearly sorted).
	i := len(r.kept)
	for i > 0 && r.kept[i-1].Pos > pos {
		i--
	}
	r.kept = append(r.kept, entry{})
	copy(r.kept[i+1:], r.kept[i:])
	e := entry{Entry: Entry{Pos: pos, Key: key, Item: it}}
	for j := i + 1; j < len(r.kept); j++ {
		if r.kept[j].Key > key {
			e.dominators++
		}
	}
	r.kept[i] = e
	for j := 0; j < i; j++ {
		if r.kept[j].Key < key {
			r.kept[j].dominators++
		}
	}
	r.trim(lo)
}

// Advance raises the clock to count positions observed (no-op if the
// clock is already there or past), expiring items that left the window.
// A jump past every retained position empties the structure — the
// all-items-expired case.
func (r *Retention) Advance(count int) {
	if count <= r.count {
		return
	}
	r.count = count
	r.trim(count - r.width)
}

// trim drops expired and dominated entries in one pass.
func (r *Retention) trim(lo int) {
	dst := r.kept[:0]
	for _, e := range r.kept {
		if e.Pos >= lo && e.dominators < r.s {
			dst = append(dst, e)
		}
	}
	r.kept = dst
}

// Count returns the clock: the number of positions observed.
func (r *Retention) Count() int { return r.count }

// Live returns how many positions are currently inside the window:
// min(count, width).
func (r *Retention) Live() int {
	if r.count < r.width {
		return r.count
	}
	return r.width
}

// Retained returns the number of items currently stored.
func (r *Retention) Retained() int { return len(r.kept) }

// AppendEntries appends every retained entry (all inside the current
// window, unsorted beyond ascending position) to dst and returns it —
// the O(retained) read path; sort outside any lock.
func (r *Retention) AppendEntries(dst []Entry) []Entry {
	for _, e := range r.kept {
		dst = append(dst, e.Entry)
	}
	return dst
}

// Sample returns the weighted SWOR of the current window: the retained
// items with the top min(s, live) keys, largest first.
func (r *Retention) Sample() []Entry {
	out := r.AppendEntries(make([]Entry, 0, len(r.kept)))
	return TopEntries(out, r.s)
}
