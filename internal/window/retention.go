package window

import (
	"fmt"

	"wrs/internal/stream"
)

// Retention is the dominance-pruned retention structure over one
// position-stamped sub-stream, generalized for external sequence
// sources: positions and keys are supplied by the caller instead of
// being generated here, and the clock (how many positions the
// sub-stream has advanced) can move independently of insertions. It is
// the building block both of the centralized Sampler (which feeds it
// in arrival order with keys from its own RNG) and of the distributed
// windowed coordinator (which keeps one Retention per site, fed from
// sequence-stamped protocol messages and clock announcements).
//
// Invariant: kept[start:] holds, in ascending position order, a
// superset of the added items that (a) are inside the current window
// [count-width, count-1] and (b) have fewer than s *later* added items
// with larger keys. Later items outlive earlier ones in every window
// (windows are suffixes of the sub-stream), so an item with s later
// dominators can never re-enter a top-s sample — discarding it is
// safe, and the expected retained count is O(s·log(width/s)).
//
// The dominance rule is applied *lazily*: instead of updating dominator
// counts on every Add (an O(retained) scan per arrival), Compact runs a
// single backward pass with a suffix top-s min-heap whenever the live
// count doubles past its post-compaction size. This is equivalent to
// the eager rule — the s largest of any entry's later-larger arrivals
// always survive every compaction (each is itself beaten only by even
// larger, even later entries), so counting dominators among survivors
// counts exactly the entries the eager rule would — while making the
// per-arrival cost O(1) amortized plus O(log s) per compaction share.
// Between compactions a dominated entry may linger; it is never in the
// window top-s (its s live dominators outrank it), so Sample and
// AppendEntries consumers are unaffected. Retained is therefore an
// upper bound on the eager count, at most ~2x; call Compact first when
// an exact dominance-pruned count is needed.
//
// Expiry is always a prefix drop (positions ascend), handled by
// advancing start and compacting the array in place when the dead
// prefix would force a reallocation — the steady state recycles one
// backing array with zero allocations.
//
// core.WindowSite inlines the same lazy rule (its entries additionally
// carry sent flags and an incremental top-s threshold); the exactness
// of the distributed protocol depends on the two staying the same
// rule, pinned by TestWindowSiteRetentionLockstep in internal/core.
type Retention struct {
	s       int
	width   int
	count   int     // positions observed: the window is [count-width, count-1]
	start   int     // kept[start:] are the live entries
	kept    []Entry // ascending by Pos from start
	heap    []float64
	pruneAt int // live count that triggers the next dominance compaction
}

// NewRetention returns a retention structure for sample size s over a
// window of width positions.
func NewRetention(s, width int) (*Retention, error) {
	if s < 1 || width < 1 {
		return nil, fmt.Errorf("window: need s >= 1 and width >= 1, got %d, %d", s, width)
	}
	r := &Retention{s: s, width: width}
	r.setPruneAt(s)
	return r, nil
}

// setPruneAt schedules the next dominance compaction at roughly double
// the current live count n, clamped below width: the window never holds
// width positions' worth of lazy slack, so small windows stay
// near-eagerly pruned while large ones amortize the compaction cost.
func (r *Retention) setPruneAt(n int) {
	p := 2*n + r.s
	if p >= r.width {
		p = r.width - 1
	}
	r.pruneAt = p
}

// Add inserts the item observed at position pos with the given key.
// Positions need not arrive in order (the distributed protocol delivers
// promoted items after newer ones); an already-expired position is
// dropped. Adding position p advances the clock to at least p+1.
func (r *Retention) Add(pos int, key float64, it stream.Item) {
	if pos < 0 {
		return
	}
	if pos >= r.count {
		r.count = pos + 1
	}
	lo := r.count - r.width
	if pos < lo {
		return // expired before it arrived; it can never be sampled again
	}
	r.expire(lo)
	if len(r.kept) == cap(r.kept) && r.start > 0 {
		r.compactFront()
	}
	// Insert in position order (tail scan: sub-streams are nearly sorted).
	i := len(r.kept)
	r.kept = append(r.kept, Entry{})
	for i > r.start && r.kept[i-1].Pos > pos {
		r.kept[i] = r.kept[i-1]
		i--
	}
	r.kept[i] = Entry{Pos: pos, Key: key, Item: it}
	if r.Retained() > r.pruneAt {
		r.Compact()
	}
}

// Advance raises the clock to count positions observed (no-op if the
// clock is already there or past), expiring items that left the window.
// A jump past every retained position empties the structure — the
// all-items-expired case.
func (r *Retention) Advance(count int) {
	if count <= r.count {
		return
	}
	r.count = count
	r.expire(count - r.width)
}

// expire advances start past entries that left the window, zeroing the
// dead slots so expired items are released immediately.
func (r *Retention) expire(lo int) {
	for r.start < len(r.kept) && r.kept[r.start].Pos < lo {
		r.kept[r.start] = Entry{}
		r.start++
	}
	if r.start == len(r.kept) {
		r.kept = r.kept[:0]
		r.start = 0
	}
}

// compactFront slides the live entries to the front of the backing
// array, reclaiming the expired prefix without reallocating.
func (r *Retention) compactFront() {
	n := copy(r.kept, r.kept[r.start:])
	tail := r.kept[n:]
	for i := range tail {
		tail[i] = Entry{}
	}
	r.kept = r.kept[:n]
	r.start = 0
}

// Compact eagerly applies the dominance rule now: one backward pass
// maintaining the min-heap of the s largest keys seen so far (the live
// suffix top-s), dropping every entry those keys dominate. Afterwards
// Retained equals the eager dominance-pruned count exactly.
func (r *Retention) Compact() {
	live := r.kept[r.start:]
	h := r.heap[:0]
	out := len(live)
	for i := len(live) - 1; i >= 0; i-- {
		e := live[i]
		if len(h) == r.s && h[0] > e.Key {
			continue // >= s later live entries hold strictly larger keys
		}
		h = pushTopKey(h, e.Key, r.s)
		out--
		live[out] = e
	}
	n := copy(r.kept, live[out:])
	tail := r.kept[n:]
	for i := range tail {
		tail[i] = Entry{}
	}
	r.kept = r.kept[:n]
	r.start = 0
	r.heap = h
	r.setPruneAt(n)
}

// pushTopKey folds k into the min-heap h of the up-to-s largest keys.
func pushTopKey(h []float64, k float64, s int) []float64 {
	if len(h) < s {
		h = append(h, k)
		for c := len(h) - 1; c > 0; {
			p := (c - 1) / 2
			if h[p] <= h[c] {
				break
			}
			h[p], h[c] = h[c], h[p]
			c = p
		}
		return h
	}
	if k <= h[0] {
		return h
	}
	h[0] = k
	for c := 0; ; {
		l, rr := 2*c+1, 2*c+2
		m := c
		if l < len(h) && h[l] < h[m] {
			m = l
		}
		if rr < len(h) && h[rr] < h[m] {
			m = rr
		}
		if m == c {
			break
		}
		h[m], h[c] = h[c], h[m]
		c = m
	}
	return h
}

// RetentionState is a self-contained checkpoint of one Retention: the
// clock and the live entries. The lazy-compaction bookkeeping (pruneAt,
// heap scratch) is derived state and deliberately not captured — a
// restored structure re-schedules its next compaction from the restored
// live count, which only changes *when* dominated entries are shed, not
// which entries any read path can observe.
type RetentionState struct {
	Count   int
	Entries []Entry // ascending by Pos, all inside [Count-width, Count-1]
}

// ExportState captures the retention structure as a RetentionState that
// shares nothing with the live structure.
func (r *Retention) ExportState() RetentionState {
	return RetentionState{
		Count:   r.count,
		Entries: append([]Entry(nil), r.kept[r.start:]...),
	}
}

// RestoreState overwrites the structure with a checkpoint in place,
// keeping outstanding pointers valid (the chaos engine's restart path).
// The checkpoint must have been taken from a structure with the same s
// and width: entries are validated against this structure's window.
func (r *Retention) RestoreState(st RetentionState) error {
	if st.Count < 0 {
		return fmt.Errorf("window: snapshot clock %d is negative", st.Count)
	}
	lo := st.Count - r.width
	prev := lo - 1
	for _, e := range st.Entries {
		if e.Pos < lo || e.Pos >= st.Count {
			return fmt.Errorf("window: snapshot entry at pos %d outside window [%d, %d]", e.Pos, lo, st.Count-1)
		}
		if e.Pos <= prev {
			return fmt.Errorf("window: snapshot entries not strictly ascending at pos %d", e.Pos)
		}
		prev = e.Pos
	}
	r.count = st.Count
	r.start = 0
	old := len(r.kept)
	r.kept = append(r.kept[:0], st.Entries...)
	if old > len(r.kept) {
		tail := r.kept[len(r.kept):old]
		for i := range tail {
			tail[i] = Entry{} // release items the checkpoint dropped
		}
	}
	r.setPruneAt(len(st.Entries))
	return nil
}

// Count returns the clock: the number of positions observed.
func (r *Retention) Count() int { return r.count }

// Live returns how many positions are currently inside the window:
// min(count, width).
func (r *Retention) Live() int {
	if r.count < r.width {
		return r.count
	}
	return r.width
}

// Retained returns the number of items currently stored — with lazy
// pruning, at most ~2x the eager dominance-pruned count (run Compact
// for the exact count).
func (r *Retention) Retained() int { return len(r.kept) - r.start }

// AppendEntries appends every retained entry (all inside the current
// window, unsorted beyond ascending position) to dst and returns it —
// the O(retained) read path; sort outside any lock.
func (r *Retention) AppendEntries(dst []Entry) []Entry {
	return append(dst, r.kept[r.start:]...)
}

// Sample returns the weighted SWOR of the current window: the retained
// items with the top min(s, live) keys, largest first.
func (r *Retention) Sample() []Entry {
	out := r.AppendEntries(make([]Entry, 0, r.Retained()))
	return TopEntries(out, r.s)
}
